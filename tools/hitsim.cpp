// hitsim — command-line driver for the HitSched simulator.
//
// Runs a workload (generated from the Table 1 mix or loaded from a trace
// file) on a chosen topology under a chosen scheduler, in batch or online
// mode, and prints either a human summary or machine-readable CSV.
//
// Observability: `--trace FILE` records the run as Chrome trace-event JSON
// (load it in Perfetto / chrome://tracing), `--metrics FILE` dumps a metrics
// snapshot as JSON Lines, `--profile` prints a phase-timing table to stderr.
//
//   hitsim --topology tree --jobs 10 --scheduler hit --seed 42
//   hitsim --topology vl2 --scheduler pna --mode online --arrival-rate 0.1
//   hitsim --workload workload.csv --scheduler capacity --csv
//   hitsim --trace run.json --metrics run-metrics.jsonl --profile
//   hitsim --help
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "coflow/coflow.h"
#include "core/hit_scheduler.h"
#include "core/registry.h"
#include "obs/context.h"
#include "mapreduce/trace.h"
#include "mapreduce/workload.h"
#include "sched/capacity_scheduler.h"
#include "sched/delay_scheduler.h"
#include "sched/fair_scheduler.h"
#include "sched/pna_scheduler.h"
#include "sched/random_scheduler.h"
#include "sim/engine.h"
#include "sim/online.h"
#include "stats/export.h"
#include "stats/summary.h"
#include "stats/table.h"
#include "topology/builders.h"
#include "topology/dot.h"
#include "workflow/runner.h"

namespace {

using namespace hit;

struct Options {
  std::string topology = "tree";
  std::string scheduler = "hit";
  std::string mode = "batch";
  std::string workload_file;
  std::string save_workload_file;
  std::string dot_file;
  std::string trace_file;         ///< Chrome trace-event JSON output
  std::string trace_events_file;  ///< JSONL mirror of the trace events
  std::string metrics_file;       ///< metrics snapshot (JSON Lines)
  std::size_t jobs = 10;
  std::uint64_t seed = 42;
  double bandwidth_scale = 0.05;
  double arrival_rate = 0.05;
  double jitter = 0.0;
  bool profile = false;
  bool csv = false;
  bool help = false;
  // Overload resilience (all default-off: absent flags reproduce the legacy
  // strict-throw behavior bit-for-bit).
  std::string admission = "unbounded";  ///< unbounded|reject-new|drop-oldest|deadline-shed|aimd
  std::size_t max_queue = 0;            ///< queue cap for the bounded policies
  double max_queue_wait = 0.0;          ///< strict abort / deadline-shed bound
  // Multi-tenant adaptive admission (online mode; all default-off).
  std::size_t tenants = 0;          ///< label generated jobs across N tenants
  std::vector<double> tenant_mix;   ///< per-tenant weights (empty = uniform)
  double aimd_epoch = 30.0;         ///< AIMD controller epoch seconds
  double quota_floor = 0.25;        ///< protected slice of each tenant's cap
  double low_priority = 0.0;            ///< workload fraction drawn Low
  double high_priority = 0.0;           ///< workload fraction drawn High
  bool ladder = false;                  ///< hit scheduler degradation ladder
  std::size_t route_budget = 0;         ///< ladder: Dijkstra expansions per wave
  std::size_t proposal_budget = 0;      ///< ladder: Alg. 2 proposals per wave
  bool breaker = false;                 ///< circuit breaker around the Full tier
  std::string coflow;                   ///< coflow order: fifo|sebf|priority ("" = off)
  // Fault injection & gray-failure resilience (all default-off).
  double fault_mtbf = 0.0;        ///< crash faults: per-element MTBF seconds
  double fault_mttr = 120.0;      ///< crash repair mean seconds
  double fault_horizon = 5000.0;  ///< generate fault events in (0, horizon)
  double gray_mtbf = 0.0;         ///< gray degradations: switch/link MTBF seconds
  double gray_mttr = 120.0;       ///< gray episode duration mean seconds
  double gray_factor_min = 0.25;  ///< degraded-capacity factor range
  double gray_factor_max = 0.5;
  bool monitor = false;           ///< health-monitor sampling + detection stats
  bool quarantine = false;        ///< quarantine/probe loop (implies --monitor)
  double speculation = 0.0;       ///< speculative-map threshold (batch mode)
  // Failure domains & lineage recovery (all default-off, DESIGN.md §17).
  std::string fail_domain;     ///< scripted correlated fault KIND:INDEX:AT[:MTTR]
  double domain_mtbf = 0.0;    ///< seeded rack-level correlated MTBF seconds
  double domain_mttr = 120.0;  ///< domain repair mean seconds
  double output_loss = 0.0;    ///< map-output loss probability on server crash
  double spread_weight = 0.0;  ///< domain-spread placement weight (hit scheduler)
  // Control-plane crash recovery (all default-off).
  double controller_crash = 0.0;  ///< scripted controller crash time (0 = off)
  double blackout = 0.0;          ///< crash-to-restart window (0 = permanent)
  double snapshot_every = 0.0;    ///< journal snapshot cadence, sim seconds
  bool standby = false;           ///< warm standby clamps every blackout
  double standby_takeover = 30.0; ///< standby journal-replay takeover seconds
  // DAG workflows (default-off: --workflow replaces the independent-job
  // workload with multi-stage DAGs, see DESIGN.md §16).
  std::string workflow;       ///< chain | tree | diamond | spec:FILE
  std::size_t workflows = 1;  ///< workflow instances to run
  std::size_t hedge = 0;      ///< hedge + escalation budget per workflow
  std::string cp_weights;     ///< stage-score weights "alpha:beta:gamma"
};

void print_usage() {
  std::cout <<
      "hitsim — hierarchical-topology-aware MapReduce scheduling simulator\n"
      "\n"
      "usage: hitsim [options]\n"
      "  --topology NAME     tree | tree-large | fat-tree | vl2 | bcube  (default tree)\n"
      "  --scheduler NAME    any registered scheduler (see list below)    (default hit)\n"
      "  --mode MODE         batch | online                              (default batch)\n"
      "  --jobs N            workload size                               (default 10)\n"
      "  --seed N            RNG seed (deterministic runs)               (default 42)\n"
      "  --bandwidth-scale X shuffle-path throttle                       (default 0.05)\n"
      "  --arrival-rate X    online mode: Poisson jobs/second            (default 0.05)\n"
      "  --jitter SIGMA      straggler lognormal sigma on map times      (default 0)\n"
      "  --workload FILE     load workload from a trace instead of generating\n"
      "  --save-workload FILE  write the generated workload as a trace\n"
      "  --dot FILE          export the topology as Graphviz DOT\n"
      "  --csv               per-job CSV on stdout instead of the summary table\n"
      "  --trace FILE        record the run as Chrome trace-event JSON (Perfetto)\n"
      "  --trace-events FILE mirror the trace events as JSON Lines\n"
      "  --metrics FILE      dump a metrics snapshot as JSON Lines\n"
      "  --profile           print a phase-timing table to stderr\n"
      "overload resilience (online mode / hit scheduler):\n"
      "  --admission POLICY  unbounded | reject-new | drop-oldest | deadline-shed | aimd\n"
      "  --max-queue N       waiting-queue cap for the bounded policies\n"
      "  --max-queue-wait S  strict abort (unbounded) / shed deadline (deadline-shed)\n"
      "multi-tenant adaptive admission (online mode):\n"
      "  --tenants N         label generated jobs across N tenants\n"
      "  --tenant-mix W,...  per-tenant arrival/entitlement weights (default uniform)\n"
      "  --aimd-epoch S      AIMD controller epoch seconds            (default 30)\n"
      "  --quota-floor F     protected slice of each tenant's queue cap (default 0.25)\n"
      "  --priority-mix L,H  workload fractions drawn Low and High priority\n"
      "  --ladder            enable the hit scheduler degradation ladder\n"
      "  --route-budget N    ladder: Dijkstra node expansions per wave (0 = off)\n"
      "  --proposal-budget N ladder: Algorithm 2 proposals per wave (0 = off)\n"
      "  --breaker           circuit-break the Full tier after repeated blowouts\n"
      "coflow scheduling:\n"
      "  --coflow POLICY     fifo | sebf | priority | cp — schedule whole shuffles\n"
      "                      (MADD rates per coflow; default off = per-flow fair)\n"
      "faults and gray failures:\n"
      "  --faults MTBF       seeded crash faults: per-element MTBF seconds\n"
      "  --fault-mttr S      crash repair mean                           (default 120)\n"
      "  --fault-horizon S   generate fault events in (0, horizon)      (default 5000)\n"
      "  --gray-mtbf MTBF    seeded gray degradations per switch/link\n"
      "  --gray-mttr S       gray episode duration mean                  (default 120)\n"
      "  --gray-factor A,B   degraded-capacity factor range           (default .25,.5)\n"
      "  --monitor           health-monitor sampling + detection stats\n"
      "  --quarantine        quarantine + probe/reinstate loop (implies --monitor)\n"
      "  --speculation X     speculative map copies past X x wave median (batch)\n"
      "failure domains and lineage recovery:\n"
      "  --fail-domain K:I:AT[:MTTR]  crash every element of the I-th domain of\n"
      "                      kind K (server | rack | pod | tier) at second AT,\n"
      "                      repairing MTTR seconds later (omitted = permanent)\n"
      "  --domain-mtbf MTBF  seeded correlated rack crashes: per-rack MTBF seconds\n"
      "  --domain-mttr S     correlated-crash repair mean                (default 120)\n"
      "  --output-loss P     a crashed server loses its completed map outputs with\n"
      "                      probability P (1 when its whole domain died); lineage\n"
      "                      re-executes exactly the maps still-pending shuffles need\n"
      "  --spread-weight W   domain-spread soft constraint in the Eq. 10 utility\n"
      "                      (hit scheduler): trade shuffle locality for fewer\n"
      "                      same-rack map pairs per job\n"
      "control-plane crash recovery:\n"
      "  --controller-crash T  crash the controller at simulated second T\n"
      "  --blackout S        restart the controller S seconds after the crash\n"
      "                      (0 = permanent; the data plane fails static)\n"
      "  --snapshot-every S  journal snapshot cadence in simulated seconds\n"
      "  --standby           warm standby: journal replay bounds every blackout\n"
      "  --standby-takeover S  standby takeover latency         (default 30)\n"
      "DAG workflows:\n"
      "  --workflow SHAPE    chain | tree | diamond | spec:FILE — run multi-stage\n"
      "                      DAG workflows instead of independent jobs\n"
      "  --workflows N       workflow instances to run               (default 1)\n"
      "  --hedge N           hedge + escalation budget per workflow  (default 0)\n"
      "  --cp-weights A:B:G  stage-score weights alpha:beta:gamma (criticality,\n"
      "                      lateness, aging; default 1:0.5:0.1)\n"
      "  --help              this message\n";
}

std::optional<Options> parse(int argc, char** argv) {
  Options opt;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "hitsim: missing value for " << argv[i] << "\n";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = nullptr;
    if (arg == "--help" || arg == "-h") {
      opt.help = true;
    } else if (arg == "--csv") {
      opt.csv = true;
    } else if (arg == "--topology") {
      if (!(value = need_value(i))) return std::nullopt;
      opt.topology = value;
    } else if (arg == "--scheduler") {
      if (!(value = need_value(i))) return std::nullopt;
      opt.scheduler = value;
    } else if (arg == "--mode") {
      if (!(value = need_value(i))) return std::nullopt;
      opt.mode = value;
    } else if (arg == "--workload") {
      if (!(value = need_value(i))) return std::nullopt;
      opt.workload_file = value;
    } else if (arg == "--save-workload") {
      if (!(value = need_value(i))) return std::nullopt;
      opt.save_workload_file = value;
    } else if (arg == "--trace") {
      if (!(value = need_value(i))) return std::nullopt;
      opt.trace_file = value;
    } else if (arg == "--trace-events") {
      if (!(value = need_value(i))) return std::nullopt;
      opt.trace_events_file = value;
    } else if (arg == "--metrics") {
      if (!(value = need_value(i))) return std::nullopt;
      opt.metrics_file = value;
    } else if (arg == "--profile") {
      opt.profile = true;
    } else if (arg == "--dot") {
      if (!(value = need_value(i))) return std::nullopt;
      opt.dot_file = value;
    } else if (arg == "--jobs") {
      if (!(value = need_value(i))) return std::nullopt;
      opt.jobs = std::stoul(value);
    } else if (arg == "--seed") {
      if (!(value = need_value(i))) return std::nullopt;
      opt.seed = std::stoull(value);
    } else if (arg == "--bandwidth-scale") {
      if (!(value = need_value(i))) return std::nullopt;
      opt.bandwidth_scale = std::stod(value);
    } else if (arg == "--arrival-rate") {
      if (!(value = need_value(i))) return std::nullopt;
      opt.arrival_rate = std::stod(value);
    } else if (arg == "--jitter") {
      if (!(value = need_value(i))) return std::nullopt;
      opt.jitter = std::stod(value);
    } else if (arg == "--admission") {
      if (!(value = need_value(i))) return std::nullopt;
      opt.admission = value;
    } else if (arg == "--max-queue") {
      if (!(value = need_value(i))) return std::nullopt;
      opt.max_queue = std::stoul(value);
    } else if (arg == "--max-queue-wait") {
      if (!(value = need_value(i))) return std::nullopt;
      opt.max_queue_wait = std::stod(value);
    } else if (arg == "--priority-mix") {
      if (!(value = need_value(i))) return std::nullopt;
      const std::string mix = value;
      const auto comma = mix.find(',');
      if (comma == std::string::npos) {
        std::cerr << "hitsim: --priority-mix wants LOW,HIGH fractions\n";
        return std::nullopt;
      }
      opt.low_priority = std::stod(mix.substr(0, comma));
      opt.high_priority = std::stod(mix.substr(comma + 1));
    } else if (arg == "--tenants") {
      if (!(value = need_value(i))) return std::nullopt;
      opt.tenants = std::stoul(value);
    } else if (arg == "--tenant-mix") {
      if (!(value = need_value(i))) return std::nullopt;
      std::stringstream mix(value);
      std::string item;
      opt.tenant_mix.clear();
      while (std::getline(mix, item, ',')) {
        opt.tenant_mix.push_back(std::stod(item));
      }
      if (opt.tenant_mix.empty()) {
        std::cerr << "hitsim: --tenant-mix wants W1,W2,... weights\n";
        return std::nullopt;
      }
    } else if (arg == "--aimd-epoch") {
      if (!(value = need_value(i))) return std::nullopt;
      opt.aimd_epoch = std::stod(value);
    } else if (arg == "--quota-floor") {
      if (!(value = need_value(i))) return std::nullopt;
      opt.quota_floor = std::stod(value);
    } else if (arg == "--ladder") {
      opt.ladder = true;
    } else if (arg == "--route-budget") {
      if (!(value = need_value(i))) return std::nullopt;
      opt.route_budget = std::stoul(value);
    } else if (arg == "--proposal-budget") {
      if (!(value = need_value(i))) return std::nullopt;
      opt.proposal_budget = std::stoul(value);
    } else if (arg == "--breaker") {
      opt.breaker = true;
    } else if (arg == "--coflow") {
      if (!(value = need_value(i))) return std::nullopt;
      opt.coflow = value;
    } else if (arg == "--faults") {
      if (!(value = need_value(i))) return std::nullopt;
      opt.fault_mtbf = std::stod(value);
    } else if (arg == "--fault-mttr") {
      if (!(value = need_value(i))) return std::nullopt;
      opt.fault_mttr = std::stod(value);
    } else if (arg == "--fault-horizon") {
      if (!(value = need_value(i))) return std::nullopt;
      opt.fault_horizon = std::stod(value);
    } else if (arg == "--gray-mtbf") {
      if (!(value = need_value(i))) return std::nullopt;
      opt.gray_mtbf = std::stod(value);
    } else if (arg == "--gray-mttr") {
      if (!(value = need_value(i))) return std::nullopt;
      opt.gray_mttr = std::stod(value);
    } else if (arg == "--gray-factor") {
      if (!(value = need_value(i))) return std::nullopt;
      const std::string range = value;
      const auto comma = range.find(',');
      if (comma == std::string::npos) {
        std::cerr << "hitsim: --gray-factor wants MIN,MAX in (0, 1)\n";
        return std::nullopt;
      }
      opt.gray_factor_min = std::stod(range.substr(0, comma));
      opt.gray_factor_max = std::stod(range.substr(comma + 1));
    } else if (arg == "--monitor") {
      opt.monitor = true;
    } else if (arg == "--quarantine") {
      opt.quarantine = true;
    } else if (arg == "--speculation") {
      if (!(value = need_value(i))) return std::nullopt;
      opt.speculation = std::stod(value);
    } else if (arg == "--fail-domain") {
      if (!(value = need_value(i))) return std::nullopt;
      opt.fail_domain = value;
    } else if (arg == "--domain-mtbf") {
      if (!(value = need_value(i))) return std::nullopt;
      opt.domain_mtbf = std::stod(value);
    } else if (arg == "--domain-mttr") {
      if (!(value = need_value(i))) return std::nullopt;
      opt.domain_mttr = std::stod(value);
    } else if (arg == "--output-loss") {
      if (!(value = need_value(i))) return std::nullopt;
      opt.output_loss = std::stod(value);
    } else if (arg == "--spread-weight") {
      if (!(value = need_value(i))) return std::nullopt;
      opt.spread_weight = std::stod(value);
    } else if (arg == "--controller-crash") {
      if (!(value = need_value(i))) return std::nullopt;
      opt.controller_crash = std::stod(value);
    } else if (arg == "--blackout") {
      if (!(value = need_value(i))) return std::nullopt;
      opt.blackout = std::stod(value);
    } else if (arg == "--snapshot-every") {
      if (!(value = need_value(i))) return std::nullopt;
      opt.snapshot_every = std::stod(value);
    } else if (arg == "--standby") {
      opt.standby = true;
    } else if (arg == "--standby-takeover") {
      if (!(value = need_value(i))) return std::nullopt;
      opt.standby_takeover = std::stod(value);
    } else if (arg == "--workflow") {
      if (!(value = need_value(i))) return std::nullopt;
      opt.workflow = value;
    } else if (arg == "--workflows") {
      if (!(value = need_value(i))) return std::nullopt;
      opt.workflows = std::stoul(value);
    } else if (arg == "--hedge") {
      if (!(value = need_value(i))) return std::nullopt;
      opt.hedge = std::stoul(value);
    } else if (arg == "--cp-weights") {
      if (!(value = need_value(i))) return std::nullopt;
      opt.cp_weights = value;
    } else {
      std::cerr << "hitsim: unknown option '" << arg << "' (see --help)\n";
      return std::nullopt;
    }
  }
  return opt;
}

topo::Topology build_topology(const std::string& name) {
  if (name == "tree") return topo::make_tree(topo::TreeConfig{3, 4, 2, 4});
  if (name == "tree-large") return topo::make_tree(topo::TreeConfig{3, 8, 2, 8});
  if (name == "fat-tree") return topo::make_fat_tree(topo::FatTreeConfig{6});
  if (name == "vl2") return topo::make_vl2(topo::Vl2Config{4, 8, 16, 4});
  if (name == "bcube") return topo::make_bcube(topo::BCubeConfig{4, 2});
  throw std::invalid_argument("unknown topology '" + name + "'");
}

std::unique_ptr<sched::Scheduler> build_scheduler(const std::string& name) {
  return core::SchedulerRegistry::instance().create(name);
}

// Gray-failure accounting rows shared by the batch and online summaries.
void add_gray_rows(stats::Table& table, const sim::GrayStats& g) {
  const auto count = [](std::size_t n) {
    return stats::Table::num(static_cast<double>(n), 0);
  };
  table.add_row({"gray degradations", count(g.degradations)});
  table.add_row({"degraded time (s)", stats::Table::num(g.degraded_seconds, 1)});
  table.add_row({"gray detections", count(g.detections)});
  table.add_row({"gray false positives", count(g.false_positives)});
  table.add_row({"mean time-to-detect (s)",
                 stats::Table::num(g.mean_time_to_detect, 1)});
  table.add_row({"quarantines", count(g.quarantines)});
  table.add_row({"probes", count(g.probes)});
  table.add_row({"reinstatements", count(g.reinstatements)});
  table.add_row({"quarantine time (s)",
                 stats::Table::num(g.quarantine_seconds, 1)});
}

// Control-plane recovery rows shared by the batch and online summaries.
void add_recovery_rows(stats::Table& table, const sim::ControlPlaneStats& c) {
  const auto count = [](std::size_t n) {
    return stats::Table::num(static_cast<double>(n), 0);
  };
  table.add_row({"controller crashes", count(c.crashes)});
  table.add_row({"blackout time (s)", stats::Table::num(c.blackout_seconds, 1)});
  table.add_row({"launches delayed", count(c.waves_delayed)});
  table.add_row({"fail-static flows", count(c.flows_failstatic)});
  table.add_row({"blackout stalls", count(c.flows_stalled_blackout)});
  table.add_row({"reconcile repairs", count(c.reconcile_repairs)});
  table.add_row({"journal records", count(c.journal_records)});
  table.add_row({"journal replayed", count(c.replayed_records)});
  table.add_row({"snapshots", count(c.snapshots)});
}

// Failure-domain accounting rows shared by the batch and online summaries.
void add_domain_rows(stats::Table& table, const sim::FaultDomainStats& fd) {
  const auto count = [](std::size_t n) {
    return stats::Table::num(static_cast<double>(n), 0);
  };
  table.add_row({"failure domains", count(fd.domains)});
  table.add_row({"domain faults", count(fd.domain_faults)});
  table.add_row({"map outputs lost", count(fd.outputs_lost)});
  table.add_row({"lineage re-executions", count(fd.maps_reexecuted_lineage)});
  table.add_row({"stage re-opens", count(fd.stage_reopens)});
  table.add_row({"partition parks", count(fd.partition_parks)});
}

// --cp-weights "alpha:beta:gamma" -> stage-score weights.
workflow::CpWeights parse_cp_weights(const std::string& text) {
  workflow::CpWeights w;
  if (text.empty()) return w;
  std::stringstream ss(text);
  std::string item;
  std::vector<double> vals;
  while (std::getline(ss, item, ':')) vals.push_back(std::stod(item));
  if (vals.size() != 3) {
    throw std::invalid_argument("--cp-weights wants ALPHA:BETA:GAMMA");
  }
  w.alpha = vals[0];
  w.beta = vals[1];
  w.gamma = vals[2];
  return w;
}

// Workflow accounting rows shared by the batch and online summaries.
void add_workflow_rows(stats::Table& table, const workflow::WorkflowStats& w) {
  const auto count = [](std::size_t n) {
    return stats::Table::num(static_cast<double>(n), 0);
  };
  table.add_row({"workflows", count(w.workflows)});
  table.add_row({"stages done/total",
                 count(w.stages_completed) + "/" + count(w.stages_total)});
  if (w.stages_shed > 0) table.add_row({"stages shed", count(w.stages_shed)});
  table.add_row({"cp lower bound (s)", stats::Table::num(w.cp_lower_bound, 1)});
  table.add_row({"cp stretch", stats::Table::num(w.stretch, 3)});
  if (w.escalations > 0) table.add_row({"escalations", count(w.escalations)});
  if (w.hedges_launched > 0) {
    table.add_row({"hedges won/lost",
                   count(w.hedges_won) + "/" + count(w.hedges_lost)});
  }
  if (w.restarts > 0) table.add_row({"stage restarts", count(w.restarts)});
  table.add_row({"mean stage wait (s)", stats::Table::num(w.mean_stage_wait)});
}

std::optional<sim::AdmissionPolicy> parse_admission(const std::string& name) {
  if (name == "unbounded") return sim::AdmissionPolicy::Unbounded;
  if (name == "reject-new") return sim::AdmissionPolicy::RejectNew;
  if (name == "drop-oldest") return sim::AdmissionPolicy::DropOldest;
  if (name == "deadline-shed") return sim::AdmissionPolicy::DeadlineShed;
  if (name == "aimd") return sim::AdmissionPolicy::Aimd;
  return std::nullopt;
}

int run(const Options& opt) {
  const topo::Topology topology = build_topology(opt.topology);
  const cluster::Cluster cluster(topology, cluster::Resource{2.0, 8.0});

  mr::WorkloadConfig wconfig;
  wconfig.num_jobs = opt.jobs;
  wconfig.max_maps_per_job = 10;
  wconfig.max_reduces_per_job = 4;
  wconfig.block_size_gb = 2.0;
  wconfig.low_priority_fraction = opt.low_priority;
  wconfig.high_priority_fraction = opt.high_priority;
  if (!opt.tenant_mix.empty() && opt.tenants != 0 &&
      opt.tenant_mix.size() != opt.tenants) {
    std::cerr << "hitsim: --tenant-mix wants exactly --tenants weights\n";
    return 1;
  }
  wconfig.num_tenants = opt.tenants;
  wconfig.tenant_weights = opt.tenant_mix;
  const mr::WorkloadGenerator generator(wconfig);

  // DAG workflow mode: build the shapes up front; stage jobs are materialized
  // by the workflow runner (batch) or the online plan builder, never drawn
  // from the workload generator's RNG stream.
  const bool wf_mode = !opt.workflow.empty();
  std::vector<workflow::Workflow> wfs;
  workflow::SchedConfig wf_sched;
  if (wf_mode) {
    if (!opt.workload_file.empty()) {
      std::cerr << "hitsim: --workflow and --workload are exclusive\n";
      return 1;
    }
    workflow::Workflow shape;
    if (opt.workflow.rfind("spec:", 0) == 0) {
      const std::string path = opt.workflow.substr(5);
      std::ifstream in(path);
      if (!in) {
        std::cerr << "hitsim: cannot open workflow spec '" << path << "'\n";
        return 1;
      }
      std::stringstream buf;
      buf << in.rdbuf();
      shape = workflow::parse_spec(buf.str());
    } else {
      shape = workflow::make_shape(opt.workflow);
    }
    shape.validate();
    wfs.assign(std::max<std::size_t>(opt.workflows, 1), shape);
    wf_sched.weights = parse_cp_weights(opt.cp_weights);
    wf_sched.hedge_budget = opt.hedge;
    wf_sched.escalation_budget = opt.hedge;
  }

  Rng rng(opt.seed);
  mr::IdAllocator ids;
  std::vector<mr::Job> jobs;
  if (!opt.workload_file.empty()) {
    std::ifstream in(opt.workload_file);
    if (!in) {
      std::cerr << "hitsim: cannot open workload '" << opt.workload_file << "'\n";
      return 1;
    }
    jobs = mr::jobs_from_trace(mr::load_trace(in), generator, ids);
  } else if (!wf_mode) {
    jobs = generator.generate(ids, rng);
  }
  if (!opt.save_workload_file.empty()) {
    std::ofstream out(opt.save_workload_file);
    if (!out) {
      std::cerr << "hitsim: cannot write workload '" << opt.save_workload_file
                << "'\n";
      return 1;
    }
    mr::save_trace(out, mr::trace_from_jobs(jobs));
  }

  if (!opt.dot_file.empty()) {
    std::ofstream out(opt.dot_file);
    if (!out) {
      std::cerr << "hitsim: cannot write dot '" << opt.dot_file << "'\n";
      return 1;
    }
    topo::DotOptions dot_options;
    dot_options.graph_name = opt.topology;
    out << topo::to_dot(topology, dot_options);
  }

  // Observability: build only the pillars asked for; a default Context is
  // the null object, so the simulators run uninstrumented otherwise.
  const bool want_trace = !opt.trace_file.empty() || !opt.trace_events_file.empty();
  std::ofstream trace_out, events_out, metrics_out;
  std::ostringstream trace_sink;  // --trace-events without --trace
  obs::Registry registry;
  obs::Profiler profiler;
  std::unique_ptr<obs::TraceWriter> trace;
  if (want_trace) {
    std::ostream* chrome = &trace_sink;
    if (!opt.trace_file.empty()) {
      trace_out.open(opt.trace_file);
      if (!trace_out) {
        std::cerr << "hitsim: cannot write trace '" << opt.trace_file << "'\n";
        return 1;
      }
      chrome = &trace_out;
    }
    std::ostream* events = nullptr;
    if (!opt.trace_events_file.empty()) {
      events_out.open(opt.trace_events_file);
      if (!events_out) {
        std::cerr << "hitsim: cannot write trace events '"
                  << opt.trace_events_file << "'\n";
        return 1;
      }
      events = &events_out;
    }
    trace = std::make_unique<obs::TraceWriter>(*chrome, events);
    trace->name_process(obs::TraceWriter::kSimPid, "simulated time");
    trace->name_thread(obs::TraceWriter::kSimPid, 0, "scheduler / waves / jobs");
    trace->name_thread(obs::TraceWriter::kSimPid, 1, "tasks");
    trace->name_thread(obs::TraceWriter::kSimPid, 2, "flows");
    trace->name_thread(obs::TraceWriter::kSimPid, 3, "faults");
    trace->name_thread(obs::TraceWriter::kSimPid, 4, "coflows");
    trace->name_thread(obs::TraceWriter::kSimPid, 5, "admission");
    trace->name_thread(obs::TraceWriter::kSimPid, 6, "recovery");
    trace->name_thread(obs::TraceWriter::kSimPid, 7, "workflow");
    trace->name_thread(obs::TraceWriter::kSimPid, 8, "domains");
    trace->name_process(obs::TraceWriter::kHostPid, "host wall clock");
    trace->name_thread(obs::TraceWriter::kHostPid, 0, "phases");
  }
  if (!opt.metrics_file.empty()) {
    metrics_out.open(opt.metrics_file);
    if (!metrics_out) {
      std::cerr << "hitsim: cannot write metrics '" << opt.metrics_file << "'\n";
      return 1;
    }
  }
  const obs::Context obs_ctx(
      opt.metrics_file.empty() ? nullptr : &registry, trace.get(),
      opt.profile ? &profiler : nullptr);

  // Coflow flag: parsed once, drives both the simulator (MADD rates) and —
  // for the hit scheduler — coflow-ordered policy optimization.
  coflow::CoflowConfig cf_config;
  if (!opt.coflow.empty()) {
    const auto order = coflow::parse_order_policy(opt.coflow);
    if (!order) {
      std::cerr << "hitsim: unknown coflow policy '" << opt.coflow
                << "' (fifo | sebf | priority | cp)\n";
      return 1;
    }
    cf_config.enabled = true;
    cf_config.order = *order;
  }

  // Ladder / breaker / coflow flags need a directly constructed HitScheduler
  // (the registry hands out default configs); keep a typed handle for stats.
  std::unique_ptr<sched::Scheduler> scheduler;
  const core::HitScheduler* hit = nullptr;
  const bool want_ladder = opt.ladder || opt.breaker || opt.route_budget > 0 ||
                           opt.proposal_budget > 0;
  if (want_ladder && opt.scheduler != "hit") {
    std::cerr << "hitsim: --ladder/--breaker/--*-budget need --scheduler hit\n";
    return 1;
  }
  if (opt.spread_weight > 0.0 && opt.scheduler != "hit") {
    std::cerr << "hitsim: --spread-weight needs --scheduler hit\n";
    return 1;
  }
  if ((want_ladder || cf_config.enabled || opt.spread_weight > 0.0) &&
      opt.scheduler == "hit") {
    core::HitConfig hconfig;
    hconfig.ladder.enabled = want_ladder;
    hconfig.ladder.route_budget = opt.route_budget;
    hconfig.ladder.proposal_budget = opt.proposal_budget;
    hconfig.ladder.breaker.enabled = opt.breaker;
    hconfig.ladder.breaker.seed = opt.breaker ? opt.seed : 0;
    hconfig.coflow = cf_config;
    hconfig.spread_weight = opt.spread_weight;
    auto owned = std::make_unique<core::HitScheduler>(hconfig);
    hit = owned.get();
    scheduler = std::move(owned);
  } else {
    scheduler = build_scheduler(opt.scheduler);
  }
  sim::SimConfig sconfig;
  sconfig.bandwidth_scale = opt.bandwidth_scale;
  sconfig.map_time_jitter_sigma = opt.jitter;
  sconfig.coflow = cf_config;
  sconfig.speculation_threshold = opt.speculation;
  if (opt.fault_mtbf > 0.0 || opt.gray_mtbf > 0.0 || opt.domain_mtbf > 0.0) {
    sim::MtbfConfig mconfig;
    mconfig.horizon = opt.fault_horizon;
    mconfig.switch_mtbf = opt.fault_mtbf;
    mconfig.switch_mttr = opt.fault_mttr;
    mconfig.server_mtbf = opt.fault_mtbf;
    mconfig.server_mttr = opt.fault_mttr;
    mconfig.link_mtbf = opt.fault_mtbf;
    mconfig.link_mttr = opt.fault_mttr;
    mconfig.gray_switch_mtbf = opt.gray_mtbf;
    mconfig.gray_switch_mttr = opt.gray_mttr;
    mconfig.gray_link_mtbf = opt.gray_mtbf;
    mconfig.gray_link_mttr = opt.gray_mttr;
    mconfig.gray_factor_min = opt.gray_factor_min;
    mconfig.gray_factor_max = opt.gray_factor_max;
    mconfig.rack_mtbf = opt.domain_mtbf;
    mconfig.rack_mttr = opt.domain_mttr;
    sconfig.faults = sim::FaultPlan::generate(topology, mconfig, opt.seed);
  }
  if (!opt.fail_domain.empty()) {
    // KIND:INDEX:AT[:MTTR] — resolved against the derived DomainSet.
    std::stringstream spec(opt.fail_domain);
    std::string kind_s, index_s, at_s, mttr_s;
    const bool ok = static_cast<bool>(std::getline(spec, kind_s, ':')) &&
                    static_cast<bool>(std::getline(spec, index_s, ':')) &&
                    static_cast<bool>(std::getline(spec, at_s, ':'));
    std::getline(spec, mttr_s, ':');
    if (!ok) {
      std::cerr << "hitsim: --fail-domain wants KIND:INDEX:AT[:MTTR]\n";
      return 1;
    }
    try {
      const sim::DomainKind kind = sim::parse_domain_kind(kind_s);
      const sim::DomainSet domains = sim::DomainSet::derive(topology);
      const sim::FailureDomain* d = domains.find(kind, std::stoul(index_s));
      if (d == nullptr) {
        std::cerr << "hitsim: topology has no " << kind_s << " domain #"
                  << index_s << "\n";
        return 1;
      }
      sconfig.faults.fail_domain(*d, std::stod(at_s),
                                 mttr_s.empty() ? 0.0 : std::stod(mttr_s));
    } catch (const std::exception& e) {
      std::cerr << "hitsim: bad --fail-domain '" << opt.fail_domain << "': "
                << e.what() << "\n";
      return 1;
    }
  }
  if (opt.output_loss > 0.0 || opt.domain_mtbf > 0.0 ||
      !opt.fail_domain.empty()) {
    sconfig.domains.enabled = true;
    sconfig.domains.output_loss_prob = opt.output_loss;
  }
  if (opt.controller_crash > 0.0) {
    sconfig.faults.crash_controller(opt.controller_crash, opt.blackout);
  }
  sconfig.recovery.snapshot_every = opt.snapshot_every;
  sconfig.recovery.standby = opt.standby;
  sconfig.recovery.standby_takeover_s = opt.standby_takeover;
  sconfig.gray.monitor = opt.monitor;
  sconfig.gray.quarantine = opt.quarantine;
  if (obs_ctx.enabled()) sconfig.observer = &obs_ctx;

  if (!opt.csv) {
    if (wf_mode) {
      std::size_t total_stages = 0;
      for (const workflow::Workflow& wf : wfs) total_stages += wf.stages.size();
      std::cout << "hitsim: " << wfs.size() << " x " << wfs.front().name
                << " workflow (" << total_stages << " stages) on "
                << cluster.size() << " servers ("
                << topo::family_name(topology.family()) << "), "
                << scheduler->name() << " scheduler, " << opt.mode
                << " mode, seed " << opt.seed << "\n\n";
    } else {
      std::cout << "hitsim: " << jobs.size() << " jobs on " << cluster.size()
                << " servers (" << topo::family_name(topology.family()) << "), "
                << scheduler->name() << " scheduler, " << opt.mode
                << " mode, seed " << opt.seed << "\n\n";
    }
  }

  if (opt.mode == "batch") {
    sim::SimResult result;
    workflow::WorkflowStats wf_stats;
    if (wf_mode) {
      workflow::BatchWorkflowResult bw = workflow::run_workflows_batch(
          cluster, sconfig, wf_sched, wfs, generator, ids, *scheduler, rng);
      result = std::move(bw.sim);
      wf_stats = bw.stats;
    } else {
      const sim::ClusterSimulator sim(cluster, sconfig);
      result = sim.run(*scheduler, jobs, ids, rng);
    }
    if (opt.csv) {
      stats::CsvWriter csv(std::cout, {"job", "benchmark", "class",
                                       "completion_s", "shuffle_gb",
                                       "shuffle_cost_gbt", "remote_map_gb"});
      for (const sim::JobResult& j : result.jobs) {
        csv.row({std::int64_t{j.id.value()}, j.benchmark,
                 std::string(mr::job_class_name(j.cls)), j.completion_time,
                 j.shuffle_gb, j.shuffle_cost, j.remote_map_gb});
      }
      // Workflow accounting goes to stderr so the per-job CSV stays parseable.
      if (wf_mode) {
        std::cerr << "hitsim: workflow stages " << wf_stats.stages_completed
                  << "/" << wf_stats.stages_total << ", makespan "
                  << wf_stats.makespan << " s, stretch " << wf_stats.stretch
                  << " (hedges " << wf_stats.hedges_won << " won, "
                  << wf_stats.hedges_lost << " lost)\n";
      }
    } else {
      stats::RunningSummary jct;
      for (double v : result.job_completion_times()) jct.add(v);
      stats::Table table({"metric", "value"});
      table.add_row({"mean JCT (s)", stats::Table::num(jct.mean())});
      table.add_row({"max JCT (s)", stats::Table::num(jct.max())});
      table.add_row({"makespan (s)", stats::Table::num(result.makespan)});
      table.add_row({"shuffle cost (GB*T)",
                     stats::Table::num(result.total_shuffle_cost, 1)});
      table.add_row({"avg route hops", stats::Table::num(result.average_route_hops())});
      table.add_row({"remote map (GB)",
                     stats::Table::num(result.total_remote_map_gb, 1)});
      if (!result.coflows.empty()) {
        table.add_row({"mean CCT (s)", stats::Table::num(result.average_coflow_cct())});
        table.add_row({"p95 CCT (s)", stats::Table::num(result.p95_coflow_cct())});
      }
      if (result.speculative_copies > 0) {
        table.add_row({"speculative copies",
                       stats::Table::num(static_cast<double>(result.speculative_copies), 0)});
        table.add_row({"  won",
                       stats::Table::num(static_cast<double>(result.speculative_won), 0)});
        table.add_row({"  lost",
                       stats::Table::num(static_cast<double>(result.speculative_lost), 0)});
      }
      if (wf_mode) add_workflow_rows(table, wf_stats);
      if (result.gray.any()) add_gray_rows(table, result.gray);
      if (result.control.any()) add_recovery_rows(table, result.control);
      if (result.fault_domains.any()) {
        add_domain_rows(table, result.fault_domains);
      }
      std::cout << table.render();
    }
  } else if (opt.mode == "online") {
    sim::OnlineConfig oconfig;
    oconfig.arrival_rate = opt.arrival_rate;
    oconfig.sim = sconfig;
    oconfig.max_queue_wait = opt.max_queue_wait;
    const auto admission = parse_admission(opt.admission);
    if (!admission) {
      std::cerr << "hitsim: unknown admission policy '" << opt.admission << "'\n";
      return 1;
    }
    oconfig.admission.policy = *admission;
    oconfig.admission.max_queue = opt.max_queue;
    oconfig.admission.aimd.epoch_s = opt.aimd_epoch;
    oconfig.admission.aimd.quota_floor = opt.quota_floor;
    if (opt.tenants > 0) {
      for (std::size_t t = 0; t < opt.tenants; ++t) {
        sched::admission::TenantSpec spec;
        spec.name = "tenant-" + std::to_string(t);
        spec.weight = opt.tenant_mix.empty() ? 1.0 : opt.tenant_mix[t];
        oconfig.admission.tenants.push_back(std::move(spec));
      }
    }
    std::size_t wf_escalations = 0;
    if (wf_mode) {
      workflow::OnlinePlanBuild pb =
          workflow::build_online_plan(wfs, wf_sched, generator, ids);
      jobs = std::move(pb.jobs);
      oconfig.workflow = std::move(pb.plan);
      wf_escalations = pb.escalations;
    }
    const sim::OnlineSimulator sim(cluster, oconfig);
    const sim::OnlineResult result = sim.run(*scheduler, jobs, ids, rng);
    workflow::WorkflowStats wf_stats;
    if (wf_mode) {
      wf_stats = workflow::compute_online_stats(result, wfs);
      wf_stats.escalations = wf_escalations;
    }
    if (opt.csv) {
      stats::CsvWriter csv(std::cout, {"job", "benchmark", "arrival_s",
                                       "queueing_s", "completion_s",
                                       "shuffle_cost_gbt"});
      for (const sim::OnlineJobRecord& j : result.jobs) {
        csv.row({std::int64_t{j.id.value()}, j.benchmark, j.arrival,
                 j.queueing_delay(), j.completion_time(), j.shuffle_cost});
      }
      // Shed accounting goes to stderr so the per-job CSV stays parseable.
      if (result.overload.any()) {
        std::cerr << "hitsim: shed " << result.overload.jobs_shed << "/"
                  << jobs.size() << " jobs ("
                  << result.overload.shed_on_arrival << " queue-full, "
                  << result.overload.shed_for_room << " displaced, "
                  << result.overload.shed_deadline << " deadline; "
                  << result.overload.shed_gb << " GB)\n";
      }
      if (result.aimd.any()) {
        std::cerr << "hitsim: aimd " << result.aimd.epochs << " epochs, limit "
                  << result.aimd.final_limit << " (" << result.aimd.raises
                  << " raises, " << result.aimd.cuts << " cuts)\n";
      }
      if (!result.tenants.empty()) {
        std::cerr << "hitsim: tenant Jain index " << result.tenant_jain << "\n";
      }
      if (wf_mode) {
        std::cerr << "hitsim: workflow stages " << wf_stats.stages_completed
                  << "/" << wf_stats.stages_total << ", makespan "
                  << wf_stats.makespan << " s, stretch " << wf_stats.stretch
                  << " (hedges " << wf_stats.hedges_won << " won, "
                  << wf_stats.hedges_lost << " lost)\n";
      }
    } else {
      stats::RunningSummary jct, wait;
      for (double v : result.completion_times()) jct.add(v);
      for (double v : result.queueing_delays()) wait.add(v);
      stats::Table table({"metric", "value"});
      table.add_row({"mean JCT (s)", stats::Table::num(jct.mean())});
      table.add_row({"mean queueing (s)", stats::Table::num(wait.mean())});
      table.add_row({"makespan (s)", stats::Table::num(result.makespan)});
      table.add_row({"shuffle cost (GB*T)",
                     stats::Table::num(result.total_shuffle_cost, 1)});
      if (!result.coflows.empty()) {
        table.add_row({"mean CCT (s)", stats::Table::num(result.avg_coflow_cct)});
        table.add_row({"p95 CCT (s)", stats::Table::num(result.p95_coflow_cct)});
      }
      if (oconfig.admission.policy != sim::AdmissionPolicy::Unbounded ||
          result.overload.any()) {
        table.add_row({"jobs completed",
                       stats::Table::num(static_cast<double>(result.jobs.size()), 0)});
        table.add_row({"jobs shed",
                       stats::Table::num(static_cast<double>(result.overload.jobs_shed), 0)});
        table.add_row({"  on arrival",
                       stats::Table::num(static_cast<double>(result.overload.shed_on_arrival), 0)});
        table.add_row({"  displaced",
                       stats::Table::num(static_cast<double>(result.overload.shed_for_room), 0)});
        table.add_row({"  past deadline",
                       stats::Table::num(static_cast<double>(result.overload.shed_deadline), 0)});
        table.add_row({"peak queue depth",
                       stats::Table::num(static_cast<double>(result.overload.peak_queue_depth), 0)});
        table.add_row({"shed shuffle (GB)",
                       stats::Table::num(result.overload.shed_gb, 1)});
      }
      if (result.aimd.any()) {
        table.add_row({"aimd epochs",
                       stats::Table::num(static_cast<double>(result.aimd.epochs), 0)});
        table.add_row({"  raises",
                       stats::Table::num(static_cast<double>(result.aimd.raises), 0)});
        table.add_row({"  cuts",
                       stats::Table::num(static_cast<double>(result.aimd.cuts), 0)});
        table.add_row({"  limiter sheds",
                       stats::Table::num(static_cast<double>(result.aimd.limiter_sheds), 0)});
        table.add_row({"  final limit",
                       stats::Table::num(result.aimd.final_limit, 1)});
      }
      if (!result.tenants.empty()) {
        for (const auto& ts : result.tenants) {
          table.add_row({ts.name + " done/shed",
                         stats::Table::num(static_cast<double>(ts.completed), 0) +
                             "/" +
                             stats::Table::num(static_cast<double>(ts.shed), 0)});
        }
        table.add_row({"tenant Jain index",
                       stats::Table::num(result.tenant_jain, 3)});
      }
      if (wf_mode) add_workflow_rows(table, wf_stats);
      if (result.gray.any()) add_gray_rows(table, result.gray);
      if (result.control.any()) add_recovery_rows(table, result.control);
      if (result.fault_domains.any()) {
        add_domain_rows(table, result.fault_domains);
      }
      std::cout << table.render();
    }
  } else {
    std::cerr << "hitsim: unknown mode '" << opt.mode << "'\n";
    return 1;
  }

  if (hit != nullptr && want_ladder) {
    const core::LadderStats& ls = hit->ladder_stats();
    std::cerr << "hitsim: ladder waves full=" << ls.served[0]
              << " preference-only=" << ls.served[1]
              << " locality-greedy=" << ls.served[2]
              << " random=" << ls.served[3]
              << " (budget exhaustions " << ls.budget_exhaustions
              << ", breaker trips " << ls.breaker.trips
              << ", breaker skips " << ls.breaker_skips << ")\n";
  }

  if (trace) trace->finish();
  if (metrics_out.is_open()) {
    const std::vector<std::pair<std::string, stats::Cell>> stamp = {
        {"tool", std::string("hitsim")},
        {"scheduler", opt.scheduler},
        {"topology", opt.topology},
        {"mode", opt.mode},
        {"jobs", static_cast<std::int64_t>(jobs.size())},
        {"seed", static_cast<std::int64_t>(opt.seed)},
    };
    registry.write_jsonl(metrics_out, stamp);
  }
  if (opt.profile) profiler.write_table(std::cerr);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = parse(argc, argv);
  if (!opt) return 2;
  if (opt->help) {
    print_usage();
    std::cout << "\nregistered schedulers:";
    for (const std::string& n : core::SchedulerRegistry::instance().names()) {
      std::cout << " " << n;
    }
    std::cout << "\n";
    return 0;
  }
  try {
    return run(*opt);
  } catch (const std::exception& e) {
    std::cerr << "hitsim: " << e.what() << "\n";
    return 1;
  }
}
