// hitcamp — campaign runner, regression ledger, and what-if replay.
//
//   hitcamp run SPEC [--out-dir DIR] [--threads N] [--record-dir DIR]
//                    [--dry-run] [--quiet]
//       Expand the spec's matrix into cells, run them in parallel, and write
//       BENCH_campaign_<name>.json (deterministic: byte-identical across
//       runs and thread counts).
//
//   hitcamp compare FRESH.json BASELINE.json [--spec SPEC] [--verbose]
//       Diff two campaign result files under the spec's tolerance / SLO
//       contract (defaults: 5% relative tolerance, no SLOs).  Exit 1 on any
//       violation — the CI regression gate.
//
//   hitcamp whatif RECORD.cell --set key=value [--set ...] [--verbose]
//       Replay a recorded cell byte-identically, re-run it under the
//       overridden config, and print the paired metric diff.
//
//   hitcamp expand SPEC
//       List the cell ids a spec expands to (no simulation).
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/json.h"
#include "campaign/ledger.h"
#include "campaign/record.h"
#include "campaign/report.h"
#include "campaign/runner.h"
#include "campaign/spec.h"
#include "campaign/whatif.h"

namespace {

using namespace hit;

void print_usage() {
  std::cout <<
      "hitcamp — experiment campaigns over the HitSched simulators\n"
      "\n"
      "usage:\n"
      "  hitcamp run SPEC [options]         run a campaign\n"
      "    --out-dir DIR     where BENCH_campaign_<name>.json goes (default .)\n"
      "    --record-dir DIR  write one replayable .cell record per cell\n"
      "    --threads N       worker threads (default: hardware)\n"
      "    --dry-run         list cells without simulating\n"
      "    --quiet           no per-cell progress lines\n"
      "  hitcamp compare FRESH BASELINE [options]   regression ledger\n"
      "    --spec SPEC       tolerance / SLO / compare contract (default: 5%)\n"
      "    --verbose         print every comparison row, not just failures\n"
      "  hitcamp whatif RECORD --set key=value [--set ...]   counterfactual\n"
      "    --verbose         include obs.* metrics in the diff\n"
      "  hitcamp report RESULT.json [--metrics a,b,c]   metric table\n"
      "    --metrics LIST    comma-separated columns (default: all non-obs)\n"
      "    --cdf             per-metric distribution rows (min/p25/p50/p75/\n"
      "                      p90/p95/max across the campaign's ok cells)\n"
      "  hitcamp expand SPEC              list the cells a spec expands to\n"
      "  hitcamp --help\n";
}

campaign::CampaignSpec load_spec(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open spec '" + path + "'");
  return campaign::parse_spec(in);
}

int cmd_run(const std::vector<std::string>& args) {
  std::string spec_path, out_dir = ".", record_dir;
  std::size_t threads = 0;
  bool dry_run = false, quiet = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto value = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        throw std::runtime_error("missing value for " + arg);
      }
      return args[++i];
    };
    if (arg == "--out-dir") out_dir = value();
    else if (arg == "--record-dir") record_dir = value();
    else if (arg == "--threads") threads = std::stoul(value());
    else if (arg == "--dry-run") dry_run = true;
    else if (arg == "--quiet") quiet = true;
    else if (!arg.empty() && arg[0] == '-') {
      throw std::runtime_error("unknown option '" + arg + "'");
    } else if (spec_path.empty()) spec_path = arg;
    else throw std::runtime_error("unexpected argument '" + arg + "'");
  }
  if (spec_path.empty()) throw std::runtime_error("run wants a SPEC file");

  const campaign::CampaignSpec spec = load_spec(spec_path);
  const std::vector<campaign::Cell> cells = campaign::expand(spec);
  if (dry_run) {
    std::cout << "campaign '" << spec.name << "': " << cells.size()
              << " cells\n";
    for (const campaign::Cell& cell : cells) std::cout << cell.id << "\n";
    return 0;
  }

  campaign::RunOptions options;
  options.threads = threads;
  options.record_dir = record_dir;
  std::size_t done = 0;
  if (!quiet) {
    options.on_cell = [&](const campaign::CellResult& cell) {
      ++done;
      std::cerr << "hitcamp: [" << done << "/" << cells.size() << "] "
                << cell.id << (cell.ok ? "" : " FAILED: " + cell.error)
                << "\n";
    };
  }
  const campaign::CampaignResult result = campaign::run_campaign(spec, options);

  std::filesystem::create_directories(out_dir);
  const std::filesystem::path out_path =
      std::filesystem::path(out_dir) / ("BENCH_campaign_" + spec.name + ".json");
  std::ofstream out(out_path);
  if (!out) {
    throw std::runtime_error("cannot write '" + out_path.string() + "'");
  }
  campaign::write_campaign_json(out, result);

  std::size_t failed = 0;
  for (const campaign::CellResult& cell : result.cells) {
    if (!cell.ok) ++failed;
  }
  std::cout << "hitcamp: campaign '" << spec.name << "' — "
            << result.cells.size() << " cells (" << failed << " failed) -> "
            << out_path.string() << "\n";
  return failed == 0 ? 0 : 1;
}

int cmd_compare(const std::vector<std::string>& args) {
  std::string fresh_path, baseline_path, spec_path;
  bool verbose = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--spec") {
      if (i + 1 >= args.size()) throw std::runtime_error("missing value for --spec");
      spec_path = args[++i];
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (!arg.empty() && arg[0] == '-') {
      throw std::runtime_error("unknown option '" + arg + "'");
    } else if (fresh_path.empty()) fresh_path = arg;
    else if (baseline_path.empty()) baseline_path = arg;
    else throw std::runtime_error("unexpected argument '" + arg + "'");
  }
  if (fresh_path.empty() || baseline_path.empty()) {
    throw std::runtime_error("compare wants FRESH and BASELINE json files");
  }
  const campaign::CampaignResult fresh =
      campaign::load_campaign_json(fresh_path);
  const campaign::CampaignResult baseline =
      campaign::load_campaign_json(baseline_path);
  campaign::CompareOptions options;
  if (!spec_path.empty()) {
    options = campaign::CompareOptions::from_spec(load_spec(spec_path));
  }
  const campaign::CompareReport report =
      campaign::compare_campaigns(fresh, baseline, options);
  std::cout << campaign::render_report(report, verbose);
  return report.pass() ? 0 : 1;
}

int cmd_whatif(const std::vector<std::string>& args) {
  std::string record_path;
  std::vector<std::pair<std::string, std::string>> overrides;
  bool verbose = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--set") {
      if (i + 1 >= args.size()) throw std::runtime_error("missing value for --set");
      const std::string& kv = args[++i];
      const auto eq = kv.find('=');
      if (eq == std::string::npos) {
        throw std::runtime_error("--set wants key=value, got '" + kv + "'");
      }
      overrides.emplace_back(kv.substr(0, eq), kv.substr(eq + 1));
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (!arg.empty() && arg[0] == '-') {
      throw std::runtime_error("unknown option '" + arg + "'");
    } else if (record_path.empty()) record_path = arg;
    else throw std::runtime_error("unexpected argument '" + arg + "'");
  }
  if (record_path.empty()) throw std::runtime_error("whatif wants a RECORD file");
  std::ifstream in(record_path);
  if (!in) throw std::runtime_error("cannot open record '" + record_path + "'");
  const campaign::CellRecord record = campaign::load_record(in);
  const campaign::WhatIfReport report = campaign::run_whatif(record, overrides);
  std::cout << campaign::render_whatif(report, verbose);
  return 0;
}

int cmd_report(const std::vector<std::string>& args) {
  std::string result_path;
  std::vector<std::string> metrics;
  bool cdf = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--metrics" && i + 1 < args.size()) {
      std::stringstream ss(args[++i]);
      std::string item;
      while (std::getline(ss, item, ',')) {
        if (!item.empty()) metrics.push_back(item);
      }
    } else if (arg == "--cdf") {
      cdf = true;
    } else if (result_path.empty()) {
      result_path = arg;
    } else {
      throw std::runtime_error("report: unexpected argument '" + arg + "'");
    }
  }
  if (result_path.empty()) {
    throw std::runtime_error("report wants a campaign RESULT.json");
  }
  const campaign::CampaignResult result =
      campaign::load_campaign_json(result_path);
  std::cout << (cdf ? campaign::render_cdf(result, metrics)
                    : campaign::render_report(result, metrics));
  return 0;
}

int cmd_expand(const std::vector<std::string>& args) {
  if (args.size() != 1) throw std::runtime_error("expand wants a SPEC file");
  const campaign::CampaignSpec spec = load_spec(args[0]);
  for (const campaign::Cell& cell : campaign::expand(spec)) {
    std::cout << cell.id << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::string(argv[1]) == "--help" ||
      std::string(argv[1]) == "-h") {
    print_usage();
    return argc < 2 ? 2 : 0;
  }
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (command == "run") return cmd_run(args);
    if (command == "compare") return cmd_compare(args);
    if (command == "whatif") return cmd_whatif(args);
    if (command == "report") return cmd_report(args);
    if (command == "expand") return cmd_expand(args);
    std::cerr << "hitcamp: unknown command '" << command << "' (see --help)\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "hitcamp: " << e.what() << "\n";
    return 1;
  }
}
