// MapReduce job and task model.
//
// A Job is a set of Map tasks and Reduce tasks plus the shuffle relation
// between them; every (map, reduce) pair with a non-empty partition forms one
// shuffle traffic flow (§5.3: "each map and reduce pair form a shuffle
// traffic flow").  Jobs are classified shuffle-heavy / -medium / -light by
// their shuffle-to-input ratio, matching Table 1's workload taxonomy.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/container.h"
#include "util/ids.h"

namespace hit::mr {

enum class JobClass : std::uint8_t { ShuffleHeavy, ShuffleMedium, ShuffleLight };

[[nodiscard]] std::string_view job_class_name(JobClass cls);

struct Task {
  TaskId id;
  JobId job;
  cluster::TaskKind kind = cluster::TaskKind::Map;
  std::size_t index = 0;        ///< position within the job's map or reduce list
  double input_gb = 0.0;        ///< map: split size; reduce: total fetched bytes
  double compute_seconds = 0.0; ///< pure CPU time, excluding I/O waits
};

/// Admission-control priority classes.  Under overload the simulator and the
/// network controller shed lower classes first; within a class, FIFO order
/// still decides.  Every job defaults to Normal, so priority is inert until
/// a workload opts in.
enum class Priority : std::uint8_t { Low = 0, Normal = 1, High = 2 };

[[nodiscard]] std::string_view priority_name(Priority p);

struct Job {
  JobId id;
  std::string benchmark;  ///< e.g. "terasort"
  JobClass cls = JobClass::ShuffleLight;
  Priority priority = Priority::Normal;  ///< shed order under overload
  /// Owning tenant for multi-tenant admission (index into the run's tenant
  /// registry; plain integer so mapreduce stays independent of sched).  0 is
  /// the default tenant, so single-tenant studies are unchanged.
  std::uint32_t tenant = 0;
  /// DAG-workflow identity (src/workflow): 1-based workflow instance this job
  /// materializes a stage of, and the stage index within it.  0/0 marks a
  /// standalone job, keeping every pre-workflow path bit-identical.
  std::uint32_t workflow = 0;
  std::uint32_t stage = 0;
  /// Remaining-critical-path estimate of the owning stage (simulated
  /// seconds; 0 for standalone jobs).  Consumed by the coflow layer: with
  /// OrderPolicy::CriticalPath the stage's shuffle coflow is ordered by this
  /// value so a critical coflow outranks SEBF's shortest-first.
  double critical_path = 0.0;
  double input_gb = 0.0;
  double shuffle_gb = 0.0;  ///< total intermediate bytes (Σ flow sizes)
  std::vector<Task> maps;
  std::vector<Task> reduces;

  [[nodiscard]] std::size_t task_count() const { return maps.size() + reduces.size(); }
  [[nodiscard]] double shuffle_selectivity() const {
    return input_gb > 0.0 ? shuffle_gb / input_gb : 0.0;
  }
};

/// Monotonic id source shared by one experiment so jobs, tasks and flows are
/// globally unique across the generated workload.
class IdAllocator {
 public:
  [[nodiscard]] JobId next_job() { return JobId(job_++); }
  [[nodiscard]] TaskId next_task() { return TaskId(task_++); }
  [[nodiscard]] FlowId next_flow() { return FlowId(flow_++); }
  [[nodiscard]] PolicyId next_policy() { return PolicyId(policy_++); }

 private:
  JobId::value_type job_ = 0;
  TaskId::value_type task_ = 0;
  FlowId::value_type flow_ = 0;
  PolicyId::value_type policy_ = 0;
};

}  // namespace hit::mr
