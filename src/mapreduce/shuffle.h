// Shuffle-flow construction: expand a job's all-map-to-all-reduce shuffle
// into individual flows (§5.3: every map/reduce pair is one flow).  Partition
// sizes are uniform by default or Zipf-skewed (stragglers / hot keys).
#pragma once

#include <vector>

#include "mapreduce/job.h"
#include "network/flow.h"
#include "util/rng.h"

namespace hit::mr {

struct ShuffleConfig {
  double partition_skew = 0.0;  ///< Zipf exponent; 0 = uniform partitions
  /// Nominal rate per flow = size / rate_window: a flow of S GB demands
  /// S / window rate units of switch capacity while active.
  double rate_window = 1.0;
};

/// Flows for one job.  With skew s > 0, reduce partition weights follow
/// 1/rank^s (deterministically assigned to reduce indices) so flow sizes
/// still sum to the job's shuffle_gb.
[[nodiscard]] net::FlowSet build_shuffle_flows(const Job& job, IdAllocator& ids,
                                               const ShuffleConfig& config = {});

/// Flows for a whole workload, concatenated.
[[nodiscard]] net::FlowSet build_shuffle_flows(const std::vector<Job>& jobs,
                                               IdAllocator& ids,
                                               const ShuffleConfig& config = {});

}  // namespace hit::mr
