#include "mapreduce/profiles.h"

#include <array>
#include <stdexcept>

namespace hit::mr {
namespace {

// name, class, mix%, shuffle selectivity, map s/GB, reduce s/GB, input GB.
constexpr std::array<BenchmarkProfile, 11> kProfiles{{
    // Shuffle-heavy (Table 1): terasort 5%, index 10%, join 10%,
    // sequence-count 10%, adjacency 5%.
    {"terasort", JobClass::ShuffleHeavy, 5.0, 1.00, 6.0, 8.0, 30.0},
    {"index", JobClass::ShuffleHeavy, 10.0, 0.90, 8.0, 9.0, 24.0},
    {"join", JobClass::ShuffleHeavy, 10.0, 0.95, 7.0, 10.0, 24.0},
    {"sequence-count", JobClass::ShuffleHeavy, 10.0, 0.85, 9.0, 9.0, 20.0},
    {"adjacency", JobClass::ShuffleHeavy, 5.0, 0.80, 8.0, 9.0, 20.0},
    // Shuffle-medium: inverted-index 10%, term-vector 10%.
    {"inverted-index", JobClass::ShuffleMedium, 10.0, 0.45, 9.0, 7.0, 20.0},
    {"term-vector", JobClass::ShuffleMedium, 10.0, 0.40, 10.0, 7.0, 20.0},
    // Shuffle-light: grep 15%, wordcount 10%, classification 5%,
    // histogram 10%.
    {"grep", JobClass::ShuffleLight, 15.0, 0.02, 5.0, 3.0, 16.0},
    {"wordcount", JobClass::ShuffleLight, 10.0, 0.10, 7.0, 4.0, 16.0},
    {"classification", JobClass::ShuffleLight, 5.0, 0.05, 9.0, 4.0, 16.0},
    {"histogram", JobClass::ShuffleLight, 10.0, 0.05, 6.0, 3.0, 16.0},
}};

}  // namespace

std::span<const BenchmarkProfile> puma_profiles() { return kProfiles; }

const BenchmarkProfile& profile(std::string_view name) {
  for (const auto& p : kProfiles) {
    if (p.name == name) return p;
  }
  throw std::invalid_argument("profile: unknown benchmark '" + std::string(name) + "'");
}

}  // namespace hit::mr
