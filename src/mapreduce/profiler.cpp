#include "mapreduce/profiler.h"

#include <algorithm>
#include <stdexcept>

namespace hit::mr {

void ShuffleProfiler::observe(std::string_view benchmark, double input_gb,
                              double shuffle_gb, double shuffle_seconds) {
  if (benchmark.empty()) throw std::invalid_argument("observe: empty benchmark name");
  if (input_gb <= 0.0) throw std::invalid_argument("observe: input must be positive");
  if (shuffle_gb < 0.0) throw std::invalid_argument("observe: negative shuffle volume");

  Totals& t = totals_[std::string(benchmark)];
  t.input_gb += input_gb;
  t.shuffle_gb += shuffle_gb;
  if (shuffle_seconds > 0.0) {
    t.timed_shuffle_gb += shuffle_gb;
    t.shuffle_seconds += shuffle_seconds;
  }
  ++t.samples;
}

std::optional<ShuffleProfiler::Estimate> ShuffleProfiler::estimate(
    std::string_view benchmark) const {
  const auto it = totals_.find(std::string(benchmark));
  if (it == totals_.end()) return std::nullopt;
  const Totals& t = it->second;
  Estimate e;
  e.shuffle_selectivity = t.input_gb > 0.0 ? t.shuffle_gb / t.input_gb : 0.0;
  e.shuffle_rate =
      t.shuffle_seconds > 0.0 ? t.timed_shuffle_gb / t.shuffle_seconds : 0.0;
  e.samples = t.samples;
  return e;
}

double ShuffleProfiler::selectivity_or(std::string_view benchmark,
                                       double fallback) const {
  const auto e = estimate(benchmark);
  return e ? e->shuffle_selectivity : fallback;
}

double ShuffleProfiler::predict_shuffle_gb(std::string_view benchmark,
                                           double input_gb) const {
  const auto e = estimate(benchmark);
  if (!e) {
    throw std::out_of_range("predict_shuffle_gb: benchmark never observed: " +
                            std::string(benchmark));
  }
  return e->shuffle_selectivity * input_gb;
}

std::vector<std::string> ShuffleProfiler::profiled_benchmarks() const {
  std::vector<std::string> names;
  names.reserve(totals_.size());
  for (const auto& [name, totals] : totals_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace hit::mr
