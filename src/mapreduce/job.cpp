#include "mapreduce/job.h"

namespace hit::mr {

std::string_view job_class_name(JobClass cls) {
  switch (cls) {
    case JobClass::ShuffleHeavy: return "shuffle-heavy";
    case JobClass::ShuffleMedium: return "shuffle-medium";
    case JobClass::ShuffleLight: return "shuffle-light";
  }
  return "?";
}

}  // namespace hit::mr
