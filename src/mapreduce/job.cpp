#include "mapreduce/job.h"

namespace hit::mr {

std::string_view job_class_name(JobClass cls) {
  switch (cls) {
    case JobClass::ShuffleHeavy: return "shuffle-heavy";
    case JobClass::ShuffleMedium: return "shuffle-medium";
    case JobClass::ShuffleLight: return "shuffle-light";
  }
  return "?";
}

std::string_view priority_name(Priority p) {
  switch (p) {
    case Priority::Low: return "low";
    case Priority::Normal: return "normal";
    case Priority::High: return "high";
  }
  return "?";
}

}  // namespace hit::mr
