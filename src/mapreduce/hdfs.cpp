#include "mapreduce/hdfs.h"

#include <algorithm>
#include <stdexcept>

namespace hit::mr {

BlockPlacement::BlockPlacement(const cluster::Cluster& cluster,
                               const std::vector<Job>& jobs, Rng& rng,
                               std::size_t replication) {
  const std::size_t n = cluster.size();
  if (n == 0) throw std::invalid_argument("BlockPlacement: empty cluster");
  replication = std::min(replication, n);
  if (replication == 0) throw std::invalid_argument("BlockPlacement: replication >= 1");

  std::vector<ServerId> pool;
  pool.reserve(n);
  for (const auto& s : cluster.servers()) pool.push_back(s.id);

  for (const Job& job : jobs) {
    for (const Task& map : job.maps) {
      // Partial Fisher-Yates: pick `replication` distinct servers.
      std::vector<ServerId> picks = pool;
      for (std::size_t i = 0; i < replication; ++i) {
        const std::size_t j = i + rng.uniform_index(picks.size() - i);
        std::swap(picks[i], picks[j]);
      }
      picks.resize(replication);
      std::sort(picks.begin(), picks.end());
      replicas_.emplace(map.id, std::move(picks));
    }
  }
}

const std::vector<ServerId>& BlockPlacement::replicas(TaskId map_task) const {
  const auto it = replicas_.find(map_task);
  if (it == replicas_.end()) {
    throw std::out_of_range("BlockPlacement: task has no placed split");
  }
  return it->second;
}

bool BlockPlacement::local(TaskId map_task, ServerId server) const {
  const auto& r = replicas(map_task);
  return std::binary_search(r.begin(), r.end(), server);
}

double BlockPlacement::remote_map_gb(const Task& map_task, ServerId server) const {
  return local(map_task.id, server) ? 0.0 : map_task.input_gb;
}

}  // namespace hit::mr
