#include "mapreduce/trace.h"

#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "mapreduce/profiles.h"

namespace hit::mr {
namespace {

std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream ss(line);
  while (std::getline(ss, field, ',')) fields.push_back(field);
  return fields;
}

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::invalid_argument("trace line " + std::to_string(line_no) + ": " + what);
}

double parse_positive(const std::string& text, std::size_t line_no,
                      const char* what, bool allow_zero) {
  std::size_t used = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &used);
  } catch (const std::exception&) {
    fail(line_no, std::string("bad ") + what + " '" + text + "'");
  }
  if (used != text.size()) fail(line_no, std::string("trailing junk in ") + what);
  if (value < 0.0 || (!allow_zero && value == 0.0)) {
    fail(line_no, std::string(what) + " must be positive");
  }
  return value;
}

}  // namespace

std::vector<TraceEntry> load_trace(std::istream& in) {
  std::vector<TraceEntry> entries;
  std::string line;
  std::size_t line_no = 0;
  bool header_seen = false;
  double last_arrival = 0.0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    if (!header_seen) {
      if (line.rfind("benchmark,", 0) != 0) {
        fail(line_no, "missing 'benchmark,input_gb[,arrival_s]' header");
      }
      header_seen = true;
      continue;
    }
    const auto fields = split_csv(line);
    if (fields.size() < 2 || fields.size() > 5) {
      fail(line_no, "expected 2 to 5 fields");
    }
    TraceEntry entry;
    entry.benchmark = fields[0];
    try {
      (void)profile(entry.benchmark);  // validates the name
    } catch (const std::invalid_argument&) {
      fail(line_no, "unknown benchmark '" + entry.benchmark + "'");
    }
    entry.input_gb = parse_positive(fields[1], line_no, "input_gb", false);
    if (fields.size() >= 3) {
      entry.arrival_s = parse_positive(fields[2], line_no, "arrival_s", true);
      if (entry.arrival_s < last_arrival) {
        fail(line_no, "arrivals must be non-decreasing");
      }
      last_arrival = entry.arrival_s;
    }
    if (fields.size() >= 4) {
      const std::string& p = fields[3];
      if (p == "low") {
        entry.priority = Priority::Low;
      } else if (p == "normal" || p.empty()) {
        entry.priority = Priority::Normal;
      } else if (p == "high") {
        entry.priority = Priority::High;
      } else {
        fail(line_no, "bad priority '" + p + "' (low|normal|high)");
      }
    }
    if (fields.size() == 5) {
      entry.tenant = static_cast<std::uint32_t>(
          parse_positive(fields[4], line_no, "tenant", true));
    }
    entries.push_back(std::move(entry));
  }
  if (!header_seen && !entries.empty()) {
    throw std::invalid_argument("trace: missing header");
  }
  return entries;
}

void save_trace(std::ostream& out, const std::vector<TraceEntry>& entries) {
  bool labelled = false;
  for (const TraceEntry& e : entries) {
    if (e.priority != Priority::Normal || e.tenant != 0) {
      labelled = true;
      break;
    }
  }
  out << (labelled ? "benchmark,input_gb,arrival_s,priority,tenant\n"
                   : "benchmark,input_gb,arrival_s\n");
  // Shortest representation that parses back to the same double: a saved
  // trace must replay the exact workload (campaign cell records rely on it),
  // so truncating to 6 significant digits is not an option — but most values
  // are short, and %.17g everywhere would bloat the common case.
  char buf[64];
  const auto exact = [&buf](double v) -> const char* {
    for (int prec = 6; prec <= 17; ++prec) {
      std::snprintf(buf, sizeof buf, "%.*g", prec, v);
      double back = 0.0;
      if (std::sscanf(buf, "%lf", &back) == 1 && back == v) break;
    }
    return buf;
  };
  for (const TraceEntry& e : entries) {
    out << e.benchmark << ',' << exact(e.input_gb);
    out << ',' << exact(e.arrival_s);
    if (labelled) {
      out << ',' << priority_name(e.priority) << ',' << e.tenant;
    }
    out << '\n';
  }
}

std::vector<Job> jobs_from_trace(const std::vector<TraceEntry>& entries,
                                 const WorkloadGenerator& generator,
                                 IdAllocator& ids) {
  std::vector<Job> jobs;
  jobs.reserve(entries.size());
  for (const TraceEntry& e : entries) {
    Job job = generator.make_job(profile(e.benchmark), e.input_gb, ids);
    job.priority = e.priority;
    job.tenant = e.tenant;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::vector<TraceEntry> trace_from_jobs(const std::vector<Job>& jobs,
                                        const std::vector<double>& arrivals) {
  if (!arrivals.empty() && arrivals.size() != jobs.size()) {
    throw std::invalid_argument("trace_from_jobs: arrivals size mismatch");
  }
  std::vector<TraceEntry> entries;
  entries.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    TraceEntry e;
    e.benchmark = jobs[i].benchmark;
    e.input_gb = jobs[i].input_gb;
    e.arrival_s = arrivals.empty() ? 0.0 : arrivals[i];
    e.priority = jobs[i].priority;
    e.tenant = jobs[i].tenant;
    entries.push_back(std::move(e));
  }
  return entries;
}

}  // namespace hit::mr
