// Workload trace I/O: serialize generated workloads to a simple CSV trace
// and load traces back — so experiments can be pinned to an exact job
// sequence (or to externally produced traces) instead of a generator seed.
//
// Trace format (header required):
//   benchmark,input_gb[,arrival_s[,priority[,tenant]]]
//   terasort,30.5
//   grep,16.0,12.25
//   wordcount,8.0,20.5,high,2
//
// The optional priority (low|normal|high) and tenant columns let a trace
// round-trip the labels the generator draws from forked rng streams, so a
// recorded workload replays with full fidelity (campaign what-if replay
// depends on this).  save_trace only emits the extra columns when some
// entry actually uses them, keeping legacy traces byte-identical.
//
// Unknown benchmark names are rejected at load time (the profile table is
// the schema for compute/shuffle characteristics).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "mapreduce/job.h"
#include "mapreduce/workload.h"

namespace hit::mr {

struct TraceEntry {
  std::string benchmark;
  double input_gb = 0.0;
  double arrival_s = 0.0;  ///< optional; 0 when the trace has no arrivals
  Priority priority = Priority::Normal;  ///< optional admission class label
  std::uint32_t tenant = 0;              ///< optional owning tenant
};

/// Parse a trace stream.  Throws std::invalid_argument with a line number on
/// malformed rows or unknown benchmarks.
[[nodiscard]] std::vector<TraceEntry> load_trace(std::istream& in);

/// Write entries in the canonical format (always includes arrivals).
void save_trace(std::ostream& out, const std::vector<TraceEntry>& entries);

/// Materialize jobs from trace entries using the generator's task-shaping
/// rules (block size, reduce ratio, caps).
[[nodiscard]] std::vector<Job> jobs_from_trace(const std::vector<TraceEntry>& entries,
                                               const WorkloadGenerator& generator,
                                               IdAllocator& ids);

/// Round-trip helper: turn generated jobs (plus optional arrivals) back
/// into trace entries.
[[nodiscard]] std::vector<TraceEntry> trace_from_jobs(
    const std::vector<Job>& jobs, const std::vector<double>& arrivals = {});

}  // namespace hit::mr
