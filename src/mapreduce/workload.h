// Workload generation: sample jobs from Table 1's benchmark mix and expand
// each into Map/Reduce tasks with realistic split sizes and compute costs.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "mapreduce/job.h"
#include "mapreduce/profiles.h"
#include "util/rng.h"

namespace hit::mr {

struct WorkloadConfig {
  std::size_t num_jobs = 10;
  double block_size_gb = 1.0;      ///< HDFS split size; one map task per split
  double reduce_ratio = 0.5;       ///< reduces per map (>= 1 reduce per job)
  std::size_t max_maps_per_job = 64;
  std::size_t max_reduces_per_job = 32;
  double input_sigma = 0.25;       ///< lognormal spread around typical input
  double partition_skew = 0.0;     ///< Zipf exponent across reduce partitions
  /// Restrict sampling to one class (Figure 8a runs one job per class).
  std::optional<JobClass> only_class;
  /// Uniform input override (the case study runs two jobs with equal input).
  std::optional<double> fixed_input_gb;
  /// Priority mix for admission-control studies: fraction of jobs drawn Low
  /// and High (the rest stay Normal).  Both default to 0, so generation is
  /// bit-identical to the pre-priority workload unless a study opts in; the
  /// draw uses a forked rng stream, leaving the main stream untouched either
  /// way.
  double low_priority_fraction = 0.0;
  double high_priority_fraction = 0.0;
  /// Multi-tenant studies: number of tenants jobs are spread across (0 or 1
  /// keeps every job on the default tenant 0 with generation bit-identical
  /// to the single-tenant workload; the draw uses its own forked stream).
  std::size_t num_tenants = 0;
  /// Relative arrival weights per tenant (empty = uniform).  Size must match
  /// num_tenants when set; an adversarial mix like {8,1,1} sends 80% of jobs
  /// to tenant 0.
  std::vector<double> tenant_weights;
};

class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadConfig config = {});

  /// Sample `config.num_jobs` jobs from the Table 1 mix.
  [[nodiscard]] std::vector<Job> generate(IdAllocator& ids, Rng& rng) const;

  /// Materialize one job from a specific benchmark profile.
  [[nodiscard]] Job make_job(const BenchmarkProfile& profile, double input_gb,
                             IdAllocator& ids) const;

  /// Convenience: named benchmark with its typical input.
  [[nodiscard]] Job make_job(std::string_view benchmark, IdAllocator& ids) const;

  [[nodiscard]] const WorkloadConfig& config() const noexcept { return config_; }

 private:
  WorkloadConfig config_;
};

}  // namespace hit::mr
