#include "mapreduce/workload.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hit::mr {

WorkloadGenerator::WorkloadGenerator(WorkloadConfig config) : config_(config) {
  if (config_.block_size_gb <= 0.0) {
    throw std::invalid_argument("WorkloadGenerator: block_size_gb must be positive");
  }
  if (config_.reduce_ratio <= 0.0) {
    throw std::invalid_argument("WorkloadGenerator: reduce_ratio must be positive");
  }
  if (config_.max_maps_per_job == 0 || config_.max_reduces_per_job == 0) {
    throw std::invalid_argument("WorkloadGenerator: task caps must be >= 1");
  }
  if (config_.low_priority_fraction < 0.0 || config_.high_priority_fraction < 0.0 ||
      config_.low_priority_fraction + config_.high_priority_fraction > 1.0) {
    throw std::invalid_argument(
        "WorkloadGenerator: priority fractions must be >= 0 and sum to <= 1");
  }
  if (!config_.tenant_weights.empty() &&
      config_.tenant_weights.size() != config_.num_tenants) {
    throw std::invalid_argument(
        "WorkloadGenerator: tenant_weights size must match num_tenants");
  }
  for (double w : config_.tenant_weights) {
    if (w <= 0.0) {
      throw std::invalid_argument(
          "WorkloadGenerator: tenant_weights must be positive");
    }
  }
}

Job WorkloadGenerator::make_job(const BenchmarkProfile& profile, double input_gb,
                                IdAllocator& ids) const {
  if (input_gb <= 0.0) throw std::invalid_argument("make_job: input must be positive");

  Job job;
  job.id = ids.next_job();
  job.benchmark = std::string(profile.name);
  job.cls = profile.cls;
  job.input_gb = input_gb;
  job.shuffle_gb = input_gb * profile.shuffle_selectivity;

  const auto num_maps = std::min<std::size_t>(
      config_.max_maps_per_job,
      static_cast<std::size_t>(std::ceil(input_gb / config_.block_size_gb)));
  const auto num_reduces = std::min<std::size_t>(
      config_.max_reduces_per_job,
      std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 std::llround(static_cast<double>(num_maps) * config_.reduce_ratio))));

  const double split_gb = input_gb / static_cast<double>(num_maps);
  const double fetch_gb = job.shuffle_gb / static_cast<double>(num_reduces);

  job.maps.reserve(num_maps);
  for (std::size_t i = 0; i < num_maps; ++i) {
    Task t;
    t.id = ids.next_task();
    t.job = job.id;
    t.kind = cluster::TaskKind::Map;
    t.index = i;
    t.input_gb = split_gb;
    t.compute_seconds = split_gb * profile.map_sec_per_gb;
    job.maps.push_back(t);
  }
  job.reduces.reserve(num_reduces);
  for (std::size_t i = 0; i < num_reduces; ++i) {
    Task t;
    t.id = ids.next_task();
    t.job = job.id;
    t.kind = cluster::TaskKind::Reduce;
    t.index = i;
    t.input_gb = fetch_gb;
    t.compute_seconds = fetch_gb * profile.reduce_sec_per_gb;
    job.reduces.push_back(t);
  }
  return job;
}

Job WorkloadGenerator::make_job(std::string_view benchmark, IdAllocator& ids) const {
  const BenchmarkProfile& p = profile(benchmark);
  const double input = config_.fixed_input_gb.value_or(p.typical_input_gb);
  return make_job(p, input, ids);
}

std::vector<Job> WorkloadGenerator::generate(IdAllocator& ids, Rng& rng) const {
  // Weight table restricted to the selected class (if any).
  std::vector<const BenchmarkProfile*> pool;
  std::vector<double> weights;
  for (const BenchmarkProfile& p : puma_profiles()) {
    if (config_.only_class && p.cls != *config_.only_class) continue;
    pool.push_back(&p);
    weights.push_back(p.mix_percent);
  }
  if (pool.empty()) throw std::logic_error("WorkloadGenerator: empty profile pool");

  // Priorities draw from a fork so the benchmark/input stream is identical
  // whether or not a priority mix is configured.
  const bool mixed = config_.low_priority_fraction > 0.0 ||
                     config_.high_priority_fraction > 0.0;
  Rng priority_rng = rng.fork(0x5052494Full);  // "PRIO"

  // Tenant assignment likewise draws from its own fork: a multi-tenant run
  // sees the exact same benchmarks, inputs and priorities as the
  // single-tenant run, only labelled.
  const bool tenanted = config_.num_tenants > 1;
  Rng tenant_rng = rng.fork(0x54454E54ull);  // "TENT"
  std::vector<double> tenant_weights = config_.tenant_weights;
  if (tenanted && tenant_weights.empty()) {
    tenant_weights.assign(config_.num_tenants, 1.0);
  }

  std::vector<Job> jobs;
  jobs.reserve(config_.num_jobs);
  for (std::size_t j = 0; j < config_.num_jobs; ++j) {
    const BenchmarkProfile& p = *pool[rng.weighted_index(weights)];
    const double input =
        config_.fixed_input_gb.value_or(
            std::max(config_.block_size_gb,
                     rng.lognormal_median(p.typical_input_gb, config_.input_sigma)));
    jobs.push_back(make_job(p, input, ids));
    if (mixed) {
      const double u = priority_rng.uniform();
      if (u < config_.low_priority_fraction) {
        jobs.back().priority = Priority::Low;
      } else if (u < config_.low_priority_fraction + config_.high_priority_fraction) {
        jobs.back().priority = Priority::High;
      }
    }
    if (tenanted) {
      jobs.back().tenant =
          static_cast<std::uint32_t>(tenant_rng.weighted_index(tenant_weights));
    }
  }
  return jobs;
}

}  // namespace hit::mr
