// Offline application profiling — §6: "In the offline phase, we profile the
// shuffle data rate for each application and capture the topology
// architecture configuration in the cluster."
//
// The profiler ingests per-job observations (input size, measured shuffle
// volume, shuffle duration) from previous runs and produces per-benchmark
// estimates of shuffle selectivity and sustained shuffle rate — exactly the
// quantities Hit-Scheduler's flow model consumes (f.size, f.rate) before a
// job has run.  Ratio estimators keep the estimates unbiased for the
// proportional model shuffle = selectivity x input.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace hit::mr {

class ShuffleProfiler {
 public:
  struct Estimate {
    double shuffle_selectivity = 0.0;  ///< intermediate bytes per input byte
    double shuffle_rate = 0.0;         ///< GB per second while shuffling (0 if unknown)
    std::size_t samples = 0;
  };

  /// Record one finished job.  `shuffle_seconds` <= 0 means "duration not
  /// measured" (selectivity-only observation).
  void observe(std::string_view benchmark, double input_gb, double shuffle_gb,
               double shuffle_seconds = 0.0);

  /// Estimate for a benchmark; nullopt before any observation.
  [[nodiscard]] std::optional<Estimate> estimate(std::string_view benchmark) const;

  /// Selectivity with a fallback for unprofiled benchmarks.
  [[nodiscard]] double selectivity_or(std::string_view benchmark,
                                      double fallback) const;

  /// Predicted shuffle volume of an incoming job.  Throws when the
  /// benchmark was never observed.
  [[nodiscard]] double predict_shuffle_gb(std::string_view benchmark,
                                          double input_gb) const;

  [[nodiscard]] std::size_t benchmarks_profiled() const { return totals_.size(); }

  /// Names seen so far, sorted (stable reporting).
  [[nodiscard]] std::vector<std::string> profiled_benchmarks() const;

  void clear() { totals_.clear(); }

 private:
  struct Totals {
    double input_gb = 0.0;
    double shuffle_gb = 0.0;
    double timed_shuffle_gb = 0.0;  ///< shuffle bytes from timed observations
    double shuffle_seconds = 0.0;
    std::size_t samples = 0;
  };
  std::unordered_map<std::string, Totals> totals_;
};

}  // namespace hit::mr
