// PUMA benchmark profiles — the statistical stand-in for running the Purdue
// MapReduce Benchmarks Suite on a real cluster.
//
// Table 1 of the paper fixes the workload mix; per-benchmark shuffle
// selectivities follow the PUMA characterization (shuffle-heavy benchmarks
// move ~their whole input through the shuffle; shuffle-light ones almost
// nothing).  The scheduler only ever observes task counts, split sizes and
// flow sizes/rates, all of which these profiles determine.
#pragma once

#include <span>
#include <string_view>

#include "mapreduce/job.h"

namespace hit::mr {

struct BenchmarkProfile {
  std::string_view name;
  JobClass cls;
  double mix_percent;          ///< Table 1 share of the workload
  double shuffle_selectivity;  ///< intermediate bytes per input byte
  double map_sec_per_gb;       ///< map compute cost
  double reduce_sec_per_gb;    ///< reduce compute cost (per shuffled GB)
  double typical_input_gb;     ///< median input size; sampled lognormally
};

/// The 11 benchmarks of Table 1.  Percentages sum to 100.
[[nodiscard]] std::span<const BenchmarkProfile> puma_profiles();

/// Lookup by name; throws std::invalid_argument for unknown benchmarks.
[[nodiscard]] const BenchmarkProfile& profile(std::string_view name);

}  // namespace hit::mr
