// HDFS-like block placement: which servers hold replicas of each map task's
// input split.  Drives map locality (a map scheduled off-replica pays remote
// map traffic) — the remote-map side of Figure 1's traffic breakdown, and the
// signal the DelayScheduler baseline optimizes for.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.h"
#include "mapreduce/job.h"
#include "util/ids.h"
#include "util/rng.h"

namespace hit::mr {

class BlockPlacement {
 public:
  /// Place every map split of every job with `replication` random distinct
  /// replica servers (HDFS default 3, clamped to cluster size).
  BlockPlacement(const cluster::Cluster& cluster, const std::vector<Job>& jobs,
                 Rng& rng, std::size_t replication = 3);

  /// Replica servers of one map task's split.
  [[nodiscard]] const std::vector<ServerId>& replicas(TaskId map_task) const;

  /// True when the task's split has a replica on `server` (map is node-local).
  [[nodiscard]] bool local(TaskId map_task, ServerId server) const;

  /// Remote map traffic charged when the task runs on `server`: the split
  /// size when non-local, 0 otherwise.
  [[nodiscard]] double remote_map_gb(const Task& map_task, ServerId server) const;

 private:
  std::unordered_map<TaskId, std::vector<ServerId>> replicas_;
};

}  // namespace hit::mr
