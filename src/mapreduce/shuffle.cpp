#include "mapreduce/shuffle.h"

#include <cmath>
#include <stdexcept>

namespace hit::mr {

net::FlowSet build_shuffle_flows(const Job& job, IdAllocator& ids,
                                 const ShuffleConfig& config) {
  if (config.rate_window <= 0.0) {
    throw std::invalid_argument("build_shuffle_flows: rate_window must be positive");
  }
  net::FlowSet flows;
  if (job.maps.empty() || job.reduces.empty() || job.shuffle_gb <= 0.0) return flows;

  // Per-reduce partition weights (normalized).
  const std::size_t r = job.reduces.size();
  std::vector<double> weight(r, 1.0);
  if (config.partition_skew > 0.0) {
    for (std::size_t i = 0; i < r; ++i) {
      weight[i] = 1.0 / std::pow(static_cast<double>(i + 1), config.partition_skew);
    }
  }
  double wsum = 0.0;
  for (double w : weight) wsum += w;

  const double per_map_gb = job.shuffle_gb / static_cast<double>(job.maps.size());
  flows.reserve(job.maps.size() * r);
  for (const Task& m : job.maps) {
    for (std::size_t i = 0; i < r; ++i) {
      net::Flow f;
      f.id = ids.next_flow();
      f.job = job.id;
      f.src_task = m.id;
      f.dst_task = job.reduces[i].id;
      f.size_gb = per_map_gb * weight[i] / wsum;
      f.rate = f.size_gb / config.rate_window;
      f.priority = static_cast<std::uint8_t>(job.priority);
      f.tenant = job.tenant;
      f.workflow = job.workflow;
      f.stage = job.stage;
      f.cp = job.critical_path;
      flows.push_back(f);
    }
  }
  return flows;
}

net::FlowSet build_shuffle_flows(const std::vector<Job>& jobs, IdAllocator& ids,
                                 const ShuffleConfig& config) {
  net::FlowSet all;
  for (const Job& job : jobs) {
    net::FlowSet flows = build_shuffle_flows(job, ids, config);
    all.insert(all.end(), flows.begin(), flows.end());
  }
  return all;
}

}  // namespace hit::mr
