#include "campaign/json.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "stats/export.h"

namespace hit::campaign {
namespace {

// Shortest decimal form that round-trips the exact double.
std::string format_number(double v) {
  char buf[64];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    double back = 0.0;
    std::sscanf(buf, "%lf", &back);
    if (back == v) return buf;
  }
  return buf;
}

std::string quote(std::string_view s) {
  return "\"" + stats::JsonLinesWriter::escape(s) + "\"";
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("json offset " + std::to_string(pos_) + ": " +
                                what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_keyword(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::String;
      v.string = parse_string();
      return v;
    }
    if (consume_keyword("true")) {
      JsonValue v;
      v.kind = JsonValue::Kind::Bool;
      v.boolean = true;
      return v;
    }
    if (consume_keyword("false")) {
      JsonValue v;
      v.kind = JsonValue::Kind::Bool;
      return v;
    }
    if (consume_keyword("null")) return JsonValue{};
    return parse_number();
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // The writer only escapes control characters, so ASCII suffices.
          if (code > 0x7F) fail("non-ASCII \\u escape unsupported");
          out += static_cast<char>(code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    try {
      v.number = std::stod(std::string(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      pos_ = start;
      fail("bad number");
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

const JsonValue& require(const JsonValue& doc, std::string_view key) {
  const JsonValue* v = doc.find(key);
  if (v == nullptr) {
    throw std::invalid_argument("campaign json: missing '" + std::string(key) +
                                "'");
  }
  return *v;
}

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

void write_campaign_json(std::ostream& out, const CampaignResult& result) {
  out << "{\n";
  out << "  \"campaign\": " << quote(result.name) << ",\n";
  out << "  \"git_sha\": " << quote(result.git_sha) << ",\n";
  out << "  \"host\": " << quote(result.host) << ",\n";
  out << "  \"build_type\": " << quote(result.build_type) << ",\n";
  out << "  \"axes\": [";
  for (std::size_t i = 0; i < result.axis_names.size(); ++i) {
    if (i) out << ", ";
    out << quote(result.axis_names[i]);
  }
  out << "],\n";
  out << "  \"cells\": [";
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const CellResult& cell = result.cells[i];
    out << (i ? ",\n    {\n" : "\n    {\n");
    out << "      \"id\": " << quote(cell.id) << ",\n";
    out << "      \"axes\": {";
    for (std::size_t a = 0; a < cell.axes.size(); ++a) {
      if (a) out << ", ";
      out << quote(cell.axes[a].first) << ": " << quote(cell.axes[a].second);
    }
    out << "},\n";
    out << "      \"ok\": " << (cell.ok ? "true" : "false");
    if (!cell.ok) {
      out << ",\n      \"error\": " << quote(cell.error);
    }
    out << ",\n      \"metrics\": {";
    for (std::size_t k = 0; k < cell.metrics.size(); ++k) {
      out << (k ? ",\n        " : "\n        ");
      out << quote(cell.metrics[k].first) << ": "
          << format_number(cell.metrics[k].second);
    }
    out << (cell.metrics.empty() ? "}" : "\n      }");
    out << "\n    }";
  }
  out << (result.cells.empty() ? "]\n" : "\n  ]\n");
  out << "}\n";
}

CampaignResult campaign_from_json(const JsonValue& doc) {
  if (doc.kind != JsonValue::Kind::Object) {
    throw std::invalid_argument("campaign json: document must be an object");
  }
  CampaignResult result;
  result.name = require(doc, "campaign").string;
  result.git_sha = require(doc, "git_sha").string;
  result.host = require(doc, "host").string;
  result.build_type = require(doc, "build_type").string;
  for (const JsonValue& axis : require(doc, "axes").array) {
    result.axis_names.push_back(axis.string);
  }
  for (const JsonValue& cell_doc : require(doc, "cells").array) {
    CellResult cell;
    cell.id = require(cell_doc, "id").string;
    for (const auto& [k, v] : require(cell_doc, "axes").object) {
      cell.axes.emplace_back(k, v.string);
    }
    cell.ok = require(cell_doc, "ok").boolean;
    if (const JsonValue* error = cell_doc.find("error")) {
      cell.error = error->string;
    }
    for (const auto& [k, v] : require(cell_doc, "metrics").object) {
      if (v.kind != JsonValue::Kind::Number) {
        throw std::invalid_argument("campaign json: metric '" + k +
                                    "' is not a number");
      }
      cell.metrics.emplace_back(k, v.number);
    }
    result.cells.push_back(std::move(cell));
  }
  return result;
}

CampaignResult load_campaign_json(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot read campaign json '" + path + "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  return campaign_from_json(parse_json(text.str()));
}

}  // namespace hit::campaign
