#include "campaign/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace hit::campaign {

namespace {

std::string format_value(double v) {
  char buf[48];
  if (v == 0.0 || (std::isfinite(v) && std::abs(v) >= 1e-3 && std::abs(v) < 1e7)) {
    std::snprintf(buf, sizeof buf, "%.4g", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.3e", v);
  }
  return buf;
}

}  // namespace

std::string render_report(const CampaignResult& result,
                          const std::vector<std::string>& metrics) {
  // Column selection: explicit list, or every non-obs metric in order of
  // first appearance across cells (so partial cells cannot hide columns).
  std::vector<std::string> cols = metrics;
  if (cols.empty()) {
    for (const CellResult& cell : result.cells) {
      for (const auto& [name, value] : cell.metrics) {
        (void)value;
        if (name.rfind("obs.", 0) == 0) continue;
        if (std::find(cols.begin(), cols.end(), name) == cols.end()) {
          cols.push_back(name);
        }
      }
    }
  }

  // Pre-render every body cell, then size the columns to their content.
  std::vector<std::vector<std::string>> rows;
  std::size_t failed = 0;
  for (const CellResult& cell : result.cells) {
    std::vector<std::string> row;
    row.push_back(cell.id);
    if (!cell.ok) {
      ++failed;
      row.push_back("ERROR: " + cell.error);
      rows.push_back(std::move(row));
      continue;
    }
    for (const std::string& name : cols) {
      const double* v = cell.metric(name);
      row.push_back(v != nullptr ? format_value(*v) : "-");
    }
    rows.push_back(std::move(row));
  }

  std::vector<std::size_t> width(cols.size() + 1, 0);
  width[0] = std::string("cell").size();
  for (std::size_t c = 0; c < cols.size(); ++c) {
    width[c + 1] = cols[c].size();
  }
  for (const std::vector<std::string>& row : rows) {
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream out;
  out << "campaign " << result.name;
  if (!result.git_sha.empty()) out << " @ " << result.git_sha;
  out << "\n";
  const auto pad = [&](const std::string& text, std::size_t w) {
    out << text;
    for (std::size_t i = text.size(); i < w; ++i) out << ' ';
  };
  pad("cell", width[0]);
  for (std::size_t c = 0; c < cols.size(); ++c) {
    out << "  ";
    pad(cols[c], width[c + 1]);
  }
  out << "\n";
  for (std::size_t c = 0; c < width.size(); ++c) {
    if (c > 0) out << "  ";
    out << std::string(width[c], '-');
  }
  out << "\n";
  for (const std::vector<std::string>& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << "  ";
      // Error rows carry one wide cell; let it run past the column grid.
      pad(row[c], c < width.size() && row.size() > 2 ? width[c] : 0);
    }
    out << "\n";
  }
  out << result.cells.size() - failed << "/" << result.cells.size()
      << " cells ok\n";
  return out.str();
}

}  // namespace hit::campaign
