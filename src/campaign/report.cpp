#include "campaign/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace hit::campaign {

namespace {

std::string format_value(double v) {
  char buf[48];
  if (v == 0.0 || (std::isfinite(v) && std::abs(v) >= 1e-3 && std::abs(v) < 1e7)) {
    std::snprintf(buf, sizeof buf, "%.4g", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.3e", v);
  }
  return buf;
}

}  // namespace

std::string render_report(const CampaignResult& result,
                          const std::vector<std::string>& metrics) {
  // Column selection: explicit list, or every non-obs metric in order of
  // first appearance across cells (so partial cells cannot hide columns).
  std::vector<std::string> cols = metrics;
  if (cols.empty()) {
    for (const CellResult& cell : result.cells) {
      for (const auto& [name, value] : cell.metrics) {
        (void)value;
        if (name.rfind("obs.", 0) == 0) continue;
        if (std::find(cols.begin(), cols.end(), name) == cols.end()) {
          cols.push_back(name);
        }
      }
    }
  }

  // Pre-render every body cell, then size the columns to their content.
  std::vector<std::vector<std::string>> rows;
  std::size_t failed = 0;
  for (const CellResult& cell : result.cells) {
    std::vector<std::string> row;
    row.push_back(cell.id);
    if (!cell.ok) {
      ++failed;
      row.push_back("ERROR: " + cell.error);
      rows.push_back(std::move(row));
      continue;
    }
    for (const std::string& name : cols) {
      const double* v = cell.metric(name);
      row.push_back(v != nullptr ? format_value(*v) : "-");
    }
    rows.push_back(std::move(row));
  }

  std::vector<std::size_t> width(cols.size() + 1, 0);
  width[0] = std::string("cell").size();
  for (std::size_t c = 0; c < cols.size(); ++c) {
    width[c + 1] = cols[c].size();
  }
  for (const std::vector<std::string>& row : rows) {
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream out;
  out << "campaign " << result.name;
  if (!result.git_sha.empty()) out << " @ " << result.git_sha;
  out << "\n";
  const auto pad = [&](const std::string& text, std::size_t w) {
    out << text;
    for (std::size_t i = text.size(); i < w; ++i) out << ' ';
  };
  pad("cell", width[0]);
  for (std::size_t c = 0; c < cols.size(); ++c) {
    out << "  ";
    pad(cols[c], width[c + 1]);
  }
  out << "\n";
  for (std::size_t c = 0; c < width.size(); ++c) {
    if (c > 0) out << "  ";
    out << std::string(width[c], '-');
  }
  out << "\n";
  for (const std::vector<std::string>& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << "  ";
      // Error rows carry one wide cell; let it run past the column grid.
      pad(row[c], c < width.size() && row.size() > 2 ? width[c] : 0);
    }
    out << "\n";
  }
  out << result.cells.size() - failed << "/" << result.cells.size()
      << " cells ok\n";
  return out.str();
}

namespace {

// Linear-interpolated quantile of a sorted sample (matches stats::percentile
// semantics: q in [0, 100]).
double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  const double pos = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

std::string render_cdf(const CampaignResult& result,
                       const std::vector<std::string>& metrics) {
  std::vector<std::string> rows_wanted = metrics;
  if (rows_wanted.empty()) {
    for (const CellResult& cell : result.cells) {
      if (!cell.ok) continue;
      for (const auto& [name, value] : cell.metrics) {
        (void)value;
        if (name.rfind("obs.", 0) == 0) continue;
        if (std::find(rows_wanted.begin(), rows_wanted.end(), name) ==
            rows_wanted.end()) {
          rows_wanted.push_back(name);
        }
      }
    }
  }

  const std::vector<std::pair<const char*, double>> quantiles = {
      {"min", 0.0},  {"p25", 25.0}, {"p50", 50.0}, {"p75", 75.0},
      {"p90", 90.0}, {"p95", 95.0}, {"max", 100.0}};

  std::size_t ok = 0;
  for (const CellResult& cell : result.cells) {
    if (cell.ok) ++ok;
  }

  std::vector<std::vector<std::string>> rows;
  for (const std::string& name : rows_wanted) {
    std::vector<double> sample;
    for (const CellResult& cell : result.cells) {
      if (!cell.ok) continue;
      if (const double* v = cell.metric(name)) sample.push_back(*v);
    }
    std::sort(sample.begin(), sample.end());
    std::vector<std::string> row;
    row.push_back(name);
    row.push_back(std::to_string(sample.size()));
    for (const auto& [label, q] : quantiles) {
      (void)label;
      row.push_back(sample.empty() ? "-" : format_value(quantile_sorted(sample, q)));
    }
    rows.push_back(std::move(row));
  }

  std::vector<std::string> header = {"metric", "n"};
  for (const auto& [label, q] : quantiles) {
    (void)q;
    header.emplace_back(label);
  }
  std::vector<std::size_t> width(header.size(), 0);
  for (std::size_t c = 0; c < header.size(); ++c) width[c] = header[c].size();
  for (const std::vector<std::string>& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream out;
  out << "campaign " << result.name;
  if (!result.git_sha.empty()) out << " @ " << result.git_sha;
  out << " — metric CDF over " << ok << " ok cell" << (ok == 1 ? "" : "s")
      << "\n";
  const auto pad = [&](const std::string& text, std::size_t w) {
    out << text;
    for (std::size_t i = text.size(); i < w; ++i) out << ' ';
  };
  for (std::size_t c = 0; c < header.size(); ++c) {
    if (c > 0) out << "  ";
    pad(header[c], width[c]);
  }
  out << "\n";
  for (std::size_t c = 0; c < width.size(); ++c) {
    if (c > 0) out << "  ";
    out << std::string(width[c], '-');
  }
  out << "\n";
  for (const std::vector<std::string>& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << "  ";
      pad(row[c], width[c]);
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace hit::campaign
