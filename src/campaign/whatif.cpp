#include "campaign/whatif.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "stats/table.h"

namespace hit::campaign {
namespace {

bool is_fault_key(const std::string& key) {
  return key == "faults" || key == "fault_mttr" || key == "fault_horizon" ||
         key == "gray_mtbf" || key == "gray_mttr" || key == "gray_factor" ||
         key == "seed";
}

}  // namespace

WhatIfReport run_whatif(
    const CellRecord& record,
    const std::vector<std::pair<std::string, std::string>>& overrides) {
  if (overrides.empty()) {
    throw std::invalid_argument("whatif: no overrides (--set key=value)");
  }
  WhatIfReport report;
  report.baseline = record;
  report.variant = record;
  report.overrides = overrides;
  for (const auto& [key, value] : overrides) {
    if (key == "topology") {
      throw std::invalid_argument(
          "whatif: cannot override 'topology' — the recorded workload and "
          "fault node ids are topology-bound");
    }
    if (key == "jobs") {
      throw std::invalid_argument(
          "whatif: cannot override 'jobs' — the workload comes from the "
          "recorded trace");
    }
    report.variant.config.set(key, value);
    if (is_fault_key(key)) report.faults_regenerated = true;
  }
  if (report.faults_regenerated) {
    report.variant.faults = generate_fault_events(
        report.variant.config, build_topology(report.variant.config.topology));
  }
  report.baseline_metrics = run_record(report.baseline);
  report.variant_metrics = run_record(report.variant);
  return report;
}

std::string render_whatif(const WhatIfReport& report, bool verbose) {
  std::ostringstream out;
  out << "what-if: cell '" << report.baseline.cell << "' of campaign '"
      << report.baseline.campaign << "'\n";
  for (const auto& [key, value] : report.overrides) {
    out << "  set " << key << " = " << value << "\n";
  }
  if (report.faults_regenerated) {
    out << "  (fault plan regenerated from overridden config: "
        << report.baseline.faults.size() << " -> "
        << report.variant.faults.size() << " events)\n";
  } else if (!report.baseline.faults.empty()) {
    out << "  (recorded fault plan replayed verbatim: "
        << report.baseline.faults.size() << " events)\n";
  }
  out << "\n";

  // Union of metric names, baseline order first (both sides share the fixed
  // simulator prefix; the obs tail can differ between policies).
  std::vector<std::string> names;
  for (const auto& [name, value] : report.baseline_metrics) {
    (void)value;
    names.push_back(name);
  }
  for (const auto& [name, value] : report.variant_metrics) {
    (void)value;
    if (std::find(names.begin(), names.end(), name) == names.end()) {
      names.push_back(name);
    }
  }

  stats::Table table({"metric", "baseline", "what-if", "delta", "rel"});
  const auto lookup = [](const std::vector<std::pair<std::string, double>>& m,
                         const std::string& name) -> const double* {
    for (const auto& [k, v] : m) {
      if (k == name) return &v;
    }
    return nullptr;
  };
  for (const std::string& name : names) {
    if (!verbose && name.rfind("obs.", 0) == 0) continue;
    const double* b = lookup(report.baseline_metrics, name);
    const double* v = lookup(report.variant_metrics, name);
    const std::string bs = b ? stats::Table::num(*b) : "-";
    const std::string vs = v ? stats::Table::num(*v) : "-";
    std::string delta = "-";
    std::string rel = "-";
    if (b != nullptr && v != nullptr) {
      delta = stats::Table::num(*v - *b);
      rel = *b == 0.0 ? "-"
                      : stats::Table::num((*v - *b) / *b * 100.0, 2) + "%";
    }
    table.add_row({name, bs, vs, delta, rel});
  }
  out << table.render();
  return out.str();
}

}  // namespace hit::campaign
