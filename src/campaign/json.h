// Campaign result JSON: the BENCH_campaign_<name>.json document the runner
// emits and the regression ledger reads back.
//
// The writer is deliberately timestamp-free and fully deterministic
// (shortest round-trip number formatting, cells in grid order), so two runs
// of the same spec on the same build produce byte-identical files — the
// property the campaign-smoke CI job diffs for.
//
// The reader is a minimal recursive-descent JSON parser covering exactly
// the subset the writer emits (objects, arrays, strings, finite numbers,
// booleans, null) — enough to load committed baselines without growing a
// dependency.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "campaign/runner.h"

namespace hit::campaign {

/// Parsed JSON value (tagged union, order-preserving objects).
struct JsonValue {
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// First member with `key`, or nullptr.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
};

/// Parse a complete JSON document.  Throws std::invalid_argument (with a
/// byte offset) on malformed input or trailing garbage.
[[nodiscard]] JsonValue parse_json(std::string_view text);

/// Serialize a campaign result as pretty-printed JSON (2-space indent).
void write_campaign_json(std::ostream& out, const CampaignResult& result);

/// Rebuild a CampaignResult from a document written by write_campaign_json.
/// Throws std::invalid_argument when required fields are missing.
[[nodiscard]] CampaignResult campaign_from_json(const JsonValue& doc);

/// Convenience: read + parse + rebuild from a file.  Throws
/// std::runtime_error when the file cannot be read.
[[nodiscard]] CampaignResult load_campaign_json(const std::string& path);

}  // namespace hit::campaign
