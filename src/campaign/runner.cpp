#include "campaign/runner.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "cluster/cluster.h"
#include "coflow/coflow.h"
#include "core/hit_scheduler.h"
#include "core/registry.h"
#include "mapreduce/workload.h"
#include "obs/context.h"
#include "sim/engine.h"
#include "sim/online.h"
#include "stats/summary.h"
#include "topology/builders.h"
#include "util/buildinfo.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "workflow/runner.h"

namespace hit::campaign {
namespace {

std::pair<double, double> parse_pair(const std::string& text, const char* key) {
  const auto colon = text.find(':');
  if (colon == std::string::npos) {
    throw std::invalid_argument(std::string(key) + " wants 'A:B', got '" +
                                text + "'");
  }
  try {
    return {std::stod(text.substr(0, colon)), std::stod(text.substr(colon + 1))};
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string(key) + ": bad number in '" + text +
                                "'");
  }
}

std::vector<double> parse_weights(const std::string& text) {
  std::vector<double> weights;
  std::string item;
  std::istringstream ss(text);
  while (std::getline(ss, item, ':')) {
    try {
      weights.push_back(std::stod(item));
    } catch (const std::exception&) {
      throw std::invalid_argument("tenant_mix: bad weight '" + item + "'");
    }
  }
  return weights;
}

/// Campaign workflow knobs -> runner config: cp_weights = "alpha:beta:gamma",
/// hedge = duplicate budget per workflow (also the escalation budget, so one
/// knob drives both criticality responses).
workflow::SchedConfig workflow_sched_config(const CellConfig& c) {
  workflow::SchedConfig cfg;
  if (!c.cp_weights.empty()) {
    const std::vector<double> w = parse_weights(c.cp_weights);
    if (w.size() != 3) {
      throw std::invalid_argument("cp_weights wants 'alpha:beta:gamma'");
    }
    cfg.weights.alpha = w[0];
    cfg.weights.beta = w[1];
    cfg.weights.gamma = w[2];
  }
  cfg.hedge_budget = c.hedge;
  cfg.escalation_budget = c.hedge;
  return cfg;
}

std::vector<workflow::Workflow> build_workflows(const CellConfig& c) {
  std::vector<workflow::Workflow> wfs;
  const std::size_t count = std::max<std::uint64_t>(c.workflows, 1);
  for (std::size_t i = 0; i < count; ++i) {
    wfs.push_back(workflow::make_shape(c.workflow));
  }
  return wfs;
}

sim::AdmissionPolicy parse_admission(const std::string& name) {
  if (name == "unbounded") return sim::AdmissionPolicy::Unbounded;
  if (name == "reject-new") return sim::AdmissionPolicy::RejectNew;
  if (name == "drop-oldest") return sim::AdmissionPolicy::DropOldest;
  if (name == "deadline-shed") return sim::AdmissionPolicy::DeadlineShed;
  if (name == "aimd") return sim::AdmissionPolicy::Aimd;
  throw std::invalid_argument("unknown admission policy '" + name + "'");
}

mr::WorkloadConfig workload_config(const CellConfig& c) {
  mr::WorkloadConfig wconfig;
  wconfig.num_jobs = c.jobs;
  wconfig.max_maps_per_job = 10;
  wconfig.max_reduces_per_job = 4;
  wconfig.block_size_gb = 2.0;
  if (!c.priority_mix.empty()) {
    const auto [low, high] = parse_pair(c.priority_mix, "priority_mix");
    wconfig.low_priority_fraction = low;
    wconfig.high_priority_fraction = high;
  }
  wconfig.num_tenants = c.tenants;
  if (!c.tenant_mix.empty()) {
    wconfig.tenant_weights = parse_weights(c.tenant_mix);
    if (c.tenants != 0 && wconfig.tenant_weights.size() != c.tenants) {
      throw std::invalid_argument("tenant_mix wants exactly 'tenants' weights");
    }
  }
  return wconfig;
}

coflow::CoflowConfig coflow_config(const CellConfig& c) {
  coflow::CoflowConfig config;
  if (c.coflow.empty() || c.coflow == "off") return config;
  const auto order = coflow::parse_order_policy(c.coflow);
  if (!order) {
    throw std::invalid_argument("unknown coflow policy '" + c.coflow + "'");
  }
  config.enabled = true;
  config.order = *order;
  return config;
}

std::unique_ptr<sched::Scheduler> build_scheduler(
    const CellConfig& c, const coflow::CoflowConfig& cf) {
  // Mirror hitsim: coflow-ordered policy optimization and the domain-spread
  // pass need a directly constructed HitScheduler (the registry hands out
  // default configs).
  if ((cf.enabled || c.spread_weight > 0.0) && c.scheduler == "hit") {
    core::HitConfig hconfig;
    hconfig.coflow = cf;
    hconfig.spread_weight = c.spread_weight;
    return std::make_unique<core::HitScheduler>(hconfig);
  }
  return core::SchedulerRegistry::instance().create(c.scheduler);
}

sim::SimConfig sim_config(const CellConfig& c, const coflow::CoflowConfig& cf,
                          std::vector<sim::FaultEvent> faults) {
  sim::SimConfig sconfig;
  sconfig.bandwidth_scale = c.bandwidth_scale;
  sconfig.map_time_jitter_sigma = c.jitter;
  sconfig.speculation_threshold = c.speculation;
  sconfig.coflow = cf;
  sconfig.faults = sim::FaultPlan::scripted(std::move(faults));
  sconfig.gray.monitor = c.monitor != 0 || c.quarantine != 0;
  sconfig.gray.quarantine = c.quarantine != 0;
  sconfig.recovery.snapshot_every = c.snapshot_every;
  sconfig.recovery.standby = c.standby != 0;
  sconfig.domains.enabled = c.output_loss > 0.0 || c.domain_mtbf > 0.0;
  sconfig.domains.output_loss_prob = c.output_loss;
  return sconfig;
}

using Metrics = std::vector<std::pair<std::string, double>>;

void put(Metrics& m, const char* name, double value) {
  if (std::isfinite(value)) m.emplace_back(name, value);
}

void put_count(Metrics& m, const char* name, std::size_t value) {
  m.emplace_back(name, static_cast<double>(value));
}

void put_recovery(Metrics& m, const sim::RecoveryStats& r) {
  put_count(m, "faults_applied", r.faults_applied);
  put_count(m, "maps_killed", r.maps_killed);
  put_count(m, "flows_rerouted", r.flows_rerouted);
  put_count(m, "jobs_restarted", r.jobs_restarted);
  put(m, "stall_s", r.stall_seconds);
}

void put_gray(Metrics& m, const sim::GrayStats& g) {
  put_count(m, "gray_degradations", g.degradations);
  put_count(m, "gray_detections", g.detections);
  put_count(m, "gray_false_positives", g.false_positives);
}

// Emitted only when the control plane saw action, so fault-free cells keep
// their metric set (and committed baselines) unchanged.
void put_control_plane(Metrics& m, const sim::ControlPlaneStats& c) {
  if (!c.any()) return;
  put_count(m, "ctrl_crashes", c.crashes);
  put_count(m, "ctrl_restarts", c.restarts);
  put(m, "ctrl_blackout_s", c.blackout_seconds);
  put_count(m, "ctrl_launches_delayed", c.waves_delayed);
  put_count(m, "ctrl_failstatic_flows", c.flows_failstatic);
  put_count(m, "ctrl_blackout_stalls", c.flows_stalled_blackout);
  put_count(m, "ctrl_reconcile_violations", c.reconcile_violations);
  put_count(m, "ctrl_reconcile_repairs", c.reconcile_repairs);
  // Divergences the restart failed to repair — the `slo ctrl_unreconciled
  // <= 0` gate in the recovery/faults campaigns rides on this.
  put_count(m, "ctrl_unreconciled", c.reconcile_violations - c.reconcile_repairs);
  put_count(m, "ctrl_journal_records", c.journal_records);
  put_count(m, "ctrl_journal_replayed", c.replayed_records);
  put_count(m, "ctrl_snapshots", c.snapshots);
}

// Emitted only when domain faults / output loss saw action, mirroring
// put_control_plane: domain-free cells keep their metric set unchanged.
void put_domains(Metrics& m, const sim::FaultDomainStats& fd) {
  if (!fd.any()) return;
  put_count(m, "domain_faults", fd.domain_faults);
  put_count(m, "outputs_lost", fd.outputs_lost);
  put_count(m, "lineage_reexecutions", fd.maps_reexecuted_lineage);
  put_count(m, "stage_reopens", fd.stage_reopens);
  put_count(m, "partition_parks", fd.partition_parks);
}

// Registry snapshot -> `obs.`-prefixed metrics (histograms expand to
// .mean/.p95).  snapshot() is name-sorted, so the order is deterministic.
void put_registry(Metrics& m, const obs::Registry& registry) {
  for (const obs::MetricSample& s : registry.snapshot()) {
    const std::string base = "obs." + s.name;
    if (s.kind == "histogram") {
      if (s.count == 0) continue;
      if (std::isfinite(s.value)) m.emplace_back(base + ".mean", s.value);
      if (std::isfinite(s.p95)) m.emplace_back(base + ".p95", s.p95);
    } else if (std::isfinite(s.value)) {
      m.emplace_back(base, s.value);
    }
  }
}

Metrics batch_metrics(const sim::SimResult& result, const obs::Registry& reg) {
  Metrics m;
  const std::vector<double> jct = result.job_completion_times();
  put_count(m, "jobs_completed", result.jobs.size());
  put(m, "mean_jct_s", stats::mean_of(jct));
  put(m, "p95_jct_s", stats::percentile(jct, 95.0));
  put(m, "max_jct_s", jct.empty() ? 0.0 : *std::max_element(jct.begin(), jct.end()));
  put(m, "makespan_s", result.makespan);
  put(m, "shuffle_cost_gbt", result.total_shuffle_cost);
  put(m, "shuffle_gb", result.total_shuffle_gb);
  put(m, "remote_map_gb", result.total_remote_map_gb);
  put(m, "avg_route_hops", result.average_route_hops());
  put(m, "mean_cct_s", result.average_coflow_cct());
  put(m, "p95_cct_s", result.p95_coflow_cct());
  put_count(m, "speculative_copies", result.speculative_copies);
  put_recovery(m, result.recovery);
  put_gray(m, result.gray);
  put_control_plane(m, result.control);
  put_domains(m, result.fault_domains);
  put_registry(m, reg);
  return m;
}

Metrics online_metrics(const sim::OnlineResult& result,
                       const obs::Registry& reg) {
  Metrics m;
  const std::vector<double> jct = result.completion_times();
  const std::vector<double> wait = result.queueing_delays();
  const std::size_t completed = result.jobs.size();
  const std::size_t shed = result.overload.jobs_shed;
  put_count(m, "jobs_completed", completed);
  put_count(m, "jobs_shed", shed);
  put(m, "shed_rate",
      completed + shed == 0
          ? 0.0
          : static_cast<double>(shed) / static_cast<double>(completed + shed));
  put_count(m, "peak_queue_depth", result.overload.peak_queue_depth);
  put(m, "mean_jct_s", stats::mean_of(jct));
  put(m, "p95_jct_s", stats::percentile(jct, 95.0));
  put(m, "mean_queue_wait_s", stats::mean_of(wait));
  put(m, "p95_queue_wait_s", stats::percentile(wait, 95.0));
  put(m, "makespan_s", result.makespan);
  put(m, "shuffle_cost_gbt", result.total_shuffle_cost);
  put(m, "shuffle_gb", result.total_shuffle_gb);
  put(m, "mean_cct_s", result.avg_coflow_cct);
  put(m, "p95_cct_s", result.p95_coflow_cct);
  put(m, "jain_index", result.tenant_jain);
  put(m, "aimd_final_limit", result.aimd.final_limit);
  put_recovery(m, result.recovery);
  put_gray(m, result.gray);
  put_control_plane(m, result.control);
  put_domains(m, result.fault_domains);
  put_registry(m, reg);
  return m;
}

void put_workflow(Metrics& m, const workflow::WorkflowStats& w) {
  put(m, "wf_makespan_s", w.makespan);
  put(m, "wf_stretch", w.stretch);
  put(m, "wf_stages_completed", static_cast<double>(w.stages_completed));
  put(m, "wf_stages_shed", static_cast<double>(w.stages_shed));
  put(m, "wf_hedges_launched", static_cast<double>(w.hedges_launched));
  put(m, "wf_hedges_won", static_cast<double>(w.hedges_won));
  put(m, "wf_hedges_lost", static_cast<double>(w.hedges_lost));
  put(m, "wf_escalations", static_cast<double>(w.escalations));
  put(m, "wf_restarts", static_cast<double>(w.restarts));
  put(m, "wf_mean_stage_wait_s", w.mean_stage_wait);
}

}  // namespace

const double* CellResult::metric(const std::string& name) const {
  for (const auto& [key, value] : metrics) {
    if (key == name) return &value;
  }
  return nullptr;
}

const CellResult* CampaignResult::cell(const std::string& id) const {
  for (const CellResult& c : cells) {
    if (c.id == id) return &c;
  }
  return nullptr;
}

topo::Topology build_topology(const std::string& name) {
  if (name == "tree") return topo::make_tree(topo::TreeConfig{3, 4, 2, 4});
  if (name == "tree-large") return topo::make_tree(topo::TreeConfig{3, 8, 2, 8});
  if (name == "fat-tree") return topo::make_fat_tree(topo::FatTreeConfig{6});
  if (name == "vl2") return topo::make_vl2(topo::Vl2Config{4, 8, 16, 4});
  if (name == "bcube") return topo::make_bcube(topo::BCubeConfig{4, 2});
  throw std::invalid_argument("unknown topology '" + name + "'");
}

std::vector<sim::FaultEvent> generate_fault_events(
    const CellConfig& config, const topo::Topology& topology) {
  if (config.faults <= 0.0 && config.gray_mtbf <= 0.0 &&
      config.controller_crash <= 0.0 && config.domain_mtbf <= 0.0) {
    return {};
  }
  sim::FaultPlan plan;
  if (config.faults > 0.0 || config.gray_mtbf > 0.0 ||
      config.domain_mtbf > 0.0) {
    sim::MtbfConfig mconfig;
    mconfig.horizon = config.fault_horizon;
    mconfig.switch_mtbf = config.faults;
    mconfig.switch_mttr = config.fault_mttr;
    mconfig.server_mtbf = config.faults;
    mconfig.server_mttr = config.fault_mttr;
    mconfig.link_mtbf = config.faults;
    mconfig.link_mttr = config.fault_mttr;
    mconfig.gray_switch_mtbf = config.gray_mtbf;
    mconfig.gray_switch_mttr = config.gray_mttr;
    mconfig.gray_link_mtbf = config.gray_mtbf;
    mconfig.gray_link_mttr = config.gray_mttr;
    const auto [gmin, gmax] = parse_pair(config.gray_factor, "gray_factor");
    mconfig.gray_factor_min = gmin;
    mconfig.gray_factor_max = gmax;
    mconfig.rack_mtbf = config.domain_mtbf;
    mconfig.rack_mttr = config.domain_mttr;
    plan = sim::FaultPlan::generate(topology, mconfig, config.seed);
  }
  if (config.controller_crash > 0.0) {
    plan.crash_controller(config.controller_crash, config.blackout);
  }
  return plan.events();
}

CellRecord make_record(const std::string& campaign_name, const Cell& cell) {
  CellRecord record;
  record.campaign = campaign_name;
  record.cell = cell.id;
  record.config = cell.config;
  const topo::Topology topology = build_topology(cell.config.topology);
  // Workflow cells carry no workload trace: their jobs are a pure function
  // of the (shape, workflows, hedge) knobs and are rebuilt by run_record.
  if (cell.config.workflow.empty()) {
    const mr::WorkloadGenerator generator(workload_config(cell.config));
    mr::IdAllocator ids;
    Rng wrng(cell.config.seed);
    const std::vector<mr::Job> jobs = generator.generate(ids, wrng);
    record.workload = mr::trace_from_jobs(jobs);
  }
  record.faults = generate_fault_events(cell.config, topology);
  return record;
}

std::vector<std::pair<std::string, double>> run_record(
    const CellRecord& record) {
  const CellConfig& c = record.config;
  if (c.mode != "batch" && c.mode != "online") {
    throw std::invalid_argument("unknown mode '" + c.mode + "'");
  }
  const topo::Topology topology = build_topology(c.topology);
  const cluster::Cluster cluster(topology, cluster::Resource{2.0, 8.0});
  const mr::WorkloadGenerator generator(workload_config(c));
  mr::IdAllocator ids;
  const bool wf_mode = !c.workflow.empty();
  // Workflow cells rebuild their jobs from the (shape, workflows) config —
  // pure functions of the cell — instead of the recorded trace.
  const std::vector<mr::Job> jobs =
      wf_mode ? std::vector<mr::Job>{}
              : mr::jobs_from_trace(record.workload, generator, ids);
  const coflow::CoflowConfig cf = coflow_config(c);
  const std::unique_ptr<sched::Scheduler> scheduler = build_scheduler(c, cf);

  obs::Registry registry;
  const obs::Context obs_ctx(&registry, nullptr, nullptr);
  sim::SimConfig sconfig = sim_config(c, cf, record.faults);
  sconfig.observer = &obs_ctx;

  Rng srng = Rng(c.seed).fork(kCellSalt);
  if (c.mode == "batch") {
    if (wf_mode) {
      const workflow::BatchWorkflowResult bw = workflow::run_workflows_batch(
          cluster, sconfig, workflow_sched_config(c), build_workflows(c),
          generator, ids, *scheduler, srng);
      auto m = batch_metrics(bw.sim, registry);
      put_workflow(m, bw.stats);
      return m;
    }
    const sim::ClusterSimulator sim(cluster, sconfig);
    const sim::SimResult result = sim.run(*scheduler, jobs, ids, srng);
    return batch_metrics(result, registry);
  }
  sim::OnlineConfig oconfig;
  oconfig.arrival_rate = c.arrival_rate;
  oconfig.sim = sconfig;
  oconfig.max_queue_wait = c.max_queue_wait;
  oconfig.admission.policy = parse_admission(c.admission);
  oconfig.admission.max_queue = c.max_queue;
  oconfig.admission.aimd.epoch_s = c.aimd_epoch;
  oconfig.admission.aimd.quota_floor = c.quota_floor;
  const std::vector<double> weights =
      c.tenant_mix.empty() ? std::vector<double>{} : parse_weights(c.tenant_mix);
  for (std::size_t t = 0; t < c.tenants; ++t) {
    sched::admission::TenantSpec spec;
    spec.name = "tenant-" + std::to_string(t);
    spec.weight = weights.empty() ? 1.0 : weights[t];
    oconfig.admission.tenants.push_back(std::move(spec));
  }
  if (wf_mode) {
    const std::vector<workflow::Workflow> wfs = build_workflows(c);
    workflow::OnlinePlanBuild pb =
        workflow::build_online_plan(wfs, workflow_sched_config(c), generator, ids);
    oconfig.workflow = std::move(pb.plan);
    const sim::OnlineSimulator sim(cluster, oconfig);
    const sim::OnlineResult result = sim.run(*scheduler, pb.jobs, ids, srng);
    auto m = online_metrics(result, registry);
    workflow::WorkflowStats ws = workflow::compute_online_stats(result, wfs);
    ws.escalations = pb.escalations;
    put_workflow(m, ws);
    return m;
  }
  const sim::OnlineSimulator sim(cluster, oconfig);
  const sim::OnlineResult result = sim.run(*scheduler, jobs, ids, srng);
  return online_metrics(result, registry);
}

CampaignResult run_campaign(const CampaignSpec& spec,
                            const RunOptions& options) {
  CampaignResult result;
  result.name = spec.name;
  result.git_sha = util::git_sha();
  result.host = util::hostname();
  result.build_type = util::build_type();
  for (const auto& [axis, values] : spec.axes) {
    (void)values;
    result.axis_names.push_back(axis);
  }
  const std::vector<Cell> cells = expand(spec);
  result.cells.resize(cells.size());

  if (!options.record_dir.empty()) {
    std::filesystem::create_directories(options.record_dir);
  }

  std::mutex progress_mu;
  ThreadPool pool(options.threads);
  pool.parallel_for(cells.size(), [&](std::size_t i) {
    CellResult& out = result.cells[i];
    out.id = cells[i].id;
    out.axes = cells[i].axes;
    try {
      const CellRecord record = make_record(spec.name, cells[i]);
      if (!options.record_dir.empty()) {
        const std::filesystem::path path =
            std::filesystem::path(options.record_dir) /
            record_filename(record.cell);
        std::ofstream rec_out(path);
        if (!rec_out) {
          throw std::runtime_error("cannot write record '" + path.string() +
                                   "'");
        }
        save_record(rec_out, record);
      }
      out.metrics = run_record(record);
    } catch (const std::exception& e) {
      out.ok = false;
      out.error = e.what();
      out.metrics.clear();
    }
    if (options.on_cell) {
      std::lock_guard<std::mutex> lock(progress_mu);
      options.on_cell(out);
    }
  });
  return result;
}

}  // namespace hit::campaign
