// Campaign specs: a declarative description of an experiment grid.
//
// One spec file names a campaign, fixes a base cell configuration, and
// declares `matrix` axes whose cross product is the grid of cells the
// runner executes.  The same file carries the regression-ledger contract:
// per-metric noise tolerances and SLO assertions `hitcamp compare`
// evaluates against a committed baseline.
//
// Grammar (line oriented, `#` starts a comment):
//
//   name = smoke
//   mode = online                 # any CellConfig key = value
//   jobs = 12
//   matrix scheduler = hit, fair  # axis; values comma-separated
//   matrix faults = 0, 900
//   matrix seed = 1, 2, 3
//   slo shed_rate <= 0.5          # asserted on every fresh cell
//   tolerance default = 0.05      # relative noise budget for compare
//   tolerance mean_jct_s = 0.02
//   compare = mean_jct_s, p95_queue_wait_s   # restrict the diffed metrics
//
// Values that are themselves lists (tenant_mix, priority_mix, gray_factor)
// use `:` as the inner separator since `,` separates matrix values.
//
// Axis order is declaration order; the expansion iterates the last axis
// fastest, so cell order — and therefore the result JSON — is a pure
// function of the spec.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace hit::campaign {

/// Everything one cell needs to rebuild its world: topology, workload,
/// scheduler, simulator knobs.  Defaults mirror the hitsim CLI so a spec
/// that sets nothing runs the same experiment as bare `hitsim`.
struct CellConfig {
  std::string mode = "batch";      ///< batch | online
  std::string topology = "tree";   ///< tree|tree-large|fat-tree|vl2|bcube
  std::string scheduler = "hit";   ///< any SchedulerRegistry name
  std::uint64_t jobs = 10;
  std::uint64_t seed = 42;
  double bandwidth_scale = 0.05;
  double arrival_rate = 0.05;      ///< online: Poisson jobs/second
  double jitter = 0.0;             ///< straggler lognormal sigma
  double speculation = 0.0;        ///< batch: speculative-map threshold
  std::string coflow = "off";      ///< off | fifo | sebf | priority
  std::string admission = "unbounded";  ///< online admission policy name
  std::uint64_t max_queue = 0;
  double max_queue_wait = 0.0;
  std::uint64_t tenants = 0;
  std::string tenant_mix;          ///< "8:1:1" weights ("" = uniform)
  std::string priority_mix;        ///< "LOW:HIGH" fractions ("" = none)
  double aimd_epoch = 30.0;
  double quota_floor = 0.25;
  double faults = 0.0;             ///< crash MTBF seconds per element (0 = off)
  double fault_mttr = 120.0;
  double fault_horizon = 5000.0;
  double gray_mtbf = 0.0;          ///< gray degradation MTBF (0 = off)
  double gray_mttr = 120.0;
  std::string gray_factor = "0.25:0.5";  ///< degraded-capacity range MIN:MAX
  std::uint64_t monitor = 0;       ///< health-monitor sampling (0/1)
  std::uint64_t quarantine = 0;    ///< quarantine/probe loop (0/1)
  double controller_crash = 0.0;   ///< scripted controller crash time (0 = off)
  double blackout = 0.0;           ///< blackout length after the crash (0 = permanent)
  double snapshot_every = 0.0;     ///< journal snapshot cadence (0 = off)
  std::uint64_t standby = 0;       ///< warm-standby takeover (0/1)
  std::string workflow;            ///< DAG shape: "" = off | chain|tree|diamond
  std::uint64_t workflows = 1;     ///< workflow instances when workflow != ""
  std::uint64_t hedge = 0;         ///< hedged duplicate budget per workflow
  std::string cp_weights;          ///< "alpha:beta:gamma" ("" = defaults)
  double domain_mtbf = 0.0;        ///< correlated rack-crash MTBF (0 = off)
  double domain_mttr = 120.0;      ///< correlated-crash repair mean
  double output_loss = 0.0;        ///< map-output loss probability on crash
  double spread_weight = 0.0;      ///< domain-spread utility weight (hit)

  /// Assign by key name (the spec / record / what-if override path).
  /// Throws std::invalid_argument on an unknown key or unparsable value.
  void set(const std::string& key, const std::string& value);

  /// Every key with its current value, in a fixed canonical order — the
  /// serialization the cell record writes and the what-if report prints.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> items() const;
};

/// One SLO assertion: `metric <= bound` (leq) or `metric >= bound`.
struct SloRule {
  std::string metric;
  bool leq = true;
  double bound = 0.0;
};

struct CampaignSpec {
  std::string name;
  CellConfig base;
  /// Axes in declaration order; each value list is applied via
  /// CellConfig::set, so axis keys are validated at parse time.
  std::vector<std::pair<std::string, std::vector<std::string>>> axes;
  std::vector<SloRule> slos;
  double default_tolerance = 0.05;  ///< relative; `tolerance default = x`
  std::vector<std::pair<std::string, double>> tolerances;  ///< per metric
  std::vector<std::string> compare_metrics;  ///< empty = all campaign metrics
};

/// Parse a spec stream.  Throws std::invalid_argument with a line number on
/// syntax errors, unknown config keys, or a missing campaign name.
[[nodiscard]] CampaignSpec parse_spec(std::istream& in);

/// One expanded grid point.
struct Cell {
  std::string id;  ///< "axis=value/..." in axis declaration order
  std::vector<std::pair<std::string, std::string>> axes;
  CellConfig config;
};

/// Cross product of the spec's axes over its base config (a spec with no
/// axes yields the single base cell with id "base").
[[nodiscard]] std::vector<Cell> expand(const CampaignSpec& spec);

}  // namespace hit::campaign
