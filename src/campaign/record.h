// Cell records: everything needed to re-run one campaign cell exactly —
// the resolved config, the materialized workload trace (with priority and
// tenant labels), and the fault plan's event list.
//
// A record is the currency of what-if replay: `hitcamp run --record-dir`
// writes one per cell, and `hitcamp whatif` loads it, re-runs the baseline
// byte-identically, applies counterfactual config overrides, and diffs the
// two runs.  The runner itself executes every cell *through* its record
// (make_record then run_record), so "replay equals the original run" holds
// by construction rather than by testing alone.
//
// Format (text, line oriented, sections in fixed order):
//
//   # hitcamp cell record v1
//   [campaign]
//   name = smoke
//   cell = scheduler=hit/seed=1
//   [config]
//   mode = online
//   ...every CellConfig key...
//   [workload]
//   benchmark,input_gb,arrival_s[,priority,tenant]
//   ...
//   [faults]
//   time,kind,target,node,peer,factor
//   ...
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "campaign/spec.h"
#include "mapreduce/trace.h"
#include "sim/faults.h"

namespace hit::campaign {

struct CellRecord {
  std::string campaign;  ///< campaign name (informational)
  std::string cell;      ///< cell id within the campaign
  CellConfig config;
  std::vector<mr::TraceEntry> workload;
  std::vector<sim::FaultEvent> faults;
};

/// Serialize / parse the record format above.  `load_record` throws
/// std::invalid_argument with a line number on malformed input.
void save_record(std::ostream& out, const CellRecord& record);
[[nodiscard]] CellRecord load_record(std::istream& in);

/// `cell id` -> filesystem-safe record filename ("<id>.cell" with every
/// character outside [A-Za-z0-9._=-] mapped to '-', '/' to '+').
[[nodiscard]] std::string record_filename(const std::string& cell_id);

}  // namespace hit::campaign
