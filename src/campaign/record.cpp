#include "campaign/record.h"

#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace hit::campaign {
namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::invalid_argument("cell record line " + std::to_string(line_no) +
                              ": " + what);
}

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) --e;
  return std::string(s.substr(b, e - b));
}

// Shortest decimal form that round-trips the exact double (fault times come
// from exponential draws, so full precision is what makes replay exact).
std::string format_exact(double v) {
  char buf[64];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    double back = 0.0;
    std::sscanf(buf, "%lf", &back);
    if (back == v) return buf;
  }
  return buf;
}

std::string node_str(NodeId n) {
  return n.valid() ? std::to_string(n.value()) : std::string("-");
}

NodeId parse_node(const std::string& text, std::size_t line_no) {
  if (text == "-") return NodeId{};
  try {
    return NodeId{static_cast<std::uint32_t>(std::stoul(text))};
  } catch (const std::exception&) {
    fail(line_no, "bad node id '" + text + "'");
  }
}

sim::FaultKind parse_kind(const std::string& text, std::size_t line_no) {
  if (text == "fail") return sim::FaultKind::Fail;
  if (text == "recover") return sim::FaultKind::Recover;
  if (text == "degrade") return sim::FaultKind::Degrade;
  if (text == "restore") return sim::FaultKind::Restore;
  fail(line_no, "bad fault kind '" + text + "'");
}

sim::FaultTarget parse_target(const std::string& text, std::size_t line_no) {
  if (text == "switch") return sim::FaultTarget::Switch;
  if (text == "server") return sim::FaultTarget::Server;
  if (text == "link") return sim::FaultTarget::Link;
  fail(line_no, "bad fault target '" + text + "'");
}

std::vector<std::string> split_commas(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream ss(line);
  while (std::getline(ss, field, ',')) fields.push_back(field);
  return fields;
}

}  // namespace

void save_record(std::ostream& out, const CellRecord& record) {
  out << "# hitcamp cell record v1\n";
  out << "[campaign]\n";
  out << "name = " << record.campaign << "\n";
  out << "cell = " << record.cell << "\n";
  out << "[config]\n";
  for (const auto& [key, value] : record.config.items()) {
    out << key << " = " << value << "\n";
  }
  out << "[workload]\n";
  mr::save_trace(out, record.workload);
  out << "[faults]\n";
  // The `domain` column (correlated-fault ordinal) is written only when some
  // event carries one, so records from domain-free campaigns stay
  // byte-identical to the v1 six-field format.
  bool tagged = false;
  for (const sim::FaultEvent& e : record.faults) {
    if (e.domain != 0) {
      tagged = true;
      break;
    }
  }
  out << (tagged ? "time,kind,target,node,peer,factor,domain\n"
                 : "time,kind,target,node,peer,factor\n");
  for (const sim::FaultEvent& e : record.faults) {
    out << format_exact(e.time) << ',' << sim::fault_kind_name(e.kind) << ','
        << sim::fault_target_name(e.target) << ',' << node_str(e.node) << ','
        << node_str(e.peer) << ',' << format_exact(e.factor);
    if (tagged) out << ',' << e.domain;
    out << '\n';
  }
}

CellRecord load_record(std::istream& in) {
  CellRecord record;
  std::string line;
  std::size_t line_no = 0;
  std::string section;
  std::ostringstream workload;  // re-parsed through load_trace at the end
  bool faults_header_seen = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '[') {
      const auto close = line.find(']');
      if (close == std::string::npos) fail(line_no, "unterminated section header");
      section = line.substr(1, close - 1);
      if (section != "campaign" && section != "config" &&
          section != "workload" && section != "faults") {
        fail(line_no, "unknown section '" + section + "'");
      }
      continue;
    }
    if (line[0] == '#' && section != "workload") continue;
    if (section == "campaign" || section == "config") {
      const auto eq = line.find('=');
      if (eq == std::string::npos) fail(line_no, "expected 'key = value'");
      const std::string key = trim(line.substr(0, eq));
      const std::string value = trim(line.substr(eq + 1));
      if (section == "campaign") {
        if (key == "name") record.campaign = value;
        else if (key == "cell") record.cell = value;
        else fail(line_no, "unknown campaign key '" + key + "'");
      } else {
        try {
          record.config.set(key, value);
        } catch (const std::invalid_argument& e) {
          fail(line_no, e.what());
        }
      }
    } else if (section == "workload") {
      workload << line << '\n';
    } else if (section == "faults") {
      if (!faults_header_seen) {
        if (line.rfind("time,", 0) != 0) fail(line_no, "missing faults header");
        faults_header_seen = true;
        continue;
      }
      const auto fields = split_commas(line);
      if (fields.size() != 6 && fields.size() != 7) {
        fail(line_no, "expected 6 or 7 fault fields");
      }
      sim::FaultEvent e;
      try {
        e.time = std::stod(fields[0]);
        e.factor = std::stod(fields[5]);
        if (fields.size() == 7) {
          e.domain = static_cast<std::uint32_t>(std::stoul(fields[6]));
        }
      } catch (const std::exception&) {
        fail(line_no, "bad fault time/factor/domain");
      }
      e.kind = parse_kind(fields[1], line_no);
      e.target = parse_target(fields[2], line_no);
      e.node = parse_node(fields[3], line_no);
      e.peer = parse_node(fields[4], line_no);
      record.faults.push_back(e);
    } else {
      fail(line_no, "content before any [section]");
    }
  }
  const std::string workload_text = workload.str();
  if (!workload_text.empty()) {
    std::istringstream ws(workload_text);
    record.workload = mr::load_trace(ws);
  }
  return record;
}

std::string record_filename(const std::string& cell_id) {
  std::string name;
  name.reserve(cell_id.size() + 5);
  for (char c : cell_id) {
    const bool safe = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                      c == '=' || c == '-';
    if (c == '/') name += '+';
    else name += safe ? c : '-';
  }
  name += ".cell";
  return name;
}

}  // namespace hit::campaign
