// Campaign execution: expand a spec into cells, run every cell on a thread
// pool, and collect one flat metric map per cell.
//
// Determinism contract (the regression ledger and what-if replay both lean
// on it):
//   - every cell builds its own topology, cluster, scheduler, workload,
//     obs::Registry and Rng — no shared mutable state between cells;
//   - the workload is drawn from Rng(seed) and the simulation from
//     Rng(seed).fork(kCellSalt), two independent streams, so a cell replayed
//     from its recorded workload trace consumes exactly the same simulation
//     stream as the original generate-path run;
//   - cells land in grid order regardless of thread interleaving, so the
//     campaign JSON is byte-identical across runs and across --threads
//     settings.
//
// Every cell is executed *through* its CellRecord (make_record, then
// run_record); the record a campaign writes is the run, not a description
// of it.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "campaign/record.h"
#include "campaign/spec.h"
#include "topology/topology.h"

namespace hit::campaign {

/// Simulation-stream salt: cells fork their sim rng as
/// Rng(seed).fork(kCellSalt), leaving Rng(seed) itself for the workload.
inline constexpr std::uint64_t kCellSalt = 0x43454C4CULL;  // "CELL"

struct CellResult {
  std::string id;
  std::vector<std::pair<std::string, std::string>> axes;
  /// Simulator metrics in a fixed per-mode order, then `obs.`-prefixed
  /// registry metrics in name order.  Non-finite values are omitted.
  std::vector<std::pair<std::string, double>> metrics;
  bool ok = true;
  std::string error;  ///< exception text when !ok

  [[nodiscard]] const double* metric(const std::string& name) const;
};

struct CampaignResult {
  std::string name;
  std::string git_sha;
  std::string host;
  std::string build_type;
  std::vector<std::string> axis_names;
  std::vector<CellResult> cells;  ///< grid order

  [[nodiscard]] const CellResult* cell(const std::string& id) const;
};

struct RunOptions {
  std::size_t threads = 0;  ///< worker threads (0 = hardware concurrency)
  std::string record_dir;   ///< write one CellRecord per cell ("" = off)
  /// Progress callback, invoked under an internal mutex as cells finish
  /// (completion order, not grid order).
  std::function<void(const CellResult&)> on_cell;
};

/// Topology presets shared with the hitsim CLI (tree, tree-large, fat-tree,
/// vl2, bcube).  Throws std::invalid_argument on an unknown name.
[[nodiscard]] topo::Topology build_topology(const std::string& name);

/// Generate the cell's fault-plan events from its config (empty when both
/// `faults` and `gray_mtbf` are 0).  Pure function of (config, topology).
[[nodiscard]] std::vector<sim::FaultEvent> generate_fault_events(
    const CellConfig& config, const topo::Topology& topology);

/// Materialize one cell into a replayable record: resolved config, the
/// generated workload trace (priority/tenant labels included), and the
/// fault-plan events.
[[nodiscard]] CellRecord make_record(const std::string& campaign_name,
                                     const Cell& cell);

/// Execute a record and return its metric map.  Throws on invalid config
/// (unknown topology/scheduler/mode) or simulator errors (e.g. strict
/// overload aborts).
[[nodiscard]] std::vector<std::pair<std::string, double>> run_record(
    const CellRecord& record);

/// Run the whole campaign.  Cell failures are captured per cell (ok=false),
/// not thrown, so one diverging configuration doesn't sink the sweep.
[[nodiscard]] CampaignResult run_campaign(const CampaignSpec& spec,
                                          const RunOptions& options = {});

}  // namespace hit::campaign
