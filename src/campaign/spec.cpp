#include "campaign/spec.h"

#include <cstdio>
#include <istream>
#include <sstream>
#include <stdexcept>

namespace hit::campaign {
namespace {

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) --e;
  return std::string(s.substr(b, e - b));
}

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::invalid_argument("campaign spec line " + std::to_string(line_no) +
                              ": " + what);
}

double parse_double(const std::string& text, std::size_t line_no,
                    const std::string& what) {
  std::size_t used = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &used);
  } catch (const std::exception&) {
    fail(line_no, "bad " + what + " '" + text + "'");
  }
  if (used != text.size()) fail(line_no, "trailing junk in " + what);
  return value;
}

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream ss(text);
  while (std::getline(ss, item, ',')) {
    item = trim(item);
    if (!item.empty()) out.push_back(std::move(item));
  }
  return out;
}

std::uint64_t parse_u64(const std::string& value, const char* key) {
  std::size_t used = 0;
  std::uint64_t v = 0;
  try {
    v = std::stoull(value, &used);
  } catch (const std::exception&) {
    used = std::string::npos;
  }
  if (used != value.size()) {
    throw std::invalid_argument(std::string("CellConfig: bad ") + key + " '" +
                                value + "'");
  }
  return v;
}

double parse_d(const std::string& value, const char* key) {
  std::size_t used = 0;
  double v = 0.0;
  try {
    v = std::stod(value, &used);
  } catch (const std::exception&) {
    used = std::string::npos;
  }
  if (used != value.size()) {
    throw std::invalid_argument(std::string("CellConfig: bad ") + key + " '" +
                                value + "'");
  }
  return v;
}

std::string format_d(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Shorten when a terse form round-trips exactly (keeps records readable).
  char terse[64];
  std::snprintf(terse, sizeof terse, "%.6g", v);
  double back = 0.0;
  std::sscanf(terse, "%lf", &back);
  return back == v ? terse : buf;
}

}  // namespace

void CellConfig::set(const std::string& key, const std::string& value) {
  if (key == "mode") mode = value;
  else if (key == "topology") topology = value;
  else if (key == "scheduler") scheduler = value;
  else if (key == "jobs") jobs = parse_u64(value, "jobs");
  else if (key == "seed") seed = parse_u64(value, "seed");
  else if (key == "bandwidth_scale") bandwidth_scale = parse_d(value, key.c_str());
  else if (key == "arrival_rate") arrival_rate = parse_d(value, key.c_str());
  else if (key == "jitter") jitter = parse_d(value, key.c_str());
  else if (key == "speculation") speculation = parse_d(value, key.c_str());
  else if (key == "coflow") coflow = value;
  else if (key == "admission") admission = value;
  else if (key == "max_queue") max_queue = parse_u64(value, "max_queue");
  else if (key == "max_queue_wait") max_queue_wait = parse_d(value, key.c_str());
  else if (key == "tenants") tenants = parse_u64(value, "tenants");
  else if (key == "tenant_mix") tenant_mix = value;
  else if (key == "priority_mix") priority_mix = value;
  else if (key == "aimd_epoch") aimd_epoch = parse_d(value, key.c_str());
  else if (key == "quota_floor") quota_floor = parse_d(value, key.c_str());
  else if (key == "faults") faults = parse_d(value, key.c_str());
  else if (key == "fault_mttr") fault_mttr = parse_d(value, key.c_str());
  else if (key == "fault_horizon") fault_horizon = parse_d(value, key.c_str());
  else if (key == "gray_mtbf") gray_mtbf = parse_d(value, key.c_str());
  else if (key == "gray_mttr") gray_mttr = parse_d(value, key.c_str());
  else if (key == "gray_factor") gray_factor = value;
  else if (key == "monitor") monitor = parse_u64(value, "monitor");
  else if (key == "quarantine") quarantine = parse_u64(value, "quarantine");
  else if (key == "controller_crash") controller_crash = parse_d(value, key.c_str());
  else if (key == "blackout") blackout = parse_d(value, key.c_str());
  else if (key == "snapshot_every") snapshot_every = parse_d(value, key.c_str());
  else if (key == "standby") standby = parse_u64(value, "standby");
  else if (key == "workflow") workflow = value;
  else if (key == "workflows") workflows = parse_u64(value, "workflows");
  else if (key == "hedge") hedge = parse_u64(value, "hedge");
  else if (key == "cp_weights") cp_weights = value;
  else if (key == "domain_mtbf") domain_mtbf = parse_d(value, key.c_str());
  else if (key == "domain_mttr") domain_mttr = parse_d(value, key.c_str());
  else if (key == "output_loss") output_loss = parse_d(value, key.c_str());
  else if (key == "spread_weight") spread_weight = parse_d(value, key.c_str());
  else {
    throw std::invalid_argument("CellConfig: unknown key '" + key + "'");
  }
}

std::vector<std::pair<std::string, std::string>> CellConfig::items() const {
  return {
      {"mode", mode},
      {"topology", topology},
      {"scheduler", scheduler},
      {"jobs", std::to_string(jobs)},
      {"seed", std::to_string(seed)},
      {"bandwidth_scale", format_d(bandwidth_scale)},
      {"arrival_rate", format_d(arrival_rate)},
      {"jitter", format_d(jitter)},
      {"speculation", format_d(speculation)},
      {"coflow", coflow},
      {"admission", admission},
      {"max_queue", std::to_string(max_queue)},
      {"max_queue_wait", format_d(max_queue_wait)},
      {"tenants", std::to_string(tenants)},
      {"tenant_mix", tenant_mix},
      {"priority_mix", priority_mix},
      {"aimd_epoch", format_d(aimd_epoch)},
      {"quota_floor", format_d(quota_floor)},
      {"faults", format_d(faults)},
      {"fault_mttr", format_d(fault_mttr)},
      {"fault_horizon", format_d(fault_horizon)},
      {"gray_mtbf", format_d(gray_mtbf)},
      {"gray_mttr", format_d(gray_mttr)},
      {"gray_factor", gray_factor},
      {"monitor", std::to_string(monitor)},
      {"quarantine", std::to_string(quarantine)},
      {"controller_crash", format_d(controller_crash)},
      {"blackout", format_d(blackout)},
      {"snapshot_every", format_d(snapshot_every)},
      {"standby", std::to_string(standby)},
      {"workflow", workflow},
      {"workflows", std::to_string(workflows)},
      {"hedge", std::to_string(hedge)},
      {"cp_weights", cp_weights},
      // Appended in PR 10 — new keys go at the end so older records parse.
      {"domain_mtbf", format_d(domain_mtbf)},
      {"domain_mttr", format_d(domain_mttr)},
      {"output_loss", format_d(output_loss)},
      {"spread_weight", format_d(spread_weight)},
  };
}

CampaignSpec parse_spec(std::istream& in) {
  CampaignSpec spec;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    line = trim(line);
    if (line.empty()) continue;

    // `slo METRIC <= BOUND` / `slo METRIC >= BOUND`
    if (line.rfind("slo ", 0) == 0) {
      const std::string body = trim(line.substr(4));
      std::size_t op = body.find("<=");
      bool leq = true;
      if (op == std::string::npos) {
        op = body.find(">=");
        leq = false;
      }
      if (op == std::string::npos) fail(line_no, "slo wants METRIC <= BOUND or METRIC >= BOUND");
      SloRule rule;
      rule.metric = trim(body.substr(0, op));
      rule.leq = leq;
      rule.bound = parse_double(trim(body.substr(op + 2)), line_no, "slo bound");
      if (rule.metric.empty()) fail(line_no, "slo wants a metric name");
      spec.slos.push_back(std::move(rule));
      continue;
    }

    const auto eq = line.find('=');
    if (eq == std::string::npos) fail(line_no, "expected 'key = value'");
    std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) fail(line_no, "empty key");

    if (key == "name") {
      spec.name = value;
    } else if (key.rfind("matrix ", 0) == 0) {
      const std::string axis = trim(key.substr(7));
      if (axis.empty()) fail(line_no, "matrix wants an axis key");
      for (const auto& [existing, values] : spec.axes) {
        (void)values;
        if (existing == axis) fail(line_no, "duplicate matrix axis '" + axis + "'");
      }
      std::vector<std::string> values = split_list(value);
      if (values.empty()) fail(line_no, "matrix axis '" + axis + "' has no values");
      // Validate key and every value now, so typos fail at parse time.
      for (const std::string& v : values) {
        CellConfig probe = spec.base;
        try {
          probe.set(axis, v);
        } catch (const std::invalid_argument& e) {
          fail(line_no, e.what());
        }
      }
      spec.axes.emplace_back(axis, std::move(values));
    } else if (key.rfind("tolerance ", 0) == 0) {
      const std::string metric = trim(key.substr(10));
      if (metric.empty()) fail(line_no, "tolerance wants a metric name");
      const double tol = parse_double(value, line_no, "tolerance");
      if (tol < 0.0) fail(line_no, "tolerance must be non-negative");
      if (metric == "default") {
        spec.default_tolerance = tol;
      } else {
        spec.tolerances.emplace_back(metric, tol);
      }
    } else if (key == "compare") {
      spec.compare_metrics = split_list(value);
    } else {
      try {
        spec.base.set(key, value);
      } catch (const std::invalid_argument& e) {
        fail(line_no, e.what());
      }
    }
  }
  if (spec.name.empty()) {
    throw std::invalid_argument("campaign spec: missing 'name = ...'");
  }
  return spec;
}

std::vector<Cell> expand(const CampaignSpec& spec) {
  if (spec.axes.empty()) {
    Cell cell;
    cell.id = "base";
    cell.config = spec.base;
    return {std::move(cell)};
  }
  std::size_t total = 1;
  for (const auto& [axis, values] : spec.axes) {
    (void)axis;
    total *= values.size();
  }
  std::vector<Cell> cells;
  cells.reserve(total);
  std::vector<std::size_t> odometer(spec.axes.size(), 0);
  for (std::size_t n = 0; n < total; ++n) {
    Cell cell;
    cell.config = spec.base;
    for (std::size_t a = 0; a < spec.axes.size(); ++a) {
      const auto& [axis, values] = spec.axes[a];
      const std::string& v = values[odometer[a]];
      cell.config.set(axis, v);
      cell.axes.emplace_back(axis, v);
      if (a) cell.id += '/';
      cell.id += axis;
      cell.id += '=';
      cell.id += v;
    }
    cells.push_back(std::move(cell));
    // Last axis spins fastest.
    for (std::size_t a = spec.axes.size(); a-- > 0;) {
      if (++odometer[a] < spec.axes[a].second.size()) break;
      odometer[a] = 0;
    }
  }
  return cells;
}

}  // namespace hit::campaign
