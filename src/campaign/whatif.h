// What-if replay: re-run one recorded campaign cell under a counterfactual
// configuration and report the paired metric diff.
//
// The baseline side replays the record exactly — same workload trace, same
// fault events, same sim rng stream — so it is byte-identical to the cell's
// original campaign run (the runner executes cells through their records).
// The variant side applies `--set key=value` overrides to the recorded
// config and re-runs against the *same workload*:
//   - scheduler / admission / coflow / bandwidth / ... overrides reuse the
//     recorded fault events verbatim, so the counterfactual faces the exact
//     same failure history;
//   - overriding any fault knob (faults, fault_mttr, fault_horizon,
//     gray_mtbf, gray_mttr, gray_factor) or the seed regenerates the plan
//     from the overridden config (FaultPlan::generate is a pure function,
//     so this is itself deterministic);
//   - overriding `topology` is refused: the recorded workload placement and
//     fault node ids are topology-bound;
//   - overriding `jobs` is refused: the workload comes from the recorded
//     trace, not the generator.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "campaign/record.h"
#include "campaign/runner.h"

namespace hit::campaign {

struct WhatIfReport {
  CellRecord baseline;  ///< the record as loaded
  CellRecord variant;   ///< overridden config (+ regenerated faults if any)
  std::vector<std::pair<std::string, std::string>> overrides;
  bool faults_regenerated = false;
  std::vector<std::pair<std::string, double>> baseline_metrics;
  std::vector<std::pair<std::string, double>> variant_metrics;
};

/// Replay `record` as-is and under `overrides`; throws std::invalid_argument
/// on an empty override list, unknown keys, or refused overrides.
[[nodiscard]] WhatIfReport run_whatif(
    const CellRecord& record,
    const std::vector<std::pair<std::string, std::string>>& overrides);

/// Paired metric table (baseline vs what-if, absolute and relative delta).
/// `obs.` metrics are included only with `verbose`.
[[nodiscard]] std::string render_whatif(const WhatIfReport& report,
                                        bool verbose = false);

}  // namespace hit::campaign
