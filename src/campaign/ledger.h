// Cross-PR regression ledger: diff a freshly run campaign against a
// committed baseline JSON and gate on per-metric noise tolerances and SLO
// assertions.
//
// The comparison contract comes from the campaign spec itself: `tolerance
// default` / `tolerance <metric>` set the relative noise budget, `compare =`
// restricts the diffed metric set (default: every non-`obs.` metric the
// fresh cell reports — the simulator outputs are the regression surface,
// internal observability counters are diagnostics), and `slo <metric> <=
// <bound>` asserts absolute limits on every fresh cell.
//
// A metric passes when |fresh - baseline| <= max(abs_floor, tol * |baseline|).
// Structural mismatches (cells or metrics missing on either side, failed
// cells) are violations too — a regression that makes a cell crash must not
// read as "nothing to compare".
#pragma once

#include <string>
#include <vector>

#include "campaign/runner.h"
#include "campaign/spec.h"

namespace hit::campaign {

struct CompareOptions {
  double default_tolerance = 0.05;  ///< relative
  double abs_floor = 1e-9;          ///< absolute slack for near-zero baselines
  std::vector<std::pair<std::string, double>> tolerances;  ///< per metric
  std::vector<std::string> metrics;  ///< compared metric names ("" = default set)
  std::vector<SloRule> slos;

  /// Lift the ledger contract out of a parsed spec.
  [[nodiscard]] static CompareOptions from_spec(const CampaignSpec& spec);
};

struct MetricRow {
  std::string cell;
  std::string metric;
  double baseline = 0.0;
  double fresh = 0.0;
  double tolerance = 0.0;  ///< relative tolerance applied
  bool pass = true;

  [[nodiscard]] double delta() const noexcept { return fresh - baseline; }
};

struct SloRow {
  std::string cell;
  std::string metric;
  double value = 0.0;
  double bound = 0.0;
  bool leq = true;
  bool pass = true;
};

struct CompareReport {
  std::vector<MetricRow> rows;      ///< every compared (cell, metric)
  std::vector<SloRow> slo_rows;     ///< every evaluated SLO assertion
  std::vector<std::string> structural;  ///< missing cells/metrics, failures

  [[nodiscard]] std::size_t metric_violations() const;
  [[nodiscard]] std::size_t slo_violations() const;
  [[nodiscard]] bool pass() const {
    return metric_violations() == 0 && slo_violations() == 0 &&
           structural.empty();
  }
};

/// Diff `fresh` against `baseline` under the spec's contract.
[[nodiscard]] CompareReport compare_campaigns(const CampaignResult& fresh,
                                              const CampaignResult& baseline,
                                              const CompareOptions& options);

/// Human verdict table.  `verbose` prints every row; otherwise only
/// violations plus a summary line.  Ends with "PASS" or "FAIL".
[[nodiscard]] std::string render_report(const CompareReport& report,
                                        bool verbose = false);

}  // namespace hit::campaign
