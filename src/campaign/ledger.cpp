#include "campaign/ledger.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "stats/table.h"

namespace hit::campaign {
namespace {

double tolerance_for(const CompareOptions& options, const std::string& metric) {
  for (const auto& [name, tol] : options.tolerances) {
    if (name == metric) return tol;
  }
  return options.default_tolerance;
}

bool within(double fresh, double baseline, double rel, double abs_floor) {
  return std::fabs(fresh - baseline) <=
         std::max(abs_floor, rel * std::fabs(baseline));
}

}  // namespace

CompareOptions CompareOptions::from_spec(const CampaignSpec& spec) {
  CompareOptions options;
  options.default_tolerance = spec.default_tolerance;
  options.tolerances = spec.tolerances;
  options.metrics = spec.compare_metrics;
  options.slos = spec.slos;
  return options;
}

std::size_t CompareReport::metric_violations() const {
  return static_cast<std::size_t>(
      std::count_if(rows.begin(), rows.end(),
                    [](const MetricRow& r) { return !r.pass; }));
}

std::size_t CompareReport::slo_violations() const {
  return static_cast<std::size_t>(
      std::count_if(slo_rows.begin(), slo_rows.end(),
                    [](const SloRow& r) { return !r.pass; }));
}

CompareReport compare_campaigns(const CampaignResult& fresh,
                                const CampaignResult& baseline,
                                const CompareOptions& options) {
  CompareReport report;
  for (const CellResult& cell : fresh.cells) {
    if (!cell.ok) {
      report.structural.push_back("fresh cell '" + cell.id +
                                  "' failed: " + cell.error);
      continue;
    }
    const CellResult* base = baseline.cell(cell.id);
    if (base == nullptr) {
      report.structural.push_back("cell '" + cell.id +
                                  "' missing from baseline");
      continue;
    }
    if (!base->ok) {
      report.structural.push_back("baseline cell '" + cell.id +
                                  "' failed: " + base->error);
      continue;
    }
    // Default regression surface: the simulator metrics.  `obs.` counters
    // are diagnostics unless the spec lists them explicitly.
    std::vector<std::string> metrics = options.metrics;
    if (metrics.empty()) {
      for (const auto& [name, value] : cell.metrics) {
        (void)value;
        if (name.rfind("obs.", 0) != 0) metrics.push_back(name);
      }
    }
    for (const std::string& metric : metrics) {
      const double* f = cell.metric(metric);
      const double* b = base->metric(metric);
      if (f == nullptr && b == nullptr) continue;  // absent on both sides
      if (f == nullptr || b == nullptr) {
        report.structural.push_back(
            "cell '" + cell.id + "' metric '" + metric + "' missing from " +
            (f == nullptr ? "fresh" : "baseline") + " run");
        continue;
      }
      MetricRow row;
      row.cell = cell.id;
      row.metric = metric;
      row.baseline = *b;
      row.fresh = *f;
      row.tolerance = tolerance_for(options, metric);
      row.pass = within(*f, *b, row.tolerance, options.abs_floor);
      report.rows.push_back(std::move(row));
    }
    for (const SloRule& rule : options.slos) {
      SloRow row;
      row.cell = cell.id;
      row.metric = rule.metric;
      row.bound = rule.bound;
      row.leq = rule.leq;
      const double* v = cell.metric(rule.metric);
      if (v == nullptr) {
        report.structural.push_back("cell '" + cell.id + "' has no metric '" +
                                    rule.metric + "' for its SLO");
        continue;
      }
      row.value = *v;
      row.pass = rule.leq ? *v <= rule.bound : *v >= rule.bound;
      report.slo_rows.push_back(std::move(row));
    }
  }
  for (const CellResult& cell : baseline.cells) {
    if (fresh.cell(cell.id) == nullptr) {
      report.structural.push_back("baseline cell '" + cell.id +
                                  "' missing from fresh run");
    }
  }
  return report;
}

std::string render_report(const CompareReport& report, bool verbose) {
  std::ostringstream out;
  const auto rel = [](const MetricRow& r) {
    return r.baseline == 0.0 ? 0.0 : (r.fresh - r.baseline) / r.baseline;
  };
  stats::Table table({"cell", "metric", "baseline", "fresh", "delta", "rel",
                      "tol", "verdict"});
  std::size_t shown = 0;
  for (const MetricRow& r : report.rows) {
    if (!verbose && r.pass) continue;
    table.add_row({r.cell, r.metric, stats::Table::num(r.baseline),
                   stats::Table::num(r.fresh), stats::Table::num(r.delta()),
                   stats::Table::num(rel(r) * 100.0, 2) + "%",
                   stats::Table::num(r.tolerance * 100.0, 1) + "%",
                   r.pass ? "ok" : "FAIL"});
    ++shown;
  }
  if (shown > 0) out << table.render() << "\n";

  stats::Table slo_table({"cell", "slo", "value", "bound", "verdict"});
  std::size_t slo_shown = 0;
  for (const SloRow& r : report.slo_rows) {
    if (!verbose && r.pass) continue;
    slo_table.add_row({r.cell, r.metric + (r.leq ? " <= " : " >= ") +
                                   stats::Table::num(r.bound),
                       stats::Table::num(r.value), stats::Table::num(r.bound),
                       r.pass ? "ok" : "FAIL"});
    ++slo_shown;
  }
  if (slo_shown > 0) out << slo_table.render() << "\n";

  for (const std::string& s : report.structural) {
    out << "structural: " << s << "\n";
  }

  out << report.rows.size() << " metric comparisons ("
      << report.metric_violations() << " out of tolerance), "
      << report.slo_rows.size() << " SLO checks (" << report.slo_violations()
      << " violated), " << report.structural.size()
      << " structural mismatches\n";
  out << (report.pass() ? "PASS" : "FAIL") << "\n";
  return out.str();
}

}  // namespace hit::campaign
