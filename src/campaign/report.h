// Minimal campaign reporting: render a metric table from a campaign result
// (the JSON `hitcamp run` writes), one row per cell.  This is the
// human-readable counterpart of the regression ledger — `hitcamp compare`
// says pass/fail, `hitcamp report` says what the numbers were.
#pragma once

#include <string>
#include <vector>

#include "campaign/runner.h"

namespace hit::campaign {

/// Render `result` as a fixed-width table: first column the cell id, one
/// column per metric.  `metrics` selects and orders the columns; empty
/// selects every non-obs.* metric in first-appearance order.  Failed cells
/// render their error instead of numbers.  Ends with a one-line summary
/// (cells ok/failed) so the output stands alone in a CI log.
[[nodiscard]] std::string render_report(const CampaignResult& result,
                                        const std::vector<std::string>& metrics = {});

/// Render the cross-cell distribution of each metric instead of per-cell
/// rows: one row per metric with n / min / p25 / p50 / p75 / p90 / p95 / max
/// over the ok cells that report it (linear-interpolated quantiles).  The
/// campaign grid is the sample — `hitcamp report --cdf` answers "how does
/// this metric spread across the matrix" without a spreadsheet.  `metrics`
/// selects and orders the rows; empty selects every non-obs.* metric.
[[nodiscard]] std::string render_cdf(const CampaignResult& result,
                                     const std::vector<std::string>& metrics = {});

}  // namespace hit::campaign
