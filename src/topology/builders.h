// Builders for the four data-center network families the paper evaluates
// (§7.1, §7.3): canonical multi-tier Tree, Fat-Tree [20], VL2 [12] and
// BCube [13].  Each builder returns a validated Topology with typed,
// capacity-limited switches — the substrate for policy optimization.
//
// All builders share two knobs:
//   * link_bandwidth      — per-link capacity (rate units)
//   * switch_capacity     — per-switch processing capacity (Eq. 3, 5th
//                           constraint); scaled up per tier so upper tiers
//                           can carry aggregated traffic.
#pragma once

#include <cstddef>

#include "topology/topology.h"

namespace hit::topo {

/// Canonical multi-tier tree (paper's testbed: depth 3, fanout 8 => 64 hosts,
/// 10 switches with core redundancy 2).
///
/// `depth` counts switch levels (>= 2): level 0 is the core position, the
/// last level holds access switches.  Each position of a non-access level is
/// instantiated `redundancy` times; parallel switches of one position all
/// connect to all switches of the parent position, giving the policy
/// optimizer the alternate routes of the paper's Figure 2.
struct TreeConfig {
  std::size_t depth = 3;           ///< switch levels including access
  std::size_t fanout = 8;          ///< children positions per position
  std::size_t redundancy = 2;      ///< parallel switches per non-access position
  std::size_t hosts_per_access = 8;
  double link_bandwidth = 16.0;    ///< paper testbed: 16 GbE ports
  double switch_capacity = 32.0;   ///< access tier; doubled per tier above
  /// Uplink (switch-to-switch) bandwidth multiplier.  1.0 = non-blocking
  /// relative to host links; < 1.0 models the oversubscribed trees real
  /// data centers run (e.g. 0.25 = 4:1 oversubscription).
  double uplink_bandwidth_factor = 1.0;
};

[[nodiscard]] Topology make_tree(const TreeConfig& config);

/// k-ary Fat-Tree: (k/2)^2 core switches, k pods of k/2 aggregation + k/2
/// edge switches, (k/2)^2 servers per pod.  k must be even and >= 2.
struct FatTreeConfig {
  std::size_t k = 4;
  double link_bandwidth = 16.0;
  double switch_capacity = 32.0;
};

[[nodiscard]] Topology make_fat_tree(const FatTreeConfig& config);

/// VL2-style Clos: `num_intermediate` core switches fully meshed with
/// `num_aggregation` aggregation switches; each ToR (access) dual-homed to
/// two aggregation switches; `servers_per_tor` hosts per ToR.
struct Vl2Config {
  std::size_t num_intermediate = 2;
  std::size_t num_aggregation = 4;
  std::size_t num_tor = 8;
  std::size_t servers_per_tor = 8;
  double link_bandwidth = 16.0;
  double switch_capacity = 32.0;
};

[[nodiscard]] Topology make_vl2(const Vl2Config& config);

/// BCube(n, k): server-centric recursive topology with n^(k+1) servers and
/// (k+1) levels of n^k switches; a server connects to one switch per level.
/// Level 0 switches are access tier; the top level maps to core (k >= 1) and
/// intermediate levels to aggregation.
struct BCubeConfig {
  std::size_t n = 4;
  std::size_t k = 1;
  double link_bandwidth = 16.0;
  double switch_capacity = 32.0;
};

[[nodiscard]] Topology make_bcube(const BCubeConfig& config);

/// The 5-node case-study cluster of the paper's §2.3 / Figure 3: four slave
/// servers S1..S4 in a two-level tree (two access switches under one root),
/// so that e.g. delay(S1, S2-under-other-access) spans 3 switches.
[[nodiscard]] Topology make_case_study_tree(double link_bandwidth = 16.0,
                                            double switch_capacity = 64.0);

}  // namespace hit::topo
