#include "topology/dot.h"

#include <set>
#include <sstream>
#include <utility>

namespace hit::topo {
namespace {

const char* tier_shape(Tier tier) {
  switch (tier) {
    case Tier::Core: return "doubleoctagon";
    case Tier::Aggregation: return "octagon";
    case Tier::Access: return "box";
    case Tier::Host: return "ellipse";
  }
  return "ellipse";
}

const char* tier_color(Tier tier) {
  switch (tier) {
    case Tier::Core: return "#b07aa1";
    case Tier::Aggregation: return "#4e79a7";
    case Tier::Access: return "#59a14f";
    case Tier::Host: return "#bab0ac";
  }
  return "black";
}

std::pair<NodeId, NodeId> ordered(NodeId a, NodeId b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

}  // namespace

std::string to_dot(const Topology& topology, DotOptions options) {
  std::set<std::pair<NodeId, NodeId>> highlighted;
  for (const Path& path : options.highlighted_paths) {
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      highlighted.insert(ordered(path[i], path[i + 1]));
    }
  }

  std::ostringstream out;
  out << "graph \"" << options.graph_name << "\" {\n"
      << "  layout=dot;\n  rankdir=TB;\n  node [style=filled];\n";

  for (NodeId w : topology.switches()) {
    const NodeInfo& info = topology.info(w);
    out << "  n" << w.value() << " [label=\"" << info.name << "\\ncap "
        << info.capacity << "\", shape=" << tier_shape(info.tier)
        << ", fillcolor=\"" << tier_color(info.tier) << "\"];\n";
  }
  if (options.include_servers) {
    for (NodeId s : topology.servers()) {
      out << "  n" << s.value() << " [label=\"" << topology.info(s).name
          << "\", shape=" << tier_shape(Tier::Host) << ", fillcolor=\""
          << tier_color(Tier::Host) << "\"];\n";
    }
  }

  std::set<std::pair<NodeId, NodeId>> emitted;
  for (NodeId n(0); n.index() < topology.node_count();
       n = NodeId(n.value() + 1)) {
    if (!options.include_servers && topology.is_server(n)) continue;
    for (const Edge& e : topology.graph().neighbors(n)) {
      if (!options.include_servers && topology.is_server(e.to)) continue;
      const auto key = ordered(n, e.to);
      if (!emitted.insert(key).second) continue;
      out << "  n" << key.first.value() << " -- n" << key.second.value();
      if (highlighted.count(key) > 0) {
        out << " [color=red, penwidth=3]";
      } else {
        out << " [color=\"#888888\"]";
      }
      out << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace hit::topo
