// Data-center topology: a graph whose nodes are servers and typed switches.
//
// This is the substrate for the paper's §2.2/§3 model: switches carry a
// {capacity, type} pair (type == tier: access / aggregation / core), servers
// host containers, and shuffle flows traverse switch paths whose *type
// sequence* is constrained by the traffic policy (Eq. 3, last constraint).
//
// The paper's Eq. (4) candidate set — alternate switches of the same type
// that can replace position i on a flow's path — is exposed here as
// `substitution_candidates`; residual-capacity filtering is layered on top by
// net::LoadTracker, since load is dynamic while the topology is static.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "topology/graph.h"
#include "util/ids.h"

namespace hit::topo {

enum class Tier : std::uint8_t { Host = 0, Access = 1, Aggregation = 2, Core = 3 };

[[nodiscard]] std::string_view tier_name(Tier tier);

struct NodeInfo {
  Tier tier = Tier::Host;
  double capacity = 0.0;  ///< switch processing capacity (rate units); 0 for hosts
  std::string name;
};

/// Named topology families implemented by the builders.
enum class Family { Tree, FatTree, Vl2, BCube, Custom };

[[nodiscard]] std::string_view family_name(Family family);

class Topology {
 public:
  explicit Topology(Family family = Family::Custom) : family_(family) {}

  NodeId add_server(std::string name);
  NodeId add_switch(Tier tier, double capacity, std::string name);

  /// Undirected physical link.
  void add_link(NodeId a, NodeId b, double bandwidth);

  [[nodiscard]] Family family() const noexcept { return family_; }
  [[nodiscard]] const Graph& graph() const noexcept { return graph_; }
  [[nodiscard]] std::size_t node_count() const noexcept { return info_.size(); }
  [[nodiscard]] std::span<const NodeId> servers() const noexcept { return servers_; }
  [[nodiscard]] std::span<const NodeId> switches() const noexcept { return switches_; }

  [[nodiscard]] const NodeInfo& info(NodeId n) const;
  [[nodiscard]] bool is_server(NodeId n) const { return info(n).tier == Tier::Host; }
  [[nodiscard]] bool is_switch(NodeId n) const { return !is_server(n); }
  [[nodiscard]] Tier tier(NodeId n) const { return info(n).tier; }
  [[nodiscard]] double switch_capacity(NodeId n) const { return info(n).capacity; }

  // --- Path queries -------------------------------------------------------

  /// Minimum-hop path (node sequence, endpoints included); deterministic.
  [[nodiscard]] Path shortest_path(NodeId a, NodeId b) const {
    return graph_.shortest_path(a, b);
  }

  /// Up to k shortest loop-free paths (Yen).
  [[nodiscard]] std::vector<Path> k_shortest_paths(NodeId a, NodeId b,
                                                   std::size_t k) const {
    return graph_.k_shortest_paths(a, b, k);
  }

  /// Number of *switches* on the path (the paper's delay unit: one switch
  /// traversed = 1 T of delay; case-study cost is GB * switch count).
  [[nodiscard]] std::size_t switch_hops(const Path& path) const;

  /// Switch subsequence of a server-to-server path.
  [[nodiscard]] std::vector<NodeId> switch_list(const Path& path) const;

  /// Tier signature of a switch list.
  [[nodiscard]] std::vector<Tier> tier_signature(const std::vector<NodeId>& switches) const;

  /// Eq. (4) structural part: switches ŵ (ŵ != switches[i]) with the same
  /// tier as switches[i] that are physically adjacent to both neighbors of
  /// position i (the neighbor being a server endpoint for end positions).
  /// `src`/`dst` are the servers terminating the flow.
  [[nodiscard]] std::vector<NodeId> substitution_candidates(
      NodeId src, NodeId dst, const std::vector<NodeId>& switches,
      std::size_t i) const;

  /// Switch-hop distance from `src` to every node: the number of switches a
  /// minimum-switch route traverses (servers are free hops, so BCube relay
  /// servers do not inflate the count).  SIZE_MAX for unreachable nodes.
  [[nodiscard]] std::vector<std::size_t> switch_hop_distances(NodeId src) const;

  /// Sanity checks used by tests and builders: ids consistent, servers only
  /// link to access-tier switches (except server-centric families), graph
  /// connected.  Throws std::logic_error describing the first violation.
  void validate() const;

 private:
  Family family_;
  Graph graph_;
  std::vector<NodeInfo> info_;
  std::vector<NodeId> servers_;
  std::vector<NodeId> switches_;
};

}  // namespace hit::topo
