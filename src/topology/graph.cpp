#include "topology/graph.h"

#include <algorithm>
#include <deque>
#include <set>
#include <stdexcept>
#include <utility>

namespace hit::topo {

NodeId Graph::add_node() {
  adjacency_.emplace_back();
  return NodeId(static_cast<NodeId::value_type>(adjacency_.size() - 1));
}

void Graph::check_node(NodeId n) const {
  if (!n.valid() || n.index() >= adjacency_.size()) {
    throw std::out_of_range("Graph: unknown node id");
  }
}

void Graph::add_edge(NodeId a, NodeId b, double bandwidth) {
  check_node(a);
  check_node(b);
  if (a == b) throw std::invalid_argument("Graph: self-loop not allowed");
  if (bandwidth <= 0.0) throw std::invalid_argument("Graph: bandwidth must be positive");
  if (adjacent(a, b)) throw std::invalid_argument("Graph: duplicate edge");
  auto insert_sorted = [](std::vector<Edge>& list, Edge e) {
    list.insert(std::upper_bound(list.begin(), list.end(), e), e);
  };
  insert_sorted(adjacency_[a.index()], Edge{b, bandwidth});
  insert_sorted(adjacency_[b.index()], Edge{a, bandwidth});
  ++edge_count_;
}

const std::vector<Edge>& Graph::neighbors(NodeId n) const {
  check_node(n);
  return adjacency_[n.index()];
}

bool Graph::adjacent(NodeId a, NodeId b) const { return bandwidth(a, b).has_value(); }

std::optional<double> Graph::bandwidth(NodeId a, NodeId b) const {
  check_node(a);
  check_node(b);
  const auto& list = adjacency_[a.index()];
  const auto it = std::lower_bound(list.begin(), list.end(), Edge{b, 0.0});
  if (it != list.end() && it->to == b) return it->bandwidth;
  return std::nullopt;
}

Path Graph::shortest_path(NodeId src, NodeId dst) const {
  return masked_shortest_path(src, dst, {}, {});
}

Path Graph::masked_shortest_path(
    NodeId src, NodeId dst, const std::vector<char>& banned_nodes,
    const std::vector<std::pair<NodeId, NodeId>>& banned_first_edges) const {
  check_node(src);
  check_node(dst);
  auto banned = [&](NodeId n) {
    return n.index() < banned_nodes.size() && banned_nodes[n.index()];
  };
  if (banned(src) || banned(dst)) return {};
  if (src == dst) return {src};

  // BFS visiting sorted neighbors gives the lexicographically smallest
  // minimum-hop path (parents are fixed on first discovery).
  std::vector<NodeId> parent(adjacency_.size());
  std::vector<char> seen(adjacency_.size(), 0);
  seen[src.index()] = 1;
  std::deque<NodeId> frontier{src};
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (const Edge& e : adjacency_[u.index()]) {
      if (seen[e.to.index()] || banned(e.to)) continue;
      if (u == src) {
        const auto is_banned_edge =
            std::find(banned_first_edges.begin(), banned_first_edges.end(),
                      std::make_pair(u, e.to)) != banned_first_edges.end();
        if (is_banned_edge) continue;
      }
      seen[e.to.index()] = 1;
      parent[e.to.index()] = u;
      if (e.to == dst) {
        Path path{dst};
        for (NodeId n = dst; n != src; n = parent[n.index()]) {
          path.push_back(parent[n.index()]);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push_back(e.to);
    }
  }
  return {};
}

std::optional<std::size_t> Graph::distance(NodeId src, NodeId dst) const {
  const Path p = shortest_path(src, dst);
  if (p.empty()) return std::nullopt;
  return p.size() - 1;
}

std::vector<Path> Graph::k_shortest_paths(NodeId src, NodeId dst, std::size_t k) const {
  std::vector<Path> result;
  if (k == 0) return result;
  Path first = shortest_path(src, dst);
  if (first.empty()) return result;
  result.push_back(std::move(first));

  // Yen's algorithm.  Candidates ordered by (length, lexicographic node ids).
  auto path_less = [](const Path& a, const Path& b) {
    if (a.size() != b.size()) return a.size() < b.size();
    return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
  };
  std::set<Path, decltype(path_less)> candidates(path_less);

  while (result.size() < k) {
    const Path& last = result.back();
    // Spur from every node of the previous path except the terminal one.
    for (std::size_t i = 0; i + 1 < last.size(); ++i) {
      const NodeId spur = last[i];
      const Path root(last.begin(), last.begin() + static_cast<std::ptrdiff_t>(i) + 1);

      std::vector<std::pair<NodeId, NodeId>> banned_first_edges;
      for (const Path& p : result) {
        if (p.size() > i + 1 &&
            std::equal(root.begin(), root.end(), p.begin())) {
          banned_first_edges.emplace_back(spur, p[i + 1]);
        }
      }
      std::vector<char> banned_nodes(adjacency_.size(), 0);
      for (std::size_t j = 0; j < i; ++j) banned_nodes[root[j].index()] = 1;

      const Path spur_path =
          masked_shortest_path(spur, dst, banned_nodes, banned_first_edges);
      if (spur_path.empty()) continue;

      Path total(root.begin(), root.end() - 1);
      total.insert(total.end(), spur_path.begin(), spur_path.end());
      if (std::find(result.begin(), result.end(), total) == result.end()) {
        candidates.insert(std::move(total));
      }
    }
    if (candidates.empty()) break;
    result.push_back(*candidates.begin());
    candidates.erase(candidates.begin());
  }
  return result;
}

std::vector<std::size_t> Graph::weighted_distances(
    NodeId src, const std::vector<std::size_t>& node_weight) const {
  check_node(src);
  if (node_weight.size() != adjacency_.size()) {
    throw std::invalid_argument("weighted_distances: weight vector size mismatch");
  }
  constexpr std::size_t kInf = static_cast<std::size_t>(-1);
  std::vector<std::size_t> dist(adjacency_.size(), kInf);
  dist[src.index()] = 0;
  std::deque<NodeId> dq{src};
  while (!dq.empty()) {
    const NodeId u = dq.front();
    dq.pop_front();
    for (const Edge& e : adjacency_[u.index()]) {
      const std::size_t w = node_weight[e.to.index()];
      const std::size_t nd = dist[u.index()] + w;
      if (nd < dist[e.to.index()]) {
        dist[e.to.index()] = nd;
        if (w == 0) {
          dq.push_front(e.to);
        } else {
          dq.push_back(e.to);
        }
      }
    }
  }
  return dist;
}

bool Graph::connected() const {
  if (adjacency_.empty()) return true;
  std::vector<char> seen(adjacency_.size(), 0);
  std::deque<NodeId> frontier{NodeId(0)};
  seen[0] = 1;
  std::size_t visited = 1;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (const Edge& e : adjacency_[u.index()]) {
      if (!seen[e.to.index()]) {
        seen[e.to.index()] = 1;
        ++visited;
        frontier.push_back(e.to);
      }
    }
  }
  return visited == adjacency_.size();
}

}  // namespace hit::topo
