// Undirected graph core used by every topology.
//
// Nodes are dense NodeId handles; edges carry a bandwidth attribute (used by
// the flow-level simulator for max-min fair sharing).  All traversals are
// deterministic: adjacency lists are kept sorted by neighbor id so BFS and
// Yen's algorithm break ties identically across runs and platforms.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "util/ids.h"

namespace hit::topo {

struct Edge {
  NodeId to;
  double bandwidth = 0.0;  ///< link capacity in rate units (e.g. Gbit/s)

  friend bool operator<(const Edge& a, const Edge& b) { return a.to < b.to; }
};

/// A path is the full node sequence, endpoints included.
using Path = std::vector<NodeId>;

class Graph {
 public:
  /// Append a node; returns its id (ids are dense, 0..n-1).
  NodeId add_node();

  /// Add an undirected edge.  Throws if either endpoint is unknown, if the
  /// edge already exists, or if bandwidth is not positive.
  void add_edge(NodeId a, NodeId b, double bandwidth);

  [[nodiscard]] std::size_t node_count() const noexcept { return adjacency_.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edge_count_; }

  /// Sorted-by-id neighbor list.
  [[nodiscard]] const std::vector<Edge>& neighbors(NodeId n) const;

  [[nodiscard]] bool adjacent(NodeId a, NodeId b) const;

  /// Bandwidth of edge (a, b); nullopt when not adjacent.
  [[nodiscard]] std::optional<double> bandwidth(NodeId a, NodeId b) const;

  /// BFS shortest path by hop count; empty when unreachable (or src==dst,
  /// which yields the single-node path).  Deterministic tie-break: the
  /// lexicographically smallest among minimum-hop paths.
  [[nodiscard]] Path shortest_path(NodeId src, NodeId dst) const;

  /// Hop distance (#edges) or nullopt when unreachable.
  [[nodiscard]] std::optional<std::size_t> distance(NodeId src, NodeId dst) const;

  /// Yen's algorithm: up to k loop-free shortest paths, ordered by (length,
  /// lexicographic).  Deterministic.
  [[nodiscard]] std::vector<Path> k_shortest_paths(NodeId src, NodeId dst,
                                                   std::size_t k) const;

  /// True when every node can reach every other (ignores empty graph).
  [[nodiscard]] bool connected() const;

  /// Single-source weighted distances where entering node v costs
  /// `node_weight[v]` (0/1 weights solved with deque BFS).  Unreachable
  /// nodes get SIZE_MAX.  Used to compute switch-hop distances: weight 1 on
  /// switches, 0 on servers.
  [[nodiscard]] std::vector<std::size_t> weighted_distances(
      NodeId src, const std::vector<std::size_t>& node_weight) const;

 private:
  void check_node(NodeId n) const;

  /// BFS shortest path on the graph with some nodes/edges masked out.
  /// `banned_nodes[i]` true => node i unusable; `banned_edges` lists directed
  /// (from,to) pairs that must not be taken as the *first* step from `src`.
  [[nodiscard]] Path masked_shortest_path(
      NodeId src, NodeId dst, const std::vector<char>& banned_nodes,
      const std::vector<std::pair<NodeId, NodeId>>& banned_first_edges) const;

  std::vector<std::vector<Edge>> adjacency_;
  std::size_t edge_count_ = 0;
};

}  // namespace hit::topo
