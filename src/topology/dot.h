// Graphviz DOT export for topologies — debugging and documentation aid.
// Switch tiers get distinct shapes/colors; optional flow-route highlighting
// renders a policy's path in red (`dot -Tsvg topo.dot > topo.svg`).
#pragma once

#include <string>
#include <vector>

#include "topology/topology.h"

namespace hit::topo {

struct DotOptions {
  bool include_servers = true;
  /// Node paths (e.g. realized policies) to highlight; each path's edges
  /// are drawn bold red.
  std::vector<Path> highlighted_paths;
  std::string graph_name = "topology";
};

/// Render the topology as an undirected Graphviz graph.
[[nodiscard]] std::string to_dot(const Topology& topology, DotOptions options = {});

}  // namespace hit::topo
