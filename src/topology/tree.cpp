#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "topology/builders.h"

namespace hit::topo {
namespace {

std::size_t pow_sz(std::size_t base, std::size_t exp) {
  std::size_t r = 1;
  for (std::size_t i = 0; i < exp; ++i) r *= base;
  return r;
}

Tier tree_tier(std::size_t level, std::size_t depth) {
  if (level == 0) return Tier::Core;
  if (level + 1 == depth) return Tier::Access;
  return Tier::Aggregation;
}

}  // namespace

Topology make_tree(const TreeConfig& config) {
  if (config.depth < 2) throw std::invalid_argument("make_tree: depth must be >= 2");
  if (config.fanout == 0) throw std::invalid_argument("make_tree: fanout must be >= 1");
  if (config.redundancy == 0) throw std::invalid_argument("make_tree: redundancy must be >= 1");
  if (config.hosts_per_access == 0) {
    throw std::invalid_argument("make_tree: hosts_per_access must be >= 1");
  }

  Topology topo(Family::Tree);

  // switches[level][position][replica]
  std::vector<std::vector<std::vector<NodeId>>> switches(config.depth);
  for (std::size_t level = 0; level < config.depth; ++level) {
    const std::size_t positions = pow_sz(config.fanout, level);
    const Tier tier = tree_tier(level, config.depth);
    const std::size_t replicas = (tier == Tier::Access) ? 1 : config.redundancy;
    // Upper tiers aggregate more flows; scale their processing capacity.
    const double capacity =
        config.switch_capacity *
        static_cast<double>(pow_sz(2, config.depth - 1 - level));
    switches[level].resize(positions);
    for (std::size_t p = 0; p < positions; ++p) {
      for (std::size_t r = 0; r < replicas; ++r) {
        const std::string name = std::string(tier_name(tier)) + "-L" +
                                 std::to_string(level) + "-P" + std::to_string(p) +
                                 "-R" + std::to_string(r);
        switches[level][p].push_back(topo.add_switch(tier, capacity, name));
      }
    }
  }

  // Wire each position to every replica of its parent position.  Uplinks
  // carry the oversubscription factor.
  if (config.uplink_bandwidth_factor <= 0.0) {
    throw std::invalid_argument("make_tree: uplink factor must be positive");
  }
  const double uplink_bw = config.link_bandwidth * config.uplink_bandwidth_factor;
  for (std::size_t level = 1; level < config.depth; ++level) {
    for (std::size_t p = 0; p < switches[level].size(); ++p) {
      const std::size_t parent = p / config.fanout;
      for (NodeId child : switches[level][p]) {
        for (NodeId up : switches[level - 1][parent]) {
          topo.add_link(child, up, uplink_bw);
        }
      }
    }
  }

  // Hosts hang off access switches.
  const auto& access = switches[config.depth - 1];
  for (std::size_t p = 0; p < access.size(); ++p) {
    for (std::size_t h = 0; h < config.hosts_per_access; ++h) {
      const NodeId server =
          topo.add_server("host-" + std::to_string(p) + "-" + std::to_string(h));
      topo.add_link(server, access[p][0], config.link_bandwidth);
    }
  }

  topo.validate();
  return topo;
}

Topology make_case_study_tree(double link_bandwidth, double switch_capacity) {
  // Figure 3's cluster: root switch over two access switches, two slaves
  // each.  Switch distance S1<->S2 is 1 (shared access switch) and
  // S1<->S4 is 3 (access, root, access) — the pair of distances that makes
  // the paper's shuffle-cost arithmetic (112 GB*T -> 64 GB*T) exact.
  Topology topo(Family::Tree);
  const NodeId root = topo.add_switch(Tier::Core, switch_capacity * 2, "root");
  const NodeId left = topo.add_switch(Tier::Access, switch_capacity, "access-left");
  const NodeId right = topo.add_switch(Tier::Access, switch_capacity, "access-right");
  topo.add_link(left, root, link_bandwidth);
  topo.add_link(right, root, link_bandwidth);
  for (int i = 1; i <= 4; ++i) {
    const NodeId server = topo.add_server("S" + std::to_string(i));
    topo.add_link(server, i <= 2 ? left : right, link_bandwidth);
  }
  topo.validate();
  return topo;
}

}  // namespace hit::topo
