#include <stdexcept>
#include <string>
#include <vector>

#include "topology/builders.h"

namespace hit::topo {
namespace {

std::size_t pow_sz(std::size_t base, std::size_t exp) {
  std::size_t r = 1;
  for (std::size_t i = 0; i < exp; ++i) r *= base;
  return r;
}

}  // namespace

Topology make_bcube(const BCubeConfig& config) {
  const std::size_t n = config.n;
  const std::size_t k = config.k;
  if (n < 2) throw std::invalid_argument("make_bcube: n must be >= 2");

  Topology topo(Family::BCube);

  const std::size_t num_servers = pow_sz(n, k + 1);
  std::vector<NodeId> servers;
  servers.reserve(num_servers);
  for (std::size_t s = 0; s < num_servers; ++s) {
    servers.push_back(topo.add_server("host-" + std::to_string(s)));
  }

  // Level-l switch with index x connects the n servers whose base-n address
  // equals x once digit l is removed.  BCube is server-centric: servers
  // relay traffic between levels, so multi-level paths alternate
  // switch/server hops.
  const std::size_t switches_per_level = pow_sz(n, k);
  for (std::size_t level = 0; level <= k; ++level) {
    Tier tier = Tier::Access;
    if (k > 0 && level == k) tier = Tier::Core;
    else if (level > 0) tier = Tier::Aggregation;
    const double capacity =
        config.switch_capacity * static_cast<double>(pow_sz(2, level));
    const std::size_t low_stride = pow_sz(n, level);
    for (std::size_t x = 0; x < switches_per_level; ++x) {
      const NodeId sw = topo.add_switch(
          tier, capacity, "sw-L" + std::to_string(level) + "-" + std::to_string(x));
      // Re-insert digit l: server address = high * n^(l+1) + d * n^l + low.
      const std::size_t low = x % low_stride;
      const std::size_t high = x / low_stride;
      for (std::size_t d = 0; d < n; ++d) {
        const std::size_t addr = high * low_stride * n + d * low_stride + low;
        topo.add_link(servers[addr], sw, config.link_bandwidth);
      }
    }
  }

  topo.validate();
  return topo;
}

}  // namespace hit::topo
