#include "topology/topology.h"

#include <stdexcept>

namespace hit::topo {

std::string_view tier_name(Tier tier) {
  switch (tier) {
    case Tier::Host: return "host";
    case Tier::Access: return "access";
    case Tier::Aggregation: return "aggregation";
    case Tier::Core: return "core";
  }
  return "?";
}

std::string_view family_name(Family family) {
  switch (family) {
    case Family::Tree: return "Tree";
    case Family::FatTree: return "Fat-Tree";
    case Family::Vl2: return "VL2";
    case Family::BCube: return "BCube";
    case Family::Custom: return "Custom";
  }
  return "?";
}

NodeId Topology::add_server(std::string name) {
  const NodeId id = graph_.add_node();
  info_.push_back(NodeInfo{Tier::Host, 0.0, std::move(name)});
  servers_.push_back(id);
  return id;
}

NodeId Topology::add_switch(Tier tier, double capacity, std::string name) {
  if (tier == Tier::Host) throw std::invalid_argument("add_switch: tier must not be Host");
  if (capacity <= 0.0) throw std::invalid_argument("add_switch: capacity must be positive");
  const NodeId id = graph_.add_node();
  info_.push_back(NodeInfo{tier, capacity, std::move(name)});
  switches_.push_back(id);
  return id;
}

void Topology::add_link(NodeId a, NodeId b, double bandwidth) {
  graph_.add_edge(a, b, bandwidth);
}

const NodeInfo& Topology::info(NodeId n) const {
  if (!n.valid() || n.index() >= info_.size()) {
    throw std::out_of_range("Topology: unknown node id");
  }
  return info_[n.index()];
}

std::size_t Topology::switch_hops(const Path& path) const {
  std::size_t hops = 0;
  for (NodeId n : path) {
    if (is_switch(n)) ++hops;
  }
  return hops;
}

std::vector<NodeId> Topology::switch_list(const Path& path) const {
  std::vector<NodeId> out;
  out.reserve(path.size());
  for (NodeId n : path) {
    if (is_switch(n)) out.push_back(n);
  }
  return out;
}

std::vector<Tier> Topology::tier_signature(const std::vector<NodeId>& switches) const {
  std::vector<Tier> out;
  out.reserve(switches.size());
  for (NodeId w : switches) out.push_back(tier(w));
  return out;
}

std::vector<NodeId> Topology::substitution_candidates(
    NodeId src, NodeId dst, const std::vector<NodeId>& switches,
    std::size_t i) const {
  if (i >= switches.size()) {
    throw std::out_of_range("substitution_candidates: index out of range");
  }
  const NodeId current = switches[i];
  const NodeId prev = (i == 0) ? src : switches[i - 1];
  const NodeId next = (i + 1 == switches.size()) ? dst : switches[i + 1];
  const Tier wanted = tier(current);

  std::vector<NodeId> out;
  // Scan the (smaller) neighbor list of `prev` for same-tier switches also
  // adjacent to `next`.
  for (const Edge& e : graph_.neighbors(prev)) {
    const NodeId cand = e.to;
    if (cand == current || !is_switch(cand) || tier(cand) != wanted) continue;
    if (cand == next || !graph_.adjacent(cand, next)) continue;
    out.push_back(cand);
  }
  return out;
}

std::vector<std::size_t> Topology::switch_hop_distances(NodeId src) const {
  std::vector<std::size_t> weight(node_count(), 0);
  for (NodeId w : switches_) weight[w.index()] = 1;
  return graph_.weighted_distances(src, weight);
}

void Topology::validate() const {
  if (servers_.empty()) throw std::logic_error("Topology: no servers");
  if (switches_.empty()) throw std::logic_error("Topology: no switches");
  if (!graph_.connected()) throw std::logic_error("Topology: graph is not connected");
  for (NodeId s : servers_) {
    if (graph_.neighbors(s).empty()) {
      throw std::logic_error("Topology: isolated server " + info(s).name);
    }
    // In switch-centric families, servers attach only to access switches.
    if (family_ != Family::BCube && family_ != Family::Custom) {
      for (const Edge& e : graph_.neighbors(s)) {
        if (tier(e.to) != Tier::Access) {
          throw std::logic_error("Topology: server " + info(s).name +
                                 " linked to non-access node " + info(e.to).name);
        }
      }
    }
  }
}

}  // namespace hit::topo
