#include <stdexcept>
#include <string>
#include <vector>

#include "topology/builders.h"

namespace hit::topo {

Topology make_fat_tree(const FatTreeConfig& config) {
  const std::size_t k = config.k;
  if (k < 2 || k % 2 != 0) {
    throw std::invalid_argument("make_fat_tree: k must be even and >= 2");
  }
  const std::size_t half = k / 2;

  Topology topo(Family::FatTree);

  // Core switches, arranged as a half x half grid; core (i, j) serves the
  // i-th aggregation switch of every pod.
  std::vector<std::vector<NodeId>> core(half, std::vector<NodeId>(half));
  for (std::size_t i = 0; i < half; ++i) {
    for (std::size_t j = 0; j < half; ++j) {
      core[i][j] = topo.add_switch(Tier::Core, config.switch_capacity * 4,
                                   "core-" + std::to_string(i) + "-" + std::to_string(j));
    }
  }

  for (std::size_t pod = 0; pod < k; ++pod) {
    std::vector<NodeId> agg(half);
    std::vector<NodeId> edge(half);
    for (std::size_t i = 0; i < half; ++i) {
      agg[i] = topo.add_switch(Tier::Aggregation, config.switch_capacity * 2,
                               "agg-" + std::to_string(pod) + "-" + std::to_string(i));
      edge[i] = topo.add_switch(Tier::Access, config.switch_capacity,
                                "edge-" + std::to_string(pod) + "-" + std::to_string(i));
    }
    // Full bipartite mesh between a pod's aggregation and edge layers.
    for (std::size_t i = 0; i < half; ++i) {
      for (std::size_t j = 0; j < half; ++j) {
        topo.add_link(agg[i], edge[j], config.link_bandwidth);
      }
    }
    // Aggregation uplinks: agg i reaches core row i.
    for (std::size_t i = 0; i < half; ++i) {
      for (std::size_t j = 0; j < half; ++j) {
        topo.add_link(agg[i], core[i][j], config.link_bandwidth);
      }
    }
    // half hosts per edge switch: k^3/4 servers in total.
    for (std::size_t i = 0; i < half; ++i) {
      for (std::size_t h = 0; h < half; ++h) {
        const NodeId server = topo.add_server("host-" + std::to_string(pod) + "-" +
                                              std::to_string(i) + "-" + std::to_string(h));
        topo.add_link(server, edge[i], config.link_bandwidth);
      }
    }
  }

  topo.validate();
  return topo;
}

}  // namespace hit::topo
