#include <stdexcept>
#include <string>
#include <vector>

#include "topology/builders.h"

namespace hit::topo {

Topology make_vl2(const Vl2Config& config) {
  if (config.num_intermediate == 0 || config.num_aggregation < 2 ||
      config.num_tor == 0 || config.servers_per_tor == 0) {
    throw std::invalid_argument("make_vl2: all counts must be positive (>=2 aggregation)");
  }

  Topology topo(Family::Vl2);

  std::vector<NodeId> intermediate;
  intermediate.reserve(config.num_intermediate);
  for (std::size_t i = 0; i < config.num_intermediate; ++i) {
    intermediate.push_back(topo.add_switch(Tier::Core, config.switch_capacity * 4,
                                           "int-" + std::to_string(i)));
  }

  std::vector<NodeId> aggregation;
  aggregation.reserve(config.num_aggregation);
  for (std::size_t i = 0; i < config.num_aggregation; ++i) {
    const NodeId agg = topo.add_switch(Tier::Aggregation, config.switch_capacity * 2,
                                       "agg-" + std::to_string(i));
    aggregation.push_back(agg);
    // VL2's defining property: full mesh between aggregation and
    // intermediate layers (Clos), giving uniform capacity between ToRs.
    for (NodeId core : intermediate) {
      topo.add_link(agg, core, config.link_bandwidth);
    }
  }

  for (std::size_t t = 0; t < config.num_tor; ++t) {
    const NodeId tor =
        topo.add_switch(Tier::Access, config.switch_capacity, "tor-" + std::to_string(t));
    // Each ToR is dual-homed to two aggregation switches.
    const std::size_t a0 = (2 * t) % config.num_aggregation;
    const std::size_t a1 = (2 * t + 1) % config.num_aggregation;
    topo.add_link(tor, aggregation[a0], config.link_bandwidth);
    if (a1 != a0) topo.add_link(tor, aggregation[a1], config.link_bandwidth);
    for (std::size_t h = 0; h < config.servers_per_tor; ++h) {
      const NodeId server =
          topo.add_server("host-" + std::to_string(t) + "-" + std::to_string(h));
      topo.add_link(server, tor, config.link_bandwidth);
    }
  }

  topo.validate();
  return topo;
}

}  // namespace hit::topo
