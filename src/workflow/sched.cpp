#include "workflow/sched.h"

#include <algorithm>

namespace hit::workflow {

double stage_score(const ReadyStage& s, const CpWeights& w, double now) {
  const double slack = std::max(0.0, s.elapsed + s.rem_cp - s.cp_total);
  const double age = std::max(0.0, now - s.ready_since);
  return w.alpha * s.rem_cp + w.beta * slack + w.gamma * age;
}

std::vector<std::size_t> rank_stages(const std::vector<ReadyStage>& ready,
                                     const CpWeights& weights, double now) {
  std::vector<std::size_t> order(ready.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<double> score(ready.size());
  for (std::size_t i = 0; i < ready.size(); ++i) {
    score[i] = stage_score(ready[i], weights, now);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (score[a] != score[b]) return score[a] > score[b];
    if (ready[a].workflow != ready[b].workflow) {
      return ready[a].workflow < ready[b].workflow;
    }
    return ready[a].stage < ready[b].stage;
  });
  return order;
}

bool is_critical(const ReadyStage& s, const SchedConfig& cfg) {
  return s.cp_total > 0.0 && s.rem_cp >= cfg.critical_threshold * s.cp_total;
}

}  // namespace hit::workflow
