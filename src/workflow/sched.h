// WorkflowScheduler: stage ranking, escalation, and hedging policy.
//
// Given the set of *ready* stages (all parents complete), the scheduler
// scores each as
//
//   score = alpha * remaining_critical_path
//         + beta  * slack
//         + gamma * age
//
// where slack = max(0, elapsed + rem_cp - cp_total) is how far the stage's
// workflow has already slipped past its ideal critical path (late workflows
// jump the queue), and age = now - ready_since keeps starvation bounded when
// alpha/beta would otherwise pin a wide workflow's leaves behind a deep
// one's spine.  Highest score launches first.
//
// Two budgeted escalations ride on the same criticality signal:
//   * priority escalation — a ready stage whose rem_cp is a large fraction
//     of its workflow's total critical path is bumped to mr::Priority::High
//     (the controller's shed/readmit order already respects priorities), at
//     most `escalation_budget` times per workflow;
//   * hedging — the same test launches a duplicate attempt of the stage
//     (cascade-style: first finisher wins, the loser's work is discarded),
//     at most `hedge_budget` times per workflow.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hit::workflow {

/// Stage-score weights (alpha: criticality, beta: lateness, gamma: aging).
struct CpWeights {
  double alpha = 1.0;
  double beta = 0.5;
  double gamma = 0.1;
};

struct SchedConfig {
  CpWeights weights;
  /// A ready stage with rem_cp >= threshold * cp_total is escalation- and
  /// hedge-eligible (it sits on the workflow's spine).
  double critical_threshold = 0.5;
  /// Priority escalations allowed per workflow (0 disables).
  std::size_t escalation_budget = 0;
  /// Duplicate (hedged) stage launches allowed per workflow (0 disables).
  std::size_t hedge_budget = 0;
  /// Batch runner: ready stages launched together per round (bounds the
  /// cluster footprint of one round; deferred stages accrue age).
  std::size_t max_parallel_stages = 4;
};

/// One ready stage as the scheduler sees it.
struct ReadyStage {
  std::size_t workflow = 0;     ///< workflow instance index
  std::uint32_t stage = 0;      ///< stage index within the workflow
  double rem_cp = 0.0;          ///< remaining critical path from this stage
  double cp_total = 0.0;        ///< workflow's full critical path
  double elapsed = 0.0;         ///< now - workflow start
  double ready_since = 0.0;     ///< when the stage became ready
};

/// score() applied to one stage at time `now`.
[[nodiscard]] double stage_score(const ReadyStage& s, const CpWeights& w,
                                 double now);

/// Rank `ready` best-first under `cfg.weights` at time `now`.  Ties break on
/// (workflow, stage) so the order is a pure function of the inputs.
[[nodiscard]] std::vector<std::size_t> rank_stages(
    const std::vector<ReadyStage>& ready, const CpWeights& weights, double now);

/// True when `s` clears the criticality bar for escalation / hedging.
[[nodiscard]] bool is_critical(const ReadyStage& s, const SchedConfig& cfg);

}  // namespace hit::workflow
