#include "workflow/dag.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "mapreduce/profiles.h"

namespace hit::workflow {

void Workflow::validate() const {
  if (stages.empty()) {
    throw std::invalid_argument("Workflow: '" + name + "' has no stages");
  }
  std::unordered_set<std::string> names;
  for (std::size_t s = 0; s < stages.size(); ++s) {
    const Stage& st = stages[s];
    if (st.name.empty()) {
      throw std::invalid_argument("Workflow: unnamed stage in '" + name + "'");
    }
    if (!names.insert(st.name).second) {
      throw std::invalid_argument("Workflow: duplicate stage name '" +
                                  st.name + "'");
    }
    if (st.input_gb <= 0.0) {
      throw std::invalid_argument("Workflow: stage '" + st.name +
                                  "' needs a positive input size");
    }
    (void)mr::profile(st.benchmark);  // throws on unknown benchmarks
    std::unordered_set<std::uint32_t> seen;
    for (std::uint32_t p : st.parents) {
      if (p >= s) {
        throw std::invalid_argument(
            "Workflow: stage '" + st.name +
            "' references a parent at or after itself (stages must be listed "
            "in topological order)");
      }
      if (!seen.insert(p).second) {
        throw std::invalid_argument("Workflow: stage '" + st.name +
                                    "' lists a parent twice");
      }
    }
  }
}

std::vector<std::vector<std::uint32_t>> Workflow::children() const {
  std::vector<std::vector<std::uint32_t>> out(stages.size());
  for (std::size_t s = 0; s < stages.size(); ++s) {
    for (std::uint32_t p : stages[s].parents) {
      out[p].push_back(static_cast<std::uint32_t>(s));
    }
  }
  return out;
}

std::vector<std::uint32_t> Workflow::roots() const {
  std::vector<std::uint32_t> out;
  for (std::size_t s = 0; s < stages.size(); ++s) {
    if (stages[s].parents.empty()) out.push_back(static_cast<std::uint32_t>(s));
  }
  return out;
}

double Workflow::edge_gb(std::uint32_t s) const {
  const Stage& st = stages.at(s);
  return st.input_gb * mr::profile(st.benchmark).shuffle_selectivity;
}

double stage_cost(const Stage& stage) {
  const mr::BenchmarkProfile& p = mr::profile(stage.benchmark);
  return stage.input_gb *
         (p.map_sec_per_gb + p.shuffle_selectivity * p.reduce_sec_per_gb);
}

std::vector<double> remaining_critical_path(const Workflow& wf) {
  const auto kids = wf.children();
  std::vector<double> cp(wf.stages.size(), 0.0);
  for (std::size_t i = wf.stages.size(); i-- > 0;) {
    double tail = 0.0;
    for (std::uint32_t c : kids[i]) tail = std::max(tail, cp[c]);
    cp[i] = stage_cost(wf.stages[i]) + tail;
  }
  return cp;
}

double critical_path_length(const Workflow& wf) {
  const std::vector<double> cp = remaining_critical_path(wf);
  double best = 0.0;
  for (std::uint32_t r : wf.roots()) best = std::max(best, cp[r]);
  return best;
}

namespace {

/// Child stages ingest their parents' shuffle output, never less than a
/// block's worth so a stage always has at least one map.
double fan_in_gb(const Workflow& wf, const std::vector<std::uint32_t>& parents) {
  double gb = 0.0;
  for (std::uint32_t p : parents) gb += wf.edge_gb(p);
  return std::max(gb, 1.0);
}

}  // namespace

Workflow make_chain(std::size_t stages, const GenConfig& cfg) {
  if (stages == 0) {
    throw std::invalid_argument("make_chain: need at least one stage");
  }
  Workflow wf;
  wf.name = "chain" + std::to_string(stages);
  for (std::size_t s = 0; s < stages; ++s) {
    Stage st;
    st.name = "s" + std::to_string(s);
    st.benchmark = cfg.benchmark;
    if (s == 0) {
      st.input_gb = cfg.input_gb;
    } else {
      st.parents = {static_cast<std::uint32_t>(s - 1)};
      st.input_gb = fan_in_gb(wf, st.parents);
    }
    wf.stages.push_back(std::move(st));
  }
  wf.validate();
  return wf;
}

Workflow make_tree(std::size_t depth, std::size_t fanout, const GenConfig& cfg) {
  if (depth == 0 || fanout < 2) {
    throw std::invalid_argument("make_tree: need depth >= 1 and fanout >= 2");
  }
  Workflow wf;
  wf.name = "tree" + std::to_string(depth) + "x" + std::to_string(fanout);
  // Level 0 = leaves (fanout^depth of them); each next level aggregates
  // `fanout` stages of the previous one until a single sink remains.
  std::size_t width = 1;
  for (std::size_t d = 0; d < depth; ++d) width *= fanout;
  std::vector<std::uint32_t> prev;
  for (std::size_t i = 0; i < width; ++i) {
    Stage st;
    st.name = "leaf" + std::to_string(i);
    st.benchmark = cfg.benchmark;
    st.input_gb = cfg.input_gb;
    prev.push_back(static_cast<std::uint32_t>(wf.stages.size()));
    wf.stages.push_back(std::move(st));
  }
  for (std::size_t level = 1; level <= depth; ++level) {
    std::vector<std::uint32_t> next;
    for (std::size_t i = 0; i < prev.size(); i += fanout) {
      Stage st;
      st.name = "agg" + std::to_string(level) + "_" + std::to_string(i / fanout);
      st.benchmark = cfg.benchmark;
      st.parents.assign(prev.begin() + static_cast<std::ptrdiff_t>(i),
                        prev.begin() + static_cast<std::ptrdiff_t>(i + fanout));
      st.input_gb = fan_in_gb(wf, st.parents);
      next.push_back(static_cast<std::uint32_t>(wf.stages.size()));
      wf.stages.push_back(std::move(st));
    }
    prev = std::move(next);
  }
  wf.validate();
  return wf;
}

Workflow make_diamond(std::size_t width, const GenConfig& cfg) {
  if (width == 0) {
    throw std::invalid_argument("make_diamond: need at least one branch");
  }
  Workflow wf;
  wf.name = "diamond" + std::to_string(width);
  Stage src;
  src.name = "source";
  src.benchmark = cfg.benchmark;
  src.input_gb = cfg.input_gb;
  wf.stages.push_back(std::move(src));
  std::vector<std::uint32_t> branches;
  for (std::size_t i = 0; i < width; ++i) {
    Stage st;
    st.name = "branch" + std::to_string(i);
    st.benchmark = cfg.benchmark;
    st.parents = {0};
    // The source broadcasts: every branch sees the full shuffle output.
    st.input_gb = fan_in_gb(wf, st.parents);
    branches.push_back(static_cast<std::uint32_t>(wf.stages.size()));
    wf.stages.push_back(std::move(st));
  }
  Stage sink;
  sink.name = "sink";
  sink.benchmark = cfg.benchmark;
  sink.parents = branches;
  sink.input_gb = fan_in_gb(wf, sink.parents);
  wf.stages.push_back(std::move(sink));
  wf.validate();
  return wf;
}

Workflow make_shape(std::string_view shape, const GenConfig& cfg) {
  if (shape == "chain") return make_chain(4, cfg);
  if (shape == "tree") return make_tree(2, 3, cfg);
  if (shape == "diamond") return make_diamond(4, cfg);
  throw std::invalid_argument("make_shape: unknown shape '" +
                              std::string(shape) + "'");
}

Workflow parse_spec(std::string_view text) {
  Workflow wf;
  std::unordered_map<std::string, std::uint32_t> index_of;
  std::istringstream in{std::string(text)};
  std::string line;
  std::size_t lineno = 0;
  const auto fail = [&](const std::string& what) {
    throw std::invalid_argument("workflow spec line " + std::to_string(lineno) +
                                ": " + what);
  };
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word)) continue;  // blank / comment-only
    if (word == "workflow") {
      if (!(ls >> wf.name)) fail("expected: workflow <name>");
      continue;
    }
    if (word != "stage") fail("expected 'workflow' or 'stage', got '" + word + "'");
    Stage st;
    std::string deps;
    if (!(ls >> st.name >> st.benchmark >> st.input_gb)) {
      fail("expected: stage <name> <benchmark> <input_gb> [parents]");
    }
    if (ls >> deps) {
      std::istringstream ds(deps);
      std::string dep;
      while (std::getline(ds, dep, ',')) {
        const auto it = index_of.find(dep);
        if (it == index_of.end()) fail("unknown parent stage '" + dep + "'");
        st.parents.push_back(it->second);
      }
    }
    if (!index_of.emplace(st.name, static_cast<std::uint32_t>(wf.stages.size()))
             .second) {
      fail("duplicate stage name '" + st.name + "'");
    }
    wf.stages.push_back(std::move(st));
  }
  if (wf.name.empty()) wf.name = "spec";
  wf.validate();
  return wf;
}

std::vector<mr::Job> materialize(const Workflow& wf, std::uint32_t instance,
                                 const mr::WorkloadGenerator& gen,
                                 mr::IdAllocator& ids) {
  wf.validate();
  if (instance == 0) {
    throw std::invalid_argument("materialize: instance ids are 1-based");
  }
  const std::vector<double> cp = remaining_critical_path(wf);
  std::vector<mr::Job> jobs;
  jobs.reserve(wf.stages.size());
  for (std::size_t s = 0; s < wf.stages.size(); ++s) {
    const Stage& st = wf.stages[s];
    mr::Job job = gen.make_job(mr::profile(st.benchmark), st.input_gb, ids);
    job.workflow = instance;
    job.stage = static_cast<std::uint32_t>(s);
    job.critical_path = cp[s];
    jobs.push_back(std::move(job));
  }
  return jobs;
}

}  // namespace hit::workflow
