// Workflow execution on top of the two simulators (DESIGN.md §16).
//
// Batch: run_workflows_batch drives ClusterSimulator round by round — each
// round launches the highest-scoring ready stages (WorkflowScheduler order,
// capped at SchedConfig::max_parallel_stages, hedged duplicates included),
// the fault plan is sliced so round-local time lines up with plan time, and
// per-round SimResults are time-shifted and merged into one.  Stages unlock
// when every parent stage has finished; rounds are level-synchronized
// barriers, so batch measures scheduling order and hedging, not pipelining.
//
// Online: build_online_plan materializes every stage *attempt* as an
// mr::Job plus the sim::WorkflowPlan that tells OnlineSimulator which jobs
// form a stage and how stages depend on each other.  There the unlocks are
// event-driven (a child arrives the instant its last parent finishes), stage
// shuffles are coflows whose priority is the stage's remaining critical
// path, and faults/sheds cascade — the pipelined setting where
// OrderPolicy::CriticalPath can beat plain SEBF on DAG makespan.
#pragma once

#include <vector>

#include "cluster/cluster.h"
#include "mapreduce/workload.h"
#include "sched/scheduler.h"
#include "sim/engine.h"
#include "sim/online.h"
#include "util/rng.h"
#include "workflow/dag.h"
#include "workflow/sched.h"

namespace hit::workflow {

/// DAG-level accounting for a workflow run (batch or online).
struct WorkflowStats {
  std::size_t workflows = 0;
  std::size_t stages_total = 0;      ///< distinct stages (attempts not counted)
  std::size_t stages_completed = 0;
  std::size_t stages_shed = 0;       ///< online: stages that lost every attempt
  std::size_t escalations = 0;       ///< stages bumped to Priority::High
  std::size_t hedges_launched = 0;   ///< duplicate attempts launched
  std::size_t hedges_won = 0;        ///< duplicates that finished their stage first
  std::size_t hedges_lost = 0;       ///< duplicates the primary outran
  std::size_t restarts = 0;          ///< online: fault-driven attempt restarts
  double makespan = 0.0;             ///< last stage finish
  double cp_lower_bound = 0.0;       ///< max analytic critical-path length
                                     ///< (serial stage seconds; intra-stage
                                     ///< parallelism can run below it)
  double stretch = 0.0;              ///< makespan normalized by cp_lower_bound
  double mean_stage_wait = 0.0;      ///< mean ready->launch (batch) or
                                     ///< ready->finish latency (online winners)
};

/// Merged multi-round batch result: `sim` aggregates every round's
/// SimResult on one time axis; `stats` is the DAG view.
struct BatchWorkflowResult {
  sim::SimResult sim;
  WorkflowStats stats;
};

/// Fault-plan tail from `t0` onward, re-based to time 0: events at or after
/// t0 shift left by t0; fail/degrade/crash states already active at t0 fold
/// into time-0 events so a round that starts mid-outage sees the outage.
[[nodiscard]] sim::FaultPlan slice_plan(const sim::FaultPlan& plan, double t0);

/// Execute `workflows` on the batch simulator (see file header).  Everything
/// is deterministic in (inputs, rng): stage ranking breaks ties on indices
/// and each round consumes the caller's rng sequentially.
[[nodiscard]] BatchWorkflowResult run_workflows_batch(
    const cluster::Cluster& cluster, const sim::SimConfig& sim_config,
    const SchedConfig& sched_config, const std::vector<Workflow>& workflows,
    const mr::WorkloadGenerator& gen, mr::IdAllocator& ids,
    sched::Scheduler& scheduler, Rng& rng);

/// Jobs + dependency plan for OnlineSimulator (one group per workflow
/// instance, one job per stage attempt; hedged duplicates of critical stages
/// within SchedConfig::hedge_budget, priority escalations within
/// SchedConfig::escalation_budget).
struct OnlinePlanBuild {
  std::vector<mr::Job> jobs;
  sim::WorkflowPlan plan;
  std::size_t escalations = 0;
  std::size_t hedges = 0;
};

[[nodiscard]] OnlinePlanBuild build_online_plan(
    const std::vector<Workflow>& workflows, const SchedConfig& sched_config,
    const mr::WorkloadGenerator& gen, mr::IdAllocator& ids);

/// Distill the DAG view from an online run's per-attempt records.
[[nodiscard]] WorkflowStats compute_online_stats(
    const sim::OnlineResult& result, const std::vector<Workflow>& workflows);

}  // namespace hit::workflow
