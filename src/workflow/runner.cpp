#include "workflow/runner.h"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "mapreduce/profiles.h"
#include "obs/context.h"

namespace hit::workflow {

namespace {

/// Stable per-element key for fault-state folding (valid ids only; -1 marks
/// "no peer" so switch/server events key apart from links).
using ElemKey = std::tuple<int, long long, long long>;

ElemKey elem_key(const sim::FaultEvent& e) {
  const long long node =
      e.node.valid() ? static_cast<long long>(e.node.value()) : -1;
  const long long peer =
      e.peer.valid() ? static_cast<long long>(e.peer.value()) : -1;
  return {static_cast<int>(e.target), node, peer};
}

void merge_recovery(sim::RecoveryStats& into, const sim::RecoveryStats& r) {
  into.faults_applied += r.faults_applied;
  into.switches_failed += r.switches_failed;
  into.servers_failed += r.servers_failed;
  into.links_failed += r.links_failed;
  into.maps_killed += r.maps_killed;
  into.maps_reexecuted += r.maps_reexecuted;
  into.reduces_relocated += r.reduces_relocated;
  into.jobs_restarted += r.jobs_restarted;
  into.flows_rerouted += r.flows_rerouted;
  into.flows_stalled += r.flows_stalled;
  into.stall_seconds += r.stall_seconds;
  into.unavailable_seconds += r.unavailable_seconds;
}

void merge_gray(sim::GrayStats& into, const sim::GrayStats& g) {
  // time-to-detect is re-averaged over the merged detection count.
  const double ttd_sum = into.mean_time_to_detect *
                             static_cast<double>(into.detections) +
                         g.mean_time_to_detect * static_cast<double>(g.detections);
  into.gray_events += g.gray_events;
  into.degradations += g.degradations;
  into.degraded_seconds += g.degraded_seconds;
  into.detections += g.detections;
  into.false_positives += g.false_positives;
  into.mean_time_to_detect =
      into.detections > 0 ? ttd_sum / static_cast<double>(into.detections) : 0.0;
  into.quarantines += g.quarantines;
  into.probes += g.probes;
  into.reinstatements += g.reinstatements;
  into.quarantine_seconds += g.quarantine_seconds;
}

void merge_control(sim::ControlPlaneStats& into, const sim::ControlPlaneStats& c) {
  into.crashes += c.crashes;
  into.restarts += c.restarts;
  into.blackout_seconds += c.blackout_seconds;
  into.waves_delayed += c.waves_delayed;
  into.flows_failstatic += c.flows_failstatic;
  into.flows_stalled_blackout += c.flows_stalled_blackout;
  into.reconcile_violations += c.reconcile_violations;
  into.reconcile_repairs += c.reconcile_repairs;
  into.journal_records += c.journal_records;
  into.snapshots += c.snapshots;
  into.replayed_records += c.replayed_records;
}

/// Fold one round's SimResult into the merged timeline at offset `t0`.
void merge_round(sim::SimResult& into, const sim::SimResult& r, double t0) {
  into.jobs.insert(into.jobs.end(), r.jobs.begin(), r.jobs.end());
  for (sim::TaskTiming t : r.tasks) {
    t.start += t0;
    t.finish += t0;
    into.tasks.push_back(std::move(t));
  }
  for (sim::FlowTiming f : r.flows) {
    f.release += t0;
    f.finish += t0;
    into.flows.push_back(std::move(f));
  }
  into.makespan = std::max(into.makespan, t0 + r.makespan);
  into.total_shuffle_cost += r.total_shuffle_cost;
  into.total_shuffle_gb += r.total_shuffle_gb;
  into.total_remote_map_gb += r.total_remote_map_gb;
  if (r.shuffle_finish_time > 0.0) {
    into.shuffle_finish_time =
        std::max(into.shuffle_finish_time, t0 + r.shuffle_finish_time);
  }
  into.speculative_copies += r.speculative_copies;
  into.speculative_won += r.speculative_won;
  into.speculative_lost += r.speculative_lost;
  merge_recovery(into.recovery, r.recovery);
  merge_gray(into.gray, r.gray);
  merge_control(into.control, r.control);
}

}  // namespace

sim::FaultPlan slice_plan(const sim::FaultPlan& plan, double t0) {
  if (t0 <= 0.0) return plan;
  // Fold pre-t0 state: the last Fail/Recover (resp. Degrade/Restore) per
  // element decides whether the round opens inside an outage; controller
  // crash/restart toggles fold the same way.
  std::map<ElemKey, sim::FaultEvent> failed;     // active Fail at t0
  std::map<ElemKey, sim::FaultEvent> degraded;   // active Degrade at t0
  bool controller_down = false;
  sim::FaultEvent controller_crash{};
  std::vector<sim::FaultEvent> out;
  for (const sim::FaultEvent& e : plan.events()) {
    if (e.time >= t0) {
      sim::FaultEvent shifted = e;
      shifted.time = e.time - t0;
      out.push_back(shifted);
      continue;
    }
    switch (e.kind) {
      case sim::FaultKind::Fail: failed[elem_key(e)] = e; break;
      case sim::FaultKind::Recover: failed.erase(elem_key(e)); break;
      case sim::FaultKind::Degrade: degraded[elem_key(e)] = e; break;
      case sim::FaultKind::Restore: degraded.erase(elem_key(e)); break;
      case sim::FaultKind::ControllerCrash:
        controller_down = true;
        controller_crash = e;
        break;
      case sim::FaultKind::ControllerRestart: controller_down = false; break;
    }
  }
  std::vector<sim::FaultEvent> folded;
  for (const auto& [key, e] : failed) {
    sim::FaultEvent f = e;
    f.time = 0.0;
    folded.push_back(f);
  }
  for (const auto& [key, e] : degraded) {
    sim::FaultEvent f = e;
    f.time = 0.0;
    folded.push_back(f);
  }
  if (controller_down) {
    sim::FaultEvent f = controller_crash;
    f.time = 0.0;
    folded.push_back(f);
  }
  folded.insert(folded.end(), out.begin(), out.end());
  return sim::FaultPlan::scripted(std::move(folded));
}

namespace {

/// Per-stage runtime bookkeeping shared by the batch round loop.
struct StageRt {
  std::size_t workflow = 0;
  std::uint32_t stage = 0;
  mr::Job job;               ///< primary attempt (pre-built)
  double rem_cp = 0.0;
  double cp_total = 0.0;
  bool launched = false;
  bool done = false;
  double ready_since = -1.0;  ///< < 0: not ready yet
  double finish = 0.0;
};

}  // namespace

BatchWorkflowResult run_workflows_batch(
    const cluster::Cluster& cluster, const sim::SimConfig& sim_config,
    const SchedConfig& sched_config, const std::vector<Workflow>& workflows,
    const mr::WorkloadGenerator& gen, mr::IdAllocator& ids,
    sched::Scheduler& scheduler, Rng& rng) {
  if (workflows.empty()) {
    throw std::invalid_argument("run_workflows_batch: no workflows");
  }
  // Stage spans (tid 7) are emitted between simulator rounds, so the
  // observer must be bound here, not just inside ClusterSimulator::run.
  const obs::Bind bind(sim_config.observer);
  BatchWorkflowResult out;
  out.stats.workflows = workflows.size();

  std::vector<StageRt> stages;                  // global stage list
  std::vector<std::vector<std::size_t>> globals(workflows.size());
  for (std::size_t w = 0; w < workflows.size(); ++w) {
    const Workflow& wf = workflows[w];
    wf.validate();
    const std::vector<double> cp = remaining_critical_path(wf);
    const double cp_total = critical_path_length(wf);
    out.stats.cp_lower_bound = std::max(out.stats.cp_lower_bound, cp_total);
    std::vector<mr::Job> jobs =
        materialize(wf, static_cast<std::uint32_t>(w) + 1, gen, ids);
    // Budgeted priority escalation: the most critical spine stages first.
    std::vector<std::size_t> by_cp(wf.stages.size());
    for (std::size_t s = 0; s < by_cp.size(); ++s) by_cp[s] = s;
    std::sort(by_cp.begin(), by_cp.end(), [&](std::size_t a, std::size_t b) {
      if (cp[a] != cp[b]) return cp[a] > cp[b];
      return a < b;
    });
    std::size_t escalated = 0;
    for (std::size_t s : by_cp) {
      if (escalated >= sched_config.escalation_budget) break;
      if (cp_total <= 0.0 ||
          cp[s] < sched_config.critical_threshold * cp_total) {
        break;
      }
      jobs[s].priority = mr::Priority::High;
      ++escalated;
      ++out.stats.escalations;
    }
    for (std::size_t s = 0; s < wf.stages.size(); ++s) {
      StageRt rt;
      rt.workflow = w;
      rt.stage = static_cast<std::uint32_t>(s);
      rt.job = std::move(jobs[s]);
      rt.rem_cp = cp[s];
      rt.cp_total = cp_total;
      if (wf.stages[s].parents.empty()) rt.ready_since = 0.0;
      globals[w].push_back(stages.size());
      stages.push_back(std::move(rt));
    }
  }
  out.stats.stages_total = stages.size();

  std::vector<std::size_t> hedge_left(workflows.size(),
                                      sched_config.hedge_budget);
  double round_start = 0.0;
  double total_wait = 0.0;
  std::size_t remaining = stages.size();
  while (remaining > 0) {
    // Ready set under the scoring policy.
    std::vector<ReadyStage> ready;
    std::vector<std::size_t> ready_ix;
    for (std::size_t g = 0; g < stages.size(); ++g) {
      const StageRt& rt = stages[g];
      if (rt.launched || rt.ready_since < 0.0) continue;
      ReadyStage rs;
      rs.workflow = rt.workflow;
      rs.stage = rt.stage;
      rs.rem_cp = rt.rem_cp;
      rs.cp_total = rt.cp_total;
      rs.elapsed = round_start;
      rs.ready_since = rt.ready_since;
      ready.push_back(rs);
      ready_ix.push_back(g);
    }
    if (ready.empty()) {
      throw std::logic_error(
          "run_workflows_batch: no ready stage (cycle past validate()?)");
    }
    const std::vector<std::size_t> order =
        rank_stages(ready, sched_config.weights, round_start);
    const std::size_t take =
        std::min(std::max<std::size_t>(sched_config.max_parallel_stages, 1),
                 order.size());

    // One round: selected stages (plus hedged duplicates) as one batch run.
    struct Launch {
      std::size_t global = 0;
      std::vector<JobId> attempts;  // primary first
    };
    std::vector<Launch> launches;
    std::vector<mr::Job> round_jobs;
    for (std::size_t k = 0; k < take; ++k) {
      const std::size_t g = ready_ix[order[k]];
      StageRt& rt = stages[g];
      Launch l;
      l.global = g;
      l.attempts.push_back(rt.job.id);
      round_jobs.push_back(rt.job);
      if (hedge_left[rt.workflow] > 0 &&
          is_critical(ready[order[k]], sched_config)) {
        --hedge_left[rt.workflow];
        const Stage& st = workflows[rt.workflow].stages[rt.stage];
        mr::Job dup = gen.make_job(mr::profile(st.benchmark), st.input_gb, ids);
        dup.workflow = rt.job.workflow;
        dup.stage = rt.job.stage;
        dup.critical_path = rt.job.critical_path;
        dup.priority = rt.job.priority;
        dup.tenant = rt.job.tenant;
        l.attempts.push_back(dup.id);
        round_jobs.push_back(std::move(dup));
        ++out.stats.hedges_launched;
        obs::count("workflow.hedges_launched");
      }
      rt.launched = true;
      total_wait += round_start - rt.ready_since;
      launches.push_back(std::move(l));
    }
    obs::count("workflow.rounds");
    obs::count("workflow.stages_launched", static_cast<std::int64_t>(take));

    sim::SimConfig round_config = sim_config;
    round_config.faults = slice_plan(sim_config.faults, round_start);
    const sim::ClusterSimulator csim(cluster, round_config);
    const sim::SimResult r = csim.run(scheduler, round_jobs, ids, rng);
    merge_round(out.sim, r, round_start);

    std::unordered_map<JobId, double> completion;
    for (const sim::JobResult& jr : r.jobs) {
      completion[jr.id] = jr.completion_time;
    }
    for (const Launch& l : launches) {
      StageRt& rt = stages[l.global];
      double best = -1.0;
      std::size_t winner = 0;
      for (std::size_t a = 0; a < l.attempts.size(); ++a) {
        const auto it = completion.find(l.attempts[a]);
        if (it == completion.end()) continue;
        if (best < 0.0 || it->second < best) {
          best = it->second;
          winner = a;
        }
      }
      if (best < 0.0) {
        throw std::logic_error("run_workflows_batch: stage produced no result");
      }
      rt.done = true;
      rt.finish = round_start + best;
      --remaining;
      ++out.stats.stages_completed;
      if (l.attempts.size() > 1) {
        if (winner > 0) {
          ++out.stats.hedges_won;
        } else {
          ++out.stats.hedges_lost;
        }
      }
      if (obs::current().trace() != nullptr) {
        obs::sim_span(
            "workflow.stage", "sim.workflow", round_start, rt.finish,
            {{"workflow", static_cast<std::int64_t>(rt.job.workflow)},
             {"stage", static_cast<std::int64_t>(rt.stage)},
             {"rem_cp", rt.rem_cp},
             {"hedged", static_cast<std::int64_t>(l.attempts.size() > 1)}},
            /*tid=*/7);
      }
    }

    // Unlock children whose parents are all done; they accrue age from the
    // latest parent finish, not from the round barrier.
    for (const Launch& l : launches) {
      const StageRt& parent = stages[l.global];
      const Workflow& wf = workflows[parent.workflow];
      const auto kids = wf.children();
      for (std::uint32_t c : kids[parent.stage]) {
        StageRt& child = stages[globals[parent.workflow][c]];
        if (child.ready_since >= 0.0) continue;
        bool all_done = true;
        double last_parent = 0.0;
        for (std::uint32_t p : wf.stages[c].parents) {
          const StageRt& prt = stages[globals[parent.workflow][p]];
          if (!prt.done) {
            all_done = false;
            break;
          }
          last_parent = std::max(last_parent, prt.finish);
        }
        if (all_done) child.ready_since = last_parent;
      }
    }
    round_start += r.makespan;
  }

  out.sim.coflows = sim::group_coflows(out.sim.flows);
  out.stats.makespan = out.sim.makespan;
  out.stats.stretch = out.stats.cp_lower_bound > 0.0
                          ? out.stats.makespan / out.stats.cp_lower_bound
                          : 0.0;
  out.stats.mean_stage_wait =
      stages.empty() ? 0.0 : total_wait / static_cast<double>(stages.size());
  obs::gauge_set("workflow.makespan_s", out.stats.makespan);
  obs::gauge_set("workflow.stretch", out.stats.stretch);
  return out;
}

OnlinePlanBuild build_online_plan(const std::vector<Workflow>& workflows,
                                  const SchedConfig& sched_config,
                                  const mr::WorkloadGenerator& gen,
                                  mr::IdAllocator& ids) {
  if (workflows.empty()) {
    throw std::invalid_argument("build_online_plan: no workflows");
  }
  OnlinePlanBuild out;
  out.plan.groups = workflows.size();
  for (std::size_t g = 0; g < workflows.size(); ++g) {
    const Workflow& wf = workflows[g];
    wf.validate();
    const std::vector<double> cp = remaining_critical_path(wf);
    const double cp_total = critical_path_length(wf);
    // Budgeted escalation / hedging, most critical spine stages first (the
    // same rule the batch runner applies).
    std::vector<std::size_t> by_cp(wf.stages.size());
    for (std::size_t s = 0; s < by_cp.size(); ++s) by_cp[s] = s;
    std::sort(by_cp.begin(), by_cp.end(), [&](std::size_t a, std::size_t b) {
      if (cp[a] != cp[b]) return cp[a] > cp[b];
      return a < b;
    });
    std::vector<char> escalate(wf.stages.size(), 0);
    std::vector<char> hedge(wf.stages.size(), 0);
    std::size_t esc_left = sched_config.escalation_budget;
    std::size_t hedge_left = sched_config.hedge_budget;
    for (std::size_t s : by_cp) {
      if (cp_total <= 0.0 ||
          cp[s] < sched_config.critical_threshold * cp_total) {
        break;
      }
      if (esc_left > 0) {
        escalate[s] = 1;
        --esc_left;
        ++out.escalations;
      }
      if (hedge_left > 0) {
        hedge[s] = 1;
        --hedge_left;
        ++out.hedges;
      }
      if (esc_left == 0 && hedge_left == 0) break;
    }

    const std::size_t base = out.plan.stages.size();
    for (std::size_t s = 0; s < wf.stages.size(); ++s) {
      const Stage& st = wf.stages[s];
      sim::WorkflowPlan::StageInfo info;
      info.group = g;
      info.index = static_cast<std::uint32_t>(s);
      for (std::uint32_t p : st.parents) info.parents.push_back(base + p);
      const std::size_t attempts = hedge[s] ? 2 : 1;
      for (std::size_t a = 0; a < attempts; ++a) {
        mr::Job job = gen.make_job(mr::profile(st.benchmark), st.input_gb, ids);
        job.workflow = static_cast<std::uint32_t>(g) + 1;
        job.stage = static_cast<std::uint32_t>(s);
        job.critical_path = cp[s];
        if (escalate[s]) job.priority = mr::Priority::High;
        sim::WorkflowPlan::JobTag tag;
        tag.group = g;
        tag.stage = base + s;
        tag.attempt = a;
        info.attempts.push_back(out.jobs.size());
        out.plan.job_tags.push_back(tag);
        out.jobs.push_back(std::move(job));
      }
      out.plan.stages.push_back(std::move(info));
    }
    for (std::size_t s = 0; s < wf.stages.size(); ++s) {
      for (std::uint32_t p : wf.stages[s].parents) {
        out.plan.stages[base + p].children.push_back(base + s);
      }
    }
  }
  return out;
}

WorkflowStats compute_online_stats(const sim::OnlineResult& result,
                                   const std::vector<Workflow>& workflows) {
  WorkflowStats st;
  st.workflows = workflows.size();
  for (const Workflow& wf : workflows) {
    st.cp_lower_bound = std::max(st.cp_lower_bound, critical_path_length(wf));
  }
  // First pass: which (workflow, stage) pairs completed.
  std::unordered_set<std::uint64_t> completed;
  const auto key = [](const sim::WorkflowJobRecord& r) {
    return (static_cast<std::uint64_t>(r.workflow) << 32) | r.stage;
  };
  for (const sim::WorkflowJobRecord& r : result.workflow_jobs) {
    if (r.stage_winner) completed.insert(key(r));
  }
  double wait_sum = 0.0;
  for (const sim::WorkflowJobRecord& r : result.workflow_jobs) {
    st.restarts += r.restarts;
    if (r.attempt == 0) ++st.stages_total;
    if (r.attempt > 0) {
      ++st.hedges_launched;
      if (r.stage_winner) {
        ++st.hedges_won;
      } else if (completed.count(key(r)) > 0) {
        ++st.hedges_lost;
      }
    }
    if (r.stage_winner) {
      ++st.stages_completed;
      wait_sum += r.finish - r.unlocked;
    }
  }
  st.stages_shed = st.stages_total - st.stages_completed;
  st.makespan = result.makespan;
  st.stretch =
      st.cp_lower_bound > 0.0 ? st.makespan / st.cp_lower_bound : 0.0;
  st.mean_stage_wait = st.stages_completed > 0
                           ? wait_sum / static_cast<double>(st.stages_completed)
                           : 0.0;
  return st;
}

}  // namespace hit::workflow
