// DAG workload model (DESIGN.md §16): multi-stage jobs whose stages are
// ordinary MapReduce jobs chained by data dependencies.
//
// A Workflow is a list of Stages; each stage names a benchmark profile
// (Table 1), an input size, and the stages it consumes.  Edges carry the
// producing stage's shuffle output (input_gb x shuffle_selectivity), which is
// what a child's fan-in ingests.  The model stays deliberately analytic: the
// per-stage cost estimate below prices a stage the way the Γ/SEBF machinery
// prices a coflow — seconds of map + shuffle-weighted reduce work — and the
// remaining-critical-path vector computed from it drives both the
// WorkflowScheduler's stage ranking and OrderPolicy::CriticalPath's coflow
// ordering, so compute and network agree on what "critical" means.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "mapreduce/job.h"
#include "mapreduce/workload.h"

namespace hit::workflow {

/// One node of the DAG: a MapReduce job template plus its dependencies.
struct Stage {
  std::string name;            ///< unique within the workflow
  std::string benchmark;       ///< Table 1 profile (mr::profile)
  double input_gb = 8.0;       ///< map input for this stage
  std::vector<std::uint32_t> parents;  ///< stage indices this stage consumes
};

/// A named DAG of stages.  Stages must be topologically indexable: every
/// parent index is smaller than the child's own index (validate() enforces
/// this, which also rules out cycles by construction).
struct Workflow {
  std::string name;
  std::vector<Stage> stages;

  /// Throws std::invalid_argument on empty DAGs, out-of-range or forward
  /// parent references, duplicate parents, or duplicate stage names.
  void validate() const;

  /// children[s] = stage indices that consume stage s (derived from parents).
  [[nodiscard]] std::vector<std::vector<std::uint32_t>> children() const;

  /// Stage indices with no parents (workflow entry points).
  [[nodiscard]] std::vector<std::uint32_t> roots() const;

  /// Data volume stage `s` hands each child: map input scaled by the
  /// profile's shuffle selectivity (the bytes that actually cross the net).
  [[nodiscard]] double edge_gb(std::uint32_t s) const;
};

/// Analytic serial cost of one stage in seconds: map seconds over the input
/// plus reduce seconds over the shuffled fraction, per the stage's profile.
[[nodiscard]] double stage_cost(const Stage& stage);

/// Remaining critical path per stage: cost[s] plus the longest downstream
/// chain, computed in reverse topological order.  cp[root-most stages] of the
/// heaviest chain equals critical_path_length().
[[nodiscard]] std::vector<double> remaining_critical_path(const Workflow& wf);

/// Length of the longest root-to-leaf cost chain (the makespan lower bound an
/// infinitely wide cluster could reach).
[[nodiscard]] double critical_path_length(const Workflow& wf);

/// Shape-generator knobs.  All generators are pure functions of their
/// arguments — no RNG — so a (shape, config) pair is a stable workload name.
struct GenConfig {
  std::string benchmark = "terasort";  ///< profile for every stage
  double input_gb = 8.0;                ///< leaf/source stage input
};

/// source -> s1 -> ... -> s(n-1): the n-stage pipeline.
[[nodiscard]] Workflow make_chain(std::size_t stages, const GenConfig& cfg = {});

/// Fan-in aggregation tree: fanout^depth leaves reduce level by level into a
/// single sink (depth levels of internal nodes).  The classic multi-stage
/// aggregation query; leaves carry cfg.input_gb, internal stages ingest their
/// children's shuffle output.
[[nodiscard]] Workflow make_tree(std::size_t depth, std::size_t fanout,
                                 const GenConfig& cfg = {});

/// 1 source -> `width` parallel branches -> 1 sink (map-side broadcast, then
/// a barrier join).  The minimal DAG where critical-path and slack differ.
[[nodiscard]] Workflow make_diamond(std::size_t width, const GenConfig& cfg = {});

/// Build a named shape: "chain" (4 stages), "tree" (depth 2, fanout 3),
/// "diamond" (width 4), each under `cfg`.  Throws on unknown names.
[[nodiscard]] Workflow make_shape(std::string_view shape, const GenConfig& cfg = {});

/// Parse the line-oriented spec format:
///
///   workflow <name>
///   stage <name> <benchmark> <input_gb> [parent[,parent...]]
///
/// '#' starts a comment; blank lines are skipped; parents are earlier stage
/// names.  Throws std::invalid_argument with a line number on any error.
[[nodiscard]] Workflow parse_spec(std::string_view text);

/// Materialize every stage of `wf` as an mr::Job tagged with the workflow
/// instance id (1-based), its stage index, and its remaining critical path —
/// the tags OrderPolicy::CriticalPath, the controller's workflow-unit
/// shedding, and group_coflows' (job, wave) key all key on.
[[nodiscard]] std::vector<mr::Job> materialize(
    const Workflow& wf, std::uint32_t instance,
    const mr::WorkloadGenerator& gen, mr::IdAllocator& ids);

}  // namespace hit::workflow
