// Route selection helpers: default (shortest-path) policies, random initial
// policies (§5.1.1: "the flow f_k is assigned with required switches based on
// a random policy p_k"), and capacity-aware selection among the k shortest
// routes.
#pragma once

#include <cstddef>
#include <optional>

#include "network/load.h"
#include "network/policy.h"
#include "topology/topology.h"
#include "util/ids.h"
#include "util/rng.h"

namespace hit::net {

/// Shortest-path policy between two server nodes.  Deterministic.
[[nodiscard]] Policy shortest_policy(const topo::Topology& topology, NodeId src,
                                     NodeId dst, FlowId flow);

/// Random choice among the `k` shortest routes — the paper's random initial
/// policy before optimization.
[[nodiscard]] Policy random_policy(const topo::Topology& topology, NodeId src,
                                   NodeId dst, FlowId flow, std::size_t k, Rng& rng);

/// Shortest route whose every switch can still absorb `rate` on top of the
/// tracked load; searches the k shortest routes in order.  Returns nullopt
/// when none fits (caller may then accept the overloaded shortest route).
[[nodiscard]] std::optional<Policy> feasible_policy(const topo::Topology& topology,
                                                    const LoadTracker& load,
                                                    NodeId src, NodeId dst,
                                                    FlowId flow, double rate,
                                                    std::size_t k);

/// Number of switch hops a policy traverses (the paper's delay unit).
[[nodiscard]] inline std::size_t policy_hops(const Policy& policy) {
  return policy.len();
}

/// ECMP-style routing: deterministic hash of the flow id picks one of the
/// equal-length shortest routes — the load spreading commodity data-center
/// fabrics apply when no controller optimizes policies.
[[nodiscard]] Policy ecmp_policy(const topo::Topology& topology, NodeId src,
                                 NodeId dst, FlowId flow, std::size_t k = 8);

}  // namespace hit::net
