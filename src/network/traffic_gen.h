// Synthetic traffic measurement — the D-ITG substitute.
//
// The paper uses D-ITG over TCP "to measure the average route length and
// shuffle traffic delay at packet level accurately" (§7.1) and reports both
// per scheduler (Figure 7).  This generator reproduces those two observables
// from a placement + policy set: for every flow it emits the switch-hop route
// length and a per-packet latency sample whose mean is
//
//     delay_us = per_switch_latency_us * hops * (1 + q * max_path_utilization)
//
// i.e. a base store-and-forward latency per traversed switch plus a queueing
// penalty growing with the most-utilized switch on the route (M/M/1-flavored,
// clamped).  Calibration: ~29 us per switch reproduces the paper's 6.5-hop /
// 189 us and 4.4-hop / 131 us operating points.
#pragma once

#include <cstddef>
#include <vector>

#include "network/flow.h"
#include "network/load.h"
#include "network/policy.h"
#include "topology/topology.h"
#include "util/ids.h"
#include "util/rng.h"

namespace hit::net {

struct TrafficGenConfig {
  double per_switch_latency_us = 29.0;
  double queueing_weight = 0.8;      ///< q above
  double max_queueing_factor = 4.0;  ///< clamp on the congestion multiplier
  double jitter_sigma = 0.08;        ///< lognormal per-packet jitter
  std::size_t packets_per_flow = 32;
};

struct FlowMeasurement {
  FlowId flow;
  std::size_t route_hops = 0;        ///< switches traversed
  double mean_delay_us = 0.0;        ///< average packet latency
  double p99_delay_us = 0.0;
  double bytes_gb = 0.0;
};

struct TrafficReport {
  std::vector<FlowMeasurement> flows;

  [[nodiscard]] double average_route_length() const;
  [[nodiscard]] double average_delay_us() const;
};

class TrafficGenerator {
 public:
  TrafficGenerator(const topo::Topology& topology, TrafficGenConfig config = {});

  /// Measure one flow along its policy route.  `src`/`dst` are the hosting
  /// server nodes; `load` provides switch utilizations.
  [[nodiscard]] FlowMeasurement measure(const Flow& flow, const Policy& policy,
                                        NodeId src, NodeId dst,
                                        const LoadTracker& load, Rng& rng) const;

  /// Measure a whole flow set; inputs aligned by index.
  [[nodiscard]] TrafficReport measure_all(const FlowSet& flows,
                                          const std::vector<Policy>& policies,
                                          const std::vector<NodeId>& src_nodes,
                                          const std::vector<NodeId>& dst_nodes,
                                          const LoadTracker& load, Rng& rng) const;

 private:
  const topo::Topology* topology_;
  TrafficGenConfig config_;
};

}  // namespace hit::net
