// Shuffle traffic flows (§3.1): each flow carries one map task's output
// partition to one reduce task: f = {size, src, dst, rate}.
//
// In the paper flows connect *containers*; containers and tasks are 1:1
// (Eq. 3 constraints 2-3), so we key flows by task ids — the scheduler's
// placement decision then fixes the hosting servers.
#pragma once

#include <vector>

#include "util/ids.h"

namespace hit::net {

struct Flow {
  FlowId id;
  JobId job;
  TaskId src_task;   ///< map task producing the partition
  TaskId dst_task;   ///< reduce task consuming it
  double size_gb = 0.0;
  double rate = 0.0;  ///< nominal shuffle data rate (f_i.rate), rate units
  /// Inherited from the owning job: under switch-capacity pressure the
  /// controller parks/sheds lower values first (0 = low, 1 = normal, 2 = high).
  std::uint8_t priority = 1;
  /// Owning tenant, also inherited from the job; tenant-aware shedding picks
  /// its victim flow from the most over-entitlement tenant first.
  std::uint32_t tenant = 0;
  /// Workflow identity inherited from the owning job (0 = standalone).  The
  /// controller groups park/readmit decisions by workflow when set, and the
  /// simulators stamp `stage` into FlowTiming::wave so chained stages never
  /// merge into one coflow record.
  std::uint32_t workflow = 0;
  std::uint32_t stage = 0;
  /// Remaining-critical-path estimate of the owning stage (0 = standalone);
  /// OrderPolicy::CriticalPath routes larger values first at wave level.
  double cp = 0.0;
};

using FlowSet = std::vector<Flow>;

/// Total bytes moved by a flow set.
[[nodiscard]] inline double total_size_gb(const FlowSet& flows) {
  double sum = 0.0;
  for (const Flow& f : flows) sum += f.size_gb;
  return sum;
}

}  // namespace hit::net
