// Dynamic per-switch load ledger: Σ_{p in A(w)} f_p.rate, the left side of
// the switch-capacity constraint in Eq. (3).  Layered over the (static)
// Topology; the policy optimizer consults it to filter Eq. (4)'s candidate
// set down to switches with sufficient residual capacity.
#pragma once

#include <cstddef>
#include <vector>

#include "network/policy.h"
#include "topology/topology.h"
#include "util/ids.h"

namespace hit::net {

class LoadTracker {
 public:
  explicit LoadTracker(const topo::Topology& topology);

  /// Charge `rate` to every switch on the policy's list.
  void assign(const Policy& policy, double rate);

  /// Remove a previously assigned charge.
  void remove(const Policy& policy, double rate);

  [[nodiscard]] double load(NodeId sw) const;
  [[nodiscard]] double residual(NodeId sw) const;

  /// Would assigning `rate` along `policy` keep every switch within
  /// capacity?
  [[nodiscard]] bool feasible(const Policy& policy, double rate) const;
  [[nodiscard]] bool feasible_switch(NodeId sw, double rate) const;

  /// Eq. (4): same-tier, physically valid substitutes for position i of the
  /// policy's switch list that also have residual capacity >= rate.
  [[nodiscard]] std::vector<NodeId> candidates(NodeId src, NodeId dst,
                                               const Policy& policy,
                                               std::size_t i, double rate) const;

  /// Switches currently above capacity (should stay empty when schedulers
  /// behave; failure-injection tests exercise the non-empty case).
  [[nodiscard]] std::vector<NodeId> overloaded() const;

  /// Utilization in [0, ...]: load / capacity.
  [[nodiscard]] double utilization(NodeId sw) const;

  void reset();

 private:
  const topo::Topology* topology_;
  std::vector<double> load_;  // indexed by NodeId
};

}  // namespace hit::net
