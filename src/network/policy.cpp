#include "network/policy.h"

#include <stdexcept>

namespace hit::net {
namespace {

/// Find a relay server adjacent to both switches (server-centric hop),
/// or an invalid id when none exists.
NodeId find_relay(const topo::Topology& topology, NodeId a, NodeId b) {
  for (const topo::Edge& e : topology.graph().neighbors(a)) {
    if (topology.is_server(e.to) && topology.graph().adjacent(e.to, b)) {
      return e.to;
    }
  }
  return NodeId{};
}

}  // namespace

bool Policy::satisfied(const topo::Topology& topology, NodeId src, NodeId dst) const {
  if (list.empty() || list.size() != type.size()) return false;
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (!topology.is_switch(list[i])) return false;
    if (topology.tier(list[i]) != type[i]) return false;
  }
  if (!topology.graph().adjacent(src, list.front())) return false;
  if (!topology.graph().adjacent(list.back(), dst)) return false;
  for (std::size_t i = 0; i + 1 < list.size(); ++i) {
    if (topology.graph().adjacent(list[i], list[i + 1])) continue;
    if (!find_relay(topology, list[i], list[i + 1]).valid()) return false;
  }
  return true;
}

topo::Path Policy::realize(const topo::Topology& topology, NodeId src, NodeId dst) const {
  if (!satisfied(topology, src, dst)) {
    throw std::invalid_argument("Policy::realize: policy not satisfied for endpoints");
  }
  topo::Path path{src};
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (i > 0 && !topology.graph().adjacent(list[i - 1], list[i])) {
      path.push_back(find_relay(topology, list[i - 1], list[i]));
    }
    path.push_back(list[i]);
  }
  path.push_back(dst);
  return path;
}

std::string Policy::to_string(const topo::Topology& topology) const {
  std::string out = "[";
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (i) out += " -> ";
    out += topology.info(list[i]).name;
  }
  out += "]";
  return out;
}

Policy policy_from_path(const topo::Topology& topology, const topo::Path& path,
                        FlowId flow, PolicyId id) {
  Policy policy;
  policy.id = id;
  policy.flow = flow;
  policy.list = topology.switch_list(path);
  policy.type = topology.tier_signature(policy.list);
  return policy;
}

}  // namespace hit::net
