#include "network/routing.h"

#include <stdexcept>

namespace hit::net {

Policy shortest_policy(const topo::Topology& topology, NodeId src, NodeId dst,
                       FlowId flow) {
  const topo::Path path = topology.shortest_path(src, dst);
  if (path.empty()) throw std::invalid_argument("shortest_policy: unreachable endpoints");
  return policy_from_path(topology, path, flow);
}

Policy random_policy(const topo::Topology& topology, NodeId src, NodeId dst,
                     FlowId flow, std::size_t k, Rng& rng) {
  const auto paths = topology.k_shortest_paths(src, dst, k);
  if (paths.empty()) throw std::invalid_argument("random_policy: unreachable endpoints");
  const std::size_t pick = rng.uniform_index(paths.size());
  return policy_from_path(topology, paths[pick], flow);
}

Policy ecmp_policy(const topo::Topology& topology, NodeId src, NodeId dst,
                   FlowId flow, std::size_t k) {
  const auto paths = topology.k_shortest_paths(src, dst, k);
  if (paths.empty()) throw std::invalid_argument("ecmp_policy: unreachable endpoints");
  // Keep only minimum-length routes, then hash the flow id (SplitMix64
  // finalizer) to pick one deterministically.
  std::size_t equal = 1;
  while (equal < paths.size() && paths[equal].size() == paths[0].size()) ++equal;
  std::uint64_t h = flow.value() + 0x9E3779B97F4A7C15ull;
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
  h ^= h >> 31;
  return policy_from_path(topology, paths[h % equal], flow);
}

std::optional<Policy> feasible_policy(const topo::Topology& topology,
                                      const LoadTracker& load, NodeId src,
                                      NodeId dst, FlowId flow, double rate,
                                      std::size_t k) {
  for (const topo::Path& path : topology.k_shortest_paths(src, dst, k)) {
    Policy policy = policy_from_path(topology, path, flow);
    if (load.feasible(policy, rate)) return policy;
  }
  return std::nullopt;
}

}  // namespace hit::net
