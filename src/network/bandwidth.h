// Max-min fair bandwidth allocation (progressive filling).
//
// The flow-level substitute for the paper's Mininet/D-ITG packet measurements:
// given concurrent flows and the capacitated resources they cross (physical
// links and switch processing capacity), compute the fair per-flow rate.
// The discrete-event simulator re-runs this whenever the active flow set
// changes, which reproduces the bandwidth dynamics that motivate the paper
// ("the bandwidth on the routing path is not static but dynamic").
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "topology/topology.h"
#include "util/ids.h"

namespace hit::topo {
class Topology;
}

namespace hit::net {

/// One flow's demand on the network: the node path it follows and an upper
/// bound on how fast it can go (0 or negative => unbounded).
struct FlowDemand {
  FlowId flow;
  topo::Path path;
  double rate_cap = 0.0;
};

/// Effective-capacity multipliers for gray (degraded-but-alive) elements.
/// A switch or link present in the map runs at `factor` x its nominal
/// capacity; absent elements run at full speed.  The allocators below accept
/// an optional CapacityMap so fair-share, SRPT and MADD all see the degraded
/// rates without the topology itself changing.
class CapacityMap {
 public:
  /// Same opaque key scheme as ResidualLedger: switches are (node, node),
  /// links the sorted node pair.
  using Key = std::uint64_t;

  [[nodiscard]] static Key switch_key(NodeId w) noexcept {
    return (static_cast<std::uint64_t>(w.value()) << 32) | w.value();
  }
  [[nodiscard]] static Key link_key(NodeId a, NodeId b) noexcept {
    const auto lo = a.value() < b.value() ? a.value() : b.value();
    const auto hi = a.value() < b.value() ? b.value() : a.value();
    return (static_cast<std::uint64_t>(lo) << 32) | hi;
  }

  /// Set an element's factor.  Throws std::invalid_argument unless the
  /// factor lies in (0, 1]; a factor of exactly 1 erases the entry.
  void set_switch(NodeId w, double factor) { set(switch_key(w), factor); }
  void set_link(NodeId a, NodeId b, double factor) { set(link_key(a, b), factor); }
  void clear_switch(NodeId w) { factors_.erase(switch_key(w)); }
  void clear_link(NodeId a, NodeId b) { factors_.erase(link_key(a, b)); }

  [[nodiscard]] double switch_factor(NodeId w) const { return factor(switch_key(w)); }
  [[nodiscard]] double link_factor(NodeId a, NodeId b) const {
    return factor(link_key(a, b));
  }
  [[nodiscard]] double factor(Key key) const {
    const auto it = factors_.find(key);
    return it == factors_.end() ? 1.0 : it->second;
  }

  [[nodiscard]] bool empty() const noexcept { return factors_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return factors_.size(); }
  void clear() noexcept { factors_.clear(); }

 private:
  void set(Key key, double factor);

  std::unordered_map<Key, double> factors_;
};

/// How concurrent flows share the network.
///   MaxMinFair — TCP-like progressive filling (default; the paper's
///                dynamic-bandwidth premise).
///   Srpt       — shortest-remaining-processing-time-first: the network
///                scheduling discipline of related work [5][6] (flows
///                ordered by remaining bytes; each greedily takes the
///                residual capacity of its path, later flows get leftovers).
enum class SharingPolicy { MaxMinFair, Srpt };

class MaxMinFairAllocator {
 public:
  /// `bandwidth_scale` multiplies every link capacity — the knob behind the
  /// paper's Figure 9 bandwidth sensitivity sweep.
  explicit MaxMinFairAllocator(const topo::Topology& topology,
                               double bandwidth_scale = 1.0);

  /// Compute the max-min fair rate of every demand.  Resources considered:
  /// each undirected link (capacity = bandwidth * scale) and each switch
  /// (its processing capacity).  A non-null `degrade` map multiplies each
  /// element's capacity by its gray factor.  Returns rates aligned with
  /// `demands`.
  [[nodiscard]] std::vector<double> allocate(const std::vector<FlowDemand>& demands,
                                             const CapacityMap* degrade = nullptr) const;

 private:
  const topo::Topology* topology_;
  double scale_;
};

/// SRPT rate assignment: demands are processed in increasing order of
/// `remaining[i]` (ties by FlowId); each flow receives the minimum residual
/// capacity along its path (links and switch capacities, scaled), which is
/// then subtracted.  Starved flows get rate 0 until earlier flows finish.
/// `remaining` aligns with `demands`; a non-null `degrade` map scales
/// element capacities by their gray factors.
[[nodiscard]] std::vector<double> srpt_allocate(const topo::Topology& topology,
                                                const std::vector<FlowDemand>& demands,
                                                const std::vector<double>& remaining,
                                                double bandwidth_scale = 1.0,
                                                const CapacityMap* degrade = nullptr);

/// Residual-capacity ledger over the capacitated resources a set of paths
/// crosses: each undirected physical link (capacity = bandwidth x scale) and
/// each switch (its processing capacity x scale).  Sequential allocators
/// (SRPT, the coflow MADD allocator) register the paths they will serve,
/// then repeatedly take `bottleneck()` and `charge()`; the ledger guarantees
/// the running charges never exceed any resource's capacity.
class ResidualLedger {
 public:
  /// Opaque resource key: switches are (node, node); links the sorted pair.
  using Key = std::uint64_t;

  /// A non-null `degrade` map (kept by pointer; must outlive the ledger)
  /// multiplies each registered element's capacity by its gray factor.
  explicit ResidualLedger(const topo::Topology& topology,
                          double bandwidth_scale = 1.0,
                          const CapacityMap* degrade = nullptr);

  /// Register every resource `path` crosses at its full capacity
  /// (idempotent; re-registering does not reset accumulated charges).
  /// Throws std::invalid_argument on paths shorter than 2 nodes or paths
  /// using a missing link.
  void add_path(const topo::Path& path);

  /// Minimum residual capacity along `path` (resources must be registered).
  [[nodiscard]] double bottleneck(const topo::Path& path) const;

  /// Subtract `rate` from every resource along `path`.  Charging beyond a
  /// resource's residual throws std::logic_error (tolerance 1e-9) — the
  /// ledger is the feasibility guard, not just a counter.
  void charge(const topo::Path& path, double rate);

  /// Visit each distinct resource key along `path` exactly once.
  void for_each_resource(const topo::Path& path,
                         const std::function<void(Key)>& fn) const;

  [[nodiscard]] double residual(Key key) const;
  [[nodiscard]] std::size_t resource_count() const noexcept {
    return residual_.size();
  }

 private:
  const topo::Topology* topology_;
  double scale_;
  const CapacityMap* degrade_;
  std::unordered_map<Key, double> residual_;
};

}  // namespace hit::net
