#include "network/bandwidth.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>

namespace hit::net {
namespace {

/// Resource key: switches are (node, node); links are the sorted node pair.
using ResourceKey = std::uint64_t;

ResourceKey switch_key(NodeId w) {
  return (static_cast<std::uint64_t>(w.value()) << 32) | w.value();
}

ResourceKey link_key(NodeId a, NodeId b) {
  auto lo = std::min(a.value(), b.value());
  auto hi = std::max(a.value(), b.value());
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

struct Resource {
  double capacity = 0.0;
  std::vector<std::size_t> flows;  // indices into demands
};

/// Gray scaling: a null or empty map leaves capacities bit-identical.
double degraded(double capacity, const CapacityMap* degrade, CapacityMap::Key key) {
  if (degrade == nullptr || degrade->empty()) return capacity;
  return capacity * degrade->factor(key);
}

}  // namespace

void CapacityMap::set(Key key, double factor) {
  if (factor <= 0.0 || factor > 1.0) {
    throw std::invalid_argument("CapacityMap: factor must be in (0, 1]");
  }
  if (factor == 1.0) {
    factors_.erase(key);
  } else {
    factors_[key] = factor;
  }
}

MaxMinFairAllocator::MaxMinFairAllocator(const topo::Topology& topology,
                                         double bandwidth_scale)
    : topology_(&topology), scale_(bandwidth_scale) {
  if (bandwidth_scale <= 0.0) {
    throw std::invalid_argument("MaxMinFairAllocator: scale must be positive");
  }
}

std::vector<double> MaxMinFairAllocator::allocate(
    const std::vector<FlowDemand>& demands, const CapacityMap* degrade) const {
  std::vector<double> rates(demands.size(), 0.0);
  if (demands.empty()) return rates;

  // Collect the resources each flow crosses.
  std::unordered_map<ResourceKey, Resource> resources;
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const topo::Path& path = demands[i].path;
    if (path.size() < 2) {
      throw std::invalid_argument("MaxMinFairAllocator: path needs >= 2 nodes");
    }
    for (std::size_t j = 0; j + 1 < path.size(); ++j) {
      const auto bw = topology_->graph().bandwidth(path[j], path[j + 1]);
      if (!bw) throw std::invalid_argument("MaxMinFairAllocator: path uses missing link");
      const ResourceKey key = link_key(path[j], path[j + 1]);
      Resource& link = resources[key];
      link.capacity = degraded(*bw * scale_, degrade, key);
      link.flows.push_back(i);
    }
    for (NodeId n : path) {
      if (!topology_->is_switch(n)) continue;
      const ResourceKey key = switch_key(n);
      Resource& sw = resources[key];
      sw.capacity = degraded(topology_->switch_capacity(n) * scale_, degrade, key);
      sw.flows.push_back(i);
    }
  }

  // Progressive filling: all unfrozen flows grow at the same level t; when a
  // resource saturates (or a flow hits its rate cap), freeze and continue.
  std::vector<char> frozen(demands.size(), 0);
  std::size_t remaining = demands.size();
  double level = 0.0;

  while (remaining > 0) {
    double next = std::numeric_limits<double>::infinity();
    // Resource saturation levels.
    for (const auto& [key, res] : resources) {
      double frozen_sum = 0.0;
      std::size_t unfrozen = 0;
      for (std::size_t i : res.flows) {
        if (frozen[i]) {
          frozen_sum += rates[i];
        } else {
          ++unfrozen;
        }
      }
      if (unfrozen == 0) continue;
      const double t = (res.capacity - frozen_sum) / static_cast<double>(unfrozen);
      next = std::min(next, std::max(t, 0.0));
    }
    // Per-flow caps.
    for (std::size_t i = 0; i < demands.size(); ++i) {
      if (!frozen[i] && demands[i].rate_cap > 0.0) {
        next = std::min(next, demands[i].rate_cap);
      }
    }
    if (!std::isfinite(next)) {
      // No binding constraint: unbounded flows; freeze at an arbitrary large
      // level so callers do not divide by zero.
      next = std::max(level, 1e9);
    }
    level = std::max(level, next);

    // Freeze flows on saturated resources / at their caps.
    bool froze_any = false;
    for (const auto& [key, res] : resources) {
      double frozen_sum = 0.0;
      std::size_t unfrozen = 0;
      for (std::size_t i : res.flows) {
        if (frozen[i]) frozen_sum += rates[i];
        else ++unfrozen;
      }
      if (unfrozen == 0) continue;
      if (frozen_sum + static_cast<double>(unfrozen) * level >= res.capacity - 1e-9) {
        for (std::size_t i : res.flows) {
          if (!frozen[i]) {
            rates[i] = level;
            frozen[i] = 1;
            --remaining;
            froze_any = true;
          }
        }
      }
    }
    for (std::size_t i = 0; i < demands.size(); ++i) {
      if (!frozen[i] && demands[i].rate_cap > 0.0 && level >= demands[i].rate_cap - 1e-12) {
        rates[i] = demands[i].rate_cap;
        frozen[i] = 1;
        --remaining;
        froze_any = true;
      }
    }
    if (!froze_any) {
      // Defensive: numeric stall — freeze everything at the current level.
      for (std::size_t i = 0; i < demands.size(); ++i) {
        if (!frozen[i]) {
          rates[i] = level;
          frozen[i] = 1;
          --remaining;
        }
      }
    }
  }
  return rates;
}

std::vector<double> srpt_allocate(const topo::Topology& topology,
                                  const std::vector<FlowDemand>& demands,
                                  const std::vector<double>& remaining,
                                  double bandwidth_scale,
                                  const CapacityMap* degrade) {
  if (bandwidth_scale <= 0.0) {
    throw std::invalid_argument("srpt_allocate: scale must be positive");
  }
  if (remaining.size() != demands.size()) {
    throw std::invalid_argument("srpt_allocate: remaining size mismatch");
  }

  ResidualLedger ledger(topology, bandwidth_scale, degrade);
  for (const FlowDemand& d : demands) ledger.add_path(d.path);

  std::vector<std::size_t> order(demands.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (remaining[a] != remaining[b]) return remaining[a] < remaining[b];
    return demands[a].flow < demands[b].flow;
  });

  std::vector<double> rates(demands.size(), 0.0);
  for (std::size_t i : order) {
    double rate = ledger.bottleneck(demands[i].path);
    if (demands[i].rate_cap > 0.0) rate = std::min(rate, demands[i].rate_cap);
    rate = std::max(rate, 0.0);
    rates[i] = rate;
    if (rate > 0.0) ledger.charge(demands[i].path, rate);
  }
  return rates;
}

ResidualLedger::ResidualLedger(const topo::Topology& topology,
                               double bandwidth_scale, const CapacityMap* degrade)
    : topology_(&topology), scale_(bandwidth_scale), degrade_(degrade) {
  if (bandwidth_scale <= 0.0) {
    throw std::invalid_argument("ResidualLedger: scale must be positive");
  }
}

void ResidualLedger::add_path(const topo::Path& path) {
  if (path.size() < 2) {
    throw std::invalid_argument("ResidualLedger: path needs >= 2 nodes");
  }
  for (std::size_t j = 0; j + 1 < path.size(); ++j) {
    const auto bw = topology_->graph().bandwidth(path[j], path[j + 1]);
    if (!bw) throw std::invalid_argument("ResidualLedger: path uses missing link");
    const Key key = link_key(path[j], path[j + 1]);
    residual_.emplace(key, degraded(*bw * scale_, degrade_, key));
  }
  for (NodeId n : path) {
    if (topology_->is_switch(n)) {
      const Key key = switch_key(n);
      residual_.emplace(key, degraded(topology_->switch_capacity(n) * scale_,
                                      degrade_, key));
    }
  }
}

double ResidualLedger::bottleneck(const topo::Path& path) const {
  double rate = std::numeric_limits<double>::infinity();
  for (std::size_t j = 0; j + 1 < path.size(); ++j) {
    rate = std::min(rate, residual_.at(link_key(path[j], path[j + 1])));
  }
  for (NodeId n : path) {
    if (topology_->is_switch(n)) rate = std::min(rate, residual_.at(switch_key(n)));
  }
  return rate;
}

void ResidualLedger::charge(const topo::Path& path, double rate) {
  constexpr double kTolerance = 1e-9;
  const auto take = [&](Key key) {
    double& r = residual_.at(key);
    r -= rate;
    if (r < 0.0) {
      if (r < -kTolerance) {
        throw std::logic_error("ResidualLedger::charge: capacity exceeded");
      }
      r = 0.0;  // floating-point slack only
    }
  };
  for (std::size_t j = 0; j + 1 < path.size(); ++j) {
    take(link_key(path[j], path[j + 1]));
  }
  for (NodeId n : path) {
    if (topology_->is_switch(n)) take(switch_key(n));
  }
}

void ResidualLedger::for_each_resource(const topo::Path& path,
                                       const std::function<void(Key)>& fn) const {
  // Simulator paths are simple (no repeated nodes), so links and switches
  // each appear once.
  for (std::size_t j = 0; j + 1 < path.size(); ++j) {
    fn(link_key(path[j], path[j + 1]));
  }
  for (NodeId n : path) {
    if (topology_->is_switch(n)) fn(switch_key(n));
  }
}

double ResidualLedger::residual(Key key) const {
  const auto it = residual_.find(key);
  return it == residual_.end() ? 0.0 : it->second;
}

}  // namespace hit::net
