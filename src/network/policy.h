// Traffic policies (§3.1): the ordered, typed switch list a flow must
// traverse.  A policy p has {list, len, type}; it is *satisfied* iff every
// allocated switch matches the required type in order and consecutive
// elements are physically connected (flows cannot teleport).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "topology/topology.h"
#include "util/ids.h"

namespace hit::net {

struct Policy {
  PolicyId id;
  FlowId flow;
  std::vector<NodeId> list;          ///< p.list — switches, ingress to egress
  std::vector<topo::Tier> type;      ///< p.type — required tier per position

  [[nodiscard]] std::size_t len() const noexcept { return list.size(); }

  /// Paper's satisfaction predicate plus physical realizability:
  ///  * |list| == |type| and every switch's tier matches its slot,
  ///  * src server attaches to list[0], dst server to list[len-1],
  ///  * consecutive switches are adjacent (directly, or through a relay
  ///    server in server-centric topologies like BCube).
  [[nodiscard]] bool satisfied(const topo::Topology& topology, NodeId src,
                               NodeId dst) const;

  /// Full node path src -> switches -> dst, inserting relay servers where
  /// consecutive switches are only server-connected (BCube).  Throws
  /// std::invalid_argument when the policy is not realizable.
  [[nodiscard]] topo::Path realize(const topo::Topology& topology, NodeId src,
                                   NodeId dst) const;

  [[nodiscard]] std::string to_string(const topo::Topology& topology) const;
};

/// Build a policy whose list/type mirror the switches of a concrete path.
[[nodiscard]] Policy policy_from_path(const topo::Topology& topology,
                                      const topo::Path& path, FlowId flow,
                                      PolicyId id = PolicyId{});

}  // namespace hit::net
