#include "network/traffic_gen.h"

#include <algorithm>
#include <stdexcept>

#include "stats/summary.h"

namespace hit::net {

double TrafficReport::average_route_length() const {
  if (flows.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& m : flows) sum += static_cast<double>(m.route_hops);
  return sum / static_cast<double>(flows.size());
}

double TrafficReport::average_delay_us() const {
  if (flows.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& m : flows) sum += m.mean_delay_us;
  return sum / static_cast<double>(flows.size());
}

TrafficGenerator::TrafficGenerator(const topo::Topology& topology,
                                   TrafficGenConfig config)
    : topology_(&topology), config_(config) {
  if (config_.packets_per_flow == 0) {
    throw std::invalid_argument("TrafficGenerator: packets_per_flow must be > 0");
  }
}

FlowMeasurement TrafficGenerator::measure(const Flow& flow, const Policy& policy,
                                          NodeId src, NodeId dst,
                                          const LoadTracker& load, Rng& rng) const {
  if (!policy.satisfied(*topology_, src, dst)) {
    throw std::invalid_argument("TrafficGenerator: unsatisfied policy");
  }
  const std::size_t hops = policy.len();
  double max_util = 0.0;
  for (NodeId w : policy.list) {
    max_util = std::max(max_util, load.utilization(w));
  }
  const double congestion = std::min(1.0 + config_.queueing_weight * max_util,
                                     config_.max_queueing_factor);
  const double base_us =
      config_.per_switch_latency_us * static_cast<double>(hops) * congestion;

  std::vector<double> samples;
  samples.reserve(config_.packets_per_flow);
  for (std::size_t p = 0; p < config_.packets_per_flow; ++p) {
    samples.push_back(rng.lognormal_median(base_us, config_.jitter_sigma));
  }
  FlowMeasurement m;
  m.flow = flow.id;
  m.route_hops = hops;
  m.mean_delay_us = stats::mean_of(samples);
  m.p99_delay_us = stats::percentile(samples, 99.0);
  m.bytes_gb = flow.size_gb;
  return m;
}

TrafficReport TrafficGenerator::measure_all(const FlowSet& flows,
                                            const std::vector<Policy>& policies,
                                            const std::vector<NodeId>& src_nodes,
                                            const std::vector<NodeId>& dst_nodes,
                                            const LoadTracker& load, Rng& rng) const {
  if (flows.size() != policies.size() || flows.size() != src_nodes.size() ||
      flows.size() != dst_nodes.size()) {
    throw std::invalid_argument("TrafficGenerator: input size mismatch");
  }
  TrafficReport report;
  report.flows.reserve(flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    report.flows.push_back(
        measure(flows[i], policies[i], src_nodes[i], dst_nodes[i], load, rng));
  }
  return report;
}

}  // namespace hit::net
