#include "network/load.h"

#include <algorithm>
#include <stdexcept>

namespace hit::net {

LoadTracker::LoadTracker(const topo::Topology& topology)
    : topology_(&topology), load_(topology.node_count(), 0.0) {}

void LoadTracker::assign(const Policy& policy, double rate) {
  if (rate < 0.0) throw std::invalid_argument("LoadTracker: negative rate");
  for (NodeId w : policy.list) load_[w.index()] += rate;
}

void LoadTracker::remove(const Policy& policy, double rate) {
  if (rate < 0.0) throw std::invalid_argument("LoadTracker: negative rate");
  for (NodeId w : policy.list) {
    load_[w.index()] -= rate;
    if (load_[w.index()] < -1e-9) {
      throw std::logic_error("LoadTracker: negative load after removal");
    }
    load_[w.index()] = std::max(load_[w.index()], 0.0);
  }
}

double LoadTracker::load(NodeId sw) const {
  if (!sw.valid() || sw.index() >= load_.size()) {
    throw std::out_of_range("LoadTracker: unknown node");
  }
  return load_[sw.index()];
}

double LoadTracker::residual(NodeId sw) const {
  return topology_->switch_capacity(sw) - load(sw);
}

bool LoadTracker::feasible_switch(NodeId sw, double rate) const {
  return residual(sw) + 1e-12 >= rate;
}

bool LoadTracker::feasible(const Policy& policy, double rate) const {
  return std::all_of(policy.list.begin(), policy.list.end(),
                     [&](NodeId w) { return feasible_switch(w, rate); });
}

std::vector<NodeId> LoadTracker::candidates(NodeId src, NodeId dst,
                                            const Policy& policy, std::size_t i,
                                            double rate) const {
  std::vector<NodeId> structural =
      topology_->substitution_candidates(src, dst, policy.list, i);
  std::vector<NodeId> out;
  out.reserve(structural.size());
  for (NodeId w : structural) {
    if (feasible_switch(w, rate)) out.push_back(w);
  }
  return out;
}

std::vector<NodeId> LoadTracker::overloaded() const {
  std::vector<NodeId> out;
  for (NodeId w : topology_->switches()) {
    if (load_[w.index()] > topology_->switch_capacity(w) + 1e-9) out.push_back(w);
  }
  return out;
}

double LoadTracker::utilization(NodeId sw) const {
  const double cap = topology_->switch_capacity(sw);
  return cap > 0.0 ? load(sw) / cap : 0.0;
}

void LoadTracker::reset() { std::fill(load_.begin(), load_.end(), 0.0); }

}  // namespace hit::net
