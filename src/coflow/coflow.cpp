#include "coflow/coflow.h"

#include <algorithm>
#include <stdexcept>

#include "stats/summary.h"

namespace hit::coflow {

const char* order_policy_name(OrderPolicy policy) {
  switch (policy) {
    case OrderPolicy::Fifo: return "fifo";
    case OrderPolicy::Sebf: return "sebf";
    case OrderPolicy::Priority: return "priority";
    case OrderPolicy::CriticalPath: return "cp";
  }
  return "?";
}

std::optional<OrderPolicy> parse_order_policy(std::string_view name) {
  if (name == "fifo") return OrderPolicy::Fifo;
  if (name == "sebf") return OrderPolicy::Sebf;
  if (name == "priority") return OrderPolicy::Priority;
  if (name == "cp" || name == "critical-path") return OrderPolicy::CriticalPath;
  return std::nullopt;
}

const char* coflow_state_name(CoflowState state) {
  switch (state) {
    case CoflowState::Pending: return "pending";
    case CoflowState::Active: return "active";
    case CoflowState::Done: return "done";
  }
  return "?";
}

CoflowId CoflowRegistry::open(JobId job, std::uint8_t priority, double deadline,
                              double cp) {
  Coflow c;
  c.id = CoflowId(static_cast<CoflowId::value_type>(coflows_.size()));
  c.job = job;
  c.priority = priority;
  c.deadline = deadline;
  c.cp = cp;
  coflows_.push_back(std::move(c));
  return coflows_.back().id;
}

void CoflowRegistry::add_flow(CoflowId coflow, FlowId flow, double size_gb) {
  if (coflow.index() >= coflows_.size()) {
    throw std::invalid_argument("CoflowRegistry::add_flow: unknown coflow");
  }
  if (!coflow_of_.emplace(flow, coflow).second) {
    throw std::invalid_argument(
        "CoflowRegistry::add_flow: flow already belongs to a coflow");
  }
  Coflow& c = coflows_[coflow.index()];
  c.flows.push_back(flow);
  c.total_gb += size_gb;
  c.max_flow_gb = std::max(c.max_flow_gb, size_gb);
}

Coflow& CoflowRegistry::mutable_of_flow(FlowId flow) {
  const auto it = coflow_of_.find(flow);
  if (it == coflow_of_.end()) {
    throw std::invalid_argument("CoflowRegistry: unregistered flow");
  }
  return coflows_[it->second.index()];
}

void CoflowRegistry::flow_released(FlowId flow, double now) {
  Coflow& c = mutable_of_flow(flow);
  c.released = std::min(c.released, now);
  if (c.state == CoflowState::Pending) c.state = CoflowState::Active;
}

void CoflowRegistry::flow_finished(FlowId flow, double now) {
  Coflow& c = mutable_of_flow(flow);
  if (c.state == CoflowState::Done) {
    throw std::logic_error("CoflowRegistry::flow_finished: coflow already done");
  }
  c.finished = std::max(c.finished, now);
  if (++c.flows_done == c.flows.size()) c.state = CoflowState::Done;
}

void CoflowRegistry::reset(CoflowId coflow) {
  if (coflow.index() >= coflows_.size()) {
    throw std::invalid_argument("CoflowRegistry::reset: unknown coflow");
  }
  Coflow& c = coflows_[coflow.index()];
  c.state = CoflowState::Pending;
  c.released = std::numeric_limits<double>::infinity();
  c.finished = 0.0;
  c.flows_done = 0;
}

CoflowId CoflowRegistry::coflow_of(FlowId flow) const {
  const auto it = coflow_of_.find(flow);
  return it == coflow_of_.end() ? CoflowId{} : it->second;
}

const Coflow& CoflowRegistry::get(CoflowId id) const {
  if (id.index() >= coflows_.size()) {
    throw std::invalid_argument("CoflowRegistry::get: unknown coflow");
  }
  return coflows_[id.index()];
}

std::vector<CoflowId> CoflowRegistry::active() const {
  std::vector<CoflowId> out;
  for (const Coflow& c : coflows_) {
    if (c.state == CoflowState::Active) out.push_back(c.id);
  }
  return out;
}

CoflowStats CoflowRegistry::stats() const {
  CoflowStats s;
  std::vector<double> ccts;
  for (const Coflow& c : coflows_) {
    if (c.state != CoflowState::Done) continue;
    ccts.push_back(c.completion_time());
  }
  s.completed = ccts.size();
  if (ccts.empty()) return s;
  double sum = 0.0;
  for (double v : ccts) sum += v;
  s.avg_cct = sum / static_cast<double>(ccts.size());
  s.p95_cct = stats::percentile(std::move(ccts), 95.0);
  return s;
}

}  // namespace hit::coflow
