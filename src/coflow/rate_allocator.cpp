#include "coflow/rate_allocator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <unordered_map>

namespace hit::coflow {

double effective_bottleneck(const net::ResidualLedger& ledger,
                            const std::vector<net::FlowDemand>& demands,
                            const std::vector<double>& remaining_gb,
                            const std::vector<std::size_t>& members) {
  // Aggregate the group's bytes per crossed resource, then take the max
  // drain time.  Max over an unordered_map is order-independent, so the
  // result is deterministic.
  std::unordered_map<net::ResidualLedger::Key, double> bytes;
  double total = 0.0;
  for (std::size_t i : members) {
    const double rem = remaining_gb[i];
    if (rem <= 0.0) continue;
    total += rem;
    ledger.for_each_resource(demands[i].path,
                             [&](net::ResidualLedger::Key key) { bytes[key] += rem; });
  }
  if (total <= 0.0) return 0.0;
  double gamma = 0.0;
  for (const auto& [key, load] : bytes) {
    const double residual = ledger.residual(key);
    if (residual <= 0.0) return std::numeric_limits<double>::infinity();
    gamma = std::max(gamma, load / residual);
  }
  return gamma;
}

std::vector<double> madd_allocate(const topo::Topology& topology,
                                  const std::vector<net::FlowDemand>& demands,
                                  const std::vector<double>& remaining_gb,
                                  const std::vector<std::vector<std::size_t>>& groups,
                                  double bandwidth_scale,
                                  const net::CapacityMap* degrade) {
  if (remaining_gb.size() != demands.size()) {
    throw std::invalid_argument("madd_allocate: remaining size mismatch");
  }
  std::vector<char> grouped(demands.size(), 0);
  for (const auto& members : groups) {
    for (std::size_t i : members) {
      if (i >= demands.size() || grouped[i]) {
        throw std::invalid_argument("madd_allocate: groups must partition demands");
      }
      grouped[i] = 1;
    }
  }
  for (char g : grouped) {
    if (!g) throw std::invalid_argument("madd_allocate: demand missing from groups");
  }

  net::ResidualLedger ledger(topology, bandwidth_scale, degrade);
  for (const net::FlowDemand& d : demands) ledger.add_path(d.path);

  std::vector<double> rates(demands.size(), 0.0);

  // Pass 1 — recursive MADD: each coflow in order gets rate_i = remaining_i
  // / Γ_c against what earlier coflows left, so its flows finish together and
  // its bottleneck resource drains exactly when the coflow does.
  for (const auto& members : groups) {
    const double gamma = effective_bottleneck(ledger, demands, remaining_gb, members);
    if (gamma <= 0.0 || !std::isfinite(gamma)) continue;
    for (std::size_t i : members) {
      double r = remaining_gb[i] / gamma;
      if (demands[i].rate_cap > 0.0) r = std::min(r, demands[i].rate_cap);
      if (r <= 0.0) continue;
      ledger.charge(demands[i].path, r);
      rates[i] = r;
    }
  }

  // Pass 2 — work-conserving backfill: hand each flow whatever its path
  // still has, earlier coflows first (within a coflow: smallest remaining
  // first, ties by FlowId).  Capacity Γ cannot convert into earlier coflow
  // completion is still not left idle.
  for (const auto& members : groups) {
    std::vector<std::size_t> order = members;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (remaining_gb[a] != remaining_gb[b]) return remaining_gb[a] < remaining_gb[b];
      return demands[a].flow < demands[b].flow;
    });
    for (std::size_t i : order) {
      if (remaining_gb[i] <= 0.0) continue;
      double extra = ledger.bottleneck(demands[i].path);
      if (demands[i].rate_cap > 0.0) {
        extra = std::min(extra, demands[i].rate_cap - rates[i]);
      }
      if (extra <= 1e-12) continue;
      ledger.charge(demands[i].path, extra);
      rates[i] += extra;
    }
  }
  return rates;
}

}  // namespace hit::coflow
