// Inter-coflow ordering policies.
//
// The scheduler's job is a single decision: given the currently active
// coflows, which one is head-of-line?  Everything downstream (the MADD rate
// allocator, the policy optimizer's residual-capacity pass, the controller's
// shed order) consumes the resulting permutation.  Three disciplines:
//
//   FifoOrder     — order of first release (ties by coflow id).  The baseline
//                   discipline of Hadoop's per-flow fair sharing viewed at
//                   coflow granularity.
//   SebfOrder     — smallest-effective-bottleneck-first (Varys): order by
//                   Γ_c, the minimum time coflow c needs to finish if handed
//                   all residual capacity along its installed policy paths.
//                   Shortest-job-first at coflow granularity; near-optimal
//                   for average CCT.
//   PriorityOrder — job priority first (high before normal before low), FIFO
//                   within a class.  Matches the admission/shed ordering the
//                   rest of the system already uses.
//   CriticalPathOrder — largest remaining-critical-path first (workflow
//                   stages feeding long downstream chains outrank leaf
//                   stages); Γ_c ascending inside a criticality class, so
//                   standalone jobs (cp == 0) degrade to plain SEBF.
//
// All orderings break ties by CoflowId so the permutation is a pure function
// of the inputs — determinism is a hard requirement of the simulators.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "coflow/coflow.h"

namespace hit::coflow {

/// Returns Γ_c for a coflow: its effective bottleneck completion time against
/// current residual capacities.  Policies that do not consult residuals
/// (FIFO, priority) never call it, so callers may pass a stub.
using GammaFn = std::function<double(CoflowId)>;

/// Strategy interface: permute `active` head-of-line first.
class CoflowScheduler {
 public:
  virtual ~CoflowScheduler() = default;

  [[nodiscard]] virtual OrderPolicy policy() const noexcept = 0;

  /// Order `active` (ids into `registry`) head-of-line first.  Must be
  /// deterministic: equal inputs produce equal permutations.
  [[nodiscard]] virtual std::vector<CoflowId> order(
      const CoflowRegistry& registry, std::vector<CoflowId> active,
      const GammaFn& gamma_of) const = 0;
};

/// First-released first; ties by id.
class FifoOrder final : public CoflowScheduler {
 public:
  [[nodiscard]] OrderPolicy policy() const noexcept override {
    return OrderPolicy::Fifo;
  }
  [[nodiscard]] std::vector<CoflowId> order(const CoflowRegistry& registry,
                                            std::vector<CoflowId> active,
                                            const GammaFn& gamma_of) const override;
};

/// Smallest effective bottleneck (Γ_c) first; ties by id.
class SebfOrder final : public CoflowScheduler {
 public:
  [[nodiscard]] OrderPolicy policy() const noexcept override {
    return OrderPolicy::Sebf;
  }
  [[nodiscard]] std::vector<CoflowId> order(const CoflowRegistry& registry,
                                            std::vector<CoflowId> active,
                                            const GammaFn& gamma_of) const override;
};

/// Highest job priority first; FIFO inside a priority class; ties by id.
class PriorityOrder final : public CoflowScheduler {
 public:
  [[nodiscard]] OrderPolicy policy() const noexcept override {
    return OrderPolicy::Priority;
  }
  [[nodiscard]] std::vector<CoflowId> order(const CoflowRegistry& registry,
                                            std::vector<CoflowId> active,
                                            const GammaFn& gamma_of) const override;
};

/// Largest remaining critical path first; Γ_c ascending (SEBF) inside a
/// criticality class; ties by id.  Requires a gamma function like SebfOrder.
class CriticalPathOrder final : public CoflowScheduler {
 public:
  [[nodiscard]] OrderPolicy policy() const noexcept override {
    return OrderPolicy::CriticalPath;
  }
  [[nodiscard]] std::vector<CoflowId> order(const CoflowRegistry& registry,
                                            std::vector<CoflowId> active,
                                            const GammaFn& gamma_of) const override;
};

/// Factory keyed by the config enum.
[[nodiscard]] std::unique_ptr<CoflowScheduler> make_scheduler(OrderPolicy policy);

}  // namespace hit::coflow
