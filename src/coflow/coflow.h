// Coflow abstraction: the semantic unit of a MapReduce shuffle.
//
// Hit-Scheduler (§5) optimizes per-flow traffic cost, but a reduce wave
// cannot start until its *slowest* flow finishes — the collection of shuffle
// flows between one job's map wave and its reduce wave succeeds or fails
// together.  Chowdhury et al. ("Near Optimal Coflow Scheduling in Networks")
// show that ordering whole coflows (e.g. smallest-effective-bottleneck-first)
// and allocating rates per coflow dramatically improves coflow completion
// time (CCT) over per-flow fairness.  This module provides the Coflow record
// and the CoflowRegistry lifecycle tracker the simulators drive; ordering
// policies live in ordering.h and the MADD rate allocator in
// rate_allocator.h.
//
// Everything here is OFF by default: with CoflowConfig::enabled == false the
// simulators never construct a registry and per-flow max-min fair sharing is
// bit-identical to the pre-coflow code.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/ids.h"

namespace hit::coflow {

/// Inter-coflow ordering discipline (see ordering.h for the semantics).
enum class OrderPolicy : std::uint8_t { Fifo, Sebf, Priority, CriticalPath };

[[nodiscard]] const char* order_policy_name(OrderPolicy policy);
[[nodiscard]] std::optional<OrderPolicy> parse_order_policy(std::string_view name);

/// Coflow-scheduling knobs.  The default (disabled) reproduces per-flow
/// max-min fair sharing bit-for-bit.
struct CoflowConfig {
  bool enabled = false;
  OrderPolicy order = OrderPolicy::Sebf;
};

/// Lifecycle: Pending until the first flow is transferable, Active while any
/// flow still moves bytes, Done when the last flow lands.
enum class CoflowState : std::uint8_t { Pending, Active, Done };

[[nodiscard]] const char* coflow_state_name(CoflowState state);

/// One job wave's shuffle flows as a scheduling unit.
struct Coflow {
  CoflowId id;
  JobId job;
  /// Inherited from the owning job (0 = low, 1 = normal, 2 = high) — the
  /// PriorityOrder key and the controller's shed order.
  std::uint8_t priority = 1;
  /// Optional completion deadline hook (simulated seconds; 0 = none).
  /// Ordering policies may consult it; nothing enforces it.
  double deadline = 0.0;
  /// Remaining-critical-path estimate of the owning workflow stage
  /// (simulated seconds; 0 for standalone jobs).  CriticalPathOrder ranks
  /// larger values first so a critical stage's shuffle outranks SEBF's
  /// shortest-first among equally critical coflows.
  double cp = 0.0;
  std::vector<FlowId> flows;
  double total_gb = 0.0;     ///< Σ flow sizes (aggregate demand)
  double max_flow_gb = 0.0;  ///< largest single flow (bottleneck lower bound)
  CoflowState state = CoflowState::Pending;
  double released = std::numeric_limits<double>::infinity();  ///< first flow transferable
  double finished = 0.0;     ///< last flow landed (valid once Done)
  std::size_t flows_done = 0;

  [[nodiscard]] std::size_t width() const noexcept { return flows.size(); }
  /// Coflow completion time: last byte landed minus first flow transferable.
  [[nodiscard]] double completion_time() const noexcept {
    return finished - released;
  }
};

/// Aggregate CCT statistics over the completed coflows of a run.
struct CoflowStats {
  std::size_t completed = 0;
  double avg_cct = 0.0;
  double p95_cct = 0.0;
};

/// Tracks every coflow of a run and its pending → active → done lifecycle.
/// Event times may arrive out of order (the batch simulator resolves local
/// flows before the fluid loop starts); the registry keeps min/max stamps so
/// the recorded release/finish are order-independent.
class CoflowRegistry {
 public:
  /// Open an empty coflow for `job`.  One job wave = one coflow.  `cp` is
  /// the stage's remaining-critical-path estimate (0 = standalone job).
  CoflowId open(JobId job, std::uint8_t priority, double deadline = 0.0,
                double cp = 0.0);

  /// Attach a flow to an open coflow.  A flow belongs to exactly one coflow;
  /// re-registering throws std::invalid_argument.
  void add_flow(CoflowId coflow, FlowId flow, double size_gb);

  /// Lifecycle: `flow` became transferable at `now` (its map finished).
  void flow_released(FlowId flow, double now);

  /// Lifecycle: `flow` delivered its last byte at `now`.  When it is the
  /// coflow's last outstanding flow the coflow transitions to Done.
  void flow_finished(FlowId flow, double now);

  /// Online-simulator restart: the job lost its reduce host and every flow
  /// will re-release.  The coflow returns to Pending with stamps cleared.
  void reset(CoflowId coflow);

  [[nodiscard]] bool contains(FlowId flow) const {
    return coflow_of_.count(flow) > 0;
  }
  /// Coflow owning `flow`; invalid id when the flow is unregistered.
  [[nodiscard]] CoflowId coflow_of(FlowId flow) const;
  [[nodiscard]] const Coflow& get(CoflowId id) const;
  [[nodiscard]] const std::vector<Coflow>& all() const noexcept { return coflows_; }
  [[nodiscard]] std::size_t size() const noexcept { return coflows_.size(); }

  /// Coflows currently Active, in id order.
  [[nodiscard]] std::vector<CoflowId> active() const;

  /// Average / p95 completion time over Done coflows.
  [[nodiscard]] CoflowStats stats() const;

 private:
  [[nodiscard]] Coflow& mutable_of_flow(FlowId flow);

  std::vector<Coflow> coflows_;  // indexed by CoflowId
  std::unordered_map<FlowId, CoflowId> coflow_of_;
};

}  // namespace hit::coflow
