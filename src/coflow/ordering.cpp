#include "coflow/ordering.h"

#include <algorithm>
#include <stdexcept>

namespace hit::coflow {

std::vector<CoflowId> FifoOrder::order(const CoflowRegistry& registry,
                                       std::vector<CoflowId> active,
                                       const GammaFn& /*gamma_of*/) const {
  std::sort(active.begin(), active.end(), [&](CoflowId a, CoflowId b) {
    const Coflow& ca = registry.get(a);
    const Coflow& cb = registry.get(b);
    if (ca.released != cb.released) return ca.released < cb.released;
    return a < b;
  });
  return active;
}

std::vector<CoflowId> SebfOrder::order(const CoflowRegistry& registry,
                                       std::vector<CoflowId> active,
                                       const GammaFn& gamma_of) const {
  if (!gamma_of) {
    throw std::invalid_argument("SebfOrder: gamma function required");
  }
  // Evaluate Γ once per coflow before sorting — gamma_of may be expensive
  // and comparators must see a consistent value.
  std::vector<std::pair<double, CoflowId>> keyed;
  keyed.reserve(active.size());
  for (CoflowId id : active) keyed.emplace_back(gamma_of(id), id);
  std::sort(keyed.begin(), keyed.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second < b.second;
  });
  std::vector<CoflowId> out;
  out.reserve(keyed.size());
  for (const auto& [gamma, id] : keyed) {
    (void)gamma;
    out.push_back(id);
  }
  (void)registry;
  return out;
}

std::vector<CoflowId> PriorityOrder::order(const CoflowRegistry& registry,
                                           std::vector<CoflowId> active,
                                           const GammaFn& /*gamma_of*/) const {
  std::sort(active.begin(), active.end(), [&](CoflowId a, CoflowId b) {
    const Coflow& ca = registry.get(a);
    const Coflow& cb = registry.get(b);
    if (ca.priority != cb.priority) return ca.priority > cb.priority;
    if (ca.released != cb.released) return ca.released < cb.released;
    return a < b;
  });
  return active;
}

std::vector<CoflowId> CriticalPathOrder::order(const CoflowRegistry& registry,
                                               std::vector<CoflowId> active,
                                               const GammaFn& gamma_of) const {
  if (!gamma_of) {
    throw std::invalid_argument("CriticalPathOrder: gamma function required");
  }
  // Γ evaluated once per coflow, as in SebfOrder: the comparator must see a
  // consistent value and gamma_of may be expensive.
  std::vector<std::pair<double, CoflowId>> keyed;
  keyed.reserve(active.size());
  for (CoflowId id : active) keyed.emplace_back(gamma_of(id), id);
  std::sort(keyed.begin(), keyed.end(), [&](const auto& a, const auto& b) {
    const double cpa = registry.get(a.second).cp;
    const double cpb = registry.get(b.second).cp;
    if (cpa != cpb) return cpa > cpb;
    if (a.first != b.first) return a.first < b.first;
    return a.second < b.second;
  });
  std::vector<CoflowId> out;
  out.reserve(keyed.size());
  for (const auto& [gamma, id] : keyed) {
    (void)gamma;
    out.push_back(id);
  }
  return out;
}

std::unique_ptr<CoflowScheduler> make_scheduler(OrderPolicy policy) {
  switch (policy) {
    case OrderPolicy::Fifo: return std::make_unique<FifoOrder>();
    case OrderPolicy::Sebf: return std::make_unique<SebfOrder>();
    case OrderPolicy::Priority: return std::make_unique<PriorityOrder>();
    case OrderPolicy::CriticalPath: return std::make_unique<CriticalPathOrder>();
  }
  throw std::invalid_argument("make_scheduler: unknown order policy");
}

}  // namespace hit::coflow
