// MADD-style per-coflow rate allocation (Varys: "Efficient Coflow Scheduling
// with Varys", Chowdhury et al., SIGCOMM 2014).
//
// Given coflows in scheduling order, the head-of-line coflow's flows receive
// the Minimum Allocation for Desired Duration: every flow of coflow c gets
//
//     rate_i = remaining_i / Γ_c
//
// where Γ_c = max over crossed resources r of (Σ coflow bytes crossing r /
// residual capacity of r) — so all of c's flows finish together exactly when
// the coflow's bottleneck drains, and no flow hogs bandwidth the coflow
// cannot convert into earlier completion.  Whatever each resource has left
// spills to the next coflow in order (recursive MADD); capacity no coflow's
// Γ can use is backfilled greedily so the allocation stays work-conserving.
//
// Rates are recomputed from scratch at every simulator event, mirroring how
// the existing max-min allocator is driven.
#pragma once

#include <cstddef>
#include <vector>

#include "network/bandwidth.h"
#include "topology/topology.h"

namespace hit::coflow {

/// Γ_c for the demand subset `members` (indices into `demands`): the minimum
/// time those flows need to finish against `ledger`'s residual capacities.
/// Returns +inf when any crossed resource has zero residual, 0 when the
/// subset has no remaining bytes.
[[nodiscard]] double effective_bottleneck(const net::ResidualLedger& ledger,
                                          const std::vector<net::FlowDemand>& demands,
                                          const std::vector<double>& remaining_gb,
                                          const std::vector<std::size_t>& members);

/// MADD rate assignment.  `demands` / `remaining_gb` align index-for-index;
/// `groups` lists each coflow's demand indices in scheduling order (head of
/// line first; every index appears in exactly one group).  Each group is
/// served MADD rates against the residual ledger left by earlier groups,
/// then leftover capacity is backfilled greedily in group order (within a
/// group: smallest remaining first, ties by FlowId) so the allocation is
/// work-conserving.  Per-demand `rate_cap` is honored.  A non-null `degrade`
/// map scales element capacities by their gray factors.  The returned rates
/// align with `demands` and never exceed any link or switch capacity.
[[nodiscard]] std::vector<double> madd_allocate(
    const topo::Topology& topology,
    const std::vector<net::FlowDemand>& demands,
    const std::vector<double>& remaining_gb,
    const std::vector<std::vector<std::size_t>>& groups,
    double bandwidth_scale = 1.0,
    const net::CapacityMap* degrade = nullptr);

}  // namespace hit::coflow
