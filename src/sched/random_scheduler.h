// Uniform random placement — the paper's §5.3.1 starting point ("we assume
// that they are randomly assigned in the beginning") and the ablation floor.
#pragma once

#include "sched/scheduler.h"

namespace hit::sched {

class RandomScheduler final : public Scheduler {
 public:
  /// Routes are drawn uniformly from the `route_choices` shortest paths,
  /// mirroring the random initial policies of §5.1.1.
  explicit RandomScheduler(std::size_t route_choices = 4)
      : route_choices_(route_choices) {}

  [[nodiscard]] std::string_view name() const override { return "Random"; }
  [[nodiscard]] Assignment schedule(const Problem& problem, Rng& rng) override;

 private:
  std::size_t route_choices_;
};

}  // namespace hit::sched
