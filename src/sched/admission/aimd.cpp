#include "sched/admission/aimd.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hit::sched::admission {

AimdController::AimdController(AimdConfig config)
    : config_(config), limit_(config.start_limit) {
  if (!config_.valid()) {
    throw std::invalid_argument("AimdController: invalid config");
  }
  stats_.final_limit = limit_;
  stats_.min_limit_seen = limit_;
  stats_.max_limit_seen = limit_;
}

void AimdController::feed(const AimdSample& sample) {
  ++stats_.epochs;

  const bool over_now = sample.sheds > 0 || sample.deadline_misses > 0 ||
                        sample.max_queue_wait_s > config_.wait_threshold_s;
  if (over_now) {
    ++epochs_with_overload_;
    epochs_wo_overload_ = 0;
  } else {
    ++epochs_wo_overload_;
    epochs_with_overload_ = 0;
  }
  if (!overloaded_ && epochs_with_overload_ >= config_.overload_on) {
    overloaded_ = true;
  } else if (overloaded_ && epochs_wo_overload_ >= config_.overload_off) {
    overloaded_ = false;
  }

  if (overloaded_) {
    ++stats_.overloaded_epochs;
    if (over_now) {
      // Only cut on epochs that are actually bad; during the overload_off
      // cool-down the limit holds steady instead of decaying further.
      limit_ = std::max(config_.min_limit, limit_ * config_.down_factor);
      ++stats_.cuts;
    }
  } else if (!over_now) {
    // Probe upward only when the queue is actually exercising the limit;
    // an idle system should not inflate the limit it will later have to
    // walk back down from.
    if (static_cast<double>(sample.queue_depth) + config_.up_step >= limit_) {
      limit_ = std::min(config_.max_limit, limit_ + config_.up_step);
      ++stats_.raises;
    }
  }

  stats_.final_limit = limit_;
  stats_.min_limit_seen = std::min(stats_.min_limit_seen, limit_);
  stats_.max_limit_seen = std::max(stats_.max_limit_seen, limit_);
}

std::size_t AimdController::queue_limit() const {
  return static_cast<std::size_t>(std::max(1.0, std::floor(limit_)));
}

double AimdController::pressure() const {
  if (!overloaded_) return 0.0;
  const double span = config_.start_limit - config_.min_limit;
  if (span <= 0.0) return 1.0;
  const double depth = (config_.start_limit - limit_) / span;
  return std::clamp(depth, 0.0, 1.0);
}

std::size_t tenant_queue_cap(double limit, double entitlement) {
  const double cap = std::floor(limit * entitlement);
  return static_cast<std::size_t>(std::max(1.0, cap));
}

std::size_t tenant_queue_floor(double limit, double entitlement,
                               double quota_floor) {
  if (quota_floor <= 0.0) return 0;
  const double cap =
      static_cast<double>(tenant_queue_cap(limit, entitlement));
  const double floor = std::ceil(cap * quota_floor);
  return static_cast<std::size_t>(std::max(1.0, floor));
}

}  // namespace hit::sched::admission
