// Multi-tenant accounting for adaptive admission (DESIGN.md §13).
//
// Production clusters serve many tenants from one queue; under overload the
// interesting question is not "how much do we shed" but "whose work do we
// shed".  A TenantRegistry tracks, per tenant, the resources its running
// jobs hold along the three dimensions that matter to a MapReduce cloud —
// map slots, reduce slots, and shuffle bandwidth — and exposes
// dominant-resource-fairness (DRF) shares over them: tenant t's dominant
// share is its most-contended normalized resource, divided by its
// entitlement weight.  The admission limiter and the tenant-aware shed paths
// cut the tenant whose dominant share most exceeds its entitlement first,
// and never below a configurable floor.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hit::sched::admission {

/// Tenants are dense small integers (index into the registry); 0 is the
/// default tenant every job belongs to until a workload opts in.
using TenantId = std::uint32_t;

/// One tenant's identity and DRF entitlement.  Weights are relative: a
/// weight-2 tenant is entitled to twice the dominant share of a weight-1
/// tenant.  They need not sum to anything.
struct TenantSpec {
  std::string name;
  double weight = 1.0;
};

/// A point in the three-dimensional resource space DRF runs over.
struct ResourceVector {
  double map_slots = 0.0;
  double reduce_slots = 0.0;
  double shuffle_bw = 0.0;  ///< aggregate nominal shuffle rate (rate units)

  ResourceVector& operator+=(const ResourceVector& o) {
    map_slots += o.map_slots;
    reduce_slots += o.reduce_slots;
    shuffle_bw += o.shuffle_bw;
    return *this;
  }
  ResourceVector& operator-=(const ResourceVector& o) {
    map_slots -= o.map_slots;
    reduce_slots -= o.reduce_slots;
    shuffle_bw -= o.shuffle_bw;
    return *this;
  }
};

enum class DominantResource : std::uint8_t { MapSlots, ReduceSlots, ShuffleBw };

[[nodiscard]] const char* dominant_resource_name(DominantResource r);

/// One tenant's DRF view: normalized per-resource shares (usage / cluster
/// capacity) and the weight-adjusted dominant share the fairness decisions
/// use.
struct DrfShare {
  double map = 0.0;
  double reduce = 0.0;
  double bandwidth = 0.0;
  /// max(map, reduce, bandwidth) / (weight / mean weight).
  double dominant = 0.0;
  DominantResource resource = DominantResource::MapSlots;
};

/// Per-tenant outcome accounting for one online run (OnlineResult::tenants).
struct TenantStats {
  TenantId tenant = 0;
  std::string name;
  double weight = 1.0;
  std::size_t submitted = 0;   ///< jobs that arrived for this tenant
  std::size_t completed = 0;
  std::size_t shed = 0;
  double sum_wait_s = 0.0;     ///< Σ queueing delay of completed jobs
  double max_wait_s = 0.0;
  double completed_gb = 0.0;   ///< shuffle bytes of completed jobs
  double shed_gb = 0.0;        ///< shuffle bytes never transferred
  double peak_dominant_share = 0.0;  ///< max DRF dominant share held at once
};

/// Tracks what each tenant currently holds and answers DRF queries.
class TenantRegistry {
 public:
  /// `capacity` components must be positive (they normalize the shares).
  TenantRegistry(std::vector<TenantSpec> specs, ResourceVector capacity);

  /// `n` equal-weight tenants named "tenant-0" .. "tenant-n-1".
  [[nodiscard]] static std::vector<TenantSpec> uniform(std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept { return specs_.size(); }
  [[nodiscard]] const TenantSpec& spec(TenantId t) const { return specs_.at(t); }

  /// Weight share of the total: weight_t / Σ weights.
  [[nodiscard]] double entitlement(TenantId t) const;

  void acquire(TenantId t, const ResourceVector& delta);
  void release(TenantId t, const ResourceVector& delta);

  [[nodiscard]] const ResourceVector& held(TenantId t) const {
    return held_.at(t);
  }
  [[nodiscard]] DrfShare share(TenantId t) const;

  /// Dominant share / entitlement — > 1 means the tenant holds more than its
  /// weighted fair portion of its most-contended resource.
  [[nodiscard]] double overuse(TenantId t) const;

 private:
  std::vector<TenantSpec> specs_;
  std::vector<ResourceVector> held_;
  ResourceVector capacity_;
  double weight_sum_ = 0.0;
  double mean_weight_ = 1.0;
};

/// Jain's fairness index over non-negative allocations: (Σx)² / (n·Σx²),
/// in (0, 1]; 1 = perfectly even.  Zero-sum inputs return 1 (nothing served
/// is, vacuously, evenly served).  Callers weight-normalize first when
/// tenants are not equally entitled.
[[nodiscard]] double jain_index(const std::vector<double>& xs);

}  // namespace hit::sched::admission
