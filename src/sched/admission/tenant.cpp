#include "sched/admission/tenant.h"

#include <algorithm>
#include <stdexcept>

namespace hit::sched::admission {

const char* dominant_resource_name(DominantResource r) {
  switch (r) {
    case DominantResource::MapSlots: return "map-slots";
    case DominantResource::ReduceSlots: return "reduce-slots";
    case DominantResource::ShuffleBw: return "shuffle-bw";
  }
  return "?";
}

TenantRegistry::TenantRegistry(std::vector<TenantSpec> specs,
                               ResourceVector capacity)
    : specs_(std::move(specs)), capacity_(capacity) {
  if (specs_.empty()) {
    throw std::invalid_argument("TenantRegistry: need at least one tenant");
  }
  if (capacity_.map_slots <= 0.0 || capacity_.reduce_slots <= 0.0 ||
      capacity_.shuffle_bw <= 0.0) {
    throw std::invalid_argument("TenantRegistry: capacity must be positive");
  }
  for (const TenantSpec& s : specs_) {
    if (s.weight <= 0.0) {
      throw std::invalid_argument("TenantRegistry: weights must be positive");
    }
    weight_sum_ += s.weight;
  }
  mean_weight_ = weight_sum_ / static_cast<double>(specs_.size());
  held_.resize(specs_.size());
}

std::vector<TenantSpec> TenantRegistry::uniform(std::size_t n) {
  std::vector<TenantSpec> specs;
  specs.reserve(std::max<std::size_t>(n, 1));
  for (std::size_t i = 0; i < std::max<std::size_t>(n, 1); ++i) {
    specs.push_back(TenantSpec{"tenant-" + std::to_string(i), 1.0});
  }
  return specs;
}

double TenantRegistry::entitlement(TenantId t) const {
  return specs_.at(t).weight / weight_sum_;
}

void TenantRegistry::acquire(TenantId t, const ResourceVector& delta) {
  held_.at(t) += delta;
}

void TenantRegistry::release(TenantId t, const ResourceVector& delta) {
  ResourceVector& h = held_.at(t);
  h -= delta;
  // Clamp rounding dust so long runs cannot drift negative.
  h.map_slots = std::max(h.map_slots, 0.0);
  h.reduce_slots = std::max(h.reduce_slots, 0.0);
  h.shuffle_bw = std::max(h.shuffle_bw, 0.0);
}

DrfShare TenantRegistry::share(TenantId t) const {
  const ResourceVector& h = held_.at(t);
  DrfShare s;
  s.map = h.map_slots / capacity_.map_slots;
  s.reduce = h.reduce_slots / capacity_.reduce_slots;
  s.bandwidth = h.shuffle_bw / capacity_.shuffle_bw;
  s.resource = DominantResource::MapSlots;
  double raw = s.map;
  if (s.reduce > raw) {
    raw = s.reduce;
    s.resource = DominantResource::ReduceSlots;
  }
  if (s.bandwidth > raw) {
    raw = s.bandwidth;
    s.resource = DominantResource::ShuffleBw;
  }
  s.dominant = raw / (specs_.at(t).weight / mean_weight_);
  return s;
}

double TenantRegistry::overuse(TenantId t) const {
  // share().dominant is raw_share / (w/mean_w) = (raw_share / entitlement) / n,
  // so scaling by the tenant count yields raw dominant share over entitlement:
  // overuse == 1 exactly at the weighted fair portion.
  return share(t).dominant * static_cast<double>(specs_.size());
}

double jain_index(const std::vector<double>& xs) {
  double sum = 0.0;
  double sq = 0.0;
  for (double x : xs) {
    sum += x;
    sq += x * x;
  }
  if (xs.empty() || sq <= 0.0) return 1.0;
  return sum * sum / (static_cast<double>(xs.size()) * sq);
}

}  // namespace hit::sched::admission
