// AIMD congestion control for job admission (DESIGN.md §13).
//
// PR 3's admission policies bound the waiting queue with a *static* cap: too
// low leaves capacity idle, too high lets waits grow until the deadline shed
// bites, and the right value moves with the workload.  This module learns the
// cap instead, with the sensor → controller → limiter split of userver's
// congestion_control (SNIPPETS.md):
//
//   sensor      — the online simulator samples one AimdSample per epoch of
//                 simulated time: head-of-line wait, queue depth, sheds and
//                 deadline misses since the previous epoch.
//   controller  — AimdController::feed folds the sample into an overload
//                 state machine (consecutive-epoch hysteresis) and moves the
//                 limit: additive increase while healthy, multiplicative
//                 decrease while overloaded.
//   limiter     — the simulator enforces the current limit per tenant
//                 (weight-proportional caps with a protected floor) at every
//                 arrival; see OnlineSimulator's AdmissionPolicy::Aimd path.
//
// Everything is epoch-counted simulated time — no wall clocks — so a seeded
// run replays bit-identically.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hit::sched::admission {

struct AimdConfig {
  /// Sensor sampling period in simulated seconds.
  double epoch_s = 30.0;
  /// Queue limit the controller starts from (jobs waiting, all tenants).
  double start_limit = 8.0;
  /// Hard bounds the limit never leaves.
  double min_limit = 1.0;
  double max_limit = 1024.0;
  /// Additive raise per healthy epoch (jobs).
  double up_step = 1.0;
  /// Multiplicative cut per overloaded epoch, in (0, 1).
  double down_factor = 0.5;
  /// Consecutive overloaded / healthy epochs before the overload state flips
  /// (hysteresis so one noisy epoch does not whipsaw the limit).
  std::size_t overload_on = 2;
  std::size_t overload_off = 2;
  /// Head-of-line wait that marks an epoch overloaded even with no sheds.
  double wait_threshold_s = 120.0;
  /// Fraction of a tenant's weight-proportional queue cap that is always
  /// admissible, however hard the controller cuts — the per-tenant isolation
  /// floor ("never below a configurable floor").
  double quota_floor = 0.25;

  [[nodiscard]] bool valid() const {
    return epoch_s > 0.0 && start_limit >= min_limit && min_limit >= 1.0 &&
           max_limit >= start_limit && up_step > 0.0 && down_factor > 0.0 &&
           down_factor < 1.0 && wait_threshold_s > 0.0 && quota_floor >= 0.0 &&
           quota_floor <= 1.0;
  }
};

/// What the sensor saw during one epoch.
struct AimdSample {
  double max_queue_wait_s = 0.0;  ///< longest current wait among waiting jobs
  std::size_t queue_depth = 0;    ///< waiting jobs at epoch end
  std::size_t sheds = 0;          ///< jobs shed during the epoch (any reason)
  std::size_t deadline_misses = 0;  ///< sheds specifically past max_queue_wait
};

/// Controller accounting (OnlineResult::aimd; all zero when admission!=aimd).
struct AimdStats {
  std::size_t epochs = 0;
  std::size_t raises = 0;             ///< additive-increase steps taken
  std::size_t cuts = 0;               ///< multiplicative-decrease steps taken
  std::size_t overloaded_epochs = 0;  ///< epochs spent in the overloaded state
  std::size_t limiter_sheds = 0;      ///< arrivals shed by the AIMD limiter
  double final_limit = 0.0;
  double min_limit_seen = 0.0;
  double max_limit_seen = 0.0;

  [[nodiscard]] bool any() const noexcept { return epochs > 0; }
};

class AimdController {
 public:
  explicit AimdController(AimdConfig config);

  /// Fold one epoch's sensor sample into the limit.
  void feed(const AimdSample& sample);

  /// Current admission limit (fractional internally; the limiter floors it).
  [[nodiscard]] double limit() const noexcept { return limit_; }
  [[nodiscard]] std::size_t queue_limit() const;
  [[nodiscard]] bool overloaded() const noexcept { return overloaded_; }

  /// Degradation hint in [0, 1]: 0 while healthy, approaching 1 as the
  /// controller cuts the limit toward its minimum.  The scheduler ladder
  /// uses it to serve over-quota tenants from cheaper tiers under pressure.
  [[nodiscard]] double pressure() const;

  [[nodiscard]] const AimdConfig& config() const noexcept { return config_; }
  [[nodiscard]] const AimdStats& stats() const noexcept { return stats_; }
  [[nodiscard]] AimdStats& stats() noexcept { return stats_; }

 private:
  AimdConfig config_;
  double limit_;
  bool overloaded_ = false;
  std::size_t epochs_with_overload_ = 0;
  std::size_t epochs_wo_overload_ = 0;
  AimdStats stats_;
};

/// Weight-proportional queue cap for one tenant under global limit `limit`:
/// at least 1 so a lone-tenant queue never wedges shut.
[[nodiscard]] std::size_t tenant_queue_cap(double limit, double entitlement);

/// Protected floor for one tenant: the slice of its cap that stays
/// admissible regardless of displacement pressure.
[[nodiscard]] std::size_t tenant_queue_floor(double limit, double entitlement,
                                             double quota_floor);

}  // namespace hit::sched::admission
