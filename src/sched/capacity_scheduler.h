// Capacity Scheduler baseline — Hadoop YARN's default in the paper's
// evaluation.  Topology-unaware for the *shuffle*: tasks are spread across
// servers to maximize concurrency ("occupy the entire cluster or as much as
// possible", §2.1), i.e. each task goes to the server with the most
// available resources.  Map tasks keep stock Hadoop's HDFS locality: when
// replica information is available, a map prefers the most-available server
// holding its split (YARN's node-locality delay in steady state).  Flows get
// plain shortest-path policies because the stock scheduler never touches
// routing.
#pragma once

#include "sched/scheduler.h"

namespace hit::sched {

class CapacityScheduler final : public Scheduler {
 public:
  /// With `use_ecmp`, flows ride hash-spread equal-cost shortest routes
  /// (commodity fabric behaviour) instead of the single lexicographic
  /// shortest path.  Placement is unchanged either way.
  explicit CapacityScheduler(bool use_ecmp = false) : use_ecmp_(use_ecmp) {}

  [[nodiscard]] std::string_view name() const override {
    return use_ecmp_ ? "Capacity+ECMP" : "Capacity";
  }
  [[nodiscard]] Assignment schedule(const Problem& problem, Rng& rng) override;

 private:
  bool use_ecmp_;
};

}  // namespace hit::sched
