// Probabilistic Network-Aware scheduler — the paper's stronger baseline
// (Shen, Sarker, Yu, Deng: "Probabilistic network-aware task placement for
// MapReduce scheduling", IEEE CLUSTER 2016).
//
// Faithful to the paper's critique of it (§7.3/§7.4): the scheduler knows the
// *static* topology — transmission cost between two servers is the fixed
// switch-hop count of the single shortest route — but assumes that cost never
// changes with load, uses one fixed path per flow, and ignores residual
// bandwidth.  Placement is probabilistic: a task lands on candidate server s
// with probability proportional to 1 / (1 + cost(s)), where cost(s) sums
// size-weighted static distances to the already-placed peers of the task's
// flows.
#pragma once

#include "sched/scheduler.h"

namespace hit::sched {

class PnaScheduler final : public Scheduler {
 public:
  /// `beta` sharpens the placement distribution: weight = (1+cost)^-beta.
  explicit PnaScheduler(double beta = 12.0) : beta_(beta) {}

  [[nodiscard]] std::string_view name() const override {
    return "Probabilistic Network-Aware";
  }
  [[nodiscard]] Assignment schedule(const Problem& problem, Rng& rng) override;

 private:
  double beta_;
};

}  // namespace hit::sched
