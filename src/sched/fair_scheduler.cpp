#include "sched/fair_scheduler.h"

#include <algorithm>
#include <deque>
#include <map>
#include <stdexcept>
#include <vector>

namespace hit::sched {

Assignment FairScheduler::schedule(const Problem& problem, Rng& rng) {
  (void)rng;
  if (!problem.valid()) throw std::invalid_argument("FairScheduler: invalid problem");

  Assignment assignment;
  UsageLedger ledger(problem);

  // Per-job FIFO of pending tasks, in submission order.
  std::map<JobId, std::deque<const TaskRef*>> pending;
  for (const TaskRef& t : problem.tasks) pending[t.job].push_back(&t);

  std::map<JobId, std::size_t> placed;
  for (const auto& [job, queue] : pending) placed[job] = 0;

  auto most_available = [&](auto&& servers, cluster::Resource demand) {
    ServerId best;
    cluster::Resource best_avail;
    for (ServerId id : servers) {
      if (!ledger.can_host(id, demand)) continue;
      const cluster::Resource avail = ledger.available(id);
      const bool better = !best.valid() || avail.vcores > best_avail.vcores ||
                          (avail.vcores == best_avail.vcores &&
                           avail.mem_gb > best_avail.mem_gb);
      if (better) {
        best = id;
        best_avail = avail;
      }
    }
    return best;
  };
  std::vector<ServerId> all_servers;
  for (const cluster::Server& s : problem.cluster->servers()) {
    all_servers.push_back(s.id);
  }

  std::size_t remaining = problem.tasks.size();
  while (remaining > 0) {
    // The job furthest below its fair share places next (ties by job id).
    JobId next;
    std::size_t fewest = SIZE_MAX;
    for (const auto& [job, queue] : pending) {
      if (queue.empty()) continue;
      if (placed[job] < fewest) {
        fewest = placed[job];
        next = job;
      }
    }
    if (!next.valid()) break;  // defensive; remaining would be 0

    const TaskRef* task = pending[next].front();
    pending[next].pop_front();
    ++placed[next];
    --remaining;

    ServerId best;
    if (task->kind == cluster::TaskKind::Map && problem.blocks != nullptr) {
      best = most_available(problem.blocks->replicas(task->id), task->demand);
    }
    if (!best.valid()) best = most_available(all_servers, task->demand);
    if (!best.valid()) {
      throw std::runtime_error("FairScheduler: no server can host task");
    }
    ledger.place(best, task->demand);
    assignment.placement[task->id] = best;
  }

  attach_shortest_policies(problem, assignment);
  return assignment;
}

}  // namespace hit::sched
