#include "sched/capacity_scheduler.h"

#include <stdexcept>

#include "network/routing.h"

namespace hit::sched {

Assignment CapacityScheduler::schedule(const Problem& problem, Rng& rng) {
  (void)rng;  // deterministic baseline
  if (!problem.valid()) throw std::invalid_argument("CapacityScheduler: invalid problem");

  Assignment assignment;
  UsageLedger ledger(problem);

  // Most-available server first (vcores, then memory, then id) — the
  // load-balancing behaviour that maximizes cluster concurrency.
  auto most_available = [&ledger](auto&& servers, cluster::Resource demand) {
    ServerId best;
    cluster::Resource best_avail;
    for (ServerId id : servers) {
      if (!ledger.can_host(id, demand)) continue;
      const cluster::Resource avail = ledger.available(id);
      const bool better = !best.valid() || avail.vcores > best_avail.vcores ||
                          (avail.vcores == best_avail.vcores &&
                           avail.mem_gb > best_avail.mem_gb);
      if (better) {
        best = id;
        best_avail = avail;
      }
    }
    return best;
  };
  std::vector<ServerId> all_servers;
  for (const cluster::Server& s : problem.cluster->servers()) {
    all_servers.push_back(s.id);
  }

  for (const TaskRef& task : problem.tasks) {
    ServerId best;
    // Stock Hadoop map locality: try the split's replica holders first.
    if (task.kind == cluster::TaskKind::Map && problem.blocks != nullptr) {
      best = most_available(problem.blocks->replicas(task.id), task.demand);
    }
    if (!best.valid()) best = most_available(all_servers, task.demand);
    if (!best.valid()) {
      throw std::runtime_error("CapacityScheduler: no server can host task");
    }
    ledger.place(best, task.demand);
    assignment.placement[task.id] = best;
  }

  if (use_ecmp_) {
    for (const net::Flow& f : problem.flows) {
      const ServerId src = assignment.host(problem, f.src_task);
      const ServerId dst = assignment.host(problem, f.dst_task);
      if (!src.valid() || !dst.valid()) continue;
      if (src == dst) {
        net::Policy p;
        p.flow = f.id;
        assignment.policies[f.id] = std::move(p);
        continue;
      }
      assignment.policies[f.id] =
          net::ecmp_policy(*problem.topology, problem.cluster->node_of(src),
                           problem.cluster->node_of(dst), f.id);
    }
  } else {
    attach_shortest_policies(problem, assignment);
  }
  return assignment;
}

}  // namespace hit::sched
