#include "sched/random_scheduler.h"

#include <stdexcept>

#include "network/routing.h"

namespace hit::sched {

Assignment RandomScheduler::schedule(const Problem& problem, Rng& rng) {
  if (!problem.valid()) throw std::invalid_argument("RandomScheduler: invalid problem");

  Assignment assignment;
  UsageLedger ledger(problem);

  for (const TaskRef& task : problem.tasks) {
    const std::vector<ServerId> candidates = ledger.candidates(task.demand);
    if (candidates.empty()) {
      throw std::runtime_error("RandomScheduler: no server can host task");
    }
    const ServerId pick = candidates[rng.uniform_index(candidates.size())];
    ledger.place(pick, task.demand);
    assignment.placement[task.id] = pick;
  }

  for (const net::Flow& f : problem.flows) {
    const ServerId src = assignment.host(problem, f.src_task);
    const ServerId dst = assignment.host(problem, f.dst_task);
    if (!src.valid() || !dst.valid()) continue;
    if (src == dst) {
      net::Policy p;
      p.flow = f.id;
      assignment.policies[f.id] = std::move(p);
      continue;
    }
    assignment.policies[f.id] = net::random_policy(
        *problem.topology, problem.cluster->node_of(src),
        problem.cluster->node_of(dst), f.id, route_choices_, rng);
  }
  return assignment;
}

}  // namespace hit::sched
