// Scheduler interface: the contract every placement strategy implements.
//
// A Problem bundles what the paper's schedulers see at decision time: the
// hierarchical topology, the cluster's servers (with any pre-existing
// allocations), the tasks of the current wave, and the shuffle flows those
// tasks participate in — including flows whose other endpoint was fixed by an
// earlier wave (§5.3.2 subsequent-wave scheduling).
//
// An Assignment is a full answer: a hosting server for every task and a
// traffic policy for every flow whose endpoints are both placed.
#pragma once

#include <string_view>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/container.h"
#include "mapreduce/hdfs.h"
#include "network/flow.h"
#include "network/load.h"
#include "network/policy.h"
#include "topology/topology.h"
#include "util/ids.h"
#include "util/rng.h"

namespace hit::sched {

struct TaskRef {
  TaskId id;
  JobId job;
  cluster::TaskKind kind = cluster::TaskKind::Map;
  cluster::Resource demand = cluster::kDefaultContainerDemand;
  double input_gb = 0.0;  ///< map split size (locality-aware baselines use it)
};

struct Problem {
  const topo::Topology* topology = nullptr;
  const cluster::Cluster* cluster = nullptr;
  std::vector<TaskRef> tasks;  ///< tasks to place in this round
  net::FlowSet flows;          ///< shuffle flows touching those tasks
  /// Tasks already placed (earlier waves, co-tenant jobs); flows may
  /// reference them as a fixed src or dst.
  std::unordered_map<TaskId, ServerId> fixed;
  /// Per-server resources consumed by the fixed tasks / other tenants,
  /// indexed by ServerId.  Empty means all-free.
  std::vector<cluster::Resource> base_usage;
  /// Optional HDFS replica map (delay scheduling, remote-map accounting).
  const mr::BlockPlacement* blocks = nullptr;
  /// Optional ambient switch load from co-tenant flows already in flight
  /// (online scheduling); congestion-aware schedulers start their ledgers
  /// from it instead of an idle network.
  const net::LoadTracker* ambient_load = nullptr;
  /// Quarantined (suspected-gray) switches: still routable, but congestion-
  /// aware schedulers multiply their Dijkstra step cost by `switch_penalty`
  /// so placements and routes drift away from them.  Empty => no penalty.
  std::vector<NodeId> penalized_switches;
  double switch_penalty = 1.0;
  /// Multi-tenant admission hints (all inert at their defaults).  `tenant`
  /// identifies the job being placed; `overload_pressure` in [0, 1] is the
  /// AIMD controller's degradation hint; `over_quota` marks the tenant as
  /// holding more than its DRF entitlement.  HitScheduler shrinks its ladder
  /// work budgets for over-quota tenants while pressure is non-zero, so
  /// under overload the scarce routing effort goes to tenants within quota.
  std::uint32_t tenant = 0;
  double overload_pressure = 0.0;
  bool over_quota = false;

  [[nodiscard]] bool valid() const { return topology != nullptr && cluster != nullptr; }

  /// Where a task lives: checks `fixed`; invalid id when unknown.
  [[nodiscard]] ServerId fixed_host(TaskId task) const {
    const auto it = fixed.find(task);
    return it == fixed.end() ? ServerId{} : it->second;
  }
};

struct Assignment {
  std::unordered_map<TaskId, ServerId> placement;
  std::unordered_map<FlowId, net::Policy> policies;

  /// Hosting server for a task, consulting this assignment then the
  /// problem's fixed placements.  Invalid id when still unplaced.
  [[nodiscard]] ServerId host(const Problem& problem, TaskId task) const {
    const auto it = placement.find(task);
    if (it != placement.end()) return it->second;
    return problem.fixed_host(task);
  }
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Produce a complete Assignment.  Implementations must respect server
  /// capacity (base_usage + placed demands <= capacity per server) and place
  /// every task in `problem.tasks`; throws std::runtime_error when the
  /// problem is infeasible.
  [[nodiscard]] virtual Assignment schedule(const Problem& problem, Rng& rng) = 0;
};

/// Mutable per-server usage ledger shared by scheduler implementations.
class UsageLedger {
 public:
  explicit UsageLedger(const Problem& problem);

  [[nodiscard]] bool can_host(ServerId server, cluster::Resource demand) const;
  void place(ServerId server, cluster::Resource demand);
  void remove(ServerId server, cluster::Resource demand);
  [[nodiscard]] cluster::Resource used(ServerId server) const;
  [[nodiscard]] cluster::Resource available(ServerId server) const;

  /// Servers able to host `demand`, in id order — Eq. (8)'s candidate set.
  [[nodiscard]] std::vector<ServerId> candidates(cluster::Resource demand) const;

 private:
  const cluster::Cluster* cluster_;
  std::vector<cluster::Resource> used_;
};

/// Throws std::logic_error unless `assignment` places every task, respects
/// capacity, and provides a satisfied policy for every fully placed flow.
void validate_assignment(const Problem& problem, const Assignment& assignment);

/// Fill `assignment.policies` with shortest-path policies for every flow
/// whose two endpoints are placed (skips flows with a missing endpoint).
void attach_shortest_policies(const Problem& problem, Assignment& assignment);

/// Switch-hop distance between two servers along the static shortest route —
/// the "static network cost" the PNA baseline assumes.
[[nodiscard]] std::size_t static_hops(const Problem& problem, ServerId a, ServerId b);

/// Lazy all-nodes switch-hop distance columns, one BFS per queried target
/// server, cached.  Lets schedulers evaluate hop costs over many candidate
/// servers in O(1) per lookup instead of one BFS per pair.
class HopMatrix {
 public:
  explicit HopMatrix(const Problem& problem) : problem_(&problem) {}

  /// Switch hops from server `from` to server `to`.
  [[nodiscard]] std::size_t hops(ServerId from, ServerId to);

 private:
  const Problem* problem_;
  std::unordered_map<ServerId, std::vector<std::size_t>> columns_;
};

}  // namespace hit::sched
