// Fair Scheduler baseline — Hadoop's other stock scheduler.
//
// Allocates slots round-robin across *jobs* (max-min fairness over job slot
// shares) instead of by queue capacity: at every step the job with the
// fewest placed tasks places its next task on the most-available server
// (with stock HDFS map locality).  Like Capacity, it is shuffle- and
// topology-unaware — included to show Hit's advantage is not an artifact of
// one particular baseline's placement pattern.
#pragma once

#include "sched/scheduler.h"

namespace hit::sched {

class FairScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override { return "Fair"; }
  [[nodiscard]] Assignment schedule(const Problem& problem, Rng& rng) override;
};

}  // namespace hit::sched
