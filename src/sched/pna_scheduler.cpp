#include "sched/pna_scheduler.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace hit::sched {

Assignment PnaScheduler::schedule(const Problem& problem, Rng& rng) {
  if (!problem.valid()) throw std::invalid_argument("PnaScheduler: invalid problem");

  Assignment assignment;
  UsageLedger ledger(problem);
  HopMatrix hop_matrix(problem);

  // Flows indexed by participating task for quick peer lookup.
  std::unordered_map<TaskId, std::vector<const net::Flow*>> flows_of;
  for (const net::Flow& f : problem.flows) {
    flows_of[f.src_task].push_back(&f);
    flows_of[f.dst_task].push_back(&f);
  }

  // Maps first (their replica locations are known up front), then reduces —
  // so a reduce's placement distribution sees every map peer already placed,
  // matching the information order of Shen et al.'s scheme.
  std::vector<const TaskRef*> order;
  order.reserve(problem.tasks.size());
  for (const TaskRef& t : problem.tasks) {
    if (t.kind == cluster::TaskKind::Map) order.push_back(&t);
  }
  for (const TaskRef& t : problem.tasks) {
    if (t.kind == cluster::TaskKind::Reduce) order.push_back(&t);
  }

  // Hosts of already-placed tasks per job: the *expected* position of a
  // task's unplaced shuffle peers is approximated by the job's placed-task
  // centroid, which is what makes the expected-transmission-cost objective
  // cluster each job's tasks instead of degenerating to random placement.
  std::unordered_map<JobId, std::vector<ServerId>> job_hosts;

  for (const TaskRef* task_ptr : order) {
    const TaskRef& task = *task_ptr;
    const std::vector<ServerId> candidates = ledger.candidates(task.demand);
    if (candidates.empty()) {
      throw std::runtime_error("PnaScheduler: no server can host task");
    }

    // Expected transmission cost per candidate: Σ size * static_hops for
    // placed peers, plus the job-centroid estimate for unplaced ones.  Maps
    // with replica info also count remote-map transfer to the nearest
    // replica.
    const std::vector<ServerId>* anchors = nullptr;
    if (const auto jh = job_hosts.find(task.job);
        jh != job_hosts.end() && !jh->second.empty()) {
      anchors = &jh->second;
    }
    std::vector<double> costs(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const ServerId s = candidates[i];
      double cost = 0.0;
      const auto it = flows_of.find(task.id);
      if (it != flows_of.end()) {
        for (const net::Flow* f : it->second) {
          const TaskId peer = (f->src_task == task.id) ? f->dst_task : f->src_task;
          const ServerId peer_host = assignment.host(problem, peer);
          if (peer_host.valid()) {
            cost += f->size_gb * static_cast<double>(hop_matrix.hops(s, peer_host));
          } else if (anchors != nullptr) {
            double mean_hops = 0.0;
            for (ServerId a : *anchors) {
              mean_hops += static_cast<double>(hop_matrix.hops(s, a));
            }
            mean_hops /= static_cast<double>(anchors->size());
            cost += f->size_gb * mean_hops;
          }
        }
      }
      if (task.kind == cluster::TaskKind::Map && problem.blocks != nullptr) {
        std::size_t nearest = SIZE_MAX;
        for (ServerId r : problem.blocks->replicas(task.id)) {
          nearest = std::min(nearest, hop_matrix.hops(s, r));
        }
        if (nearest != SIZE_MAX) {
          cost += task.input_gb * static_cast<double>(nearest);
        }
      }
      costs[i] = cost;
    }
    // Placement probability decays with cost relative to the cheapest
    // candidate: weight = ((1 + min) / (1 + cost))^beta.
    const double min_cost = *std::min_element(costs.begin(), costs.end());
    std::vector<double> weights(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      weights[i] = std::pow((1.0 + min_cost) / (1.0 + costs[i]), beta_);
    }

    const ServerId pick = candidates[rng.weighted_index(weights)];
    ledger.place(pick, task.demand);
    assignment.placement[task.id] = pick;
    job_hosts[task.job].push_back(pick);
  }

  // Single fixed shortest path per flow — PNA assumes static routing.
  attach_shortest_policies(problem, assignment);
  return assignment;
}

}  // namespace hit::sched
