#include "sched/scheduler.h"

#include <stdexcept>

#include "network/routing.h"

namespace hit::sched {

UsageLedger::UsageLedger(const Problem& problem) : cluster_(problem.cluster) {
  if (!problem.valid()) throw std::invalid_argument("UsageLedger: invalid problem");
  used_.assign(cluster_->size(), cluster::Resource{});
  for (std::size_t i = 0; i < problem.base_usage.size(); ++i) {
    if (i >= used_.size()) throw std::invalid_argument("UsageLedger: base_usage too long");
    used_[i] = problem.base_usage[i];
  }
}

bool UsageLedger::can_host(ServerId server, cluster::Resource demand) const {
  return (used(server) + demand).fits_in(cluster_->server(server).capacity);
}

void UsageLedger::place(ServerId server, cluster::Resource demand) {
  if (!can_host(server, demand)) {
    throw std::logic_error("UsageLedger: placement exceeds server capacity");
  }
  used_[server.index()] += demand;
}

void UsageLedger::remove(ServerId server, cluster::Resource demand) {
  used_[server.index()] -= demand;
  if (!used_[server.index()].non_negative()) {
    throw std::logic_error("UsageLedger: negative usage after removal");
  }
}

cluster::Resource UsageLedger::used(ServerId server) const {
  if (!server.valid() || server.index() >= used_.size()) {
    throw std::out_of_range("UsageLedger: unknown server");
  }
  return used_[server.index()];
}

cluster::Resource UsageLedger::available(ServerId server) const {
  return cluster_->server(server).capacity - used(server);
}

std::vector<ServerId> UsageLedger::candidates(cluster::Resource demand) const {
  std::vector<ServerId> out;
  for (const cluster::Server& s : cluster_->servers()) {
    if (can_host(s.id, demand)) out.push_back(s.id);
  }
  return out;
}

void validate_assignment(const Problem& problem, const Assignment& assignment) {
  // Every task placed, on a real server.
  for (const TaskRef& t : problem.tasks) {
    const auto it = assignment.placement.find(t.id);
    if (it == assignment.placement.end() || !it->second.valid()) {
      throw std::logic_error("validate_assignment: unplaced task");
    }
    (void)problem.cluster->server(it->second);
  }
  // Capacity: base usage plus this round's placements fits everywhere.
  UsageLedger ledger(problem);
  for (const TaskRef& t : problem.tasks) {
    ledger.place(assignment.placement.at(t.id), t.demand);  // throws on overflow
  }
  // Policies satisfied for every fully placed flow.
  for (const net::Flow& f : problem.flows) {
    const ServerId src = assignment.host(problem, f.src_task);
    const ServerId dst = assignment.host(problem, f.dst_task);
    if (!src.valid() || !dst.valid()) continue;
    const auto it = assignment.policies.find(f.id);
    if (it == assignment.policies.end()) {
      throw std::logic_error("validate_assignment: flow without policy");
    }
    if (src == dst) continue;  // co-located endpoints shuffle via local disk
    if (!it->second.satisfied(*problem.topology, problem.cluster->node_of(src),
                              problem.cluster->node_of(dst))) {
      throw std::logic_error("validate_assignment: unsatisfied policy");
    }
  }
}

void attach_shortest_policies(const Problem& problem, Assignment& assignment) {
  for (const net::Flow& f : problem.flows) {
    const ServerId src = assignment.host(problem, f.src_task);
    const ServerId dst = assignment.host(problem, f.dst_task);
    if (!src.valid() || !dst.valid()) continue;
    if (src == dst) {
      // Local shuffle: empty policy placeholder keeps the flow accounted.
      net::Policy p;
      p.flow = f.id;
      assignment.policies[f.id] = std::move(p);
      continue;
    }
    assignment.policies[f.id] =
        net::shortest_policy(*problem.topology, problem.cluster->node_of(src),
                             problem.cluster->node_of(dst), f.id);
  }
}

std::size_t HopMatrix::hops(ServerId from, ServerId to) {
  auto it = columns_.find(to);
  if (it == columns_.end()) {
    it = columns_
             .emplace(to, problem_->topology->switch_hop_distances(
                              problem_->cluster->node_of(to)))
             .first;
  }
  return it->second[problem_->cluster->node_of(from).index()];
}

std::size_t static_hops(const Problem& problem, ServerId a, ServerId b) {
  if (a == b) return 0;
  const topo::Path path = problem.topology->shortest_path(
      problem.cluster->node_of(a), problem.cluster->node_of(b));
  return problem.topology->switch_hops(path);
}

}  // namespace hit::sched
