// Delay-scheduling-style locality baseline (Zaharia et al., EuroSys'10):
// map tasks wait for a slot on a server holding their input replica; we model
// the steady state — a map lands on the least-loaded replica holder with
// room, falling back to rack- then cluster-level placement.  Reduce tasks are
// placed capacity-style.  Shuffle-unaware by design: it optimizes the remote
// map traffic the paper shows is the *minor* traffic component (Figure 1).
#pragma once

#include "sched/scheduler.h"

namespace hit::sched {

class DelayScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override { return "Delay"; }
  [[nodiscard]] Assignment schedule(const Problem& problem, Rng& rng) override;
};

}  // namespace hit::sched
