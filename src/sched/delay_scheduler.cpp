#include "sched/delay_scheduler.h"

#include <limits>
#include <stdexcept>

namespace hit::sched {
namespace {

/// Least-loaded server (by used vcores, then id) among those able to host.
ServerId least_loaded(const UsageLedger& ledger,
                      const std::vector<ServerId>& candidates) {
  ServerId best;
  double best_used = std::numeric_limits<double>::infinity();
  for (ServerId s : candidates) {
    const double used = ledger.used(s).vcores;
    if (used < best_used) {
      best_used = used;
      best = s;
    }
  }
  return best;
}

}  // namespace

Assignment DelayScheduler::schedule(const Problem& problem, Rng& rng) {
  (void)rng;
  if (!problem.valid()) throw std::invalid_argument("DelayScheduler: invalid problem");

  Assignment assignment;
  UsageLedger ledger(problem);
  HopMatrix hop_matrix(problem);

  for (const TaskRef& task : problem.tasks) {
    ServerId pick;
    if (task.kind == cluster::TaskKind::Map && problem.blocks != nullptr) {
      // Node-local first.
      std::vector<ServerId> local;
      for (ServerId r : problem.blocks->replicas(task.id)) {
        if (ledger.can_host(r, task.demand)) local.push_back(r);
      }
      pick = least_loaded(ledger, local);
      if (!pick.valid()) {
        // Rack-local: any server sharing an access switch with a replica.
        std::vector<ServerId> rack;
        for (const cluster::Server& s : problem.cluster->servers()) {
          if (!ledger.can_host(s.id, task.demand)) continue;
          for (ServerId r : problem.blocks->replicas(task.id)) {
            if (hop_matrix.hops(s.id, r) <= 1) {
              rack.push_back(s.id);
              break;
            }
          }
        }
        pick = least_loaded(ledger, rack);
      }
    }
    if (!pick.valid()) {
      pick = least_loaded(ledger, ledger.candidates(task.demand));
    }
    if (!pick.valid()) {
      throw std::runtime_error("DelayScheduler: no server can host task");
    }
    ledger.place(pick, task.demand);
    assignment.placement[task.id] = pick;
  }

  attach_shortest_policies(problem, assignment);
  return assignment;
}

}  // namespace hit::sched
