#include "stats/export.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace hit::stats {
namespace {

std::string cell_to_string(const Cell& cell, bool json) {
  if (const auto* s = std::get_if<std::string>(&cell)) {
    return json ? "\"" + JsonLinesWriter::escape(*s) + "\""
                : CsvWriter::escape(*s);
  }
  if (const auto* d = std::get_if<double>(&cell)) {
    if (!std::isfinite(*d)) return json ? "null" : "";
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", *d);
    return buf;
  }
  return std::to_string(std::get<std::int64_t>(cell));
}

}  // namespace

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> columns)
    : out_(&out), width_(columns.size()) {
  if (columns.empty()) throw std::invalid_argument("CsvWriter: no columns");
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) *out_ << ',';
    *out_ << escape(columns[i]);
  }
  *out_ << '\n';
}

void CsvWriter::row(const std::vector<Cell>& cells) {
  if (cells.size() != width_) {
    throw std::invalid_argument("CsvWriter: row width mismatch");
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) *out_ << ',';
    *out_ << cell_to_string(cells[i], /*json=*/false);
  }
  *out_ << '\n';
  ++rows_;
}

std::string CsvWriter::escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::vector<std::string> parse_csv_row(std::string_view line) {
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"' && field.empty()) {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else {
      field += c;
    }
  }
  if (quoted) throw std::invalid_argument("parse_csv_row: unterminated quote");
  fields.push_back(std::move(field));
  return fields;
}

void JsonLinesWriter::record(
    const std::vector<std::pair<std::string, Cell>>& fields) {
  *out_ << '{';
  bool first = true;
  for (const auto& [key, value] : fields) {
    if (!first) *out_ << ',';
    first = false;
    *out_ << '"' << escape(key) << "\":" << cell_to_string(value, /*json=*/true);
  }
  *out_ << "}\n";
  ++records_;
}

std::string JsonLinesWriter::escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace hit::stats
