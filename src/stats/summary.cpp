#include "stats/summary.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hit::stats {

void RunningSummary::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningSummary::variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningSummary::stddev() const noexcept { return std::sqrt(variance()); }

void RunningSummary::merge(const RunningSummary& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) throw std::invalid_argument("percentile: empty sample set");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p out of [0,100]");
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples.front();
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double mean_of(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples) sum += s;
  return sum / static_cast<double>(samples.size());
}

Cdf::Cdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Cdf::at(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double Cdf::quantile(double q) const {
  if (sorted_.empty()) throw std::logic_error("Cdf::quantile on empty CDF");
  if (q <= 0.0) return sorted_.front();
  if (q >= 1.0) return sorted_.back();
  const auto idx = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted_.size()))) - 1;
  return sorted_[std::min(idx, sorted_.size() - 1)];
}

std::vector<std::pair<double, double>> Cdf::series(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (sorted_.empty() || points == 0) return out;
  out.reserve(points);
  for (std::size_t i = 1; i <= points; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(points);
    out.emplace_back(quantile(q), q);
  }
  return out;
}

}  // namespace hit::stats
