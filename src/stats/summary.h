// Descriptive statistics over experiment samples: running moments,
// percentiles, and empirical CDFs.  These back every number the benchmark
// harnesses print (means, medians, CDF series for Figure 6, etc.).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace hit::stats {

/// Single-pass running mean/variance (Welford) plus min/max.
class RunningSummary {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(count_); }

  /// Merge another summary into this one (parallel reduction).
  void merge(const RunningSummary& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Linear-interpolated percentile of a sample set, p in [0, 100].
/// Copies and sorts; intended for end-of-experiment reporting.
[[nodiscard]] double percentile(std::vector<double> samples, double p);

/// Arithmetic mean of a sample vector (0 for empty).
[[nodiscard]] double mean_of(const std::vector<double>& samples);

/// Empirical CDF evaluated at fixed probability steps; the (x, F(x)) series
/// is what Figure 6's CDF plots report.
class Cdf {
 public:
  explicit Cdf(std::vector<double> samples);

  /// F(x) = fraction of samples <= x.
  [[nodiscard]] double at(double x) const;

  /// Inverse CDF: smallest sample s with F(s) >= q, q in (0, 1].
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }
  [[nodiscard]] const std::vector<double>& sorted() const noexcept { return sorted_; }

  /// Sample the curve at `points` evenly spaced quantiles, returning
  /// (value, cumulative_probability) pairs — one plottable series.
  [[nodiscard]] std::vector<std::pair<double, double>> series(std::size_t points) const;

 private:
  std::vector<double> sorted_;
};

}  // namespace hit::stats
