#include "stats/plot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace hit::stats {

AsciiChart::AsciiChart(std::size_t width, std::size_t height)
    : width_(width), height_(height) {
  if (width_ < 8 || height_ < 4) {
    throw std::invalid_argument("AsciiChart: grid too small");
  }
}

void AsciiChart::add_series(std::string label,
                            std::vector<std::pair<double, double>> points,
                            char marker) {
  if (points.empty()) throw std::invalid_argument("AsciiChart: empty series");
  series_.push_back(Series{std::move(label), std::move(points), marker});
}

std::string AsciiChart::render() const {
  if (series_.empty()) return "(empty chart)\n";

  double x_min = std::numeric_limits<double>::infinity();
  double x_max = -x_min;
  double y_min = std::numeric_limits<double>::infinity();
  double y_max = -y_min;
  for (const Series& s : series_) {
    for (const auto& [x, y] : s.points) {
      x_min = std::min(x_min, x);
      x_max = std::max(x_max, x);
      y_min = std::min(y_min, y);
      y_max = std::max(y_max, y);
    }
  }
  if (x_max == x_min) x_max = x_min + 1.0;
  if (y_max == y_min) y_max = y_min + 1.0;

  std::vector<std::string> grid(height_, std::string(width_, ' '));
  auto col_of = [&](double x) {
    const double f = (x - x_min) / (x_max - x_min);
    return std::min(width_ - 1,
                    static_cast<std::size_t>(f * static_cast<double>(width_ - 1) + 0.5));
  };
  auto row_of = [&](double y) {
    const double f = (y - y_min) / (y_max - y_min);
    const auto from_bottom =
        static_cast<std::size_t>(f * static_cast<double>(height_ - 1) + 0.5);
    return height_ - 1 - std::min(from_bottom, height_ - 1);
  };

  for (const Series& s : series_) {
    // Connect consecutive points with simple interpolation along x.
    for (std::size_t i = 0; i + 1 < s.points.size(); ++i) {
      const auto [x0, y0] = s.points[i];
      const auto [x1, y1] = s.points[i + 1];
      const std::size_t c0 = col_of(x0);
      const std::size_t c1 = col_of(x1);
      for (std::size_t c = std::min(c0, c1); c <= std::max(c0, c1); ++c) {
        const double t = (c1 == c0) ? 0.0
                                    : (static_cast<double>(c) - static_cast<double>(c0)) /
                                          (static_cast<double>(c1) - static_cast<double>(c0));
        const double y = y0 + t * (y1 - y0);
        grid[row_of(y)][c] = s.marker;
      }
    }
    if (s.points.size() == 1) {
      grid[row_of(s.points[0].second)][col_of(s.points[0].first)] = s.marker;
    }
  }

  char buf[64];
  std::string out;
  std::snprintf(buf, sizeof buf, "%10.3g +", y_max);
  out += buf;
  out += std::string(width_, '-');
  out += "+\n";
  for (std::size_t r = 0; r < height_; ++r) {
    out += "           |";
    out += grid[r];
    out += "|\n";
  }
  std::snprintf(buf, sizeof buf, "%10.3g +", y_min);
  out += buf;
  out += std::string(width_, '-');
  out += "+\n";
  std::snprintf(buf, sizeof buf, "%12.4g", x_min);
  out += buf;
  out += std::string(width_ > 20 ? width_ - 10 : 2, ' ');
  std::snprintf(buf, sizeof buf, "%.4g\n", x_max);
  out += buf;
  for (const Series& s : series_) {
    out += "  ";
    out += s.marker;
    out += " = " + s.label + "\n";
  }
  return out;
}

}  // namespace hit::stats
