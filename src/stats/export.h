// Machine-readable experiment output: CSV and JSON-lines writers.
//
// The bench harnesses print human tables; these helpers emit the same data
// for plotting pipelines (gnuplot/pandas).  Escaping follows RFC 4180 for
// CSV; JSON output is restricted to the flat string/number records the
// result structs need.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace hit::stats {

/// One heterogeneous record cell.
using Cell = std::variant<std::string, double, std::int64_t>;

class CsvWriter {
 public:
  /// Writes the header immediately.
  CsvWriter(std::ostream& out, std::vector<std::string> columns);

  /// Append one row; must match the header width.
  void row(const std::vector<Cell>& cells);

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

  /// RFC 4180 field escaping (quotes fields containing , " or newline).
  [[nodiscard]] static std::string escape(std::string_view field);

 private:
  std::ostream* out_;
  std::size_t width_;
  std::size_t rows_ = 0;
};

/// Inverse of CsvWriter's row serialization: split one RFC 4180 line into
/// unescaped fields (quoted fields may contain commas and doubled quotes).
/// Throws std::invalid_argument on an unterminated quote.  The line must not
/// include the trailing newline.
[[nodiscard]] std::vector<std::string> parse_csv_row(std::string_view line);

class JsonLinesWriter {
 public:
  explicit JsonLinesWriter(std::ostream& out) : out_(&out) {}

  /// Emit one flat JSON object per line: {"k": v, ...}.
  void record(const std::vector<std::pair<std::string, Cell>>& fields);

  [[nodiscard]] std::size_t records_written() const noexcept { return records_; }

  /// Minimal JSON string escaping (quotes, backslash, control chars).
  [[nodiscard]] static std::string escape(std::string_view text);

 private:
  std::ostream* out_;
  std::size_t records_ = 0;
};

}  // namespace hit::stats
