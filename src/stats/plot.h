// Terminal line charts — render the CDF curves the paper plots (Figure 6)
// directly in bench output, so the *shape* comparison does not require an
// external plotting step.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace hit::stats {

class AsciiChart {
 public:
  /// Plot area size in characters (excluding axes/labels).
  AsciiChart(std::size_t width = 60, std::size_t height = 16);

  /// Add one series of (x, y) points; `marker` draws it on the grid.
  void add_series(std::string label, std::vector<std::pair<double, double>> points,
                  char marker);

  /// Render grid, y-axis bounds, x-axis bounds and a legend.
  [[nodiscard]] std::string render() const;

 private:
  struct Series {
    std::string label;
    std::vector<std::pair<double, double>> points;
    char marker;
  };

  std::size_t width_;
  std::size_t height_;
  std::vector<Series> series_;
};

}  // namespace hit::stats
