#include "stats/histogram.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace hit::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  if (!(lo < hi)) throw std::invalid_argument("Histogram: lo must be < hi");
  if (bins == 0) throw std::invalid_argument("Histogram: need at least one bin");
  counts_.assign(bins, 0);
}

void Histogram::add(double x) {
  const double span = hi_ - lo_;
  auto bin = static_cast<std::ptrdiff_t>((x - lo_) / span * static_cast<double>(counts_.size()));
  bin = std::clamp<std::ptrdiff_t>(bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin + 1); }

double Histogram::fraction(std::size_t bin) const {
  return total_ == 0 ? 0.0 : static_cast<double>(counts_.at(bin)) / static_cast<double>(total_);
}

std::string Histogram::ascii(std::size_t width) const {
  std::string out;
  const std::size_t peak = *std::max_element(counts_.begin(), counts_.end());
  char line[160];
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::size_t bar =
        peak == 0 ? 0 : counts_[b] * width / peak;
    std::snprintf(line, sizeof line, "[%8.2f, %8.2f) %6zu |", bin_lo(b), bin_hi(b), counts_[b]);
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace hit::stats
