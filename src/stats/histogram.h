// Fixed-bin histogram for distribution reporting (route lengths, delays).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hit::stats {

class Histogram {
 public:
  /// Uniform bins over [lo, hi); values outside clamp to the edge bins.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  [[nodiscard]] double bin_hi(std::size_t bin) const;

  /// Fraction of samples in the bin (0 when empty).
  [[nodiscard]] double fraction(std::size_t bin) const;

  /// Render an ASCII bar chart, one line per bin — used by example programs.
  [[nodiscard]] std::string ascii(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace hit::stats
