// Aligned text tables — the output format of every benchmark harness.
// Keeps figure/table reproduction output readable and diffable.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hit::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Add a row; must match the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with fixed precision.
  static std::string num(double v, int precision = 2);
  static std::string pct(double fraction, int precision = 1);  ///< 0.28 -> "28.0%"

  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hit::stats
