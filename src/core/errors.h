// Typed runtime errors for the centralized controller.
//
// Callers operating the network at runtime (drain drills, fault handling,
// flow churn) need to distinguish "no alive route exists" from "you passed a
// bad id" — catching std::exception and string-matching is not an API.  Each
// type derives from the std exception the pre-typed code threw, so existing
// catch sites keep working.
#pragma once

#include <stdexcept>

namespace hit::core {

/// No alive, capacity-feasible route can carry the flow: an install targeted
/// a failed switch, or every reroute alternative is down or saturated.
struct PathUnavailable : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// The strongest form of PathUnavailable: the fault set *disconnected* the
/// endpoints, so no amount of rerouting, rate backoff, or waiting on
/// capacity can carry the flow — only a repair can.  Controllers catch this
/// to park the flow immediately (and count the park as a partition) instead
/// of burning reroute attempts; placement catches it to re-place onto
/// reachable servers.
struct EndpointsPartitioned : PathUnavailable {
  using PathUnavailable::PathUnavailable;
};

/// The operation referenced a flow id the controller never installed (or
/// already removed).
struct UnknownFlow : std::out_of_range {
  using std::out_of_range::out_of_range;
};

/// A switch-targeted operation (drain, fail, recover) was applied to a node
/// that is not a switch.
struct NotASwitch : std::invalid_argument {
  using std::invalid_argument::invalid_argument;
};

/// The system is overloaded beyond its configured tolerance: the online
/// queue-wait limit was exceeded on the strict admission path, or an operator
/// asked for more than the cluster can admit.  Distinct from programming
/// errors — callers catch this to retry with shedding enabled, to report
/// partial results, or to raise capacity.
struct OverloadError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// An optimization stage ran out of its work budget (node expansions,
/// proposal rounds) before converging.  The degradation ladder catches this
/// to serve a cheaper placement tier instead of stalling the scheduler.
struct BudgetExhausted : std::runtime_error {
  using std::runtime_error::runtime_error;
};

}  // namespace hit::core
