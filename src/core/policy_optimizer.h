// Policy Optimization — Algorithm 1 of the paper.
//
// For each shuffle flow, find the optimal routing path through the layered
// candidate graph of Figure 5: the flow may originate on any server able to
// host its map task, traverse only switches with residual capacity >= the
// flow's rate (the Eq. 4 candidate filter), and terminate on any server able
// to host its reduce task.  Path cost is the congestion-aware switch cost of
// core::CostModel, so the returned route maximizes Eq. (5)'s utility over
// all single- and multi-switch reschedulings simultaneously (the
// separability of Eq. (6) makes per-switch local optimization equivalent to
// the global min-cost path).
//
// Alg. 1 lines 11-13: every optimal route grades its endpoint servers in the
// M x N preference matrix; the grade increment is the flow's traffic metric
// so heavy flows dominate the ranking ("grades are based on the utility
// function").
#pragma once

#include <optional>
#include <span>

#include "core/budget.h"
#include "core/cost_model.h"
#include "core/preference_matrix.h"
#include "network/load.h"
#include "network/policy.h"
#include "sched/scheduler.h"
#include "topology/topology.h"
#include "util/ids.h"

namespace hit::core {

class PolicyOptimizer {
 public:
  explicit PolicyOptimizer(const topo::Topology& topology, CostConfig config = {});

  struct Route {
    NodeId src;          ///< chosen source server node
    NodeId dst;          ///< chosen destination server node
    net::Policy policy;  ///< switch list of the optimal path (empty if src==dst)
    double cost = 0.0;
  };

  /// Min-cost capacity-feasible route from any node of `src_candidates` to
  /// any node of `dst_candidates`.  Switches whose residual capacity (under
  /// `load`) is below `rate` are unusable.  Deterministic.  Returns nullopt
  /// when no feasible route exists (e.g. all paths saturated).
  /// With `allow_local` a server present in both candidate sets is returned
  /// as a zero-cost local placement; callers that must validate co-location
  /// capacity themselves pass false.
  /// `banned` nodes are unusable regardless of capacity (e.g. draining
  /// switches during maintenance).
  /// `budget` (optional) is charged one unit per Dijkstra node expansion;
  /// once exhausted the search aborts and returns nullopt — callers on the
  /// degradation ladder check `budget->exhausted()` to tell "saturated"
  /// apart from "out of budget".
  [[nodiscard]] std::optional<Route> optimal_route(
      std::span<const NodeId> src_candidates, std::span<const NodeId> dst_candidates,
      FlowId flow, double rate, double metric, const net::LoadTracker& load,
      bool allow_local = true, std::span<const NodeId> banned = {},
      WorkBudget* budget = nullptr) const;

  /// Pure-connectivity probe: true when some path joins `src` and `dst`
  /// through alive (non-banned) elements, ignoring capacity entirely.  This
  /// is how callers split optimal_route's nullopt into its two very
  /// different causes — "saturated, retry with a lower rate" (reachable)
  /// versus "partitioned, park until repair" (not reachable, typed as
  /// EndpointsPartitioned by the controller).  Deterministic BFS.
  [[nodiscard]] bool reachable(NodeId src, NodeId dst,
                               std::span<const NodeId> banned = {}) const;

  /// Algorithm 1: route every flow of the problem (largest traffic first,
  /// charging chosen routes to a local load ledger so later flows see the
  /// congestion) and accumulate endpoint grades into the preference matrix.
  /// With a `budget`, routing stops as soon as it exhausts and the matrix
  /// holds the grades accumulated so far (a usable partial ranking).
  [[nodiscard]] PreferenceMatrix build_preferences(
      const sched::Problem& problem, WorkBudget* budget = nullptr) const;

  /// Local improvement via Eq. (4)/(5): repeatedly apply the best
  /// positive-utility single-switch substitution until none remains.  The
  /// policy's own load must NOT be charged to `load` while improving.
  /// Returns the total utility gained.  With a `budget`, one unit is charged
  /// per candidate evaluation and improvement stops when it exhausts.
  double improve_policy(net::Policy& policy, NodeId src, NodeId dst, double rate,
                        double metric, const net::LoadTracker& load,
                        WorkBudget* budget = nullptr) const;

  /// Quarantine support: the listed switches stay routable but every Dijkstra
  /// step entering one costs `factor` x more, and improve_policy never
  /// substitutes onto one — a soft avoidance, unlike `banned` which excludes.
  /// `factor` must be >= 1; an empty list or factor == 1 disables the
  /// penalty.  Replaces any previous penalty set.
  void set_penalized(std::vector<NodeId> switches, double factor);
  void clear_penalized();
  [[nodiscard]] bool is_penalized(NodeId n) const;
  [[nodiscard]] const std::vector<NodeId>& penalized() const noexcept {
    return penalized_;
  }

  [[nodiscard]] const CostConfig& cost_config() const noexcept { return config_; }

 private:
  const topo::Topology* topology_;
  CostConfig config_;
  std::vector<NodeId> penalized_;  // sorted; empty => no penalty
  double penalty_factor_ = 1.0;
};

}  // namespace hit::core
