// Local-search refinement over a seed assignment — a quality reference
// between the stable-matching heuristic and the brute-force oracle.
//
// The TAA objective is NP-Hard (§4), so on instances beyond the oracle's
// reach the best certified reference is hill climbing over placement moves:
//   * relocate one task to another capacity-feasible server,
//   * swap the servers of two tasks,
// accepting a move when the re-routed total cost strictly drops.  Every
// evaluation routes all flows optimally (largest first) under switch
// residual capacity, so the search optimizes the same joint objective as
// Hit-Scheduler itself.
//
// Also available as a Scheduler (seeded by Hit) for ablation benches: the
// gap between Hit and Hit+local-search measures how much the O(M x N)
// matching leaves on the table.
#pragma once

#include <optional>

#include "core/cost_model.h"
#include "core/hit_scheduler.h"
#include "sched/scheduler.h"

namespace hit::core {

struct LocalSearchConfig {
  CostConfig cost;
  std::size_t max_passes = 8;  ///< full move sweeps before giving up
  bool enable_swaps = true;
  /// Hard budget on candidate evaluations (each one re-routes every flow);
  /// bounds worst-case latency on large problems.
  std::size_t max_evaluations = 5000;
};

class LocalSearchSolver {
 public:
  explicit LocalSearchSolver(LocalSearchConfig config = {}) : config_(config) {}

  struct Result {
    sched::Assignment assignment;
    double cost = 0.0;
    std::size_t moves = 0;  ///< accepted relocations + swaps
  };

  /// Improve `seed` (which must be a complete, feasible placement for the
  /// problem) until a full sweep finds no improving move.
  [[nodiscard]] Result refine(const sched::Problem& problem,
                              const sched::Assignment& seed) const;

 private:
  /// Route all flows and return total cost; nullopt when some flow cannot
  /// be routed feasibly (treated as an invalid move).
  [[nodiscard]] std::optional<double> evaluate(const sched::Problem& problem,
                                               sched::Assignment& assignment) const;

  LocalSearchConfig config_;
};

/// Scheduler adapter: Hit-Scheduler's answer refined by local search.
class HitLocalSearchScheduler final : public sched::Scheduler {
 public:
  explicit HitLocalSearchScheduler(HitConfig hit = {}, LocalSearchConfig search = {})
      : hit_(hit), search_(search) {}

  [[nodiscard]] std::string_view name() const override { return "Hit+LocalSearch"; }
  [[nodiscard]] sched::Assignment schedule(const sched::Problem& problem,
                                           Rng& rng) override;

 private:
  HitScheduler hit_;
  LocalSearchSolver search_;
};

}  // namespace hit::core
