// Multiple Knapsack Problem (MKP) — the §4 NP-hardness machinery, executable.
//
// The paper proves TAA NP-Hard by reducing MKP to a special TAA case: two
// servers' worth of containers host n map/reduce pairs whose flows each pick
// one intermediate switch; flows are items, switches are knapsacks, profit is
// the negative shuffle cost.  This module implements
//   * an exact branch-and-bound MKP solver (oracle-sized instances),
//   * a greedy approximation,
//   * the reduction itself: build the special TAA instance from an MKP
//     instance and map solutions back —
// so the equivalence the proof sketches is checked by tests instead of
// trusted on paper.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/cluster.h"
#include "sched/scheduler.h"
#include "topology/topology.h"

namespace hit::core {

struct MkpInstance {
  std::vector<double> profit;    ///< p_j per item
  std::vector<double> weight;    ///< w_j per item
  std::vector<double> capacity;  ///< c_i per knapsack

  [[nodiscard]] std::size_t items() const { return profit.size(); }
  [[nodiscard]] std::size_t knapsacks() const { return capacity.size(); }
};

struct MkpSolution {
  /// assignment[j] = knapsack of item j, or SIZE_MAX when left out.
  std::vector<std::size_t> assignment;
  double total_profit = 0.0;
};

/// Exact branch-and-bound.  Throws std::invalid_argument on malformed
/// instances or when knapsacks^items exceeds `max_states`.
[[nodiscard]] MkpSolution solve_mkp_exact(const MkpInstance& instance,
                                          std::size_t max_states = (1u << 22));

/// Greedy by profit density (profit/weight), first knapsack that fits.
[[nodiscard]] MkpSolution solve_mkp_greedy(const MkpInstance& instance);

/// Feasibility check: every assigned item fits, no knapsack over capacity.
[[nodiscard]] bool mkp_feasible(const MkpInstance& instance,
                                const MkpSolution& solution);

// ---------------------------------------------------------------------------
// The §4 reduction: MKP -> special-case TAA.
// ---------------------------------------------------------------------------

/// The constructed TAA instance.  Topology: two servers behind dedicated
/// access switches, connected through `knapsacks` parallel aggregation
/// switches; switch i's capacity is the knapsack capacity.  Maps live on
/// s1, reduces on s2 (fixed), and flow j (weight w_j as its rate) must pick
/// one aggregation switch — an item choosing its knapsack.
struct MkpReduction {
  topo::Topology topology;
  std::unique_ptr<cluster::Cluster> cluster;
  sched::Problem problem;
  /// aggregation switch node per knapsack index.
  std::vector<NodeId> knapsack_switches;

  MkpReduction() : topology(topo::Family::Custom) {}
  MkpReduction(const MkpReduction&) = delete;
};

/// Build the reduction instance.  Item profits must equal -cost of routing
/// the flow (uniform in this special case), so maximizing profit equals
/// minimizing shuffle cost; the builder normalizes accordingly.
[[nodiscard]] std::unique_ptr<MkpReduction> reduce_mkp_to_taa(
    const MkpInstance& instance);

/// Interpret a TAA policy assignment of the reduction instance as an MKP
/// solution (flow j's aggregation switch = knapsack of item j).
[[nodiscard]] MkpSolution taa_solution_to_mkp(const MkpReduction& reduction,
                                              const MkpInstance& instance,
                                              const sched::Assignment& assignment);

}  // namespace hit::core
