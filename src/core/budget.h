// Work budgets for the degradation ladder (DESIGN.md §10).
//
// Joint optimization must never be allowed to take "as long as it takes"
// under overload: each schedule() call hands the expensive stages a shared
// WorkBudget, they charge their dominant unit of work against it (Dijkstra
// node expansions, Gale-Shapley proposals), and whoever notices exhaustion
// stops early so the ladder can serve a cheaper tier.  A default-constructed
// budget is unlimited, which keeps every existing call site bit-identical.
#pragma once

#include <cstddef>

namespace hit::core {

struct WorkBudget {
  std::size_t limit = 0;  ///< total work units allowed; 0 = unlimited
  std::size_t used = 0;   ///< work units charged so far

  constexpr WorkBudget() = default;
  constexpr explicit WorkBudget(std::size_t limit) : limit(limit) {}

  /// Charge `n` units.  Returns false once the budget is exhausted (the
  /// charge still lands, so `used` records the true demand).
  constexpr bool charge(std::size_t n = 1) {
    used += n;
    return limit == 0 || used <= limit;
  }

  [[nodiscard]] constexpr bool exhausted() const {
    return limit != 0 && used > limit;
  }

  constexpr void reset() { used = 0; }
};

}  // namespace hit::core
