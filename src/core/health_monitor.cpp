#include "core/health_monitor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hit::core {

HealthMonitor::HealthMonitor(const topo::Topology& topology, HealthConfig config)
    : topology_(&topology), config_(config) {
  if (config_.ewma_alpha <= 0.0 || config_.ewma_alpha > 1.0) {
    throw std::invalid_argument("HealthMonitor: ewma_alpha must be in (0, 1]");
  }
  if (config_.suspect_ratio <= 0.0 || config_.suspect_ratio >= 1.0) {
    throw std::invalid_argument("HealthMonitor: suspect_ratio must be in (0, 1)");
  }
  if (config_.z_threshold < 0.0) {
    throw std::invalid_argument("HealthMonitor: z_threshold must be >= 0");
  }
}

void HealthMonitor::begin_sample() {
  round_.clear();
  in_round_ = true;
}

void HealthMonitor::note_path(const topo::Path& path, double ratio) {
  if (!in_round_) {
    throw std::logic_error("HealthMonitor: note_path outside begin/end_sample");
  }
  // Max-min fair sharing can push a flow *above* its nominal rate when the
  // degraded element throttles a competitor, so clamp before folding.
  ratio = std::clamp(ratio, 0.0, 1.0);
  const auto fold = [&](Key key) {
    const auto [it, inserted] = round_.emplace(key, ratio);
    if (!inserted) it->second = std::max(it->second, ratio);
  };
  for (std::size_t j = 0; j + 1 < path.size(); ++j) {
    fold(net::CapacityMap::link_key(path[j], path[j + 1]));
  }
  for (NodeId n : path) {
    if (topology_->is_switch(n)) fold(net::CapacityMap::switch_key(n));
  }
}

std::vector<HealthMonitor::Key> HealthMonitor::end_sample() {
  if (!in_round_) {
    throw std::logic_error("HealthMonitor: end_sample without begin_sample");
  }
  in_round_ = false;

  for (const auto& [key, ratio] : round_) {
    Track& t = tracks_[key];
    t.ewma = t.samples == 0
                 ? ratio
                 : config_.ewma_alpha * ratio + (1.0 - config_.ewma_alpha) * t.ewma;
    ++t.samples;
  }
  round_.clear();

  // Optional population z-test over every tracked element's score.
  double mean = 0.0;
  double stddev = 0.0;
  if (config_.z_threshold > 0.0 && !tracks_.empty()) {
    for (const auto& [key, t] : tracks_) mean += t.ewma;
    mean /= static_cast<double>(tracks_.size());
    double var = 0.0;
    for (const auto& [key, t] : tracks_) {
      var += (t.ewma - mean) * (t.ewma - mean);
    }
    stddev = std::sqrt(var / static_cast<double>(tracks_.size()));
  }

  std::vector<Key> newly;
  for (auto& [key, t] : tracks_) {
    if (t.suspect || t.samples < config_.min_samples) continue;
    if (t.ewma >= config_.suspect_ratio) continue;
    if (config_.z_threshold > 0.0 &&
        t.ewma >= mean - config_.z_threshold * stddev) {
      continue;
    }
    t.suspect = true;
    newly.push_back(key);
  }
  return newly;  // std::map iteration => already sorted
}

double HealthMonitor::score(Key key) const {
  const auto it = tracks_.find(key);
  return it == tracks_.end() ? 1.0 : it->second.ewma;
}

bool HealthMonitor::is_suspect(Key key) const {
  const auto it = tracks_.find(key);
  return it != tracks_.end() && it->second.suspect;
}

std::vector<HealthMonitor::Key> HealthMonitor::suspects() const {
  std::vector<Key> out;
  for (const auto& [key, t] : tracks_) {
    if (t.suspect) out.push_back(key);
  }
  return out;
}

void HealthMonitor::reset(Key key) { tracks_.erase(key); }

}  // namespace hit::core
