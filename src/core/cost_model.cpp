#include "core/cost_model.h"

#include <algorithm>
#include <stdexcept>

namespace hit::core {

CostModel::CostModel(const topo::Topology& topology, CostConfig config,
                     const net::LoadTracker* load)
    : topology_(&topology), config_(config), load_(load) {
  if (config_.unit_cost <= 0.0) {
    throw std::invalid_argument("CostModel: unit_cost must be positive");
  }
  if (config_.congestion_weight < 0.0) {
    throw std::invalid_argument("CostModel: congestion_weight must be >= 0");
  }
}

double CostModel::switch_cost(NodeId w) const {
  double util = 0.0;
  if (load_ != nullptr && config_.congestion_weight > 0.0) {
    util = load_->utilization(w);
  }
  return config_.unit_cost * (1.0 + config_.congestion_weight * util);
}

double CostModel::segment_cost(NodeId a, NodeId b, double metric) const {
  double cost = 0.0;
  if (topology_->is_switch(a)) cost += 0.5 * switch_cost(a);
  if (topology_->is_switch(b)) cost += 0.5 * switch_cost(b);
  return metric * cost;
}

double CostModel::policy_cost(const net::Policy& policy, double metric) const {
  double sum = 0.0;
  for (NodeId w : policy.list) sum += switch_cost(w);
  return metric * sum;
}

double CostModel::substitution_utility(const net::Policy& policy, NodeId src,
                                       NodeId dst, std::size_t i, NodeId w_hat,
                                       double metric) const {
  if (i >= policy.list.size()) {
    throw std::out_of_range("substitution_utility: position out of range");
  }
  const NodeId prev = (i == 0) ? src : policy.list[i - 1];
  const NodeId next = (i + 1 == policy.list.size()) ? dst : policy.list[i + 1];
  const NodeId w = policy.list[i];
  // Eq. (5)/(7): old in-cost + old out-cost - new in-cost - new out-cost.
  return segment_cost(prev, w, metric) + segment_cost(w, next, metric) -
         segment_cost(prev, w_hat, metric) - segment_cost(w_hat, next, metric);
}

double CostModel::assignment_cost(const sched::Problem& problem,
                                  const sched::Assignment& assignment) const {
  double total = 0.0;
  for (const net::Flow& f : problem.flows) {
    const ServerId src = assignment.host(problem, f.src_task);
    const ServerId dst = assignment.host(problem, f.dst_task);
    if (!src.valid() || !dst.valid() || src == dst) continue;
    const auto it = assignment.policies.find(f.id);
    if (it == assignment.policies.end()) continue;
    total += policy_cost(it->second, metric(f));
  }
  return total;
}

double CostModel::remote_map_cost(const sched::Problem& problem,
                                  const sched::Assignment& assignment) const {
  if (problem.blocks == nullptr) return 0.0;
  double total = 0.0;
  for (const sched::TaskRef& t : problem.tasks) {
    if (t.kind != cluster::TaskKind::Map) continue;
    const ServerId host = assignment.host(problem, t.id);
    if (!host.valid()) continue;
    if (problem.blocks->local(t.id, host)) continue;
    std::size_t nearest = SIZE_MAX;
    for (ServerId r : problem.blocks->replicas(t.id)) {
      nearest = std::min(nearest, sched::static_hops(problem, host, r));
    }
    if (nearest != SIZE_MAX) {
      total += t.input_gb * config_.unit_cost * static_cast<double>(nearest);
    }
  }
  return total;
}

}  // namespace hit::core
