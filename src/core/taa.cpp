#include "core/taa.h"

#include <unordered_map>
#include <unordered_set>

#include "network/load.h"

namespace hit::core {
namespace {

/// Charge every placed flow's rate to its policy switches.
net::LoadTracker build_load(const sched::Problem& problem,
                            const sched::Assignment& assignment) {
  net::LoadTracker load(*problem.topology);
  for (const net::Flow& f : problem.flows) {
    const ServerId src = assignment.host(problem, f.src_task);
    const ServerId dst = assignment.host(problem, f.dst_task);
    if (!src.valid() || !dst.valid() || src == dst) continue;
    const auto it = assignment.policies.find(f.id);
    if (it == assignment.policies.end()) continue;
    load.assign(it->second, f.rate);
  }
  return load;
}

}  // namespace

std::vector<std::string> taa_violations(const sched::Problem& problem,
                                        const sched::Assignment& assignment) {
  std::vector<std::string> violations;

  // (1) every task placed on a known server; (2)/(3) no task placed twice.
  std::unordered_set<TaskId> seen;
  for (const sched::TaskRef& t : problem.tasks) {
    const auto it = assignment.placement.find(t.id);
    if (it == assignment.placement.end() || !it->second.valid()) {
      violations.push_back("unplaced task " + std::to_string(t.id.value()));
      continue;
    }
    if (it->second.index() >= problem.cluster->size()) {
      violations.push_back("task placed on unknown server");
      continue;
    }
    if (!seen.insert(t.id).second) {
      violations.push_back("task placed more than once");
    }
  }

  // (4) server capacity.
  try {
    sched::UsageLedger ledger(problem);
    for (const sched::TaskRef& t : problem.tasks) {
      const auto it = assignment.placement.find(t.id);
      if (it == assignment.placement.end() || !it->second.valid()) continue;
      ledger.place(it->second, t.demand);
    }
  } catch (const std::logic_error&) {
    violations.push_back("server capacity exceeded (Σ r_i > q_j)");
  }

  // (5) switch capacity under the policies' rates.
  const net::LoadTracker load = build_load(problem, assignment);
  for (NodeId w : load.overloaded()) {
    violations.push_back("switch over capacity: " + problem.topology->info(w).name);
  }

  // (6) policy satisfaction for every placed, non-local flow.
  for (const net::Flow& f : problem.flows) {
    const ServerId src = assignment.host(problem, f.src_task);
    const ServerId dst = assignment.host(problem, f.dst_task);
    if (!src.valid() || !dst.valid() || src == dst) continue;
    const auto it = assignment.policies.find(f.id);
    if (it == assignment.policies.end()) {
      violations.push_back("flow without policy: " + std::to_string(f.id.value()));
      continue;
    }
    if (!it->second.satisfied(*problem.topology, problem.cluster->node_of(src),
                              problem.cluster->node_of(dst))) {
      violations.push_back("unsatisfied policy for flow " +
                           std::to_string(f.id.value()));
    }
  }
  return violations;
}

double taa_objective(const sched::Problem& problem,
                     const sched::Assignment& assignment, CostConfig config) {
  const net::LoadTracker load = build_load(problem, assignment);
  const CostModel cost(*problem.topology, config, &load);
  return cost.assignment_cost(problem, assignment);
}

}  // namespace hit::core
