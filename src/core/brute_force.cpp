#include "core/brute_force.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/policy_optimizer.h"
#include "network/load.h"

namespace hit::core {

std::optional<BruteForceResult> BruteForceSolver::solve(
    const sched::Problem& problem, std::size_t max_states) const {
  if (!problem.valid()) throw std::invalid_argument("BruteForceSolver: invalid problem");
  const std::size_t servers = problem.cluster->size();
  const std::size_t tasks = problem.tasks.size();
  const double states = std::pow(static_cast<double>(servers),
                                 static_cast<double>(tasks));
  if (states > static_cast<double>(max_states)) {
    throw std::invalid_argument("BruteForceSolver: instance too large");
  }

  const PolicyOptimizer optimizer(*problem.topology, config_);

  std::optional<BruteForceResult> best;
  std::vector<std::size_t> choice(tasks, 0);

  auto evaluate = [&]() {
    sched::Assignment assignment;
    // Capacity check.
    sched::UsageLedger ledger(problem);
    for (std::size_t i = 0; i < tasks; ++i) {
      const ServerId s(static_cast<ServerId::value_type>(choice[i]));
      if (!ledger.can_host(s, problem.tasks[i].demand)) return;
      ledger.place(s, problem.tasks[i].demand);
      assignment.placement[problem.tasks[i].id] = s;
    }
    // Route flows greedily (largest first) on cheapest feasible paths.
    net::LoadTracker load(*problem.topology);
    const CostModel cost(*problem.topology, config_, &load);
    std::vector<const net::Flow*> order;
    for (const net::Flow& f : problem.flows) order.push_back(&f);
    std::stable_sort(order.begin(), order.end(),
                     [](const net::Flow* a, const net::Flow* b) {
                       return a->size_gb > b->size_gb;
                     });
    double total = 0.0;
    for (const net::Flow* f : order) {
      const ServerId src = assignment.host(problem, f->src_task);
      const ServerId dst = assignment.host(problem, f->dst_task);
      if (!src.valid() || !dst.valid()) continue;
      if (src == dst) {
        net::Policy p;
        p.flow = f->id;
        assignment.policies[f->id] = std::move(p);
        continue;
      }
      const NodeId srcs[] = {problem.cluster->node_of(src)};
      const NodeId dsts[] = {problem.cluster->node_of(dst)};
      auto route = optimizer.optimal_route(srcs, dsts, f->id, f->rate,
                                           cost.metric(*f), load);
      if (!route) return;  // infeasible routing under this placement
      total += route->cost;
      load.assign(route->policy, f->rate);
      assignment.policies[f->id] = std::move(route->policy);
    }
    if (!best || total < best->cost) {
      best = BruteForceResult{std::move(assignment), total};
    }
  };

  // Odometer enumeration of all placements.
  for (;;) {
    evaluate();
    std::size_t pos = 0;
    while (pos < tasks) {
      if (++choice[pos] < servers) break;
      choice[pos] = 0;
      ++pos;
    }
    if (pos == tasks) break;
  }
  return best;
}

}  // namespace hit::core
