// The M x N preference matrix of §5.2: P(s, c) grades how well server s
// suits the container/task c, accumulated by the Policy Optimization
// Algorithm (Alg. 1 lines 11-13).  Servers rank tasks by reading their row;
// tasks rank servers by reading their column — both sides of the stable
// matching draw from the same utility-derived grades.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "util/ids.h"

namespace hit::core {

class PreferenceMatrix {
 public:
  PreferenceMatrix(std::size_t num_servers, std::vector<TaskId> tasks);

  [[nodiscard]] std::size_t num_servers() const noexcept { return num_servers_; }
  [[nodiscard]] const std::vector<TaskId>& tasks() const noexcept { return tasks_; }

  [[nodiscard]] double grade(ServerId server, TaskId task) const;
  void add(ServerId server, TaskId task, double weight);

  /// Servers ordered by descending grade for `task` (ties by server id) —
  /// the task-side ranked list l of §5.2.2.
  [[nodiscard]] std::vector<ServerId> ranked_servers(TaskId task) const;

  /// Tasks ordered by descending grade on `server` (ties by task id) —
  /// the server-side ranking Alg. 2 evicts against.
  [[nodiscard]] std::vector<TaskId> ranked_tasks(ServerId server) const;

 private:
  [[nodiscard]] std::size_t column(TaskId task) const;

  std::size_t num_servers_;
  std::vector<TaskId> tasks_;
  std::unordered_map<TaskId, std::size_t> column_of_;
  std::vector<double> grades_;  // row-major: server x task
};

}  // namespace hit::core
