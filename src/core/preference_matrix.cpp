#include "core/preference_matrix.h"

#include <algorithm>
#include <stdexcept>

#include "obs/context.h"

namespace hit::core {

PreferenceMatrix::PreferenceMatrix(std::size_t num_servers, std::vector<TaskId> tasks)
    : num_servers_(num_servers), tasks_(std::move(tasks)) {
  if (num_servers_ == 0) {
    throw std::invalid_argument("PreferenceMatrix: need at least one server");
  }
  column_of_.reserve(tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (!column_of_.emplace(tasks_[i], i).second) {
      throw std::invalid_argument("PreferenceMatrix: duplicate task");
    }
  }
  grades_.assign(num_servers_ * tasks_.size(), 0.0);
}

std::size_t PreferenceMatrix::column(TaskId task) const {
  const auto it = column_of_.find(task);
  if (it == column_of_.end()) {
    throw std::out_of_range("PreferenceMatrix: unknown task");
  }
  return it->second;
}

double PreferenceMatrix::grade(ServerId server, TaskId task) const {
  if (!server.valid() || server.index() >= num_servers_) {
    throw std::out_of_range("PreferenceMatrix: unknown server");
  }
  return grades_[server.index() * tasks_.size() + column(task)];
}

void PreferenceMatrix::add(ServerId server, TaskId task, double weight) {
  if (!server.valid() || server.index() >= num_servers_) {
    throw std::out_of_range("PreferenceMatrix: unknown server");
  }
  grades_[server.index() * tasks_.size() + column(task)] += weight;
}

std::vector<ServerId> PreferenceMatrix::ranked_servers(TaskId task) const {
  HIT_PROF_SCOPE("core.preference_matrix.ranked_servers");
  const std::size_t col = column(task);
  std::vector<ServerId> order(num_servers_);
  for (std::size_t s = 0; s < num_servers_; ++s) {
    order[s] = ServerId(static_cast<ServerId::value_type>(s));
  }
  std::stable_sort(order.begin(), order.end(), [&](ServerId a, ServerId b) {
    return grades_[a.index() * tasks_.size() + col] >
           grades_[b.index() * tasks_.size() + col];
  });
  return order;
}

std::vector<TaskId> PreferenceMatrix::ranked_tasks(ServerId server) const {
  HIT_PROF_SCOPE("core.preference_matrix.ranked_tasks");
  if (!server.valid() || server.index() >= num_servers_) {
    throw std::out_of_range("PreferenceMatrix: unknown server");
  }
  std::vector<TaskId> order = tasks_;
  const double* row = grades_.data() + server.index() * tasks_.size();
  std::stable_sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
    return row[column_of_.at(a)] > row[column_of_.at(b)];
  });
  return order;
}

}  // namespace hit::core
