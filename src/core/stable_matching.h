// Tasks Assignment — Algorithm 2: modified many-to-one Gale-Shapley.
//
// Containers (each hosting one task) propose to servers in decreasing order
// of preference-matrix grade; a server over capacity sequentially rejects its
// least-preferred accepted containers (Alg. 2 lines 8-13).  Every rejection
// updates the server's `rejected-top` threshold: containers the server
// grades no higher than the rejected one move that server to their blacklist
// (lines 14-16), pruning hopeless proposals.  The output matching is stable
// — no (container, server) blocking pair — which §5.2.3 proves by
// contradiction and tests/core/stable_matching_test.cpp checks directly.
#pragma once

#include <unordered_map>

#include "core/preference_matrix.h"
#include "sched/scheduler.h"
#include "util/ids.h"

namespace hit::core {

class StableMatcher {
 public:
  /// Which side proposes.  The paper's Algorithm 2 is container-proposing;
  /// the server-proposing dual (hospitals-proposing in the
  /// hospitals/residents formulation) yields the server-optimal stable
  /// matching instead — exposed for the classic proposer-optimality
  /// property tests and as an ablation knob.
  enum class Proposer { Containers, Servers };

  /// Match every problem task to a server.  Capacity = server capacity minus
  /// base usage.  Throws std::runtime_error when some task is rejected by
  /// every server (aggregate capacity insufficient).
  [[nodiscard]] std::unordered_map<TaskId, ServerId> match(
      const sched::Problem& problem, const PreferenceMatrix& prefs,
      Proposer proposer = Proposer::Containers) const;

  /// A (possibly truncated) matching: `placement` never violates server
  /// capacity; `complete` is false when the proposal budget ran out with
  /// tasks still free — those tasks are simply absent from `placement`.
  struct MatchResult {
    std::unordered_map<TaskId, ServerId> placement;
    bool complete = true;
    std::uint64_t proposals = 0;
  };

  /// `match` with a proposal-round work budget (0 = unlimited): once
  /// `max_proposals` proposals have been processed, the algorithm stops and
  /// returns the capacity-feasible partial matching built so far.  The
  /// degradation ladder uses this to bound Algorithm 2 under overload.
  /// Genuine infeasibility (a task rejected by every server) still throws.
  [[nodiscard]] MatchResult match_budgeted(
      const sched::Problem& problem, const PreferenceMatrix& prefs,
      std::size_t max_proposals,
      Proposer proposer = Proposer::Containers) const;

  /// Blocking-pair test on a finished matching: (c, s) blocks when c strictly
  /// prefers s to its assigned server AND s either has spare capacity for c
  /// or accepts c after evicting strictly-worse containers.  Returns true
  /// when NO blocking pair exists.
  [[nodiscard]] static bool is_stable(
      const sched::Problem& problem, const PreferenceMatrix& prefs,
      const std::unordered_map<TaskId, ServerId>& matching);
};

}  // namespace hit::core
