// Exact TAA solver by exhaustive enumeration — the test oracle.
//
// Enumerates every capacity-feasible task->server placement, routes each
// flow on its cheapest feasible path, and returns the global minimum of the
// Eq. (3) objective.  Exponential (servers^tasks); guarded to tiny
// instances.  Used by property tests to certify that HitScheduler's stable
// matching lands within a bounded factor of optimal (and exactly optimal on
// the paper's case study).
#pragma once

#include <cstddef>
#include <optional>

#include "core/cost_model.h"
#include "sched/scheduler.h"

namespace hit::core {

struct BruteForceResult {
  sched::Assignment assignment;
  double cost = 0.0;
};

class BruteForceSolver {
 public:
  explicit BruteForceSolver(CostConfig config = {}) : config_(config) {}

  /// Throws std::invalid_argument when servers^tasks exceeds `max_states`
  /// (default 2^20) — this solver exists for oracle-sized instances only.
  [[nodiscard]] std::optional<BruteForceResult> solve(
      const sched::Problem& problem, std::size_t max_states = (1u << 20)) const;

 private:
  CostConfig config_;
};

}  // namespace hit::core
