#include "core/mkp.h"

#include <algorithm>
#include <functional>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace hit::core {
namespace {

void check_instance(const MkpInstance& instance) {
  if (instance.profit.size() != instance.weight.size()) {
    throw std::invalid_argument("MKP: profit/weight size mismatch");
  }
  for (double p : instance.profit) {
    if (p < 0.0) throw std::invalid_argument("MKP: negative profit");
  }
  for (double w : instance.weight) {
    if (w <= 0.0) throw std::invalid_argument("MKP: weights must be positive");
  }
  for (double c : instance.capacity) {
    if (c <= 0.0) throw std::invalid_argument("MKP: capacities must be positive");
  }
}

}  // namespace

bool mkp_feasible(const MkpInstance& instance, const MkpSolution& solution) {
  if (solution.assignment.size() != instance.items()) return false;
  std::vector<double> used(instance.knapsacks(), 0.0);
  for (std::size_t j = 0; j < instance.items(); ++j) {
    const std::size_t k = solution.assignment[j];
    if (k == SIZE_MAX) continue;
    if (k >= instance.knapsacks()) return false;
    used[k] += instance.weight[j];
  }
  for (std::size_t k = 0; k < instance.knapsacks(); ++k) {
    if (used[k] > instance.capacity[k] + 1e-9) return false;
  }
  return true;
}

MkpSolution solve_mkp_exact(const MkpInstance& instance, std::size_t max_states) {
  check_instance(instance);
  const std::size_t n = instance.items();
  const std::size_t m = instance.knapsacks();
  const double states =
      std::pow(static_cast<double>(m + 1), static_cast<double>(n));
  if (states > static_cast<double>(max_states)) {
    throw std::invalid_argument("solve_mkp_exact: instance too large");
  }

  // Depth-first with a simple optimistic bound (sum of remaining profits).
  std::vector<double> suffix_profit(n + 1, 0.0);
  for (std::size_t j = n; j-- > 0;) {
    suffix_profit[j] = suffix_profit[j + 1] + instance.profit[j];
  }

  MkpSolution best;
  best.assignment.assign(n, SIZE_MAX);
  std::vector<std::size_t> current(n, SIZE_MAX);
  std::vector<double> used(m, 0.0);

  std::function<void(std::size_t, double)> dfs = [&](std::size_t j, double profit) {
    if (profit + suffix_profit[j] <= best.total_profit) return;  // bound
    if (j == n) {
      best.total_profit = profit;
      best.assignment = current;
      return;
    }
    for (std::size_t k = 0; k < m; ++k) {
      if (used[k] + instance.weight[j] > instance.capacity[k] + 1e-12) continue;
      used[k] += instance.weight[j];
      current[j] = k;
      dfs(j + 1, profit + instance.profit[j]);
      current[j] = SIZE_MAX;
      used[k] -= instance.weight[j];
    }
    dfs(j + 1, profit);  // leave item out
  };
  // Seed: empty solution has profit 0; force exploration.
  best.total_profit = -1.0;
  dfs(0, 0.0);
  best.total_profit = std::max(best.total_profit, 0.0);
  return best;
}

MkpSolution solve_mkp_greedy(const MkpInstance& instance) {
  check_instance(instance);
  const std::size_t n = instance.items();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return instance.profit[a] / instance.weight[a] >
           instance.profit[b] / instance.weight[b];
  });

  MkpSolution solution;
  solution.assignment.assign(n, SIZE_MAX);
  std::vector<double> used(instance.knapsacks(), 0.0);
  for (std::size_t j : order) {
    for (std::size_t k = 0; k < instance.knapsacks(); ++k) {
      if (used[k] + instance.weight[j] <= instance.capacity[k] + 1e-12) {
        used[k] += instance.weight[j];
        solution.assignment[j] = k;
        solution.total_profit += instance.profit[j];
        break;
      }
    }
  }
  return solution;
}

std::unique_ptr<MkpReduction> reduce_mkp_to_taa(const MkpInstance& instance) {
  check_instance(instance);
  auto r = std::make_unique<MkpReduction>();
  topo::Topology& t = r->topology;

  // Access switches generous enough never to bind (the reduction's only
  // constraint is the intermediate switch capacity).
  double total_weight = 0.0;
  for (double w : instance.weight) total_weight += w;
  const double big = std::max(total_weight * 2.0, 1.0);

  const NodeId acc1 = t.add_switch(topo::Tier::Access, big, "acc-s1");
  const NodeId acc2 = t.add_switch(topo::Tier::Access, big, "acc-s2");
  for (std::size_t k = 0; k < instance.knapsacks(); ++k) {
    const NodeId w = t.add_switch(topo::Tier::Aggregation, instance.capacity[k],
                                  "knapsack-" + std::to_string(k));
    r->knapsack_switches.push_back(w);
    t.add_link(acc1, w, big);
    t.add_link(acc2, w, big);
  }
  const NodeId s1 = t.add_server("s1");
  const NodeId s2 = t.add_server("s2");
  t.add_link(s1, acc1, big);
  t.add_link(s2, acc2, big);
  t.validate();

  // Cluster: each server holds all its containers (n tasks each).
  const auto slots = static_cast<double>(std::max<std::size_t>(instance.items(), 1));
  r->cluster = std::make_unique<cluster::Cluster>(
      t, cluster::Resource{slots, slots * 4.0});

  sched::Problem& p = r->problem;
  p.topology = &t;
  p.cluster = r->cluster.get();
  const ServerId host1 = r->cluster->server_at(s1);
  const ServerId host2 = r->cluster->server_at(s2);
  p.base_usage.assign(2, cluster::Resource{});

  // n map tasks on s1, n reduce tasks on s2, all fixed (the reduction's
  // "reasonable solution"); only the flow routing remains to optimize.
  for (std::size_t j = 0; j < instance.items(); ++j) {
    const TaskId map(static_cast<TaskId::value_type>(2 * j));
    const TaskId reduce(static_cast<TaskId::value_type>(2 * j + 1));
    p.fixed[map] = host1;
    p.fixed[reduce] = host2;
    net::Flow f;
    f.id = FlowId(static_cast<FlowId::value_type>(j));
    f.job = JobId(0);
    f.src_task = map;
    f.dst_task = reduce;
    f.size_gb = instance.weight[j];
    f.rate = instance.weight[j];  // item weight consumes knapsack capacity
    p.flows.push_back(f);
  }
  return r;
}

MkpSolution taa_solution_to_mkp(const MkpReduction& reduction,
                                const MkpInstance& instance,
                                const sched::Assignment& assignment) {
  MkpSolution solution;
  solution.assignment.assign(instance.items(), SIZE_MAX);
  for (std::size_t j = 0; j < instance.items(); ++j) {
    const auto it = assignment.policies.find(
        FlowId(static_cast<FlowId::value_type>(j)));
    if (it == assignment.policies.end()) continue;
    for (NodeId w : it->second.list) {
      for (std::size_t k = 0; k < reduction.knapsack_switches.size(); ++k) {
        if (reduction.knapsack_switches[k] == w) {
          solution.assignment[j] = k;
          solution.total_profit += instance.profit[j];
        }
      }
    }
  }
  return solution;
}

}  // namespace hit::core
