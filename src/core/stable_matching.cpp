#include "core/stable_matching.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "obs/context.h"

namespace hit::core {

namespace {

/// Server-proposing (hospitals-proposing) variant: servers offer their free
/// capacity to tasks in decreasing grade order; a task trades up whenever a
/// server it prefers proposes.  Produces the server-optimal stable matching.
/// `max_proposals` > 0 truncates the run once that many proposals have been
/// processed (the partial matching is always capacity-feasible).
StableMatcher::MatchResult match_servers_proposing(
    const sched::Problem& problem, const PreferenceMatrix& prefs,
    std::size_t max_proposals) {
  HIT_PROF_SCOPE("core.stable_matching.match_servers_proposing");
  std::uint64_t proposals = 0;
  std::uint64_t trade_ups = 0;
  std::unordered_map<TaskId, const sched::TaskRef*> ref_of;
  for (const sched::TaskRef& t : problem.tasks) ref_of.emplace(t.id, &t);

  sched::UsageLedger ledger(problem);
  std::unordered_map<TaskId, ServerId> matching;

  // Per-server proposal cursor over its ranked task list.
  std::vector<std::vector<TaskId>> ranked(problem.cluster->size());
  std::vector<std::size_t> cursor(problem.cluster->size(), 0);
  std::deque<ServerId> open;
  for (const cluster::Server& s : problem.cluster->servers()) {
    ranked[s.id.index()] = prefs.ranked_tasks(s.id);
    open.push_back(s.id);
  }

  bool truncated = false;
  while (!open.empty() && !truncated) {
    const ServerId s = open.front();
    open.pop_front();
    auto& idx = cursor[s.index()];
    const auto& list = ranked[s.index()];
    while (idx < list.size()) {
      if (max_proposals != 0 && proposals >= max_proposals) {
        truncated = true;
        break;
      }
      const TaskId t = list[idx];
      const sched::TaskRef& task = *ref_of.at(t);
      // A full server stops proposing; it re-enters the queue when jilted.
      if (!ledger.can_host(s, task.demand)) break;
      ++idx;
      ++proposals;
      const auto current = matching.find(t);
      if (current == matching.end()) {
        ledger.place(s, task.demand);
        matching[t] = s;
      } else if (prefs.grade(s, t) > prefs.grade(current->second, t)) {
        // Task trades up; the jilted server regains capacity and may have
        // proposals it previously could not afford.
        const ServerId old = current->second;
        ++trade_ups;
        ledger.remove(old, task.demand);
        ledger.place(s, task.demand);
        matching[t] = s;
        if (cursor[old.index()] < ranked[old.index()].size()) {
          open.push_back(old);
        }
      }
      // Rejected proposals just advance the cursor.
    }
  }

  if (!truncated && matching.size() != problem.tasks.size()) {
    throw std::runtime_error(
        "StableMatcher: servers-proposing left tasks unmatched (capacity)");
  }
  obs::count("core.stable_matching.proposals", proposals);
  obs::count("core.stable_matching.trade_ups", trade_ups);
  const bool complete = matching.size() == problem.tasks.size();
  return StableMatcher::MatchResult{std::move(matching), complete, proposals};
}

}  // namespace

std::unordered_map<TaskId, ServerId> StableMatcher::match(
    const sched::Problem& problem, const PreferenceMatrix& prefs,
    Proposer proposer) const {
  MatchResult result = match_budgeted(problem, prefs, /*max_proposals=*/0, proposer);
  if (!result.complete) {
    throw std::logic_error("StableMatcher: incomplete matching");
  }
  return std::move(result.placement);
}

StableMatcher::MatchResult StableMatcher::match_budgeted(
    const sched::Problem& problem, const PreferenceMatrix& prefs,
    std::size_t max_proposals, Proposer proposer) const {
  if (!problem.valid()) throw std::invalid_argument("StableMatcher: invalid problem");
  if (proposer == Proposer::Servers) {
    return match_servers_proposing(problem, prefs, max_proposals);
  }

  HIT_PROF_SCOPE("core.stable_matching.match");
  std::uint64_t proposals = 0;
  std::uint64_t evictions = 0;
  const std::size_t n_tasks = problem.tasks.size();
  std::unordered_map<TaskId, const sched::TaskRef*> ref_of;
  for (const sched::TaskRef& t : problem.tasks) ref_of.emplace(t.id, &t);

  // Per-task proposal state: ranked server list + next index to try.
  std::unordered_map<TaskId, std::vector<ServerId>> pref_list;
  std::unordered_map<TaskId, std::size_t> next_choice;
  std::unordered_map<TaskId, std::unordered_set<ServerId>> blacklist;
  for (const sched::TaskRef& t : problem.tasks) {
    pref_list.emplace(t.id, prefs.ranked_servers(t.id));
    next_choice.emplace(t.id, 0);
    blacklist.emplace(t.id, std::unordered_set<ServerId>{});
  }

  // Server state: accepted containers + usage + rejected-top grade.
  sched::UsageLedger ledger(problem);
  std::vector<std::vector<TaskId>> accepted(problem.cluster->size());
  std::vector<double> rejected_top(problem.cluster->size(),
                                   -std::numeric_limits<double>::infinity());

  std::unordered_map<TaskId, ServerId> matching;
  std::deque<TaskId> free_tasks;
  for (const sched::TaskRef& t : problem.tasks) free_tasks.push_back(t.id);

  bool truncated = false;
  while (!free_tasks.empty()) {
    if (max_proposals != 0 && proposals >= max_proposals) {
      truncated = true;
      break;
    }
    const TaskId c = free_tasks.front();
    free_tasks.pop_front();

    // Advance to the best not-yet-tried, non-blacklisted server whose
    // rejected-top does not already dominate this container's grade.
    ServerId s;
    auto& idx = next_choice.at(c);
    const auto& list = pref_list.at(c);
    while (idx < list.size()) {
      const ServerId cand = list[idx];
      ++idx;
      if (blacklist.at(c).count(cand) > 0) continue;
      if (prefs.grade(cand, c) <= rejected_top[cand.index()]) continue;
      s = cand;
      break;
    }
    if (!s.valid()) {
      throw std::runtime_error("StableMatcher: task rejected by every server");
    }

    // Tentatively accept, then shed least-preferred containers until the
    // server fits (Alg. 2 lines 8-13).  The proposer itself may be shed.
    ++proposals;
    accepted[s.index()].push_back(c);
    matching[c] = s;
    auto usage_violated = [&]() {
      cluster::Resource sum = ledger.used(s);
      for (TaskId t : accepted[s.index()]) sum += ref_of.at(t)->demand;
      return !sum.fits_in(problem.cluster->server(s).capacity);
    };
    while (usage_violated()) {
      auto& acc = accepted[s.index()];
      auto worst = std::min_element(acc.begin(), acc.end(), [&](TaskId a, TaskId b) {
        const double ga = prefs.grade(s, a);
        const double gb = prefs.grade(s, b);
        return ga != gb ? ga < gb : a > b;  // lowest grade, newest id first
      });
      const TaskId evicted = *worst;
      ++evictions;
      acc.erase(worst);
      matching.erase(evicted);
      blacklist.at(evicted).insert(s);
      free_tasks.push_back(evicted);
      // rejected-top: containers the server grades no higher than the one it
      // just rejected will never displace anything here — blacklist s for
      // them (lines 14-16), implemented as a grade threshold.
      rejected_top[s.index()] =
          std::max(rejected_top[s.index()], prefs.grade(s, evicted));
    }
  }

  if (!truncated && matching.size() != n_tasks) {
    throw std::logic_error("StableMatcher: incomplete matching");
  }
  obs::count("core.stable_matching.proposals", proposals);
  obs::count("core.stable_matching.evictions", evictions);
  const bool complete = matching.size() == n_tasks;
  return MatchResult{std::move(matching), complete, proposals};
}

bool StableMatcher::is_stable(const sched::Problem& problem,
                              const PreferenceMatrix& prefs,
                              const std::unordered_map<TaskId, ServerId>& matching) {
  std::unordered_map<TaskId, const sched::TaskRef*> ref_of;
  for (const sched::TaskRef& t : problem.tasks) ref_of.emplace(t.id, &t);

  // Per-server usage under the matching.
  sched::UsageLedger ledger(problem);
  std::vector<std::vector<TaskId>> hosted(problem.cluster->size());
  for (const auto& [task, server] : matching) {
    ledger.place(server, ref_of.at(task)->demand);
    hosted[server.index()].push_back(task);
  }

  for (const auto& [task, server] : matching) {
    const double own = prefs.grade(server, task);
    for (const cluster::Server& s : problem.cluster->servers()) {
      if (s.id == server) continue;
      const double there = prefs.grade(s.id, task);
      if (there <= own) continue;  // task does not prefer s
      // Server side: spare room, or strictly-worse containers whose eviction
      // frees enough capacity.
      if (ledger.can_host(s.id, ref_of.at(task)->demand)) return false;
      cluster::Resource freed;
      for (TaskId other : hosted[s.id.index()]) {
        if (prefs.grade(s.id, other) < there) freed += ref_of.at(other)->demand;
      }
      cluster::Resource hypothetical =
          ledger.used(s.id) - freed + ref_of.at(task)->demand;
      if (hypothetical.fits_in(problem.cluster->server(s.id).capacity)) return false;
    }
  }
  return true;
}

}  // namespace hit::core
