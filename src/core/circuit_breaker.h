// Circuit breaker around the joint-optimization hot path (DESIGN.md §10).
//
// When policy optimization keeps failing — budget blowouts, infeasible
// matchings, saturated route searches — retrying it on every call just burns
// the work budget the cheap tiers need.  The breaker counts consecutive
// failures; past a threshold it *opens* and the caller serves its fallback
// tier immediately for a span of calls, then lets a half-open probe attempt
// the real path again.  Enough consecutive probe successes close it.
//
// Everything is call-counted, never wall-clocked, so a seeded run replays
// bit-identically.  The optional seed jitters each open span (deterministic
// per trip) so co-located breakers do not probe in lockstep.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hit::core {

enum class BreakerState : std::uint8_t { Closed, HalfOpen, Open };

[[nodiscard]] const char* breaker_state_name(BreakerState state);

struct BreakerConfig {
  /// Disabled by default: allow() is always true and no state is kept, so
  /// wrapping a call site costs nothing until an operator opts in.
  bool enabled = false;
  /// Consecutive failures that trip Closed -> Open.
  std::size_t failure_threshold = 3;
  /// Calls served by the fallback tier while Open before a half-open probe.
  std::size_t open_span = 8;
  /// Consecutive half-open probe successes that close the breaker.
  std::size_t close_successes = 2;
  /// Non-zero: jitter each trip's open span by fork(seed, trip) in
  /// [0, open_span], deterministically.
  std::uint64_t seed = 0;
};

class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerConfig config = {});

  /// May the protected path run right now?  False = serve the fallback
  /// immediately.  Open-state calls count down toward the half-open probe.
  [[nodiscard]] bool allow();

  /// Outcome of an allowed call.  Failures trip or re-open; successes close.
  void record_success();
  void record_failure();

  [[nodiscard]] BreakerState state() const noexcept { return state_; }
  [[nodiscard]] const BreakerConfig& config() const noexcept { return config_; }

  struct Stats {
    std::size_t trips = 0;            ///< Closed/HalfOpen -> Open transitions
    std::size_t probes = 0;           ///< half-open attempts admitted
    std::size_t closes = 0;           ///< HalfOpen -> Closed transitions
    std::size_t short_circuits = 0;   ///< calls denied while Open
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Back to Closed with all counters (but not Stats) cleared.
  void reset();

 private:
  void trip();

  BreakerConfig config_;
  BreakerState state_ = BreakerState::Closed;
  std::size_t consecutive_failures_ = 0;
  std::size_t probe_successes_ = 0;
  std::size_t open_remaining_ = 0;  ///< fallback calls left before a probe
  Stats stats_;
};

}  // namespace hit::core
