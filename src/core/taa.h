// Topology-Aware Assignment (TAA) — the optimization problem of Eq. (3).
//
// This header provides the *verifier* side of the formulation: given a
// Problem and a candidate Assignment, check each of the six constraints and
// compute the objective.  The solvers live next door (HitScheduler for the
// synergistic heuristic, BruteForceSolver for the exact oracle); this module
// is what tests and benches use to certify their outputs.
#pragma once

#include <string>
#include <vector>

#include "core/cost_model.h"
#include "sched/scheduler.h"

namespace hit::core {

/// Human-readable descriptions of every violated Eq. (3) constraint; empty
/// means the assignment is TAA-feasible.  Checks:
///   1. every container deployed on exactly one server (A(c) != 0),
///   2./3. one task per container (no duplicate placements),
///   4. server capacity  Σ r_i <= q_j,
///   5. switch capacity  Σ_{p in A(w)} f.rate <= w.capacity,
///   6. every flow's policy satisfied (typed, ordered, connected).
[[nodiscard]] std::vector<std::string> taa_violations(
    const sched::Problem& problem, const sched::Assignment& assignment);

/// The TAA objective: total shuffle traffic cost Σ C(c_i, c_j) under the
/// given cost configuration (congestion term from the assignment's own
/// policy loads).
[[nodiscard]] double taa_objective(const sched::Problem& problem,
                                   const sched::Assignment& assignment,
                                   CostConfig config = {});

}  // namespace hit::core
