#include "core/circuit_breaker.h"

#include <stdexcept>

#include "util/rng.h"

namespace hit::core {

const char* breaker_state_name(BreakerState state) {
  switch (state) {
    case BreakerState::Closed: return "closed";
    case BreakerState::HalfOpen: return "half-open";
    case BreakerState::Open: return "open";
  }
  return "?";
}

CircuitBreaker::CircuitBreaker(BreakerConfig config) : config_(config) {
  if (config_.enabled) {
    if (config_.failure_threshold == 0) {
      throw std::invalid_argument(
          "CircuitBreaker: failure_threshold must be positive");
    }
    if (config_.close_successes == 0) {
      throw std::invalid_argument(
          "CircuitBreaker: close_successes must be positive");
    }
  }
}

void CircuitBreaker::trip() {
  state_ = BreakerState::Open;
  consecutive_failures_ = 0;
  probe_successes_ = 0;
  open_remaining_ = config_.open_span;
  if (config_.seed != 0) {
    // Deterministic per-trip jitter: same seed, same trip index, same span.
    Rng jitter = Rng(config_.seed).fork(stats_.trips);
    open_remaining_ += jitter.uniform_index(config_.open_span + 1);
  }
  ++stats_.trips;
}

bool CircuitBreaker::allow() {
  if (!config_.enabled) return true;
  switch (state_) {
    case BreakerState::Closed:
      return true;
    case BreakerState::HalfOpen:
      // One probe at a time in the synchronous call pattern: the caller
      // records the outcome before asking again.
      ++stats_.probes;
      return true;
    case BreakerState::Open:
      if (open_remaining_ > 0) {
        --open_remaining_;
        ++stats_.short_circuits;
        return false;
      }
      state_ = BreakerState::HalfOpen;
      probe_successes_ = 0;
      ++stats_.probes;
      return true;
  }
  return true;
}

void CircuitBreaker::record_success() {
  if (!config_.enabled) return;
  switch (state_) {
    case BreakerState::Closed:
      consecutive_failures_ = 0;
      break;
    case BreakerState::HalfOpen:
      if (++probe_successes_ >= config_.close_successes) {
        state_ = BreakerState::Closed;
        consecutive_failures_ = 0;
        probe_successes_ = 0;
        ++stats_.closes;
      }
      break;
    case BreakerState::Open:
      break;  // stale outcome from before the trip; ignore
  }
}

void CircuitBreaker::record_failure() {
  if (!config_.enabled) return;
  switch (state_) {
    case BreakerState::Closed:
      if (++consecutive_failures_ >= config_.failure_threshold) trip();
      break;
    case BreakerState::HalfOpen:
      trip();  // the probe failed: straight back to Open
      break;
    case BreakerState::Open:
      break;
  }
}

void CircuitBreaker::reset() {
  state_ = BreakerState::Closed;
  consecutive_failures_ = 0;
  probe_successes_ = 0;
  open_remaining_ = 0;
}

}  // namespace hit::core
