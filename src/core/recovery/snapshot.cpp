#include "core/recovery/snapshot.h"

#include <algorithm>

namespace hit::core::recovery {

void FlowEntryState::encode(ByteWriter& w) const {
  encode_flow(w, flow);
  encode_policy(w, policy);
  w.id(src);
  w.id(dst);
  w.u8(parked ? 1 : 0);
  w.f64(charged_rate);
}

FlowEntryState FlowEntryState::decode(ByteReader& r) {
  FlowEntryState e;
  e.flow = decode_flow(r);
  e.policy = decode_policy(r);
  e.src = r.id<NodeTag>();
  e.dst = r.id<NodeTag>();
  e.parked = r.u8() != 0;
  e.charged_rate = r.f64();
  return e;
}

void ControllerState::canonicalize() {
  std::sort(flows.begin(), flows.end(),
            [](const FlowEntryState& a, const FlowEntryState& b) {
              return a.flow.id < b.flow.id;
            });
  std::sort(failed.begin(), failed.end());
  std::sort(draining.begin(), draining.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::sort(quarantined.begin(), quarantined.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
}

void ControllerState::encode(ByteWriter& w) const {
  w.u32(static_cast<std::uint32_t>(flows.size()));
  for (const FlowEntryState& e : flows) e.encode(w);
  w.u32(static_cast<std::uint32_t>(failed.size()));
  for (NodeId n : failed) w.id(n);
  w.u32(static_cast<std::uint32_t>(draining.size()));
  for (const auto& [node, absorbed] : draining) {
    w.id(node);
    w.f64(absorbed);
  }
  w.u32(static_cast<std::uint32_t>(quarantined.size()));
  for (const auto& [node, streak] : quarantined) {
    w.id(node);
    w.u32(streak);
  }
}

ControllerState ControllerState::decode(ByteReader& r) {
  ControllerState s;
  const std::uint32_t nf = r.u32();
  s.flows.reserve(nf);
  for (std::uint32_t i = 0; i < nf; ++i) {
    s.flows.push_back(FlowEntryState::decode(r));
  }
  const std::uint32_t nd = r.u32();
  s.failed.reserve(nd);
  for (std::uint32_t i = 0; i < nd; ++i) s.failed.push_back(r.id<NodeTag>());
  const std::uint32_t ndr = r.u32();
  s.draining.reserve(ndr);
  for (std::uint32_t i = 0; i < ndr; ++i) {
    NodeId node = r.id<NodeTag>();
    const double absorbed = r.f64();
    s.draining.emplace_back(node, absorbed);
  }
  const std::uint32_t nq = r.u32();
  s.quarantined.reserve(nq);
  for (std::uint32_t i = 0; i < nq; ++i) {
    NodeId node = r.id<NodeTag>();
    const std::uint32_t streak = r.u32();
    s.quarantined.emplace_back(node, streak);
  }
  return s;
}

std::string ControllerState::encode() const {
  ByteWriter w;
  encode(w);
  return w.take();
}

void AdmissionState::encode(ByteWriter& w) const {
  w.u8(has_aimd ? 1 : 0);
  w.f64(aimd_limit);
  w.u32(static_cast<std::uint32_t>(tenant_quotas.size()));
  for (const auto& [tenant, quota] : tenant_quotas) {
    w.u32(tenant);
    w.f64(quota);
  }
}

AdmissionState AdmissionState::decode(ByteReader& r) {
  AdmissionState s;
  s.has_aimd = r.u8() != 0;
  s.aimd_limit = r.f64();
  const std::uint32_t n = r.u32();
  s.tenant_quotas.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t tenant = r.u32();
    const double quota = r.f64();
    s.tenant_quotas.emplace_back(tenant, quota);
  }
  return s;
}

std::string Snapshot::encode() const {
  ByteWriter w;
  w.u32(kMagic);
  w.u32(kVersion);
  w.f64(sim_time);
  w.u64(journal_position);
  controller.encode(w);
  admission.encode(w);
  return w.take();
}

Snapshot Snapshot::decode(std::string_view bytes) {
  ByteReader r(bytes);
  if (r.u32() != kMagic) {
    throw std::runtime_error("recovery: bad snapshot magic");
  }
  const std::uint32_t version = r.u32();
  if (version != kVersion) {
    throw std::runtime_error("recovery: unsupported snapshot version " +
                             std::to_string(version));
  }
  Snapshot snap;
  snap.sim_time = r.f64();
  snap.journal_position = r.u64();
  snap.controller = ControllerState::decode(r);
  snap.admission = AdmissionState::decode(r);
  if (!r.done()) {
    throw std::runtime_error("recovery: trailing bytes after snapshot");
  }
  return snap;
}

}  // namespace hit::core::recovery
