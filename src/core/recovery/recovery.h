// Crash recovery for the control plane (DESIGN.md §15).
//
// Ties the journal and snapshots together:
//
//   * replay()          — mechanical fold of one JournalRecord into a
//                         ControllerState / AdmissionState (plain data, no
//                         optimizer, no RNG: bit-identical by construction).
//   * RecoveryManager   — owns the journal + the latest snapshot, cuts
//                         snapshots on a record-count cadence, rebuilds the
//                         state at any journal prefix, and restores a
//                         NetworkController after a crash.
//   * reconcile()       — after restore, compares the rebuilt state against
//                         the *live* network view (ground-truth failed and
//                         healthy elements the controller missed while it
//                         was down) and repairs divergence: evacuates flows
//                         routed by dead policies, readmits parked flows
//                         orphaned by the crash, lifts stale quarantines.
//                         Returns a typed ReconcileReport; `unreconciled`
//                         counts audit violations that survived repair
//                         (zero on a healthy recovery).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "core/controller.h"
#include "core/recovery/journal.h"
#include "core/recovery/snapshot.h"

namespace hit::core::recovery {

/// Fold one journal record into plain control-plane state.  Unknown flows /
/// nodes are created or ignored exactly the way the live controller would
/// have (records are effects, so a well-formed journal never references an
/// entity it did not install first).
void replay(ControllerState& controller, AdmissionState& admission,
            const JournalRecord& record);

/// Snapshot + journal-prefix rebuild result.
struct RebuiltState {
  ControllerState controller;
  AdmissionState admission;
  std::size_t replayed = 0;       ///< journal records folded after the snapshot
  bool from_snapshot = false;     ///< started from a snapshot (vs. empty state)
};

struct RecoveryManagerConfig {
  /// Cut a snapshot every N journal records (0 = only explicit snapshot()
  /// calls; recovery then replays the whole journal).
  std::size_t snapshot_every_records = 0;
};

class RecoveryManager {
 public:
  static constexpr std::size_t kFullJournal =
      std::numeric_limits<std::size_t>::max();

  explicit RecoveryManager(RecoveryManagerConfig config = {});

  [[nodiscard]] StateJournal& journal() noexcept { return journal_; }
  [[nodiscard]] const StateJournal& journal() const noexcept { return journal_; }

  /// Wire the journal into `controller` (controller.set_journal).
  void attach(NetworkController& controller) {
    controller.set_journal(&journal_);
  }

  /// Cut a snapshot of `controller` (plus the admission aux state accumulated
  /// from note_* calls) at the current journal position.
  void snapshot(const NetworkController& controller, double sim_time = 0.0);

  /// snapshot() iff `snapshot_every_records` have accumulated since the last
  /// cut.  Call after batches of controller mutations.  Returns true when a
  /// snapshot was cut.
  bool maybe_snapshot(const NetworkController& controller, double sim_time = 0.0);

  [[nodiscard]] bool has_snapshot() const noexcept { return has_snapshot_; }
  [[nodiscard]] const Snapshot& last_snapshot() const { return snapshot_; }
  [[nodiscard]] std::size_t snapshots_cut() const noexcept { return snapshots_; }

  /// Journal the admission side's state changes (the online simulator calls
  /// these when the AIMD controller moves its limit / quotas change).
  void note_aimd_limit(double limit);
  void note_tenant_quota(std::uint32_t tenant, double quota);

  /// Rebuild control-plane state as of journal record `prefix` (kFullJournal
  /// = everything).  Starts from the snapshot when it covers the prefix,
  /// from the empty state otherwise — so any (snapshot, prefix) pair yields
  /// the exact state the uncrashed controller had at that point.
  [[nodiscard]] RebuiltState rebuild(std::size_t prefix = kFullJournal) const;

  /// Crash-restart: rebuild from snapshot + full journal and load the result
  /// into `controller` (restore_state).  Returns the rebuild outcome.
  RebuiltState recover(NetworkController& controller) const;

 private:
  RecoveryManagerConfig config_;
  StateJournal journal_;
  Snapshot snapshot_;
  bool has_snapshot_ = false;
  std::size_t snapshots_ = 0;
  AdmissionState admission_;  ///< running aux state mirrored by note_* calls
};

// ---- reconciliation -------------------------------------------------------

enum class DivergenceKind : std::uint8_t {
  MissedFailure,    ///< live-failed switch the restored state routes through
  MissedRepair,     ///< switch repaired while the controller was down
  StaleQuarantine,  ///< quarantined switch that is live-healthy
  OrphanedParked,   ///< parked flow whose blocking condition is gone
  DeadDomain,       ///< active flow with an endpoint stranded in a
                    ///< fully-failed domain; repaired by a journaled park
  Unreconciled,     ///< audit violation that survived every repair
};

[[nodiscard]] const char* divergence_kind_name(DivergenceKind kind);

struct Divergence {
  DivergenceKind kind = DivergenceKind::MissedFailure;
  NodeId node;   ///< switch-scoped kinds
  FlowId flow;   ///< flow-scoped kinds
  bool repaired = false;
};

struct ReconcileReport {
  std::vector<Divergence> divergences;
  std::size_t flows_rerouted = 0;    ///< moved off newly-learned failures
  std::size_t flows_readmitted = 0;  ///< orphaned parked flows brought back
  std::size_t reinstated = 0;        ///< stale quarantines lifted
  std::size_t repairs = 0;           ///< total repair actions applied
  std::size_t unreconciled = 0;      ///< audit violations left at the end

  [[nodiscard]] bool clean() const noexcept { return unreconciled == 0; }
};

/// Ground truth the restarted controller reconciles against.
struct LiveView {
  std::vector<NodeId> failed_switches;   ///< actually down right now
  std::vector<NodeId> healthy_switches;  ///< verified healthy (clears quarantine)
};

/// Audit the restored controller against `live` and repair divergence.
/// Mutates the controller (fail/recover/reinstate/readmit); every action is
/// journaled through the controller's attached journal, so a post-reconcile
/// crash recovers to the reconciled state.
ReconcileReport reconcile(NetworkController& controller, const LiveView& live);

}  // namespace hit::core::recovery
