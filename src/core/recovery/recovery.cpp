#include "core/recovery/recovery.h"

#include <algorithm>

#include "obs/context.h"

namespace hit::core::recovery {
namespace {

FlowEntryState* find_flow(ControllerState& state, FlowId id) {
  for (FlowEntryState& e : state.flows) {
    if (e.flow.id == id) return &e;
  }
  return nullptr;
}

void erase_node(std::vector<NodeId>& nodes, NodeId node) {
  nodes.erase(std::remove(nodes.begin(), nodes.end(), node), nodes.end());
}

template <typename V>
V* find_pair(std::vector<std::pair<NodeId, V>>& pairs, NodeId node) {
  for (auto& [n, v] : pairs) {
    if (n == node) return &v;
  }
  return nullptr;
}

template <typename V>
void erase_pair(std::vector<std::pair<NodeId, V>>& pairs, NodeId node) {
  pairs.erase(std::remove_if(pairs.begin(), pairs.end(),
                             [node](const auto& p) { return p.first == node; }),
              pairs.end());
}

}  // namespace

void replay(ControllerState& controller, AdmissionState& admission,
            const JournalRecord& record) {
  switch (record.kind) {
    case RecordKind::Install: {
      FlowEntryState e;
      e.flow = record.flow;
      e.policy = record.policy;
      e.src = record.src;
      e.dst = record.dst;
      e.parked = false;
      e.charged_rate = record.value;
      controller.flows.push_back(std::move(e));
      break;
    }
    case RecordKind::Evict: {
      controller.flows.erase(
          std::remove_if(controller.flows.begin(), controller.flows.end(),
                         [&](const FlowEntryState& e) {
                           return e.flow.id == record.flow.id;
                         }),
          controller.flows.end());
      break;
    }
    case RecordKind::Park: {
      if (FlowEntryState* e = find_flow(controller, record.flow.id)) {
        e->parked = true;
        e->charged_rate = 0.0;
      }
      break;
    }
    case RecordKind::Readmit: {
      if (FlowEntryState* e = find_flow(controller, record.flow.id)) {
        e->parked = false;
        e->policy = record.policy;
        e->charged_rate = record.value;
      }
      break;
    }
    case RecordKind::Reroute: {
      if (FlowEntryState* e = find_flow(controller, record.flow.id)) {
        e->policy = record.policy;
        e->charged_rate = record.value;
      }
      break;
    }
    case RecordKind::Fail: {
      if (std::find(controller.failed.begin(), controller.failed.end(),
                    record.node) == controller.failed.end()) {
        controller.failed.push_back(record.node);
      }
      break;
    }
    case RecordKind::Recover: {
      erase_node(controller.failed, record.node);
      break;
    }
    case RecordKind::Quarantine: {
      if (find_pair(controller.quarantined, record.node) == nullptr) {
        controller.quarantined.emplace_back(record.node, 0u);
      }
      break;
    }
    case RecordKind::Probe: {
      if (std::uint32_t* streak = find_pair(controller.quarantined, record.node)) {
        *streak = record.value > 0.0 ? *streak + 1 : 0u;
      }
      break;
    }
    case RecordKind::Reinstate: {
      erase_pair(controller.quarantined, record.node);
      break;
    }
    case RecordKind::Drain: {
      if (find_pair(controller.draining, record.node) == nullptr) {
        controller.draining.emplace_back(record.node, record.value);
      }
      break;
    }
    case RecordKind::Undrain: {
      erase_pair(controller.draining, record.node);
      break;
    }
    case RecordKind::AimdLimit: {
      admission.has_aimd = true;
      admission.aimd_limit = record.value;
      break;
    }
    case RecordKind::TenantQuota: {
      for (auto& [tenant, quota] : admission.tenant_quotas) {
        if (tenant == record.tenant) {
          quota = record.value;
          return;
        }
      }
      admission.tenant_quotas.emplace_back(record.tenant, record.value);
      break;
    }
  }
}

RecoveryManager::RecoveryManager(RecoveryManagerConfig config)
    : config_(config) {}

void RecoveryManager::snapshot(const NetworkController& controller,
                               double sim_time) {
  snapshot_.sim_time = sim_time;
  snapshot_.journal_position = journal_.size();
  snapshot_.controller = controller.export_state();
  snapshot_.admission = admission_;
  std::sort(snapshot_.admission.tenant_quotas.begin(),
            snapshot_.admission.tenant_quotas.end());
  has_snapshot_ = true;
  ++snapshots_;
  obs::count("recovery.snapshots");
  obs::gauge_set("recovery.snapshot_flows",
                 static_cast<double>(snapshot_.controller.flows.size()));
  obs::gauge_set("recovery.journal_records",
                 static_cast<double>(journal_.size()));
  obs::gauge_set("recovery.journal_bytes", static_cast<double>(journal_.bytes()));
}

bool RecoveryManager::maybe_snapshot(const NetworkController& controller,
                                     double sim_time) {
  if (config_.snapshot_every_records == 0) return false;
  const std::size_t since =
      journal_.size() - (has_snapshot_ ? snapshot_.journal_position : 0);
  if (since < config_.snapshot_every_records) return false;
  snapshot(controller, sim_time);
  return true;
}

void RecoveryManager::note_aimd_limit(double limit) {
  admission_.has_aimd = true;
  admission_.aimd_limit = limit;
  JournalRecord rec;
  rec.kind = RecordKind::AimdLimit;
  rec.value = limit;
  journal_.append(std::move(rec));
}

void RecoveryManager::note_tenant_quota(std::uint32_t tenant, double quota) {
  bool found = false;
  for (auto& [t, q] : admission_.tenant_quotas) {
    if (t == tenant) {
      q = quota;
      found = true;
      break;
    }
  }
  if (!found) admission_.tenant_quotas.emplace_back(tenant, quota);
  JournalRecord rec;
  rec.kind = RecordKind::TenantQuota;
  rec.tenant = tenant;
  rec.value = quota;
  journal_.append(std::move(rec));
}

RebuiltState RecoveryManager::rebuild(std::size_t prefix) const {
  RebuiltState out;
  const std::size_t limit = std::min(prefix, journal_.size());
  std::size_t start = 0;
  if (has_snapshot_ && snapshot_.journal_position <= limit) {
    out.controller = snapshot_.controller;
    out.admission = snapshot_.admission;
    out.from_snapshot = true;
    start = static_cast<std::size_t>(snapshot_.journal_position);
  }
  for (std::size_t i = start; i < limit; ++i) {
    replay(out.controller, out.admission, journal_.records()[i]);
    ++out.replayed;
  }
  out.controller.canonicalize();
  std::sort(out.admission.tenant_quotas.begin(),
            out.admission.tenant_quotas.end());
  return out;
}

RebuiltState RecoveryManager::recover(NetworkController& controller) const {
  RebuiltState rebuilt = rebuild();
  controller.restore_state(rebuilt.controller);
  obs::count("recovery.recoveries");
  obs::count("recovery.replayed_records", rebuilt.replayed);
  obs::observe("recovery.replayed_per_recover",
               static_cast<double>(rebuilt.replayed));
  return rebuilt;
}

const char* divergence_kind_name(DivergenceKind kind) {
  switch (kind) {
    case DivergenceKind::MissedFailure: return "missed-failure";
    case DivergenceKind::MissedRepair: return "missed-repair";
    case DivergenceKind::StaleQuarantine: return "stale-quarantine";
    case DivergenceKind::OrphanedParked: return "orphaned-parked";
    case DivergenceKind::DeadDomain: return "dead-domain";
    case DivergenceKind::Unreconciled: return "unreconciled";
  }
  return "unknown";
}

ReconcileReport reconcile(NetworkController& controller, const LiveView& live) {
  ReconcileReport report;

  // 1. Failures the controller slept through: its restored state still
  //    routes flows across switches that are down right now.  fail() both
  //    records the failure and evacuates (reroute or park) every crossing
  //    flow.
  for (NodeId sw : live.failed_switches) {
    if (controller.failed(sw)) continue;
    const std::size_t rerouted = controller.fail(sw);
    report.flows_rerouted += rerouted;
    report.repairs += 1;
    report.divergences.push_back(
        {DivergenceKind::MissedFailure, sw, FlowId{}, true});
  }

  // 2. Repairs it slept through: switches it believes are down but are live
  //    again.  recover() readmits any parked flows that were waiting on them.
  for (NodeId sw : controller.failed_switches()) {
    const bool live_failed =
        std::find(live.failed_switches.begin(), live.failed_switches.end(),
                  sw) != live.failed_switches.end();
    if (live_failed) continue;
    const std::size_t readmitted = controller.recover(sw);
    report.flows_readmitted += readmitted;
    report.repairs += 1;
    report.divergences.push_back(
        {DivergenceKind::MissedRepair, sw, FlowId{}, true});
  }

  // 3. Stale quarantine penalties: suspects verified healthy while the
  //    controller was down keep paying the Dijkstra penalty until reinstated.
  for (NodeId sw : controller.quarantined_switches()) {
    const bool healthy =
        std::find(live.healthy_switches.begin(), live.healthy_switches.end(),
                  sw) != live.healthy_switches.end();
    if (!healthy) continue;
    controller.reinstate(sw);
    report.reinstated += 1;
    report.repairs += 1;
    report.divergences.push_back(
        {DivergenceKind::StaleQuarantine, sw, FlowId{}, true});
  }

  // 4. Orphaned parked flows: parked before (or during) the crash, with the
  //    blocking condition now gone.  readmit_parked() restores every one
  //    with an alive route; the rest stay parked (legitimately — no route).
  const std::vector<FlowId> parked_before = controller.parked();
  if (!parked_before.empty()) {
    const std::size_t readmitted = controller.readmit_parked();
    if (readmitted > 0) {
      const std::vector<FlowId> parked_after = controller.parked();
      for (FlowId f : parked_before) {
        const bool still_parked =
            std::find(parked_after.begin(), parked_after.end(), f) !=
            parked_after.end();
        if (still_parked) continue;
        report.divergences.push_back(
            {DivergenceKind::OrphanedParked, NodeId{}, f, true});
      }
      report.flows_readmitted += readmitted;
      report.repairs += readmitted;
    }
  }

  // 5. Flows stranded behind a fully-failed domain: the installed path is
  //    formally alive (no listed switch failed) but the endpoint's entire
  //    rack/pod is dark, so the flow cannot carry traffic.  Park it — the
  //    park is journaled, so a second crash replays the repair instead of
  //    rediscovering it.
  for (const AuditViolation& v : controller.audit_violations()) {
    if (v.kind != AuditViolationKind::DeadDomain) continue;
    if (!controller.park(v.flow)) continue;
    report.repairs += 1;
    report.divergences.push_back(
        {DivergenceKind::DeadDomain, v.node, v.flow, true});
  }

  // 6. Whatever inconsistency survived the repairs is unreconciled — a clean
  //    recovery ends with zero.
  for (const AuditViolation& v : controller.audit_violations()) {
    report.divergences.push_back(
        {DivergenceKind::Unreconciled, v.node, v.flow, false});
    report.unreconciled += 1;
  }

  obs::count("recovery.reconciles");
  obs::count("recovery.reconcile_repairs", report.repairs);
  obs::count("recovery.reconcile_unreconciled", report.unreconciled);
  return report;
}

}  // namespace hit::core::recovery
