#include "core/recovery/journal.h"

#include <bit>
#include <cstring>

namespace hit::core::recovery {

void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

std::uint8_t ByteReader::u8() {
  if (pos_ >= bytes_.size()) {
    throw std::runtime_error("recovery: truncated byte stream");
  }
  return static_cast<std::uint8_t>(bytes_[pos_++]);
}

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

std::string ByteReader::str() {
  const std::uint32_t n = u32();
  if (remaining() < n) {
    throw std::runtime_error("recovery: truncated byte stream");
  }
  std::string s(bytes_.substr(pos_, n));
  pos_ += n;
  return s;
}

const char* record_kind_name(RecordKind kind) {
  switch (kind) {
    case RecordKind::Install: return "install";
    case RecordKind::Evict: return "evict";
    case RecordKind::Park: return "park";
    case RecordKind::Readmit: return "readmit";
    case RecordKind::Reroute: return "reroute";
    case RecordKind::Fail: return "fail";
    case RecordKind::Recover: return "recover";
    case RecordKind::Quarantine: return "quarantine";
    case RecordKind::Probe: return "probe";
    case RecordKind::Reinstate: return "reinstate";
    case RecordKind::Drain: return "drain";
    case RecordKind::Undrain: return "undrain";
    case RecordKind::AimdLimit: return "aimd-limit";
    case RecordKind::TenantQuota: return "tenant-quota";
  }
  return "unknown";
}

void encode_flow(ByteWriter& w, const net::Flow& f) {
  w.id(f.id);
  w.id(f.job);
  w.id(f.src_task);
  w.id(f.dst_task);
  w.f64(f.size_gb);
  w.f64(f.rate);
  w.u8(f.priority);
  w.u32(f.tenant);
}

net::Flow decode_flow(ByteReader& r) {
  net::Flow f;
  f.id = r.id<FlowTag>();
  f.job = r.id<JobTag>();
  f.src_task = r.id<TaskTag>();
  f.dst_task = r.id<TaskTag>();
  f.size_gb = r.f64();
  f.rate = r.f64();
  f.priority = r.u8();
  f.tenant = r.u32();
  return f;
}

void encode_policy(ByteWriter& w, const net::Policy& p) {
  w.id(p.id);
  w.id(p.flow);
  w.u32(static_cast<std::uint32_t>(p.list.size()));
  for (NodeId n : p.list) w.id(n);
  w.u32(static_cast<std::uint32_t>(p.type.size()));
  for (topo::Tier t : p.type) w.u8(static_cast<std::uint8_t>(t));
}

net::Policy decode_policy(ByteReader& r) {
  net::Policy p;
  p.id = r.id<PolicyTag>();
  p.flow = r.id<FlowTag>();
  const std::uint32_t nl = r.u32();
  p.list.reserve(nl);
  for (std::uint32_t i = 0; i < nl; ++i) p.list.push_back(r.id<NodeTag>());
  const std::uint32_t nt = r.u32();
  p.type.reserve(nt);
  for (std::uint32_t i = 0; i < nt; ++i) {
    p.type.push_back(static_cast<topo::Tier>(r.u8()));
  }
  return p;
}

void JournalRecord::encode(ByteWriter& w) const {
  w.u8(static_cast<std::uint8_t>(kind));
  encode_flow(w, flow);
  encode_policy(w, policy);
  w.id(src);
  w.id(dst);
  w.id(node);
  w.f64(value);
  w.u32(tenant);
}

JournalRecord JournalRecord::decode(ByteReader& r) {
  JournalRecord rec;
  rec.kind = static_cast<RecordKind>(r.u8());
  rec.flow = decode_flow(r);
  rec.policy = decode_policy(r);
  rec.src = r.id<NodeTag>();
  rec.dst = r.id<NodeTag>();
  rec.node = r.id<NodeTag>();
  rec.value = r.f64();
  rec.tenant = r.u32();
  return rec;
}

void StateJournal::append(JournalRecord record) {
  ByteWriter w;
  record.encode(w);
  body_bytes_ += w.bytes().size();
  records_.push_back(std::move(record));
}

std::string StateJournal::encode() const {
  ByteWriter w;
  w.u32(kMagic);
  w.u32(kVersion);
  w.u32(static_cast<std::uint32_t>(records_.size()));
  for (const JournalRecord& rec : records_) rec.encode(w);
  return w.take();
}

StateJournal StateJournal::decode(std::string_view bytes) {
  ByteReader r(bytes);
  if (r.u32() != kMagic) {
    throw std::runtime_error("recovery: bad journal magic");
  }
  const std::uint32_t version = r.u32();
  if (version != kVersion) {
    throw std::runtime_error("recovery: unsupported journal version " +
                             std::to_string(version));
  }
  const std::uint32_t count = r.u32();
  StateJournal journal;
  for (std::uint32_t i = 0; i < count; ++i) {
    journal.append(JournalRecord::decode(r));
  }
  if (!r.done()) {
    throw std::runtime_error("recovery: trailing bytes after journal");
  }
  return journal;
}

}  // namespace hit::core::recovery
