// Periodic control-plane snapshots (DESIGN.md §15).
//
// A Snapshot is a canonical, versioned serialization of everything the
// control plane would need to resume after losing its process: the
// NetworkController's flow/policy table (including parked entries and
// charged rates), its failed/draining/quarantined switch sets, and the
// admission side's AIMD limit + tenant quotas.  Snapshots remember the
// journal position they were cut at, so recovery is
//
//   state = snapshot.controller;  for r in journal[snapshot.position..]:
//     replay(state, r)
//
// ControllerState is *canonical*: every collection is sorted, so two states
// describing the same control plane encode to the same bytes regardless of
// hash-map iteration order.  That property is what the crash-at-every-prefix
// property test (and the warm standby's takeover check) compares on.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/recovery/journal.h"

namespace hit::core::recovery {

/// One flow's row in the controller table, as plain data.
struct FlowEntryState {
  net::Flow flow;
  net::Policy policy;
  NodeId src;
  NodeId dst;
  bool parked = false;
  double charged_rate = 0.0;

  void encode(ByteWriter& w) const;
  [[nodiscard]] static FlowEntryState decode(ByteReader& r);
};

/// The NetworkController's full mutable state as canonical plain data.
struct ControllerState {
  std::vector<FlowEntryState> flows;  ///< sorted by flow id
  std::vector<NodeId> failed;         ///< sorted
  /// Drain markers: switch -> absorbed residual load, sorted by switch.
  std::vector<std::pair<NodeId, double>> draining;
  /// Quarantined switches -> consecutive healthy-probe streak, sorted.
  std::vector<std::pair<NodeId, std::uint32_t>> quarantined;

  /// Sort every collection into canonical order (idempotent).
  void canonicalize();

  void encode(ByteWriter& w) const;
  [[nodiscard]] static ControllerState decode(ByteReader& r);
  /// Canonical standalone byte image (canonicalized first by the caller).
  [[nodiscard]] std::string encode() const;
};

/// Admission-control state journaled alongside the controller: the AIMD
/// limit and any per-tenant quota-weight overrides.
struct AdmissionState {
  bool has_aimd = false;
  double aimd_limit = 0.0;
  std::vector<std::pair<std::uint32_t, double>> tenant_quotas;  ///< sorted

  void encode(ByteWriter& w) const;
  [[nodiscard]] static AdmissionState decode(ByteReader& r);
};

/// A versioned point-in-time image of the control plane.
struct Snapshot {
  static constexpr std::uint32_t kMagic = 0x53544948;  // "HITS" little-endian
  static constexpr std::uint32_t kVersion = 1;

  double sim_time = 0.0;            ///< simulated time the snapshot was cut
  std::uint64_t journal_position = 0;  ///< records already folded in
  ControllerState controller;
  AdmissionState admission;

  [[nodiscard]] std::string encode() const;
  [[nodiscard]] static Snapshot decode(std::string_view bytes);
};

}  // namespace hit::core::recovery
