// Write-ahead journal for control-plane state (DESIGN.md §15).
//
// Every mutation the NetworkController applies to its policy tables — flow
// installs and evictions, park/readmit transitions, reroutes, switch
// fail/recover, quarantine/probe/reinstate, drain markers, and the admission
// side's AIMD-limit / tenant-quota moves — is recorded as one typed,
// append-only JournalRecord *after* the mutation succeeds.  Records carry the
// *effect* (the exact policy list installed, the exact charged rate), never
// the intent, so replay is a mechanical fold over plain data: no optimizer,
// no backoff loop, no RNG runs again, and a replayed state is bit-identical
// to the state the journal was written from.
//
// The encoding is byte-stable: fixed-width little-endian integers, doubles as
// IEEE-754 bit patterns, length-prefixed sequences, a versioned header.  Two
// encodes of equal journals are equal byte strings on every platform, which
// is what lets tests and the warm standby compare states with memcmp.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "network/flow.h"
#include "network/policy.h"
#include "util/ids.h"

namespace hit::core::recovery {

// ---- byte-stable codec ----------------------------------------------------

/// Appends little-endian fixed-width values to a byte string.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void f64(double v);  ///< IEEE-754 bit pattern as u64
  template <typename Tag>
  void id(Id<Tag> v) {
    u32(v.value());
  }
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.append(s);
  }

  [[nodiscard]] const std::string& bytes() const noexcept { return out_; }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Reads back what a ByteWriter wrote; throws std::runtime_error on
/// truncation so corrupt journals fail loudly instead of replaying garbage.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{u8()} << (8 * i);
    return v;
  }
  [[nodiscard]] std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{u8()} << (8 * i);
    return v;
  }
  [[nodiscard]] double f64();
  template <typename Tag>
  [[nodiscard]] Id<Tag> id() {
    return Id<Tag>{u32()};
  }
  [[nodiscard]] std::string str();

  [[nodiscard]] bool done() const noexcept { return pos_ == bytes_.size(); }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - pos_;
  }

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

// ---- journal records ------------------------------------------------------

enum class RecordKind : std::uint8_t {
  Install = 1,   ///< flow admitted: full flow + policy + endpoints
  Evict = 2,     ///< flow removed from the controller
  Park = 3,      ///< flow parked (uncharged, keeps last policy)
  Readmit = 4,   ///< parked flow readmitted on `policy`, recharged
  Reroute = 5,   ///< active flow moved to `policy` (charge follows)
  Fail = 6,      ///< switch marked failed
  Recover = 7,   ///< switch repaired
  Quarantine = 8,   ///< switch soft-quarantined (penalty applied)
  Probe = 9,        ///< healthy probe observed (streak +1)
  Reinstate = 10,   ///< switch left quarantine
  Drain = 11,       ///< drain marker placed (`value` = absorbed residual)
  Undrain = 12,     ///< drain marker removed
  AimdLimit = 13,   ///< admission AIMD limit moved to `value`
  TenantQuota = 14, ///< tenant `tenant` quota weight set to `value`
};

[[nodiscard]] const char* record_kind_name(RecordKind kind);

/// One journaled control-plane mutation.  Which fields are meaningful
/// depends on `kind`; unused fields stay default (and encode as such, so the
/// byte image is still canonical).
struct JournalRecord {
  RecordKind kind = RecordKind::Install;
  net::Flow flow;          ///< Install: full flow; flow ops: id only
  net::Policy policy;      ///< Install / Readmit / Reroute
  NodeId src;              ///< Install: source server
  NodeId dst;              ///< Install: destination server
  NodeId node;             ///< switch ops
  double value = 0.0;      ///< Drain absorbed / AimdLimit / TenantQuota
  std::uint32_t tenant = 0;  ///< TenantQuota

  void encode(ByteWriter& w) const;
  [[nodiscard]] static JournalRecord decode(ByteReader& r);
};

// Shared policy codec (snapshots reuse it).
void encode_policy(ByteWriter& w, const net::Policy& p);
[[nodiscard]] net::Policy decode_policy(ByteReader& r);
void encode_flow(ByteWriter& w, const net::Flow& f);
[[nodiscard]] net::Flow decode_flow(ByteReader& r);

/// Append-only, versioned record log.  `bytes()` tracks the encoded size
/// incrementally so journal-size gauges are O(1).
class StateJournal {
 public:
  static constexpr std::uint32_t kMagic = 0x4A544948;  // "HITJ" little-endian
  static constexpr std::uint32_t kVersion = 1;

  void append(JournalRecord record);

  [[nodiscard]] const std::vector<JournalRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }
  /// Encoded size (12-byte header + records) without re-encoding.
  [[nodiscard]] std::size_t bytes() const noexcept { return 12 + body_bytes_; }

  void clear() {
    records_.clear();
    body_bytes_ = 0;
  }

  /// Canonical byte image: magic, version, record count, records in order.
  [[nodiscard]] std::string encode() const;
  [[nodiscard]] static StateJournal decode(std::string_view bytes);

 private:
  std::vector<JournalRecord> records_;
  std::size_t body_bytes_ = 0;
};

}  // namespace hit::core::recovery
