// Scheduler registry: name -> factory.  One place that knows every
// scheduler, used by the CLI and by sweep harnesses; extend by registering
// at startup (no central edit needed for out-of-tree schedulers).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sched/scheduler.h"

namespace hit::core {

using sched::Scheduler;
using SchedulerFactory = std::function<std::unique_ptr<sched::Scheduler>()>;

class SchedulerRegistry {
 public:
  /// The process-wide registry, pre-populated with every built-in scheduler
  /// (capacity, capacity-ecmp, fair, pna, delay, random, hit, hit-greedy,
  /// hit-ls).
  static SchedulerRegistry& instance();

  /// Register (or replace) a factory under `name`.
  void register_factory(std::string name, SchedulerFactory factory);

  /// Instantiate by name; throws std::invalid_argument listing the known
  /// names when `name` is unknown.
  [[nodiscard]] std::unique_ptr<Scheduler> create(std::string_view name) const;

  [[nodiscard]] bool contains(std::string_view name) const;

  /// Registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  std::vector<std::pair<std::string, SchedulerFactory>> factories_;
};

}  // namespace hit::core
