#include "core/controller.h"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>

#include "core/recovery/journal.h"
#include "core/recovery/snapshot.h"
#include "obs/context.h"
#include "util/logging.h"

namespace hit::core {
namespace {

constexpr std::string_view kTag = "controller";

bool crosses(const net::Policy& policy, NodeId sw) {
  return std::find(policy.list.begin(), policy.list.end(), sw) !=
         policy.list.end();
}

recovery::JournalRecord flow_record(recovery::RecordKind kind, FlowId flow) {
  recovery::JournalRecord r;
  r.kind = kind;
  r.flow.id = flow;
  return r;
}

recovery::JournalRecord node_record(recovery::RecordKind kind, NodeId node,
                                    double value = 0.0) {
  recovery::JournalRecord r;
  r.kind = kind;
  r.node = node;
  r.value = value;
  return r;
}

}  // namespace

const char* audit_violation_kind_name(AuditViolationKind kind) {
  switch (kind) {
    case AuditViolationKind::UnsatisfiedPolicy: return "unsatisfied-policy";
    case AuditViolationKind::DeadPolicy: return "dead-policy";
    case AuditViolationKind::ParkedCharged: return "parked-charged";
    case AuditViolationKind::LoadMismatch: return "load-mismatch";
    case AuditViolationKind::DeadDomain: return "dead-domain";
  }
  return "unknown";
}

void NetworkController::journal_record(recovery::JournalRecord record) const {
  if (journal_) journal_->append(std::move(record));
}

NetworkController::NetworkController(const topo::Topology& topology,
                                     ControllerConfig config)
    : topology_(&topology),
      config_(config),
      load_(topology),
      optimizer_(topology, config.cost),
      breaker_(config.breaker) {
  if (config_.hot_threshold <= 0.0) {
    throw std::invalid_argument("NetworkController: hot_threshold must be positive");
  }
  if (config_.max_reroute_attempts == 0) {
    throw std::invalid_argument(
        "NetworkController: max_reroute_attempts must be positive");
  }
  if (config_.reroute_backoff <= 0.0 || config_.reroute_backoff > 1.0) {
    throw std::invalid_argument(
        "NetworkController: reroute_backoff must be in (0, 1]");
  }
  if (config_.quarantine_penalty < 1.0) {
    throw std::invalid_argument(
        "NetworkController: quarantine_penalty must be >= 1");
  }
  if (config_.probe_successes == 0) {
    throw std::invalid_argument(
        "NetworkController: probe_successes must be positive");
  }
}

void NetworkController::sync_quarantine_penalties() {
  std::vector<NodeId> penalized;
  penalized.reserve(quarantined_.size());
  for (const auto& [sw, streak] : quarantined_) penalized.push_back(sw);
  optimizer_.set_penalized(std::move(penalized), config_.quarantine_penalty);
}

std::size_t NetworkController::quarantine(NodeId sw) {
  if (!topology_->is_switch(sw)) {
    throw NotASwitch("NetworkController::quarantine: not a switch");
  }
  if (!quarantined_.emplace(sw, 0).second) return 0;  // idempotent
  journal_record(node_record(recovery::RecordKind::Quarantine, sw));
  sync_quarantine_penalties();
  const obs::Bind bind(observer_);
  obs::count("controller.quarantines");
  obs::host_instant("switch.quarantine", "controller",
                    {{"switch", topology_->info(sw).name}});
  HIT_LOG_INFO(kTag) << "switch " << topology_->info(sw).name
                     << " quarantined; re-optimizing crossing flows";

  // Soft evacuation: re-optimize each crossing flow under the penalty.  The
  // switch is NOT banned — a flow stays if every detour is still costlier
  // than the penalized route (e.g. the suspect is the only path).
  std::vector<Entry*> crossing;
  for (auto& [id, entry] : flows_) {
    if (!entry.parked && crosses(entry.policy, sw)) crossing.push_back(&entry);
  }
  std::stable_sort(crossing.begin(), crossing.end(),
                   [](const Entry* a, const Entry* b) {
                     if (a->flow.rate != b->flow.rate) {
                       return a->flow.rate > b->flow.rate;
                     }
                     return a->flow.id < b->flow.id;
                   });

  std::size_t moved = 0;
  for (Entry* entry : crossing) {
    load_.remove(entry->policy, entry->charged_rate);
    if (auto result = reroute_with_backoff(*entry)) {
      const bool changed = result->route.policy.list != entry->policy.list;
      if (changed) {
        entry->policy = std::move(result->route.policy);
        entry->charged_rate = result->admitted_rate;
        if (journal_) {
          recovery::JournalRecord rec;
          rec.kind = recovery::RecordKind::Reroute;
          rec.flow.id = entry->flow.id;
          rec.policy = entry->policy;
          rec.value = entry->charged_rate;
          journal_record(std::move(rec));
        }
        ++moved;
        obs::count("controller.quarantine_moves");
        obs::host_instant(
            "flow.quarantine_move", "controller",
            {{"flow", static_cast<std::int64_t>(entry->flow.id.value())}});
        HIT_LOG_INFO(kTag) << "flow " << entry->flow.id << " moved off suspect "
                           << topology_->info(sw).name;
      }
    }
    load_.assign(entry->policy, entry->charged_rate);
  }
  return moved;
}

bool NetworkController::probe(NodeId sw, bool healthy) {
  const auto it = quarantined_.find(sw);
  if (it == quarantined_.end()) return false;
  journal_record(node_record(recovery::RecordKind::Probe, sw, healthy ? 1.0 : 0.0));
  const obs::Bind bind(observer_);
  obs::count("controller.probes");
  obs::host_instant("switch.probe", "controller",
                    {{"switch", topology_->info(sw).name},
                     {"healthy", static_cast<std::int64_t>(healthy)}});
  if (!healthy) {
    it->second = 0;  // streak broken: stay quarantined
    return false;
  }
  if (++it->second < config_.probe_successes) return false;
  reinstate(sw);
  return true;
}

void NetworkController::reinstate(NodeId sw) {
  if (quarantined_.erase(sw) == 0) return;  // idempotent
  journal_record(node_record(recovery::RecordKind::Reinstate, sw));
  sync_quarantine_penalties();
  const obs::Bind bind(observer_);
  obs::count("controller.reinstatements");
  obs::host_instant("switch.reinstate", "controller",
                    {{"switch", topology_->info(sw).name}});
  HIT_LOG_INFO(kTag) << "switch " << topology_->info(sw).name << " reinstated";
}

std::vector<NodeId> NetworkController::quarantined_switches() const {
  std::vector<NodeId> out;
  out.reserve(quarantined_.size());
  for (const auto& [sw, streak] : quarantined_) out.push_back(sw);
  return out;  // std::map => already in id order
}

void NetworkController::install(const net::Flow& flow, net::Policy policy,
                                NodeId src, NodeId dst) {
  if (flows_.count(flow.id) > 0) {
    throw std::invalid_argument("NetworkController: flow already installed");
  }
  if (!policy.satisfied(*topology_, src, dst)) {
    throw std::invalid_argument("NetworkController: policy not satisfied");
  }
  for (NodeId sw : policy.list) {
    if (failed_.count(sw) > 0) {
      // Saturation and partition demand different caller reactions (retry
      // cheaper vs park until repair), so diagnose which one this is.
      if (!optimizer_.reachable(src, dst, banned_switches())) {
        throw EndpointsPartitioned(
            "NetworkController: endpoints partitioned by failed switch " +
            topology_->info(sw).name);
      }
      throw PathUnavailable("NetworkController: policy crosses failed switch " +
                            topology_->info(sw).name);
    }
  }
  const obs::Bind bind(observer_);
  obs::count("controller.installs");
  obs::host_instant("policy.install", "controller",
                    {{"flow", static_cast<std::int64_t>(flow.id.value())},
                     {"hops", static_cast<std::int64_t>(policy.list.size())},
                     {"rate", flow.rate}});
  load_.assign(policy, flow.rate);
  if (journal_) {
    recovery::JournalRecord rec;
    rec.kind = recovery::RecordKind::Install;
    rec.flow = flow;
    rec.policy = policy;
    rec.src = src;
    rec.dst = dst;
    rec.value = flow.rate;
    journal_record(std::move(rec));
  }
  flows_.emplace(flow.id, Entry{flow, std::move(policy), src, dst, false, flow.rate});
}

void NetworkController::remove(FlowId flow) {
  const auto it = flows_.find(flow);
  if (it == flows_.end()) {
    throw UnknownFlow("NetworkController: unknown flow");
  }
  const obs::Bind bind(observer_);
  obs::count("controller.evictions");
  obs::host_instant("policy.evict", "controller",
                    {{"flow", static_cast<std::int64_t>(flow.value())},
                     {"parked", static_cast<std::int64_t>(it->second.parked)}});
  if (!it->second.parked) load_.remove(it->second.policy, it->second.charged_rate);
  journal_record(flow_record(recovery::RecordKind::Evict, flow));
  flows_.erase(it);
}

bool NetworkController::installed(FlowId flow) const { return flows_.count(flow) > 0; }

const net::Policy& NetworkController::policy_of(FlowId flow) const {
  const auto it = flows_.find(flow);
  if (it == flows_.end()) {
    throw UnknownFlow("NetworkController: unknown flow");
  }
  return it->second.policy;
}

std::vector<NodeId> NetworkController::hot_switches() const {
  std::vector<NodeId> hot;
  for (NodeId w : topology_->switches()) {
    if (load_.utilization(w) > config_.hot_threshold || draining_.count(w) > 0) {
      hot.push_back(w);
    }
  }
  return hot;
}

void NetworkController::drain(NodeId sw) {
  if (!topology_->is_switch(sw)) {
    throw NotASwitch("NetworkController::drain: not a switch");
  }
  if (draining_.count(sw) > 0) return;
  const double absorbed = std::max(load_.residual(sw), 0.0);
  net::Policy marker;
  marker.list = {sw};
  marker.type = {topology_->tier(sw)};
  load_.assign(marker, absorbed);
  draining_.emplace(sw, absorbed);
  journal_record(node_record(recovery::RecordKind::Drain, sw, absorbed));
}

void NetworkController::undrain(NodeId sw) {
  const auto it = draining_.find(sw);
  if (it == draining_.end()) return;
  net::Policy marker;
  marker.list = {sw};
  marker.type = {topology_->tier(sw)};
  load_.remove(marker, it->second);
  draining_.erase(it);
  journal_record(node_record(recovery::RecordKind::Undrain, sw));
}

std::vector<NodeId> NetworkController::banned_switches() const {
  std::vector<NodeId> banned(failed_.begin(), failed_.end());
  for (const auto& [sw, absorbed] : draining_) banned.push_back(sw);
  std::sort(banned.begin(), banned.end());
  return banned;
}

std::optional<NetworkController::RerouteResult>
NetworkController::reroute_with_backoff(const Entry& entry) const {
  const CostModel cost(*topology_, config_.cost, &load_);
  const double metric = cost.metric(entry.flow);
  const std::vector<NodeId> banned = banned_switches();
  const NodeId srcs[] = {entry.src};
  const NodeId dsts[] = {entry.dst};
  if (!optimizer_.reachable(entry.src, entry.dst, banned)) {
    // Partitioned: no amount of rate backoff can find a route, so don't burn
    // the retry budget — park immediately and count the true cause.
    ++partition_parks_;
    const obs::Bind bind(observer_);
    obs::count("controller.partition_parks");
    return std::nullopt;
  }
  double rate = entry.flow.rate;
  for (std::size_t attempt = 0; attempt < config_.max_reroute_attempts;
       ++attempt) {
    auto route = optimizer_.optimal_route(srcs, dsts, entry.flow.id, rate,
                                          metric, load_, /*allow_local=*/true,
                                          banned);
    if (route) {
      if (attempt > 0) {
        HIT_LOG_INFO(kTag) << "flow " << entry.flow.id << " admitted at "
                           << rate << " after " << attempt << " backoffs";
      }
      return RerouteResult{std::move(*route), rate};
    }
    rate *= config_.reroute_backoff;  // throttle and retry
  }
  return std::nullopt;
}

std::size_t NetworkController::fail(NodeId sw) {
  if (!topology_->is_switch(sw)) {
    throw NotASwitch("NetworkController::fail: not a switch");
  }
  if (!failed_.insert(sw).second) return 0;  // idempotent
  journal_record(node_record(recovery::RecordKind::Fail, sw));
  const obs::Bind bind(observer_);
  obs::count("controller.switch_failures");
  obs::host_instant("switch.fail", "controller",
                    {{"switch", topology_->info(sw).name}});
  HIT_LOG_INFO(kTag) << "switch " << topology_->info(sw).name
                     << " failed; evacuating flows";

  // Crossing flows, heaviest first (mirrors rebalance ordering).
  std::vector<Entry*> crossing;
  for (auto& [id, entry] : flows_) {
    if (!entry.parked && crosses(entry.policy, sw)) crossing.push_back(&entry);
  }
  std::stable_sort(crossing.begin(), crossing.end(),
                   [](const Entry* a, const Entry* b) {
                     if (a->flow.rate != b->flow.rate) {
                       return a->flow.rate > b->flow.rate;
                     }
                     return a->flow.id < b->flow.id;
                   });

  std::size_t rerouted = 0;
  for (Entry* entry : crossing) {
    load_.remove(entry->policy, entry->charged_rate);
    if (auto result = reroute_with_backoff(*entry)) {
      entry->policy = std::move(result->route.policy);
      entry->charged_rate = result->admitted_rate;
      load_.assign(entry->policy, entry->charged_rate);
      if (journal_) {
        recovery::JournalRecord rec;
        rec.kind = recovery::RecordKind::Reroute;
        rec.flow.id = entry->flow.id;
        rec.policy = entry->policy;
        rec.value = entry->charged_rate;
        journal_record(std::move(rec));
      }
      ++rerouted;
      obs::count("controller.reroutes");
      obs::host_instant(
          "flow.reroute", "controller",
          {{"flow", static_cast<std::int64_t>(entry->flow.id.value())},
           {"rate", entry->charged_rate}});
      HIT_LOG_INFO(kTag) << "flow " << entry->flow.id << " rerouted off "
                         << topology_->info(sw).name;
    } else {
      entry->parked = true;
      entry->charged_rate = 0.0;
      journal_record(flow_record(recovery::RecordKind::Park, entry->flow.id));
      obs::count("controller.parked");
      obs::host_instant(
          "flow.park", "controller",
          {{"flow", static_cast<std::int64_t>(entry->flow.id.value())}});
      HIT_LOG_WARN(kTag) << "flow " << entry->flow.id
                         << " parked: no alive route after "
                         << config_.max_reroute_attempts << " attempts";
    }
  }
  return rerouted;
}

std::size_t NetworkController::recover(NodeId sw) {
  if (!topology_->is_switch(sw)) {
    throw NotASwitch("NetworkController::recover: not a switch");
  }
  if (failed_.erase(sw) == 0) return 0;  // idempotent
  journal_record(node_record(recovery::RecordKind::Recover, sw));
  const obs::Bind bind(observer_);
  obs::count("controller.switch_recoveries");
  obs::host_instant("switch.recover", "controller",
                    {{"switch", topology_->info(sw).name}});
  HIT_LOG_INFO(kTag) << "switch " << topology_->info(sw).name
                     << " recovered; re-admitting parked flows";

  // Parked flows in id order (deterministic re-admission).
  std::vector<Entry*> waiting;
  for (auto& [id, entry] : flows_) {
    if (entry.parked) waiting.push_back(&entry);
  }
  std::sort(waiting.begin(), waiting.end(), [](const Entry* a, const Entry* b) {
    return a->flow.id < b->flow.id;
  });

  const std::unordered_set<std::uint64_t> stranded = stranded_servers();
  std::size_t restored = 0;
  for (Entry* entry : waiting) {
    if (stranded.count(entry->src.value()) > 0 ||
        stranded.count(entry->dst.value()) > 0) {
      continue;  // endpoint's domain is still dark: the flow stays parked
    }
    if (auto result = reroute_with_backoff(*entry)) {
      entry->policy = std::move(result->route.policy);
      entry->parked = false;
      entry->charged_rate = result->admitted_rate;
      load_.assign(entry->policy, entry->charged_rate);
      if (journal_) {
        recovery::JournalRecord rec;
        rec.kind = recovery::RecordKind::Readmit;
        rec.flow.id = entry->flow.id;
        rec.policy = entry->policy;
        rec.value = entry->charged_rate;
        journal_record(std::move(rec));
      }
      ++restored;
      obs::count("controller.readmissions");
      obs::host_instant(
          "flow.readmit", "controller",
          {{"flow", static_cast<std::int64_t>(entry->flow.id.value())},
           {"rate", entry->charged_rate}});
      HIT_LOG_INFO(kTag) << "flow " << entry->flow.id << " re-admitted";
    }
  }
  return restored;
}

std::size_t NetworkController::parked_count() const {
  std::size_t n = 0;
  for (const auto& [id, entry] : flows_) n += entry.parked ? 1 : 0;
  return n;
}

std::vector<FlowId> NetworkController::parked() const {
  std::vector<FlowId> ids;
  for (const auto& [id, entry] : flows_) {
    if (entry.parked) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::size_t NetworkController::rebalance() {
  const obs::Bind bind(observer_);
  HIT_PROF_SCOPE("controller.rebalance");
  if (!breaker_.allow()) {
    obs::count("controller.rebalance_short_circuits");
    return 0;
  }
  const CostModel cost(*topology_, config_.cost, &load_);
  std::size_t rerouted = 0;

  for (std::size_t round = 0; round < config_.max_rounds; ++round) {
    const std::vector<NodeId> hot = hot_switches();
    if (hot.empty()) break;

    bool improved = false;
    for (NodeId w : hot) {
      // Flows crossing w, heaviest rate first.
      std::vector<Entry*> crossing;
      for (auto& [id, entry] : flows_) {
        if (!entry.parked && crosses(entry.policy, w)) {
          crossing.push_back(&entry);
        }
      }
      std::stable_sort(crossing.begin(), crossing.end(),
                       [](const Entry* a, const Entry* b) {
                         return a->flow.rate > b->flow.rate;
                       });

      const bool is_draining = draining_.count(w) > 0;
      // Every reroute must avoid every draining and failed switch, whichever
      // hot switch triggered it.
      const std::vector<NodeId> banned = banned_switches();
      for (Entry* entry : crossing) {
        // A draining switch stays a reroute target until empty; a merely hot
        // one only until it cools below the threshold.
        if (!is_draining && load_.utilization(w) <= config_.hot_threshold) {
          break;
        }
        // Evaluate alternatives with this flow's own charge removed; a
        // draining switch is banned outright, not merely priced up.
        load_.remove(entry->policy, entry->charged_rate);
        const double metric = cost.metric(entry->flow);
        const double current = cost.policy_cost(entry->policy, metric);
        const NodeId srcs[] = {entry->src};
        const NodeId dsts[] = {entry->dst};
        auto route = optimizer_.optimal_route(srcs, dsts, entry->flow.id,
                                              entry->charged_rate, metric, load_,
                                              /*allow_local=*/true, banned);
        const bool accept =
            route && route->policy.list != entry->policy.list &&
            (is_draining || route->cost < current - 1e-12);
        if (accept) {
          HIT_LOG_INFO(kTag) << "rebalance: flow " << entry->flow.id
                             << " moved off " << topology_->info(w).name;
          obs::count("controller.rebalance_moves");
          obs::host_instant(
              "flow.rebalance", "controller",
              {{"flow", static_cast<std::int64_t>(entry->flow.id.value())},
               {"off", topology_->info(w).name}});
          entry->policy = std::move(route->policy);
          if (journal_) {
            recovery::JournalRecord rec;
            rec.kind = recovery::RecordKind::Reroute;
            rec.flow.id = entry->flow.id;
            rec.policy = entry->policy;
            rec.value = entry->charged_rate;
            journal_record(std::move(rec));
          }
          ++rerouted;
          improved = true;
        }
        load_.assign(entry->policy, entry->charged_rate);
      }
    }
    if (!improved) break;
  }

  // Breaker outcome: did the sweeps actually relieve the pressure?  A switch
  // still over threshold (draining markers aside — those stay hot by design
  // until empty) means the optimization is spinning without relief.
  bool still_hot = false;
  for (NodeId w : topology_->switches()) {
    if (draining_.count(w) > 0) continue;
    if (load_.utilization(w) > config_.hot_threshold) {
      still_hot = true;
      break;
    }
  }
  if (still_hot) {
    breaker_.record_failure();
  } else {
    breaker_.record_success();
  }
  return rerouted;
}

std::uint32_t NetworkController::pick_shed_tenant(NodeId hottest) const {
  // Aggregate charged rate per tenant over every active flow (the DRF-style
  // "usage"), noting which tenants can actually relieve this switch.
  std::map<std::uint32_t, double> rate_of;
  std::set<std::uint32_t> on_hot;
  double total = 0.0;
  for (const auto& [id, entry] : flows_) {
    if (entry.parked) continue;
    rate_of[entry.flow.tenant] += entry.charged_rate;
    total += entry.charged_rate;
    if (crosses(entry.policy, hottest)) on_hot.insert(entry.flow.tenant);
  }
  if (on_hot.empty() || total <= 0.0) return ~0u;

  const auto weight_of = [&](std::uint32_t t) {
    return t < config_.tenant_weights.size() ? config_.tenant_weights[t] : 1.0;
  };
  double weight_sum = 0.0;
  for (const auto& [t, rate] : rate_of) weight_sum += weight_of(t);

  std::uint32_t pick = ~0u;
  double worst_overuse = -1.0;
  for (std::uint32_t t : on_hot) {
    const double entitlement = weight_of(t) / weight_sum;
    const double rate = rate_of[t];
    if (rate <= config_.tenant_floor * entitlement * total) continue;  // protected
    const double overuse = rate / entitlement;
    if (overuse > worst_overuse) {
      worst_overuse = overuse;
      pick = t;
    }
  }
  if (pick != ~0u) {
    obs::count("controller.tenant_sheds");
    obs::count("controller.tenant_shed." + std::to_string(pick));
  }
  return pick;
}

std::size_t NetworkController::shed_pressure() {
  const obs::Bind bind(observer_);
  HIT_PROF_SCOPE("controller.shed_pressure");
  std::size_t shed = 0;
  for (;;) {
    NodeId hottest;
    double worst = config_.hot_threshold;
    for (NodeId w : topology_->switches()) {
      if (draining_.count(w) > 0) continue;
      const double u = load_.utilization(w);
      if (u > worst) {
        worst = u;
        hottest = w;
      }
    }
    if (!hottest.valid()) break;

    // With tenant_aware_shed: restrict the victim scan to the tenant whose
    // installed rate most exceeds its entitlement, skipping tenants already
    // at their protected floor.  ~0u means "any tenant" (legacy order, also
    // the fallback when every tenant with flows here sits at its floor).
    std::uint32_t victim_tenant = ~0u;
    if (config_.tenant_aware_shed) {
      victim_tenant = pick_shed_tenant(hottest);
    }

    Entry* victim = nullptr;
    for (auto& [id, entry] : flows_) {
      if (entry.parked || !crosses(entry.policy, hottest)) continue;
      if (victim_tenant != ~0u && entry.flow.tenant != victim_tenant) continue;
      if (victim == nullptr) {
        victim = &entry;
        continue;
      }
      const bool better =
          entry.flow.priority != victim->flow.priority
              ? entry.flow.priority < victim->flow.priority
              : (entry.charged_rate != victim->charged_rate
                     ? entry.charged_rate > victim->charged_rate
                     : entry.flow.id < victim->flow.id);
      if (better) victim = &entry;
    }
    if (victim == nullptr) break;  // pressure is ambient, not ours to shed

    const auto park_one = [&](Entry& entry) {
      load_.remove(entry.policy, entry.charged_rate);
      entry.parked = true;
      entry.charged_rate = 0.0;
      journal_record(flow_record(recovery::RecordKind::Park, entry.flow.id));
      ++shed;
      obs::count("controller.pressure_sheds");
      obs::host_instant(
          "flow.pressure_shed", "controller",
          {{"flow", static_cast<std::int64_t>(entry.flow.id.value())},
           {"priority", static_cast<std::int64_t>(entry.flow.priority)},
           {"switch", topology_->info(hottest).name}});
      HIT_LOG_INFO(kTag) << "flow " << entry.flow.id << " parked to cool "
                         << topology_->info(hottest).name;
    };
    if (config_.coflow_aware) {
      // Whole-coflow shed: the victim's job loses every active flow, not
      // just the one crossing the hot switch — its reduce wave cannot use
      // the survivors anyway, and parking them cools the network faster.
      // Workflow stages widen the unit: a DAG's downstream stages are gated
      // on the victim stage regardless, so every flow of the victim's
      // *workflow* parks with it instead of leaving siblings to heat other
      // switches while the chain is stalled anyway.
      const JobId job = victim->flow.job;
      const std::uint32_t wf = victim->flow.workflow;
      for (auto& [id, entry] : flows_) {
        if (entry.parked) continue;
        const bool same_unit = wf != 0 ? entry.flow.workflow == wf
                                       : entry.flow.job == job;
        if (same_unit) park_one(entry);
      }
    } else {
      park_one(*victim);
    }
  }
  return shed;
}

std::size_t NetworkController::readmit_parked() {
  const obs::Bind bind(observer_);
  HIT_PROF_SCOPE("controller.readmit_parked");
  std::vector<Entry*> waiting;
  for (auto& [id, entry] : flows_) {
    if (entry.parked) waiting.push_back(&entry);
  }
  // A job's parked flows re-admit together: its reduce wave waits for the
  // slowest flow, so interleaving jobs only delays everyone.  Workflow
  // stages group one level wider — every stage of a DAG re-admits as one
  // unit, since downstream stages are gated on the upstream shuffle anyway.
  // Units are ordered by (best waiting priority desc, earliest waiting flow
  // id asc); flows inside a unit by id.  The unit key is a composite:
  // workflow-tagged flows key on the workflow id, standalone flows on the
  // JobId (the high bit keeps the two spaces apart).
  struct JobRank {
    std::uint8_t priority = 0;
    FlowId first;
  };
  const auto unit_of = [](const Entry* e) -> std::uint64_t {
    if (e->flow.workflow != 0) {
      return (std::uint64_t{1} << 63) | e->flow.workflow;
    }
    return e->flow.job.value();
  };
  std::unordered_map<std::uint64_t, JobRank> rank;
  for (const Entry* e : waiting) {
    auto [it, fresh] =
        rank.emplace(unit_of(e), JobRank{e->flow.priority, e->flow.id});
    if (!fresh) {
      it->second.priority = std::max(it->second.priority, e->flow.priority);
      it->second.first = std::min(it->second.first, e->flow.id);
    }
  }
  std::sort(waiting.begin(), waiting.end(), [&](const Entry* a, const Entry* b) {
    const JobRank& ra = rank.at(unit_of(a));
    const JobRank& rb = rank.at(unit_of(b));
    if (ra.priority != rb.priority) return ra.priority > rb.priority;
    if (ra.first != rb.first) return ra.first < rb.first;
    return a->flow.id < b->flow.id;
  });

  const std::unordered_set<std::uint64_t> stranded = stranded_servers();
  std::size_t restored = 0;
  for (Entry* entry : waiting) {
    if (stranded.count(entry->src.value()) > 0 ||
        stranded.count(entry->dst.value()) > 0) {
      continue;  // endpoint's domain is still dark: the flow stays parked
    }
    if (auto result = reroute_with_backoff(*entry)) {
      entry->policy = std::move(result->route.policy);
      entry->parked = false;
      entry->charged_rate = result->admitted_rate;
      load_.assign(entry->policy, entry->charged_rate);
      if (journal_) {
        recovery::JournalRecord rec;
        rec.kind = recovery::RecordKind::Readmit;
        rec.flow.id = entry->flow.id;
        rec.policy = entry->policy;
        rec.value = entry->charged_rate;
        journal_record(std::move(rec));
      }
      ++restored;
      obs::count("controller.readmissions");
      obs::host_instant(
          "flow.readmit", "controller",
          {{"flow", static_cast<std::int64_t>(entry->flow.id.value())},
           {"rate", entry->charged_rate}});
      HIT_LOG_INFO(kTag) << "flow " << entry->flow.id << " re-admitted";
    }
  }
  return restored;
}

double NetworkController::total_cost() const {
  const CostModel cost(*topology_, config_.cost, &load_);
  double total = 0.0;
  for (const auto& [id, entry] : flows_) {
    if (entry.parked) continue;
    total += cost.policy_cost(entry.policy, cost.metric(entry.flow));
  }
  return total;
}

std::unordered_set<std::uint64_t> NetworkController::stranded_servers() const {
  // Servers stranded inside a fully-failed domain: every switch of the
  // domain is down, so the server has no alive uplink even when an
  // installed path itself avoids the failed switches.  Domains with no
  // switches never strand anything.
  std::unordered_set<std::uint64_t> stranded;
  for (const DomainMembers& d : domains_) {
    if (d.switches.empty()) continue;
    const bool all_down =
        std::all_of(d.switches.begin(), d.switches.end(),
                    [&](NodeId sw) { return failed_.count(sw) > 0; });
    if (!all_down) continue;
    for (NodeId s : d.servers) stranded.insert(s.value());
  }
  return stranded;
}

std::vector<AuditViolation> NetworkController::audit_violations() const {
  std::vector<AuditViolation> violations;
  net::LoadTracker expected(*topology_);
  const std::unordered_set<std::uint64_t> stranded = stranded_servers();
  // Deterministic violation order: flows by id, then switches by id.
  std::vector<const Entry*> entries;
  entries.reserve(flows_.size());
  for (const auto& [id, entry] : flows_) entries.push_back(&entry);
  std::sort(entries.begin(), entries.end(), [](const Entry* a, const Entry* b) {
    return a->flow.id < b->flow.id;
  });
  for (const Entry* entry : entries) {
    if (entry->parked) {
      // Parked flows carry no route, but they must also carry no load: a
      // nonzero charge here is a ledger leak the old boolean audit let pass.
      if (entry->charged_rate != 0.0) {
        violations.push_back({AuditViolationKind::ParkedCharged,
                              entry->flow.id, NodeId{}, entry->charged_rate});
      }
      continue;
    }
    if (!entry->policy.satisfied(*topology_, entry->src, entry->dst)) {
      violations.push_back(
          {AuditViolationKind::UnsatisfiedPolicy, entry->flow.id, NodeId{}, 0.0});
    }
    for (NodeId sw : entry->policy.list) {
      if (failed_.count(sw) > 0) {
        violations.push_back(
            {AuditViolationKind::DeadPolicy, entry->flow.id, sw, 0.0});
        break;
      }
    }
    if (!stranded.empty()) {
      const NodeId endpoint = stranded.count(entry->src.value()) > 0
                                  ? entry->src
                                  : stranded.count(entry->dst.value()) > 0
                                        ? entry->dst
                                        : NodeId{};
      if (endpoint.valid()) {
        violations.push_back(
            {AuditViolationKind::DeadDomain, entry->flow.id, endpoint, 0.0});
      }
    }
    expected.assign(entry->policy, entry->charged_rate);
  }
  for (const auto& [sw, absorbed] : draining_) {
    net::Policy marker;
    marker.list = {sw};
    marker.type = {topology_->tier(sw)};
    expected.assign(marker, absorbed);
  }
  for (NodeId w : topology_->switches()) {
    const double delta = load_.load(w) - expected.load(w);
    if (std::abs(delta) > 1e-6) {
      violations.push_back({AuditViolationKind::LoadMismatch, FlowId{}, w, delta});
    }
  }
  return violations;
}

void NetworkController::audit() const {
  const std::vector<AuditViolation> violations = audit_violations();
  if (violations.empty()) return;
  const AuditViolation& first = violations.front();
  std::string what = "NetworkController::audit: ";
  what += audit_violation_kind_name(first.kind);
  if (first.flow.valid()) {
    what += " (flow " + std::to_string(first.flow.value()) + ")";
  }
  if (first.node.valid()) {
    what += " (switch " + topology_->info(first.node).name + ")";
  }
  if (violations.size() > 1) {
    what += " and " + std::to_string(violations.size() - 1) + " more";
  }
  throw std::logic_error(what);
}

std::vector<NodeId> NetworkController::failed_switches() const {
  std::vector<NodeId> out(failed_.begin(), failed_.end());
  std::sort(out.begin(), out.end());
  return out;
}

bool NetworkController::park(FlowId flow) {
  const auto it = flows_.find(flow);
  if (it == flows_.end()) {
    throw UnknownFlow("NetworkController::park: unknown flow");
  }
  Entry& entry = it->second;
  if (entry.parked) return false;  // idempotent
  load_.remove(entry.policy, entry.charged_rate);
  entry.parked = true;
  entry.charged_rate = 0.0;
  journal_record(flow_record(recovery::RecordKind::Park, flow));
  const obs::Bind bind(observer_);
  obs::count("controller.parked");
  obs::host_instant("flow.park", "controller",
                    {{"flow", static_cast<std::int64_t>(flow.value())}});
  HIT_LOG_WARN(kTag) << "flow " << flow << " parked explicitly";
  return true;
}

void NetworkController::set_domains(std::vector<DomainMembers> domains) {
  for (DomainMembers& d : domains) {
    std::sort(d.switches.begin(), d.switches.end());
    std::sort(d.servers.begin(), d.servers.end());
  }
  domains_ = std::move(domains);
}

recovery::ControllerState NetworkController::export_state() const {
  recovery::ControllerState state;
  state.flows.reserve(flows_.size());
  for (const auto& [id, entry] : flows_) {
    recovery::FlowEntryState e;
    e.flow = entry.flow;
    e.policy = entry.policy;
    e.src = entry.src;
    e.dst = entry.dst;
    e.parked = entry.parked;
    e.charged_rate = entry.charged_rate;
    state.flows.push_back(std::move(e));
  }
  state.failed.assign(failed_.begin(), failed_.end());
  state.draining.reserve(draining_.size());
  for (const auto& [sw, absorbed] : draining_) {
    state.draining.emplace_back(sw, absorbed);
  }
  state.quarantined.reserve(quarantined_.size());
  for (const auto& [sw, streak] : quarantined_) {
    state.quarantined.emplace_back(sw, static_cast<std::uint32_t>(streak));
  }
  state.canonicalize();
  return state;
}

void NetworkController::restore_state(const recovery::ControllerState& state) {
  flows_.clear();
  failed_.clear();
  draining_.clear();
  quarantined_.clear();
  load_ = net::LoadTracker(*topology_);

  for (const recovery::FlowEntryState& e : state.flows) {
    if (!e.parked) load_.assign(e.policy, e.charged_rate);
    flows_.emplace(e.flow.id,
                   Entry{e.flow, e.policy, e.src, e.dst, e.parked, e.charged_rate});
  }
  for (NodeId sw : state.failed) failed_.insert(sw);
  for (const auto& [sw, absorbed] : state.draining) {
    net::Policy marker;
    marker.list = {sw};
    marker.type = {topology_->tier(sw)};
    load_.assign(marker, absorbed);
    draining_.emplace(sw, absorbed);
  }
  for (const auto& [sw, streak] : state.quarantined) {
    quarantined_.emplace(sw, static_cast<std::size_t>(streak));
  }
  sync_quarantine_penalties();
  const obs::Bind bind(observer_);
  obs::count("controller.restores");
  obs::gauge_set("controller.restored_flows",
                 static_cast<double>(state.flows.size()));
}

}  // namespace hit::core
