#include "core/controller.h"

#include <algorithm>
#include <stdexcept>

namespace hit::core {

NetworkController::NetworkController(const topo::Topology& topology,
                                     ControllerConfig config)
    : topology_(&topology),
      config_(config),
      load_(topology),
      optimizer_(topology, config.cost) {
  if (config_.hot_threshold <= 0.0) {
    throw std::invalid_argument("NetworkController: hot_threshold must be positive");
  }
}

void NetworkController::install(const net::Flow& flow, net::Policy policy,
                                NodeId src, NodeId dst) {
  if (flows_.count(flow.id) > 0) {
    throw std::invalid_argument("NetworkController: flow already installed");
  }
  if (!policy.satisfied(*topology_, src, dst)) {
    throw std::invalid_argument("NetworkController: policy not satisfied");
  }
  load_.assign(policy, flow.rate);
  flows_.emplace(flow.id, Entry{flow, std::move(policy), src, dst});
}

void NetworkController::remove(FlowId flow) {
  const auto it = flows_.find(flow);
  if (it == flows_.end()) {
    throw std::out_of_range("NetworkController: unknown flow");
  }
  load_.remove(it->second.policy, it->second.flow.rate);
  flows_.erase(it);
}

bool NetworkController::installed(FlowId flow) const { return flows_.count(flow) > 0; }

const net::Policy& NetworkController::policy_of(FlowId flow) const {
  const auto it = flows_.find(flow);
  if (it == flows_.end()) {
    throw std::out_of_range("NetworkController: unknown flow");
  }
  return it->second.policy;
}

std::vector<NodeId> NetworkController::hot_switches() const {
  std::vector<NodeId> hot;
  for (NodeId w : topology_->switches()) {
    if (load_.utilization(w) > config_.hot_threshold || draining_.count(w) > 0) {
      hot.push_back(w);
    }
  }
  return hot;
}

void NetworkController::drain(NodeId sw) {
  if (!topology_->is_switch(sw)) {
    throw std::invalid_argument("NetworkController::drain: not a switch");
  }
  if (draining_.count(sw) > 0) return;
  const double absorbed = std::max(load_.residual(sw), 0.0);
  net::Policy marker;
  marker.list = {sw};
  marker.type = {topology_->tier(sw)};
  load_.assign(marker, absorbed);
  draining_.emplace(sw, absorbed);
}

void NetworkController::undrain(NodeId sw) {
  const auto it = draining_.find(sw);
  if (it == draining_.end()) return;
  net::Policy marker;
  marker.list = {sw};
  marker.type = {topology_->tier(sw)};
  load_.remove(marker, it->second);
  draining_.erase(it);
}

std::size_t NetworkController::rebalance() {
  const CostModel cost(*topology_, config_.cost, &load_);
  std::size_t rerouted = 0;

  for (std::size_t round = 0; round < config_.max_rounds; ++round) {
    const std::vector<NodeId> hot = hot_switches();
    if (hot.empty()) break;

    bool improved = false;
    for (NodeId w : hot) {
      // Flows crossing w, heaviest rate first.
      std::vector<Entry*> crossing;
      for (auto& [id, entry] : flows_) {
        if (std::find(entry.policy.list.begin(), entry.policy.list.end(), w) !=
            entry.policy.list.end()) {
          crossing.push_back(&entry);
        }
      }
      std::stable_sort(crossing.begin(), crossing.end(),
                       [](const Entry* a, const Entry* b) {
                         return a->flow.rate > b->flow.rate;
                       });

      const bool is_draining = draining_.count(w) > 0;
      // Every reroute must avoid every draining switch, whichever hot
      // switch triggered it.
      std::vector<NodeId> banned;
      for (const auto& [drained, absorbed] : draining_) banned.push_back(drained);
      for (Entry* entry : crossing) {
        // A draining switch stays a reroute target until empty; a merely hot
        // one only until it cools below the threshold.
        if (!is_draining && load_.utilization(w) <= config_.hot_threshold) {
          break;
        }
        // Evaluate alternatives with this flow's own charge removed; a
        // draining switch is banned outright, not merely priced up.
        load_.remove(entry->policy, entry->flow.rate);
        const double metric = cost.metric(entry->flow);
        const double current = cost.policy_cost(entry->policy, metric);
        const NodeId srcs[] = {entry->src};
        const NodeId dsts[] = {entry->dst};
        auto route = optimizer_.optimal_route(srcs, dsts, entry->flow.id,
                                              entry->flow.rate, metric, load_,
                                              /*allow_local=*/true, banned);
        const bool accept =
            route && route->policy.list != entry->policy.list &&
            (is_draining || route->cost < current - 1e-12);
        if (accept) {
          entry->policy = std::move(route->policy);
          ++rerouted;
          improved = true;
        }
        load_.assign(entry->policy, entry->flow.rate);
      }
    }
    if (!improved) break;
  }
  return rerouted;
}

double NetworkController::total_cost() const {
  const CostModel cost(*topology_, config_.cost, &load_);
  double total = 0.0;
  for (const auto& [id, entry] : flows_) {
    total += cost.policy_cost(entry.policy, cost.metric(entry.flow));
  }
  return total;
}

void NetworkController::audit() const {
  net::LoadTracker expected(*topology_);
  for (const auto& [id, entry] : flows_) {
    if (!entry.policy.satisfied(*topology_, entry.src, entry.dst)) {
      throw std::logic_error("NetworkController::audit: unsatisfied policy");
    }
    expected.assign(entry.policy, entry.flow.rate);
  }
  for (const auto& [sw, absorbed] : draining_) {
    net::Policy marker;
    marker.list = {sw};
    marker.type = {topology_->tier(sw)};
    expected.assign(marker, absorbed);
  }
  for (NodeId w : topology_->switches()) {
    if (std::abs(expected.load(w) - load_.load(w)) > 1e-6) {
      throw std::logic_error("NetworkController::audit: load ledger mismatch");
    }
  }
}

}  // namespace hit::core
