#include "core/registry.h"

#include <algorithm>
#include <stdexcept>

#include "core/hit_scheduler.h"
#include "core/local_search.h"
#include "sched/capacity_scheduler.h"
#include "sched/delay_scheduler.h"
#include "sched/fair_scheduler.h"
#include "sched/pna_scheduler.h"
#include "sched/random_scheduler.h"

namespace hit::core {

using sched::CapacityScheduler;
using sched::DelayScheduler;
using sched::FairScheduler;
using sched::PnaScheduler;
using sched::RandomScheduler;

SchedulerRegistry& SchedulerRegistry::instance() {
  static SchedulerRegistry registry = [] {
    SchedulerRegistry r;
    r.register_factory("capacity",
                       [] { return std::make_unique<CapacityScheduler>(); });
    r.register_factory("capacity-ecmp",
                       [] { return std::make_unique<CapacityScheduler>(true); });
    r.register_factory("fair", [] { return std::make_unique<FairScheduler>(); });
    r.register_factory("pna", [] { return std::make_unique<PnaScheduler>(); });
    r.register_factory("delay", [] { return std::make_unique<DelayScheduler>(); });
    r.register_factory("random", [] { return std::make_unique<RandomScheduler>(); });
    r.register_factory("hit", [] { return std::make_unique<HitScheduler>(); });
    r.register_factory("hit-greedy", [] {
      HitConfig config;
      config.use_stable_matching = false;
      return std::make_unique<HitScheduler>(config);
    });
    r.register_factory("hit-no-policy-opt", [] {
      HitConfig config;
      config.optimize_policies = false;
      return std::make_unique<HitScheduler>(config);
    });
    r.register_factory("hit-ls",
                       [] { return std::make_unique<HitLocalSearchScheduler>(); });
    return r;
  }();
  return registry;
}

void SchedulerRegistry::register_factory(std::string name, SchedulerFactory factory) {
  if (name.empty()) throw std::invalid_argument("registry: empty scheduler name");
  if (!factory) throw std::invalid_argument("registry: null factory");
  for (auto& [existing, f] : factories_) {
    if (existing == name) {
      f = std::move(factory);
      return;
    }
  }
  factories_.emplace_back(std::move(name), std::move(factory));
}

std::unique_ptr<Scheduler> SchedulerRegistry::create(std::string_view name) const {
  for (const auto& [existing, factory] : factories_) {
    if (existing == name) return factory();
  }
  std::string known;
  for (const std::string& n : names()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  throw std::invalid_argument("unknown scheduler '" + std::string(name) +
                              "' (known: " + known + ")");
}

bool SchedulerRegistry::contains(std::string_view name) const {
  for (const auto& [existing, factory] : factories_) {
    if (existing == name) return true;
  }
  return false;
}

std::vector<std::string> SchedulerRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace hit::core
