// Hit-Scheduler — the paper's contribution (§5.3, §6.3), as a pluggable
// sched::Scheduler.
//
// Initial-wave scheduling (§5.3.1): both flow endpoints are open.  Runs
// Algorithm 1 (PolicyOptimizer::build_preferences) to grade servers and
// tasks, Algorithm 2 (StableMatcher) to resolve the two-sided preferences
// into a placement, then routes every flow on its optimal residual-capacity
// path (largest flows first) and applies Eq. (4)/(5) substitution passes.
//
// Subsequent-wave scheduling (§5.3.2): reduce endpoints are fixed by an
// earlier wave; only map tasks are open.  Greedy O(n²): map tasks in
// decreasing shuffle-output order each take the feasible server minimizing
// the size-weighted switch-hop distance to their (fixed) reduce consumers.
//
// Ablation knobs mirror DESIGN.md §5: stable matching vs greedy assignment,
// and policy optimization on/off.
#pragma once

#include "core/cost_model.h"
#include "core/policy_optimizer.h"
#include "core/stable_matching.h"
#include "obs/context.h"
#include "sched/scheduler.h"

namespace hit::core {

struct HitConfig {
  CostConfig cost;
  /// Fallback breadth when no residual-capacity route exists.
  std::size_t route_choices = 4;
  /// Ablation: false = grade-greedy assignment instead of Algorithm 2.
  bool use_stable_matching = true;
  /// Ablation: false = shortest-path policies, no Alg. 1 routing.
  bool optimize_policies = true;
};

class HitScheduler final : public sched::Scheduler {
 public:
  explicit HitScheduler(HitConfig config = {}) : config_(config) {}

  [[nodiscard]] std::string_view name() const override { return "Hit"; }
  [[nodiscard]] sched::Assignment schedule(const sched::Problem& problem,
                                           Rng& rng) override;

  [[nodiscard]] const HitConfig& config() const noexcept { return config_; }

  /// Attach an observability context; `schedule()` binds it as the ambient
  /// context so that Algorithm 1/2 phases profile and count through it.
  /// Pass nullptr (default) to detach.
  void set_observer(const obs::Context* ctx) noexcept { observer_ = ctx; }

 private:
  [[nodiscard]] sched::Assignment initial_wave(const sched::Problem& problem) const;
  [[nodiscard]] sched::Assignment subsequent_wave(const sched::Problem& problem) const;

  /// Route all fully placed flows (largest first) on optimal residual paths,
  /// falling back to the shortest route when everything is saturated.
  void route_flows(const sched::Problem& problem, sched::Assignment& assignment) const;

  /// True when §5.3.2 applies: every open task is a map and every flow's
  /// destination is already fixed.
  [[nodiscard]] static bool is_subsequent_wave(const sched::Problem& problem);

  HitConfig config_;
  const obs::Context* observer_ = nullptr;
};

}  // namespace hit::core
