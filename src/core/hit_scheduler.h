// Hit-Scheduler — the paper's contribution (§5.3, §6.3), as a pluggable
// sched::Scheduler.
//
// Initial-wave scheduling (§5.3.1): both flow endpoints are open.  Runs
// Algorithm 1 (PolicyOptimizer::build_preferences) to grade servers and
// tasks, Algorithm 2 (StableMatcher) to resolve the two-sided preferences
// into a placement, then routes every flow on its optimal residual-capacity
// path (largest flows first) and applies Eq. (4)/(5) substitution passes.
//
// Subsequent-wave scheduling (§5.3.2): reduce endpoints are fixed by an
// earlier wave; only map tasks are open.  Greedy O(n²): map tasks in
// decreasing shuffle-output order each take the feasible server minimizing
// the size-weighted switch-hop distance to their (fixed) reduce consumers.
//
// Ablation knobs mirror DESIGN.md §5: stable matching vs greedy assignment,
// and policy optimization on/off.
#pragma once

#include <array>
#include <optional>

#include "coflow/coflow.h"
#include "core/budget.h"
#include "core/circuit_breaker.h"
#include "core/cost_model.h"
#include "core/policy_optimizer.h"
#include "core/stable_matching.h"
#include "obs/context.h"
#include "sched/scheduler.h"

namespace hit::core {

/// Degradation ladder tiers, in decreasing quality / cost order.  Under
/// overload the scheduler steps down the ladder instead of blowing its work
/// budget: Full joint optimization (Alg. 1 + Alg. 2), preference-matrix-only
/// grade-greedy placement, locality-greedy placement (PNA-style hop-distance
/// packing, no preference matrix), and finally uniform-random feasible
/// placement.
enum class LadderTier : std::uint8_t {
  Full = 0,
  PreferenceOnly = 1,
  LocalityGreedy = 2,
  Random = 3,
};
inline constexpr std::size_t kLadderTiers = 4;
[[nodiscard]] const char* ladder_tier_name(LadderTier tier);

/// Overload-degradation knobs.  Disabled by default: with `enabled == false`
/// the scheduler's output is bit-identical to the un-laddered path.
struct LadderConfig {
  bool enabled = false;
  /// Dijkstra node-expansion budget per wave, shared between Algorithm 1
  /// grading and flow routing (0 = unlimited).
  std::size_t route_budget = 0;
  /// Algorithm 2 proposal budget per wave (0 = unlimited).
  std::size_t proposal_budget = 0;
  /// Circuit breaker around the Full tier: consecutive budget blowouts open
  /// it, and while open waves serve from LocalityGreedy immediately.
  BreakerConfig breaker;
};

/// Cumulative account of which tier served each scheduled wave.
struct LadderStats {
  std::array<std::uint64_t, kLadderTiers> served{};  ///< waves per tier
  std::uint64_t budget_exhaustions = 0;  ///< Full-tier budget blowouts
  std::uint64_t breaker_skips = 0;       ///< waves short-circuited by the breaker
  /// Waves whose work budgets were shrunk because the wave belonged to an
  /// over-quota tenant while the AIMD controller reported overload pressure
  /// (Problem::overload_pressure / over_quota hints).
  std::uint64_t pressure_scaled_waves = 0;
  CircuitBreaker::Stats breaker;         ///< snapshot of breaker counters
};

struct HitConfig {
  CostConfig cost;
  /// Fallback breadth when no residual-capacity route exists.
  std::size_t route_choices = 4;
  /// Ablation: false = grade-greedy assignment instead of Algorithm 2.
  bool use_stable_matching = true;
  /// Ablation: false = shortest-path policies, no Alg. 1 routing.
  bool optimize_policies = true;
  /// Overload degradation ladder (off by default; see LadderConfig).
  LadderConfig ladder;
  /// Coflow-ordered routing (off by default — routing order is bit-identical
  /// to the per-flow largest-first pass).  When enabled, flows are routed
  /// coflow by coflow in the configured order, so the policy optimizer
  /// serves each coflow against the residual capacities the earlier coflows
  /// left behind.  SEBF uses a schedule-time proxy for Γ: the most loaded
  /// placed endpoint server (max over servers of shuffle bytes in + out).
  coflow::CoflowConfig coflow;
  /// Failure-domain spread soft constraint (0 = off, bit-identical output).
  /// After placement and before routing, a deterministic local-search pass
  /// moves map tasks between racks when the Eq. (10)-style utility gain
  /// `spread_weight x (reduction in same-rack map pairs of the job)` exceeds
  /// the shuffle-locality cost increase (flow size x switch-hop distance to
  /// the task's placed peers).  Larger weights cap the blast radius of a
  /// rack fault — fewer of a job's map outputs die together — at the price
  /// of longer shuffle paths.
  double spread_weight = 0.0;
};

class HitScheduler final : public sched::Scheduler {
 public:
  explicit HitScheduler(HitConfig config = {})
      : config_(config), breaker_(config_.ladder.breaker) {}

  [[nodiscard]] std::string_view name() const override { return "Hit"; }
  [[nodiscard]] sched::Assignment schedule(const sched::Problem& problem,
                                           Rng& rng) override;

  [[nodiscard]] const HitConfig& config() const noexcept { return config_; }

  /// Attach an observability context; `schedule()` binds it as the ambient
  /// context so that Algorithm 1/2 phases profile and count through it.
  /// Pass nullptr (default) to detach.
  void set_observer(const obs::Context* ctx) noexcept { observer_ = ctx; }

  /// Cumulative ladder accounting (all zero unless the ladder is enabled).
  [[nodiscard]] const LadderStats& ladder_stats() const noexcept {
    return ladder_stats_;
  }
  /// Tier that served the most recent initial wave (Full until a laddered
  /// wave has run).
  [[nodiscard]] LadderTier last_tier() const noexcept { return last_tier_; }
  [[nodiscard]] BreakerState breaker_state() const noexcept {
    return breaker_.state();
  }

 private:
  [[nodiscard]] sched::Assignment initial_wave(const sched::Problem& problem) const;
  [[nodiscard]] sched::Assignment subsequent_wave(const sched::Problem& problem) const;

  /// Initial wave under the degradation ladder: try Full within the work
  /// budgets, stepping down tiers on exhaustion; the circuit breaker skips
  /// straight to LocalityGreedy while open.
  [[nodiscard]] sched::Assignment laddered_wave(const sched::Problem& problem,
                                                Rng& rng);

  /// Grade-greedy placement from a (possibly partial) preference matrix,
  /// completing `partial` for tasks it does not cover.  nullopt when some
  /// task fits on no server.
  [[nodiscard]] std::optional<sched::Assignment> preference_only_wave(
      const sched::Problem& problem, const PreferenceMatrix& prefs,
      std::unordered_map<TaskId, ServerId> partial) const;

  /// Locality-greedy placement: heaviest shuffle participants first, each on
  /// the feasible server minimizing size-weighted switch-hop distance to its
  /// already-placed flow peers.  nullopt when some task fits nowhere.
  [[nodiscard]] std::optional<sched::Assignment> locality_greedy_wave(
      const sched::Problem& problem) const;

  /// Last rung: uniform-random feasible placement.  Throws when genuinely
  /// infeasible.
  [[nodiscard]] sched::Assignment random_wave(const sched::Problem& problem,
                                              Rng& rng) const;

  /// Record a laddered wave's serving tier and return its assignment.
  [[nodiscard]] sched::Assignment serve(LadderTier tier, sched::Assignment a);

  /// Route all fully placed flows (largest first) on optimal residual paths,
  /// falling back to the shortest route when everything is saturated.  With
  /// a `budget`, route searches abort on exhaustion and fall back the same
  /// way.
  void route_flows(const sched::Problem& problem, sched::Assignment& assignment,
                   WorkBudget* budget = nullptr) const;

  /// Domain-spread pass (no-op unless config_.spread_weight > 0): greedy
  /// capacity-checked single-task moves, heaviest shuffle producers first,
  /// accepted when the spread utility beats the locality penalty.  Runs on
  /// the placement before routing, so every wave type (initial, subsequent,
  /// every ladder tier) gets the same treatment.
  void apply_spread(const sched::Problem& problem,
                    sched::Assignment& assignment) const;

  /// True when §5.3.2 applies: every open task is a map and every flow's
  /// destination is already fixed.
  [[nodiscard]] static bool is_subsequent_wave(const sched::Problem& problem);

  HitConfig config_;
  const obs::Context* observer_ = nullptr;
  CircuitBreaker breaker_;
  LadderStats ladder_stats_;
  LadderTier last_tier_ = LadderTier::Full;
};

}  // namespace hit::core
