// Gray-failure detection: per-element health scores from flow progress.
//
// Crash failures announce themselves (a down switch breaks routes); gray
// failures do not — a switch silently running at 30% capacity still carries
// traffic, just slowly.  The controller therefore watches *throughput versus
// expectation*: each sampling round, every active flow reports the ratio of
// its observed rate to the rate it would get on healthy hardware, and the
// monitor folds those ratios into a per-switch / per-link EWMA score.
//
// Localization uses a max-fold: within one round an element keeps the BEST
// ratio among flows crossing it.  A genuinely degraded element slows *every*
// flow through it, so its max stays low; a healthy element on a path that is
// slow for other reasons usually also carries at least one near-nominal flow,
// so its max stays high.  Scores start optimistic (1.0) and an element is
// flagged suspect once it has enough samples and its EWMA falls below the
// configured ratio (optionally tightened by a population z-test).  Suspect
// status is sticky — the quarantine/probe loop, not fresh samples, decides
// when an element is trusted again (reset()).
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "network/bandwidth.h"
#include "topology/topology.h"
#include "util/ids.h"

namespace hit::core {

struct HealthConfig {
  double ewma_alpha = 0.2;     ///< weight of the newest sample
  double suspect_ratio = 0.75; ///< flag when EWMA score drops below this
  /// Optional population test: additionally require the score to sit more
  /// than `z_threshold` standard deviations below the mean score of all
  /// tracked elements.  0 disables the test (absolute threshold only).
  double z_threshold = 0.0;
  std::size_t min_samples = 4; ///< rounds observed before an element can flag
};

class HealthMonitor {
 public:
  /// Element key: same scheme as net::CapacityMap (switch = (node, node),
  /// link = sorted node pair).
  using Key = net::CapacityMap::Key;

  HealthMonitor(const topo::Topology& topology, HealthConfig config);

  /// One sampling round: begin_sample(), then note_path() once per active
  /// flow, then end_sample().  `ratio` is observed_rate / nominal_rate for
  /// the flow (clamped to [0, 1]); every switch and link on `path` keeps the
  /// best ratio seen this round.
  void begin_sample();
  void note_path(const topo::Path& path, double ratio);
  /// Fold the round into the EWMAs and return the keys that *newly* crossed
  /// the suspect threshold (sorted; empty when nothing changed).
  [[nodiscard]] std::vector<Key> end_sample();

  /// Current EWMA score of an element (1.0 when never sampled).
  [[nodiscard]] double score(Key key) const;
  [[nodiscard]] bool is_suspect(Key key) const;
  /// All currently-suspect keys, sorted.
  [[nodiscard]] std::vector<Key> suspects() const;

  /// Forget an element entirely (score, sample count, suspect flag) — called
  /// when the quarantine loop reinstates it so stale history cannot re-flag
  /// a repaired element.
  void reset(Key key);

  [[nodiscard]] static bool key_is_switch(Key key) noexcept {
    return (key >> 32) == (key & 0xFFFFFFFFull);
  }
  [[nodiscard]] static NodeId key_node(Key key) noexcept {
    return NodeId(static_cast<std::uint32_t>(key >> 32));
  }
  [[nodiscard]] static NodeId key_peer(Key key) noexcept {
    return NodeId(static_cast<std::uint32_t>(key & 0xFFFFFFFFull));
  }

 private:
  struct Track {
    double ewma = 1.0;
    std::size_t samples = 0;
    bool suspect = false;
  };

  const topo::Topology* topology_;
  HealthConfig config_;
  std::map<Key, Track> tracks_;   // std::map: deterministic iteration
  std::map<Key, double> round_;   // current round's per-element best ratio
  bool in_round_ = false;
};

}  // namespace hit::core
