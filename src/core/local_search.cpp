#include "core/local_search.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/policy_optimizer.h"
#include "network/load.h"

namespace hit::core {

std::optional<double> LocalSearchSolver::evaluate(const sched::Problem& problem,
                                                  sched::Assignment& assignment) const {
  const PolicyOptimizer optimizer(*problem.topology, config_.cost);
  net::LoadTracker load = problem.ambient_load
                              ? *problem.ambient_load
                              : net::LoadTracker(*problem.topology);
  const CostModel cost(*problem.topology, config_.cost, &load);

  std::vector<const net::Flow*> order;
  order.reserve(problem.flows.size());
  for (const net::Flow& f : problem.flows) order.push_back(&f);
  std::stable_sort(order.begin(), order.end(),
                   [](const net::Flow* a, const net::Flow* b) {
                     return a->size_gb > b->size_gb;
                   });

  assignment.policies.clear();
  double total = 0.0;
  for (const net::Flow* f : order) {
    const ServerId src = assignment.host(problem, f->src_task);
    const ServerId dst = assignment.host(problem, f->dst_task);
    if (!src.valid() || !dst.valid()) continue;
    if (src == dst) {
      net::Policy p;
      p.flow = f->id;
      assignment.policies[f->id] = std::move(p);
      continue;
    }
    const NodeId srcs[] = {problem.cluster->node_of(src)};
    const NodeId dsts[] = {problem.cluster->node_of(dst)};
    auto route = optimizer.optimal_route(srcs, dsts, f->id, f->rate,
                                         cost.metric(*f), load);
    if (!route) return std::nullopt;  // no feasible routing for this placement
    total += route->cost;
    load.assign(route->policy, f->rate);
    assignment.policies[f->id] = std::move(route->policy);
  }
  return total;
}

LocalSearchSolver::Result LocalSearchSolver::refine(
    const sched::Problem& problem, const sched::Assignment& seed) const {
  if (!problem.valid()) throw std::invalid_argument("LocalSearchSolver: invalid problem");
  std::size_t evaluations = 0;

  Result best;
  best.assignment = seed;
  const auto seed_cost = evaluate(problem, best.assignment);
  if (!seed_cost) {
    throw std::invalid_argument("LocalSearchSolver: seed assignment not routable");
  }
  best.cost = *seed_cost;

  // Capacity ledger reflecting the current placement.
  auto build_ledger = [&](const sched::Assignment& a) {
    sched::UsageLedger ledger(problem);
    for (const sched::TaskRef& t : problem.tasks) {
      ledger.place(a.placement.at(t.id), t.demand);
    }
    return ledger;
  };

  for (std::size_t pass = 0; pass < config_.max_passes; ++pass) {
    bool improved = false;

    // Relocations (first-improvement per task; ledger rebuilt per task so
    // accepted moves are immediately reflected).
    for (const sched::TaskRef& task : problem.tasks) {
      const ServerId from = best.assignment.placement.at(task.id);
      sched::UsageLedger ledger = build_ledger(best.assignment);
      ledger.remove(from, task.demand);
      for (const cluster::Server& s : problem.cluster->servers()) {
        if (s.id == from || !ledger.can_host(s.id, task.demand)) continue;
        if (++evaluations > config_.max_evaluations) return best;
        sched::Assignment candidate = best.assignment;
        candidate.placement[task.id] = s.id;
        const auto cost = evaluate(problem, candidate);
        if (cost && *cost < best.cost - 1e-9) {
          best.assignment = std::move(candidate);
          best.cost = *cost;
          ++best.moves;
          improved = true;
          break;  // next task; ledger for this one is stale anyway
        }
      }
    }

    // Swaps.
    if (config_.enable_swaps) {
      for (std::size_t i = 0; i < problem.tasks.size() && !improved; ++i) {
        for (std::size_t j = i + 1; j < problem.tasks.size(); ++j) {
          const TaskId a = problem.tasks[i].id;
          const TaskId b = problem.tasks[j].id;
          const ServerId sa = best.assignment.placement.at(a);
          const ServerId sb = best.assignment.placement.at(b);
          if (sa == sb) continue;
          // Uniform-demand swap is always capacity-safe; otherwise check.
          if (!(problem.tasks[i].demand == problem.tasks[j].demand)) {
            sched::UsageLedger ledger = build_ledger(best.assignment);
            ledger.remove(sa, problem.tasks[i].demand);
            ledger.remove(sb, problem.tasks[j].demand);
            if (!ledger.can_host(sa, problem.tasks[j].demand) ||
                !ledger.can_host(sb, problem.tasks[i].demand)) {
              continue;
            }
          }
          if (++evaluations > config_.max_evaluations) return best;
          sched::Assignment candidate = best.assignment;
          candidate.placement[a] = sb;
          candidate.placement[b] = sa;
          const auto cost = evaluate(problem, candidate);
          if (cost && *cost < best.cost - 1e-9) {
            best.assignment = std::move(candidate);
            best.cost = *cost;
            ++best.moves;
            improved = true;
            break;
          }
        }
      }
    }
    if (!improved) break;
  }
  return best;
}

sched::Assignment HitLocalSearchScheduler::schedule(const sched::Problem& problem,
                                                    Rng& rng) {
  const sched::Assignment seed = hit_.schedule(problem, rng);
  return search_.refine(problem, seed).assignment;
}

}  // namespace hit::core
