// Centralized network controller — the runtime half of the paper's joint
// optimization.
//
// The paper's evaluation "implement[s] a centralized controller to collect
// all the network information and perform the policy optimization" (§7.1)
// over OpenFlow switches; related work (SIMPLE [25], FlowTags [10]) frames
// the same role in SDN terms.  This class is that controller: it owns every
// installed {flow, policy} pair, maintains the global per-switch load view,
// and — when utilization crosses a hot threshold — re-optimizes the policies
// of the flows crossing hot switches (the paper's Figure 2: move traffic off
// the overloaded w1), using the same Eq. (4)/(5) machinery as scheduling-
// time optimization.
#pragma once

#include <cstddef>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/cost_model.h"
#include "core/policy_optimizer.h"
#include "network/flow.h"
#include "network/load.h"
#include "network/policy.h"
#include "topology/topology.h"
#include "util/ids.h"

namespace hit::core {

struct ControllerConfig {
  CostConfig cost;
  /// Switch utilization above which the controller tries to shed flows.
  double hot_threshold = 0.9;
  /// Per-rebalance bound on optimization sweeps.
  std::size_t max_rounds = 4;
};

class NetworkController {
 public:
  explicit NetworkController(const topo::Topology& topology,
                             ControllerConfig config = {});

  /// Install a flow on a policy (must be satisfied for src/dst).  Charges
  /// the flow's rate to every switch on the path.
  void install(const net::Flow& flow, net::Policy policy, NodeId src, NodeId dst);

  /// Remove an installed flow, releasing its load.  Throws on unknown ids.
  void remove(FlowId flow);

  [[nodiscard]] bool installed(FlowId flow) const;
  [[nodiscard]] const net::Policy& policy_of(FlowId flow) const;
  [[nodiscard]] std::size_t installed_count() const { return flows_.size(); }
  [[nodiscard]] const net::LoadTracker& load() const noexcept { return load_; }

  /// Switches whose utilization exceeds the hot threshold.
  [[nodiscard]] std::vector<NodeId> hot_switches() const;

  /// Mark a switch as draining (maintenance): its residual capacity is
  /// absorbed so the optimizer treats it as unusable for new or rerouted
  /// flows, and `rebalance()` treats it as hot regardless of threshold.
  /// Idempotent; `undrain` restores it.
  void drain(NodeId sw);
  void undrain(NodeId sw);
  [[nodiscard]] bool draining(NodeId sw) const { return draining_.count(sw) > 0; }

  /// Re-optimize policies crossing hot switches: per hot switch, take its
  /// flows in decreasing rate order, uncharge each, search the optimal
  /// residual-capacity route for its (fixed) endpoints and re-install on
  /// whichever policy is cheaper.  Repeats up to max_rounds sweeps or until
  /// no switch is hot / nothing improves.  Returns the number of reroutes.
  std::size_t rebalance();

  /// Total shuffle cost of the installed policies under the current load.
  [[nodiscard]] double total_cost() const;

  /// Consistency check: every installed policy satisfied; the load ledger
  /// equals the sum of installed rates.  Throws std::logic_error otherwise.
  void audit() const;

 private:
  struct Entry {
    net::Flow flow;
    net::Policy policy;
    NodeId src;
    NodeId dst;
  };

  const topo::Topology* topology_;
  ControllerConfig config_;
  net::LoadTracker load_;
  PolicyOptimizer optimizer_;
  std::unordered_map<FlowId, Entry> flows_;
  /// Draining switches and the synthetic load absorbing their headroom.
  std::unordered_map<NodeId, double> draining_;
};

}  // namespace hit::core
