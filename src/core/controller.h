// Centralized network controller — the runtime half of the paper's joint
// optimization.
//
// The paper's evaluation "implement[s] a centralized controller to collect
// all the network information and perform the policy optimization" (§7.1)
// over OpenFlow switches; related work (SIMPLE [25], FlowTags [10]) frames
// the same role in SDN terms.  This class is that controller: it owns every
// installed {flow, policy} pair, maintains the global per-switch load view,
// and — when utilization crosses a hot threshold — re-optimizes the policies
// of the flows crossing hot switches (the paper's Figure 2: move traffic off
// the overloaded w1), using the same Eq. (4)/(5) machinery as scheduling-
// time optimization.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/circuit_breaker.h"
#include "core/cost_model.h"
#include "core/errors.h"
#include "core/policy_optimizer.h"
#include "obs/context.h"
#include "network/flow.h"
#include "network/load.h"
#include "network/policy.h"
#include "topology/topology.h"
#include "util/ids.h"

namespace hit::core {

namespace recovery {
class StateJournal;
struct JournalRecord;
struct ControllerState;
}  // namespace recovery

/// What audit_violations() can find (DESIGN.md §15: the reconciliation path
/// reuses the same typed list after a crash-restart).
enum class AuditViolationKind : std::uint8_t {
  UnsatisfiedPolicy,  ///< active policy not satisfied for its endpoints
  DeadPolicy,         ///< active policy crosses a failed switch
  ParkedCharged,      ///< parked flow still carries load in the ledger
  LoadMismatch,       ///< per-switch ledger != sum of active charged rates
  DeadDomain,         ///< active flow endpoint stranded in a fully-failed
                      ///< failure domain (every switch of the domain is down,
                      ///< so the endpoint server is unreachable even though no
                      ///< switch on the installed path failed directly)
};

[[nodiscard]] const char* audit_violation_kind_name(AuditViolationKind kind);

struct AuditViolation {
  AuditViolationKind kind = AuditViolationKind::UnsatisfiedPolicy;
  FlowId flow;         ///< flow-scoped kinds; invalid for LoadMismatch
  NodeId node;         ///< DeadPolicy / LoadMismatch switch; invalid otherwise
  double delta = 0.0;  ///< LoadMismatch: ledger - expected; ParkedCharged: charge
};

/// Plain membership view of one failure domain (rack, pod, ...) for the
/// controller's blast-radius audit.  Kept deliberately free of the sim-layer
/// DomainSet type: core must not depend on sim, so callers (the simulators,
/// tests) flatten whatever domain model they use into switch/server id lists.
struct DomainMembers {
  std::vector<NodeId> switches;
  std::vector<NodeId> servers;
};

struct ControllerConfig {
  CostConfig cost;
  /// Switch utilization above which the controller tries to shed flows.
  double hot_threshold = 0.9;
  /// Per-rebalance bound on optimization sweeps.
  std::size_t max_rounds = 4;
  /// Bounded retry for fault reroutes: each attempt demands `reroute_backoff`
  /// x the previous rate (modeling throttled re-admission), up to
  /// `max_reroute_attempts` tries before the flow is parked.
  std::size_t max_reroute_attempts = 3;
  double reroute_backoff = 0.5;
  /// Circuit breaker around rebalance(): consecutive sweeps that leave a
  /// switch over the hot threshold open it, and while open rebalance returns
  /// immediately (the fallback is simply the current policies).  Disabled by
  /// default.
  BreakerConfig breaker;
  /// Gray-failure quarantine: Dijkstra cost multiplier applied to suspect
  /// switches (soft avoidance — they stay routable, unlike failed ones).
  double quarantine_penalty = 4.0;
  /// Consecutive healthy probe results required before a quarantined switch
  /// is reinstated (the CircuitBreaker HalfOpen idea applied to elements).
  std::size_t probe_successes = 2;
  /// Park whole coflows: when true, `shed_pressure` parks every active flow
  /// of the victim's job (one job wave = one coflow) instead of a single
  /// flow — a reduce wave gains nothing from the flows left behind, and
  /// parking them too cools the network faster.  Off by default.
  bool coflow_aware = false;
  /// Tenant-aware overload shedding: `shed_pressure` first picks the *tenant*
  /// whose aggregate charged rate most exceeds its entitlement (weight share
  /// of `tenant_weights`; empty = uniform), then the legacy victim order
  /// (lowest priority, heaviest, lowest id) among that tenant's flows on the
  /// hottest switch.  Tenants at or below `tenant_floor` x entitlement of the
  /// total installed rate are protected — never chosen while any tenant is
  /// above its floor.  Off by default (legacy global victim order).
  bool tenant_aware_shed = false;
  std::vector<double> tenant_weights;
  double tenant_floor = 0.0;
};

class NetworkController {
 public:
  explicit NetworkController(const topo::Topology& topology,
                             ControllerConfig config = {});

  /// Install a flow on a policy (must be satisfied for src/dst).  Charges
  /// the flow's rate to every switch on the path.  Throws PathUnavailable
  /// when the policy crosses a failed switch.
  void install(const net::Flow& flow, net::Policy policy, NodeId src, NodeId dst);

  /// Remove an installed flow, releasing its load.  Throws UnknownFlow on
  /// unknown ids.
  void remove(FlowId flow);

  [[nodiscard]] bool installed(FlowId flow) const;
  [[nodiscard]] const net::Policy& policy_of(FlowId flow) const;
  [[nodiscard]] std::size_t installed_count() const { return flows_.size(); }
  [[nodiscard]] const net::LoadTracker& load() const noexcept { return load_; }

  /// Switches whose utilization exceeds the hot threshold.
  [[nodiscard]] std::vector<NodeId> hot_switches() const;

  /// Mark a switch as draining (maintenance): its residual capacity is
  /// absorbed so the optimizer treats it as unusable for new or rerouted
  /// flows, and `rebalance()` treats it as hot regardless of threshold.
  /// Idempotent; `undrain` restores it.
  void drain(NodeId sw);
  void undrain(NodeId sw);
  [[nodiscard]] bool draining(NodeId sw) const { return draining_.count(sw) > 0; }

  /// Unplanned failure: the switch is immediately unusable.  Every installed
  /// flow crossing it is uncharged and rerouted onto the optimal alive route
  /// with bounded retry-and-backoff (the demanded rate halves per attempt,
  /// modeling throttled re-admission); flows with no alive route are
  /// *parked* — they stay known but carry no load and no valid policy until
  /// `recover` finds them a path.  Idempotent.  Returns reroutes performed.
  std::size_t fail(NodeId sw);

  /// Repair: the switch is usable again and parked flows re-install on their
  /// optimal current route (same bounded retry).  Idempotent.  Returns the
  /// number of flows brought back from parked.
  std::size_t recover(NodeId sw);

  [[nodiscard]] bool failed(NodeId sw) const { return failed_.count(sw) > 0; }
  /// Failed switches in id order.
  [[nodiscard]] std::vector<NodeId> failed_switches() const;

  /// Gray suspicion: the switch stays usable but every route through it is
  /// priced up by `quarantine_penalty`, and installed flows crossing it are
  /// re-optimized (they move off only when a cheaper clean route exists — a
  /// soft evacuation, never a park).  Idempotent.  Returns flows moved.
  std::size_t quarantine(NodeId sw);

  /// One probe result against a quarantined switch.  `healthy` results count
  /// toward `config.probe_successes` consecutive passes; a failed probe
  /// resets the streak.  Returns true when the switch was reinstated by this
  /// probe.  No-op (returns false) when the switch is not quarantined.
  bool probe(NodeId sw, bool healthy);

  /// Lift the quarantine immediately (probe() calls this on the final pass).
  /// Idempotent.
  void reinstate(NodeId sw);

  [[nodiscard]] bool quarantined(NodeId sw) const {
    return quarantined_.count(sw) > 0;
  }
  /// Quarantined switches in id order.
  [[nodiscard]] std::vector<NodeId> quarantined_switches() const;

  [[nodiscard]] std::size_t parked_count() const;
  /// Parked flow ids in increasing order.
  [[nodiscard]] std::vector<FlowId> parked() const;

  /// Teach the controller the failure-domain memberships of the topology
  /// (typically every rack and pod).  audit_violations() then flags active
  /// flows whose src or dst endpoint sits inside a domain with every switch
  /// failed — a DeadDomain divergence: the installed path looks alive, but
  /// the endpoint is stranded behind a fully-dead rack.  Empty (default)
  /// disables the check.  Replaces any previous list.
  void set_domains(std::vector<DomainMembers> domains);
  [[nodiscard]] const std::vector<DomainMembers>& domains() const noexcept {
    return domains_;
  }

  /// Parks whose root cause was a partition (endpoints disconnected from each
  /// other through alive switches) rather than saturation — counted whenever
  /// reroute_with_backoff short-circuits on an unreachable endpoint pair.
  [[nodiscard]] std::size_t partition_parks() const noexcept {
    return partition_parks_;
  }

  /// Re-optimize policies crossing hot switches: per hot switch, take its
  /// flows in decreasing rate order, uncharge each, search the optimal
  /// residual-capacity route for its (fixed) endpoints and re-install on
  /// whichever policy is cheaper.  Repeats up to max_rounds sweeps or until
  /// no switch is hot / nothing improves.  Returns the number of reroutes.
  /// With `config.breaker.enabled`, a sweep that leaves a switch over the
  /// hot threshold counts as a failure; past the threshold the breaker opens
  /// and subsequent calls return 0 immediately until a half-open probe
  /// succeeds.
  std::size_t rebalance();

  /// Overload relief: while any switch sits over the hot threshold
  /// (draining markers excluded — that pressure is rebalance's job), park
  /// the lowest-priority flow crossing the hottest switch (ties: heaviest
  /// charged rate, then lowest id).  Parked flows stay installed but carry
  /// no load until `readmit_parked` or `recover` finds them a route.
  /// Returns the number of flows parked.
  std::size_t shed_pressure();

  /// Re-admit parked flows in decreasing priority order (ties: lowest id)
  /// onto their optimal current route with the usual bounded backoff.
  /// Returns the number restored.
  std::size_t readmit_parked();

  /// Park one flow explicitly: uncharge its load and leave it installed but
  /// routeless until recover()/readmit_parked() restores it.  Journaled, so a
  /// crash-restart replays the park.  The reconciliation path uses this to
  /// repair DeadDomain divergences (an endpoint stranded behind a fully-dead
  /// domain cannot carry traffic no matter what the path says).  Returns
  /// false (no-op) when already parked.  Throws UnknownFlow on unknown ids.
  bool park(FlowId flow);

  /// Rebalance breaker introspection (Closed and all-zero stats unless
  /// `config.breaker.enabled`).
  [[nodiscard]] const CircuitBreaker& breaker() const noexcept { return breaker_; }

  /// Total shuffle cost of the installed policies under the current load.
  [[nodiscard]] double total_cost() const;

  /// Consistency check as a typed list: every active policy satisfied and
  /// crossing no failed switch; parked flows carry no charge (they are still
  /// *checked* — a parked entry with a nonzero charged rate is a ledger leak,
  /// not a pass); the load ledger equals the sum of active rates per switch.
  /// Empty vector = consistent.  The crash-recovery reconciliation path
  /// (core/recovery/recovery.h) folds this list into its ReconcileReport.
  [[nodiscard]] std::vector<AuditViolation> audit_violations() const;

  /// Throwing form of audit_violations(): std::logic_error naming the first
  /// violation when the list is non-empty.
  void audit() const;

  /// Attach a write-ahead journal: every state mutation (install, evict,
  /// park, readmit, reroute, fail/recover, quarantine/probe/reinstate,
  /// drain/undrain) appends one effect record after it succeeds.  Pass
  /// nullptr (default) to detach.  `restore_state` never journals.
  void set_journal(recovery::StateJournal* journal) noexcept {
    journal_ = journal;
  }

  /// Full mutable state as canonical plain data (recovery snapshots).
  [[nodiscard]] recovery::ControllerState export_state() const;

  /// Replace this controller's state wholesale with `state` (crash recovery:
  /// the state comes from snapshot + journal replay).  Rebuilds the load
  /// ledger from the entries' charged rates and drain markers and re-applies
  /// quarantine penalties.  Does not journal and does not touch the breaker.
  void restore_state(const recovery::ControllerState& state);

  /// Attach an observability context: install/remove/fail/recover/rebalance
  /// emit host-lane trace events and counters through it.  Pass nullptr
  /// (default) to detach.
  void set_observer(const obs::Context* ctx) noexcept { observer_ = ctx; }

 private:
  struct Entry {
    net::Flow flow;
    net::Policy policy;
    NodeId src;
    NodeId dst;
    bool parked = false;        ///< uncharged, waiting for an alive route
    double charged_rate = 0.0;  ///< rate the ledger carries (< flow.rate when
                                ///< a fault reroute admitted it throttled)
  };

  struct RerouteResult {
    PolicyOptimizer::Route route;
    double admitted_rate = 0.0;
  };

  /// Reroute `entry` (assumed uncharged) onto the optimal route avoiding
  /// failed and draining switches, backing the demanded rate off per retry.
  [[nodiscard]] std::optional<RerouteResult> reroute_with_backoff(
      const Entry& entry) const;
  [[nodiscard]] std::vector<NodeId> banned_switches() const;

  /// Servers inside domains whose every switch is failed.  Flows touching
  /// one stay parked across readmission: the path the optimizer finds is
  /// formally alive but the endpoint has no working uplink.
  [[nodiscard]] std::unordered_set<std::uint64_t> stranded_servers() const;

  /// Tenant whose installed rate most exceeds its entitlement among tenants
  /// with an active flow crossing `hottest`, skipping tenants at/below the
  /// protected floor; ~0u when none qualifies (fall back to legacy order).
  [[nodiscard]] std::uint32_t pick_shed_tenant(NodeId hottest) const;

  /// Append `record` to the attached journal, if any.
  void journal_record(recovery::JournalRecord record) const;

  const topo::Topology* topology_;
  ControllerConfig config_;
  const obs::Context* observer_ = nullptr;
  recovery::StateJournal* journal_ = nullptr;
  net::LoadTracker load_;
  PolicyOptimizer optimizer_;
  CircuitBreaker breaker_;
  std::unordered_map<FlowId, Entry> flows_;
  void sync_quarantine_penalties();

  /// Draining switches and the synthetic load absorbing their headroom.
  std::unordered_map<NodeId, double> draining_;
  /// Failed (unplanned-down) switches.
  std::unordered_set<NodeId> failed_;
  /// Quarantined switches -> consecutive healthy probe results so far.
  std::map<NodeId, std::size_t> quarantined_;
  /// Failure-domain memberships for the DeadDomain audit (empty = disabled).
  std::vector<DomainMembers> domains_;
  /// Reroute attempts abandoned because the endpoints were partitioned.
  /// Mutable: reroute_with_backoff is const (a pure planning helper) but the
  /// partition diagnosis it makes is worth keeping.
  mutable std::size_t partition_parks_ = 0;
};

}  // namespace hit::core
