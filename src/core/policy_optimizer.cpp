#include "core/policy_optimizer.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>
#include <vector>

#include "obs/context.h"

namespace hit::core {

PolicyOptimizer::PolicyOptimizer(const topo::Topology& topology, CostConfig config)
    : topology_(&topology), config_(config) {}

void PolicyOptimizer::set_penalized(std::vector<NodeId> switches, double factor) {
  if (factor < 1.0) {
    throw std::invalid_argument("PolicyOptimizer: penalty factor must be >= 1");
  }
  std::sort(switches.begin(), switches.end());
  switches.erase(std::unique(switches.begin(), switches.end()), switches.end());
  if (factor == 1.0) switches.clear();  // no-op penalty
  penalized_ = std::move(switches);
  penalty_factor_ = factor;
}

void PolicyOptimizer::clear_penalized() {
  penalized_.clear();
  penalty_factor_ = 1.0;
}

bool PolicyOptimizer::is_penalized(NodeId n) const {
  return !penalized_.empty() &&
         std::binary_search(penalized_.begin(), penalized_.end(), n);
}

bool PolicyOptimizer::reachable(NodeId src, NodeId dst,
                                std::span<const NodeId> banned) const {
  if (src == dst) return true;
  const topo::Graph& graph = topology_->graph();
  if (src.index() >= graph.node_count() || dst.index() >= graph.node_count()) {
    return false;
  }
  const auto is_banned = [&](NodeId n) {
    return std::find(banned.begin(), banned.end(), n) != banned.end();
  };
  if (is_banned(src) || is_banned(dst)) return false;
  std::vector<char> seen(graph.node_count(), 0);
  std::vector<NodeId> frontier{src};
  seen[src.index()] = 1;
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    for (const topo::Edge& e : graph.neighbors(frontier[i])) {
      if (seen[e.to.index()] || is_banned(e.to)) continue;
      if (e.to == dst) return true;
      seen[e.to.index()] = 1;
      frontier.push_back(e.to);
    }
  }
  return false;
}

std::optional<PolicyOptimizer::Route> PolicyOptimizer::optimal_route(
    std::span<const NodeId> src_candidates, std::span<const NodeId> dst_candidates,
    FlowId flow, double rate, double metric, const net::LoadTracker& load,
    bool allow_local, std::span<const NodeId> banned, WorkBudget* budget) const {
  HIT_PROF_SCOPE("core.policy_optimizer.optimal_route");
  if (src_candidates.empty() || dst_candidates.empty()) return std::nullopt;

  // Network-only mode: a node present in both sets would otherwise be
  // "reached" at distance zero (it is a Dijkstra source), degenerating into
  // the local placement the caller explicitly ruled out.  Disjoin the sets:
  // drop the overlap from the destination side, falling back to the source
  // side (and finally to an arbitrary split) so neither set empties.
  std::vector<NodeId> src_filtered, dst_filtered;
  if (!allow_local) {
    auto in = [](std::span<const NodeId> set, NodeId n) {
      return std::find(set.begin(), set.end(), n) != set.end();
    };
    for (NodeId n : dst_candidates) {
      if (!in(src_candidates, n)) dst_filtered.push_back(n);
    }
    if (!dst_filtered.empty()) {
      dst_candidates = dst_filtered;
    } else {
      for (NodeId n : src_candidates) {
        if (!in(dst_candidates, n)) src_filtered.push_back(n);
      }
      if (!src_filtered.empty()) {
        src_candidates = src_filtered;
      } else {
        // Identical sets: split deterministically.
        if (src_candidates.size() < 2) return std::nullopt;
        src_filtered.assign(src_candidates.begin(), src_candidates.begin() + 1);
        dst_filtered.assign(src_candidates.begin() + 1, src_candidates.end());
        src_candidates = src_filtered;
        dst_candidates = dst_filtered;
      }
    }
  }

  // Local placement: a server in both candidate sets carries the flow for
  // free (map output read from local disk).
  if (allow_local) {
    NodeId common;
    for (NodeId s : src_candidates) {
      if (std::find(dst_candidates.begin(), dst_candidates.end(), s) !=
              dst_candidates.end() &&
          (!common.valid() || s < common)) {
        common = s;
      }
    }
    if (common.valid()) {
      Route r;
      r.src = r.dst = common;
      r.policy.flow = flow;
      r.cost = 0.0;
      return r;
    }
  }

  const CostModel cost(*topology_, config_, &load);
  const std::size_t n = topology_->node_count();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(n, kInf);
  std::vector<NodeId> parent(n);

  // Multi-source Dijkstra; entering switch w costs metric * switch_cost(w),
  // entering a server costs 0 (BCube relays are free hops, matching the
  // paper's switch-count delay model).  Infeasible switches are banned.
  using Item = std::pair<double, NodeId::value_type>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  for (NodeId s : src_candidates) {
    if (dist[s.index()] > 0.0) {
      dist[s.index()] = 0.0;
      heap.emplace(0.0, s.value());
    }
  }
  while (!heap.empty()) {
    const auto [d, uv] = heap.top();
    heap.pop();
    const NodeId u(uv);
    if (d > dist[u.index()]) continue;
    if (budget != nullptr && !budget->charge()) {
      obs::count("core.policy_optimizer.budget_aborts");
      return std::nullopt;  // out of budget, not out of routes
    }
    for (const topo::Edge& e : topology_->graph().neighbors(u)) {
      const NodeId v = e.to;
      if (std::find(banned.begin(), banned.end(), v) != banned.end()) continue;
      double step = 0.0;
      if (topology_->is_switch(v)) {
        if (!load.feasible_switch(v, rate)) continue;
        step = metric * cost.switch_cost(v);
        if (is_penalized(v)) step *= penalty_factor_;
      }
      const double nd = d + step;
      if (nd < dist[v.index()] - 1e-15) {
        dist[v.index()] = nd;
        parent[v.index()] = u;
        heap.emplace(nd, v.value());
      }
    }
  }

  // Best destination candidate (ties by node id — candidates are scanned in
  // order and strict improvement is required).
  NodeId best;
  double best_cost = kInf;
  for (NodeId t : dst_candidates) {
    if (dist[t.index()] < best_cost) {
      best_cost = dist[t.index()];
      best = t;
    }
  }
  if (!best.valid()) return std::nullopt;

  // Sources keep an invalid parent (they are never strictly improved), so
  // reconstruction terminates there even when every step costs zero.
  topo::Path path{best};
  for (NodeId v = best; parent[v.index()].valid(); v = parent[v.index()]) {
    path.push_back(parent[v.index()]);
  }
  std::reverse(path.begin(), path.end());

  Route r;
  r.src = path.front();
  r.dst = best;
  r.policy = net::policy_from_path(*topology_, path, flow);
  r.cost = best_cost;
  return r;
}

PreferenceMatrix PolicyOptimizer::build_preferences(const sched::Problem& problem,
                                                    WorkBudget* budget) const {
  HIT_PROF_SCOPE("core.policy_optimizer.build_preferences");
  if (!problem.valid()) throw std::invalid_argument("build_preferences: invalid problem");

  std::vector<TaskId> task_ids;
  task_ids.reserve(problem.tasks.size());
  std::unordered_map<TaskId, const sched::TaskRef*> task_of;
  for (const sched::TaskRef& t : problem.tasks) {
    task_ids.push_back(t.id);
    task_of.emplace(t.id, &t);
  }
  PreferenceMatrix prefs(problem.cluster->size(), task_ids);

  // Tentative state driving the sequential per-flow optimization: Eq. (8)
  // capacity ledger, provisional task placements, and the switch load the
  // already-routed flows impose.  The stable matcher re-resolves the actual
  // placement afterwards; this pass only produces the grades.
  sched::UsageLedger ledger(problem);
  std::unordered_map<TaskId, ServerId> tentative;
  net::LoadTracker load =
      problem.ambient_load ? *problem.ambient_load : net::LoadTracker(*topology_);
  const CostModel cost_model(*topology_, config_, &load);

  // Cached static switch-hop columns for the proximity grading below.
  std::unordered_map<ServerId, std::vector<std::size_t>> hop_columns;
  auto hops_from = [&](ServerId s) -> const std::vector<std::size_t>& {
    auto it = hop_columns.find(s);
    if (it == hop_columns.end()) {
      it = hop_columns
               .emplace(s, topology_->switch_hop_distances(problem.cluster->node_of(s)))
               .first;
    }
    return it->second;
  };

  // Grade a task's whole column: the anchor server (where this flow wants
  // the task) gets the full metric, and every other server gets the metric
  // discounted by its switch-hop distance to the anchor — so the matcher
  // sees "this rack, or as close to it as possible", not a single spike.
  auto grade = [&](TaskId task, ServerId anchor, double metric) {
    if (task_of.find(task) == task_of.end()) return;  // fixed tasks: no column
    const auto& hops = hops_from(anchor);
    for (const cluster::Server& s : problem.cluster->servers()) {
      const std::size_t h = hops[s.node.index()];
      if (h == static_cast<std::size_t>(-1)) continue;
      prefs.add(s.id, task, metric / (1.0 + static_cast<double>(h)));
    }
  };

  // Where a task currently lives: fixed by an earlier wave, or tentatively
  // placed by an earlier (heavier) flow of this pass.
  auto host_of = [&](TaskId task) -> ServerId {
    const ServerId fixed = problem.fixed_host(task);
    if (fixed.valid()) return fixed;
    const auto it = tentative.find(task);
    return it == tentative.end() ? ServerId{} : it->second;
  };
  auto reserve = [&](TaskId task, ServerId server) {
    ledger.place(server, task_of.at(task)->demand);
    tentative.emplace(task, server);
  };

  // Heaviest flows first: they grab the cheap routes and dominate grading.
  std::vector<const net::Flow*> order;
  order.reserve(problem.flows.size());
  for (const net::Flow& f : problem.flows) order.push_back(&f);
  std::stable_sort(order.begin(), order.end(),
                   [](const net::Flow* a, const net::Flow* b) {
                     return a->size_gb > b->size_gb;
                   });

  for (const net::Flow* f : order) {
    if (budget != nullptr && budget->exhausted()) break;  // partial grades stand
    const bool src_known = task_of.count(f->src_task) > 0 ||
                           problem.fixed_host(f->src_task).valid();
    const bool dst_known = task_of.count(f->dst_task) > 0 ||
                           problem.fixed_host(f->dst_task).valid();
    if (!src_known || !dst_known) continue;  // endpoint outside this problem

    ServerId src_host = host_of(f->src_task);
    ServerId dst_host = host_of(f->dst_task);
    const double metric = cost_model.metric(*f);

    // Co-location first: shuffling through local disk is free (Eq. 2's cost
    // is zero when no switch is traversed).
    if (!src_host.valid() || !dst_host.valid()) {
      ServerId colo;
      if (src_host.valid()) {
        if (ledger.can_host(src_host, task_of.at(f->dst_task)->demand)) colo = src_host;
      } else if (dst_host.valid()) {
        if (ledger.can_host(dst_host, task_of.at(f->src_task)->demand)) colo = dst_host;
      } else {
        const cluster::Resource both =
            task_of.at(f->src_task)->demand + task_of.at(f->dst_task)->demand;
        for (const cluster::Server& s : problem.cluster->servers()) {
          if (ledger.can_host(s.id, both)) {
            colo = s.id;
            break;
          }
        }
      }
      if (colo.valid()) {
        if (!src_host.valid()) reserve(f->src_task, colo);
        if (!dst_host.valid()) reserve(f->dst_task, colo);
        grade(f->src_task, colo, metric);
        grade(f->dst_task, colo, metric);
        continue;
      }
    }

    // Network route over the Figure 5 layered candidate graph.
    auto nodes_for = [&](TaskId task, ServerId known) {
      std::vector<NodeId> nodes;
      if (known.valid()) {
        nodes.push_back(problem.cluster->node_of(known));
      } else {
        for (ServerId s : ledger.candidates(task_of.at(task)->demand)) {
          nodes.push_back(problem.cluster->node_of(s));
        }
      }
      return nodes;
    };
    const std::vector<NodeId> src_cands = nodes_for(f->src_task, src_host);
    const std::vector<NodeId> dst_cands = nodes_for(f->dst_task, dst_host);
    if (src_cands.empty() || dst_cands.empty()) continue;  // wave overfull

    auto route = optimal_route(src_cands, dst_cands, f->id, f->rate, metric, load,
                               /*allow_local=*/false, /*banned=*/{}, budget);
    if (!route) continue;  // saturated everywhere (or out of budget): no information

    const ServerId src_pick = problem.cluster->server_at(route->src);
    const ServerId dst_pick = problem.cluster->server_at(route->dst);
    if (!src_host.valid()) reserve(f->src_task, src_pick);
    if (!dst_host.valid()) reserve(f->dst_task, dst_pick);
    grade(f->src_task, src_pick, metric);
    grade(f->dst_task, dst_pick, metric);
    load.assign(route->policy, f->rate);
  }
  return prefs;
}

double PolicyOptimizer::improve_policy(net::Policy& policy, NodeId src, NodeId dst,
                                       double rate, double metric,
                                       const net::LoadTracker& load,
                                       WorkBudget* budget) const {
  HIT_PROF_SCOPE("core.policy_optimizer.improve_policy");
  const CostModel cost(*topology_, config_, &load);
  double gained = 0.0;
  bool improved = true;
  while (improved) {
    improved = false;
    for (std::size_t i = 0; i < policy.list.size(); ++i) {
      double best_utility = 1e-12;
      NodeId best;
      for (NodeId w_hat : load.candidates(src, dst, policy, i, rate)) {
        if (budget != nullptr && !budget->charge()) return gained;
        if (is_penalized(w_hat)) continue;  // never improve onto a suspect
        const double u = cost.substitution_utility(policy, src, dst, i, w_hat, metric);
        if (u > best_utility || (u == best_utility && best.valid() && w_hat < best)) {
          best_utility = u;
          best = w_hat;
        }
      }
      if (best.valid()) {
        policy.list[i] = best;  // same tier by construction; type[] unchanged
        gained += best_utility;
        improved = true;
      }
    }
  }
  return gained;
}

}  // namespace hit::core
