#include "core/hit_scheduler.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "network/routing.h"

namespace hit::core {

bool HitScheduler::is_subsequent_wave(const sched::Problem& problem) {
  if (problem.tasks.empty()) return false;
  for (const sched::TaskRef& t : problem.tasks) {
    if (t.kind != cluster::TaskKind::Map) return false;
  }
  for (const net::Flow& f : problem.flows) {
    if (!problem.fixed_host(f.dst_task).valid()) return false;
  }
  return true;
}

sched::Assignment HitScheduler::schedule(const sched::Problem& problem, Rng& rng) {
  (void)rng;  // Hit-Scheduler is deterministic
  if (!problem.valid()) throw std::invalid_argument("HitScheduler: invalid problem");
  const obs::Bind bind(observer_);
  HIT_PROF_SCOPE("core.hit_scheduler.schedule");
  if (is_subsequent_wave(problem)) {
    obs::count("core.hit_scheduler.subsequent_waves");
    return subsequent_wave(problem);
  }
  obs::count("core.hit_scheduler.initial_waves");
  return initial_wave(problem);
}

sched::Assignment HitScheduler::initial_wave(const sched::Problem& problem) const {
  sched::Assignment assignment;

  // Placement: Algorithm 1 grades, resolved by Algorithm 2 (default) or by
  // the grade-greedy ablation.  Routing is chosen independently below, so
  // the two contributions can be ablated orthogonally.
  const PolicyOptimizer optimizer(*problem.topology, config_.cost);
  const PreferenceMatrix prefs = optimizer.build_preferences(problem);

  if (config_.use_stable_matching) {
    const StableMatcher matcher;
    assignment.placement = matcher.match(problem, prefs);
  } else {
    // Ablation: greedy — each task takes its top-graded feasible server,
    // heaviest shuffle participants first.
    std::unordered_map<TaskId, double> traffic;
    for (const net::Flow& f : problem.flows) {
      traffic[f.src_task] += f.size_gb;
      traffic[f.dst_task] += f.size_gb;
    }
    std::vector<const sched::TaskRef*> order;
    for (const sched::TaskRef& t : problem.tasks) order.push_back(&t);
    std::stable_sort(order.begin(), order.end(),
                     [&](const sched::TaskRef* a, const sched::TaskRef* b) {
                       return traffic[a->id] > traffic[b->id];
                     });

    sched::UsageLedger ledger(problem);
    for (const sched::TaskRef* t : order) {
      ServerId pick;
      for (ServerId s : prefs.ranked_servers(t->id)) {
        if (ledger.can_host(s, t->demand)) {
          pick = s;
          break;
        }
      }
      if (!pick.valid()) throw std::runtime_error("HitScheduler: greedy infeasible");
      ledger.place(pick, t->demand);
      assignment.placement[t->id] = pick;
    }
  }

  route_flows(problem, assignment);
  return assignment;
}

sched::Assignment HitScheduler::subsequent_wave(const sched::Problem& problem) const {
  sched::Assignment assignment;
  sched::UsageLedger ledger(problem);

  // Flows grouped by their (open) map task.
  std::unordered_map<TaskId, std::vector<const net::Flow*>> flows_of;
  std::unordered_map<TaskId, double> output_of;
  for (const net::Flow& f : problem.flows) {
    flows_of[f.src_task].push_back(&f);
    output_of[f.src_task] += f.size_gb;
  }

  // "Pair the Map tasks that have higher shuffle output with the physical
  // servers which can achieve low delay": biggest producers pick first.
  std::vector<const sched::TaskRef*> order;
  for (const sched::TaskRef& t : problem.tasks) order.push_back(&t);
  std::stable_sort(order.begin(), order.end(),
                   [&](const sched::TaskRef* a, const sched::TaskRef* b) {
                     return output_of[a->id] > output_of[b->id];
                   });

  // Switch-hop distance columns, one BFS per distinct destination server.
  std::unordered_map<ServerId, std::vector<std::size_t>> hops_to;
  auto hop_column = [&](ServerId dst) -> const std::vector<std::size_t>& {
    auto it = hops_to.find(dst);
    if (it == hops_to.end()) {
      it = hops_to
               .emplace(dst, problem.topology->switch_hop_distances(
                                 problem.cluster->node_of(dst)))
               .first;
    }
    return it->second;
  };

  for (const sched::TaskRef* t : order) {
    ServerId best;
    double best_cost = std::numeric_limits<double>::infinity();
    for (const cluster::Server& s : problem.cluster->servers()) {
      if (!ledger.can_host(s.id, t->demand)) continue;
      double cost = 0.0;
      if (const auto it = flows_of.find(t->id); it != flows_of.end()) {
        for (const net::Flow* f : it->second) {
          const ServerId dst = problem.fixed_host(f->dst_task);
          const std::size_t hops = hop_column(dst)[s.node.index()];
          cost += f->size_gb * static_cast<double>(hops);
        }
      }
      if (cost < best_cost) {
        best_cost = cost;
        best = s.id;
      }
    }
    if (!best.valid()) {
      throw std::runtime_error("HitScheduler: subsequent wave infeasible");
    }
    ledger.place(best, t->demand);
    assignment.placement[t->id] = best;
  }

  route_flows(problem, assignment);
  return assignment;
}

void HitScheduler::route_flows(const sched::Problem& problem,
                               sched::Assignment& assignment) const {
  HIT_PROF_SCOPE("core.hit_scheduler.route_flows");
  if (!config_.optimize_policies) {
    sched::attach_shortest_policies(problem, assignment);
    return;
  }

  const PolicyOptimizer optimizer(*problem.topology, config_.cost);
  net::LoadTracker load = problem.ambient_load ? *problem.ambient_load
                                               : net::LoadTracker(*problem.topology);
  const CostModel cost(*problem.topology, config_.cost, &load);

  std::vector<const net::Flow*> order;
  order.reserve(problem.flows.size());
  for (const net::Flow& f : problem.flows) order.push_back(&f);
  std::stable_sort(order.begin(), order.end(),
                   [](const net::Flow* a, const net::Flow* b) {
                     return a->size_gb > b->size_gb;
                   });

  for (const net::Flow* f : order) {
    const ServerId src = assignment.host(problem, f->src_task);
    const ServerId dst = assignment.host(problem, f->dst_task);
    if (!src.valid() || !dst.valid()) continue;
    if (src == dst) {
      net::Policy p;
      p.flow = f->id;
      assignment.policies[f->id] = std::move(p);
      continue;
    }
    const NodeId src_node = problem.cluster->node_of(src);
    const NodeId dst_node = problem.cluster->node_of(dst);
    const NodeId srcs[] = {src_node};
    const NodeId dsts[] = {dst_node};
    auto route = optimizer.optimal_route(srcs, dsts, f->id, f->rate,
                                         cost.metric(*f), load);
    net::Policy policy;
    if (route) {
      policy = std::move(route->policy);
    } else {
      // Network saturated: accept the shortest route and let the flow-level
      // simulator degrade its bandwidth (the paper's Figure 2(a) situation).
      obs::count("core.hit_scheduler.shortest_path_fallbacks");
      policy = net::shortest_policy(*problem.topology, src_node, dst_node, f->id);
    }
    obs::count("core.hit_scheduler.flows_routed");
    optimizer.improve_policy(policy, src_node, dst_node, f->rate, cost.metric(*f),
                             load);
    load.assign(policy, f->rate);
    assignment.policies[f->id] = std::move(policy);
  }
}

}  // namespace hit::core
