#include "core/hit_scheduler.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "network/routing.h"

namespace hit::core {

const char* ladder_tier_name(LadderTier tier) {
  switch (tier) {
    case LadderTier::Full: return "full";
    case LadderTier::PreferenceOnly: return "preference-only";
    case LadderTier::LocalityGreedy: return "locality-greedy";
    case LadderTier::Random: return "random";
  }
  return "?";
}

bool HitScheduler::is_subsequent_wave(const sched::Problem& problem) {
  if (problem.tasks.empty()) return false;
  for (const sched::TaskRef& t : problem.tasks) {
    if (t.kind != cluster::TaskKind::Map) return false;
  }
  for (const net::Flow& f : problem.flows) {
    if (!problem.fixed_host(f.dst_task).valid()) return false;
  }
  return true;
}

sched::Assignment HitScheduler::schedule(const sched::Problem& problem, Rng& rng) {
  if (!problem.valid()) throw std::invalid_argument("HitScheduler: invalid problem");
  const obs::Bind bind(observer_);
  HIT_PROF_SCOPE("core.hit_scheduler.schedule");
  if (is_subsequent_wave(problem)) {
    obs::count("core.hit_scheduler.subsequent_waves");
    return subsequent_wave(problem);
  }
  obs::count("core.hit_scheduler.initial_waves");
  if (!config_.ladder.enabled) {
    (void)rng;  // the un-laddered Hit-Scheduler is deterministic
    return initial_wave(problem);
  }
  return laddered_wave(problem, rng);
}

sched::Assignment HitScheduler::serve(LadderTier tier, sched::Assignment a) {
  last_tier_ = tier;
  ++ladder_stats_.served[static_cast<std::size_t>(tier)];
  ladder_stats_.breaker = breaker_.stats();
  obs::count(std::string("core.hit_scheduler.ladder.") + ladder_tier_name(tier));
  return a;
}

sched::Assignment HitScheduler::laddered_wave(const sched::Problem& problem,
                                              Rng& rng) {
  HIT_PROF_SCOPE("core.hit_scheduler.laddered_wave");
  LadderTier tier = LadderTier::Full;
  if (!breaker_.allow()) {
    // Open breaker: the expensive joint optimization has been blowing its
    // budget — serve the cheap fallback immediately.
    ++ladder_stats_.breaker_skips;
    obs::count("core.hit_scheduler.ladder.breaker_skips");
    tier = LadderTier::LocalityGreedy;
  }

  // Over-quota tenants under AIMD overload pressure get shrunken work
  // budgets: their waves still get served, but the expensive joint
  // optimization degrades sooner so in-quota tenants keep the full effort.
  // Pressure 0 (or in-quota, or unlimited budgets) leaves the wave
  // bit-identical to the unscaled ladder.
  std::size_t route_budget = config_.ladder.route_budget;
  std::size_t proposal_budget = config_.ladder.proposal_budget;
  if (problem.over_quota && problem.overload_pressure > 0.0) {
    const double scale =
        1.0 - 0.75 * std::min(problem.overload_pressure, 1.0);
    if (route_budget > 0) {
      route_budget = std::max<std::size_t>(
          1, static_cast<std::size_t>(static_cast<double>(route_budget) * scale));
    }
    if (proposal_budget > 0) {
      proposal_budget = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 static_cast<double>(proposal_budget) * scale));
    }
    if (route_budget != config_.ladder.route_budget ||
        proposal_budget != config_.ladder.proposal_budget) {
      ++ladder_stats_.pressure_scaled_waves;
      obs::count("core.hit_scheduler.ladder.pressure_scaled");
    }
  }

  if (tier == LadderTier::Full) {
    WorkBudget budget(route_budget);
    PolicyOptimizer optimizer(*problem.topology, config_.cost);
  if (!problem.penalized_switches.empty()) {
    optimizer.set_penalized(problem.penalized_switches, problem.switch_penalty);
  }
    const PreferenceMatrix prefs = optimizer.build_preferences(problem, &budget);
    if (budget.exhausted()) {
      // Alg. 1 grading ran out of node expansions: the matrix holds partial
      // grades, good enough for grade-greedy but not for a fair Alg. 2 run.
      ++ladder_stats_.budget_exhaustions;
      breaker_.record_failure();
      if (auto a = preference_only_wave(problem, prefs, {})) {
        return serve(LadderTier::PreferenceOnly, std::move(*a));
      }
      tier = LadderTier::LocalityGreedy;
    } else {
      bool infeasible = false;
      StableMatcher::MatchResult match;
      try {
        match = StableMatcher().match_budgeted(problem, prefs, proposal_budget);
      } catch (const std::runtime_error&) {
        // Aggregate capacity genuinely insufficient for Alg. 2's eviction
        // dance; the greedy tiers may still pack the tasks.
        infeasible = true;
      }
      if (!infeasible && match.complete) {
        sched::Assignment assignment;
        assignment.placement = std::move(match.placement);
        route_flows(problem, assignment, &budget);
        breaker_.record_success();
        return serve(LadderTier::Full, std::move(assignment));
      }
      breaker_.record_failure();
      if (!infeasible) {
        // Proposal budget ran out: keep the capacity-feasible partial
        // matching and complete it grade-greedily.
        ++ladder_stats_.budget_exhaustions;
        if (auto a = preference_only_wave(problem, prefs,
                                          std::move(match.placement))) {
          return serve(LadderTier::PreferenceOnly, std::move(*a));
        }
      }
      tier = LadderTier::LocalityGreedy;
    }
  }

  if (auto a = locality_greedy_wave(problem)) {
    return serve(LadderTier::LocalityGreedy, std::move(*a));
  }
  return serve(LadderTier::Random, random_wave(problem, rng));
}

std::optional<sched::Assignment> HitScheduler::preference_only_wave(
    const sched::Problem& problem, const PreferenceMatrix& prefs,
    std::unordered_map<TaskId, ServerId> partial) const {
  HIT_PROF_SCOPE("core.hit_scheduler.preference_only_wave");
  sched::Assignment assignment;
  sched::UsageLedger ledger(problem);
  std::unordered_map<TaskId, const sched::TaskRef*> ref_of;
  for (const sched::TaskRef& t : problem.tasks) ref_of.emplace(t.id, &t);
  for (const auto& [task, server] : partial) {
    ledger.place(server, ref_of.at(task)->demand);
  }
  assignment.placement = std::move(partial);

  // Remaining tasks greedily take their top-graded feasible server,
  // heaviest shuffle participants first (mirrors the ablation greedy).
  std::unordered_map<TaskId, double> traffic;
  for (const net::Flow& f : problem.flows) {
    traffic[f.src_task] += f.size_gb;
    traffic[f.dst_task] += f.size_gb;
  }
  std::vector<const sched::TaskRef*> order;
  for (const sched::TaskRef& t : problem.tasks) {
    if (assignment.placement.count(t.id) == 0) order.push_back(&t);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](const sched::TaskRef* a, const sched::TaskRef* b) {
                     return traffic[a->id] > traffic[b->id];
                   });
  for (const sched::TaskRef* t : order) {
    ServerId pick;
    for (ServerId s : prefs.ranked_servers(t->id)) {
      if (ledger.can_host(s, t->demand)) {
        pick = s;
        break;
      }
    }
    if (!pick.valid()) return std::nullopt;
    ledger.place(pick, t->demand);
    assignment.placement[t->id] = pick;
  }
  sched::attach_shortest_policies(problem, assignment);
  return assignment;
}

std::optional<sched::Assignment> HitScheduler::locality_greedy_wave(
    const sched::Problem& problem) const {
  HIT_PROF_SCOPE("core.hit_scheduler.locality_greedy_wave");
  sched::Assignment assignment;
  sched::UsageLedger ledger(problem);

  std::unordered_map<TaskId, double> traffic;
  std::unordered_map<TaskId, std::vector<const net::Flow*>> flows_of;
  for (const net::Flow& f : problem.flows) {
    traffic[f.src_task] += f.size_gb;
    traffic[f.dst_task] += f.size_gb;
    flows_of[f.src_task].push_back(&f);
    flows_of[f.dst_task].push_back(&f);
  }
  std::vector<const sched::TaskRef*> order;
  for (const sched::TaskRef& t : problem.tasks) order.push_back(&t);
  std::stable_sort(order.begin(), order.end(),
                   [&](const sched::TaskRef* a, const sched::TaskRef* b) {
                     return traffic[a->id] > traffic[b->id];
                   });

  std::unordered_map<ServerId, std::vector<std::size_t>> hops_to;
  auto hop_column = [&](ServerId host) -> const std::vector<std::size_t>& {
    auto it = hops_to.find(host);
    if (it == hops_to.end()) {
      it = hops_to
               .emplace(host, problem.topology->switch_hop_distances(
                                  problem.cluster->node_of(host)))
               .first;
    }
    return it->second;
  };

  // Each task joins the feasible server closest (size-weighted switch hops)
  // to its already-placed flow peers; unplaced peers contribute nothing, so
  // the heaviest participant anchors its shuffle group.
  for (const sched::TaskRef* t : order) {
    ServerId best;
    double best_cost = std::numeric_limits<double>::infinity();
    for (const cluster::Server& s : problem.cluster->servers()) {
      if (!ledger.can_host(s.id, t->demand)) continue;
      double cost = 0.0;
      if (const auto it = flows_of.find(t->id); it != flows_of.end()) {
        for (const net::Flow* f : it->second) {
          const TaskId peer = f->src_task == t->id ? f->dst_task : f->src_task;
          const ServerId peer_host = assignment.host(problem, peer);
          if (!peer_host.valid()) continue;
          cost += f->size_gb *
                  static_cast<double>(hop_column(peer_host)[s.node.index()]);
        }
      }
      if (cost < best_cost) {
        best_cost = cost;
        best = s.id;
      }
    }
    if (!best.valid()) return std::nullopt;
    ledger.place(best, t->demand);
    assignment.placement[t->id] = best;
  }
  sched::attach_shortest_policies(problem, assignment);
  return assignment;
}

sched::Assignment HitScheduler::random_wave(const sched::Problem& problem,
                                            Rng& rng) const {
  HIT_PROF_SCOPE("core.hit_scheduler.random_wave");
  sched::Assignment assignment;
  sched::UsageLedger ledger(problem);
  for (const sched::TaskRef& t : problem.tasks) {
    std::vector<ServerId> feasible;
    for (const cluster::Server& s : problem.cluster->servers()) {
      if (ledger.can_host(s.id, t.demand)) feasible.push_back(s.id);
    }
    if (feasible.empty()) {
      throw std::runtime_error("HitScheduler: random tier infeasible");
    }
    const ServerId pick = feasible[rng.uniform_index(feasible.size())];
    ledger.place(pick, t.demand);
    assignment.placement[t.id] = pick;
  }
  sched::attach_shortest_policies(problem, assignment);
  return assignment;
}

sched::Assignment HitScheduler::initial_wave(const sched::Problem& problem) const {
  sched::Assignment assignment;

  // Placement: Algorithm 1 grades, resolved by Algorithm 2 (default) or by
  // the grade-greedy ablation.  Routing is chosen independently below, so
  // the two contributions can be ablated orthogonally.
  PolicyOptimizer optimizer(*problem.topology, config_.cost);
  if (!problem.penalized_switches.empty()) {
    optimizer.set_penalized(problem.penalized_switches, problem.switch_penalty);
  }
  const PreferenceMatrix prefs = optimizer.build_preferences(problem);

  if (config_.use_stable_matching) {
    const StableMatcher matcher;
    assignment.placement = matcher.match(problem, prefs);
  } else {
    // Ablation: greedy — each task takes its top-graded feasible server,
    // heaviest shuffle participants first.
    std::unordered_map<TaskId, double> traffic;
    for (const net::Flow& f : problem.flows) {
      traffic[f.src_task] += f.size_gb;
      traffic[f.dst_task] += f.size_gb;
    }
    std::vector<const sched::TaskRef*> order;
    for (const sched::TaskRef& t : problem.tasks) order.push_back(&t);
    std::stable_sort(order.begin(), order.end(),
                     [&](const sched::TaskRef* a, const sched::TaskRef* b) {
                       return traffic[a->id] > traffic[b->id];
                     });

    sched::UsageLedger ledger(problem);
    for (const sched::TaskRef* t : order) {
      ServerId pick;
      for (ServerId s : prefs.ranked_servers(t->id)) {
        if (ledger.can_host(s, t->demand)) {
          pick = s;
          break;
        }
      }
      if (!pick.valid()) throw std::runtime_error("HitScheduler: greedy infeasible");
      ledger.place(pick, t->demand);
      assignment.placement[t->id] = pick;
    }
  }

  route_flows(problem, assignment);
  return assignment;
}

sched::Assignment HitScheduler::subsequent_wave(const sched::Problem& problem) const {
  sched::Assignment assignment;
  sched::UsageLedger ledger(problem);

  // Flows grouped by their (open) map task.
  std::unordered_map<TaskId, std::vector<const net::Flow*>> flows_of;
  std::unordered_map<TaskId, double> output_of;
  for (const net::Flow& f : problem.flows) {
    flows_of[f.src_task].push_back(&f);
    output_of[f.src_task] += f.size_gb;
  }

  // "Pair the Map tasks that have higher shuffle output with the physical
  // servers which can achieve low delay": biggest producers pick first.
  std::vector<const sched::TaskRef*> order;
  for (const sched::TaskRef& t : problem.tasks) order.push_back(&t);
  std::stable_sort(order.begin(), order.end(),
                   [&](const sched::TaskRef* a, const sched::TaskRef* b) {
                     return output_of[a->id] > output_of[b->id];
                   });

  // Switch-hop distance columns, one BFS per distinct destination server.
  std::unordered_map<ServerId, std::vector<std::size_t>> hops_to;
  auto hop_column = [&](ServerId dst) -> const std::vector<std::size_t>& {
    auto it = hops_to.find(dst);
    if (it == hops_to.end()) {
      it = hops_to
               .emplace(dst, problem.topology->switch_hop_distances(
                                 problem.cluster->node_of(dst)))
               .first;
    }
    return it->second;
  };

  for (const sched::TaskRef* t : order) {
    ServerId best;
    double best_cost = std::numeric_limits<double>::infinity();
    for (const cluster::Server& s : problem.cluster->servers()) {
      if (!ledger.can_host(s.id, t->demand)) continue;
      double cost = 0.0;
      if (const auto it = flows_of.find(t->id); it != flows_of.end()) {
        for (const net::Flow* f : it->second) {
          const ServerId dst = problem.fixed_host(f->dst_task);
          const std::size_t hops = hop_column(dst)[s.node.index()];
          cost += f->size_gb * static_cast<double>(hops);
        }
      }
      if (cost < best_cost) {
        best_cost = cost;
        best = s.id;
      }
    }
    if (!best.valid()) {
      throw std::runtime_error("HitScheduler: subsequent wave infeasible");
    }
    ledger.place(best, t->demand);
    assignment.placement[t->id] = best;
  }

  route_flows(problem, assignment);
  return assignment;
}

void HitScheduler::apply_spread(const sched::Problem& problem,
                                sched::Assignment& assignment) const {
  if (config_.spread_weight <= 0.0) return;
  HIT_PROF_SCOPE("core.hit_scheduler.apply_spread");
  const topo::Topology& topo = *problem.topology;

  // Rack of a server: its access-tier uplink switch (lowest neighbor id
  // when multi-homed).  A server with no access uplink is its own singleton
  // rack — keyed in a disjoint id space so it never aliases a switch.
  auto rack_of = [&](ServerId s) -> std::uint64_t {
    const NodeId node = problem.cluster->node_of(s);
    for (const topo::Edge& e : topo.graph().neighbors(node)) {
      if (topo.tier(e.to) == topo::Tier::Access) return e.to.value();
    }
    return node.value() | (std::uint64_t{1} << 40);
  };

  // Open map tasks, their demands, and their shuffle adjacency.
  std::unordered_map<TaskId, const sched::TaskRef*> ref_of;
  for (const sched::TaskRef& t : problem.tasks) ref_of.emplace(t.id, &t);
  std::unordered_map<TaskId, std::vector<std::pair<TaskId, double>>> peers;
  std::unordered_map<TaskId, double> traffic;
  for (const net::Flow& f : problem.flows) {
    peers[f.src_task].push_back({f.dst_task, f.size_gb});
    peers[f.dst_task].push_back({f.src_task, f.size_gb});
    traffic[f.src_task] += f.size_gb;
    traffic[f.dst_task] += f.size_gb;
  }

  std::vector<const sched::TaskRef*> movable;
  for (const sched::TaskRef& t : problem.tasks) {
    if (t.kind != cluster::TaskKind::Map) continue;
    if (assignment.placement.count(t.id) == 0) continue;
    movable.push_back(&t);
  }
  if (movable.empty()) return;
  std::stable_sort(movable.begin(), movable.end(),
                   [&](const sched::TaskRef* a, const sched::TaskRef* b) {
                     return traffic[a->id] > traffic[b->id];
                   });

  // Per-job per-rack map concentration — the spread "energy" is the number
  // of same-rack pairs Σ_jd C(n_jd, 2); moving one map from a rack with n
  // co-resident maps to one with m removes (n-1) - m pairs.
  std::unordered_map<std::uint64_t, std::size_t> count;
  auto jd_key = [](JobId job, std::uint64_t rack) {
    return (static_cast<std::uint64_t>(job.value()) << 41) ^ rack;
  };
  for (const sched::TaskRef* t : movable) {
    count[jd_key(t->job, rack_of(assignment.placement.at(t->id)))] += 1;
  }

  // Rebuild current usage so moves stay capacity-feasible.
  sched::UsageLedger ledger(problem);
  for (const auto& [task, server] : assignment.placement) {
    const auto it = ref_of.find(task);
    if (it != ref_of.end()) ledger.place(server, it->second->demand);
  }

  sched::HopMatrix hops(problem);
  auto locality_cost = [&](const sched::TaskRef* t, ServerId host) {
    double c = 0.0;
    const auto it = peers.find(t->id);
    if (it == peers.end()) return c;
    for (const auto& [peer, gb] : it->second) {
      const ServerId other = assignment.host(problem, peer);
      if (!other.valid()) continue;
      c += gb * static_cast<double>(hops.hops(host, other));
    }
    return c;
  };

  constexpr std::size_t kMaxPasses = 4;
  std::size_t moves = 0;
  for (std::size_t pass = 0; pass < kMaxPasses; ++pass) {
    bool moved = false;
    for (const sched::TaskRef* t : movable) {
      const ServerId cur = assignment.placement.at(t->id);
      const std::uint64_t cur_rack = rack_of(cur);
      const std::size_t n_cur = count.at(jd_key(t->job, cur_rack));
      const double cur_cost = locality_cost(t, cur);
      ledger.remove(cur, t->demand);

      ServerId best;
      double best_gain = 0.0;
      std::uint64_t best_rack = 0;
      for (const cluster::Server& s : problem.cluster->servers()) {
        if (s.id == cur || !ledger.can_host(s.id, t->demand)) continue;
        const std::uint64_t rack = rack_of(s.id);
        if (rack == cur_rack) continue;  // no spread change, locality can
                                         // only stay equal or worsen
        const auto cit = count.find(jd_key(t->job, rack));
        const std::size_t n_tgt = cit == count.end() ? 0 : cit->second;
        const double pairs_removed =
            static_cast<double>(n_cur - 1) - static_cast<double>(n_tgt);
        const double gain = config_.spread_weight * pairs_removed -
                            (locality_cost(t, s.id) - cur_cost);
        if (gain > best_gain + 1e-9) {  // strict: first (lowest id) wins ties
          best_gain = gain;
          best = s.id;
          best_rack = rack;
        }
      }

      if (best.valid()) {
        ledger.place(best, t->demand);
        assignment.placement[t->id] = best;
        count[jd_key(t->job, cur_rack)] -= 1;
        count[jd_key(t->job, best_rack)] += 1;
        moved = true;
        ++moves;
      } else {
        ledger.place(cur, t->demand);
      }
    }
    if (!moved) break;
  }
  if (moves > 0) obs::count("core.hit_scheduler.spread_moves", moves);
}

void HitScheduler::route_flows(const sched::Problem& problem,
                               sched::Assignment& assignment,
                               WorkBudget* budget) const {
  HIT_PROF_SCOPE("core.hit_scheduler.route_flows");
  apply_spread(problem, assignment);
  if (!config_.optimize_policies) {
    sched::attach_shortest_policies(problem, assignment);
    return;
  }

  PolicyOptimizer optimizer(*problem.topology, config_.cost);
  if (!problem.penalized_switches.empty()) {
    optimizer.set_penalized(problem.penalized_switches, problem.switch_penalty);
  }
  net::LoadTracker load = problem.ambient_load ? *problem.ambient_load
                                               : net::LoadTracker(*problem.topology);
  const CostModel cost(*problem.topology, config_.cost, &load);

  std::vector<const net::Flow*> order;
  order.reserve(problem.flows.size());
  for (const net::Flow& f : problem.flows) order.push_back(&f);
  std::stable_sort(order.begin(), order.end(),
                   [](const net::Flow* a, const net::Flow* b) {
                     return a->size_gb > b->size_gb;
                   });

  if (config_.coflow.enabled) {
    // Coflow-ordered routing: permute whole coflows (a job's flow group),
    // keeping the largest-first order inside each group, so the optimizer
    // serves each coflow against the residual capacity earlier coflows left.
    struct Group {
      std::size_t seq = 0;        // first appearance in problem.flows
      std::uint8_t priority = 1;
      double cp = 0.0;            // remaining critical path (workflow stages)
      double gamma = 0.0;         // SEBF proxy: most loaded endpoint server
      std::vector<const net::Flow*> flows;
    };
    std::unordered_map<JobId, std::size_t> group_of;
    std::vector<Group> groups;
    for (std::size_t i = 0; i < problem.flows.size(); ++i) {
      const net::Flow& f = problem.flows[i];
      const auto [it, fresh] = group_of.emplace(f.job, groups.size());
      if (fresh) {
        groups.push_back(Group{});
        groups.back().seq = i;
      }
      groups[it->second].priority = f.priority;
      groups[it->second].cp = f.cp;
    }
    for (const net::Flow* f : order) {
      groups[group_of.at(f->job)].flows.push_back(f);
    }
    if (config_.coflow.order == coflow::OrderPolicy::Sebf ||
        config_.coflow.order == coflow::OrderPolicy::CriticalPath) {
      // Γ proxy per coflow: max over placed servers of shuffle bytes in +
      // out (the Varys endpoint bottleneck; paths are not chosen yet).
      for (Group& g : groups) {
        std::unordered_map<ServerId, double> endpoint_gb;
        for (const net::Flow* f : g.flows) {
          const ServerId src = assignment.host(problem, f->src_task);
          const ServerId dst = assignment.host(problem, f->dst_task);
          if (!src.valid() || !dst.valid() || src == dst) continue;
          endpoint_gb[src] += f->size_gb;
          endpoint_gb[dst] += f->size_gb;
        }
        for (const auto& [server, gb] : endpoint_gb) {
          g.gamma = std::max(g.gamma, gb);
        }
      }
    }
    std::vector<std::size_t> by(groups.size());
    for (std::size_t i = 0; i < by.size(); ++i) by[i] = i;
    std::sort(by.begin(), by.end(), [&](std::size_t a, std::size_t b) {
      const Group& ga = groups[a];
      const Group& gb = groups[b];
      switch (config_.coflow.order) {
        case coflow::OrderPolicy::Sebf:
          if (ga.gamma != gb.gamma) return ga.gamma < gb.gamma;
          break;
        case coflow::OrderPolicy::Priority:
          if (ga.priority != gb.priority) return ga.priority > gb.priority;
          break;
        case coflow::OrderPolicy::CriticalPath:
          if (ga.cp != gb.cp) return ga.cp > gb.cp;
          if (ga.gamma != gb.gamma) return ga.gamma < gb.gamma;
          break;
        case coflow::OrderPolicy::Fifo:
          break;
      }
      return ga.seq < gb.seq;
    });
    order.clear();
    for (std::size_t i : by) {
      order.insert(order.end(), groups[i].flows.begin(), groups[i].flows.end());
    }
    obs::count("core.hit_scheduler.coflow_ordered_waves");
  }

  for (const net::Flow* f : order) {
    const ServerId src = assignment.host(problem, f->src_task);
    const ServerId dst = assignment.host(problem, f->dst_task);
    if (!src.valid() || !dst.valid()) continue;
    if (src == dst) {
      net::Policy p;
      p.flow = f->id;
      assignment.policies[f->id] = std::move(p);
      continue;
    }
    const NodeId src_node = problem.cluster->node_of(src);
    const NodeId dst_node = problem.cluster->node_of(dst);
    const NodeId srcs[] = {src_node};
    const NodeId dsts[] = {dst_node};
    auto route = optimizer.optimal_route(srcs, dsts, f->id, f->rate,
                                         cost.metric(*f), load,
                                         /*allow_local=*/true, /*banned=*/{},
                                         budget);
    net::Policy policy;
    if (route) {
      policy = std::move(route->policy);
    } else {
      // Network saturated (or the route budget ran out): accept the shortest
      // route and let the flow-level simulator degrade its bandwidth (the
      // paper's Figure 2(a) situation).
      obs::count("core.hit_scheduler.shortest_path_fallbacks");
      policy = net::shortest_policy(*problem.topology, src_node, dst_node, f->id);
    }
    obs::count("core.hit_scheduler.flows_routed");
    optimizer.improve_policy(policy, src_node, dst_node, f->rate, cost.metric(*f),
                             load, budget);
    load.assign(policy, f->rate);
    assignment.policies[f->id] = std::move(policy);
  }
}

}  // namespace hit::core
