// Shuffle traffic cost model — Eq. (1)/(2) of the paper.
//
// A flow's routing path decomposes into segments (src -> first access switch,
// switch -> switch, last switch -> dst); the cost of all traffic between two
// containers is the sum over segments of rate x unit cost (Eq. 2).  We charge
// each segment half of each endpoint-switch's cost so a path with L switches
// costs  metric x unit x Σ_w (1 + α·util(w)) — with α = 0 this is exactly the
// case study's GB x switch-count metric (one traversed switch = 1 T of
// delay), and Eq. (5)-(7) substitution utilities telescope to
// switch_cost(w) - switch_cost(ŵ), making the separability of Eq. (6)/(11)
// hold *exactly* (property-tested).
//
// α > 0 adds congestion sensitivity: a switch near its capacity costs more,
// which is what lets policy optimization route around the overloaded w1 of
// the paper's Figure 2.
#pragma once

#include <cstddef>

#include "network/flow.h"
#include "network/load.h"
#include "network/policy.h"
#include "sched/scheduler.h"
#include "topology/topology.h"
#include "util/ids.h"

namespace hit::core {

struct CostConfig {
  double unit_cost = 1.0;          ///< c_s of Eq. (2)
  double congestion_weight = 0.5;  ///< α; 0 = pure hop metric
  /// Use flow *size* (GB·T, the case-study metric) as the traffic metric;
  /// false uses the nominal rate (Eq. 2's f.rate form).
  bool metric_is_size = true;
};

class CostModel {
 public:
  /// `load` may be null: congestion term treated as zero.
  CostModel(const topo::Topology& topology, CostConfig config = {},
            const net::LoadTracker* load = nullptr);

  [[nodiscard]] const CostConfig& config() const noexcept { return config_; }
  void set_load(const net::LoadTracker* load) noexcept { load_ = load; }

  /// Traffic metric of a flow per the config.
  [[nodiscard]] double metric(const net::Flow& flow) const {
    return config_.metric_is_size ? flow.size_gb : flow.rate;
  }

  /// Per-switch charge: unit x (1 + α·util(w)).
  [[nodiscard]] double switch_cost(NodeId w) const;

  /// C_k(a, b): cost of moving `metric` across segment a->b (Eq. 2 term).
  /// Each switch endpoint contributes half its switch_cost; servers are free.
  [[nodiscard]] double segment_cost(NodeId a, NodeId b, double metric) const;

  /// Full policy cost: Σ segments, == metric x Σ_w switch_cost(w).
  /// Zero for empty policies (co-located endpoints).
  [[nodiscard]] double policy_cost(const net::Policy& policy, double metric) const;

  /// Eq. (5)/(7): utility of rescheduling position i of the policy to ŵ.
  /// Positive utility = cost reduction.  `src`/`dst` are the endpoint server
  /// nodes (needed when i is an end access switch, Eq. 7).
  [[nodiscard]] double substitution_utility(const net::Policy& policy, NodeId src,
                                            NodeId dst, std::size_t i, NodeId w_hat,
                                            double metric) const;

  /// Total shuffle cost of an assignment: Σ_{flows placed} policy cost.
  /// Flows with an unplaced endpoint or no policy are skipped.
  [[nodiscard]] double assignment_cost(const sched::Problem& problem,
                                       const sched::Assignment& assignment) const;

  /// Remote-map traffic cost: for every map task placed off-replica, split
  /// size x switch hops to the nearest replica (needs problem.blocks).
  [[nodiscard]] double remote_map_cost(const sched::Problem& problem,
                                       const sched::Assignment& assignment) const;

 private:
  const topo::Topology* topology_;
  CostConfig config_;
  const net::LoadTracker* load_;
};

}  // namespace hit::core
