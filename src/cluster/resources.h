// Multi-dimensional resource vectors (the paper's r_i / q_j in §3.1):
// "physical resource requirements of c_i, such as memory size, CPU cycles".
#pragma once

#include <ostream>

namespace hit::cluster {

struct Resource {
  double vcores = 0.0;  ///< CPU cores
  double mem_gb = 0.0;  ///< memory, GiB

  friend constexpr Resource operator+(Resource a, Resource b) {
    return {a.vcores + b.vcores, a.mem_gb + b.mem_gb};
  }
  friend constexpr Resource operator-(Resource a, Resource b) {
    return {a.vcores - b.vcores, a.mem_gb - b.mem_gb};
  }
  friend constexpr Resource operator*(Resource a, double k) {
    return {a.vcores * k, a.mem_gb * k};
  }
  Resource& operator+=(Resource b) { return *this = *this + b; }
  Resource& operator-=(Resource b) { return *this = *this - b; }

  friend constexpr bool operator==(Resource a, Resource b) {
    return a.vcores == b.vcores && a.mem_gb == b.mem_gb;
  }

  /// Component-wise "fits inside" — the capacity test Σ r_i <= q_j.
  [[nodiscard]] constexpr bool fits_in(Resource capacity) const {
    return vcores <= capacity.vcores && mem_gb <= capacity.mem_gb;
  }

  [[nodiscard]] constexpr bool non_negative() const {
    return vcores >= 0.0 && mem_gb >= 0.0;
  }

  friend std::ostream& operator<<(std::ostream& os, Resource r) {
    return os << "<" << r.vcores << " vcores, " << r.mem_gb << " GiB>";
  }
};

/// Default container demand used throughout the experiments: the paper's
/// case study caps each server at two concurrent tasks, which a 2-slot
/// server capacity with 1-slot containers reproduces.
inline constexpr Resource kDefaultContainerDemand{1.0, 4.0};

}  // namespace hit::cluster
