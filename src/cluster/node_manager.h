// Per-server NodeManager: the YARN agent that launches granted containers
// and reports liveness.  In this reproduction it is a bookkeeping layer the
// simulator drives; it exists so the control flow matches the paper's §6
// (RM grants -> AM presents container to the NM managing the host).
#pragma once

#include <cstddef>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/resource_manager.h"
#include "util/ids.h"

namespace hit::cluster {

class NodeManager {
 public:
  NodeManager(ServerId server, const ResourceManager& rm)
      : server_(server), rm_(&rm) {}

  [[nodiscard]] ServerId server() const noexcept { return server_; }

  /// Launch a granted container.  Throws if the container was granted on a
  /// different host — the AM must present it to the right NodeManager.
  void launch(ContainerId id, double now);

  /// Mark a running container finished.
  void complete(ContainerId id, double now);

  [[nodiscard]] bool running(ContainerId id) const { return running_.count(id) > 0; }
  [[nodiscard]] std::size_t running_count() const noexcept { return running_.size(); }

  struct Record {
    ContainerId container;
    double launched_at = 0.0;
    double completed_at = -1.0;  ///< -1 while running
  };
  [[nodiscard]] const std::vector<Record>& history() const noexcept { return history_; }

 private:
  ServerId server_;
  const ResourceManager* rm_;
  std::unordered_set<ContainerId> running_;
  std::unordered_map<ContainerId, std::size_t> record_index_;
  std::vector<Record> history_;
};

/// One NodeManager per cluster server.
class NodeManagerPool {
 public:
  explicit NodeManagerPool(const ResourceManager& rm);

  [[nodiscard]] NodeManager& at(ServerId server);
  [[nodiscard]] const NodeManager& at(ServerId server) const;

  /// Route a grant to the owning NodeManager and launch it.
  void launch(const ResourceManager& rm, ContainerId id, double now);

 private:
  std::vector<NodeManager> nodes_;
};

}  // namespace hit::cluster
