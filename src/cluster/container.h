// YARN-style containers: the unit of resource allocation.  Each container
// hosts at most one Map or Reduce task (Eq. 3, constraints 2-3).
#pragma once

#include "cluster/resources.h"
#include "util/ids.h"

namespace hit::cluster {

enum class TaskKind : std::uint8_t { Map, Reduce };

struct Container {
  ContainerId id;
  Resource demand;     ///< r_i
  ServerId host;       ///< A(c_i); invalid until granted
  TaskId task;         ///< hosted task; invalid while idle
  JobId job;
  TaskKind kind = TaskKind::Map;
  bool released = false;
};

}  // namespace hit::cluster
