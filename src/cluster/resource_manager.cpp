#include "cluster/resource_manager.h"

#include <stdexcept>

namespace hit::cluster {

ResourceManager::ResourceManager(const Cluster& cluster)
    : cluster_(&cluster), used_(cluster.size()) {}

Resource ResourceManager::used(ServerId server) const {
  if (!server.valid() || server.index() >= used_.size()) {
    throw std::out_of_range("ResourceManager: unknown server");
  }
  return used_[server.index()];
}

Resource ResourceManager::available(ServerId server) const {
  return cluster_->server(server).capacity - used(server);
}

bool ResourceManager::can_host(ServerId server, Resource demand) const {
  return (used(server) + demand).fits_in(cluster_->server(server).capacity);
}

std::optional<ContainerId> ResourceManager::allocate(const ResourceRequest& request) {
  if (!request.demand.non_negative()) {
    throw std::invalid_argument("ResourceManager: negative demand");
  }
  ServerId host;
  if (request.preferred_host.valid() && can_host(request.preferred_host, request.demand)) {
    host = request.preferred_host;
  } else if (!request.strict) {
    for (const Server& s : cluster_->servers()) {
      if (can_host(s.id, request.demand)) {
        host = s.id;
        break;
      }
    }
  }
  if (!host.valid()) return std::nullopt;

  const ContainerId id(static_cast<ContainerId::value_type>(containers_.size()));
  containers_.push_back(Container{id, request.demand, host, request.task,
                                  request.job, request.kind, false});
  used_[host.index()] += request.demand;
  if (request.task.valid()) by_task_[request.task] = id;
  return id;
}

void ResourceManager::release(ContainerId id) {
  if (!id.valid() || id.index() >= containers_.size()) {
    throw std::out_of_range("ResourceManager: unknown container");
  }
  Container& c = containers_[id.index()];
  if (c.released) return;
  c.released = true;
  used_[c.host.index()] -= c.demand;
  if (c.task.valid()) by_task_.erase(c.task);
}

const Container& ResourceManager::container(ContainerId id) const {
  if (!id.valid() || id.index() >= containers_.size()) {
    throw std::out_of_range("ResourceManager: unknown container");
  }
  return containers_[id.index()];
}

std::vector<ContainerId> ResourceManager::containers_on(ServerId server) const {
  std::vector<ContainerId> out;
  for (const Container& c : containers_) {
    if (!c.released && c.host == server) out.push_back(c.id);
  }
  return out;
}

std::vector<ContainerId> ResourceManager::live_containers() const {
  std::vector<ContainerId> out;
  for (const Container& c : containers_) {
    if (!c.released) out.push_back(c.id);
  }
  return out;
}

std::optional<ContainerId> ResourceManager::container_of(TaskId task) const {
  const auto it = by_task_.find(task);
  if (it == by_task_.end()) return std::nullopt;
  return it->second;
}

void ResourceManager::audit() const {
  std::vector<Resource> recomputed(used_.size());
  for (const Container& c : containers_) {
    if (!c.released) recomputed[c.host.index()] += c.demand;
  }
  for (std::size_t i = 0; i < used_.size(); ++i) {
    if (!(recomputed[i] == used_[i])) {
      throw std::logic_error("ResourceManager::audit: usage ledger mismatch");
    }
    const Resource cap = cluster_->servers()[i].capacity;
    if (!used_[i].fits_in(cap)) {
      throw std::logic_error("ResourceManager::audit: server over capacity");
    }
  }
}

}  // namespace hit::cluster
