#include "cluster/cluster.h"

namespace hit::cluster {

Cluster::Cluster(const topo::Topology& topology, Resource per_server_capacity)
    : Cluster(topology, std::vector<Resource>(topology.servers().size(),
                                              per_server_capacity)) {}

Cluster::Cluster(const topo::Topology& topology, std::vector<Resource> capacities)
    : topology_(&topology) {
  const auto hosts = topology.servers();
  if (capacities.size() != hosts.size()) {
    throw std::invalid_argument("Cluster: capacity list size != host count");
  }
  servers_.reserve(hosts.size());
  node_to_server_.assign(topology.node_count(), ServerId{});
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    if (!capacities[i].non_negative()) {
      throw std::invalid_argument("Cluster: negative capacity");
    }
    const ServerId id(static_cast<ServerId::value_type>(i));
    servers_.push_back(Server{id, hosts[i], capacities[i], topology.info(hosts[i]).name});
    node_to_server_[hosts[i].index()] = id;
  }
}

const Server& Cluster::server(ServerId id) const {
  if (!id.valid() || id.index() >= servers_.size()) {
    throw std::out_of_range("Cluster: unknown server id");
  }
  return servers_[id.index()];
}

ServerId Cluster::server_at(NodeId node) const {
  if (!node.valid() || node.index() >= node_to_server_.size() ||
      !node_to_server_[node.index()].valid()) {
    throw std::out_of_range("Cluster: node does not host a server");
  }
  return node_to_server_[node.index()];
}

Resource Cluster::total_capacity() const {
  Resource total;
  for (const Server& s : servers_) total += s.capacity;
  return total;
}

}  // namespace hit::cluster
