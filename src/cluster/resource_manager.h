// YARN-like ResourceManager: tracks per-server allocation state and grants
// containers against ResourceRequests.
//
// This reproduces the control flow of the paper's §6 implementation: an
// ApplicationMaster submits a ResourceRequest (the Hit variant carries a
// *preferred host*, mirroring Hit-ResourceRequest's resource-name field); the
// RM answers with a Container granted on that host when it has room, or —
// unless the request is strict — on the first server with capacity.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/container.h"
#include "cluster/resources.h"
#include "util/ids.h"

namespace hit::cluster {

struct ResourceRequest {
  Resource demand = kDefaultContainerDemand;
  TaskId task;
  JobId job;
  TaskKind kind = TaskKind::Map;
  /// Preferred server; invalid means "anywhere" (plain ResourceRequest).
  ServerId preferred_host;
  /// When true, fail instead of falling back to another host
  /// (Hit-Scheduler uses strict grants: the matching already decided).
  bool strict = false;
};

class ResourceManager {
 public:
  explicit ResourceManager(const Cluster& cluster);

  [[nodiscard]] const Cluster& cluster() const noexcept { return *cluster_; }

  /// Resources currently allocated on a server: Σ_{c in A(s)} r_c.
  [[nodiscard]] Resource used(ServerId server) const;
  [[nodiscard]] Resource available(ServerId server) const;
  [[nodiscard]] bool can_host(ServerId server, Resource demand) const;

  /// Grant a container.  Placement preference order:
  ///   1. preferred_host when set and it has room;
  ///   2. (non-strict only) first server, in id order, with room.
  /// Returns nullopt when nothing fits.
  std::optional<ContainerId> allocate(const ResourceRequest& request);

  /// Release a container's resources.  Idempotent on released containers.
  void release(ContainerId id);

  [[nodiscard]] const Container& container(ContainerId id) const;

  /// A(s_j): live containers hosted by a server.
  [[nodiscard]] std::vector<ContainerId> containers_on(ServerId server) const;

  /// All live (granted, unreleased) containers.
  [[nodiscard]] std::vector<ContainerId> live_containers() const;

  /// Container hosting a given task, if any.
  [[nodiscard]] std::optional<ContainerId> container_of(TaskId task) const;

  /// Invariant check: per-server usage equals the sum over live containers
  /// and never exceeds capacity.  Throws std::logic_error on violation.
  void audit() const;

 private:
  const Cluster* cluster_;
  std::vector<Container> containers_;
  std::vector<Resource> used_;                      // per server
  std::unordered_map<TaskId, ContainerId> by_task_;
};

}  // namespace hit::cluster
