// Compute-cluster view layered over a Topology: every host node becomes a
// Server with a resource capacity q_j.  The Cluster is immutable once built;
// dynamic allocation state lives in the ResourceManager.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/resources.h"
#include "topology/topology.h"
#include "util/ids.h"

namespace hit::cluster {

struct Server {
  ServerId id;
  NodeId node;           ///< position in the topology graph
  Resource capacity;     ///< q_j
  std::string hostname;
};

class Cluster {
 public:
  /// One Server per topology host, all with the same capacity.
  Cluster(const topo::Topology& topology, Resource per_server_capacity);

  /// Heterogeneous capacities: `capacities[i]` applies to the i-th host.
  Cluster(const topo::Topology& topology, std::vector<Resource> capacities);

  [[nodiscard]] const topo::Topology& topology() const noexcept { return *topology_; }
  [[nodiscard]] std::span<const Server> servers() const noexcept { return servers_; }
  [[nodiscard]] std::size_t size() const noexcept { return servers_.size(); }

  [[nodiscard]] const Server& server(ServerId id) const;

  /// Reverse lookup: which server sits on this topology node?
  [[nodiscard]] ServerId server_at(NodeId node) const;

  [[nodiscard]] NodeId node_of(ServerId id) const { return server(id).node; }

  /// Total capacity across all servers.
  [[nodiscard]] Resource total_capacity() const;

 private:
  const topo::Topology* topology_;
  std::vector<Server> servers_;
  std::vector<ServerId> node_to_server_;  // indexed by NodeId; invalid for switches
};

}  // namespace hit::cluster
