#include "cluster/node_manager.h"

#include <stdexcept>

namespace hit::cluster {

void NodeManager::launch(ContainerId id, double now) {
  const Container& c = rm_->container(id);
  if (c.host != server_) {
    throw std::invalid_argument("NodeManager: container granted on another host");
  }
  if (c.released) throw std::invalid_argument("NodeManager: container already released");
  if (!running_.insert(id).second) {
    throw std::invalid_argument("NodeManager: container already running");
  }
  record_index_[id] = history_.size();
  history_.push_back(Record{id, now, -1.0});
}

void NodeManager::complete(ContainerId id, double now) {
  if (running_.erase(id) == 0) {
    throw std::invalid_argument("NodeManager: completing a container that is not running");
  }
  history_[record_index_.at(id)].completed_at = now;
}

NodeManagerPool::NodeManagerPool(const ResourceManager& rm) {
  nodes_.reserve(rm.cluster().size());
  for (const Server& s : rm.cluster().servers()) {
    nodes_.emplace_back(s.id, rm);
  }
}

NodeManager& NodeManagerPool::at(ServerId server) {
  if (!server.valid() || server.index() >= nodes_.size()) {
    throw std::out_of_range("NodeManagerPool: unknown server");
  }
  return nodes_[server.index()];
}

const NodeManager& NodeManagerPool::at(ServerId server) const {
  return const_cast<NodeManagerPool*>(this)->at(server);
}

void NodeManagerPool::launch(const ResourceManager& rm, ContainerId id, double now) {
  at(rm.container(id).host).launch(id, now);
}

}  // namespace hit::cluster
