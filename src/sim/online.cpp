#include "sim/online.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <queue>
#include <stdexcept>
#include <unordered_map>

#include "network/bandwidth.h"
#include "network/load.h"
#include "network/routing.h"
#include "sim/delay_fetcher.h"

namespace hit::sim {
namespace {

constexpr double kEps = 1e-9;
constexpr double kInf = std::numeric_limits<double>::infinity();

struct JobFlow {
  const net::Flow* flow = nullptr;
  std::size_t job = 0;      // index into the jobs vector
  double release = kInf;    // src map finish (set at schedule time)
  double remaining = 0.0;
  topo::Path path;          // empty for local flows
  net::Policy policy;
  std::size_t hops = 0;
  bool local = false;
  double finish = -1.0;
  bool released = false;
  bool done = false;
};

struct RunningJob {
  bool scheduled = false;
  bool finished = false;
  double arrival = 0.0;
  double scheduled_at = 0.0;
  double map_finish_max = 0.0;
  std::size_t flows_remaining = 0;
  double shuffle_cost = 0.0;
  std::unordered_map<TaskId, ServerId> placement;
  std::unordered_map<TaskId, double> reduce_last_input;
};

/// Min-heap of (time, payload).
using TimedEvent = std::pair<double, std::size_t>;
using MinHeap = std::priority_queue<TimedEvent, std::vector<TimedEvent>,
                                    std::greater<TimedEvent>>;

}  // namespace

std::vector<double> OnlineResult::completion_times() const {
  std::vector<double> out;
  out.reserve(jobs.size());
  for (const auto& j : jobs) out.push_back(j.completion_time());
  return out;
}

std::vector<double> OnlineResult::queueing_delays() const {
  std::vector<double> out;
  out.reserve(jobs.size());
  for (const auto& j : jobs) out.push_back(j.queueing_delay());
  return out;
}

double OnlineResult::average_flow_duration() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const FlowTiming& f : flows) {
    if (f.local) continue;
    sum += f.duration();
    ++n;
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

OnlineSimulator::OnlineSimulator(const cluster::Cluster& cluster, OnlineConfig config)
    : cluster_(&cluster), config_(config) {
  if (config_.arrival_rate <= 0.0) {
    throw std::invalid_argument("OnlineSimulator: arrival_rate must be positive");
  }
}

OnlineResult OnlineSimulator::run(sched::Scheduler& scheduler,
                                  const std::vector<mr::Job>& jobs,
                                  mr::IdAllocator& ids, Rng& rng) const {
  const topo::Topology& topology = cluster_->topology();
  OnlineResult result;
  if (jobs.empty()) return result;

  // Static inputs: HDFS layout, per-job flows, arrival times.
  Rng hdfs_rng = rng.fork(0x48444653);
  const mr::BlockPlacement blocks(*cluster_, jobs, hdfs_rng, config_.sim.hdfs_replication);

  std::vector<net::FlowSet> job_flow_sets;
  job_flow_sets.reserve(jobs.size());
  for (const mr::Job& job : jobs) {
    job_flow_sets.push_back(mr::build_shuffle_flows(job, ids, config_.sim.shuffle));
  }

  Rng arrival_rng = rng.fork(0x41525256);
  std::vector<double> arrivals(jobs.size());
  double clock = 0.0;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    clock += arrival_rng.exponential(config_.arrival_rate);
    arrivals[j] = clock;
  }

  // Feasibility: every job must fit an empty cluster.
  cluster::Resource total_capacity = cluster_->total_capacity();
  for (const mr::Job& job : jobs) {
    const cluster::Resource need =
        config_.sim.container_demand * static_cast<double>(job.task_count());
    if (!need.fits_in(total_capacity)) {
      throw std::runtime_error("OnlineSimulator: job larger than the cluster");
    }
  }

  // Mutable state.
  std::vector<JobFlow> flows;  // all jobs' flows, flattened
  std::vector<std::size_t> flow_base(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    flow_base[j] = flows.size();
    for (const net::Flow& f : job_flow_sets[j]) {
      JobFlow jf;
      jf.flow = &f;
      jf.job = j;
      jf.remaining = f.size_gb;
      flows.push_back(std::move(jf));
    }
  }

  std::vector<RunningJob> state(jobs.size());
  std::vector<cluster::Resource> usage(cluster_->size());
  net::LoadTracker load(topology);
  const DelayFetcher fetcher(*cluster_, config_.sim.map_fetch_bandwidth_scale,
                             config_.sim.local_disk_bandwidth);
  const net::MaxMinFairAllocator allocator(topology, config_.sim.bandwidth_scale);

  std::deque<std::size_t> waiting;
  MinHeap releases;      // (time, flow index)
  MinHeap local_done;    // (time, flow index)
  MinHeap job_finishes;  // (time, job index)
  std::vector<std::size_t> active;  // network flows in the fluid pool
  double now = 0.0;
  std::size_t next_arrival = 0;
  std::size_t jobs_finished = 0;

  auto try_schedule = [&](std::size_t j) -> bool {
    const mr::Job& job = jobs[j];
    sched::Problem problem;
    problem.topology = &topology;
    problem.cluster = cluster_;
    problem.blocks = &blocks;
    problem.base_usage = usage;
    problem.ambient_load = &load;
    for (const mr::Task& t : job.maps) {
      problem.tasks.push_back(sched::TaskRef{t.id, job.id, t.kind,
                                             config_.sim.container_demand, t.input_gb});
    }
    for (const mr::Task& t : job.reduces) {
      problem.tasks.push_back(sched::TaskRef{t.id, job.id, t.kind,
                                             config_.sim.container_demand, t.input_gb});
    }
    problem.flows = job_flow_sets[j];

    Rng wave_rng = rng.fork(1000 + j);
    sched::Assignment assignment;
    try {
      assignment = scheduler.schedule(problem, wave_rng);
    } catch (const std::runtime_error&) {
      return false;  // does not fit right now
    }
    sched::validate_assignment(problem, assignment);

    RunningJob& run = state[j];
    run.scheduled = true;
    run.scheduled_at = now;
    run.placement = assignment.placement;
    for (const sched::TaskRef& t : problem.tasks) {
      usage[assignment.placement.at(t.id).index()] += t.demand;
    }

    // Map finishes drive flow releases.
    run.flows_remaining = job_flow_sets[j].size();
    std::unordered_map<TaskId, double> map_finish;
    for (const mr::Task& t : job.maps) {
      const ServerId host = assignment.placement.at(t.id);
      double fetch;
      if (blocks.local(t.id, host)) {
        fetch = fetcher.fetch_seconds(t.input_gb, host, host);
      } else {
        fetch = kInf;
        for (ServerId r : blocks.replicas(t.id)) {
          fetch = std::min(fetch, fetcher.fetch_seconds(t.input_gb, r, host));
        }
      }
      double jitter = 1.0;
      if (config_.sim.map_time_jitter_sigma > 0.0) {
        Rng jitter_rng = rng.fork(0x4A495454ull ^ t.id.value());
        jitter = jitter_rng.lognormal_median(1.0, config_.sim.map_time_jitter_sigma);
      }
      const double finish = now + fetch + t.compute_seconds * jitter;
      map_finish[t.id] = finish;
      run.map_finish_max = std::max(run.map_finish_max, finish);
    }

    for (std::size_t k = 0; k < job_flow_sets[j].size(); ++k) {
      const std::size_t idx = flow_base[j] + k;
      JobFlow& jf = flows[idx];
      jf.release = map_finish.at(jf.flow->src_task);
      const ServerId src = assignment.placement.at(jf.flow->src_task);
      const ServerId dst = assignment.placement.at(jf.flow->dst_task);
      if (src == dst || jf.flow->size_gb <= 0.0) {
        jf.local = true;
        const double disk = config_.sim.local_disk_bandwidth > 0.0
                                ? jf.flow->size_gb / config_.sim.local_disk_bandwidth
                                : 0.0;
        local_done.emplace(jf.release + disk, idx);
      } else {
        const NodeId src_node = cluster_->node_of(src);
        const NodeId dst_node = cluster_->node_of(dst);
        const auto it = assignment.policies.find(jf.flow->id);
        jf.policy = (it != assignment.policies.end() && !it->second.list.empty())
                        ? it->second
                        : net::shortest_policy(topology, src_node, dst_node,
                                               jf.flow->id);
        jf.path = jf.policy.realize(topology, src_node, dst_node);
        jf.hops = jf.policy.len();
        load.assign(jf.policy, jf.flow->rate);
        run.shuffle_cost +=
            jf.flow->size_gb * static_cast<double>(jf.hops);
        releases.emplace(jf.release, idx);
      }
    }
    if (run.flows_remaining == 0) {
      double compute = 0.0;
      for (const mr::Task& t : job.reduces) {
        compute = std::max(compute, t.compute_seconds);
      }
      job_finishes.emplace(std::max(run.map_finish_max, now) + compute, j);
    }
    return true;
  };

  auto complete_flow = [&](std::size_t idx, double at) {
    JobFlow& jf = flows[idx];
    jf.done = true;
    jf.finish = at;
    RunningJob& run = state[jf.job];
    double& last = run.reduce_last_input[jf.flow->dst_task];
    last = std::max(last, at);
    if (!jf.local) load.remove(jf.policy, jf.flow->rate);
    if (--run.flows_remaining == 0) {
      // All inputs delivered: every reduce finishes after its own last
      // input plus compute; the job after the slowest reduce.
      double finish = run.map_finish_max;
      for (const mr::Task& t : jobs[jf.job].reduces) {
        const auto it = run.reduce_last_input.find(t.id);
        const double input_done =
            it != run.reduce_last_input.end() ? it->second : run.map_finish_max;
        finish = std::max(finish, input_done + t.compute_seconds);
      }
      job_finishes.emplace(std::max(finish, at), jf.job);
    }
  };

  // ---- main event loop ------------------------------------------------
  while (jobs_finished < jobs.size()) {
    // Current fair rates for the fluid pool.
    std::vector<net::FlowDemand> demands;
    demands.reserve(active.size());
    for (std::size_t idx : active) {
      demands.push_back(net::FlowDemand{flows[idx].flow->id, flows[idx].path, 0.0});
    }
    const std::vector<double> rates =
        active.empty() ? std::vector<double>{} : allocator.allocate(demands);

    double completion_at = kInf;
    for (std::size_t i = 0; i < active.size(); ++i) {
      if (rates[i] > kEps) {
        completion_at = std::min(completion_at, now + flows[active[i]].remaining / rates[i]);
      }
    }
    const double arrival_at =
        next_arrival < jobs.size() ? arrivals[next_arrival] : kInf;
    const double release_at = releases.empty() ? kInf : releases.top().first;
    const double local_at = local_done.empty() ? kInf : local_done.top().first;
    const double finish_at = job_finishes.empty() ? kInf : job_finishes.top().first;

    const double next_time =
        std::min({completion_at, arrival_at, release_at, local_at, finish_at});
    if (!std::isfinite(next_time)) {
      throw std::runtime_error("OnlineSimulator: stalled (no runnable event)");
    }
    const double dt = next_time - now;
    for (std::size_t i = 0; i < active.size(); ++i) {
      flows[active[i]].remaining -= rates[i] * dt;
    }
    now = next_time;

    // 1. Network flow completions.
    std::vector<std::size_t> still_active;
    still_active.reserve(active.size());
    for (std::size_t idx : active) {
      if (flows[idx].remaining <= kEps) {
        complete_flow(idx, now);
      } else {
        still_active.push_back(idx);
      }
    }
    active = std::move(still_active);

    // 2. Local flow completions.
    while (!local_done.empty() && local_done.top().first <= now + kEps) {
      const std::size_t idx = local_done.top().second;
      local_done.pop();
      complete_flow(idx, now);
    }

    // 3. Flow releases into the fluid pool.
    while (!releases.empty() && releases.top().first <= now + kEps) {
      const std::size_t idx = releases.top().second;
      releases.pop();
      flows[idx].released = true;
      active.push_back(idx);
    }

    // 4. Job finishes: free containers, record, drain the FIFO queue.
    bool freed = false;
    while (!job_finishes.empty() && job_finishes.top().first <= now + kEps) {
      const std::size_t j = job_finishes.top().second;
      job_finishes.pop();
      RunningJob& run = state[j];
      if (run.finished) continue;
      run.finished = true;
      ++jobs_finished;
      freed = true;
      const cluster::Resource each = config_.sim.container_demand;
      for (const auto& [task, server] : run.placement) {
        usage[server.index()] -= each;
      }
      OnlineJobRecord record;
      record.id = jobs[j].id;
      record.benchmark = jobs[j].benchmark;
      record.cls = jobs[j].cls;
      record.arrival = arrivals[j];
      record.scheduled = run.scheduled_at;
      record.finish = now;
      record.shuffle_gb = jobs[j].shuffle_gb;
      record.shuffle_cost = run.shuffle_cost;
      result.jobs.push_back(record);
      result.makespan = std::max(result.makespan, now);
      result.total_shuffle_cost += run.shuffle_cost;
      result.total_shuffle_gb += jobs[j].shuffle_gb;
    }

    // 5. Arrivals.
    while (next_arrival < jobs.size() && arrivals[next_arrival] <= now + kEps) {
      waiting.push_back(next_arrival++);
    }

    // 6. FIFO admission: schedule from the head while jobs fit.
    if (freed || !waiting.empty()) {
      while (!waiting.empty()) {
        if (!try_schedule(waiting.front())) break;  // head-of-line blocks
        waiting.pop_front();
      }
    }
    if (config_.max_queue_wait > 0.0 && !waiting.empty() &&
        now - arrivals[waiting.front()] > config_.max_queue_wait) {
      throw std::runtime_error("OnlineSimulator: queue wait limit exceeded (overload)");
    }
  }

  for (const JobFlow& jf : flows) {
    FlowTiming ft;
    ft.id = jf.flow->id;
    ft.job = jf.flow->job;
    ft.release = jf.release;
    ft.finish = jf.finish;
    ft.size_gb = jf.flow->size_gb;
    ft.route_hops = jf.hops;
    ft.local = jf.local;
    result.flows.push_back(ft);
  }
  std::sort(result.jobs.begin(), result.jobs.end(),
            [](const OnlineJobRecord& a, const OnlineJobRecord& b) {
              return a.arrival < b.arrival;
            });
  return result;
}

}  // namespace hit::sim
