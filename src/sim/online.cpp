#include "sim/online.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <memory>
#include <optional>
#include <queue>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "coflow/ordering.h"
#include "coflow/rate_allocator.h"
#include "core/errors.h"
#include "network/bandwidth.h"
#include "network/load.h"
#include "network/routing.h"
#include "obs/context.h"
#include "sim/ctrlplane.h"
#include "sim/delay_fetcher.h"
#include "sim/faults.h"
#include "stats/summary.h"

namespace hit::sim {
namespace {

constexpr double kEps = 1e-9;
// Disjoint RNG salt for map-output loss draws ("LOSS"); forked per draw from
// the run's base stream, keyed by (task id, fault-event ordinal) so the same
// seed always loses the same outputs regardless of unordered-map iteration.
constexpr std::uint64_t kLossSalt = 0x4C4F535300000000ull;
constexpr double kInf = std::numeric_limits<double>::infinity();

struct JobFlow {
  const net::Flow* flow = nullptr;
  std::size_t job = 0;      // index into the jobs vector
  double release = kInf;    // src map finish (set at schedule time)
  double remaining = 0.0;
  topo::Path path;          // empty for local flows
  net::Policy policy;
  NodeId src_node;
  NodeId dst_node;
  std::size_t hops = 0;
  bool local = false;
  double finish = -1.0;
  double local_done_at = kInf;
  bool released = false;
  bool done = false;
  bool charged = false;     // rate currently on the load ledger
  bool stalled = false;     // no alive route; parked until repair
  double stall_since = 0.0;
  double stall_seconds = 0.0;
  std::size_t reroutes = 0;
};

struct RunningJob {
  bool scheduled = false;
  bool finished = false;
  double arrival = 0.0;
  double scheduled_at = 0.0;
  double map_finish_max = 0.0;
  double expected_finish = kInf;  // guards stale job_finishes heap entries
  std::size_t flows_remaining = 0;
  double shuffle_cost = 0.0;
  std::unordered_map<TaskId, ServerId> placement;
  std::unordered_map<TaskId, double> map_finish;
  std::unordered_map<TaskId, double> reduce_last_input;
};

/// Min-heap of (time, payload).
using TimedEvent = std::pair<double, std::size_t>;
using MinHeap = std::priority_queue<TimedEvent, std::vector<TimedEvent>,
                                    std::greater<TimedEvent>>;

}  // namespace

const char* admission_policy_name(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::Unbounded: return "unbounded";
    case AdmissionPolicy::RejectNew: return "reject-new";
    case AdmissionPolicy::DropOldest: return "drop-oldest";
    case AdmissionPolicy::DeadlineShed: return "deadline-shed";
    case AdmissionPolicy::Aimd: return "aimd";
  }
  return "?";
}

const char* shed_reason_name(ShedReason reason) {
  switch (reason) {
    case ShedReason::QueueFull: return "queue-full";
    case ShedReason::Displaced: return "displaced";
    case ShedReason::Deadline: return "deadline";
    case ShedReason::Parent: return "parent-shed";
  }
  return "?";
}

std::vector<double> OnlineResult::completion_times() const {
  std::vector<double> out;
  out.reserve(jobs.size());
  for (const auto& j : jobs) out.push_back(j.completion_time());
  return out;
}

std::vector<double> OnlineResult::queueing_delays() const {
  std::vector<double> out;
  out.reserve(jobs.size());
  for (const auto& j : jobs) out.push_back(j.queueing_delay());
  return out;
}

double OnlineResult::average_flow_duration() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const FlowTiming& f : flows) {
    if (f.local) continue;
    sum += f.duration();
    ++n;
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

OnlineSimulator::OnlineSimulator(const cluster::Cluster& cluster, OnlineConfig config)
    : cluster_(&cluster), config_(config) {
  if (config_.arrival_rate <= 0.0) {
    throw std::invalid_argument("OnlineSimulator: arrival_rate must be positive");
  }
  const AdmissionPolicy p = config_.admission.policy;
  if ((p == AdmissionPolicy::RejectNew || p == AdmissionPolicy::DropOldest) &&
      config_.admission.max_queue == 0) {
    throw std::invalid_argument(
        "OnlineSimulator: bounded admission policies need max_queue > 0");
  }
  if (p == AdmissionPolicy::DeadlineShed && config_.max_queue_wait <= 0.0) {
    throw std::invalid_argument(
        "OnlineSimulator: deadline-shed needs max_queue_wait > 0");
  }
  if (p == AdmissionPolicy::Aimd && !config_.admission.aimd.valid()) {
    throw std::invalid_argument("OnlineSimulator: invalid AIMD config");
  }
}

OnlineResult OnlineSimulator::run(sched::Scheduler& scheduler,
                                  const std::vector<mr::Job>& jobs,
                                  mr::IdAllocator& ids, Rng& rng) const {
  const obs::Bind bind(config_.sim.observer);
  HIT_PROF_SCOPE("sim.online.run");
  obs::count("online.runs");
  const topo::Topology& topology = cluster_->topology();
  OnlineResult result;
  RecoveryStats& rec = result.recovery;
  if (jobs.empty()) return result;

  // Static inputs: HDFS layout, per-job flows, arrival times.
  Rng hdfs_rng = rng.fork(0x48444653);
  const mr::BlockPlacement blocks(*cluster_, jobs, hdfs_rng, config_.sim.hdfs_replication);

  std::vector<net::FlowSet> job_flow_sets;
  job_flow_sets.reserve(jobs.size());
  for (const mr::Job& job : jobs) {
    job_flow_sets.push_back(mr::build_shuffle_flows(job, ids, config_.sim.shuffle));
  }

  Rng arrival_rng = rng.fork(0x41525256);
  std::vector<double> arrivals(jobs.size());
  const WorkflowPlan& plan = config_.workflow;
  const bool wf_on = plan.enabled();
  if (!wf_on) {
    double clock = 0.0;
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      clock += arrival_rng.exponential(config_.arrival_rate);
      arrivals[j] = clock;
    }
  }

  // ---- DAG-workflow dependency gating ---------------------------------
  // With a plan, arrivals are drawn per workflow *group* (one Poisson gap
  // per workflow instance): every root stage of a group arrives at the
  // group's instant, every child stage sits at +inf until all of its parent
  // stages have a finished attempt, and `pending_arrivals` replaces the
  // sequential arrivals walk.  Without a plan none of this state exists and
  // the run is bit-identical to the legacy independent-arrival model.
  struct StageState {
    bool done = false;            // some attempt finished
    double finish = 0.0;          // first attempt finish (stage completion)
    std::size_t winner = 0;       // attempt index that completed the stage
    std::size_t attempts_shed = 0;
    bool failed = false;          // every attempt shed, descendants doomed
  };
  std::vector<StageState> stage_state;
  std::vector<double> unlocked_at;       // per job: when the attempt got ready
  std::vector<std::size_t> wf_restarts;  // per job: fault re-executions
  MinHeap pending_arrivals;              // (time, job) — workflow mode only
  if (wf_on) {
    if (plan.job_tags.size() != jobs.size()) {
      throw std::invalid_argument(
          "OnlineSimulator: workflow plan does not match the jobs vector");
    }
    stage_state.resize(plan.stages.size());
    wf_restarts.assign(jobs.size(), 0);
    std::vector<double> group_arrival(plan.groups, 0.0);
    double wf_clock = 0.0;
    for (std::size_t g = 0; g < plan.groups; ++g) {
      wf_clock += arrival_rng.exponential(config_.arrival_rate);
      group_arrival[g] = wf_clock;
    }
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      const WorkflowPlan::JobTag& tag = plan.job_tags[j];
      const bool root = plan.stages[tag.stage].parents.empty();
      arrivals[j] = root ? group_arrival[tag.group] : kInf;
      if (root) pending_arrivals.emplace(arrivals[j], j);
    }
    unlocked_at = arrivals;
  }

  // Feasibility: every job must fit an empty cluster.
  cluster::Resource total_capacity = cluster_->total_capacity();
  for (const mr::Job& job : jobs) {
    const cluster::Resource need =
        config_.sim.container_demand * static_cast<double>(job.task_count());
    if (!need.fits_in(total_capacity)) {
      throw std::runtime_error("OnlineSimulator: job larger than the cluster");
    }
  }

  // ---- multi-tenant admission state -----------------------------------
  // Tenancy switches on when tenants are configured or the policy is Aimd;
  // every path below is guarded on `tenancy` so the default single-tenant
  // run stays bit-identical to the pre-tenant simulator.
  namespace adm = hit::sched::admission;
  const bool aimd_on = config_.admission.policy == AdmissionPolicy::Aimd;
  const bool tenancy = aimd_on || !config_.admission.tenants.empty();
  std::optional<adm::TenantRegistry> tenant_reg;
  std::optional<adm::AimdController> aimd;
  std::vector<adm::TenantStats> tstats;
  if (tenancy) {
    std::uint32_t max_tenant = 0;
    for (const mr::Job& job : jobs) max_tenant = std::max(max_tenant, job.tenant);
    std::vector<adm::TenantSpec> specs = config_.admission.tenants;
    if (specs.empty()) specs = adm::TenantRegistry::uniform(max_tenant + 1);
    if (specs.size() <= max_tenant) {
      throw std::invalid_argument(
          "OnlineSimulator: tenant roster smaller than the workload's ids");
    }
    // DRF capacity proxy: container slots the whole cluster offers along the
    // tighter demand dimension, counted separately for maps and reduces (the
    // two compete for the same slots, but DRF normalizes per dimension), and
    // the aggregate nominal shuffle rate the servers can inject.
    const cluster::Resource demand = config_.sim.container_demand;
    double slots = 0.0;
    for (const cluster::Server& s : cluster_->servers()) {
      double per = kInf;
      if (demand.vcores > 0.0) per = std::min(per, s.capacity.vcores / demand.vcores);
      if (demand.mem_gb > 0.0) per = std::min(per, s.capacity.mem_gb / demand.mem_gb);
      if (std::isfinite(per)) slots += std::floor(per);
    }
    adm::ResourceVector capacity;
    capacity.map_slots = std::max(slots, 1.0);
    capacity.reduce_slots = std::max(slots, 1.0);
    capacity.shuffle_bw = std::max(
        static_cast<double>(cluster_->size()) * config_.sim.bandwidth_scale, 1.0);
    tenant_reg.emplace(std::move(specs), capacity);
    tstats.resize(tenant_reg->size());
    for (std::uint32_t t = 0; t < tenant_reg->size(); ++t) {
      tstats[t].tenant = t;
      tstats[t].name = tenant_reg->spec(t).name;
      tstats[t].weight = tenant_reg->spec(t).weight;
    }
  }
  if (aimd_on) aimd.emplace(config_.admission.aimd);
  double next_epoch = aimd_on ? config_.admission.aimd.epoch_s : kInf;
  std::size_t epoch_sheds = 0;            // sensor: sheds since last epoch
  std::size_t epoch_deadline_misses = 0;  // sensor: deadline sheds since then
  // Per-job DRF holdings so release exactly mirrors acquire.
  std::vector<adm::ResourceVector> job_held;
  std::vector<char> job_holds;
  if (tenancy) {
    job_held.resize(jobs.size());
    job_holds.assign(jobs.size(), 0);
  }

  // Mutable state.
  std::vector<JobFlow> flows;  // all jobs' flows, flattened
  std::vector<std::size_t> flow_base(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    flow_base[j] = flows.size();
    for (const net::Flow& f : job_flow_sets[j]) {
      JobFlow jf;
      jf.flow = &f;
      jf.job = j;
      jf.remaining = f.size_gb;
      flows.push_back(std::move(jf));
    }
  }

  std::vector<RunningJob> state(jobs.size());
  std::vector<cluster::Resource> usage(cluster_->size());
  net::LoadTracker load(topology);
  const DelayFetcher fetcher(*cluster_, config_.sim.map_fetch_bandwidth_scale,
                             config_.sim.local_disk_bandwidth);
  const net::MaxMinFairAllocator allocator(topology, config_.sim.bandwidth_scale);

  // Coflow lifecycle (only when enabled): one coflow per job, reset when a
  // fault restarts the job (every flow re-releases and re-finishes).
  coflow::CoflowRegistry registry;
  std::unique_ptr<coflow::CoflowScheduler> coflow_order;
  std::vector<CoflowId> job_coflow(jobs.size());
  if (config_.sim.coflow.enabled) {
    coflow_order = coflow::make_scheduler(config_.sim.coflow.order);
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      job_coflow[j] = registry.open(
          jobs[j].id, static_cast<std::uint8_t>(jobs[j].priority),
          /*deadline=*/0.0, jobs[j].critical_path);
    }
    for (const JobFlow& jf : flows) {
      registry.add_flow(job_coflow[jf.job], jf.flow->id, jf.flow->size_gb);
    }
  }

  std::deque<std::size_t> waiting;
  MinHeap releases;      // (time, flow index)
  MinHeap local_done;    // (time, flow index)
  MinHeap job_finishes;  // (time, job index)
  std::vector<std::size_t> active;         // network flows in the fluid pool
  std::vector<std::size_t> stalled_flows;  // parked: released, no alive route
  double now = 0.0;
  std::size_t next_arrival = 0;
  std::size_t jobs_finished = 0;
  std::size_t jobs_shed = 0;
  std::vector<char> job_shed(jobs.size(), 0);

  // Fault machinery.  Faults and their consequences are first-class loop
  // events; with an empty plan every branch below is dead and the run is
  // bit-identical to the fault-free simulator.
  std::optional<CtrlPlaneRuntime> ctrl_rt;  // control-plane blackout model
  const bool ctrl_on =
      CtrlPlaneRuntime::plan_has_controller(config_.sim.faults) ||
      config_.sim.recovery.enabled();
  if (ctrl_on) ctrl_rt.emplace(config_.sim.recovery);
  const auto ctrl_down = [&] { return ctrl_rt && ctrl_rt->down(); };
  // With standby on, the takeover clamps every blackout, so the event list
  // the loop replays is the preprocessed one.
  const std::vector<FaultEvent> standby_events =
      ctrl_on ? ctrl_rt->plan_events(config_.sim.faults)
              : std::vector<FaultEvent>{};
  const std::vector<FaultEvent>& fault_events =
      ctrl_on ? standby_events : config_.sim.faults.events();
  std::size_t next_fev = 0;
  std::vector<char> job_deferred;  // queued launches already counted, per blackout
  if (ctrl_on) job_deferred.assign(jobs.size(), 0);
  std::vector<char> server_dead(cluster_->size(), 0);
  FaultState fstate(topology);  // switch/link liveness
  std::vector<double> queued_since = arrivals;  // restart re-stamps the wait
  std::size_t reschedule_seq = 0;               // rng stream per map re-placement
  std::optional<GrayRuntime> gray_rt;           // health monitor + quarantine
  if (config_.sim.gray.enabled()) gray_rt.emplace(topology, config_.sim.gray);
  // Placement-time soft avoidance: schedulers price quarantined switches up.
  const auto penalize_problem = [&](sched::Problem& problem) {
    if (gray_rt && gray_rt->any_quarantined()) {
      problem.penalized_switches = gray_rt->penalized_switches();
      problem.switch_penalty = gray_rt->config().penalty;
    }
  };

  // Workflow cascade worklist: descendants of a failed stage, queued by
  // note_attempt_lost and drained by shed_job after the primary shed.
  std::vector<std::size_t> wf_cascade;
  // Record that attempt `j`'s stage lost one attempt; when the last attempt
  // of a not-yet-done stage is gone the stage *fails* and every descendant
  // stage's attempts are queued for a Parent-shed (they can never unlock).
  const auto note_attempt_lost = [&](std::size_t j) {
    if (!wf_on) return;
    const WorkflowPlan::JobTag& tag = plan.job_tags[j];
    StageState& ss = stage_state[tag.stage];
    if (ss.done) return;  // stage already completed via another attempt
    if (++ss.attempts_shed < plan.stages[tag.stage].attempts.size()) return;
    std::vector<std::size_t> frontier{tag.stage};
    while (!frontier.empty()) {
      const std::size_t sidx = frontier.back();
      frontier.pop_back();
      if (stage_state[sidx].failed) continue;
      stage_state[sidx].failed = true;
      for (std::size_t c : plan.stages[sidx].children) {
        frontier.push_back(c);
        for (std::size_t job_idx : plan.stages[c].attempts) {
          wf_cascade.push_back(job_idx);
        }
      }
    }
  };

  // Abandon a waiting job under overload: it counts toward termination but
  // never receives containers, and the run's OverloadStats say why.
  const auto shed_job_impl = [&](std::size_t j, ShedReason reason) {
    job_shed[j] = 1;
    ++jobs_shed;
    OverloadStats& ov = result.overload;
    ++ov.jobs_shed;
    switch (reason) {
      case ShedReason::QueueFull: ++ov.shed_on_arrival; break;
      case ShedReason::Displaced: ++ov.shed_for_room; break;
      case ShedReason::Deadline: ++ov.shed_deadline; break;
      case ShedReason::Parent: ++ov.shed_parent; break;
    }
    ov.shed_gb += jobs[j].shuffle_gb;
    ShedJobRecord row;
    row.id = jobs[j].id;
    row.benchmark = jobs[j].benchmark;
    row.priority = jobs[j].priority;
    row.arrival = arrivals[j];
    row.shed_at = now;
    row.reason = reason;
    result.shed.push_back(std::move(row));
    obs::count("online.jobs_shed");
    obs::observe("online.shed_wait_s", now - queued_since[j]);
    obs::sim_instant("job.shed", "sim.job", now,
                     {{"job", static_cast<std::int64_t>(jobs[j].id.value())},
                      {"reason", std::string(shed_reason_name(reason))}},
                     /*tid=*/0);
    if (tenancy) {
      adm::TenantStats& ts = tstats[jobs[j].tenant];
      ++ts.shed;
      ts.shed_gb += jobs[j].shuffle_gb;
      ++epoch_sheds;
      if (reason == ShedReason::Deadline) ++epoch_deadline_misses;
      obs::count("sim.admission.tenant_shed." +
                 std::to_string(jobs[j].tenant));
    }
    note_attempt_lost(j);
  };

  // Public shed entry: shed `j`, then drain any workflow cascade it caused.
  // Cascade targets never arrived (their arrivals sit at +inf), so their
  // timestamps are stamped to `now` first to keep the records finite.
  const auto shed_job = [&](std::size_t j, ShedReason reason) {
    shed_job_impl(j, reason);
    while (!wf_cascade.empty()) {
      const std::size_t jj = wf_cascade.back();
      wf_cascade.pop_back();
      if (job_shed[jj]) continue;
      arrivals[jj] = now;
      queued_since[jj] = now;
      unlocked_at[jj] = now;
      obs::count("online.workflow.parent_sheds");
      shed_job_impl(jj, ShedReason::Parent);
    }
  };

  // AIMD limiter: admit, displace for, or shed the arrival `j` under the
  // current adaptive limit with per-tenant weight-proportional caps.
  // Returns true when j may join the queue tail.
  const auto aimd_admit = [&](std::size_t j) -> bool {
    const std::uint32_t t = jobs[j].tenant;
    const double limit = aimd->limit();
    const double qf = config_.admission.aimd.quota_floor;
    std::vector<std::size_t> waiting_of(tenant_reg->size(), 0);
    for (std::size_t w : waiting) ++waiting_of[jobs[w].tenant];
    const auto floor_of = [&](std::uint32_t v) {
      return adm::tenant_queue_floor(limit, tenant_reg->entitlement(v), qf);
    };
    // Protected floor first: a tenant under its own floor always gets in, so
    // however hard the controller cuts, no tenant is starved outright.
    if (waiting_of[t] < floor_of(t) || waiting.size() < aimd->queue_limit()) {
      return true;
    }
    // Queue at the limit: displace from the tenant most over its
    // entitlement — primary key DRF dominant-share overuse of *running*
    // resources, secondary per-tenant queue overuse, ties to the lowest
    // tenant id — skipping tenants at or below their protected floor.
    constexpr std::uint32_t kNone = ~std::uint32_t{0};
    std::uint32_t vt = kNone;
    double best_held = -1.0;
    double best_queue = -1.0;
    for (std::uint32_t v = 0; v < tenant_reg->size(); ++v) {
      if (waiting_of[v] <= floor_of(v)) continue;  // protected (or empty)
      const double held = tenant_reg->overuse(v);
      const double cap = static_cast<double>(
          adm::tenant_queue_cap(limit, tenant_reg->entitlement(v)));
      const double queue = static_cast<double>(waiting_of[v]) / cap;
      if (held > best_held + kEps ||
          (held > best_held - kEps && queue > best_queue + kEps)) {
        vt = v;
        best_held = held;
        best_queue = queue;
      }
    }
    ++aimd->stats().limiter_sheds;
    obs::count("sim.admission.limited");
    if (vt == kNone) {
      // Every tenant with queued work sits at its floor: the arrival takes
      // the cut (its own tenant included — floors are inviolable).
      shed_job(j, ShedReason::QueueFull);
      return false;
    }
    // Victim inside the tenant: lowest priority first, oldest true arrival
    // within the class (fault restarts do not rejuvenate a job here).
    std::size_t victim_pos = waiting.size();
    for (std::size_t i = 0; i < waiting.size(); ++i) {
      if (jobs[waiting[i]].tenant != vt) continue;
      if (victim_pos == waiting.size()) {
        victim_pos = i;
        continue;
      }
      const mr::Job& cand = jobs[waiting[i]];
      const mr::Job& best = jobs[waiting[victim_pos]];
      if (cand.priority < best.priority ||
          (cand.priority == best.priority &&
           arrivals[waiting[i]] < arrivals[waiting[victim_pos]])) {
        victim_pos = i;
      }
    }
    if (vt == t && jobs[waiting[victim_pos]].priority > jobs[j].priority) {
      // Within one tenant, priority still rules: when everything this tenant
      // has queued outranks the arrival, the arrival is the shed.
      shed_job(j, ShedReason::QueueFull);
      return false;
    }
    const std::size_t victim = waiting[victim_pos];
    waiting.erase(waiting.begin() + static_cast<std::ptrdiff_t>(victim_pos));
    shed_job(victim, ShedReason::Displaced);
    return true;
  };

  const auto map_duration = [&](const mr::Task& t, ServerId host) -> double {
    double fetch;
    if (blocks.local(t.id, host)) {
      fetch = fetcher.fetch_seconds(t.input_gb, host, host);
    } else {
      fetch = kInf;
      bool replica_alive = false;
      for (ServerId r : blocks.replicas(t.id)) {
        if (server_dead[r.index()]) continue;
        replica_alive = true;
        fetch = std::min(fetch, fetcher.fetch_seconds(t.input_gb, r, host));
      }
      if (!replica_alive) {
        // Every replica is down: HDFS re-replication serves a copy at the
        // nearest original replica's cost.
        for (ServerId r : blocks.replicas(t.id)) {
          fetch = std::min(fetch, fetcher.fetch_seconds(t.input_gb, r, host));
        }
      }
    }
    double jitter = 1.0;
    if (config_.sim.map_time_jitter_sigma > 0.0) {
      Rng jitter_rng = rng.fork(0x4A495454ull ^ t.id.value());
      jitter = jitter_rng.lognormal_median(1.0, config_.sim.map_time_jitter_sigma);
    }
    return fetch + t.compute_seconds * jitter;
  };

  auto try_schedule = [&](std::size_t j) -> bool {
    const mr::Job& job = jobs[j];
    sched::Problem problem;
    problem.topology = &topology;
    problem.cluster = cluster_;
    problem.blocks = &blocks;
    problem.base_usage = usage;
    problem.ambient_load = &load;
    // Dead servers offer no headroom.
    for (const cluster::Server& s : cluster_->servers()) {
      if (server_dead[s.id.index()]) problem.base_usage[s.id.index()] = s.capacity;
    }
    if (config_.sim.domains.enabled && fstate.any_down()) {
      // Partition-aware placement: servers cut off from the largest alive
      // component would stall every shuffle they touch — mask them out.
      const std::vector<char> mask = reachable_component(topology, fstate);
      for (const cluster::Server& s : cluster_->servers()) {
        if (!mask[s.node.index()]) problem.base_usage[s.id.index()] = s.capacity;
      }
    }
    for (const mr::Task& t : job.maps) {
      problem.tasks.push_back(sched::TaskRef{t.id, job.id, t.kind,
                                             config_.sim.container_demand, t.input_gb});
    }
    for (const mr::Task& t : job.reduces) {
      problem.tasks.push_back(sched::TaskRef{t.id, job.id, t.kind,
                                             config_.sim.container_demand, t.input_gb});
    }
    problem.flows = job_flow_sets[j];
    penalize_problem(problem);
    if (tenancy) {
      problem.tenant = job.tenant;
      if (aimd) {
        // Ladder hint: over-quota tenants degrade first while the AIMD
        // controller reports overload pressure.
        problem.overload_pressure = aimd->pressure();
        problem.over_quota = tenant_reg->overuse(job.tenant) > 1.0 + kEps;
      }
    }

    Rng wave_rng = rng.fork(1000 + j);
    sched::Assignment assignment;
    try {
      assignment = scheduler.schedule(problem, wave_rng);
    } catch (const std::runtime_error&) {
      return false;  // does not fit right now
    }
    sched::validate_assignment(problem, assignment);

    RunningJob& run = state[j];
    run.scheduled = true;
    run.scheduled_at = now;
    obs::count("online.jobs_scheduled");
    if (ctrl_rt) {
      // One journal record per policy install plus the launch itself.
      ctrl_rt->note_record(assignment.policies.size() + 1);
    }
    obs::observe("online.queueing_delay_s", now - queued_since[j]);
    obs::sim_instant("job.schedule", "sim.job", now,
                     {{"job", static_cast<std::int64_t>(jobs[j].id.value())},
                      {"wait_s", now - queued_since[j]}},
                     /*tid=*/0);
    run.placement = assignment.placement;
    for (const sched::TaskRef& t : problem.tasks) {
      usage[assignment.placement.at(t.id).index()] += t.demand;
    }
    if (tenancy) {
      adm::ResourceVector rv;
      rv.map_slots = static_cast<double>(job.maps.size());
      rv.reduce_slots = static_cast<double>(job.reduces.size());
      for (const net::Flow& f : job_flow_sets[j]) rv.shuffle_bw += f.rate;
      tenant_reg->acquire(job.tenant, rv);
      job_held[j] = rv;
      job_holds[j] = 1;
      tstats[job.tenant].peak_dominant_share =
          std::max(tstats[job.tenant].peak_dominant_share,
                   tenant_reg->share(job.tenant).dominant);
    }

    // Map finishes drive flow releases.
    run.flows_remaining = job_flow_sets[j].size();
    for (const mr::Task& t : job.maps) {
      const ServerId host = assignment.placement.at(t.id);
      const double finish = now + map_duration(t, host);
      run.map_finish[t.id] = finish;
      run.map_finish_max = std::max(run.map_finish_max, finish);
    }

    for (std::size_t k = 0; k < job_flow_sets[j].size(); ++k) {
      const std::size_t idx = flow_base[j] + k;
      JobFlow& jf = flows[idx];
      jf.release = run.map_finish.at(jf.flow->src_task);
      const ServerId src = assignment.placement.at(jf.flow->src_task);
      const ServerId dst = assignment.placement.at(jf.flow->dst_task);
      if (src == dst || jf.flow->size_gb <= 0.0) {
        jf.local = true;
        const double disk = config_.sim.local_disk_bandwidth > 0.0
                                ? jf.flow->size_gb / config_.sim.local_disk_bandwidth
                                : 0.0;
        jf.local_done_at = jf.release + disk;
        local_done.emplace(jf.local_done_at, idx);
      } else {
        jf.src_node = cluster_->node_of(src);
        jf.dst_node = cluster_->node_of(dst);
        const auto it = assignment.policies.find(jf.flow->id);
        jf.policy = (it != assignment.policies.end() && !it->second.list.empty())
                        ? it->second
                        : net::shortest_policy(topology, jf.src_node, jf.dst_node,
                                               jf.flow->id);
        jf.path = jf.policy.realize(topology, jf.src_node, jf.dst_node);
        jf.hops = jf.policy.len();
        if (fstate.any_down() && !fstate.path_up(jf.path)) {
          // Scheduled onto a dead route: detour now if one exists (otherwise
          // the flow parks at release time).
          if (auto detour = reroute_policy(topology, fstate, jf.src_node,
                                           jf.dst_node, jf.flow->id)) {
            jf.policy = std::move(detour->policy);
            jf.path = std::move(detour->path);
            jf.hops = jf.policy.len();
            ++jf.reroutes;
            ++rec.flows_rerouted;
          }
        }
        if (!fstate.any_down() || fstate.path_up(jf.path)) {
          load.assign(jf.policy, jf.flow->rate);
          jf.charged = true;
        }
        run.shuffle_cost +=
            jf.flow->size_gb * static_cast<double>(jf.hops);
        releases.emplace(jf.release, idx);
      }
    }
    if (run.flows_remaining == 0) {
      double compute = 0.0;
      for (const mr::Task& t : job.reduces) {
        compute = std::max(compute, t.compute_seconds);
      }
      run.expected_finish = std::max(run.map_finish_max, now) + compute;
      job_finishes.emplace(run.expected_finish, j);
    }
    return true;
  };

  auto complete_flow = [&](std::size_t idx, double at) {
    JobFlow& jf = flows[idx];
    jf.done = true;
    jf.finish = at;
    if (config_.sim.coflow.enabled) {
      // Local flows never enter the fluid pool, so stamp their release here.
      if (jf.local) registry.flow_released(jf.flow->id, jf.release);
      registry.flow_finished(jf.flow->id, at);
      const coflow::Coflow& c = registry.get(job_coflow[jf.job]);
      if (c.state == coflow::CoflowState::Done) {
        obs::observe("online.coflow_cct_s", c.completion_time());
        obs::sim_span("coflow", "sim.coflow", c.released, c.finished,
                      {{"coflow", static_cast<std::int64_t>(c.id.value())},
                       {"job", static_cast<std::int64_t>(c.job.value())},
                       {"flows", static_cast<std::int64_t>(c.width())}},
                      /*tid=*/4);
      }
    }
    RunningJob& run = state[jf.job];
    double& last = run.reduce_last_input[jf.flow->dst_task];
    last = std::max(last, at);
    if (jf.charged) {
      load.remove(jf.policy, jf.flow->rate);
      jf.charged = false;
    }
    if (--run.flows_remaining == 0) {
      // All inputs delivered: every reduce finishes after its own last
      // input plus compute; the job after the slowest reduce.
      double finish = run.map_finish_max;
      for (const mr::Task& t : jobs[jf.job].reduces) {
        const auto it = run.reduce_last_input.find(t.id);
        const double input_done =
            it != run.reduce_last_input.end() ? it->second : run.map_finish_max;
        finish = std::max(finish, input_done + t.compute_seconds);
      }
      run.expected_finish = std::max(finish, at);
      job_finishes.emplace(run.expected_finish, jf.job);
    }
  };

  // Detour `jf` onto an alive route, moving its charge and cost with it.
  // A blackout suppresses detours outright: fail-static means nobody is
  // there to install one (DESIGN.md §15).
  const auto try_reroute_flow = [&](JobFlow& jf) -> bool {
    if (ctrl_down()) return false;
    auto detour =
        reroute_policy(topology, fstate, jf.src_node, jf.dst_node, jf.flow->id);
    if (!detour) return false;
    if (jf.charged) load.remove(jf.policy, jf.flow->rate);
    state[jf.job].shuffle_cost +=
        jf.flow->size_gb * (static_cast<double>(detour->policy.len()) -
                            static_cast<double>(jf.hops));
    jf.policy = std::move(detour->policy);
    jf.path = std::move(detour->path);
    jf.hops = jf.policy.len();
    load.assign(jf.policy, jf.flow->rate);
    jf.charged = true;
    ++jf.reroutes;
    ++rec.flows_rerouted;
    obs::count("online.flow_reroutes");
    if (ctrl_rt) ctrl_rt->note_record();
    return true;
  };

  const auto park_flow = [&](std::size_t idx) {
    JobFlow& jf = flows[idx];
    if (jf.charged) {
      load.remove(jf.policy, jf.flow->rate);
      jf.charged = false;
    }
    jf.stalled = true;
    jf.stall_since = now;
    stalled_flows.push_back(idx);
    ++rec.flows_stalled;
    obs::count("online.flow_stalls");
    if (config_.sim.domains.enabled && !ctrl_down() &&
        fstate.node_up(jf.src_node) && fstate.node_up(jf.dst_node)) {
      // Both endpoints alive, controller up, still no route: the fault set
      // partitioned the endpoints — only a repair reconnects them.
      ++result.fault_domains.partition_parks;
      obs::count("sim.domains.partition_parks");
      obs::sim_instant("flow.partition", "sim.domain", now,
                       {{"flow", static_cast<std::int64_t>(jf.flow->id.value())}},
                       /*tid=*/8);
    }
    if (ctrl_rt) {
      // A live controller journals the park; a down one cannot — that gap
      // is what the restart's reconcile has to repair.
      if (ctrl_down()) {
        ctrl_rt->note_blackout_stall();
      } else {
        ctrl_rt->note_record();
      }
    }
    obs::sim_instant("flow.stall", "sim.flow", now,
                     {{"flow", static_cast<std::int64_t>(jf.flow->id.value())}},
                     /*tid=*/2);
  };

  // A dead reduce host loses the job's partial state: release everything and
  // re-queue the job at the head of the line (arrival unchanged).
  const auto restart_job = [&](std::size_t j) {
    RunningJob& run = state[j];
    for (const auto& [task, server] : run.placement) {
      usage[server.index()] -= config_.sim.container_demand;
    }
    const std::size_t begin = flow_base[j];
    const std::size_t end = begin + job_flow_sets[j].size();
    for (std::size_t k = begin; k < end; ++k) {
      JobFlow& jf = flows[k];
      if (jf.charged) {
        load.remove(jf.policy, jf.flow->rate);
        jf.charged = false;
      }
      jf.release = kInf;
      jf.remaining = jf.flow->size_gb;
      jf.path.clear();
      jf.policy = net::Policy{};
      jf.hops = 0;
      jf.local = false;
      jf.finish = -1.0;
      jf.local_done_at = kInf;
      jf.released = false;
      jf.done = false;
      jf.stalled = false;
      jf.stall_since = 0.0;
    }
    const auto is_mine = [&](std::size_t idx) { return flows[idx].job == j; };
    active.erase(std::remove_if(active.begin(), active.end(), is_mine),
                 active.end());
    stalled_flows.erase(
        std::remove_if(stalled_flows.begin(), stalled_flows.end(), is_mine),
        stalled_flows.end());
    state[j] = RunningJob{};
    if (config_.sim.coflow.enabled) registry.reset(job_coflow[j]);
    if (tenancy && job_holds[j]) {
      tenant_reg->release(jobs[j].tenant, job_held[j]);
      job_holds[j] = 0;
    }
    queued_since[j] = now;
    waiting.push_front(j);
    ++rec.jobs_restarted;
    if (wf_on) ++wf_restarts[j];
    obs::count("online.jobs_restarted");
    obs::sim_instant("job.restart", "sim.job", now,
                     {{"job", static_cast<std::int64_t>(jobs[j].id.value())}},
                     /*tid=*/0);
  };

  // Kill the in-flight maps on a dead server and re-place them through the
  // scheduler's subsequent-wave path (the rest of the job stays fixed).
  // Returns false when no capacity exists right now.
  const auto reschedule_maps =
      [&](std::size_t j, const std::vector<const mr::Task*>& dead_maps,
          const std::unordered_set<TaskId>* lineage = nullptr) -> bool {
    RunningJob& run = state[j];
    std::unordered_set<TaskId> killed_srcs;
    for (const mr::Task* t : dead_maps) {
      usage[run.placement.at(t->id).index()] -= config_.sim.container_demand;
      run.placement.erase(t->id);
      run.map_finish.erase(t->id);
      killed_srcs.insert(t->id);
      // Lineage maps were not killed in flight — their loss is accounted by
      // the fault-domain counters, not the straggler-recovery ones.
      if (lineage == nullptr || lineage->count(t->id) == 0) ++rec.maps_killed;
    }
    const std::size_t begin = flow_base[j];
    const std::size_t end = begin + job_flow_sets[j].size();
    for (std::size_t k = begin; k < end; ++k) {
      JobFlow& jf = flows[k];
      if (killed_srcs.count(jf.flow->src_task) == 0) continue;
      // Delivered bytes never re-transfer: a finished shuffle consumed the
      // output before it was lost, so its flow stands as recorded.
      if (jf.done) continue;
      // In-flight maps leave an unreleased flow; a lost *completed* output
      // can also pull back a released, stalled, or local-pending transfer —
      // it restarts from zero once the map re-executes.
      if (jf.charged) {
        load.remove(jf.policy, jf.flow->rate);
        jf.charged = false;
      }
      if (jf.stalled) {
        jf.stall_seconds += now - jf.stall_since;
        rec.stall_seconds += now - jf.stall_since;
        jf.stalled = false;
        jf.stall_since = 0.0;
      }
      if (!jf.local) {
        run.shuffle_cost -= jf.flow->size_gb * static_cast<double>(jf.hops);
      }
      jf.local = false;
      jf.local_done_at = kInf;
      jf.release = kInf;
      jf.released = false;
      jf.remaining = jf.flow->size_gb;
      jf.finish = -1.0;
      jf.hops = 0;
    }
    if (lineage != nullptr) {
      // Released flows of lost outputs may sit in the fluid pool or the
      // parked list; their reset above makes those entries stale.
      const auto is_killed = [&](std::size_t idx) {
        return flows[idx].job == j &&
               killed_srcs.count(flows[idx].flow->src_task) > 0 &&
               !flows[idx].done;
      };
      active.erase(std::remove_if(active.begin(), active.end(), is_killed),
                   active.end());
      stalled_flows.erase(
          std::remove_if(stalled_flows.begin(), stalled_flows.end(), is_killed),
          stalled_flows.end());
    }

    sched::Problem problem;
    problem.topology = &topology;
    problem.cluster = cluster_;
    problem.blocks = &blocks;
    problem.base_usage = usage;
    problem.ambient_load = &load;
    problem.fixed = run.placement;
    for (const cluster::Server& s : cluster_->servers()) {
      if (server_dead[s.id.index()]) problem.base_usage[s.id.index()] = s.capacity;
    }
    if (config_.sim.domains.enabled && fstate.any_down()) {
      const std::vector<char> mask = reachable_component(topology, fstate);
      for (const cluster::Server& s : cluster_->servers()) {
        if (!mask[s.node.index()]) problem.base_usage[s.id.index()] = s.capacity;
      }
    }
    for (const mr::Task* t : dead_maps) {
      problem.tasks.push_back(sched::TaskRef{t->id, jobs[j].id, t->kind,
                                             config_.sim.container_demand,
                                             t->input_gb});
    }
    for (const net::Flow& f : job_flow_sets[j]) {
      if (killed_srcs.count(f.src_task) > 0) problem.flows.push_back(f);
    }
    penalize_problem(problem);

    Rng wave_rng = rng.fork(500000 + reschedule_seq++);
    sched::Assignment assignment;
    try {
      assignment = scheduler.schedule(problem, wave_rng);
    } catch (const std::runtime_error&) {
      return false;
    }
    sched::validate_assignment(problem, assignment);

    if (ctrl_rt) ctrl_rt->note_record(assignment.policies.size() + 1);
    for (const mr::Task* t : dead_maps) {
      const ServerId host = assignment.placement.at(t->id);
      run.placement.insert_or_assign(t->id, host);
      usage[host.index()] += config_.sim.container_demand;
      const double finish = now + map_duration(*t, host);
      run.map_finish[t->id] = finish;
      run.map_finish_max = std::max(run.map_finish_max, finish);
      if (lineage != nullptr && lineage->count(t->id) > 0) {
        ++result.fault_domains.maps_reexecuted_lineage;
        obs::count("sim.domains.maps_reexecuted");
      } else {
        ++rec.maps_reexecuted;
      }
    }
    for (std::size_t k = begin; k < end; ++k) {
      JobFlow& jf = flows[k];
      if (killed_srcs.count(jf.flow->src_task) == 0) continue;
      if (jf.done) continue;  // delivered before the loss; not re-sent
      jf.release = run.map_finish.at(jf.flow->src_task);
      jf.remaining = jf.flow->size_gb;
      const ServerId src = run.placement.at(jf.flow->src_task);
      const ServerId dst = run.placement.at(jf.flow->dst_task);
      if (src == dst || jf.flow->size_gb <= 0.0) {
        jf.local = true;
        const double disk = config_.sim.local_disk_bandwidth > 0.0
                                ? jf.flow->size_gb / config_.sim.local_disk_bandwidth
                                : 0.0;
        jf.local_done_at = jf.release + disk;
        local_done.emplace(jf.local_done_at, k);
      } else {
        jf.src_node = cluster_->node_of(src);
        jf.dst_node = cluster_->node_of(dst);
        const auto it = assignment.policies.find(jf.flow->id);
        jf.policy = (it != assignment.policies.end() && !it->second.list.empty())
                        ? it->second
                        : net::shortest_policy(topology, jf.src_node, jf.dst_node,
                                               jf.flow->id);
        jf.path = jf.policy.realize(topology, jf.src_node, jf.dst_node);
        jf.hops = jf.policy.len();
        if (fstate.any_down() && !fstate.path_up(jf.path)) {
          if (auto detour = reroute_policy(topology, fstate, jf.src_node,
                                           jf.dst_node, jf.flow->id)) {
            jf.policy = std::move(detour->policy);
            jf.path = std::move(detour->path);
            jf.hops = jf.policy.len();
            ++jf.reroutes;
            ++rec.flows_rerouted;
          }
        }
        if (!fstate.any_down() || fstate.path_up(jf.path)) {
          load.assign(jf.policy, jf.flow->rate);
          jf.charged = true;
        }
        run.shuffle_cost += jf.flow->size_gb * static_cast<double>(jf.hops);
        releases.emplace(jf.release, k);
      }
    }
    return true;
  };

  // Re-open a finished workflow stage whose output was lost: the winner
  // attempt re-queues (its record un-happens), the stage reverts to pending,
  // and child attempts that arrived but never launched fall back to locked —
  // they re-arrive when the stage re-completes.  Lineage re-execution through
  // the DAG instead of cascade-shedding the descendants.
  const auto reopen_stage = [&](std::size_t j) {
    const std::size_t st = plan.job_tags[j].stage;
    StageState& ss = stage_state[st];
    ss.done = false;
    ss.finish = 0.0;
    ss.winner = 0;
    jobs_finished -= 1;
    for (auto it = result.jobs.end(); it != result.jobs.begin();) {
      --it;
      if (it->id == jobs[j].id) {
        result.jobs.erase(it);
        break;
      }
    }
    result.total_shuffle_cost -= state[j].shuffle_cost;
    result.total_shuffle_gb -= jobs[j].shuffle_gb;
    if (tenancy) {
      adm::TenantStats& ts = tstats[jobs[j].tenant];
      if (ts.completed > 0) --ts.completed;
      ts.completed_gb -= jobs[j].shuffle_gb;
    }
    // Containers were freed at finish and every flow is done, so the reset
    // is restart_job minus the usage release and pool scrubbing.
    const std::size_t begin = flow_base[j];
    const std::size_t end = begin + job_flow_sets[j].size();
    for (std::size_t k = begin; k < end; ++k) {
      JobFlow& jf = flows[k];
      jf.release = kInf;
      jf.remaining = jf.flow->size_gb;
      jf.path.clear();
      jf.policy = net::Policy{};
      jf.hops = 0;
      jf.local = false;
      jf.finish = -1.0;
      jf.local_done_at = kInf;
      jf.released = false;
      jf.done = false;
      jf.stalled = false;
      jf.stall_since = 0.0;
    }
    state[j] = RunningJob{};
    if (config_.sim.coflow.enabled) registry.reset(job_coflow[j]);
    queued_since[j] = now;
    waiting.push_front(j);
    ++wf_restarts[j];
    ++result.fault_domains.stage_reopens;
    obs::count("sim.domains.stage_reopens");
    obs::sim_instant("workflow.stage_reopen", "sim.domain", now,
                     {{"workflow", static_cast<std::int64_t>(jobs[j].workflow)},
                      {"stage", static_cast<std::int64_t>(jobs[j].stage)}},
                     /*tid=*/8);
    for (std::size_t c : plan.stages[st].children) {
      for (std::size_t job_idx : plan.stages[c].attempts) {
        if (job_shed[job_idx] || state[job_idx].scheduled) continue;
        if (!std::isfinite(arrivals[job_idx])) continue;  // still locked
        arrivals[job_idx] = kInf;
        unlocked_at[job_idx] = kInf;
        for (auto it = waiting.begin(); it != waiting.end(); ++it) {
          if (*it == job_idx) {
            waiting.erase(it);
            break;
          }
        }
      }
    }
  };

  const auto handle_server_fail = [&](const FaultEvent& ev) {
    const NodeId node = ev.node;
    const ServerId s = cluster_->server_at(node);
    if (server_dead[s.index()]) return;  // duplicate fail
    server_dead[s.index()] = 1;
    // Domain members die with certainty; independent crashes lose each
    // completed output with the configured probability.  One fork per
    // (task, event ordinal) keeps the draws order-independent.
    const double loss_p =
        !config_.sim.domains.enabled
            ? 0.0
            : (ev.domain != 0 ? 1.0 : config_.sim.domains.output_loss_prob);
    const auto output_lost = [&](std::uint64_t key) {
      if (loss_p >= 1.0) return true;
      if (loss_p <= 0.0) return false;
      const std::uint64_t salt =
          kLossSalt ^ (key << 16) ^ static_cast<std::uint64_t>(next_fev);
      return rng.fork(salt).uniform(0.0, 1.0) < loss_p;
    };
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      RunningJob& run = state[j];
      if (!run.scheduled) continue;
      if (run.finished) {
        // A finished stage's output lives on its reduce hosts; losing it
        // re-opens the stage while any child attempt still needs the data.
        if (loss_p <= 0.0 || !wf_on) continue;
        const WorkflowPlan::JobTag& tag = plan.job_tags[j];
        const StageState& ss = stage_state[tag.stage];
        if (!ss.done || ss.winner != tag.attempt) continue;
        std::size_t reduces_here = 0;
        for (const mr::Task& t : jobs[j].reduces) {
          const auto it = run.placement.find(t.id);
          if (it != run.placement.end() && it->second == s) ++reduces_here;
        }
        if (reduces_here == 0) continue;
        bool needed = false;
        for (std::size_t c : plan.stages[tag.stage].children) {
          if (stage_state[c].failed) continue;
          for (std::size_t job_idx : plan.stages[c].attempts) {
            if (!job_shed[job_idx] && !state[job_idx].finished) {
              needed = true;
              break;
            }
          }
          if (needed) break;
        }
        // Every consumer finished or shed: the lost output re-executes
        // nothing (the lineage property the tests pin down).
        if (!needed || !output_lost(jobs[j].id.value())) continue;
        result.fault_domains.outputs_lost += reduces_here;
        obs::count("sim.domains.outputs_lost", reduces_here);
        obs::sim_instant("output.lost", "sim.domain", now,
                         {{"job", static_cast<std::int64_t>(jobs[j].id.value())},
                          {"outputs", static_cast<std::int64_t>(reduces_here)}},
                         /*tid=*/8);
        reopen_stage(j);
        continue;
      }
      bool reduce_dead = false;
      for (const mr::Task& t : jobs[j].reduces) {
        const auto it = run.placement.find(t.id);
        if (it != run.placement.end() && it->second == s) {
          reduce_dead = true;
          break;
        }
      }
      if (reduce_dead) {
        restart_job(j);
        continue;
      }
      std::vector<const mr::Task*> dead_maps;
      std::unordered_set<TaskId> lineage;
      for (const mr::Task& t : jobs[j].maps) {
        const auto it = run.placement.find(t.id);
        if (it == run.placement.end() || it->second != s) continue;
        const auto fit = run.map_finish.find(t.id);
        if (fit != run.map_finish.end() && fit->second > now + kEps) {
          dead_maps.push_back(&t);
        } else if (loss_p > 0.0 && fit != run.map_finish.end()) {
          // Completed output on the crashed server: durable by default, lost
          // with probability loss_p under the domains model — and worth
          // re-executing only while some consumer shuffle still needs it.
          bool needed = false;
          const std::size_t begin = flow_base[j];
          const std::size_t end = begin + job_flow_sets[j].size();
          for (std::size_t k = begin; k < end; ++k) {
            const JobFlow& jf = flows[k];
            if (jf.flow->src_task == t.id && !jf.done) {
              needed = true;
              break;
            }
          }
          if (!needed || !output_lost(t.id.value())) continue;
          dead_maps.push_back(&t);
          lineage.insert(t.id);
          ++result.fault_domains.outputs_lost;
          obs::count("sim.domains.outputs_lost");
          obs::sim_instant("output.lost", "sim.domain", now,
                           {{"task", static_cast<std::int64_t>(t.id.value())},
                            {"job", static_cast<std::int64_t>(jobs[j].id.value())}},
                           /*tid=*/8);
        }
      }
      if (dead_maps.empty()) continue;  // completed output is durable
      // Re-placing maps is a scheduling action: with the controller down
      // the job re-queues and waits for the restart like any other launch.
      if (ctrl_down() ||
          !reschedule_maps(j, dead_maps, lineage.empty() ? nullptr : &lineage)) {
        restart_job(j);
      }
    }
  };

  const auto handle_net_event = [&](const FaultEvent& ev) {
    fstate.apply(ev);
    if (ev.kind == FaultKind::Degrade || ev.kind == FaultKind::Restore) {
      // Capacity changed but connectivity did not: routes stand as-is and
      // rates pick up the new factors at the next re-solve; the health
      // monitor (when enabled) has to infer the change from observed rates.
      if (gray_rt) gray_rt->on_event(ev);
      return;
    }
    if (ev.kind == FaultKind::Fail) {
      // Crossing transfers detour onto an alive route or park until repair.
      std::vector<std::size_t> keep;
      keep.reserve(active.size());
      for (std::size_t idx : active) {
        JobFlow& jf = flows[idx];
        if (fstate.path_up(jf.path) || try_reroute_flow(jf)) {
          keep.push_back(idx);
        } else {
          park_flow(idx);
        }
      }
      active = std::move(keep);
    } else {
      // Parked transfers resume on their old route or a fresh detour —
      // unless the controller is down: fail-static means resumes wait for
      // the restart's reconcile (the hardware repair itself still counts).
      if (ctrl_down()) return;
      std::vector<std::size_t> still_parked;
      still_parked.reserve(stalled_flows.size());
      for (std::size_t idx : stalled_flows) {
        JobFlow& jf = flows[idx];
        bool alive = fstate.path_up(jf.path);
        if (alive && !jf.charged) {
          load.assign(jf.policy, jf.flow->rate);
          jf.charged = true;
        }
        if (!alive) alive = try_reroute_flow(jf);
        if (alive) {
          jf.stalled = false;
          jf.stall_seconds += now - jf.stall_since;
          rec.stall_seconds += now - jf.stall_since;
          active.push_back(idx);
        } else {
          still_parked.push_back(idx);
        }
      }
      stalled_flows = std::move(still_parked);
    }
  };

  const auto handle_ctrl_event = [&](const FaultEvent& ev) {
    if (ev.kind == FaultKind::ControllerCrash) {
      ctrl_rt->on_crash(ev.time, active.size());
      return;
    }
    ctrl_rt->on_restart(ev.time);
    if (ctrl_on) std::fill(job_deferred.begin(), job_deferred.end(), 0);
    // Reconcile: every flow still parked when the controller returns is a
    // divergence between its journal-rebuilt state and the live network.
    // Resuming it (old route back up, or a fresh detour) is a repair; so is
    // acknowledging a genuinely dead path with no detour — the controller
    // knowingly keeps the flow parked until the hardware heals (mirrors core
    // reconcile, where evacuate-to-parked is a repaired missed-failure).
    const std::size_t violations = stalled_flows.size();
    std::size_t repaired = 0;
    std::vector<std::size_t> still_parked;
    still_parked.reserve(stalled_flows.size());
    for (std::size_t idx : stalled_flows) {
      JobFlow& jf = flows[idx];
      bool alive = fstate.path_up(jf.path);
      if (alive && !jf.charged) {
        load.assign(jf.policy, jf.flow->rate);
        jf.charged = true;
      }
      if (!alive) alive = try_reroute_flow(jf);
      if (alive) {
        jf.stalled = false;
        jf.stall_seconds += ev.time - jf.stall_since;
        rec.stall_seconds += ev.time - jf.stall_since;
        ++repaired;
        active.push_back(idx);
      } else {
        still_parked.push_back(idx);
        ++repaired;
      }
    }
    stalled_flows = std::move(still_parked);
    if (violations > 0) ctrl_rt->note_reconcile(violations, repaired);
  };

  // ---- main event loop ------------------------------------------------
  while (jobs_finished + jobs_shed < jobs.size()) {
    // Current fair rates for the fluid pool.
    std::vector<net::FlowDemand> demands;
    demands.reserve(active.size());
    for (std::size_t idx : active) {
      demands.push_back(net::FlowDemand{flows[idx].flow->id, flows[idx].path, 0.0});
    }
    // Solve fair rates for the pool under an optional degrade map — invoked
    // once with the true capacities and, when the health monitor runs on a
    // degraded network, once more at full capacity as the healthy baseline.
    const auto solve = [&](const net::CapacityMap* dmap) -> std::vector<double> {
      if (active.empty()) return {};
      if (config_.sim.coflow.enabled) {
        // Group the pool by coflow, permute per the configured discipline,
        // and let MADD serve whole coflows against the residual ledger.
        std::vector<double> remaining;
        remaining.reserve(active.size());
        for (std::size_t idx : active) remaining.push_back(flows[idx].remaining);
        std::vector<CoflowId> cids;
        std::unordered_map<CoflowId, std::vector<std::size_t>> members;
        for (std::size_t i = 0; i < active.size(); ++i) {
          const CoflowId cid = job_coflow[flows[active[i]].job];
          auto [it, fresh] = members.emplace(cid, std::vector<std::size_t>{});
          if (fresh) cids.push_back(cid);
          it->second.push_back(i);
        }
        std::sort(cids.begin(), cids.end());
        net::ResidualLedger ledger(topology, config_.sim.bandwidth_scale, dmap);
        for (const net::FlowDemand& d : demands) ledger.add_path(d.path);
        const coflow::GammaFn gamma = [&](CoflowId cid) {
          return coflow::effective_bottleneck(ledger, demands, remaining,
                                              members.at(cid));
        };
        std::vector<std::vector<std::size_t>> groups;
        groups.reserve(cids.size());
        for (CoflowId cid : coflow_order->order(registry, std::move(cids), gamma)) {
          groups.push_back(members.at(cid));
        }
        return coflow::madd_allocate(topology, demands, remaining, groups,
                                     config_.sim.bandwidth_scale, dmap);
      }
      return allocator.allocate(demands, dmap);
    };
    const net::CapacityMap* degrade =
        fstate.any_degraded() ? &fstate.degrade() : nullptr;
    std::vector<double> rates = solve(degrade);

    if (gray_rt && !active.empty() && !ctrl_down()) {
      // Health sampling: each flow's observed rate vs what the identical
      // allocation yields on healthy hardware.  On a clean network the
      // baseline IS the observed vector, so ratios are exactly 1.0.
      const std::vector<double> nominal =
          degrade != nullptr ? solve(nullptr) : rates;
      const std::vector<GrayRuntime::Key> fresh =
          gray_rt->sample(now, demands, rates, nominal, fstate);
      if (!fresh.empty()) {
        // Soft-evacuate active flows off the newly quarantined elements:
        // reroute as if they had failed, but keep the current route when no
        // detour exists (quarantine penalizes, it never disconnects).
        FaultState avoid = fstate;
        gray_rt->apply_quarantine_to(avoid);
        bool moved = false;
        for (std::size_t idx : active) {
          JobFlow& jf = flows[idx];
          if (avoid.path_up(jf.path)) continue;
          auto detour = reroute_policy(topology, avoid, jf.src_node,
                                       jf.dst_node, jf.flow->id);
          if (!detour) continue;
          if (jf.charged) load.remove(jf.policy, jf.flow->rate);
          state[jf.job].shuffle_cost +=
              jf.flow->size_gb * (static_cast<double>(detour->policy.len()) -
                                  static_cast<double>(jf.hops));
          jf.policy = std::move(detour->policy);
          jf.path = std::move(detour->path);
          jf.hops = jf.policy.len();
          load.assign(jf.policy, jf.flow->rate);
          jf.charged = true;
          ++jf.reroutes;
          ++rec.flows_rerouted;
          moved = true;
          obs::count("online.gray.reroutes");
        }
        if (moved) {
          // Routes changed under the allocation: re-solve before advancing.
          demands.clear();
          for (std::size_t idx : active) {
            demands.push_back(
                net::FlowDemand{flows[idx].flow->id, flows[idx].path, 0.0});
          }
          rates = solve(degrade);
        }
      }
    }

    double completion_at = kInf;
    for (std::size_t i = 0; i < active.size(); ++i) {
      if (rates[i] > kEps) {
        completion_at = std::min(completion_at, now + flows[active[i]].remaining / rates[i]);
      }
    }
    const double arrival_at =
        wf_on ? (pending_arrivals.empty() ? kInf : pending_arrivals.top().first)
              : (next_arrival < jobs.size() ? arrivals[next_arrival] : kInf);
    const double release_at = releases.empty() ? kInf : releases.top().first;
    const double local_at = local_done.empty() ? kInf : local_done.top().first;
    const double finish_at = job_finishes.empty() ? kInf : job_finishes.top().first;
    const double fault_at =
        next_fev < fault_events.size() ? fault_events[next_fev].time : kInf;
    const double probe_at =
        (gray_rt && gray_rt->any_quarantined() && !ctrl_down())
            ? gray_rt->next_probe_time()
            : kInf;

    // Probes and AIMD epoch ticks bound the step but never rescue a stalled
    // run: a tick that can fire forever must not advance time with no
    // runnable event left.
    const double progress_at = std::min(
        {completion_at, arrival_at, release_at, local_at, finish_at, fault_at});
    if (!std::isfinite(progress_at)) {
      throw std::runtime_error("OnlineSimulator: stalled (no runnable event)");
    }
    const double next_time = std::min({progress_at, probe_at, next_epoch});
    const double dt = next_time - now;
    for (std::size_t i = 0; i < active.size(); ++i) {
      flows[active[i]].remaining -= rates[i] * dt;
    }
    now = next_time;
    if (ctrl_rt) ctrl_rt->advance(now);

    // 1. Network flow completions.
    std::vector<std::size_t> still_active;
    still_active.reserve(active.size());
    for (std::size_t idx : active) {
      if (flows[idx].remaining <= kEps) {
        complete_flow(idx, now);
      } else {
        still_active.push_back(idx);
      }
    }
    active = std::move(still_active);

    // 2. Local flow completions.
    while (!local_done.empty() && local_done.top().first <= now + kEps) {
      const auto [t, idx] = local_done.top();
      local_done.pop();
      const JobFlow& jf = flows[idx];
      if (!jf.local || jf.done || std::abs(jf.local_done_at - t) > kEps) {
        continue;  // stale entry from before a kill or restart
      }
      complete_flow(idx, now);
    }

    // 3. Fault events (and their kills, detours, and restarts).
    while (next_fev < fault_events.size() &&
           fault_events[next_fev].time <= now + kEps) {
      const FaultEvent& ev = fault_events[next_fev++];
      switch (ev.kind) {
        case FaultKind::Fail:
          obs::count("online.faults.fail");
          obs::sim_instant("fault.fail", "sim.fault", ev.time, {}, /*tid=*/3);
          break;
        case FaultKind::Recover:
          obs::count("online.faults.recover");
          obs::sim_instant("fault.recover", "sim.fault", ev.time, {}, /*tid=*/3);
          break;
        case FaultKind::Degrade:
          obs::count("online.faults.degrade");
          obs::sim_instant("fault.degrade", "sim.fault", ev.time,
                           {{"factor", ev.factor}}, /*tid=*/3);
          break;
        case FaultKind::Restore:
          obs::count("online.faults.restore");
          obs::sim_instant("fault.restore", "sim.fault", ev.time, {}, /*tid=*/3);
          break;
        case FaultKind::ControllerCrash:
          obs::count("online.faults.controller_crash");
          obs::sim_instant("fault.ctrl.crash", "sim.fault", ev.time, {},
                           /*tid=*/3);
          break;
        case FaultKind::ControllerRestart:
          obs::count("online.faults.controller_restart");
          obs::sim_instant("fault.ctrl.restart", "sim.fault", ev.time, {},
                           /*tid=*/3);
          break;
      }
      if (ev.domain != 0 &&
          (ev.kind == FaultKind::Fail || ev.kind == FaultKind::Recover)) {
        const bool down = ev.kind == FaultKind::Fail;
        obs::count(down ? "sim.domains.member_fail" : "sim.domains.member_recover");
        obs::sim_instant(down ? "domain.fail" : "domain.recover", "sim.domain",
                         ev.time,
                         {{"domain", static_cast<std::int64_t>(ev.domain)}},
                         /*tid=*/8);
      }
      if (ev.target == FaultTarget::Controller) {
        // Control-plane events never reach FaultState (it rejects them).
        handle_ctrl_event(ev);
      } else if (ev.target == FaultTarget::Server) {
        if (ev.kind == FaultKind::Fail) {
          handle_server_fail(ev);
        } else {
          server_dead[cluster_->server_at(ev.node).index()] = 0;
        }
      } else {
        handle_net_event(ev);
      }
    }
    // 3b. Quarantine probes: reinstate elements that repeatedly probe clean
    // (future placements simply see a smaller penalized set).  Probes are a
    // controller activity, so a blackout freezes them.
    if (gray_rt && gray_rt->any_quarantined() && !ctrl_down()) {
      gray_rt->run_probes(now, fstate);
    }

    // 4. Flow releases into the fluid pool.
    while (!releases.empty() && releases.top().first <= now + kEps) {
      const auto [t, idx] = releases.top();
      releases.pop();
      JobFlow& jf = flows[idx];
      if (jf.released || jf.done || jf.local || std::abs(jf.release - t) > kEps) {
        continue;  // stale entry from before a kill or restart
      }
      jf.released = true;
      if (config_.sim.coflow.enabled) registry.flow_released(jf.flow->id, jf.release);
      if (!fstate.any_down() || fstate.path_up(jf.path)) {
        if (!jf.charged) {
          load.assign(jf.policy, jf.flow->rate);
          jf.charged = true;
        }
        active.push_back(idx);
      } else if (try_reroute_flow(jf)) {
        active.push_back(idx);
      } else {
        park_flow(idx);
      }
    }

    // 5. Job finishes: free containers, record, drain the FIFO queue.
    bool freed = false;
    while (!job_finishes.empty() && job_finishes.top().first <= now + kEps) {
      const auto [t, j] = job_finishes.top();
      job_finishes.pop();
      RunningJob& run = state[j];
      if (run.finished || !run.scheduled || run.flows_remaining != 0 ||
          std::abs(t - run.expected_finish) > kEps) {
        continue;  // stale entry (already finished, or job restarted)
      }
      run.finished = true;
      ++jobs_finished;
      freed = true;
      const cluster::Resource each = config_.sim.container_demand;
      for (const auto& [task, server] : run.placement) {
        usage[server.index()] -= each;
      }
      OnlineJobRecord record;
      record.id = jobs[j].id;
      record.benchmark = jobs[j].benchmark;
      record.cls = jobs[j].cls;
      record.arrival = arrivals[j];
      record.scheduled = run.scheduled_at;
      record.finish = now;
      record.shuffle_gb = jobs[j].shuffle_gb;
      record.shuffle_cost = run.shuffle_cost;
      obs::count("online.jobs_finished");
      obs::observe("online.job_completion_s", record.completion_time());
      if (obs::current().trace() != nullptr) {
        obs::sim_span("job", "sim.job", record.arrival, record.finish,
                      {{"job", static_cast<std::int64_t>(record.id.value())},
                       {"benchmark", record.benchmark},
                       {"wait_s", record.queueing_delay()}},
                      /*tid=*/0);
      }
      result.jobs.push_back(record);
      result.makespan = std::max(result.makespan, now);
      result.total_shuffle_cost += run.shuffle_cost;
      result.total_shuffle_gb += jobs[j].shuffle_gb;
      if (tenancy) {
        if (job_holds[j]) {
          tenant_reg->release(jobs[j].tenant, job_held[j]);
          job_holds[j] = 0;
        }
        adm::TenantStats& ts = tstats[jobs[j].tenant];
        ++ts.completed;
        ts.sum_wait_s += record.queueing_delay();
        ts.max_wait_s = std::max(ts.max_wait_s, record.queueing_delay());
        ts.completed_gb += jobs[j].shuffle_gb;
      }
      if (wf_on) {
        // First attempt across the line completes the stage: note the winner
        // and unlock every child stage whose parents are now all done (its
        // attempts arrive — and face admission — at this instant).
        const WorkflowPlan::JobTag& tag = plan.job_tags[j];
        StageState& ss = stage_state[tag.stage];
        if (!ss.done) {
          ss.done = true;
          ss.finish = now;
          ss.winner = tag.attempt;
          obs::count("online.workflow.stages_completed");
          obs::sim_instant(
              "workflow.stage_done", "sim.workflow", now,
              {{"workflow", static_cast<std::int64_t>(jobs[j].workflow)},
               {"stage", static_cast<std::int64_t>(jobs[j].stage)},
               {"attempt", static_cast<std::int64_t>(tag.attempt)}},
              /*tid=*/7);
          for (std::size_t c : plan.stages[tag.stage].children) {
            bool ready = true;
            for (std::size_t pidx : plan.stages[c].parents) {
              if (!stage_state[pidx].done) {
                ready = false;
                break;
              }
            }
            if (!ready) continue;
            for (std::size_t job_idx : plan.stages[c].attempts) {
              if (job_shed[job_idx]) continue;
              // A lineage re-opened stage unlocks its children again on
              // re-completion; attempts that already arrived (queued or
              // launched the first time around) must not arrive twice.
              if (state[job_idx].scheduled || std::isfinite(arrivals[job_idx])) {
                continue;
              }
              arrivals[job_idx] = now;
              queued_since[job_idx] = now;
              unlocked_at[job_idx] = now;
              pending_arrivals.emplace(now, job_idx);
              obs::count("online.workflow.stage_unlocks");
            }
          }
        }
      }
    }

    // 5b. AIMD epoch tick: sample the sensor, feed the controller, publish
    // the fresh limit — before arrivals so a same-instant arrival already
    // sees it.
    if (aimd && now + kEps >= next_epoch && ctrl_down()) {
      // Epochs the blackout swallows pass without a sample: the controller
      // was not there to take one (the restart resumes on the next tick).
      while (next_epoch <= now + kEps) next_epoch += config_.admission.aimd.epoch_s;
    }
    if (aimd && now + kEps >= next_epoch) {
      while (next_epoch <= now + kEps) next_epoch += config_.admission.aimd.epoch_s;
      adm::AimdSample sample;
      sample.queue_depth = waiting.size();
      for (std::size_t j : waiting) {
        sample.max_queue_wait_s =
            std::max(sample.max_queue_wait_s, now - queued_since[j]);
      }
      sample.sheds = epoch_sheds;
      sample.deadline_misses = epoch_deadline_misses;
      epoch_sheds = 0;
      epoch_deadline_misses = 0;
      const std::size_t raises_before = aimd->stats().raises;
      const std::size_t cuts_before = aimd->stats().cuts;
      aimd->feed(sample);
      obs::count("sim.admission.epochs");
      if (aimd->stats().raises > raises_before) obs::count("sim.admission.raises");
      if (aimd->stats().cuts > cuts_before) obs::count("sim.admission.cuts");
      obs::gauge_set("sim.admission.limit", aimd->limit());
      obs::sim_instant(
          "admission.epoch", "sim.admission", now,
          {{"limit", aimd->limit()},
           {"queue", static_cast<std::int64_t>(sample.queue_depth)},
           {"max_wait_s", sample.max_queue_wait_s},
           {"sheds", static_cast<std::int64_t>(sample.sheds)},
           {"overloaded", aimd->overloaded() ? std::int64_t{1} : std::int64_t{0}}},
          /*tid=*/5);
    }

    // 6. Arrivals, through admission control.  The queue cap binds only at
    // arrival time; fault restarts re-enter at the head regardless (the job
    // already held an admission).
    const auto arrival_due = [&]() -> bool {
      if (wf_on) {
        return !pending_arrivals.empty() &&
               pending_arrivals.top().first <= now + kEps;
      }
      return next_arrival < jobs.size() && arrivals[next_arrival] <= now + kEps;
    };
    while (arrival_due()) {
      std::size_t j;
      if (wf_on) {
        j = pending_arrivals.top().second;
        pending_arrivals.pop();
        if (job_shed[j]) continue;  // cascade-shed before it could arrive
        if (config_.sim.domains.enabled && !std::isfinite(arrivals[j])) {
          continue;  // stale: pulled back to locked by a stage re-open
        }
      } else {
        j = next_arrival++;
      }
      const AdmissionPolicy pol = config_.admission.policy;
      if (tenancy) ++tstats[jobs[j].tenant].submitted;
      if (ctrl_down()) {
        // Admission decisions are the controller's: during a blackout the
        // arrival simply queues and waits for the restart (fail-static).
        waiting.push_back(j);
        result.overload.peak_queue_depth =
            std::max(result.overload.peak_queue_depth, waiting.size());
        continue;
      }
      if (pol == AdmissionPolicy::Aimd && !aimd_admit(j)) continue;
      if ((pol == AdmissionPolicy::RejectNew || pol == AdmissionPolicy::DropOldest) &&
          waiting.size() >= config_.admission.max_queue) {
        if (pol == AdmissionPolicy::RejectNew) {
          shed_job(j, ShedReason::QueueFull);
          continue;
        }
        // DropOldest: displace the lowest-priority waiting job, ties broken
        // by oldest *true* arrival — NOT queued_since, which fault restarts
        // re-stamp, so eviction order within a class would otherwise depend
        // on restart history rather than age — unless everything waiting
        // outranks the arrival, in which case the arrival itself is shed.
        std::size_t victim_pos = 0;
        for (std::size_t i = 1; i < waiting.size(); ++i) {
          const mr::Job& cand = jobs[waiting[i]];
          const mr::Job& best = jobs[waiting[victim_pos]];
          if (cand.priority < best.priority ||
              (cand.priority == best.priority &&
               arrivals[waiting[i]] < arrivals[waiting[victim_pos]])) {
            victim_pos = i;
          }
        }
        if (jobs[waiting[victim_pos]].priority > jobs[j].priority) {
          shed_job(j, ShedReason::QueueFull);
          continue;
        }
        const std::size_t victim = waiting[victim_pos];
        waiting.erase(waiting.begin() + static_cast<std::ptrdiff_t>(victim_pos));
        shed_job(victim, ShedReason::Displaced);
      }
      waiting.push_back(j);
      result.overload.peak_queue_depth =
          std::max(result.overload.peak_queue_depth, waiting.size());
    }

    // 7. FIFO admission: schedule from the head while jobs fit.  During a
    // blackout nothing launches: the queue holds and each deferred job is
    // counted once per blackout window.
    if (ctrl_down()) {
      for (std::size_t j : waiting) {
        if (job_deferred[j]) continue;
        job_deferred[j] = 1;
        ctrl_rt->note_wave_delayed();
        obs::count("online.ctrl.launches_delayed");
      }
    } else if (freed || !waiting.empty()) {
      while (!waiting.empty()) {
        if (!try_schedule(waiting.front())) break;  // head-of-line blocks
        waiting.pop_front();
      }
    }
    if ((config_.admission.policy == AdmissionPolicy::DeadlineShed ||
         (config_.admission.policy == AdmissionPolicy::Aimd &&
          config_.max_queue_wait > 0.0)) &&
        !waiting.empty() && !ctrl_down()) {
      // Restarts can reorder waits (they re-enter at the head with a fresh
      // stamp), so the deadline scan covers the whole queue.  Under Aimd the
      // deadline is optional; its sheds feed the controller as misses.
      std::deque<std::size_t> keep;
      for (std::size_t j : waiting) {
        if (now - queued_since[j] > config_.max_queue_wait) {
          shed_job(j, ShedReason::Deadline);
        } else {
          keep.push_back(j);
        }
      }
      waiting = std::move(keep);
    }
    if (config_.admission.policy == AdmissionPolicy::Unbounded &&
        config_.max_queue_wait > 0.0 && !waiting.empty() && !ctrl_down() &&
        now - queued_since[waiting.front()] > config_.max_queue_wait) {
      throw core::OverloadError(
          "OnlineSimulator: queue wait limit exceeded (overload)");
    }
  }

  const bool faulty = !config_.sim.faults.empty();
  const bool tracing = obs::current().trace() != nullptr;
  for (const JobFlow& jf : flows) {
    if (job_shed[jf.job]) continue;  // never released; nothing to record
    if (!jf.local) obs::observe("online.flow_duration_s", jf.finish - jf.release);
    if (tracing && !jf.local) {
      obs::sim_span("flow", "sim.flow", jf.release, jf.finish,
                    {{"flow", static_cast<std::int64_t>(jf.flow->id.value())},
                     {"gb", jf.flow->size_gb},
                     {"hops", static_cast<std::int64_t>(jf.hops)},
                     {"reroutes", static_cast<std::int64_t>(jf.reroutes)},
                     {"stall_s", jf.stall_seconds}},
                    /*tid=*/2);
    }
    FlowTiming ft;
    ft.id = jf.flow->id;
    ft.job = jf.flow->job;
    ft.wave = jf.flow->stage;
    ft.release = jf.release;
    ft.finish = jf.finish;
    ft.size_gb = jf.flow->size_gb;
    ft.route_hops = jf.hops;
    ft.local = jf.local;
    ft.reroutes = jf.reroutes;
    ft.stall_seconds = jf.stall_seconds;
    if (faulty && !jf.local) ft.final_route = jf.policy.list;
    result.flows.push_back(ft);
  }
  std::sort(result.jobs.begin(), result.jobs.end(),
            [](const OnlineJobRecord& a, const OnlineJobRecord& b) {
              return a.arrival < b.arrival;
            });
  result.coflows = group_coflows(result.flows);
  if (!result.coflows.empty()) {
    std::vector<double> ccts;
    ccts.reserve(result.coflows.size());
    for (const CoflowTiming& c : result.coflows) ccts.push_back(c.duration());
    double sum = 0.0;
    for (double v : ccts) sum += v;
    result.avg_coflow_cct = sum / static_cast<double>(ccts.size());
    result.p95_coflow_cct = stats::percentile(std::move(ccts), 95.0);
    obs::gauge_set("online.avg_coflow_cct_s", result.avg_coflow_cct);
    obs::gauge_set("online.p95_coflow_cct_s", result.p95_coflow_cct);
  }
  if (faulty) {
    account_plan(config_.sim.faults, result.makespan, rec);
    account_gray_plan(config_.sim.faults, result.makespan, result.gray);
    account_domain_plan(config_.sim.faults, result.makespan, result.fault_domains);
  }
  if (config_.sim.domains.enabled) {
    result.fault_domains.domains = DomainSet::derive(topology).size();
  }
  if (gray_rt) gray_rt->finish(result.makespan, result.gray);
  if (ctrl_rt) ctrl_rt->finish(result.makespan, result.control);
  if (tenancy) {
    // Weight-normalized served counts: a weight-2 tenant completing twice a
    // weight-1 tenant's jobs is perfectly fair, so Jain runs on x_t =
    // completed_t / weight_t.
    std::vector<double> served;
    served.reserve(tstats.size());
    for (const adm::TenantStats& ts : tstats) {
      served.push_back(static_cast<double>(ts.completed) / ts.weight);
      obs::gauge_set("sim.admission.tenant." + std::to_string(ts.tenant) +
                         ".completed",
                     static_cast<double>(ts.completed));
      obs::gauge_set(
          "sim.admission.tenant." + std::to_string(ts.tenant) + ".shed",
          static_cast<double>(ts.shed));
    }
    result.tenant_jain = adm::jain_index(served);
    obs::gauge_set("sim.admission.jain_index", result.tenant_jain);
    result.tenants = std::move(tstats);
  }
  if (aimd) {
    result.aimd = aimd->stats();
    obs::gauge_set("sim.admission.final_limit", result.aimd.final_limit);
  }
  if (wf_on) {
    result.workflow_jobs.reserve(jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      const WorkflowPlan::JobTag& tag = plan.job_tags[j];
      const StageState& ss = stage_state[tag.stage];
      WorkflowJobRecord wr;
      wr.id = jobs[j].id;
      wr.workflow = jobs[j].workflow;
      wr.stage = jobs[j].stage;
      wr.attempt = tag.attempt;
      wr.cp = jobs[j].critical_path;
      wr.unlocked = std::isfinite(unlocked_at[j]) ? unlocked_at[j] : -1.0;
      wr.finish = state[j].finished ? state[j].expected_finish : 0.0;
      wr.restarts = wf_restarts[j];
      wr.shed = job_shed[j] != 0;
      wr.stage_winner = ss.done && ss.winner == tag.attempt && !wr.shed;
      result.workflow_jobs.push_back(std::move(wr));
    }
    std::size_t stages_done = 0;
    std::size_t stages_failed = 0;
    for (const StageState& ss : stage_state) {
      if (ss.done) ++stages_done;
      if (ss.failed) ++stages_failed;
    }
    obs::gauge_set("online.workflow.stages_done",
                   static_cast<double>(stages_done));
    obs::gauge_set("online.workflow.stages_failed",
                   static_cast<double>(stages_failed));
  }
  return result;
}

}  // namespace hit::sim
