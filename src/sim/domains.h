// Failure domains derived from the typed topology (DESIGN.md §17).
//
// A failure domain is a set of elements that share fate: the server itself,
// the rack behind a ToR (access) switch, the pod under an aggregation
// switch, or every switch of one tier.  Domains are derived purely from the
// Topology — deterministic, id-ordered — and addressed by a 1-based ordinal
// so fault events can tag which correlated crash produced them.  Domains may
// overlap (a fat-tree access switch sits under several aggregation
// switches); FaultState application is idempotent so overlapping crashes
// compose.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topology/topology.h"

namespace hit::sim {

enum class DomainKind : std::uint8_t { Server, Rack, Pod, Tier };

[[nodiscard]] const char* domain_kind_name(DomainKind kind) noexcept;

/// Parse "server"/"rack"/"pod"/"tier"; throws std::invalid_argument.
[[nodiscard]] DomainKind parse_domain_kind(const std::string& name);

struct FailureDomain {
  DomainKind kind = DomainKind::Server;
  std::uint32_t ordinal = 0;         ///< 1-based id, used on FaultEvent::domain
  NodeId root;                       ///< defining element (switch, or the server)
  std::vector<NodeId> switches;      ///< member switches, ascending id
  std::vector<NodeId> servers;       ///< member server nodes, ascending id
  std::string name;                  ///< e.g. "rack-2", "pod-0", "tier-core"

  [[nodiscard]] std::size_t size() const noexcept {
    return switches.size() + servers.size();
  }
};

/// All failure domains of a topology: one Server domain per server, one Rack
/// per access switch (switch + adjacent servers), one Pod per aggregation
/// switch (switch + adjacent access subtree + its servers), one Tier per
/// switch tier present.  Ordinals are assigned in that order.
class DomainSet {
 public:
  DomainSet() = default;

  [[nodiscard]] static DomainSet derive(const topo::Topology& topology);

  [[nodiscard]] const std::vector<FailureDomain>& domains() const noexcept {
    return domains_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return domains_.size(); }
  [[nodiscard]] bool empty() const noexcept { return domains_.empty(); }

  /// Domain by 1-based ordinal; throws std::out_of_range.
  [[nodiscard]] const FailureDomain& at(std::uint32_t ordinal) const;

  /// The `index`-th domain of `kind` (0-based within the kind); nullptr when
  /// out of range.
  [[nodiscard]] const FailureDomain* find(DomainKind kind,
                                          std::size_t index) const noexcept;

  /// Rack ordinal containing server node `n` (0 when none / not a server).
  [[nodiscard]] std::uint32_t rack_of(NodeId n) const noexcept;

 private:
  std::vector<FailureDomain> domains_;
  std::vector<std::uint32_t> rack_of_;  // node id -> rack ordinal (0 = none)
};

}  // namespace hit::sim
