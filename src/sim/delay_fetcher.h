// DelayFetcher (§6.1): the fetch-delay model the paper injects into Hadoop's
// Fetcher.  The delay of moving data between servers s_i and s_j is
//
//     Delay = C(s_i, s_j) / B_ij
//
// where C is the shuffle cost (bytes x switch hops) and B_ij the bottleneck
// bandwidth on the route.  Used for remote map-input reads; shuffle flows go
// through the richer max-min fluid model instead (they contend with each
// other).
#pragma once

#include "cluster/cluster.h"
#include "topology/topology.h"
#include "util/ids.h"

namespace hit::sim {

class DelayFetcher {
 public:
  /// `bandwidth_scale` multiplies link bandwidths (Figure 9's sweep knob);
  /// `local_disk_bandwidth` serves node-local reads (0 = instantaneous).
  DelayFetcher(const cluster::Cluster& cluster, double bandwidth_scale = 1.0,
               double local_disk_bandwidth = 0.0);

  /// Seconds to fetch `size_gb` from `src` to `dst` along the shortest
  /// route.  Same-server fetches use the local disk model.
  [[nodiscard]] double fetch_seconds(double size_gb, ServerId src, ServerId dst) const;

  /// Bottleneck link bandwidth (scaled) on the shortest route.
  [[nodiscard]] double path_bandwidth(ServerId src, ServerId dst) const;

 private:
  const cluster::Cluster* cluster_;
  double scale_;
  double disk_bw_;
};

}  // namespace hit::sim
