// Deterministic discrete-event queue.  Events at equal timestamps fire in
// scheduling order (FIFO sequence numbers), so simulations replay
// identically across runs and platforms.
#pragma once

#include <cstddef>
#include <functional>
#include <queue>
#include <vector>

namespace hit::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `fn` at absolute time `when` (must be >= now()).
  void schedule(double when, Callback fn);

  /// Schedule `fn` `delay` time units from now.
  void schedule_in(double delay, Callback fn) { schedule(now_ + delay, std::move(fn)); }

  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }

  /// Pop and run the earliest event; returns false when empty.
  bool step();

  /// Run to exhaustion; throws std::runtime_error past `max_events`
  /// (runaway-loop guard).
  void run(std::size_t max_events = 100'000'000);

 private:
  struct Item {
    double when;
    std::size_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Item, std::vector<Item>, Later> heap_;
  double now_ = 0.0;
  std::size_t seq_ = 0;
};

}  // namespace hit::sim
