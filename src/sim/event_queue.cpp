#include "sim/event_queue.h"

#include <stdexcept>
#include <utility>

namespace hit::sim {

void EventQueue::schedule(double when, Callback fn) {
  if (when < now_) throw std::invalid_argument("EventQueue: scheduling in the past");
  heap_.push(Item{when, seq_++, std::move(fn)});
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast is UB-adjacent,
  // so copy the callback handle instead (std::function copy is cheap enough
  // for simulation granularity).
  Item item = heap_.top();
  heap_.pop();
  now_ = item.when;
  item.fn();
  return true;
}

void EventQueue::run(std::size_t max_events) {
  std::size_t executed = 0;
  while (step()) {
    if (++executed > max_events) {
      throw std::runtime_error("EventQueue: event budget exhausted (runaway?)");
    }
  }
}

}  // namespace hit::sim
