#include "sim/domains.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace hit::sim {

const char* domain_kind_name(DomainKind kind) noexcept {
  switch (kind) {
    case DomainKind::Server: return "server";
    case DomainKind::Rack: return "rack";
    case DomainKind::Pod: return "pod";
    case DomainKind::Tier: return "tier";
  }
  return "?";
}

DomainKind parse_domain_kind(const std::string& name) {
  if (name == "server") return DomainKind::Server;
  if (name == "rack" || name == "tor") return DomainKind::Rack;
  if (name == "pod") return DomainKind::Pod;
  if (name == "tier") return DomainKind::Tier;
  throw std::invalid_argument("unknown domain kind: " + name);
}

DomainSet DomainSet::derive(const topo::Topology& topology) {
  DomainSet set;
  const auto& graph = topology.graph();
  auto push = [&set](FailureDomain d) {
    std::sort(d.switches.begin(), d.switches.end());
    std::sort(d.servers.begin(), d.servers.end());
    d.ordinal = static_cast<std::uint32_t>(set.domains_.size() + 1);
    set.domains_.push_back(std::move(d));
  };

  std::size_t idx = 0;
  for (NodeId s : topology.servers()) {
    FailureDomain d;
    d.kind = DomainKind::Server;
    d.root = s;
    d.servers.push_back(s);
    d.name = "server-" + std::to_string(idx++);
    push(std::move(d));
  }

  idx = 0;
  for (NodeId sw : topology.switches()) {
    if (topology.tier(sw) != topo::Tier::Access) continue;
    FailureDomain d;
    d.kind = DomainKind::Rack;
    d.root = sw;
    d.switches.push_back(sw);
    for (const auto& e : graph.neighbors(sw)) {
      if (topology.is_server(e.to)) d.servers.push_back(e.to);
    }
    d.name = "rack-" + std::to_string(idx++);
    push(std::move(d));
  }

  idx = 0;
  for (NodeId sw : topology.switches()) {
    if (topology.tier(sw) != topo::Tier::Aggregation) continue;
    FailureDomain d;
    d.kind = DomainKind::Pod;
    d.root = sw;
    d.switches.push_back(sw);
    for (const auto& e : graph.neighbors(sw)) {
      if (!topology.is_switch(e.to)) continue;
      if (topology.tier(e.to) != topo::Tier::Access) continue;
      d.switches.push_back(e.to);
      for (const auto& f : graph.neighbors(e.to)) {
        if (topology.is_server(f.to)) d.servers.push_back(f.to);
      }
    }
    // An access switch reachable through two aggregation uplinks contributes
    // its servers once per pod, but only once within this pod.
    std::sort(d.servers.begin(), d.servers.end());
    d.servers.erase(std::unique(d.servers.begin(), d.servers.end()),
                    d.servers.end());
    d.name = "pod-" + std::to_string(idx++);
    push(std::move(d));
  }

  for (topo::Tier tier : {topo::Tier::Access, topo::Tier::Aggregation,
                          topo::Tier::Core}) {
    FailureDomain d;
    d.kind = DomainKind::Tier;
    for (NodeId sw : topology.switches()) {
      if (topology.tier(sw) == tier) d.switches.push_back(sw);
    }
    if (d.switches.empty()) continue;
    d.root = d.switches.front();
    d.name = "tier-" + std::string(topo::tier_name(tier));
    push(std::move(d));
  }

  set.rack_of_.assign(graph.node_count(), 0);
  for (const FailureDomain& d : set.domains_) {
    if (d.kind != DomainKind::Rack) continue;
    for (NodeId s : d.servers) {
      if (set.rack_of_[s.value()] == 0) set.rack_of_[s.value()] = d.ordinal;
    }
  }
  return set;
}

const FailureDomain& DomainSet::at(std::uint32_t ordinal) const {
  if (ordinal == 0 || ordinal > domains_.size()) {
    throw std::out_of_range("no failure domain with ordinal " +
                            std::to_string(ordinal));
  }
  return domains_[ordinal - 1];
}

const FailureDomain* DomainSet::find(DomainKind kind,
                                     std::size_t index) const noexcept {
  std::size_t seen = 0;
  for (const FailureDomain& d : domains_) {
    if (d.kind != kind) continue;
    if (seen++ == index) return &d;
  }
  return nullptr;
}

std::uint32_t DomainSet::rack_of(NodeId n) const noexcept {
  if (n.value() >= rack_of_.size()) return 0;
  return rack_of_[n.value()];
}

}  // namespace hit::sim
