#include "sim/gray.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "obs/context.h"

namespace hit::sim {
namespace {

constexpr double kEps = 1e-12;

GrayRuntime::Key event_key(const FaultEvent& event) {
  return event.target == FaultTarget::Link
             ? net::CapacityMap::link_key(event.node, event.peer)
             : net::CapacityMap::switch_key(event.node);
}

}  // namespace

GrayRuntime::GrayRuntime(const topo::Topology& topology, const GrayConfig& config)
    : topology_(&topology), config_(config), monitor_(topology, config.health) {
  if (config_.quarantine) config_.monitor = true;  // quarantine implies monitor
  if (config_.probe_interval <= 0.0) {
    throw std::invalid_argument("GrayRuntime: probe_interval must be positive");
  }
  if (config_.probe_successes == 0) {
    throw std::invalid_argument("GrayRuntime: probe_successes must be positive");
  }
  if (config_.probe_ratio <= 0.0 || config_.probe_ratio > 1.0) {
    throw std::invalid_argument("GrayRuntime: probe_ratio must be in (0, 1]");
  }
  if (config_.penalty < 1.0) {
    throw std::invalid_argument("GrayRuntime: penalty must be >= 1");
  }
}

void GrayRuntime::on_event(const FaultEvent& event) {
  if (event.kind == FaultKind::Degrade) {
    truth_onset_.emplace(event_key(event), event.time);
  } else if (event.kind == FaultKind::Restore) {
    truth_onset_.erase(event_key(event));
  }
}

std::vector<GrayRuntime::Key> GrayRuntime::sample(
    double now, const std::vector<net::FlowDemand>& demands,
    const std::vector<double>& observed, const std::vector<double>& nominal,
    const FaultState& truth) {
  if (!config_.monitor) return {};
  if (observed.size() != demands.size() || nominal.size() != demands.size()) {
    throw std::invalid_argument("GrayRuntime::sample: size mismatch");
  }
  monitor_.begin_sample();
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const double ratio = nominal[i] > kEps ? observed[i] / nominal[i] : 1.0;
    monitor_.note_path(demands[i].path, ratio);
  }
  std::vector<Key> quarantined_now;
  for (Key key : monitor_.end_sample()) {
    const bool real = truth.degrade().factor(key) < 1.0;
    if (real) {
      ++detections_;
      const auto it = truth_onset_.find(key);
      if (it != truth_onset_.end()) ttd_sum_ += now - it->second;
      obs::count("sim.gray.detections");
    } else {
      ++false_positives_;
      obs::count("sim.gray.false_positives");
    }
    obs::sim_instant("gray.suspect", "sim.gray", now,
                     {{"key", static_cast<std::int64_t>(key)},
                      {"real", static_cast<std::int64_t>(real)}},
                     /*tid=*/3);
    if (config_.quarantine &&
        quarantined_
            .emplace(key, Quarantine{now, 0, now + config_.probe_interval})
            .second) {
      ++quarantines_;
      quarantined_now.push_back(key);
      obs::count("sim.gray.quarantines");
      obs::sim_instant("gray.quarantine", "sim.gray", now,
                       {{"key", static_cast<std::int64_t>(key)}}, /*tid=*/3);
    }
  }
  return quarantined_now;
}

double GrayRuntime::next_probe_time() const {
  double next = std::numeric_limits<double>::infinity();
  for (const auto& [key, q] : quarantined_) next = std::min(next, q.next_probe);
  return next;
}

std::vector<GrayRuntime::Key> GrayRuntime::run_probes(double now,
                                                      const FaultState& truth) {
  std::vector<Key> reinstated;
  for (auto it = quarantined_.begin(); it != quarantined_.end();) {
    Quarantine& q = it->second;
    if (q.next_probe > now + kEps) {
      ++it;
      continue;
    }
    ++probes_;
    const bool healthy = truth.degrade().factor(it->first) >= config_.probe_ratio;
    obs::count("sim.gray.probes");
    obs::sim_instant("gray.probe", "sim.gray", now,
                     {{"key", static_cast<std::int64_t>(it->first)},
                      {"healthy", static_cast<std::int64_t>(healthy)}},
                     /*tid=*/3);
    if (healthy && ++q.successes >= config_.probe_successes) {
      quarantine_seconds_ += now - q.since;
      ++reinstatements_;
      monitor_.reset(it->first);
      reinstated.push_back(it->first);
      obs::count("sim.gray.reinstatements");
      obs::sim_instant("gray.reinstate", "sim.gray", now,
                       {{"key", static_cast<std::int64_t>(it->first)}},
                       /*tid=*/3);
      it = quarantined_.erase(it);
      continue;
    }
    if (!healthy) q.successes = 0;  // streak broken
    q.next_probe = now + config_.probe_interval;
    ++it;
  }
  return reinstated;
}

std::vector<NodeId> GrayRuntime::penalized_switches() const {
  std::vector<NodeId> out;
  for (const auto& [key, q] : quarantined_) {
    // Placement penalties act on switches the optimizer can route around.
    // A link flag localizes to the link alone — condemning both endpoints
    // would price up a healthy aggregation switch for its neighbour's sins
    // (every flow on an agg<->access uplink also crosses the access switch,
    // so a degraded access drags all its uplinks below threshold).  Link
    // suspects still divert crossing flows via apply_quarantine_to().
    if (!core::HealthMonitor::key_is_switch(key)) continue;
    out.push_back(core::HealthMonitor::key_node(key));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void GrayRuntime::apply_quarantine_to(FaultState& state) const {
  for (const auto& [key, q] : quarantined_) {
    const NodeId a = core::HealthMonitor::key_node(key);
    const NodeId b = core::HealthMonitor::key_peer(key);
    if (core::HealthMonitor::key_is_switch(key)) {
      state.apply(FaultEvent{0.0, FaultKind::Fail, FaultTarget::Switch, a});
    } else {
      state.apply(FaultEvent{0.0, FaultKind::Fail, FaultTarget::Link, a, b});
    }
  }
}

void GrayRuntime::finish(double end, GrayStats& gray) const {
  gray.detections += detections_;
  gray.false_positives += false_positives_;
  gray.mean_time_to_detect =
      detections_ > 0 ? ttd_sum_ / static_cast<double>(detections_) : 0.0;
  gray.quarantines += quarantines_;
  gray.probes += probes_;
  gray.reinstatements += reinstatements_;
  gray.quarantine_seconds = quarantine_seconds_;
  for (const auto& [key, q] : quarantined_) {
    if (end > q.since) gray.quarantine_seconds += end - q.since;
  }
}

}  // namespace hit::sim
