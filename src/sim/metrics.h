// Simulation result records — the raw material behind every figure the
// benchmark harnesses reproduce (JCT/map/reduce CDFs, route lengths, shuffle
// delays, traffic costs, throughput).
#pragma once

#include <string>
#include <vector>

#include "cluster/container.h"
#include "mapreduce/job.h"
#include "util/ids.h"

namespace hit::sim {

struct TaskTiming {
  TaskId id;
  JobId job;
  cluster::TaskKind kind = cluster::TaskKind::Map;
  double start = 0.0;   ///< map: wave launch; reduce: first input available
  double finish = 0.0;

  [[nodiscard]] double duration() const { return finish - start; }
};

struct FlowTiming {
  FlowId id;
  JobId job;
  /// Stage/wave identity within the owning job's workflow (0 for standalone
  /// jobs).  group_coflows keys on (job, wave), so chained workflow stages
  /// that share a JobId never merge into one coflow record.
  std::uint32_t wave = 0;
  double release = 0.0;  ///< src map finished; flow becomes transferable
  double finish = 0.0;   ///< last byte delivered
  double size_gb = 0.0;
  std::size_t route_hops = 0;  ///< switches traversed (0 = node-local)
  bool local = false;
  std::size_t reroutes = 0;       ///< times a fault forced this flow to move
  double stall_seconds = 0.0;     ///< time spent with no alive route
  std::vector<NodeId> final_route;  ///< switch list at completion (fault runs)

  [[nodiscard]] double duration() const { return finish - release; }
};

/// One coflow's lifetime: the shuffle flows of one job wave viewed as a
/// unit.  Recorded for every run (coflow scheduling on or off), so harnesses
/// can compare CCT under per-flow fair sharing against coflow disciplines.
struct CoflowTiming {
  CoflowId id;
  JobId job;
  std::uint32_t wave = 0;  ///< stage/wave identity of the grouped flows
  std::size_t width = 0;   ///< flows in the coflow
  double total_gb = 0.0;
  double release = 0.0;    ///< first flow transferable
  double finish = 0.0;     ///< last flow's final byte landed

  /// Coflow completion time (CCT).
  [[nodiscard]] double duration() const { return finish - release; }
};

/// Fault-and-recovery accounting for a run (all zero when no FaultPlan is
/// configured).  Degradation studies (bench_faults) plot these against JCT
/// and shuffle cost.
struct RecoveryStats {
  std::size_t faults_applied = 0;  ///< fail+recover events replayed
  std::size_t switches_failed = 0;
  std::size_t servers_failed = 0;
  std::size_t links_failed = 0;
  std::size_t maps_killed = 0;       ///< in-flight maps lost to server faults
  std::size_t maps_reexecuted = 0;   ///< recovery copies run to completion
  std::size_t reduces_relocated = 0; ///< reduce containers moved off dead servers
  std::size_t jobs_restarted = 0;    ///< online: jobs whose reduce host died
  std::size_t flows_rerouted = 0;    ///< mid-transfer detours taken
  std::size_t flows_stalled = 0;     ///< stall episodes (no alive route)
  double stall_seconds = 0.0;        ///< total flow-time spent stalled
  double unavailable_seconds = 0.0;  ///< Σ element downtime inside the run
};

/// Gray-failure accounting (all zero when no Degrade events fired and the
/// health monitor is off).  Ground truth (degradations, degraded_seconds)
/// comes from the fault plan via account_gray_plan; detection quality
/// (detections, false_positives, time-to-detect) and quarantine activity come
/// from the health monitor / quarantine loop, so a run can report "the
/// monitor caught N of M injected degradations, wrongly flagged K healthy
/// elements, and kept suspects quarantined for S seconds".
struct GrayStats {
  std::size_t gray_events = 0;        ///< degrade+restore events replayed
  std::size_t degradations = 0;       ///< injected degradation episodes
  double degraded_seconds = 0.0;      ///< Σ element degraded time in the run
  std::size_t detections = 0;         ///< degraded elements flagged by monitor
  std::size_t false_positives = 0;    ///< healthy elements flagged by monitor
  double mean_time_to_detect = 0.0;   ///< mean degrade→flag latency (detected)
  std::size_t quarantines = 0;        ///< elements placed under cost penalty
  std::size_t probes = 0;             ///< probe attempts against suspects
  std::size_t reinstatements = 0;     ///< suspects restored after probes pass
  double quarantine_seconds = 0.0;    ///< Σ element time under quarantine

  [[nodiscard]] bool any() const noexcept {
    return gray_events > 0 || detections > 0 || false_positives > 0;
  }
};

/// Control-plane crash accounting (DESIGN.md §15; all zero when the fault
/// plan carries no ControllerCrash events).  During a blackout the data
/// plane fails static: flows keep their last-installed routes (counted in
/// `flows_failstatic`), flows whose route dies stall instead of detouring
/// (`flows_stalled_blackout`), and new waves / job launches queue
/// (`waves_delayed`).  The restart replays the journal tail and reconciles;
/// `reconcile_repairs` counts the divergences repaired then.
struct ControlPlaneStats {
  std::size_t crashes = 0;            ///< ControllerCrash events replayed
  std::size_t restarts = 0;           ///< ControllerRestart events replayed
  double blackout_seconds = 0.0;      ///< Σ controller downtime inside the run
  std::size_t waves_delayed = 0;      ///< wave/job launches deferred past a blackout
  std::size_t flows_failstatic = 0;   ///< flows that rode out a blackout on old routes
  std::size_t flows_stalled_blackout = 0;  ///< stalls that had to wait for restart
  std::size_t reconcile_violations = 0;    ///< divergences found at restart
  std::size_t reconcile_repairs = 0;       ///< divergences repaired at restart
  std::size_t journal_records = 0;    ///< control-plane mutations journaled
  std::size_t snapshots = 0;          ///< snapshots cut on the cadence
  std::size_t replayed_records = 0;   ///< journal tail replayed across restarts

  [[nodiscard]] bool any() const noexcept {
    return crashes > 0 || restarts > 0 || journal_records > 0;
  }
};

/// Failure-domain accounting (DESIGN.md §17; all zero when the fault plan
/// carries no domain-tagged events and output loss is off).  `outputs_lost`
/// counts completed map outputs destroyed by server crashes once the
/// durable-output assumption is dropped; `maps_reexecuted_lineage` counts the
/// lineage re-executions that replaced them (only maps whose outputs still
/// feed pending shuffles/stages re-run); `stage_reopens` counts finished
/// workflow stages re-opened because a child still needed the lost output;
/// `partition_parks` counts flows parked because a fault partitioned their
/// endpoints (no alive route existed, as opposed to a repairable detour).
struct FaultDomainStats {
  std::size_t domains = 0;            ///< failure domains derived (when enabled)
  std::size_t domain_faults = 0;      ///< correlated domain-crash instants
  std::size_t outputs_lost = 0;       ///< completed map outputs destroyed
  std::size_t maps_reexecuted_lineage = 0;  ///< lineage-driven map re-executions
  std::size_t stage_reopens = 0;      ///< finished stages re-opened for lineage
  std::size_t partition_parks = 0;    ///< flows parked with endpoints partitioned

  [[nodiscard]] bool any() const noexcept {
    return domain_faults > 0 || outputs_lost > 0 ||
           maps_reexecuted_lineage > 0 || stage_reopens > 0 ||
           partition_parks > 0;
  }
};

/// Overload accounting for an online run (all zero when admission control is
/// off or the offered load fits).  A run that sheds work completes with
/// partial results instead of throwing; this block says what was given up.
struct OverloadStats {
  std::size_t jobs_shed = 0;        ///< total jobs abandoned unscheduled
  std::size_t shed_on_arrival = 0;  ///< rejected at a full queue (reject-new)
  std::size_t shed_for_room = 0;    ///< displaced to admit an arrival (drop-oldest)
  std::size_t shed_deadline = 0;    ///< waited past the queue-wait deadline
  std::size_t shed_parent = 0;      ///< workflow stages lost to a failed parent
  std::size_t peak_queue_depth = 0; ///< max simultaneous waiting jobs
  double shed_gb = 0.0;             ///< shuffle bytes never transferred

  [[nodiscard]] bool any() const noexcept { return jobs_shed > 0; }
};

struct JobResult {
  JobId id;
  std::string benchmark;
  mr::JobClass cls = mr::JobClass::ShuffleLight;
  double completion_time = 0.0;
  double shuffle_gb = 0.0;
  double remote_map_gb = 0.0;
  double shuffle_cost = 0.0;  ///< Σ size x switch hops (GB·T)
};

struct SimResult {
  std::vector<JobResult> jobs;
  std::vector<TaskTiming> tasks;
  std::vector<FlowTiming> flows;
  double makespan = 0.0;
  double total_shuffle_cost = 0.0;   ///< GB·T, static hop metric
  double total_shuffle_gb = 0.0;
  double total_remote_map_gb = 0.0;
  double shuffle_finish_time = 0.0;  ///< when the last shuffle byte landed
  std::size_t speculative_copies = 0;  ///< backup map attempts launched
  std::size_t speculative_won = 0;     ///< backups that beat the original
  std::size_t speculative_lost = 0;    ///< backups the original outran
  RecoveryStats recovery;              ///< fault/recovery accounting
  GrayStats gray;                      ///< gray-failure / quarantine accounting
  ControlPlaneStats control;           ///< controller crash/blackout accounting
  FaultDomainStats fault_domains;      ///< correlated-fault / lineage accounting
  std::vector<CoflowTiming> coflows;   ///< per-job-wave shuffle groups

  [[nodiscard]] std::vector<double> job_completion_times() const;
  [[nodiscard]] std::vector<double> task_durations(cluster::TaskKind kind) const;
  /// Mean switch-hop route length over non-local flows.
  [[nodiscard]] double average_route_hops() const;
  /// Mean transfer duration over non-local flows.
  [[nodiscard]] double average_flow_duration() const;
  /// Aggregate shuffle throughput: bytes over time-to-last-byte.
  [[nodiscard]] double shuffle_throughput() const;
  /// CCT sample per recorded coflow (empty when no coflow moved bytes).
  [[nodiscard]] std::vector<double> coflow_completion_times() const;
  /// Mean / p95 CCT over recorded coflows (0 when none).
  [[nodiscard]] double average_coflow_cct() const;
  [[nodiscard]] double p95_coflow_cct() const;
};

/// Group a run's flows into per-(job, wave) coflows (release = first flow
/// transferable, finish = last byte landed).  Both simulators call this at
/// the end of every run; `flows` order decides the coflow ids (first
/// appearance of the (job, wave) pair), so the output is deterministic.
/// Keying on the wave as well as the job keeps chained stages of one
/// workflow — which re-use a JobId across re-executions or share one in
/// merged results — from collapsing into a single CCT record; every
/// pre-workflow flow carries wave 0, so legacy runs group exactly as before.
[[nodiscard]] std::vector<CoflowTiming> group_coflows(
    const std::vector<FlowTiming>& flows);

}  // namespace hit::sim
