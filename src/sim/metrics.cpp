#include "sim/metrics.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "stats/summary.h"

namespace hit::sim {

std::vector<double> SimResult::job_completion_times() const {
  std::vector<double> out;
  out.reserve(jobs.size());
  for (const JobResult& j : jobs) out.push_back(j.completion_time);
  return out;
}

std::vector<double> SimResult::task_durations(cluster::TaskKind kind) const {
  std::vector<double> out;
  for (const TaskTiming& t : tasks) {
    if (t.kind == kind) out.push_back(t.duration());
  }
  return out;
}

double SimResult::average_route_hops() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const FlowTiming& f : flows) {
    if (f.local) continue;
    sum += static_cast<double>(f.route_hops);
    ++n;
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

double SimResult::average_flow_duration() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const FlowTiming& f : flows) {
    if (f.local) continue;
    sum += f.duration();
    ++n;
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

double SimResult::shuffle_throughput() const {
  return shuffle_finish_time > 0.0 ? total_shuffle_gb / shuffle_finish_time : 0.0;
}

std::vector<double> SimResult::coflow_completion_times() const {
  std::vector<double> out;
  out.reserve(coflows.size());
  for (const CoflowTiming& c : coflows) out.push_back(c.duration());
  return out;
}

double SimResult::average_coflow_cct() const {
  if (coflows.empty()) return 0.0;
  double sum = 0.0;
  for (const CoflowTiming& c : coflows) sum += c.duration();
  return sum / static_cast<double>(coflows.size());
}

double SimResult::p95_coflow_cct() const {
  if (coflows.empty()) return 0.0;
  return stats::percentile(coflow_completion_times(), 95.0);
}

std::vector<CoflowTiming> group_coflows(const std::vector<FlowTiming>& flows) {
  std::vector<CoflowTiming> out;
  // (job, wave) composite key: distinct workflow stages of one job id stay
  // distinct coflows.  Legacy flows all carry wave 0, so the grouping — and
  // the emitted ids — are unchanged for pre-workflow runs.
  std::unordered_map<std::uint64_t, std::size_t> index_of;
  for (const FlowTiming& f : flows) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(f.job.value()) << 32) | f.wave;
    const auto [it, fresh] = index_of.emplace(key, out.size());
    if (fresh) {
      CoflowTiming c;
      c.id = CoflowId(static_cast<CoflowId::value_type>(out.size()));
      c.job = f.job;
      c.wave = f.wave;
      c.release = std::numeric_limits<double>::infinity();
      out.push_back(c);
    }
    CoflowTiming& c = out[it->second];
    ++c.width;
    c.total_gb += f.size_gb;
    c.release = std::min(c.release, f.release);
    c.finish = std::max(c.finish, f.finish);
  }
  return out;
}

}  // namespace hit::sim
