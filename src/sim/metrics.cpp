#include "sim/metrics.h"

namespace hit::sim {

std::vector<double> SimResult::job_completion_times() const {
  std::vector<double> out;
  out.reserve(jobs.size());
  for (const JobResult& j : jobs) out.push_back(j.completion_time);
  return out;
}

std::vector<double> SimResult::task_durations(cluster::TaskKind kind) const {
  std::vector<double> out;
  for (const TaskTiming& t : tasks) {
    if (t.kind == kind) out.push_back(t.duration());
  }
  return out;
}

double SimResult::average_route_hops() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const FlowTiming& f : flows) {
    if (f.local) continue;
    sum += static_cast<double>(f.route_hops);
    ++n;
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

double SimResult::average_flow_duration() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const FlowTiming& f : flows) {
    if (f.local) continue;
    sum += f.duration();
    ++n;
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

double SimResult::shuffle_throughput() const {
  return shuffle_finish_time > 0.0 ? total_shuffle_gb / shuffle_finish_time : 0.0;
}

}  // namespace hit::sim
