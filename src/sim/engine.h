// ClusterSimulator: end-to-end MapReduce execution over a hierarchical
// network — the testbed substitute.
//
// Pipeline per run:
//   1. HDFS block placement for every map split (mr::BlockPlacement).
//   2. Wave decomposition (§5.3): all reduce tasks hold containers for the
//      job's lifetime; map tasks fill the remaining slots in waves.  Wave 1
//      is an initial-wave scheduling problem (both flow endpoints open);
//      later waves fix the reduce hosts, triggering the subsequent-wave path
//      of wave-aware schedulers.
//   3. Map phase: map duration = compute + remote input fetch (DelayFetcher,
//      nearest replica).  Waves run back-to-back.
//   4. Shuffle phase: fluid flow-level simulation.  A flow releases when its
//      map finishes and transfers at the max-min fair rate of its *policy
//      route*; rates re-solve at every release/completion event, so
//      bandwidth is dynamic exactly as the paper argues it must be.
//   5. Reduce phase: a reduce computes after its last input byte lands;
//      job completion = last reduce finish.
//
// Determinism: given the same topology, jobs, scheduler and seed, the result
// is bit-identical.
#pragma once

#include <vector>

#include "cluster/cluster.h"
#include "cluster/resource_manager.h"
#include "coflow/coflow.h"
#include "core/cost_model.h"
#include "mapreduce/hdfs.h"
#include "mapreduce/job.h"
#include "mapreduce/shuffle.h"
#include "network/bandwidth.h"
#include "obs/context.h"
#include "sched/scheduler.h"
#include "sim/ctrlplane.h"
#include "sim/delay_fetcher.h"
#include "sim/faults.h"
#include "sim/gray.h"
#include "sim/metrics.h"
#include "util/rng.h"

namespace hit::sim {

struct SimConfig {
  double bandwidth_scale = 1.0;       ///< shuffle-path throttle (Figure 9 knob)
  /// Map-input reads use this separate scale (default unthrottled): the
  /// paper's DelayFetcher injects delay into the *shuffle* fetch path while
  /// HDFS reads run at native cluster speed.
  double map_fetch_bandwidth_scale = 1.0;
  double local_disk_bandwidth = 0.0;  ///< 0 = local reads are free
  /// Straggler model: per-map lognormal multiplier on compute time
  /// (sigma; 0 = deterministic).  Jitter is a pure function of (seed, task
  /// id), so scheduler comparisons at one seed face identical stragglers.
  double map_time_jitter_sigma = 0.0;
  /// Speculative execution (LATE-style, Zaharia et al. OSDI'08): a map
  /// whose duration exceeds `speculation_threshold` x the wave median gets
  /// a backup copy launched once the median has elapsed; the task finishes
  /// at the earlier of the two attempts.  Off when threshold <= 1.
  double speculation_threshold = 0.0;
  std::size_t hdfs_replication = 3;
  /// How concurrent shuffle flows share bandwidth (max-min fair by default;
  /// SRPT models the flow-scheduling systems of related work [5][6]).
  net::SharingPolicy sharing = net::SharingPolicy::MaxMinFair;
  /// Coflow scheduling (off by default — per-flow sharing is bit-identical
  /// to the pre-coflow simulator).  When enabled, shuffle rates come from
  /// the MADD allocator serving whole coflows in the configured order, and
  /// `sharing` is ignored during the shuffle phase.
  coflow::CoflowConfig coflow;
  cluster::Resource container_demand = cluster::kDefaultContainerDemand;
  mr::ShuffleConfig shuffle;
  /// Hard cap on map waves (safety against degenerate configs).
  std::size_t max_waves = 64;
  /// Fault script replayed during the run (empty = fault-free, the default).
  /// Server failures kill their in-flight maps (re-executed through the
  /// scheduler's subsequent-wave path; reduce containers relocate the same
  /// way); switch/link failures detour or stall the shuffle flows crossing
  /// them until repair.  Map-phase simplifications: map-input fetch prefers
  /// alive replicas (falls back to the nearest replica when all are down,
  /// modeling HDFS re-replication), completed map output is durable unless
  /// `domains` drops that assumption, and server faults after the map phase
  /// are counted but do not interrupt transfers (the online simulator models
  /// full job restart and mid-shuffle lineage re-execution).
  FaultPlan faults;
  /// Failure-domain model (off by default — bit-identical to the durable
  /// output simulator).  When enabled, a server crash during the map phase
  /// destroys the completed map outputs it hosts with probability
  /// `output_loss_prob` (probability 1 when the crash is a domain-tagged
  /// correlated fault), and lineage re-executes exactly the maps whose
  /// outputs still feed pending shuffles.  Disconnected shuffle endpoints
  /// are counted in FaultDomainStats::partition_parks.
  FaultDomainConfig domains;
  /// Gray-failure handling (all off by default): health-monitor sampling of
  /// shuffle progress, detection stats against the plan's Degrade events,
  /// and optionally quarantine (suspect elements are soft-avoided by
  /// rerouting and probed before trust returns).  Degrade events in `faults`
  /// scale effective capacities whether or not the monitor runs.
  GrayConfig gray;
  /// Control-plane recovery knobs (all off by default): snapshot cadence for
  /// the journal model and warm-standby takeover.  ControllerCrash events in
  /// `faults` open a blackout window whether or not these are set — during
  /// it flows fail static (no reroutes, route-killed flows stall) and new
  /// waves / job launches queue until the restart reconciles.
  CtrlPlaneConfig recovery;
  /// Observability context (null = disabled, the default).  `run()` binds it
  /// as the thread's ambient context, so the scheduler's phases profile into
  /// it too; wave boundaries, task placements, flow lifecycle and fault
  /// events land on the simulated-time trace lane.
  const obs::Context* observer = nullptr;
};

class ClusterSimulator {
 public:
  ClusterSimulator(const cluster::Cluster& cluster, SimConfig config = {});

  /// Simulate `jobs` under `scheduler`.  `ids` must be the allocator that
  /// created the jobs (flows continue its id space).  Throws
  /// std::runtime_error when reduces alone exceed cluster capacity.
  [[nodiscard]] SimResult run(sched::Scheduler& scheduler,
                              const std::vector<mr::Job>& jobs,
                              mr::IdAllocator& ids, Rng& rng) const;

  [[nodiscard]] const SimConfig& config() const noexcept { return config_; }

 private:
  const cluster::Cluster* cluster_;
  SimConfig config_;
};

}  // namespace hit::sim
