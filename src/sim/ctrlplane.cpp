#include "sim/ctrlplane.h"

#include <algorithm>
#include <limits>

#include "obs/context.h"

namespace hit::sim {

CtrlPlaneRuntime::CtrlPlaneRuntime(const CtrlPlaneConfig& config)
    : config_(config) {}

bool CtrlPlaneRuntime::plan_has_controller(const FaultPlan& plan) {
  for (const FaultEvent& ev : plan.events()) {
    if (ev.target == FaultTarget::Controller) return true;
  }
  return false;
}

std::vector<FaultEvent> CtrlPlaneRuntime::plan_events(
    const FaultPlan& plan) const {
  std::vector<FaultEvent> events = plan.events();
  if (!config_.standby) return events;
  // Warm standby caps every blackout at the takeover latency.  Walk the
  // controller events in time order (the plan is sorted): clamp the restart
  // matching each crash, and give a permanent crash a takeover restart.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  double open_crash = -1.0;  // < 0: no blackout open
  std::vector<FaultEvent> takeovers;
  for (FaultEvent& ev : events) {
    if (ev.target != FaultTarget::Controller) continue;
    if (ev.kind == FaultKind::ControllerCrash) {
      if (open_crash >= 0.0) {
        // Back-to-back crash with no restart between: the earlier blackout
        // was permanent — the standby has already taken over.
        FaultEvent takeover;
        takeover.time = std::min(open_crash + config_.standby_takeover_s,
                                 ev.time);
        takeover.kind = FaultKind::ControllerRestart;
        takeover.target = FaultTarget::Controller;
        takeovers.push_back(takeover);
      }
      open_crash = ev.time;
    } else if (ev.kind == FaultKind::ControllerRestart) {
      if (open_crash >= 0.0) {
        ev.time = std::min(ev.time, open_crash + config_.standby_takeover_s);
      }
      open_crash = -1.0;
    }
  }
  if (open_crash >= 0.0 && config_.standby_takeover_s < kInf) {
    FaultEvent takeover;
    takeover.time = open_crash + config_.standby_takeover_s;
    takeover.kind = FaultKind::ControllerRestart;
    takeover.target = FaultTarget::Controller;
    takeovers.push_back(takeover);
  }
  events.insert(events.end(), takeovers.begin(), takeovers.end());
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.time < b.time;
                   });
  return events;
}

void CtrlPlaneRuntime::on_crash(double now, std::size_t active_flows) {
  advance(now);  // snapshots cut up to the crash instant still count
  if (down_) return;  // duplicate crash: the blackout is already open
  down_ = true;
  down_since_ = now;
  ++stats_.crashes;
  stats_.flows_failstatic += active_flows;
  // Everything journaled since the last snapshot replays at restart.
  stats_.replayed_records += stats_.journal_records - records_at_snapshot_;
  obs::count("sim.ctrl.crashes");
  obs::sim_instant("ctrl.crash", "sim.recovery", now,
                   {{"failstatic", static_cast<std::int64_t>(active_flows)}},
                   /*tid=*/6);
}

void CtrlPlaneRuntime::on_restart(double now) {
  if (!down_) return;  // restart with no open blackout: nothing to do
  down_ = false;
  ++stats_.restarts;
  stats_.blackout_seconds += now - down_since_;
  obs::count("sim.ctrl.restarts");
  obs::observe("sim.ctrl.blackout_s", now - down_since_);
  obs::sim_span("ctrl.blackout", "sim.recovery", down_since_, now, {},
                /*tid=*/6);
  // The restarted controller snapshots as soon as it has reconciled, so the
  // replay window re-anchors here.
  records_at_snapshot_ = stats_.journal_records;
  last_snapshot_ = now;
  ++stats_.snapshots;
  obs::count("sim.ctrl.snapshots");
}

void CtrlPlaneRuntime::advance(double now) {
  if (config_.snapshot_every <= 0.0 || down_) return;
  while (last_snapshot_ + config_.snapshot_every <= now) {
    last_snapshot_ += config_.snapshot_every;
    records_at_snapshot_ = stats_.journal_records;
    ++stats_.snapshots;
    obs::count("sim.ctrl.snapshots");
  }
}

void CtrlPlaneRuntime::note_reconcile(std::size_t violations,
                                      std::size_t repairs) {
  stats_.reconcile_violations += violations;
  stats_.reconcile_repairs += repairs;
  obs::count("sim.ctrl.reconcile_violations", violations);
  obs::count("sim.ctrl.reconcile_repairs", repairs);
}

void CtrlPlaneRuntime::finish(double end, ControlPlaneStats& out) {
  if (down_) {
    // Permanent crash: the blackout runs to the end of the simulation.
    stats_.blackout_seconds += std::max(0.0, end - down_since_);
  }
  out = stats_;
  if (stats_.any()) {
    obs::gauge_set("sim.ctrl.blackout_seconds", out.blackout_seconds);
    obs::gauge_set("sim.ctrl.journal_records",
                   static_cast<double>(out.journal_records));
    obs::gauge_set("sim.ctrl.waves_delayed",
                   static_cast<double>(out.waves_delayed));
  }
}

}  // namespace hit::sim
