#include "sim/engine.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <memory>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "coflow/ordering.h"
#include "coflow/rate_allocator.h"
#include "network/routing.h"

namespace hit::sim {
namespace {

constexpr double kEps = 1e-9;

/// Output-loss Bernoulli draws fork the run rng under a salt disjoint from
/// every scheduling stream (wave, jitter, HDFS), so enabling the
/// failure-domain model leaves all placements byte-identical.
constexpr std::uint64_t kLossSalt = 0x4C4F535300000000ull;  // "LOSS"

/// How many containers of `demand` fit into `capacity`.
std::size_t slot_count(cluster::Resource capacity, cluster::Resource demand) {
  double slots = std::numeric_limits<double>::infinity();
  if (demand.vcores > 0.0) slots = std::min(slots, std::floor(capacity.vcores / demand.vcores));
  if (demand.mem_gb > 0.0) slots = std::min(slots, std::floor(capacity.mem_gb / demand.mem_gb));
  if (!std::isfinite(slots)) {
    throw std::invalid_argument("slot_count: container demand must be non-zero");
  }
  return static_cast<std::size_t>(std::max(slots, 0.0));
}

sched::TaskRef make_ref(const mr::Task& task, cluster::Resource demand) {
  sched::TaskRef r;
  r.id = task.id;
  r.job = task.job;
  r.kind = task.kind;
  r.demand = demand;
  r.input_gb = task.input_gb;
  return r;
}

}  // namespace

ClusterSimulator::ClusterSimulator(const cluster::Cluster& cluster, SimConfig config)
    : cluster_(&cluster), config_(config) {
  if (config_.bandwidth_scale <= 0.0) {
    throw std::invalid_argument("ClusterSimulator: bandwidth_scale must be positive");
  }
}

SimResult ClusterSimulator::run(sched::Scheduler& scheduler,
                                const std::vector<mr::Job>& jobs,
                                mr::IdAllocator& ids, Rng& rng) const {
  const obs::Bind bind(config_.observer);
  HIT_PROF_SCOPE("sim.run");
  obs::count("sim.runs");
  const topo::Topology& topology = cluster_->topology();

  // ---- 1. HDFS splits and shuffle flows -----------------------------------
  Rng hdfs_rng = rng.fork(0x48444653);  // "HDFS"
  const mr::BlockPlacement blocks(*cluster_, jobs, hdfs_rng, config_.hdfs_replication);
  const net::FlowSet flows = mr::build_shuffle_flows(jobs, ids, config_.shuffle);

  std::unordered_map<TaskId, const mr::Task*> task_of;
  std::unordered_map<TaskId, const mr::Job*> job_of_task;
  for (const mr::Job& job : jobs) {
    for (const mr::Task& t : job.maps) {
      task_of.emplace(t.id, &t);
      job_of_task.emplace(t.id, &job);
    }
    for (const mr::Task& t : job.reduces) {
      task_of.emplace(t.id, &t);
      job_of_task.emplace(t.id, &job);
    }
  }
  std::unordered_map<TaskId, std::vector<const net::Flow*>> flows_by_src;
  std::unordered_map<TaskId, std::vector<const net::Flow*>> flows_by_dst;
  for (const net::Flow& f : flows) {
    flows_by_src[f.src_task].push_back(&f);
    flows_by_dst[f.dst_task].push_back(&f);
  }

  // ---- 2. Wave decomposition ----------------------------------------------
  std::size_t total_slots = 0;
  for (const cluster::Server& s : cluster_->servers()) {
    total_slots += slot_count(s.capacity, config_.container_demand);
  }
  std::vector<const mr::Task*> all_reduces;
  std::vector<const mr::Task*> all_maps;
  for (const mr::Job& job : jobs) {
    for (const mr::Task& t : job.reduces) all_reduces.push_back(&t);
    for (const mr::Task& t : job.maps) all_maps.push_back(&t);
  }
  if (all_reduces.size() >= total_slots && !all_maps.empty()) {
    throw std::runtime_error("ClusterSimulator: reduces leave no map slots");
  }
  if (all_reduces.size() + all_maps.size() == 0) return SimResult{};

  const std::size_t map_slots = total_slots - all_reduces.size();
  if (!all_maps.empty() &&
      (all_maps.size() + map_slots - 1) / map_slots > config_.max_waves) {
    throw std::runtime_error("ClusterSimulator: wave budget exceeded");
  }

  // ---- 3+4. Scheduling and map execution, wave by wave ---------------------
  // Scheduling and timing interleave so that server faults observed in one
  // wave shape the next wave's problem: dead servers are masked to full
  // capacity, killed maps re-queue through the scheduler's subsequent-wave
  // path, and reduce containers displaced by a dead host are re-placed the
  // same way.  With an empty FaultPlan this reduces exactly to the static
  // wave slicing (map_slots tasks per wave, back-to-back).
  SimResult result;
  RecoveryStats& rec = result.recovery;
  const DelayFetcher fetcher(*cluster_, config_.map_fetch_bandwidth_scale,
                             config_.local_disk_bandwidth);
  std::unordered_map<TaskId, ServerId> placement;
  std::unordered_map<FlowId, net::Policy> policies;
  std::unordered_map<TaskId, double> map_finish;
  std::unordered_map<JobId, double> remote_map_gb;

  // Split the plan: server events drive the map phase, switch/link events
  // drive the shuffle phase, controller events bound the blackout windows
  // both phases must respect (FaultState rejects them).
  std::optional<CtrlPlaneRuntime> ctrl_rt;
  const bool ctrl_on = CtrlPlaneRuntime::plan_has_controller(config_.faults) ||
                       config_.recovery.enabled();
  if (ctrl_on) ctrl_rt.emplace(config_.recovery);
  const std::vector<FaultEvent> planned =
      ctrl_on ? ctrl_rt->plan_events(config_.faults)
              : std::vector<FaultEvent>{};
  std::vector<FaultEvent> server_events;
  std::vector<FaultEvent> net_events;
  std::vector<FaultEvent> ctrl_events;
  for (const FaultEvent& ev : ctrl_on ? planned : config_.faults.events()) {
    if (ev.target == FaultTarget::Controller) {
      ctrl_events.push_back(ev);
    } else if (ev.target == FaultTarget::Server) {
      server_events.push_back(ev);
    } else {
      net_events.push_back(ev);
    }
  }
  const auto ctrl_down = [&] { return ctrl_rt && ctrl_rt->down(); };

  // Blackout intervals [crash, restart), for wave deferral in the map phase
  // (the shuffle loop consumes ctrl_events itself, in time order).
  std::vector<std::pair<double, double>> blackouts;
  {
    double open = -1.0;
    for (const FaultEvent& ev : ctrl_events) {
      if (ev.kind == FaultKind::ControllerCrash) {
        if (open < 0.0) open = ev.time;
      } else if (open >= 0.0) {
        blackouts.emplace_back(open, ev.time);
        open = -1.0;
      }
    }
    if (open >= 0.0) {
      blackouts.emplace_back(open, std::numeric_limits<double>::infinity());
    }
  }

  std::vector<char> server_dead(cluster_->size(), 0);
  std::size_t next_sev = 0;
  const auto apply_server_event = [&](const FaultEvent& ev) {
    const ServerId s = cluster_->server_at(ev.node);
    server_dead[s.index()] = ev.kind == FaultKind::Fail ? 1 : 0;
    obs::count(ev.kind == FaultKind::Fail ? "sim.faults.server_fail"
                                          : "sim.faults.server_recover");
    obs::sim_instant(ev.kind == FaultKind::Fail ? "fault.server.fail"
                                                : "fault.server.recover",
                     "sim.fault", ev.time,
                     {{"server", static_cast<std::int64_t>(s.value())}},
                     /*tid=*/3);
    if (ev.domain != 0) {
      obs::count(ev.kind == FaultKind::Fail ? "sim.domains.member_fail"
                                            : "sim.domains.member_recover");
      obs::sim_instant(ev.kind == FaultKind::Fail ? "domain.fail"
                                                  : "domain.recover",
                       "sim.domain", ev.time,
                       {{"domain", static_cast<std::int64_t>(ev.domain)},
                        {"server", static_cast<std::int64_t>(s.value())}},
                       /*tid=*/8);
    }
  };

  std::vector<cluster::Resource> reduce_usage(cluster_->size());
  std::deque<const mr::Task*> todo(all_maps.begin(), all_maps.end());
  std::vector<const mr::Task*> displaced;   // reduces whose host died
  std::unordered_set<TaskId> killed;        // maps awaiting a recovery copy
  std::unordered_set<TaskId> lost_outputs;  // killed because their output died
  double wave_start = 0.0;
  std::size_t wave_index = 0;
  bool first = true;

  while (first || !todo.empty() || !displaced.empty()) {
    // A wave cannot dispatch while the controller is down: it queues until
    // the restart reconciles (fail-static, DESIGN.md §15).
    for (const auto& [crash, restart] : blackouts) {
      if (wave_start >= crash - kEps && wave_start < restart - kEps) {
        if (!std::isfinite(restart)) {
          throw std::runtime_error(
              "ClusterSimulator: controller crashed with map waves pending");
        }
        ctrl_rt->note_wave_delayed();
        obs::count("sim.ctrl.waves_delayed");
        wave_start = restart;
      }
    }
    // Server events up to the wave boundary shape this wave's problem.
    while (next_sev < server_events.size() &&
           server_events[next_sev].time <= wave_start + kEps) {
      apply_server_event(server_events[next_sev++]);
    }

    // Capacity under the current dead mask.
    std::size_t alive_slots = 0;
    for (const cluster::Server& s : cluster_->servers()) {
      if (!server_dead[s.id.index()]) {
        alive_slots += slot_count(s.capacity, config_.container_demand);
      }
    }
    const std::size_t must_place = first ? all_reduces.size() : displaced.size();
    const std::size_t held = first ? 0 : all_reduces.size() - displaced.size();
    const std::size_t free_slots = alive_slots > held ? alive_slots - held : 0;
    const bool fits = free_slots >= must_place;
    const std::size_t map_count =
        fits ? std::min(free_slots - must_place, todo.size()) : 0;
    if (!fits || (map_count == 0 && must_place == 0)) {
      // Nothing can launch now: wait for the next repair, or give up.
      if (next_sev >= server_events.size()) {
        throw std::runtime_error(
            "ClusterSimulator: map slots exhausted by server failures");
      }
      wave_start = std::max(wave_start, server_events[next_sev].time);
      continue;
    }

    std::vector<const mr::Task*> wave_maps(
        todo.begin(), todo.begin() + static_cast<std::ptrdiff_t>(map_count));
    todo.erase(todo.begin(), todo.begin() + static_cast<std::ptrdiff_t>(map_count));

    if (wave_index >= config_.max_waves) {
      throw std::runtime_error("ClusterSimulator: wave budget exceeded");
    }
    const bool any_dead =
        std::find(server_dead.begin(), server_dead.end(), char{1}) !=
        server_dead.end();
    sched::Problem p;
    p.topology = &topology;
    p.cluster = cluster_;
    p.blocks = &blocks;
    if (first) {
      // Initial wave (§5.3.1): reduces + first map wave, all endpoints open.
      for (const mr::Task* t : all_reduces) {
        p.tasks.push_back(make_ref(*t, config_.container_demand));
      }
      for (const mr::Task* t : wave_maps) {
        p.tasks.push_back(make_ref(*t, config_.container_demand));
      }
      p.flows = flows;
      if (any_dead) p.base_usage.resize(cluster_->size());
    } else {
      // Subsequent wave (§5.3.2): placed endpoints fixed; displaced reduces
      // and re-queued maps ride the same path as fresh wave maps.
      p.base_usage = reduce_usage;
      p.fixed = placement;
      for (const mr::Task* t : displaced) {
        p.tasks.push_back(make_ref(*t, config_.container_demand));
      }
      for (const mr::Task* t : wave_maps) {
        p.tasks.push_back(make_ref(*t, config_.container_demand));
      }
      std::unordered_set<FlowId> seen_flows;
      const auto add_flows = [&](const std::vector<const net::Flow*>& fs) {
        for (const net::Flow* f : fs) {
          if (seen_flows.insert(f->id).second) p.flows.push_back(*f);
        }
      };
      for (const mr::Task* t : wave_maps) {
        const auto it = flows_by_src.find(t->id);
        if (it != flows_by_src.end()) add_flows(it->second);
      }
      for (const mr::Task* t : displaced) {
        const auto it = flows_by_dst.find(t->id);
        if (it != flows_by_dst.end()) add_flows(it->second);
      }
    }
    if (any_dead) {
      // A dead server shows zero headroom, so no scheduler places on it.
      for (const cluster::Server& s : cluster_->servers()) {
        if (server_dead[s.id.index()]) p.base_usage[s.id.index()] = s.capacity;
      }
    }

    Rng wave_rng = rng.fork(wave_index + 1);
    sched::Assignment a = scheduler.schedule(p, wave_rng);
    sched::validate_assignment(p, a);
    obs::count("sim.waves");
    obs::count("sim.tasks_placed", a.placement.size());
    if (obs::current().trace() != nullptr) {
      for (const auto& [id, host] : a.placement) {
        obs::sim_instant("task.place", "sim.place", wave_start,
                         {{"task", static_cast<std::int64_t>(id.value())},
                          {"server", static_cast<std::int64_t>(host.value())},
                          {"wave", static_cast<std::int64_t>(wave_index)}},
                         /*tid=*/1);
      }
    }
    for (const auto& [id, host] : a.placement) placement.insert_or_assign(id, host);
    for (auto& [id, pol] : a.policies) policies.insert_or_assign(id, std::move(pol));
    if (ctrl_rt) {
      // One journal record per policy install plus the wave dispatch itself.
      ctrl_rt->note_record(a.policies.size() + 1);
      ctrl_rt->advance(wave_start);
    }
    ++wave_index;

    // Reduce containers persist; map containers free between waves.
    if (first) {
      for (const mr::Task* t : all_reduces) {
        reduce_usage[placement.at(t->id).index()] += config_.container_demand;
      }
    } else if (!displaced.empty()) {
      for (const mr::Task* t : displaced) {
        reduce_usage[placement.at(t->id).index()] += config_.container_demand;
      }
      rec.reduces_relocated += displaced.size();
      displaced.clear();
    }
    first = false;

    // Raw durations: fetch (nearest *alive* replica) + jittered compute.
    std::vector<double> durations(wave_maps.size());
    for (std::size_t i = 0; i < wave_maps.size(); ++i) {
      const mr::Task* t = wave_maps[i];
      const ServerId host = placement.at(t->id);
      double fetch = 0.0;
      if (blocks.local(t->id, host)) {
        fetch = fetcher.fetch_seconds(t->input_gb, host, host);
      } else {
        fetch = std::numeric_limits<double>::infinity();
        bool replica_alive = false;
        for (ServerId r : blocks.replicas(t->id)) {
          if (server_dead[r.index()]) continue;
          replica_alive = true;
          fetch = std::min(fetch, fetcher.fetch_seconds(t->input_gb, r, host));
        }
        if (!replica_alive) {
          // Every replica is down: HDFS re-replication serves a copy at the
          // nearest original replica's cost.
          for (ServerId r : blocks.replicas(t->id)) {
            fetch = std::min(fetch, fetcher.fetch_seconds(t->input_gb, r, host));
          }
        }
        remote_map_gb[t->job] += t->input_gb;
      }
      double jitter = 1.0;
      if (config_.map_time_jitter_sigma > 0.0) {
        Rng jitter_rng = rng.fork(0x4A495454ull ^ t->id.value());
        jitter = jitter_rng.lognormal_median(1.0, config_.map_time_jitter_sigma);
      }
      durations[i] = fetch + t->compute_seconds * jitter;
    }

    // LATE-style speculation: once the wave median has elapsed, any map on
    // track to exceed threshold x median gets a backup copy assumed to run
    // at median speed; the task completes at the earlier attempt.
    if (config_.speculation_threshold > 1.0 && wave_maps.size() >= 2) {
      std::vector<double> sorted = durations;
      std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                       sorted.end());
      const double median = sorted[sorted.size() / 2];
      for (std::size_t i = 0; i < durations.size(); ++i) {
        // A recovery copy of a killed or lost-output map is lineage work,
        // not a straggler: it never draws a LATE backup (or the recovery of
        // one fault would inflate the speculation counters of another).
        if (killed.count(wave_maps[i]->id) > 0) continue;
        double& d = durations[i];
        if (d > config_.speculation_threshold * median) {
          const double backup_finish = median /*detect*/ + median /*re-run*/;
          ++result.speculative_copies;
          if (backup_finish < d) {
            d = backup_finish;
            ++result.speculative_won;
          } else {
            ++result.speculative_lost;  // original outran the backup
          }
        }
      }
    }

    struct Attempt {
      const mr::Task* task = nullptr;
      ServerId host;
      double finish = 0.0;
      bool alive = true;
    };
    std::vector<Attempt> attempts;
    attempts.reserve(wave_maps.size());
    double wave_end = wave_start;
    for (std::size_t i = 0; i < wave_maps.size(); ++i) {
      attempts.push_back(Attempt{wave_maps[i], placement.at(wave_maps[i]->id),
                                 wave_start + durations[i], true});
      wave_end = std::max(wave_end, attempts.back().finish);
    }

    // Server faults landing inside this wave kill the in-flight maps on the
    // dead host (re-queued for the next wave) and displace its reduce
    // containers.  Completed map output is durable.
    std::vector<const mr::Task*> requeued;
    while (next_sev < server_events.size() &&
           server_events[next_sev].time <= wave_end + kEps) {
      const FaultEvent ev = server_events[next_sev++];
      const ServerId s = cluster_->server_at(ev.node);
      const bool was_dead = server_dead[s.index()] != 0;
      apply_server_event(ev);
      if (ev.kind != FaultKind::Fail || was_dead) continue;
      bool any_killed = false;
      for (Attempt& at : attempts) {
        if (at.alive && at.host == s && at.finish > ev.time + kEps) {
          at.alive = false;
          any_killed = true;
          ++rec.maps_killed;
          killed.insert(at.task->id);
          placement.erase(at.task->id);
          requeued.push_back(at.task);
        }
      }
      // Durable-output drop (DESIGN.md §17): the dead server's completed map
      // outputs are destroyed with probability output_loss_prob — always,
      // when the crash took its whole failure domain.  Every shuffle is
      // still pending during the map phase, so each lost map is exactly a
      // lineage re-execution: it re-queues through the same subsequent-wave
      // path as a killed in-flight map.
      if (config_.domains.enabled) {
        const double p =
            ev.domain != 0 ? 1.0 : config_.domains.output_loss_prob;
        const auto output_lost = [&](TaskId id) {
          if (p >= 1.0) return true;
          if (p <= 0.0) return false;
          const std::uint64_t salt =
              kLossSalt ^ (static_cast<std::uint64_t>(id.value()) << 16) ^
              static_cast<std::uint64_t>(next_sev);
          return rng.fork(salt).uniform(0.0, 1.0) < p;
        };
        const auto record_loss = [&](TaskId id) {
          killed.insert(id);
          lost_outputs.insert(id);
          ++result.fault_domains.outputs_lost;
          obs::count("sim.domains.outputs_lost");
          obs::sim_instant(
              "output.lost", "sim.domain", ev.time,
              {{"task", static_cast<std::int64_t>(id.value())},
               {"server", static_cast<std::int64_t>(s.value())}},
              /*tid=*/8);
        };
        // Maps that finished earlier in this wave (not yet in map_finish).
        for (Attempt& at : attempts) {
          if (!at.alive || at.host != s || at.finish > ev.time + kEps) continue;
          if (!output_lost(at.task->id)) continue;
          at.alive = false;
          any_killed = true;
          placement.erase(at.task->id);
          requeued.push_back(at.task);
          record_loss(at.task->id);
        }
        // Maps completed in earlier waves (all_maps order keeps the scan
        // deterministic; placement filters to outputs hosted on s).
        for (const mr::Task* t : all_maps) {
          const auto pit = placement.find(t->id);
          if (pit == placement.end() || pit->second != s) continue;
          const auto fit = map_finish.find(t->id);
          if (fit == map_finish.end()) continue;
          if (!output_lost(t->id)) continue;
          map_finish.erase(fit);
          placement.erase(pit);
          requeued.push_back(t);
          record_loss(t->id);
          // Only the final successful attempt stays recorded, mirroring the
          // killed-in-flight path.
          for (auto rit = result.tasks.begin(); rit != result.tasks.end();
               ++rit) {
            if (rit->id == t->id && rit->kind == cluster::TaskKind::Map) {
              result.tasks.erase(rit);
              break;
            }
          }
        }
      }
      for (const mr::Task* r : all_reduces) {
        const auto it = placement.find(r->id);
        if (it != placement.end() && it->second == s) {
          displaced.push_back(r);
          placement.erase(it);
          reduce_usage[s.index()] -= config_.container_demand;
        }
      }
      if (any_killed) {
        // The wave ends when its last survivor does — or at the fault, if
        // the fault outlived them all.
        wave_end = ev.time;
        for (const Attempt& at : attempts) {
          if (at.alive) wave_end = std::max(wave_end, at.finish);
        }
      }
    }

    const bool tracing = obs::current().trace() != nullptr;
    for (const Attempt& at : attempts) {
      if (!at.alive) continue;  // only the final successful attempt is recorded
      map_finish[at.task->id] = at.finish;
      obs::observe("sim.map_duration_s", at.finish - wave_start);
      if (tracing) {
        obs::sim_span("map", "sim.task", wave_start, at.finish,
                      {{"task", static_cast<std::int64_t>(at.task->id.value())},
                       {"server", static_cast<std::int64_t>(at.host.value())}},
                      /*tid=*/1);
      }
      result.tasks.push_back(TaskTiming{at.task->id, at.task->job,
                                        cluster::TaskKind::Map, wave_start,
                                        at.finish});
      if (killed.erase(at.task->id) > 0) ++rec.maps_reexecuted;
      if (lost_outputs.erase(at.task->id) > 0) {
        ++result.fault_domains.maps_reexecuted_lineage;
        obs::count("sim.domains.maps_reexecuted");
      }
    }
    obs::sim_span("wave", "sim.wave", wave_start, wave_end,
                  {{"index", static_cast<std::int64_t>(wave_index - 1)},
                   {"maps", static_cast<std::int64_t>(wave_maps.size())}},
                  /*tid=*/0);
    todo.insert(todo.begin(), requeued.begin(), requeued.end());
    wave_start = wave_end;
  }

  // ---- 5. Shuffle phase: fluid max-min simulation --------------------------
  struct SimFlow {
    const net::Flow* flow = nullptr;
    double release = 0.0;
    double remaining = 0.0;
    net::Policy policy;
    topo::Path path;
    NodeId src;
    NodeId dst;
    std::size_t hops = 0;
    bool local = false;
    double finish = 0.0;
    std::size_t reroutes = 0;
    double stall_since = 0.0;
    double stall_seconds = 0.0;
  };
  std::vector<SimFlow> sim_flows;
  sim_flows.reserve(flows.size());
  for (const net::Flow& f : flows) {
    SimFlow sf;
    sf.flow = &f;
    sf.release = map_finish.count(f.src_task) ? map_finish.at(f.src_task) : 0.0;
    sf.remaining = f.size_gb;
    const ServerId src = placement.at(f.src_task);
    const ServerId dst = placement.at(f.dst_task);
    if (src == dst || f.size_gb <= 0.0) {
      // Node-local shuffle: no network, but the partition still moves
      // through the local disk when a disk model is configured.
      sf.local = true;
      sf.finish = sf.release + (config_.local_disk_bandwidth > 0.0
                                    ? f.size_gb / config_.local_disk_bandwidth
                                    : 0.0);
    } else {
      sf.src = cluster_->node_of(src);
      sf.dst = cluster_->node_of(dst);
      const auto it = policies.find(f.id);
      net::Policy policy = (it != policies.end() && !it->second.list.empty())
                               ? it->second
                               : net::shortest_policy(topology, sf.src, sf.dst, f.id);
      sf.path = policy.realize(topology, sf.src, sf.dst);
      sf.hops = policy.len();
      sf.policy = std::move(policy);
    }
    sim_flows.push_back(std::move(sf));
  }

  std::vector<std::size_t> pending;  // indices, sorted by (release, id)
  for (std::size_t i = 0; i < sim_flows.size(); ++i) {
    if (!sim_flows[i].local) pending.push_back(i);
  }
  std::stable_sort(pending.begin(), pending.end(), [&](std::size_t a, std::size_t b) {
    return sim_flows[a].release < sim_flows[b].release;
  });

  // Coflow lifecycle (only when enabled): one coflow per job; local flows
  // resolve before the fluid loop and are stamped immediately.
  coflow::CoflowRegistry registry;
  std::unique_ptr<coflow::CoflowScheduler> coflow_order;
  std::unordered_map<JobId, CoflowId> coflow_of_job;
  if (config_.coflow.enabled) {
    coflow_order = coflow::make_scheduler(config_.coflow.order);
    for (const mr::Job& job : jobs) {
      coflow_of_job.emplace(
          job.id, registry.open(job.id, static_cast<std::uint8_t>(job.priority),
                                /*deadline=*/0.0, job.critical_path));
    }
    for (const SimFlow& sf : sim_flows) {
      registry.add_flow(coflow_of_job.at(sf.flow->job), sf.flow->id,
                        sf.flow->size_gb);
    }
    for (const SimFlow& sf : sim_flows) {
      if (!sf.local) continue;
      registry.flow_released(sf.flow->id, sf.release);
      registry.flow_finished(sf.flow->id, sf.finish);
    }
  }

  const net::MaxMinFairAllocator allocator(topology, config_.bandwidth_scale);
  FaultState fstate(topology);
  std::optional<GrayRuntime> gray_rt;
  if (config_.gray.enabled()) gray_rt.emplace(topology, config_.gray);
  std::vector<std::size_t> active;
  std::vector<std::size_t> stalled;
  std::size_t next_nev = 0;  // switch/link events, replayed as loop events
  std::size_t next_cev = 0;  // controller crash/restart events
  std::size_t next_pending = 0;
  double now = 0.0;

  const auto try_reroute = [&](SimFlow& sf) {
    if (ctrl_down()) return false;  // no controller to install a detour
    auto detour = reroute_policy(topology, fstate, sf.src, sf.dst, sf.flow->id);
    if (!detour) return false;
    sf.policy = std::move(detour->policy);
    sf.path = std::move(detour->path);
    sf.hops = sf.policy.len();
    ++sf.reroutes;
    ++rec.flows_rerouted;
    obs::count("sim.flow_reroutes");
    if (ctrl_rt) ctrl_rt->note_record();
    return true;
  };
  const auto note_partition = [&](const SimFlow& sf, double at) {
    // A stall with both endpoints alive, the controller up, and still no
    // route means the fault partitioned the pair: only repair can reconnect
    // them.  Typed accounting so harnesses can tell partitions from parks.
    if (!config_.domains.enabled || ctrl_down()) return;
    if (!fstate.node_up(sf.src) || !fstate.node_up(sf.dst)) return;
    ++result.fault_domains.partition_parks;
    obs::count("sim.domains.partition_parks");
    obs::sim_instant(
        "flow.partition", "sim.domain", at,
        {{"flow", static_cast<std::int64_t>(sf.flow->id.value())}},
        /*tid=*/8);
  };
  const auto stall = [&](std::size_t i, double at) {
    sim_flows[i].stall_since = at;
    stalled.push_back(i);
    ++rec.flows_stalled;
    obs::count("sim.flow_stalls");
    if (ctrl_rt) {
      // A live controller journals the park; a down one cannot — that gap
      // is precisely what the restart's reconcile has to repair.
      if (ctrl_down()) {
        ctrl_rt->note_blackout_stall();
      } else {
        ctrl_rt->note_record();
      }
    }
    obs::sim_instant(
        "flow.stall", "sim.flow", at,
        {{"flow", static_cast<std::int64_t>(sim_flows[i].flow->id.value())}},
        /*tid=*/2);
  };
  const auto apply_net_event = [&](const FaultEvent& ev) {
    fstate.apply(ev);
    if (ev.kind == FaultKind::Degrade || ev.kind == FaultKind::Restore) {
      // Gray events change effective capacity only; routes stay up, so no
      // detour/stall handling — the next rate re-solve sees the new factors.
      if (gray_rt) gray_rt->on_event(ev);
      obs::count(ev.kind == FaultKind::Degrade ? "sim.faults.net_degrade"
                                               : "sim.faults.net_restore");
      obs::sim_instant(ev.kind == FaultKind::Degrade ? "fault.net.degrade"
                                                     : "fault.net.restore",
                       "sim.fault", ev.time, {{"factor", ev.factor}},
                       /*tid=*/3);
      return;
    }
    obs::count(ev.kind == FaultKind::Fail ? "sim.faults.net_fail"
                                          : "sim.faults.net_recover");
    obs::sim_instant(ev.kind == FaultKind::Fail ? "fault.net.fail"
                                                : "fault.net.recover",
                     "sim.fault", ev.time, {}, /*tid=*/3);
    if (ev.domain != 0) {
      obs::sim_instant(ev.kind == FaultKind::Fail ? "domain.fail"
                                                  : "domain.recover",
                       "sim.domain", ev.time,
                       {{"domain", static_cast<std::int64_t>(ev.domain)},
                        {"node", static_cast<std::int64_t>(ev.node.value())}},
                       /*tid=*/8);
    }
    if (ev.kind == FaultKind::Fail) {
      // Crossing transfers detour onto an alive route or stall until repair.
      std::vector<std::size_t> keep;
      keep.reserve(active.size());
      for (std::size_t i : active) {
        SimFlow& sf = sim_flows[i];
        if (fstate.path_up(sf.path) || try_reroute(sf)) {
          keep.push_back(i);
        } else {
          note_partition(sf, ev.time);
          stall(i, ev.time);
        }
      }
      active = std::move(keep);
    } else {
      // Stalled transfers resume on their old route or a fresh detour —
      // unless the controller is down: fail-static means resumes wait for
      // the restart's reconcile (the hardware repair itself still counts).
      if (ctrl_down()) return;
      std::vector<std::size_t> waiting;
      waiting.reserve(stalled.size());
      for (std::size_t i : stalled) {
        SimFlow& sf = sim_flows[i];
        if (fstate.path_up(sf.path) || try_reroute(sf)) {
          sf.stall_seconds += ev.time - sf.stall_since;
          rec.stall_seconds += ev.time - sf.stall_since;
          obs::sim_instant(
              "flow.resume", "sim.flow", ev.time,
              {{"flow", static_cast<std::int64_t>(sf.flow->id.value())}},
              /*tid=*/2);
          active.push_back(i);
        } else {
          waiting.push_back(i);
        }
      }
      stalled = std::move(waiting);
    }
  };
  const auto apply_ctrl_event = [&](const FaultEvent& ev) {
    if (ev.kind == FaultKind::ControllerCrash) {
      obs::count("sim.faults.controller_crash");
      obs::sim_instant("fault.ctrl.crash", "sim.fault", ev.time, {}, /*tid=*/3);
      ctrl_rt->on_crash(ev.time, active.size());
      return;
    }
    obs::count("sim.faults.controller_restart");
    obs::sim_instant("fault.ctrl.restart", "sim.fault", ev.time, {}, /*tid=*/3);
    ctrl_rt->on_restart(ev.time);
    // Reconcile: every flow still stalled when the controller returns is a
    // divergence between its journal-rebuilt state and the live network.
    // Resuming it (old route back up, or a fresh detour) is a repair; so is
    // acknowledging that the path is genuinely dead with no detour — the
    // controller then knowingly keeps the flow stalled until the hardware
    // heals, mirroring core reconcile where evacuate-to-parked counts as a
    // repaired missed-failure.  Unreconciled would mean a divergence the
    // restart could neither resume nor explain.
    const std::size_t violations = stalled.size();
    std::size_t repaired = 0;
    std::vector<std::size_t> waiting;
    waiting.reserve(stalled.size());
    for (std::size_t i : stalled) {
      SimFlow& sf = sim_flows[i];
      if (fstate.path_up(sf.path) || try_reroute(sf)) {
        sf.stall_seconds += ev.time - sf.stall_since;
        rec.stall_seconds += ev.time - sf.stall_since;
        ++repaired;
        obs::sim_instant(
            "flow.resume", "sim.flow", ev.time,
            {{"flow", static_cast<std::int64_t>(sf.flow->id.value())}},
            /*tid=*/2);
        active.push_back(i);
      } else {
        waiting.push_back(i);
        ++repaired;
      }
    }
    stalled = std::move(waiting);
    if (violations > 0) ctrl_rt->note_reconcile(violations, repaired);
  };

  while (next_pending < pending.size() || !active.empty() || !stalled.empty()) {
    if (active.empty()) {
      double next_time = std::numeric_limits<double>::infinity();
      if (next_pending < pending.size()) {
        next_time = sim_flows[pending[next_pending]].release;
      }
      if (next_nev < net_events.size()) {
        next_time = std::min(next_time, net_events[next_nev].time);
      }
      if (next_cev < ctrl_events.size()) {
        next_time = std::min(next_time, ctrl_events[next_cev].time);
      }
      if (!std::isfinite(next_time)) {
        throw std::runtime_error(
            "ClusterSimulator: shuffle flows stalled with no recovery event");
      }
      now = std::max(now, next_time);
    }
    while (next_nev < net_events.size() &&
           net_events[next_nev].time <= now + kEps) {
      // Controller events interleave with data-plane events in time order.
      while (next_cev < ctrl_events.size() &&
             ctrl_events[next_cev].time <= net_events[next_nev].time + kEps) {
        apply_ctrl_event(ctrl_events[next_cev++]);
      }
      apply_net_event(net_events[next_nev++]);
    }
    while (next_cev < ctrl_events.size() &&
           ctrl_events[next_cev].time <= now + kEps) {
      apply_ctrl_event(ctrl_events[next_cev++]);
    }
    while (next_pending < pending.size() &&
           sim_flows[pending[next_pending]].release <= now + kEps) {
      const std::size_t i = pending[next_pending++];
      SimFlow& sf = sim_flows[i];
      if (config_.coflow.enabled) registry.flow_released(sf.flow->id, sf.release);
      if (!fstate.any_down() || fstate.path_up(sf.path) || try_reroute(sf)) {
        active.push_back(i);
      } else {
        note_partition(sf, now);
        stall(i, now);
      }
    }
    if (active.empty()) continue;  // stalled-only: jump to the next event

    const auto build_demands = [&] {
      std::vector<net::FlowDemand> out;
      out.reserve(active.size());
      for (std::size_t i : active) {
        out.push_back(net::FlowDemand{sim_flows[i].flow->id, sim_flows[i].path, 0.0});
      }
      return out;
    };
    // Solve the sharing discipline's rates under `dmap` capacities; passing
    // nullptr yields the healthy-hardware reference the monitor compares
    // against (bit-identical to the pre-gray solver when nothing degrades).
    const auto solve = [&](const std::vector<net::FlowDemand>& demands,
                           const net::CapacityMap* dmap) {
      std::vector<double> rates;
      if (config_.coflow.enabled) {
        std::vector<double> remaining;
        remaining.reserve(active.size());
        for (std::size_t i : active) remaining.push_back(sim_flows[i].remaining);
        // Group the active demands by coflow, permute per the configured
        // discipline (Γ evaluated against the full residual ledger), then let
        // MADD serve the coflows in that order.
        std::vector<CoflowId> ids;
        std::unordered_map<CoflowId, std::vector<std::size_t>> members;
        for (std::size_t j = 0; j < active.size(); ++j) {
          const CoflowId cid = registry.coflow_of(sim_flows[active[j]].flow->id);
          auto [it, fresh] = members.emplace(cid, std::vector<std::size_t>{});
          if (fresh) ids.push_back(cid);
          it->second.push_back(j);
        }
        std::sort(ids.begin(), ids.end());
        net::ResidualLedger ledger(topology, config_.bandwidth_scale, dmap);
        for (const net::FlowDemand& d : demands) ledger.add_path(d.path);
        const coflow::GammaFn gamma = [&](CoflowId cid) {
          return coflow::effective_bottleneck(ledger, demands, remaining,
                                              members.at(cid));
        };
        std::vector<std::vector<std::size_t>> groups;
        groups.reserve(ids.size());
        for (CoflowId cid : coflow_order->order(registry, std::move(ids), gamma)) {
          groups.push_back(members.at(cid));
        }
        rates = coflow::madd_allocate(topology, demands, remaining, groups,
                                      config_.bandwidth_scale, dmap);
      } else if (config_.sharing == net::SharingPolicy::Srpt) {
        std::vector<double> remaining;
        remaining.reserve(active.size());
        for (std::size_t i : active) remaining.push_back(sim_flows[i].remaining);
        rates = net::srpt_allocate(topology, demands, remaining,
                                   config_.bandwidth_scale, dmap);
      } else {
        rates = allocator.allocate(demands, dmap);
      }
      return rates;
    };

    std::vector<net::FlowDemand> demands = build_demands();
    const net::CapacityMap* degrade =
        fstate.any_degraded() ? &fstate.degrade() : nullptr;
    std::vector<double> rates = solve(demands, degrade);

    if (gray_rt && !ctrl_down()) {
      // Health sampling: observed vs healthy-reference rates per flow.  On a
      // clean run the reference IS the observed vector, so every ratio is
      // exactly 1.0 and no false suspicion can accumulate.
      const std::vector<double> nominal =
          degrade != nullptr ? solve(demands, nullptr) : rates;
      const auto fresh = gray_rt->sample(now, demands, rates, nominal, fstate);
      if (!fresh.empty()) {
        // Soft evacuation of freshly quarantined elements: detour crossing
        // transfers where an alternative exists; flows with no clean detour
        // keep their (slow) route — quarantine never stalls.
        FaultState avoid = fstate;
        gray_rt->apply_quarantine_to(avoid);
        bool moved = false;
        for (std::size_t i : active) {
          SimFlow& sf = sim_flows[i];
          if (avoid.path_up(sf.path)) continue;
          auto detour =
              reroute_policy(topology, avoid, sf.src, sf.dst, sf.flow->id);
          if (!detour) continue;
          sf.policy = std::move(detour->policy);
          sf.path = std::move(detour->path);
          sf.hops = sf.policy.len();
          ++sf.reroutes;
          ++rec.flows_rerouted;
          obs::count("sim.gray.reroutes");
          moved = true;
        }
        if (moved) {
          demands = build_demands();
          rates = solve(demands, degrade);
        }
      }
    }

    double dt = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < active.size(); ++j) {
      if (rates[j] > kEps) {
        dt = std::min(dt, sim_flows[active[j]].remaining / rates[j]);
      }
    }
    if (next_pending < pending.size()) {
      dt = std::min(dt, sim_flows[pending[next_pending]].release - now);
    }
    if (next_nev < net_events.size()) {
      dt = std::min(dt, net_events[next_nev].time - now);
    }
    if (next_cev < ctrl_events.size()) {
      dt = std::min(dt, ctrl_events[next_cev].time - now);
    }
    // Probes are a controller activity; a blackout freezes them (suspects
    // stay quarantined until the restart reconciles).
    if (gray_rt && gray_rt->any_quarantined() && !ctrl_down()) {
      dt = std::min(dt, gray_rt->next_probe_time() - now);
    }
    if (!std::isfinite(dt)) {
      throw std::runtime_error("ClusterSimulator: shuffle stalled (zero rates)");
    }
    dt = std::max(dt, 0.0);

    now += dt;
    if (ctrl_rt) ctrl_rt->advance(now);
    if (gray_rt && gray_rt->any_quarantined() && !ctrl_down()) {
      gray_rt->run_probes(now, fstate);
    }
    std::vector<std::size_t> still_active;
    still_active.reserve(active.size());
    for (std::size_t j = 0; j < active.size(); ++j) {
      SimFlow& sf = sim_flows[active[j]];
      sf.remaining -= rates[j] * dt;
      if (sf.remaining <= kEps) {
        sf.finish = now;
        if (config_.coflow.enabled) {
          registry.flow_finished(sf.flow->id, now);
          const CoflowId cid = registry.coflow_of(sf.flow->id);
          const coflow::Coflow& c = registry.get(cid);
          if (c.state == coflow::CoflowState::Done) {
            obs::observe("sim.coflow_cct_s", c.completion_time());
            obs::sim_span("coflow", "sim.coflow", c.released, c.finished,
                          {{"coflow", static_cast<std::int64_t>(cid.value())},
                           {"job", static_cast<std::int64_t>(c.job.value())},
                           {"flows", static_cast<std::int64_t>(c.width())}},
                          /*tid=*/4);
          }
        }
      } else {
        still_active.push_back(active[j]);
      }
    }
    active = std::move(still_active);
  }

  // Controller events past the last transfer still count (a crash after the
  // shuffle costs nothing, but the blackout window is part of the record).
  while (next_cev < ctrl_events.size()) {
    apply_ctrl_event(ctrl_events[next_cev++]);
  }

  // ---- 6. Reduce phase and aggregation ------------------------------------
  std::unordered_map<JobId, double> jct;
  std::unordered_map<JobId, double> job_cost;
  for (const mr::Job& job : jobs) {
    double job_finish = 0.0;
    for (const mr::Task& t : job.maps) {
      job_finish = std::max(job_finish, map_finish.at(t.id));
    }
    for (const mr::Task& t : job.reduces) {
      double first_input = std::numeric_limits<double>::infinity();
      double last_input = 0.0;
      const auto it = flows_by_dst.find(t.id);
      if (it != flows_by_dst.end()) {
        for (const net::Flow* f : it->second) {
          // Index of the flow within sim_flows mirrors its index in `flows`.
          const SimFlow& sf = sim_flows[static_cast<std::size_t>(f - flows.data())];
          first_input = std::min(first_input, sf.release);
          last_input = std::max(last_input, sf.finish);
        }
      }
      if (!std::isfinite(first_input)) first_input = 0.0;
      const double finish = last_input + t.compute_seconds;
      if (obs::current().trace() != nullptr) {
        obs::sim_span("reduce", "sim.task", first_input, finish,
                      {{"task", static_cast<std::int64_t>(t.id.value())}},
                      /*tid=*/1);
      }
      result.tasks.push_back(
          TaskTiming{t.id, t.job, cluster::TaskKind::Reduce, first_input, finish});
      job_finish = std::max(job_finish, finish);
    }
    jct[job.id] = job_finish;
    obs::observe("sim.job_completion_s", job_finish);
  }

  const bool faulty = !config_.faults.empty();
  const bool tracing = obs::current().trace() != nullptr;
  for (const SimFlow& sf : sim_flows) {
    obs::observe("sim.flow_duration_s", sf.finish - sf.release);
    if (tracing && !sf.local) {
      obs::sim_span("flow", "sim.flow", sf.release, sf.finish,
                    {{"flow", static_cast<std::int64_t>(sf.flow->id.value())},
                     {"gb", sf.flow->size_gb},
                     {"hops", static_cast<std::int64_t>(sf.hops)},
                     {"reroutes", static_cast<std::int64_t>(sf.reroutes)},
                     {"stall_s", sf.stall_seconds}},
                    /*tid=*/2);
    }
    FlowTiming ft;
    ft.id = sf.flow->id;
    ft.job = sf.flow->job;
    ft.wave = sf.flow->stage;
    ft.release = sf.release;
    ft.finish = sf.finish;
    ft.size_gb = sf.flow->size_gb;
    ft.route_hops = sf.hops;  // route at completion (detours included)
    ft.local = sf.local;
    ft.reroutes = sf.reroutes;
    ft.stall_seconds = sf.stall_seconds;
    if (faulty && !sf.local) ft.final_route = sf.policy.list;
    result.flows.push_back(ft);

    const double cost = sf.flow->size_gb * static_cast<double>(sf.hops);
    job_cost[sf.flow->job] += cost;
    result.total_shuffle_cost += cost;
    result.total_shuffle_gb += sf.flow->size_gb;
    result.shuffle_finish_time = std::max(result.shuffle_finish_time, sf.finish);
  }
  result.coflows = group_coflows(result.flows);

  for (const mr::Job& job : jobs) {
    JobResult jr;
    jr.id = job.id;
    jr.benchmark = job.benchmark;
    jr.cls = job.cls;
    jr.completion_time = jct.at(job.id);
    jr.shuffle_gb = job.shuffle_gb;
    jr.remote_map_gb = remote_map_gb.count(job.id) ? remote_map_gb.at(job.id) : 0.0;
    jr.shuffle_cost = job_cost.count(job.id) ? job_cost.at(job.id) : 0.0;
    result.total_remote_map_gb += jr.remote_map_gb;
    result.jobs.push_back(jr);
    result.makespan = std::max(result.makespan, jr.completion_time);
  }

  // ---- 7. Fault accounting --------------------------------------------------
  if (faulty) {
    account_plan(config_.faults, result.makespan, rec);
    account_gray_plan(config_.faults, result.makespan, result.gray);
    account_domain_plan(config_.faults, result.makespan, result.fault_domains);
  }
  if (gray_rt) gray_rt->finish(result.makespan, result.gray);
  if (ctrl_rt) ctrl_rt->finish(result.makespan, result.control);
  if (config_.domains.enabled) {
    result.fault_domains.domains = DomainSet::derive(topology).size();
  }
  return result;
}

}  // namespace hit::sim
