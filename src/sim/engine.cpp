#include "sim/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <unordered_map>

#include "network/routing.h"

namespace hit::sim {
namespace {

constexpr double kEps = 1e-9;

/// How many containers of `demand` fit into `capacity`.
std::size_t slot_count(cluster::Resource capacity, cluster::Resource demand) {
  double slots = std::numeric_limits<double>::infinity();
  if (demand.vcores > 0.0) slots = std::min(slots, std::floor(capacity.vcores / demand.vcores));
  if (demand.mem_gb > 0.0) slots = std::min(slots, std::floor(capacity.mem_gb / demand.mem_gb));
  if (!std::isfinite(slots)) {
    throw std::invalid_argument("slot_count: container demand must be non-zero");
  }
  return static_cast<std::size_t>(std::max(slots, 0.0));
}

sched::TaskRef make_ref(const mr::Task& task, cluster::Resource demand) {
  sched::TaskRef r;
  r.id = task.id;
  r.job = task.job;
  r.kind = task.kind;
  r.demand = demand;
  r.input_gb = task.input_gb;
  return r;
}

}  // namespace

ClusterSimulator::ClusterSimulator(const cluster::Cluster& cluster, SimConfig config)
    : cluster_(&cluster), config_(config) {
  if (config_.bandwidth_scale <= 0.0) {
    throw std::invalid_argument("ClusterSimulator: bandwidth_scale must be positive");
  }
}

SimResult ClusterSimulator::run(sched::Scheduler& scheduler,
                                const std::vector<mr::Job>& jobs,
                                mr::IdAllocator& ids, Rng& rng) const {
  const topo::Topology& topology = cluster_->topology();

  // ---- 1. HDFS splits and shuffle flows -----------------------------------
  Rng hdfs_rng = rng.fork(0x48444653);  // "HDFS"
  const mr::BlockPlacement blocks(*cluster_, jobs, hdfs_rng, config_.hdfs_replication);
  const net::FlowSet flows = mr::build_shuffle_flows(jobs, ids, config_.shuffle);

  std::unordered_map<TaskId, const mr::Task*> task_of;
  std::unordered_map<TaskId, const mr::Job*> job_of_task;
  for (const mr::Job& job : jobs) {
    for (const mr::Task& t : job.maps) {
      task_of.emplace(t.id, &t);
      job_of_task.emplace(t.id, &job);
    }
    for (const mr::Task& t : job.reduces) {
      task_of.emplace(t.id, &t);
      job_of_task.emplace(t.id, &job);
    }
  }
  std::unordered_map<TaskId, std::vector<const net::Flow*>> flows_by_src;
  std::unordered_map<TaskId, std::vector<const net::Flow*>> flows_by_dst;
  for (const net::Flow& f : flows) {
    flows_by_src[f.src_task].push_back(&f);
    flows_by_dst[f.dst_task].push_back(&f);
  }

  // ---- 2. Wave decomposition ----------------------------------------------
  std::size_t total_slots = 0;
  for (const cluster::Server& s : cluster_->servers()) {
    total_slots += slot_count(s.capacity, config_.container_demand);
  }
  std::vector<const mr::Task*> all_reduces;
  std::vector<const mr::Task*> all_maps;
  for (const mr::Job& job : jobs) {
    for (const mr::Task& t : job.reduces) all_reduces.push_back(&t);
    for (const mr::Task& t : job.maps) all_maps.push_back(&t);
  }
  if (all_reduces.size() >= total_slots && !all_maps.empty()) {
    throw std::runtime_error("ClusterSimulator: reduces leave no map slots");
  }
  if (all_reduces.size() + all_maps.size() == 0) return SimResult{};

  const std::size_t map_slots = total_slots - all_reduces.size();
  std::vector<std::vector<const mr::Task*>> waves;
  for (std::size_t i = 0; i < all_maps.size(); i += map_slots) {
    waves.emplace_back(all_maps.begin() + static_cast<std::ptrdiff_t>(i),
                       all_maps.begin() + static_cast<std::ptrdiff_t>(
                                              std::min(i + map_slots, all_maps.size())));
  }
  if (waves.size() > config_.max_waves) {
    throw std::runtime_error("ClusterSimulator: wave budget exceeded");
  }

  // ---- 3. Scheduling, wave by wave ----------------------------------------
  std::unordered_map<TaskId, ServerId> placement;
  std::unordered_map<FlowId, net::Policy> policies;

  {
    // Initial wave (§5.3.1): reduces + first map wave, all endpoints open.
    sched::Problem p;
    p.topology = &topology;
    p.cluster = cluster_;
    p.blocks = &blocks;
    for (const mr::Task* t : all_reduces) p.tasks.push_back(make_ref(*t, config_.container_demand));
    if (!waves.empty()) {
      for (const mr::Task* t : waves[0]) p.tasks.push_back(make_ref(*t, config_.container_demand));
    }
    p.flows = flows;
    Rng wave_rng = rng.fork(1);
    sched::Assignment a = scheduler.schedule(p, wave_rng);
    sched::validate_assignment(p, a);
    placement.insert(a.placement.begin(), a.placement.end());
    for (auto& [id, pol] : a.policies) policies.insert_or_assign(id, std::move(pol));
  }

  // Reduce containers persist; map containers free between waves.
  std::vector<cluster::Resource> reduce_usage(cluster_->size());
  for (const mr::Task* t : all_reduces) {
    reduce_usage[placement.at(t->id).index()] += config_.container_demand;
  }

  for (std::size_t k = 1; k < waves.size(); ++k) {
    sched::Problem p;
    p.topology = &topology;
    p.cluster = cluster_;
    p.blocks = &blocks;
    p.base_usage = reduce_usage;
    p.fixed = placement;
    for (const mr::Task* t : waves[k]) p.tasks.push_back(make_ref(*t, config_.container_demand));
    for (const mr::Task* t : waves[k]) {
      const auto it = flows_by_src.find(t->id);
      if (it == flows_by_src.end()) continue;
      for (const net::Flow* f : it->second) p.flows.push_back(*f);
    }
    Rng wave_rng = rng.fork(k + 1);
    sched::Assignment a = scheduler.schedule(p, wave_rng);
    sched::validate_assignment(p, a);
    placement.insert(a.placement.begin(), a.placement.end());
    for (auto& [id, pol] : a.policies) policies.insert_or_assign(id, std::move(pol));
  }

  // ---- 4. Map phase timeline ----------------------------------------------
  SimResult result;
  const DelayFetcher fetcher(*cluster_, config_.map_fetch_bandwidth_scale,
                             config_.local_disk_bandwidth);
  std::unordered_map<TaskId, double> map_finish;
  std::unordered_map<JobId, double> remote_map_gb;
  double wave_start = 0.0;
  for (const auto& wave : waves) {
    // First pass: raw durations (fetch + jittered compute).
    std::vector<double> durations(wave.size());
    for (std::size_t i = 0; i < wave.size(); ++i) {
      const mr::Task* t = wave[i];
      const ServerId host = placement.at(t->id);
      double fetch = 0.0;
      if (blocks.local(t->id, host)) {
        fetch = fetcher.fetch_seconds(t->input_gb, host, host);
      } else {
        fetch = std::numeric_limits<double>::infinity();
        for (ServerId r : blocks.replicas(t->id)) {
          fetch = std::min(fetch, fetcher.fetch_seconds(t->input_gb, r, host));
        }
        remote_map_gb[t->job] += t->input_gb;
      }
      double jitter = 1.0;
      if (config_.map_time_jitter_sigma > 0.0) {
        Rng jitter_rng = rng.fork(0x4A495454ull ^ t->id.value());
        jitter = jitter_rng.lognormal_median(1.0, config_.map_time_jitter_sigma);
      }
      durations[i] = fetch + t->compute_seconds * jitter;
    }

    // LATE-style speculation: once the wave median has elapsed, any map on
    // track to exceed threshold x median gets a backup copy assumed to run
    // at median speed; the task completes at the earlier attempt.
    if (config_.speculation_threshold > 1.0 && wave.size() >= 2) {
      std::vector<double> sorted = durations;
      std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                       sorted.end());
      const double median = sorted[sorted.size() / 2];
      for (double& d : durations) {
        if (d > config_.speculation_threshold * median) {
          const double backup_finish = median /*detect*/ + median /*re-run*/;
          if (backup_finish < d) {
            d = backup_finish;
            ++result.speculative_copies;
          }
        }
      }
    }

    double wave_end = wave_start;
    for (std::size_t i = 0; i < wave.size(); ++i) {
      const mr::Task* t = wave[i];
      const double finish = wave_start + durations[i];
      map_finish[t->id] = finish;
      wave_end = std::max(wave_end, finish);
      result.tasks.push_back(TaskTiming{t->id, t->job, cluster::TaskKind::Map,
                                        wave_start, finish});
    }
    wave_start = wave_end;
  }

  // ---- 5. Shuffle phase: fluid max-min simulation --------------------------
  struct SimFlow {
    const net::Flow* flow = nullptr;
    double release = 0.0;
    double remaining = 0.0;
    topo::Path path;
    std::size_t hops = 0;
    bool local = false;
    double finish = 0.0;
  };
  std::vector<SimFlow> sim_flows;
  sim_flows.reserve(flows.size());
  for (const net::Flow& f : flows) {
    SimFlow sf;
    sf.flow = &f;
    sf.release = map_finish.count(f.src_task) ? map_finish.at(f.src_task) : 0.0;
    sf.remaining = f.size_gb;
    const ServerId src = placement.at(f.src_task);
    const ServerId dst = placement.at(f.dst_task);
    if (src == dst || f.size_gb <= 0.0) {
      // Node-local shuffle: no network, but the partition still moves
      // through the local disk when a disk model is configured.
      sf.local = true;
      sf.finish = sf.release + (config_.local_disk_bandwidth > 0.0
                                    ? f.size_gb / config_.local_disk_bandwidth
                                    : 0.0);
    } else {
      const NodeId src_node = cluster_->node_of(src);
      const NodeId dst_node = cluster_->node_of(dst);
      const auto it = policies.find(f.id);
      net::Policy policy = (it != policies.end() && !it->second.list.empty())
                               ? it->second
                               : net::shortest_policy(topology, src_node, dst_node, f.id);
      sf.path = policy.realize(topology, src_node, dst_node);
      sf.hops = policy.len();
    }
    sim_flows.push_back(std::move(sf));
  }

  std::vector<std::size_t> pending;  // indices, sorted by (release, id)
  for (std::size_t i = 0; i < sim_flows.size(); ++i) {
    if (!sim_flows[i].local) pending.push_back(i);
  }
  std::stable_sort(pending.begin(), pending.end(), [&](std::size_t a, std::size_t b) {
    return sim_flows[a].release < sim_flows[b].release;
  });

  const net::MaxMinFairAllocator allocator(topology, config_.bandwidth_scale);
  std::vector<std::size_t> active;
  std::size_t next_pending = 0;
  double now = 0.0;
  while (next_pending < pending.size() || !active.empty()) {
    if (active.empty()) {
      now = std::max(now, sim_flows[pending[next_pending]].release);
    }
    while (next_pending < pending.size() &&
           sim_flows[pending[next_pending]].release <= now + kEps) {
      active.push_back(pending[next_pending++]);
    }

    std::vector<net::FlowDemand> demands;
    demands.reserve(active.size());
    for (std::size_t i : active) {
      demands.push_back(net::FlowDemand{sim_flows[i].flow->id, sim_flows[i].path, 0.0});
    }
    std::vector<double> rates;
    if (config_.sharing == net::SharingPolicy::Srpt) {
      std::vector<double> remaining;
      remaining.reserve(active.size());
      for (std::size_t i : active) remaining.push_back(sim_flows[i].remaining);
      rates = net::srpt_allocate(topology, demands, remaining,
                                 config_.bandwidth_scale);
    } else {
      rates = allocator.allocate(demands);
    }

    double dt = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < active.size(); ++j) {
      if (rates[j] > kEps) {
        dt = std::min(dt, sim_flows[active[j]].remaining / rates[j]);
      }
    }
    if (next_pending < pending.size()) {
      dt = std::min(dt, sim_flows[pending[next_pending]].release - now);
    }
    if (!std::isfinite(dt)) {
      throw std::runtime_error("ClusterSimulator: shuffle stalled (zero rates)");
    }
    dt = std::max(dt, 0.0);

    now += dt;
    std::vector<std::size_t> still_active;
    still_active.reserve(active.size());
    for (std::size_t j = 0; j < active.size(); ++j) {
      SimFlow& sf = sim_flows[active[j]];
      sf.remaining -= rates[j] * dt;
      if (sf.remaining <= kEps) {
        sf.finish = now;
      } else {
        still_active.push_back(active[j]);
      }
    }
    active = std::move(still_active);
  }

  // ---- 6. Reduce phase and aggregation ------------------------------------
  std::unordered_map<JobId, double> jct;
  std::unordered_map<JobId, double> job_cost;
  for (const mr::Job& job : jobs) {
    double job_finish = 0.0;
    for (const mr::Task& t : job.maps) {
      job_finish = std::max(job_finish, map_finish.at(t.id));
    }
    for (const mr::Task& t : job.reduces) {
      double first_input = std::numeric_limits<double>::infinity();
      double last_input = 0.0;
      const auto it = flows_by_dst.find(t.id);
      if (it != flows_by_dst.end()) {
        for (const net::Flow* f : it->second) {
          // Index of the flow within sim_flows mirrors its index in `flows`.
          const SimFlow& sf = sim_flows[static_cast<std::size_t>(f - flows.data())];
          first_input = std::min(first_input, sf.release);
          last_input = std::max(last_input, sf.finish);
        }
      }
      if (!std::isfinite(first_input)) first_input = 0.0;
      const double finish = last_input + t.compute_seconds;
      result.tasks.push_back(
          TaskTiming{t.id, t.job, cluster::TaskKind::Reduce, first_input, finish});
      job_finish = std::max(job_finish, finish);
    }
    jct[job.id] = job_finish;
  }

  for (const SimFlow& sf : sim_flows) {
    FlowTiming ft;
    ft.id = sf.flow->id;
    ft.job = sf.flow->job;
    ft.release = sf.release;
    ft.finish = sf.finish;
    ft.size_gb = sf.flow->size_gb;
    ft.route_hops = sf.hops;
    ft.local = sf.local;
    result.flows.push_back(ft);

    const double cost = sf.flow->size_gb * static_cast<double>(sf.hops);
    job_cost[sf.flow->job] += cost;
    result.total_shuffle_cost += cost;
    result.total_shuffle_gb += sf.flow->size_gb;
    result.shuffle_finish_time = std::max(result.shuffle_finish_time, sf.finish);
  }

  for (const mr::Job& job : jobs) {
    JobResult jr;
    jr.id = job.id;
    jr.benchmark = job.benchmark;
    jr.cls = job.cls;
    jr.completion_time = jct.at(job.id);
    jr.shuffle_gb = job.shuffle_gb;
    jr.remote_map_gb = remote_map_gb.count(job.id) ? remote_map_gb.at(job.id) : 0.0;
    jr.shuffle_cost = job_cost.count(job.id) ? job_cost.at(job.id) : 0.0;
    result.total_remote_map_gb += jr.remote_map_gb;
    result.jobs.push_back(jr);
    result.makespan = std::max(result.makespan, jr.completion_time);
  }
  return result;
}

}  // namespace hit::sim
