// Packet-level network simulator — the fidelity tier of the paper's actual
// measurement stack (Mininet switches + D-ITG probes), used to cross-check
// the flow-level (fluid) model.
//
// Store-and-forward model: every directed link is a FIFO with serialization
// time packet_size / bandwidth and a bounded egress queue (drop-tail); every
// switch adds a fixed processing latency.  Sources pace packets at their
// access-link rate.  The simulator reports per-flow packet delays, drops,
// completion times and achieved throughput — the quantities Figure 7 plots.
//
// Scope: this is a *measurement* tool, not the scheduling substrate; the
// schedulers and the DES engine stay on the fluid model (the paper's own
// argument: the controller only needs flow-level state).  Tests validate
// the two models against each other (per-switch latency, bottleneck
// sharing, hop scaling).
#pragma once

#include <cstddef>
#include <vector>

#include "topology/topology.h"
#include "util/ids.h"

namespace hit::sim {

struct PacketSimConfig {
  double packet_size_gb = 0.001;       ///< ~1 MB packets
  double switch_latency_s = 29e-6;     ///< per traversed switch (D-ITG calib.)
  double link_latency_s = 1e-6;        ///< propagation per link
  /// Per egress link, in packets.  The deep default makes queues model
  /// lossless backpressure (TCP-like); configure small queues to study
  /// drop-tail loss explicitly.
  std::size_t queue_capacity = 4096;
  std::size_t max_packets_per_flow = 4096;  ///< safety cap on injected packets
};

struct PacketFlowSpec {
  FlowId id;
  topo::Path path;      ///< full node route, endpoints included
  double size_gb = 0.0;
  double start_s = 0.0;
};

struct PacketFlowStats {
  FlowId id;
  std::size_t sent = 0;
  std::size_t delivered = 0;
  std::size_t dropped = 0;
  double mean_delay_s = 0.0;   ///< injection -> delivery, delivered packets
  double p99_delay_s = 0.0;
  double completion_s = 0.0;   ///< last delivery (absolute time)
  double throughput_gbps = 0.0;  ///< delivered bytes / (completion - start)

  [[nodiscard]] double loss_rate() const {
    return sent ? static_cast<double>(dropped) / static_cast<double>(sent) : 0.0;
  }
};

class PacketSimulator {
 public:
  explicit PacketSimulator(const topo::Topology& topology,
                           PacketSimConfig config = {});

  /// Simulate all flows to completion.  Results align with `flows` order.
  [[nodiscard]] std::vector<PacketFlowStats> run(
      const std::vector<PacketFlowSpec>& flows) const;

  [[nodiscard]] const PacketSimConfig& config() const noexcept { return config_; }

 private:
  const topo::Topology* topology_;
  PacketSimConfig config_;
};

}  // namespace hit::sim
