// Gray-failure runtime: the glue between the simulators' fluid loops, the
// controller-side health monitor, and the quarantine/probe lifecycle.
//
// Both simulators drive the same loop: every time rates are re-solved, each
// active flow's observed rate is compared against the rate the same
// allocation would yield on healthy hardware (the nominal run), and the
// ratios feed core::HealthMonitor.  Elements the monitor flags are checked
// against the fault plan's ground truth (detection vs false positive, time
// to detect) and — when quarantine is enabled — placed under a routing-cost
// penalty and probed on a fixed schedule until `probe_successes` consecutive
// probes find them healthy again (the CircuitBreaker HalfOpen idea applied
// to network elements).
//
// Everything here is off by default and deterministic: sampling happens at
// the fluid loop's existing event times, probes fire at quarantine_time +
// k x probe_interval, and all bookkeeping iterates std::maps.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "core/health_monitor.h"
#include "network/bandwidth.h"
#include "sim/faults.h"
#include "sim/metrics.h"
#include "topology/topology.h"

namespace hit::sim {

struct GrayConfig {
  /// Sample flow progress into the health monitor and record detections.
  bool monitor = false;
  /// Quarantine flagged elements (cost penalty + probe/reinstate loop).
  /// Implies `monitor`.
  bool quarantine = false;
  core::HealthConfig health;
  double probe_interval = 30.0;   ///< seconds between probes of a suspect
  std::size_t probe_successes = 2; ///< consecutive passes before reinstating
  /// A probe passes when the element's true capacity factor is at least
  /// this (i.e. the degradation has lifted).
  double probe_ratio = 0.95;
  /// Dijkstra step-cost multiplier applied to quarantined switches.
  double penalty = 4.0;

  [[nodiscard]] bool enabled() const noexcept { return monitor || quarantine; }
};

/// Per-run gray-failure state machine shared by ClusterSimulator and
/// OnlineSimulator.  Construct once per run; call on_event() for every
/// Degrade/Restore the run replays, sample() at every rate re-solve, and
/// run_probes() whenever simulated time passes next_probe_time().
class GrayRuntime {
 public:
  using Key = core::HealthMonitor::Key;

  GrayRuntime(const topo::Topology& topology, const GrayConfig& config);

  /// Ground-truth bookkeeping (time-to-detect needs the degrade onset).
  void on_event(const FaultEvent& event);

  /// One sampling round over the active flows.  `observed` and `nominal`
  /// align with `demands`; `truth` is the replay fault state (its degrade
  /// map classifies fresh flags as detections or false positives).  Returns
  /// the elements newly quarantined by this round (always empty when
  /// quarantine is off).
  std::vector<Key> sample(double now, const std::vector<net::FlowDemand>& demands,
                          const std::vector<double>& observed,
                          const std::vector<double>& nominal,
                          const FaultState& truth);

  /// Earliest pending probe (+inf when nothing is quarantined).
  [[nodiscard]] double next_probe_time() const;

  /// Execute every probe due at `now` against the run's ground truth.
  /// Returns the elements reinstated (monitor history reset so stale scores
  /// cannot instantly re-flag them).
  std::vector<Key> run_probes(double now, const FaultState& truth);

  [[nodiscard]] bool any_quarantined() const noexcept {
    return !quarantined_.empty();
  }
  /// Switches to penalize in placement/routing: quarantined switches plus
  /// the switch endpoints of quarantined links.  Sorted, unique.
  [[nodiscard]] std::vector<NodeId> penalized_switches() const;
  /// Soft-avoid view for BFS rerouting: marks every quarantined element as
  /// down in `state` (callers copy the replay state first and keep their old
  /// route when the avoidance disconnects the pair).
  void apply_quarantine_to(FaultState& state) const;

  /// Fold monitor/quarantine accounting into `gray` (detections, false
  /// positives, mean time-to-detect, probe and quarantine totals; open
  /// quarantines are clipped to `end`).  Ground-truth fields come from
  /// account_gray_plan, not from here.
  void finish(double end, GrayStats& gray) const;

  [[nodiscard]] const core::HealthMonitor& monitor() const noexcept {
    return monitor_;
  }
  [[nodiscard]] const GrayConfig& config() const noexcept { return config_; }

 private:
  struct Quarantine {
    double since = 0.0;
    std::size_t successes = 0;
    double next_probe = 0.0;
  };

  const topo::Topology* topology_;
  GrayConfig config_;
  core::HealthMonitor monitor_;
  std::map<Key, double> truth_onset_;    ///< degraded key -> degrade time
  std::map<Key, Quarantine> quarantined_;
  std::size_t detections_ = 0;
  std::size_t false_positives_ = 0;
  double ttd_sum_ = 0.0;
  std::size_t quarantines_ = 0;
  std::size_t probes_ = 0;
  std::size_t reinstatements_ = 0;
  double quarantine_seconds_ = 0.0;
};

}  // namespace hit::sim
