#include "sim/delay_fetcher.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace hit::sim {

DelayFetcher::DelayFetcher(const cluster::Cluster& cluster, double bandwidth_scale,
                           double local_disk_bandwidth)
    : cluster_(&cluster), scale_(bandwidth_scale), disk_bw_(local_disk_bandwidth) {
  if (scale_ <= 0.0) throw std::invalid_argument("DelayFetcher: scale must be positive");
  if (disk_bw_ < 0.0) throw std::invalid_argument("DelayFetcher: negative disk bandwidth");
}

double DelayFetcher::path_bandwidth(ServerId src, ServerId dst) const {
  const topo::Topology& topology = cluster_->topology();
  const topo::Path path =
      topology.shortest_path(cluster_->node_of(src), cluster_->node_of(dst));
  if (path.size() < 2) {
    throw std::invalid_argument("DelayFetcher: no route between servers");
  }
  double bottleneck = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    bottleneck = std::min(bottleneck, *topology.graph().bandwidth(path[i], path[i + 1]));
  }
  return bottleneck * scale_;
}

double DelayFetcher::fetch_seconds(double size_gb, ServerId src, ServerId dst) const {
  if (size_gb < 0.0) throw std::invalid_argument("DelayFetcher: negative size");
  if (size_gb == 0.0) return 0.0;
  if (src == dst) {
    return disk_bw_ > 0.0 ? size_gb / disk_bw_ : 0.0;
  }
  const topo::Topology& topology = cluster_->topology();
  const topo::Path path =
      topology.shortest_path(cluster_->node_of(src), cluster_->node_of(dst));
  const double hops = static_cast<double>(topology.switch_hops(path));
  // Delay = C(s_i, s_j) / B_ij with C = size x switch hops.
  return size_gb * std::max(hops, 1.0) / path_bandwidth(src, dst);
}

}  // namespace hit::sim
