// Runtime fault injection: switch, server, and link failures (and their
// recoveries) as timestamped events.
//
// The paper's centralized controller exists because "the bandwidth available
// for MapReduce applications becomes changeable over time" (§1); planned
// maintenance (NetworkController::drain) is only half of that story.  A
// FaultPlan scripts the unplanned half: deterministic fail/recover events
// that both simulators (sim::ClusterSimulator, sim::OnlineSimulator) replay
// mid-run — a server failure kills its in-flight maps, a switch or link
// failure forces the shuffle flows crossing it onto alive detours or stalls
// them until repair.
//
// Determinism: a plan is either scripted explicitly or generated from
// (topology, MtbfConfig, seed).  Generation is a pure function of its
// inputs — per-element Rng forks keyed by target kind and node id — so the
// same seed yields the same plan regardless of call order, and a seeded
// simulation with faults enabled stays bit-identical across runs.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "network/bandwidth.h"
#include "network/policy.h"
#include "sim/domains.h"
#include "sim/metrics.h"
#include "topology/topology.h"
#include "util/ids.h"

namespace hit::sim {

/// Controller is the control plane itself — not a topology element.  Its
/// events (ControllerCrash/ControllerRestart) are intercepted by the
/// simulators before FaultState dispatch; FaultState::apply rejects them.
enum class FaultTarget : std::uint8_t { Switch, Server, Link, Controller };
/// Fail/Recover are the binary crash model of PR 1.  Degrade/Restore are the
/// gray-failure half: the element stays alive and routable but its effective
/// capacity drops to `factor` x nominal until the matching Restore.
/// ControllerCrash/ControllerRestart bound a control-plane blackout window
/// (DESIGN.md §15): the data plane fails static (flows keep last-installed
/// routes, no reroutes), new waves queue, and the restart reconciles.
enum class FaultKind : std::uint8_t {
  Fail,
  Recover,
  Degrade,
  Restore,
  ControllerCrash,
  ControllerRestart,
};

[[nodiscard]] std::string_view fault_target_name(FaultTarget target);
[[nodiscard]] std::string_view fault_kind_name(FaultKind kind);

struct FaultEvent {
  double time = 0.0;
  FaultKind kind = FaultKind::Fail;
  FaultTarget target = FaultTarget::Switch;
  NodeId node;  ///< the failed switch / server node; link endpoint a
  NodeId peer;  ///< link endpoint b; invalid for switch/server events
  double factor = 1.0;  ///< Degrade only: effective-capacity multiplier (0, 1)
  /// Correlated-fault tag: the 1-based DomainSet ordinal whose crash emitted
  /// this event, or 0 for an independent single-element fault.  A server
  /// Fail with domain != 0 loses its completed map outputs with probability
  /// 1 when output loss is enabled (DESIGN.md §17).
  std::uint32_t domain = 0;
};

/// MTBF/MTTR generator knobs.  A class with mtbf == 0 never fails; mttr == 0
/// makes failures permanent (no recover event is emitted).  The gray_* knobs
/// drive an independent Degrade/Restore renewal process per switch and link
/// (servers do not gray-fail: a slow server is the straggler model's job);
/// each episode's capacity factor is drawn uniformly from
/// [gray_factor_min, gray_factor_max].
struct MtbfConfig {
  double horizon = 0.0;  ///< generate events in (0, horizon)
  double switch_mtbf = 0.0;
  double switch_mttr = 0.0;
  double server_mtbf = 0.0;
  double server_mttr = 0.0;
  double link_mtbf = 0.0;
  double link_mttr = 0.0;
  double gray_switch_mtbf = 0.0;
  double gray_switch_mttr = 0.0;
  double gray_link_mtbf = 0.0;
  double gray_link_mttr = 0.0;
  double gray_factor_min = 0.25;
  double gray_factor_max = 0.5;
  /// Control-plane crash renewal process (one controller instance).  The
  /// blackout between crash and restart is Exp(1/controller_mttr); mttr == 0
  /// makes the crash permanent (fail-static to the end of the run).
  double controller_mtbf = 0.0;
  double controller_mttr = 0.0;
  /// Correlated-domain renewal processes: one per rack (ToR + its servers)
  /// and one per pod (aggregation subtree).  Each crash atomically fails
  /// every member element; all member events carry the domain's ordinal.
  /// Forked under a disjoint salt, so enabling these leaves every other
  /// generated stream byte-identical.
  double rack_mtbf = 0.0;
  double rack_mttr = 0.0;
  double pod_mtbf = 0.0;
  double pod_mttr = 0.0;
};

/// Failure-domain simulator knobs (DESIGN.md §17).  Everything off by
/// default: the simulators keep the durable-output assumption and stay
/// bit-identical.  `enabled` derives the topology's DomainSet, drops the
/// durable-output assumption, and turns on partition-aware placement;
/// `output_loss_prob` is the probability an *independent* server crash
/// destroys the completed map outputs it hosts (a domain-tagged correlated
/// crash always destroys them).
struct FaultDomainConfig {
  bool enabled = false;
  double output_loss_prob = 0.0;
};

/// An ordered script of fault events.  Events are kept sorted by time;
/// equal-time events preserve insertion order (scripted plans) or the
/// deterministic generation order (switches, then servers, then links, each
/// in id order).
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Scripted single faults.  `repair_after` <= 0 means permanent.
  /// Throws std::invalid_argument on negative times.
  void fail_switch(NodeId sw, double at, double repair_after = 0.0);
  void fail_server(NodeId server_node, double at, double repair_after = 0.0);
  void fail_link(NodeId a, NodeId b, double at, double repair_after = 0.0);

  /// Scripted gray failures: the element keeps working at `factor` x its
  /// nominal capacity from `at` until `restore_after` later (<= 0 means the
  /// degradation is permanent).  Throws std::invalid_argument unless factor
  /// is in (0, 1).
  void degrade_switch(NodeId sw, double factor, double at,
                      double restore_after = 0.0);
  void degrade_link(NodeId a, NodeId b, double factor, double at,
                    double restore_after = 0.0);

  /// Scripted control-plane crash: the controller blacks out at `at` and
  /// restarts `restart_after` later (<= 0 means it never comes back — the
  /// data plane fails static to the end of the run).
  void crash_controller(double at, double restart_after = 0.0);

  /// Scripted correlated fault: atomically fail every member element of
  /// `domain` at `at` (switches first, then servers, each in id order, all
  /// at the same timestamp) and recover them `repair_after` later (<= 0
  /// means permanent).  Every emitted event carries the domain's ordinal.
  void fail_domain(const FailureDomain& domain, double at,
                   double repair_after = 0.0);

  /// Stochastic plan: alternate Exp(1/mtbf) up-times and Exp(1/mttr)
  /// down-times per element.  Failures are generated inside (0, horizon);
  /// each failure's repair is always emitted (possibly past the horizon)
  /// unless mttr == 0, which makes failures permanent.  Pure function of
  /// the inputs.
  [[nodiscard]] static FaultPlan generate(const topo::Topology& topology,
                                          const MtbfConfig& config,
                                          std::uint64_t seed);

  /// Rebuild a plan from a recorded event list (campaign what-if replay).
  /// Events are re-sorted by time with stable order; throws
  /// std::invalid_argument on negative times or out-of-range Degrade
  /// factors.
  [[nodiscard]] static FaultPlan scripted(std::vector<FaultEvent> events);

  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }

 private:
  void insert(FaultEvent event);

  std::vector<FaultEvent> events_;
};

/// Replay-time view of which elements are up.  Simulators apply events in
/// order and query liveness when releasing or rerouting flows.
class FaultState {
 public:
  explicit FaultState(const topo::Topology& topology);

  void apply(const FaultEvent& event);

  [[nodiscard]] bool node_up(NodeId n) const;
  [[nodiscard]] bool link_up(NodeId a, NodeId b) const;
  /// Every node and every traversed link of the path is up.
  [[nodiscard]] bool path_up(const topo::Path& path) const;
  /// Any switch of the policy's list is down.
  [[nodiscard]] bool policy_hits_fault(const net::Policy& policy) const;

  [[nodiscard]] std::vector<NodeId> down_nodes() const;
  [[nodiscard]] bool any_down() const {
    return down_node_count_ > 0 || !down_links_.empty();
  }

  /// Gray view: current effective-capacity factors of degraded elements
  /// (empty when nothing is degraded).  The map is stable for the life of
  /// the FaultState, so allocators may hold a pointer to it.
  [[nodiscard]] const net::CapacityMap& degrade() const noexcept {
    return degrade_;
  }
  [[nodiscard]] bool any_degraded() const noexcept { return !degrade_.empty(); }
  /// Effective factor of a switch / link (1.0 when healthy or unknown).
  [[nodiscard]] double capacity_factor(NodeId n) const {
    return degrade_.switch_factor(n);
  }
  [[nodiscard]] double link_capacity_factor(NodeId a, NodeId b) const {
    return degrade_.link_factor(a, b);
  }

 private:
  const topo::Topology* topology_;
  std::vector<char> node_down_;  // indexed by NodeId
  std::size_t down_node_count_ = 0;
  std::set<std::pair<std::uint32_t, std::uint32_t>> down_links_;  // a < b
  net::CapacityMap degrade_;  // gray factors of degraded-but-alive elements
};

/// A reroute answer: the policy (switch list) plus the exact node path the
/// BFS found, so callers never re-realize through a down relay server.
struct Reroute {
  net::Policy policy;
  topo::Path path;
};

/// Minimum-hop route from server `src` to server `dst` avoiding every down
/// node and link.  Deterministic (BFS over id-sorted adjacency).  Returns
/// nullopt when the failure set disconnects the pair.
[[nodiscard]] std::optional<Reroute> reroute_policy(
    const topo::Topology& topology, const FaultState& state, NodeId src,
    NodeId dst, FlowId flow);

/// Fold the plan prefix inside [0, end] into `rec`: events replayed
/// (`faults_applied`), failure episodes per element class, and total element
/// downtime clipped to the run (`unavailable_seconds`).  Degrade/Restore
/// events are gray accounting (account_gray_plan), not failures, and are
/// skipped here.
void account_plan(const FaultPlan& plan, double end, RecoveryStats& rec);

/// Fold the plan's Degrade/Restore prefix inside [0, end] into `gray`:
/// events replayed, distinct degradation episodes, and total degraded time
/// clipped to the run (`degraded_seconds`).
void account_gray_plan(const FaultPlan& plan, double end, GrayStats& gray);

/// Fold the plan's correlated-fault prefix inside [0, end] into `fd`:
/// distinct (domain, instant) crash events become `domain_faults`.
void account_domain_plan(const FaultPlan& plan, double end,
                         FaultDomainStats& fd);

/// Mask of nodes that are alive *and* belong to the largest connected
/// component of the alive subgraph (ties broken toward the component holding
/// the lowest node id).  Indexed by NodeId; placement uses it to avoid
/// scheduling reduces onto servers a partition cut off from the majority of
/// the cluster.
[[nodiscard]] std::vector<char> reachable_component(
    const topo::Topology& topology, const FaultState& state);

}  // namespace hit::sim
