#include "sim/packet.h"

#include <algorithm>
#include <functional>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "sim/event_queue.h"
#include "stats/summary.h"

namespace hit::sim {
namespace {

/// Directed-link key.
std::uint64_t link_key(NodeId from, NodeId to) {
  return (static_cast<std::uint64_t>(from.value()) << 32) | to.value();
}

struct LinkState {
  double bandwidth = 0.0;
  double free_at = 0.0;  ///< when the transmitter finishes its current queue
};

struct Packet {
  std::size_t flow = 0;   // index into specs
  std::size_t hop = 0;    // index into the path (current node)
  double injected_at = 0.0;
};

}  // namespace

PacketSimulator::PacketSimulator(const topo::Topology& topology,
                                 PacketSimConfig config)
    : topology_(&topology), config_(config) {
  if (config_.packet_size_gb <= 0.0) {
    throw std::invalid_argument("PacketSimulator: packet size must be positive");
  }
  if (config_.queue_capacity == 0) {
    throw std::invalid_argument("PacketSimulator: queue capacity must be >= 1");
  }
}

std::vector<PacketFlowStats> PacketSimulator::run(
    const std::vector<PacketFlowSpec>& flows) const {
  // Validate paths and set up per-link state.
  std::unordered_map<std::uint64_t, LinkState> links;
  for (const PacketFlowSpec& f : flows) {
    if (f.path.size() < 2) {
      throw std::invalid_argument("PacketSimulator: path needs >= 2 nodes");
    }
    for (std::size_t i = 0; i + 1 < f.path.size(); ++i) {
      const auto bw = topology_->graph().bandwidth(f.path[i], f.path[i + 1]);
      if (!bw) throw std::invalid_argument("PacketSimulator: path uses missing link");
      links[link_key(f.path[i], f.path[i + 1])].bandwidth = *bw;
    }
  }

  std::vector<PacketFlowStats> stats(flows.size());
  std::vector<std::vector<double>> delays(flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    stats[i].id = flows[i].id;
  }

  EventQueue queue;

  // Forward one packet from its current hop; schedules the next arrival or
  // records delivery.  Drop-tail: if the egress backlog exceeds the queue
  // capacity, the packet is dropped at this hop.
  std::function<void(Packet)> forward = [&](Packet p) {
    const PacketFlowSpec& spec = flows[p.flow];
    if (p.hop + 1 == spec.path.size()) {
      ++stats[p.flow].delivered;
      const double delay = queue.now() - p.injected_at;
      delays[p.flow].push_back(delay);
      stats[p.flow].completion_s = std::max(stats[p.flow].completion_s, queue.now());
      return;
    }
    const NodeId from = spec.path[p.hop];
    const NodeId to = spec.path[p.hop + 1];
    LinkState& link = links.at(link_key(from, to));
    const double serialization = config_.packet_size_gb / link.bandwidth;
    const double now = queue.now();
    const double start = std::max(now, link.free_at);
    const double backlog_packets = (start - now) / serialization;
    if (backlog_packets > static_cast<double>(config_.queue_capacity)) {
      ++stats[p.flow].dropped;
      return;
    }
    link.free_at = start + serialization;
    double arrival = start + serialization + config_.link_latency_s;
    if (topology_->is_switch(to)) arrival += config_.switch_latency_s;
    queue.schedule(arrival, [&, p]() mutable {
      ++p.hop;
      forward(p);
    });
  };

  // Inject each flow's packets, paced by its first (access) link: source
  // NICs cannot send faster than their own line rate.
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const PacketFlowSpec& f = flows[i];
    auto packets = static_cast<std::size_t>(
        std::ceil(f.size_gb / config_.packet_size_gb));
    packets = std::min(std::max<std::size_t>(packets, 1),
                       config_.max_packets_per_flow);
    stats[i].sent = packets;
    const double first_bw =
        links.at(link_key(f.path[0], f.path[1])).bandwidth;
    const double pacing = config_.packet_size_gb / first_bw;
    for (std::size_t k = 0; k < packets; ++k) {
      const double inject = f.start_s + static_cast<double>(k) * pacing;
      queue.schedule(inject, [&, i, inject] {
        forward(Packet{i, 0, inject});
      });
    }
  }

  queue.run();

  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (!delays[i].empty()) {
      stats[i].mean_delay_s = stats::mean_of(delays[i]);
      stats[i].p99_delay_s = stats::percentile(delays[i], 99.0);
      const double span = stats[i].completion_s - flows[i].start_s;
      if (span > 0.0) {
        stats[i].throughput_gbps =
            static_cast<double>(stats[i].delivered) * config_.packet_size_gb / span;
      }
    }
  }
  return stats;
}

}  // namespace hit::sim
