// Online multi-tenant simulation: jobs *arrive over time* and compete for
// containers and bandwidth — the dynamic cloud setting that motivates the
// paper ("the bandwidth available for MapReduce applications becomes
// changeable over time", §1).
//
// Contrast with ClusterSimulator (the batch testbed model): here each job is
// scheduled at its arrival instant against the residual resources of the
// jobs already running, its shuffle flows join a single global max-min fair
// pool shared with every co-tenant, and jobs that do not fit wait in a FIFO
// queue until capacity frees.  Job completion time therefore includes
// queueing delay, and schedulers face exactly the §5.3 wave split: the
// arriving job's own tasks are open while every co-tenant's are fixed.
#pragma once

#include <vector>

#include "cluster/cluster.h"
#include "mapreduce/job.h"
#include "sched/admission/aimd.h"
#include "sched/admission/tenant.h"
#include "sched/scheduler.h"
#include "sim/engine.h"
#include "sim/metrics.h"
#include "util/rng.h"

namespace hit::sim {

/// How the simulator reacts when offered load outruns the cluster.
enum class AdmissionPolicy : std::uint8_t {
  /// Default / legacy: unbounded FIFO queue.  With `max_queue_wait` set, an
  /// over-long head-of-line wait throws core::OverloadError — the strict
  /// path for configurations that must never shed.
  Unbounded,
  /// Queue capped at `max_queue`: an arrival that finds it full is shed
  /// immediately (reject-new).
  RejectNew,
  /// Queue capped at `max_queue`: an arrival that finds it full displaces
  /// the waiting job with the lowest priority (ties: longest current wait);
  /// when every waiting job outranks the arrival, the arrival is shed
  /// instead.
  DropOldest,
  /// Unbounded queue, but any job that has waited past `max_queue_wait` is
  /// shed — the graceful counterpart of Unbounded's throw.
  DeadlineShed,
  /// Adaptive cap: an AIMD controller (sched/admission/aimd.h) learns the
  /// sustainable queue limit from per-epoch overload signals, and the limit
  /// is enforced *per tenant* — weight-proportional caps with a protected
  /// floor, displacing from the most over-entitlement tenant first.  With
  /// `max_queue_wait > 0` the DeadlineShed scan also runs (its sheds feed
  /// the controller as deadline misses).
  Aimd,
};

[[nodiscard]] const char* admission_policy_name(AdmissionPolicy policy);

/// Admission-control knobs.  The default (Unbounded, no cap) reproduces the
/// legacy behavior bit-for-bit.
struct AdmissionConfig {
  AdmissionPolicy policy = AdmissionPolicy::Unbounded;
  /// Waiting-queue capacity for RejectNew / DropOldest (must be > 0 there).
  std::size_t max_queue = 0;
  /// AIMD knobs (used only with AdmissionPolicy::Aimd).
  sched::admission::AimdConfig aimd;
  /// Tenant roster.  Empty = single default tenant (every `Job::tenant`
  /// must then be 0); otherwise must cover the largest tenant id on any job.
  /// Tenant accounting (TenantStats, DRF shares, Jain index) switches on
  /// when this is non-empty or the policy is Aimd.
  std::vector<sched::admission::TenantSpec> tenants;
};

/// DAG-workflow dependency plan for an online run (built by
/// workflow::build_online_plan; empty = every job is independent, the legacy
/// arrival model, bit-identical to pre-workflow runs).
///
/// The jobs vector passed to OnlineSimulator::run materializes every stage
/// *attempt* up front; the plan says which jobs form one stage (hedged
/// duplicates), how stages depend on each other, and which workflow group
/// each stage belongs to.  At run time the simulator draws one Poisson
/// arrival per *group*, releases root stages then, and unlocks a child stage
/// the instant all its parent stages have a finished attempt; a stage whose
/// attempts are all shed cascades a Parent-shed to every descendant.
struct WorkflowPlan {
  struct JobTag {
    std::size_t group = 0;  ///< workflow instance (index into group count)
    std::size_t stage = 0;  ///< global stage index (into `stages`)
    std::size_t attempt = 0;  ///< 0 = primary, >0 = hedged duplicate
  };
  struct StageInfo {
    std::size_t group = 0;
    std::uint32_t index = 0;  ///< stage index within its workflow
    std::vector<std::size_t> parents;   ///< global stage indices
    std::vector<std::size_t> children;  ///< global stage indices
    std::vector<std::size_t> attempts;  ///< job indices (primary first)
  };
  std::vector<JobTag> job_tags;  ///< size == jobs.size() when enabled
  std::vector<StageInfo> stages;
  std::size_t groups = 0;

  [[nodiscard]] bool enabled() const noexcept { return !job_tags.empty(); }
};

struct OnlineConfig {
  /// Poisson arrival rate (jobs per simulated second).  With a workflow
  /// plan, the rate spaces *workflow group* arrivals instead of job arrivals.
  double arrival_rate = 0.05;
  /// Bandwidth scale, shuffle config, replication, ... — including
  /// `sim.faults`: here a server failure kills that host's in-flight maps
  /// (re-placed through the subsequent-wave scheduling path) and *restarts*
  /// any job whose reduce container it held (back to the head of the queue);
  /// switch/link failures detour or stall crossing transfers until repair.
  SimConfig sim;
  /// Queue-wait bound (0 = unlimited): Unbounded throws past it,
  /// DeadlineShed sheds past it, other policies ignore it.
  double max_queue_wait = 0.0;
  /// Overload admission control (defaults preserve the legacy strict path).
  AdmissionConfig admission;
  /// DAG-workflow dependency plan (empty = legacy independent arrivals).
  WorkflowPlan workflow;
};

/// Why an admitted-but-unscheduled job was abandoned.  Parent marks a
/// workflow stage cascade-shed because an upstream stage lost every attempt.
enum class ShedReason : std::uint8_t { QueueFull, Displaced, Deadline, Parent };

[[nodiscard]] const char* shed_reason_name(ShedReason reason);

/// One job given up under overload (it never received containers).
struct ShedJobRecord {
  JobId id;
  std::string benchmark;
  mr::Priority priority = mr::Priority::Normal;
  double arrival = 0.0;
  double shed_at = 0.0;
  ShedReason reason = ShedReason::QueueFull;

  [[nodiscard]] double waited() const { return shed_at - arrival; }
};

struct OnlineJobRecord {
  JobId id;
  std::string benchmark;
  mr::JobClass cls = mr::JobClass::ShuffleLight;
  double arrival = 0.0;
  double scheduled = 0.0;  ///< when containers were granted
  double finish = 0.0;
  double shuffle_gb = 0.0;
  double shuffle_cost = 0.0;  ///< GB x switch hops under the chosen policies

  [[nodiscard]] double queueing_delay() const { return scheduled - arrival; }
  [[nodiscard]] double completion_time() const { return finish - arrival; }
};

/// Per-attempt workflow accounting (one record per materialized stage
/// attempt, in job-vector order; empty unless a WorkflowPlan ran).
struct WorkflowJobRecord {
  JobId id;
  std::uint32_t workflow = 0;  ///< 1-based workflow instance id
  std::uint32_t stage = 0;     ///< stage index within the workflow
  std::size_t attempt = 0;     ///< 0 = primary, >0 = hedged duplicate
  double cp = 0.0;             ///< remaining-critical-path estimate
  double unlocked = 0.0;       ///< ready: group arrival / last parent finish
  double finish = 0.0;         ///< attempt finish (0 when shed)
  std::size_t restarts = 0;    ///< fault-driven re-executions of this attempt
  bool shed = false;
  bool stage_winner = false;   ///< this attempt completed the stage first
};

struct OnlineResult {
  std::vector<OnlineJobRecord> jobs;  ///< completed jobs only
  std::vector<FlowTiming> flows;      ///< flows of completed jobs
  double makespan = 0.0;
  double total_shuffle_cost = 0.0;
  double total_shuffle_gb = 0.0;
  RecoveryStats recovery;  ///< fault/recovery accounting (zero when fault-free)
  GrayStats gray;          ///< gray-failure / quarantine accounting
  ControlPlaneStats control;  ///< controller crash/blackout accounting
  FaultDomainStats fault_domains;  ///< correlated-fault / lineage accounting
  OverloadStats overload;  ///< admission-control accounting (zero when off)
  std::vector<ShedJobRecord> shed;  ///< jobs abandoned under overload
  /// Per-job shuffle groups of the completed jobs, recorded whether or not
  /// coflow scheduling is enabled (so CCT under per-flow fair sharing is
  /// directly comparable to the coflow disciplines).
  std::vector<CoflowTiming> coflows;
  double avg_coflow_cct = 0.0;  ///< mean CCT over recorded coflows (0 = none)
  double p95_coflow_cct = 0.0;  ///< 95th-percentile CCT (0 = none)
  /// Per-tenant accounting (empty unless tenants are configured or the
  /// admission policy is Aimd).
  std::vector<sched::admission::TenantStats> tenants;
  /// AIMD controller accounting (all-zero unless the policy is Aimd).
  sched::admission::AimdStats aimd;
  /// Jain's fairness index over per-tenant weight-normalized completed-job
  /// counts (0 until tenant accounting runs; 1 = perfectly weighted-fair).
  double tenant_jain = 0.0;
  /// Workflow stage-attempt accounting (empty unless a WorkflowPlan ran).
  std::vector<WorkflowJobRecord> workflow_jobs;

  [[nodiscard]] std::vector<double> completion_times() const;
  [[nodiscard]] std::vector<double> queueing_delays() const;
  [[nodiscard]] double average_flow_duration() const;
};

class OnlineSimulator {
 public:
  OnlineSimulator(const cluster::Cluster& cluster, OnlineConfig config = {});

  /// Run the arrival process over `jobs` (arrival order = vector order;
  /// inter-arrival gaps drawn from Exp(arrival_rate)).  Each job must fit
  /// the cluster on its own or the run throws.
  [[nodiscard]] OnlineResult run(sched::Scheduler& scheduler,
                                 const std::vector<mr::Job>& jobs,
                                 mr::IdAllocator& ids, Rng& rng) const;

  [[nodiscard]] const OnlineConfig& config() const noexcept { return config_; }

 private:
  const cluster::Cluster* cluster_;
  OnlineConfig config_;
};

}  // namespace hit::sim
