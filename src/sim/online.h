// Online multi-tenant simulation: jobs *arrive over time* and compete for
// containers and bandwidth — the dynamic cloud setting that motivates the
// paper ("the bandwidth available for MapReduce applications becomes
// changeable over time", §1).
//
// Contrast with ClusterSimulator (the batch testbed model): here each job is
// scheduled at its arrival instant against the residual resources of the
// jobs already running, its shuffle flows join a single global max-min fair
// pool shared with every co-tenant, and jobs that do not fit wait in a FIFO
// queue until capacity frees.  Job completion time therefore includes
// queueing delay, and schedulers face exactly the §5.3 wave split: the
// arriving job's own tasks are open while every co-tenant's are fixed.
#pragma once

#include <vector>

#include "cluster/cluster.h"
#include "mapreduce/job.h"
#include "sched/scheduler.h"
#include "sim/engine.h"
#include "sim/metrics.h"
#include "util/rng.h"

namespace hit::sim {

struct OnlineConfig {
  /// Poisson arrival rate (jobs per simulated second).
  double arrival_rate = 0.05;
  /// Bandwidth scale, shuffle config, replication, ... — including
  /// `sim.faults`: here a server failure kills that host's in-flight maps
  /// (re-placed through the subsequent-wave scheduling path) and *restarts*
  /// any job whose reduce container it held (back to the head of the queue);
  /// switch/link failures detour or stall crossing transfers until repair.
  SimConfig sim;
  /// Abort if any job waits longer than this in the queue (0 = unlimited) —
  /// guards against overload configurations that never drain.
  double max_queue_wait = 0.0;
};

struct OnlineJobRecord {
  JobId id;
  std::string benchmark;
  mr::JobClass cls = mr::JobClass::ShuffleLight;
  double arrival = 0.0;
  double scheduled = 0.0;  ///< when containers were granted
  double finish = 0.0;
  double shuffle_gb = 0.0;
  double shuffle_cost = 0.0;  ///< GB x switch hops under the chosen policies

  [[nodiscard]] double queueing_delay() const { return scheduled - arrival; }
  [[nodiscard]] double completion_time() const { return finish - arrival; }
};

struct OnlineResult {
  std::vector<OnlineJobRecord> jobs;
  std::vector<FlowTiming> flows;
  double makespan = 0.0;
  double total_shuffle_cost = 0.0;
  double total_shuffle_gb = 0.0;
  RecoveryStats recovery;  ///< fault/recovery accounting (zero when fault-free)

  [[nodiscard]] std::vector<double> completion_times() const;
  [[nodiscard]] std::vector<double> queueing_delays() const;
  [[nodiscard]] double average_flow_duration() const;
};

class OnlineSimulator {
 public:
  OnlineSimulator(const cluster::Cluster& cluster, OnlineConfig config = {});

  /// Run the arrival process over `jobs` (arrival order = vector order;
  /// inter-arrival gaps drawn from Exp(arrival_rate)).  Each job must fit
  /// the cluster on its own or the run throws.
  [[nodiscard]] OnlineResult run(sched::Scheduler& scheduler,
                                 const std::vector<mr::Job>& jobs,
                                 mr::IdAllocator& ids, Rng& rng) const;

  [[nodiscard]] const OnlineConfig& config() const noexcept { return config_; }

 private:
  const cluster::Cluster* cluster_;
  OnlineConfig config_;
};

}  // namespace hit::sim
