// Simulator-side control-plane model: blackout windows, warm standby, and
// abstract journal/snapshot accounting (DESIGN.md §15).
//
// The simulators do not run a live NetworkController; what they model is the
// *consequence* of losing one.  Between a ControllerCrash and the matching
// ControllerRestart the data plane fails static: flows keep their
// last-installed routes, a flow whose route dies stalls (no controller to
// install a detour), new waves / job launches queue, and the health monitor
// and admission epochs — controller residents — freeze.  The restart replays
// the journal tail (records since the last snapshot) and reconciles: every
// flow stalled during the blackout is a divergence; each one resumed on a
// live route is a repair.
//
// The core-layer twin (core/recovery/) journals real controller state and
// rebuilds it bit-identically; this runtime carries the same bookkeeping at
// the fluid-simulation level so campaign metrics and bench_recovery agree on
// what a blackout costs.
//
// Determinism: everything here is a pure fold over the fault-event prefix
// and the knob struct.  With no controller events and snapshot_every == 0
// the runtime is never constructed and both simulators are bit-identical to
// their pre-recovery behavior.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/faults.h"
#include "sim/metrics.h"

namespace hit::sim {

/// Control-plane recovery knobs.  Defaults keep the subsystem off.
struct CtrlPlaneConfig {
  /// Snapshot cadence in simulated seconds (0 = journal-only: every record
  /// since time zero replays at restart).
  double snapshot_every = 0.0;
  /// Warm standby: a follower tails the journal and takes over a crashed
  /// controller within `standby_takeover_s`, clamping every blackout — a
  /// permanent crash (no scripted restart) becomes a takeover.
  bool standby = false;
  double standby_takeover_s = 30.0;

  [[nodiscard]] bool enabled() const noexcept {
    return snapshot_every > 0.0 || standby;
  }
};

/// Replay-time control-plane state for one run.  Simulators feed it the
/// controller fault events in time order and tick `note_*` on the control
/// mutations a real controller would journal; it folds the result into
/// ControlPlaneStats at the end of the run.
class CtrlPlaneRuntime {
 public:
  explicit CtrlPlaneRuntime(const CtrlPlaneConfig& config);

  /// Preprocess a plan for this config: with standby on, each
  /// ControllerRestart is pulled forward to crash + standby_takeover_s and a
  /// permanent crash gains a takeover restart.  Data-plane events are passed
  /// through untouched; the result is re-sorted by time (stable).
  [[nodiscard]] std::vector<FaultEvent> plan_events(const FaultPlan& plan) const;

  /// Whether the plan carries any control-plane events (the cheap gate both
  /// simulators use before constructing a runtime).
  [[nodiscard]] static bool plan_has_controller(const FaultPlan& plan);

  [[nodiscard]] bool down() const noexcept { return down_; }

  /// Apply one controller event (ControllerCrash / ControllerRestart).
  /// `active_flows` is the fail-static population: flows mid-transfer at the
  /// crash that will ride out the blackout on their installed routes.
  void on_crash(double now, std::size_t active_flows);
  void on_restart(double now);

  /// One control-plane mutation a live controller would journal (install,
  /// reroute, park, readmit, wave dispatch, quarantine, epoch limit, ...).
  void note_record(std::size_t n = 1) { stats_.journal_records += n; }
  /// Advance the snapshot clock to `now`, cutting snapshots on the cadence.
  /// A down controller cuts nothing; the backlog replays at restart.
  void advance(double now);
  void note_wave_delayed(std::size_t n = 1) { stats_.waves_delayed += n; }
  void note_blackout_stall() { ++stats_.flows_stalled_blackout; }
  /// Restart-time reconciliation outcome: `violations` divergences found
  /// (stalled flows whose route state went stale), `repairs` of them fixed.
  void note_reconcile(std::size_t violations, std::size_t repairs);

  /// Fold the run's control-plane accounting into `out`, clipping a still-
  /// open blackout to the run end.
  void finish(double end, ControlPlaneStats& out);

  [[nodiscard]] const CtrlPlaneConfig& config() const noexcept {
    return config_;
  }

 private:
  CtrlPlaneConfig config_;
  ControlPlaneStats stats_;
  bool down_ = false;
  double down_since_ = 0.0;
  double last_snapshot_ = 0.0;
  std::size_t records_at_snapshot_ = 0;
};

}  // namespace hit::sim
