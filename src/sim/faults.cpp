#include "sim/faults.h"

#include <algorithm>
#include <deque>
#include <map>
#include <stdexcept>
#include <tuple>

#include "util/rng.h"

namespace hit::sim {
namespace {

/// Stable per-element fork salt: the plan must not depend on generation
/// order, so every element derives its own child stream.
std::uint64_t salt(FaultTarget target, NodeId a, NodeId b = NodeId{}) {
  return (static_cast<std::uint64_t>(target) << 56) ^
         (static_cast<std::uint64_t>(a.value()) << 24) ^
         static_cast<std::uint64_t>(b.valid() ? b.value() + 1 : 0);
}

std::pair<std::uint32_t, std::uint32_t> link_key(NodeId a, NodeId b) {
  return std::minmax(a.value(), b.value());
}

}  // namespace

std::string_view fault_target_name(FaultTarget target) {
  switch (target) {
    case FaultTarget::Switch: return "switch";
    case FaultTarget::Server: return "server";
    default: return "link";
  }
}

void FaultPlan::insert(FaultEvent event) {
  if (event.time < 0.0) {
    throw std::invalid_argument("FaultPlan: event time must be non-negative");
  }
  // Keep sorted by time; equal times preserve insertion order.
  const auto pos = std::upper_bound(
      events_.begin(), events_.end(), event.time,
      [](double t, const FaultEvent& e) { return t < e.time; });
  events_.insert(pos, event);
}

void FaultPlan::fail_switch(NodeId sw, double at, double repair_after) {
  insert(FaultEvent{at, FaultKind::Fail, FaultTarget::Switch, sw, NodeId{}});
  if (repair_after > 0.0) {
    insert(FaultEvent{at + repair_after, FaultKind::Recover, FaultTarget::Switch,
                      sw, NodeId{}});
  }
}

void FaultPlan::fail_server(NodeId server_node, double at, double repair_after) {
  insert(FaultEvent{at, FaultKind::Fail, FaultTarget::Server, server_node, NodeId{}});
  if (repair_after > 0.0) {
    insert(FaultEvent{at + repair_after, FaultKind::Recover, FaultTarget::Server,
                      server_node, NodeId{}});
  }
}

void FaultPlan::fail_link(NodeId a, NodeId b, double at, double repair_after) {
  if (a == b) throw std::invalid_argument("FaultPlan: link endpoints must differ");
  insert(FaultEvent{at, FaultKind::Fail, FaultTarget::Link, a, b});
  if (repair_after > 0.0) {
    insert(FaultEvent{at + repair_after, FaultKind::Recover, FaultTarget::Link, a, b});
  }
}

FaultPlan FaultPlan::generate(const topo::Topology& topology,
                              const MtbfConfig& config, std::uint64_t seed) {
  if (config.horizon <= 0.0) {
    throw std::invalid_argument("FaultPlan::generate: horizon must be positive");
  }
  FaultPlan plan;
  const Rng base(seed);

  // One renewal process per element: up for Exp(1/mtbf), down for
  // Exp(1/mttr), repeating until the horizon.  mttr == 0 => the first
  // failure is permanent.
  auto renew = [&](FaultTarget target, NodeId a, NodeId b, double mtbf,
                   double mttr) {
    if (mtbf <= 0.0) return;
    Rng rng = base.fork(salt(target, a, b));
    double t = 0.0;
    while (true) {
      t += rng.exponential(1.0 / mtbf);
      if (t >= config.horizon) break;
      plan.insert(FaultEvent{t, FaultKind::Fail, target, a, b});
      if (mttr <= 0.0) break;  // permanent
      // Repairs complete even past the horizon: only *failures* are bounded,
      // so a generated plan never strands an element down by accident.
      t += rng.exponential(1.0 / mttr);
      plan.insert(FaultEvent{t, FaultKind::Recover, target, a, b});
      if (t >= config.horizon) break;
    }
  };

  for (NodeId sw : topology.switches()) {
    renew(FaultTarget::Switch, sw, NodeId{}, config.switch_mtbf,
          config.switch_mttr);
  }
  for (NodeId server : topology.servers()) {
    renew(FaultTarget::Server, server, NodeId{}, config.server_mtbf,
          config.server_mttr);
  }
  if (config.link_mtbf > 0.0) {
    for (std::uint32_t n = 0; n < topology.node_count(); ++n) {
      const NodeId a{n};
      for (const topo::Edge& e : topology.graph().neighbors(a)) {
        if (e.to < a) continue;  // each undirected link once
        renew(FaultTarget::Link, a, e.to, config.link_mtbf, config.link_mttr);
      }
    }
  }
  return plan;
}

FaultState::FaultState(const topo::Topology& topology)
    : topology_(&topology), node_down_(topology.node_count(), 0) {}

void FaultState::apply(const FaultEvent& event) {
  if (event.target == FaultTarget::Link) {
    if (event.kind == FaultKind::Fail) {
      down_links_.insert(link_key(event.node, event.peer));
    } else {
      down_links_.erase(link_key(event.node, event.peer));
    }
    return;
  }
  if (event.node.index() >= node_down_.size()) {
    throw std::invalid_argument("FaultState: event node outside topology");
  }
  char& down = node_down_[event.node.index()];
  const char want = event.kind == FaultKind::Fail ? 1 : 0;
  if (down == want) return;  // duplicate fail/recover: idempotent
  down = want;
  down_node_count_ += want ? 1 : -1;
}

bool FaultState::node_up(NodeId n) const {
  return n.index() < node_down_.size() && node_down_[n.index()] == 0;
}

bool FaultState::link_up(NodeId a, NodeId b) const {
  return down_links_.find(link_key(a, b)) == down_links_.end();
}

bool FaultState::path_up(const topo::Path& path) const {
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (!node_up(path[i])) return false;
    if (i > 0 && !link_up(path[i - 1], path[i])) return false;
  }
  return true;
}

bool FaultState::policy_hits_fault(const net::Policy& policy) const {
  for (NodeId sw : policy.list) {
    if (!node_up(sw)) return true;
  }
  return false;
}

std::vector<NodeId> FaultState::down_nodes() const {
  std::vector<NodeId> down;
  for (std::size_t i = 0; i < node_down_.size(); ++i) {
    if (node_down_[i]) down.push_back(NodeId(static_cast<std::uint32_t>(i)));
  }
  return down;
}

std::optional<Reroute> reroute_policy(const topo::Topology& topology,
                                      const FaultState& state, NodeId src,
                                      NodeId dst, FlowId flow) {
  if (!state.node_up(src) || !state.node_up(dst)) return std::nullopt;
  if (src == dst) {
    return Reroute{net::policy_from_path(topology, {src}, flow), {src}};
  }

  // Plain BFS over id-sorted adjacency, skipping down nodes and links:
  // deterministic minimum-hop detour.
  const topo::Graph& graph = topology.graph();
  std::vector<NodeId> parent(graph.node_count());
  std::vector<char> seen(graph.node_count(), 0);
  std::deque<NodeId> frontier{src};
  seen[src.index()] = 1;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    if (u == dst) break;
    for (const topo::Edge& e : graph.neighbors(u)) {
      if (seen[e.to.index()]) continue;
      if (!state.node_up(e.to) || !state.link_up(u, e.to)) continue;
      seen[e.to.index()] = 1;
      parent[e.to.index()] = u;
      frontier.push_back(e.to);
    }
  }
  if (!seen[dst.index()]) return std::nullopt;

  topo::Path path{dst};
  for (NodeId u = dst; u != src; u = parent[u.index()]) {
    path.push_back(parent[u.index()]);
  }
  std::reverse(path.begin(), path.end());
  return Reroute{net::policy_from_path(topology, path, flow), path};
}

void account_plan(const FaultPlan& plan, double end, RecoveryStats& rec) {
  std::map<std::tuple<int, std::uint32_t, std::uint32_t>, double> down_since;
  for (const FaultEvent& ev : plan.events()) {
    if (ev.time > end) break;
    ++rec.faults_applied;
    const auto key = std::make_tuple(
        static_cast<int>(ev.target), ev.node.value(),
        ev.peer.valid() ? ev.peer.value() : 0xFFFFFFFFu);
    if (ev.kind == FaultKind::Fail) {
      if (down_since.emplace(key, ev.time).second) {
        switch (ev.target) {
          case FaultTarget::Switch: ++rec.switches_failed; break;
          case FaultTarget::Server: ++rec.servers_failed; break;
          case FaultTarget::Link: ++rec.links_failed; break;
        }
      }
    } else {
      const auto it = down_since.find(key);
      if (it != down_since.end()) {
        rec.unavailable_seconds += ev.time - it->second;
        down_since.erase(it);
      }
    }
  }
  for (const auto& [key, since] : down_since) {
    if (end > since) rec.unavailable_seconds += end - since;
  }
}

}  // namespace hit::sim
