#include "sim/faults.h"

#include <algorithm>
#include <deque>
#include <map>
#include <stdexcept>
#include <tuple>

#include "util/rng.h"

namespace hit::sim {
namespace {

/// Stable per-element fork salt: the plan must not depend on generation
/// order, so every element derives its own child stream.
std::uint64_t salt(FaultTarget target, NodeId a, NodeId b = NodeId{}) {
  return (static_cast<std::uint64_t>(target) << 56) ^
         (static_cast<std::uint64_t>(a.value()) << 24) ^
         static_cast<std::uint64_t>(b.valid() ? b.value() + 1 : 0);
}

/// Gray streams must be independent of the crash streams above, so that
/// enabling gray knobs leaves a plan's Fail/Recover events byte-identical.
constexpr std::uint64_t kGraySalt = 0x4752415900000000ull;  // "GRAY"

std::uint64_t gray_salt(FaultTarget target, NodeId a, NodeId b = NodeId{}) {
  return salt(target, a, b) ^ kGraySalt;
}

/// Correlated-domain streams are keyed by (kind, ordinal) under their own
/// salt, disjoint from both the per-element and the gray streams, so turning
/// the domain knobs on leaves every previously generated event
/// byte-identical.
constexpr std::uint64_t kDomainSalt = 0x444F4D4E00000000ull;  // "DOMN"

std::uint64_t domain_salt(const FailureDomain& d) {
  return kDomainSalt ^ (static_cast<std::uint64_t>(d.kind) << 48) ^ d.ordinal;
}

std::pair<std::uint32_t, std::uint32_t> link_key(NodeId a, NodeId b) {
  return std::minmax(a.value(), b.value());
}

}  // namespace

std::string_view fault_target_name(FaultTarget target) {
  switch (target) {
    case FaultTarget::Switch: return "switch";
    case FaultTarget::Server: return "server";
    case FaultTarget::Controller: return "controller";
    default: return "link";
  }
}

std::string_view fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::Fail: return "fail";
    case FaultKind::Recover: return "recover";
    case FaultKind::Degrade: return "degrade";
    case FaultKind::ControllerCrash: return "controller-crash";
    case FaultKind::ControllerRestart: return "controller-restart";
    default: return "restore";
  }
}

void FaultPlan::insert(FaultEvent event) {
  if (event.time < 0.0) {
    throw std::invalid_argument("FaultPlan: event time must be non-negative");
  }
  // Keep sorted by time; equal times preserve insertion order.
  const auto pos = std::upper_bound(
      events_.begin(), events_.end(), event.time,
      [](double t, const FaultEvent& e) { return t < e.time; });
  events_.insert(pos, event);
}

void FaultPlan::fail_switch(NodeId sw, double at, double repair_after) {
  insert(FaultEvent{at, FaultKind::Fail, FaultTarget::Switch, sw, NodeId{}});
  if (repair_after > 0.0) {
    insert(FaultEvent{at + repair_after, FaultKind::Recover, FaultTarget::Switch,
                      sw, NodeId{}});
  }
}

void FaultPlan::fail_server(NodeId server_node, double at, double repair_after) {
  insert(FaultEvent{at, FaultKind::Fail, FaultTarget::Server, server_node, NodeId{}});
  if (repair_after > 0.0) {
    insert(FaultEvent{at + repair_after, FaultKind::Recover, FaultTarget::Server,
                      server_node, NodeId{}});
  }
}

void FaultPlan::fail_link(NodeId a, NodeId b, double at, double repair_after) {
  if (a == b) throw std::invalid_argument("FaultPlan: link endpoints must differ");
  insert(FaultEvent{at, FaultKind::Fail, FaultTarget::Link, a, b});
  if (repair_after > 0.0) {
    insert(FaultEvent{at + repair_after, FaultKind::Recover, FaultTarget::Link, a, b});
  }
}

namespace {
void check_gray_factor(double factor) {
  if (factor <= 0.0 || factor >= 1.0) {
    throw std::invalid_argument("FaultPlan: gray factor must be in (0, 1)");
  }
}
}  // namespace

void FaultPlan::degrade_switch(NodeId sw, double factor, double at,
                               double restore_after) {
  check_gray_factor(factor);
  insert(FaultEvent{at, FaultKind::Degrade, FaultTarget::Switch, sw, NodeId{},
                    factor});
  if (restore_after > 0.0) {
    insert(FaultEvent{at + restore_after, FaultKind::Restore,
                      FaultTarget::Switch, sw, NodeId{}});
  }
}

void FaultPlan::degrade_link(NodeId a, NodeId b, double factor, double at,
                             double restore_after) {
  if (a == b) throw std::invalid_argument("FaultPlan: link endpoints must differ");
  check_gray_factor(factor);
  insert(FaultEvent{at, FaultKind::Degrade, FaultTarget::Link, a, b, factor});
  if (restore_after > 0.0) {
    insert(FaultEvent{at + restore_after, FaultKind::Restore, FaultTarget::Link,
                      a, b});
  }
}

void FaultPlan::crash_controller(double at, double restart_after) {
  insert(FaultEvent{at, FaultKind::ControllerCrash, FaultTarget::Controller,
                    NodeId{}, NodeId{}});
  if (restart_after > 0.0) {
    insert(FaultEvent{at + restart_after, FaultKind::ControllerRestart,
                      FaultTarget::Controller, NodeId{}, NodeId{}});
  }
}

void FaultPlan::fail_domain(const FailureDomain& domain, double at,
                            double repair_after) {
  auto emit = [&](FaultKind kind, double t) {
    for (NodeId sw : domain.switches) {
      insert(FaultEvent{t, kind, FaultTarget::Switch, sw, NodeId{}, 1.0,
                        domain.ordinal});
    }
    for (NodeId server : domain.servers) {
      insert(FaultEvent{t, kind, FaultTarget::Server, server, NodeId{}, 1.0,
                        domain.ordinal});
    }
  };
  emit(FaultKind::Fail, at);
  if (repair_after > 0.0) emit(FaultKind::Recover, at + repair_after);
}

FaultPlan FaultPlan::scripted(std::vector<FaultEvent> events) {
  FaultPlan plan;
  for (FaultEvent& e : events) {
    if (e.kind == FaultKind::Degrade) check_gray_factor(e.factor);
    plan.insert(e);
  }
  return plan;
}

FaultPlan FaultPlan::generate(const topo::Topology& topology,
                              const MtbfConfig& config, std::uint64_t seed) {
  if (config.horizon <= 0.0) {
    throw std::invalid_argument("FaultPlan::generate: horizon must be positive");
  }
  FaultPlan plan;
  const Rng base(seed);

  // One renewal process per element: up for Exp(1/mtbf), down for
  // Exp(1/mttr), repeating until the horizon.  mttr == 0 => the first
  // failure is permanent.
  auto renew = [&](FaultTarget target, NodeId a, NodeId b, double mtbf,
                   double mttr) {
    if (mtbf <= 0.0) return;
    Rng rng = base.fork(salt(target, a, b));
    double t = 0.0;
    while (true) {
      t += rng.exponential(1.0 / mtbf);
      if (t >= config.horizon) break;
      plan.insert(FaultEvent{t, FaultKind::Fail, target, a, b});
      if (mttr <= 0.0) break;  // permanent
      // Repairs complete even past the horizon: only *failures* are bounded,
      // so a generated plan never strands an element down by accident.
      t += rng.exponential(1.0 / mttr);
      plan.insert(FaultEvent{t, FaultKind::Recover, target, a, b});
      if (t >= config.horizon) break;
    }
  };

  for (NodeId sw : topology.switches()) {
    renew(FaultTarget::Switch, sw, NodeId{}, config.switch_mtbf,
          config.switch_mttr);
  }
  for (NodeId server : topology.servers()) {
    renew(FaultTarget::Server, server, NodeId{}, config.server_mtbf,
          config.server_mttr);
  }
  if (config.link_mtbf > 0.0) {
    for (std::uint32_t n = 0; n < topology.node_count(); ++n) {
      const NodeId a{n};
      for (const topo::Edge& e : topology.graph().neighbors(a)) {
        if (e.to < a) continue;  // each undirected link once
        renew(FaultTarget::Link, a, e.to, config.link_mtbf, config.link_mttr);
      }
    }
  }

  // Control-plane crashes: one renewal process for the (single) controller
  // instance, on its own salt so enabling it leaves every data-plane stream
  // byte-identical.
  if (config.controller_mtbf > 0.0) {
    Rng rng = base.fork(salt(FaultTarget::Controller, NodeId{}, NodeId{}));
    double t = 0.0;
    while (true) {
      t += rng.exponential(1.0 / config.controller_mtbf);
      if (t >= config.horizon) break;
      plan.insert(FaultEvent{t, FaultKind::ControllerCrash,
                             FaultTarget::Controller, NodeId{}, NodeId{}});
      if (config.controller_mttr <= 0.0) break;  // permanent blackout
      t += rng.exponential(1.0 / config.controller_mttr);
      plan.insert(FaultEvent{t, FaultKind::ControllerRestart,
                             FaultTarget::Controller, NodeId{}, NodeId{}});
      if (t >= config.horizon) break;
    }
  }

  // Gray failures: an independent per-element renewal process on a disjoint
  // salt, so enabling the gray knobs leaves the crash events byte-identical.
  // The capacity factor is drawn per episode from [gray_factor_min,
  // gray_factor_max]; mttr == 0 makes the degradation permanent.
  if (config.gray_switch_mtbf > 0.0 || config.gray_link_mtbf > 0.0) {
    if (config.gray_factor_min <= 0.0 || config.gray_factor_max >= 1.0 ||
        config.gray_factor_min > config.gray_factor_max) {
      throw std::invalid_argument(
          "FaultPlan::generate: gray factors must satisfy 0 < min <= max < 1");
    }
  }
  auto renew_gray = [&](FaultTarget target, NodeId a, NodeId b, double mtbf,
                        double mttr) {
    if (mtbf <= 0.0) return;
    Rng rng = base.fork(gray_salt(target, a, b));
    double t = 0.0;
    while (true) {
      t += rng.exponential(1.0 / mtbf);
      if (t >= config.horizon) break;
      const double factor =
          rng.uniform(config.gray_factor_min, config.gray_factor_max);
      plan.insert(FaultEvent{t, FaultKind::Degrade, target, a, b, factor});
      if (mttr <= 0.0) break;  // permanent degradation
      t += rng.exponential(1.0 / mttr);
      plan.insert(FaultEvent{t, FaultKind::Restore, target, a, b});
      if (t >= config.horizon) break;
    }
  };
  for (NodeId sw : topology.switches()) {
    renew_gray(FaultTarget::Switch, sw, NodeId{}, config.gray_switch_mtbf,
               config.gray_switch_mttr);
  }
  if (config.gray_link_mtbf > 0.0) {
    for (std::uint32_t n = 0; n < topology.node_count(); ++n) {
      const NodeId a{n};
      for (const topo::Edge& e : topology.graph().neighbors(a)) {
        if (e.to < a) continue;
        renew_gray(FaultTarget::Link, a, e.to, config.gray_link_mtbf,
                   config.gray_link_mttr);
      }
    }
  }

  // Correlated domain crashes: one renewal process per rack / pod, each on
  // its own (kind, ordinal) salt.  A crash fails every member atomically;
  // the repair brings all of them back at once.
  if (config.rack_mtbf > 0.0 || config.pod_mtbf > 0.0) {
    const DomainSet domains = DomainSet::derive(topology);
    auto renew_domain = [&](const FailureDomain& d, double mtbf, double mttr) {
      if (mtbf <= 0.0) return;
      Rng rng = base.fork(domain_salt(d));
      double t = 0.0;
      while (true) {
        t += rng.exponential(1.0 / mtbf);
        if (t >= config.horizon) break;
        const double repair = mttr > 0.0 ? rng.exponential(1.0 / mttr) : 0.0;
        plan.fail_domain(d, t, repair);
        if (mttr <= 0.0) break;  // permanent
        t += repair;
        if (t >= config.horizon) break;
      }
    };
    for (const FailureDomain& d : domains.domains()) {
      if (d.kind == DomainKind::Rack) {
        renew_domain(d, config.rack_mtbf, config.rack_mttr);
      } else if (d.kind == DomainKind::Pod) {
        renew_domain(d, config.pod_mtbf, config.pod_mttr);
      }
    }
  }
  return plan;
}

FaultState::FaultState(const topo::Topology& topology)
    : topology_(&topology), node_down_(topology.node_count(), 0) {}

void FaultState::apply(const FaultEvent& event) {
  if (event.target == FaultTarget::Controller ||
      event.kind == FaultKind::ControllerCrash ||
      event.kind == FaultKind::ControllerRestart) {
    // Control-plane events never touch data-plane liveness; the simulators
    // must intercept them before FaultState dispatch.
    throw std::invalid_argument(
        "FaultState: controller events are not data-plane events");
  }
  if (event.kind == FaultKind::Degrade || event.kind == FaultKind::Restore) {
    // Gray events only touch the capacity map; up/down state is unaffected.
    const double factor = event.kind == FaultKind::Degrade ? event.factor : 1.0;
    if (event.target == FaultTarget::Link) {
      degrade_.set_link(event.node, event.peer, factor);
    } else if (event.target == FaultTarget::Switch) {
      degrade_.set_switch(event.node, factor);
    } else {
      throw std::invalid_argument("FaultState: servers cannot gray-fail");
    }
    return;
  }
  if (event.target == FaultTarget::Link) {
    if (event.kind == FaultKind::Fail) {
      down_links_.insert(link_key(event.node, event.peer));
    } else {
      down_links_.erase(link_key(event.node, event.peer));
    }
    return;
  }
  if (event.node.index() >= node_down_.size()) {
    throw std::invalid_argument("FaultState: event node outside topology");
  }
  char& down = node_down_[event.node.index()];
  const char want = event.kind == FaultKind::Fail ? 1 : 0;
  if (down == want) return;  // duplicate fail/recover: idempotent
  down = want;
  down_node_count_ += want ? 1 : -1;
}

bool FaultState::node_up(NodeId n) const {
  return n.index() < node_down_.size() && node_down_[n.index()] == 0;
}

bool FaultState::link_up(NodeId a, NodeId b) const {
  return down_links_.find(link_key(a, b)) == down_links_.end();
}

bool FaultState::path_up(const topo::Path& path) const {
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (!node_up(path[i])) return false;
    if (i > 0 && !link_up(path[i - 1], path[i])) return false;
  }
  return true;
}

bool FaultState::policy_hits_fault(const net::Policy& policy) const {
  for (NodeId sw : policy.list) {
    if (!node_up(sw)) return true;
  }
  return false;
}

std::vector<NodeId> FaultState::down_nodes() const {
  std::vector<NodeId> down;
  for (std::size_t i = 0; i < node_down_.size(); ++i) {
    if (node_down_[i]) down.push_back(NodeId(static_cast<std::uint32_t>(i)));
  }
  return down;
}

std::optional<Reroute> reroute_policy(const topo::Topology& topology,
                                      const FaultState& state, NodeId src,
                                      NodeId dst, FlowId flow) {
  if (!state.node_up(src) || !state.node_up(dst)) return std::nullopt;
  if (src == dst) {
    return Reroute{net::policy_from_path(topology, {src}, flow), {src}};
  }

  // Plain BFS over id-sorted adjacency, skipping down nodes and links:
  // deterministic minimum-hop detour.
  const topo::Graph& graph = topology.graph();
  std::vector<NodeId> parent(graph.node_count());
  std::vector<char> seen(graph.node_count(), 0);
  std::deque<NodeId> frontier{src};
  seen[src.index()] = 1;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    if (u == dst) break;
    for (const topo::Edge& e : graph.neighbors(u)) {
      if (seen[e.to.index()]) continue;
      if (!state.node_up(e.to) || !state.link_up(u, e.to)) continue;
      seen[e.to.index()] = 1;
      parent[e.to.index()] = u;
      frontier.push_back(e.to);
    }
  }
  if (!seen[dst.index()]) return std::nullopt;

  topo::Path path{dst};
  for (NodeId u = dst; u != src; u = parent[u.index()]) {
    path.push_back(parent[u.index()]);
  }
  std::reverse(path.begin(), path.end());
  return Reroute{net::policy_from_path(topology, path, flow), path};
}

void account_plan(const FaultPlan& plan, double end, RecoveryStats& rec) {
  std::map<std::tuple<int, std::uint32_t, std::uint32_t>, double> down_since;
  for (const FaultEvent& ev : plan.events()) {
    if (ev.time > end) break;
    if (ev.kind == FaultKind::Degrade || ev.kind == FaultKind::Restore) {
      continue;  // gray accounting lives in account_gray_plan
    }
    if (ev.target == FaultTarget::Controller) {
      continue;  // control-plane accounting lives in ControlPlaneStats
    }
    ++rec.faults_applied;
    const auto key = std::make_tuple(
        static_cast<int>(ev.target), ev.node.value(),
        ev.peer.valid() ? ev.peer.value() : 0xFFFFFFFFu);
    if (ev.kind == FaultKind::Fail) {
      if (down_since.emplace(key, ev.time).second) {
        switch (ev.target) {
          case FaultTarget::Switch: ++rec.switches_failed; break;
          case FaultTarget::Server: ++rec.servers_failed; break;
          case FaultTarget::Link: ++rec.links_failed; break;
          case FaultTarget::Controller: break;  // unreachable (skipped above)
        }
      }
    } else {
      const auto it = down_since.find(key);
      if (it != down_since.end()) {
        rec.unavailable_seconds += ev.time - it->second;
        down_since.erase(it);
      }
    }
  }
  for (const auto& [key, since] : down_since) {
    if (end > since) rec.unavailable_seconds += end - since;
  }
}

void account_gray_plan(const FaultPlan& plan, double end, GrayStats& gray) {
  std::map<std::tuple<int, std::uint32_t, std::uint32_t>, double> degraded_since;
  for (const FaultEvent& ev : plan.events()) {
    if (ev.time > end) break;
    if (ev.kind != FaultKind::Degrade && ev.kind != FaultKind::Restore) continue;
    ++gray.gray_events;
    const auto key = std::make_tuple(
        static_cast<int>(ev.target), ev.node.value(),
        ev.peer.valid() ? ev.peer.value() : 0xFFFFFFFFu);
    if (ev.kind == FaultKind::Degrade) {
      if (degraded_since.emplace(key, ev.time).second) ++gray.degradations;
    } else {
      const auto it = degraded_since.find(key);
      if (it != degraded_since.end()) {
        gray.degraded_seconds += ev.time - it->second;
        degraded_since.erase(it);
      }
    }
  }
  for (const auto& [key, since] : degraded_since) {
    if (end > since) gray.degraded_seconds += end - since;
  }
}

void account_domain_plan(const FaultPlan& plan, double end,
                         FaultDomainStats& fd) {
  std::set<std::pair<std::uint32_t, double>> crashes;
  for (const FaultEvent& ev : plan.events()) {
    if (ev.time > end) break;
    if (ev.kind != FaultKind::Fail || ev.domain == 0) continue;
    if (crashes.emplace(ev.domain, ev.time).second) ++fd.domain_faults;
  }
}

std::vector<char> reachable_component(const topo::Topology& topology,
                                      const FaultState& state) {
  const topo::Graph& graph = topology.graph();
  const std::size_t n = graph.node_count();
  std::vector<char> visited(n, 0);
  std::vector<char> best(n, 0);
  std::size_t best_size = 0;
  std::vector<NodeId> component;
  for (std::uint32_t start = 0; start < n; ++start) {
    const NodeId root{start};
    if (visited[start] || !state.node_up(root)) continue;
    component.clear();
    component.push_back(root);
    visited[start] = 1;
    for (std::size_t i = 0; i < component.size(); ++i) {
      const NodeId u = component[i];
      for (const topo::Edge& e : graph.neighbors(u)) {
        if (visited[e.to.index()]) continue;
        if (!state.node_up(e.to) || !state.link_up(u, e.to)) continue;
        visited[e.to.index()] = 1;
        component.push_back(e.to);
      }
    }
    // Strictly-greater keeps the earliest (lowest root id) component on ties.
    if (component.size() > best_size) {
      best_size = component.size();
      std::fill(best.begin(), best.end(), 0);
      for (NodeId u : component) best[u.index()] = 1;
    }
  }
  return best;
}

}  // namespace hit::sim
