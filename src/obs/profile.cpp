#include "obs/profile.h"

#include <algorithm>
#include <vector>

#include "obs/context.h"
#include "stats/table.h"

namespace hit::obs {

void Profiler::record(std::string_view name, std::uint64_t ns) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = scopes_.find(name);
  if (it == scopes_.end()) it = scopes_.emplace(std::string(name), ScopeStats{}).first;
  ScopeStats& s = it->second;
  ++s.count;
  s.total_ns += ns;
  s.max_ns = std::max(s.max_ns, ns);
}

std::map<std::string, Profiler::ScopeStats> Profiler::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {scopes_.begin(), scopes_.end()};
}

void Profiler::write_table(std::ostream& out) const {
  const auto scopes = snapshot();
  std::vector<std::pair<std::string, ScopeStats>> rows(scopes.begin(), scopes.end());
  std::stable_sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_ns > b.second.total_ns;
  });
  stats::Table table({"scope", "calls", "total (ms)", "mean (us)", "max (us)"});
  for (const auto& [name, s] : rows) {
    const double mean_us =
        s.count ? static_cast<double>(s.total_ns) / 1e3 / static_cast<double>(s.count)
                : 0.0;
    table.add_row({name, std::to_string(s.count),
                   stats::Table::num(static_cast<double>(s.total_ns) / 1e6, 3),
                   stats::Table::num(mean_us, 1),
                   stats::Table::num(static_cast<double>(s.max_ns) / 1e3, 1)});
  }
  out << table.render();
}

std::size_t Profiler::scope_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return scopes_.size();
}

ScopeTimer::ScopeTimer(const char* name) : ScopeTimer(current(), name) {}

ScopeTimer::ScopeTimer(const Context& ctx, const char* name)
    : ctx_(ctx.profiler() || ctx.trace() ? &ctx : nullptr), name_(name) {
  if (ctx_) start_ = std::chrono::steady_clock::now();
}

ScopeTimer::~ScopeTimer() {
  if (!ctx_) return;
  const auto end = std::chrono::steady_clock::now();
  const auto ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_).count());
  if (Profiler* p = ctx_->profiler()) p->record(name_, ns);
  if (TraceWriter* t = ctx_->trace()) {
    const double end_us = t->now_us();
    const double dur_us = static_cast<double>(ns) / 1e3;
    t->complete(name_, "phase", end_us - dur_us, dur_us, {},
                TraceWriter::kHostPid, 0);
  }
}

}  // namespace hit::obs
