#include "obs/trace.h"

#include <cmath>
#include <cstdio>

namespace hit::obs {
namespace {

void append_json_value(std::string& out, const stats::Cell& cell) {
  if (const auto* s = std::get_if<std::string>(&cell)) {
    out += '"';
    out += stats::JsonLinesWriter::escape(*s);
    out += '"';
    return;
  }
  if (const auto* d = std::get_if<double>(&cell)) {
    if (!std::isfinite(*d)) {
      out += "null";
      return;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", *d);
    out += buf;
    return;
  }
  out += std::to_string(std::get<std::int64_t>(cell));
}

void append_kv(std::string& out, std::string_view key, const stats::Cell& cell) {
  out += '"';
  out += stats::JsonLinesWriter::escape(key);
  out += "\":";
  append_json_value(out, cell);
}

std::string ts_text(double ts_us) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", ts_us);
  return buf;
}

/// Common body: name/cat/ph/ts[/dur]/pid/tid/args.  `scope` adds the
/// instant-event scope field.
std::string event_body(std::string_view name, std::string_view cat, char ph,
                       double ts_us, const double* dur_us,
                       const TraceWriter::Args& args, int pid, int tid,
                       bool instant_scope) {
  std::string body;
  body.reserve(96);
  append_kv(body, "name", std::string(name));
  body += ',';
  append_kv(body, "cat", std::string(cat));
  body += ",\"ph\":\"";
  body += ph;
  body += "\",\"ts\":";
  body += ts_text(ts_us);
  if (dur_us) {
    body += ",\"dur\":";
    body += ts_text(*dur_us);
  }
  if (instant_scope) body += ",\"s\":\"t\"";
  body += ",\"pid\":";
  body += std::to_string(pid);
  body += ",\"tid\":";
  body += std::to_string(tid);
  if (!args.empty()) {
    body += ",\"args\":{";
    bool first = true;
    for (const auto& [k, v] : args) {
      if (!first) body += ',';
      first = false;
      append_kv(body, k, v);
    }
    body += '}';
  }
  return body;
}

}  // namespace

TraceWriter::TraceWriter(std::ostream& out, std::ostream* events_out)
    : out_(&out), jsonl_(events_out), epoch_(std::chrono::steady_clock::now()) {
  *out_ << "[\n";
}

TraceWriter::~TraceWriter() { finish(); }

void TraceWriter::emit(std::string_view body) {
  std::lock_guard<std::mutex> lock(mu_);
  if (finished_) return;
  if (events_ > 0) *out_ << ",\n";
  *out_ << '{' << body << '}';
  if (jsonl_) *jsonl_ << '{' << body << "}\n";
  ++events_;
}

void TraceWriter::complete(std::string_view name, std::string_view cat,
                           double ts_us, double dur_us, const Args& args,
                           int pid, int tid) {
  emit(event_body(name, cat, 'X', ts_us, &dur_us, args, pid, tid, false));
}

void TraceWriter::instant(std::string_view name, std::string_view cat,
                          double ts_us, const Args& args, int pid, int tid) {
  emit(event_body(name, cat, 'i', ts_us, nullptr, args, pid, tid, true));
}

void TraceWriter::begin(std::string_view name, std::string_view cat,
                        double ts_us, const Args& args, int pid, int tid) {
  emit(event_body(name, cat, 'B', ts_us, nullptr, args, pid, tid, false));
}

void TraceWriter::end(double ts_us, int pid, int tid) {
  emit(event_body("", "", 'E', ts_us, nullptr, {}, pid, tid, false));
}

void TraceWriter::name_process(int pid, std::string_view name) {
  std::string body;
  append_kv(body, "name", std::string("process_name"));
  body += ",\"ph\":\"M\",\"pid\":";
  body += std::to_string(pid);
  body += ",\"tid\":0,\"args\":{";
  append_kv(body, "name", std::string(name));
  body += '}';
  emit(body);
}

void TraceWriter::name_thread(int pid, int tid, std::string_view name) {
  std::string body;
  append_kv(body, "name", std::string("thread_name"));
  body += ",\"ph\":\"M\",\"pid\":";
  body += std::to_string(pid);
  body += ",\"tid\":";
  body += std::to_string(tid);
  body += ",\"args\":{";
  append_kv(body, "name", std::string(name));
  body += '}';
  emit(body);
}

double TraceWriter::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::size_t TraceWriter::events_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

void TraceWriter::finish() {
  std::lock_guard<std::mutex> lock(mu_);
  if (finished_) return;
  finished_ = true;
  *out_ << "\n]\n";
  out_->flush();
  if (jsonl_) jsonl_->flush();
}

}  // namespace hit::obs
