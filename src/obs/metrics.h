// Metrics registry — pillar 1 of the hit::obs observability layer.
//
// Counters, gauges and fixed-bucket histograms, registered by name (with
// optional `{key=value,...}` tags folded into the name).  Registration takes
// a mutex once; after that every instrument is a handful of relaxed atomics,
// so hot paths cache the reference and bump it lock-free.  Snapshots read
// the same atomics without pausing writers and serialize through the
// `stats::` writers (JSON Lines or CSV), which already map non-finite
// doubles to null / empty cells.
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <mutex>
#include <memory>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "stats/export.h"

namespace hit::obs {

namespace detail {
/// Relaxed add for atomic<double> without relying on C++20 fetch_add
/// support for floating point in every libstdc++.
inline void atomic_add(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}
inline void atomic_min(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
inline void atomic_max(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
}  // namespace detail

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins scalar (queue depths, utilizations, clocks).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double v) noexcept { detail::atomic_add(value_, v); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i], with
/// an implicit overflow bucket.  Bounds are fixed at registration.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double min() const noexcept;  ///< NaN when empty
  [[nodiscard]] double max() const noexcept;  ///< NaN when empty
  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// Cumulative count of observations <= bounds[i]; the last entry (index
  /// bounds().size()) is the total count.
  [[nodiscard]] std::vector<std::uint64_t> cumulative() const;

  /// Estimated q-quantile (q in [0, 1]) by linear interpolation inside the
  /// bucket holding the target rank; clamped to the observed [min, max] so
  /// the estimate never leaves the data range.  NaN when empty.  The
  /// estimate is exact at the bucket edges and deterministic, which is what
  /// the campaign ledger needs to diff p95s across runs.
  [[nodiscard]] double quantile(double q) const;

  /// Buckets for durations in seconds: 1us .. ~100s, x10 per decade with a
  /// 1/3 split.
  [[nodiscard]] static std::vector<double> time_bounds();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_.size()+1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// One serialized metric (histograms flatten their buckets separately).
struct MetricSample {
  std::string name;
  std::string kind;  ///< "counter" | "gauge" | "histogram"
  double value = 0.0;          ///< counter/gauge value; histogram mean
  std::uint64_t count = 0;     ///< histogram observation count
  double sum = 0.0, min = 0.0, max = 0.0;  ///< histogram aggregates
  double p50 = 0.0, p95 = 0.0;  ///< histogram quantile estimates (NaN-safe)
};

/// One metric's movement between two snapshots (see diff_snapshots).
struct SampleDelta {
  std::string name;
  std::string kind;
  double before = 0.0;  ///< value in the first snapshot (0 when absent)
  double after = 0.0;   ///< value in the second snapshot (0 when absent)
  std::uint64_t count_before = 0, count_after = 0;  ///< histogram/counter counts
  bool in_before = false, in_after = false;

  [[nodiscard]] double delta() const noexcept { return after - before; }
};

/// Merge-join two name-sorted snapshots (Registry::snapshot output) into
/// per-metric deltas.  Metrics present in only one side appear with the
/// other side zeroed and the matching in_* flag false.  The campaign
/// what-if replay diffs a baseline cell's registry against its
/// counterfactual this way.
[[nodiscard]] std::vector<SampleDelta> diff_snapshots(
    const std::vector<MetricSample>& before,
    const std::vector<MetricSample>& after);

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Look up or create.  Returned references stay valid for the registry's
  /// lifetime; cache them outside hot loops.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` applies on first registration only (empty = time_bounds()).
  Histogram& histogram(std::string_view name,
                       std::span<const double> bounds = {});

  /// Fold tags into a registry key: `tagged("flows", {{"job","3"}})` ->
  /// "flows{job=3}".  Tags are emitted in the given order.
  [[nodiscard]] static std::string tagged(
      std::string_view name,
      std::initializer_list<std::pair<std::string_view, std::string_view>> tags);

  /// Deterministic (name-sorted) point-in-time view.
  [[nodiscard]] std::vector<MetricSample> snapshot() const;

  /// JSON Lines: one object per metric plus one per histogram bucket
  /// (`kind:"histogram_bucket"`, cumulative `count` up to `le`).  `stamp`
  /// fields are prepended to every record (bench run manifests).
  void write_jsonl(
      std::ostream& out,
      std::span<const std::pair<std::string, stats::Cell>> stamp = {}) const;

  /// CSV: name,kind,value,count,sum,min,max (histogram buckets omitted).
  void write_csv(std::ostream& out) const;

  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mu_;  // guards the maps, not the instruments
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace hit::obs
