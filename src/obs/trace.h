// Structured decision tracing — pillar 2 of hit::obs.
//
// Emits Chrome trace-event JSON (the `[{"ph":"B"/"E"/"X"/"i",...}]` array
// format that chrome://tracing and Perfetto load directly) and, optionally,
// the same events as a flat JSON Lines stream for ad-hoc pipelines
// (jq/pandas).  Two process lanes keep the clock domains honest: pid 1
// carries *simulated* time (seconds scaled to trace microseconds), pid 2
// carries host wall-clock time (profiling scopes, controller operations).
// Thread-safe; events carry causal ids (job/task/flow) in `args`.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "stats/export.h"

namespace hit::obs {

class TraceWriter {
 public:
  /// Trace lanes.  kSimPid events timestamp in simulated microseconds;
  /// kHostPid events in wall-clock microseconds since construction.
  static constexpr int kSimPid = 1;
  static constexpr int kHostPid = 2;

  using Args = std::vector<std::pair<std::string, stats::Cell>>;

  /// `out` receives the Chrome trace array; `events_out` (optional) the
  /// JSONL mirror.  Both must outlive the writer.
  explicit TraceWriter(std::ostream& out, std::ostream* events_out = nullptr);
  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Complete event (ph X): a [ts, ts+dur] span.
  void complete(std::string_view name, std::string_view cat, double ts_us,
                double dur_us, const Args& args = {}, int pid = kSimPid,
                int tid = 0);
  /// Instant event (ph i, scope "t").
  void instant(std::string_view name, std::string_view cat, double ts_us,
               const Args& args = {}, int pid = kSimPid, int tid = 0);
  /// Begin/end pair (ph B / ph E) for nesting that is inconvenient as X.
  void begin(std::string_view name, std::string_view cat, double ts_us,
             const Args& args = {}, int pid = kSimPid, int tid = 0);
  void end(double ts_us, int pid = kSimPid, int tid = 0);

  /// Metadata (ph M): name a pid / tid lane in the viewer.
  void name_process(int pid, std::string_view name);
  void name_thread(int pid, int tid, std::string_view name);

  /// Wall-clock microseconds since construction (kHostPid timestamps).
  [[nodiscard]] double now_us() const;

  [[nodiscard]] std::size_t events_written() const;

  /// Write the closing bracket.  Idempotent; also run by the destructor.
  void finish();

 private:
  void emit(std::string_view body);

  mutable std::mutex mu_;
  std::ostream* out_;
  std::ostream* jsonl_;
  std::chrono::steady_clock::time_point epoch_;
  std::size_t events_ = 0;
  bool finished_ = false;
};

}  // namespace hit::obs
