// Scoped phase profiling — pillar 3 of hit::obs.
//
//   void StableMatcher::match(...) {
//     HIT_PROF_SCOPE("core.stable_matching.match");
//     ...
//   }
//
// The macro opens an RAII timer against the *ambient* obs::Context (the
// thread-local installed by obs::Bind — see context.h), so deep call trees
// need no plumbing.  When no context is bound (the default), the timer is a
// thread-local read and a branch: cheap enough for every hot phase.  When
// profiling is enabled, each scope accumulates {count, total, max} wall
// time, and when tracing is enabled too, every scope emits a Chrome `ph:X`
// span on the host-clock lane.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

namespace hit::obs {

class Context;

class Profiler {
 public:
  struct ScopeStats {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;
  };

  void record(std::string_view name, std::uint64_t ns);

  /// Name-sorted copy of the accumulated scopes.
  [[nodiscard]] std::map<std::string, ScopeStats> snapshot() const;

  /// Human table: scope, calls, total ms, mean us, max us (total-descending).
  void write_table(std::ostream& out) const;

  [[nodiscard]] std::size_t scope_count() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, ScopeStats, std::less<>> scopes_;
};

/// RAII scope timer.  The single-argument form (and HIT_PROF_SCOPE) binds to
/// the ambient thread-local context; the two-argument form pins a context.
/// `name` must outlive the scope (string literals).
class ScopeTimer {
 public:
  explicit ScopeTimer(const char* name);
  ScopeTimer(const Context& ctx, const char* name);
  ~ScopeTimer();
  ScopeTimer(const ScopeTimer&) = delete;
  ScopeTimer& operator=(const ScopeTimer&) = delete;

 private:
  const Context* ctx_;  ///< nullptr when disabled: destructor is a no-op
  const char* name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace hit::obs

#define HIT_OBS_CONCAT_INNER(a, b) a##b
#define HIT_OBS_CONCAT(a, b) HIT_OBS_CONCAT_INNER(a, b)

/// Time the enclosing scope under `name`; one arg (ambient context) or two
/// (explicit context first).
#define HIT_PROF_SCOPE(...) \
  ::hit::obs::ScopeTimer HIT_OBS_CONCAT(hit_prof_scope_, __LINE__){__VA_ARGS__}
