#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace hit::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: bounds must be non-empty");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bounds must be sorted");
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(sum_, v);
  detail::atomic_min(min_, v);
  detail::atomic_max(max_, v);
}

double Histogram::min() const noexcept {
  const double v = min_.load(std::memory_order_relaxed);
  return std::isfinite(v) ? v : std::numeric_limits<double>::quiet_NaN();
}

double Histogram::max() const noexcept {
  const double v = max_.load(std::memory_order_relaxed);
  return std::isfinite(v) ? v : std::numeric_limits<double>::quiet_NaN();
}

std::vector<std::uint64_t> Histogram::cumulative() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1, 0);
  std::uint64_t running = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    running += buckets_[i].load(std::memory_order_relaxed);
    out[i] = running;
  }
  return out;
}

double Histogram::quantile(double q) const {
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("Histogram::quantile: q must be in [0, 1]");
  }
  const std::vector<std::uint64_t> cum = cumulative();
  const std::uint64_t total = cum.back();
  if (total == 0) return std::numeric_limits<double>::quiet_NaN();
  const double lo_obs = min();
  const double hi_obs = max();
  // Rank of the target observation (1-based), linearly placed in the bucket
  // that first reaches it.
  const double rank = q * static_cast<double>(total);
  std::size_t idx = 0;
  while (idx < cum.size() - 1 &&
         static_cast<double>(cum[idx]) < rank) {
    ++idx;
  }
  const std::uint64_t below = idx == 0 ? 0 : cum[idx - 1];
  const std::uint64_t in_bucket = cum[idx] - below;
  double lo = idx == 0 ? lo_obs : bounds_[idx - 1];
  double hi = idx < bounds_.size() ? bounds_[idx] : hi_obs;
  lo = std::max(lo, lo_obs);
  hi = std::min(hi, hi_obs);
  if (hi <= lo || in_bucket == 0) return std::min(std::max(lo, lo_obs), hi_obs);
  const double frac =
      (rank - static_cast<double>(below)) / static_cast<double>(in_bucket);
  const double v = lo + frac * (hi - lo);
  return std::min(std::max(v, lo_obs), hi_obs);
}

std::vector<double> Histogram::time_bounds() {
  std::vector<double> bounds;
  for (double decade = 1e-6; decade < 200.0; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(decade * 3.0);
  }
  return bounds;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>())
              .first->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::span<const double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  std::vector<double> b = bounds.empty()
                              ? Histogram::time_bounds()
                              : std::vector<double>(bounds.begin(), bounds.end());
  return *histograms_
              .emplace(std::string(name), std::make_unique<Histogram>(std::move(b)))
              .first->second;
}

std::string Registry::tagged(
    std::string_view name,
    std::initializer_list<std::pair<std::string_view, std::string_view>> tags) {
  std::string out(name);
  if (tags.size() == 0) return out;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : tags) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += '=';
    out += v;
  }
  out += '}';
  return out;
}

std::vector<SampleDelta> diff_snapshots(const std::vector<MetricSample>& before,
                                        const std::vector<MetricSample>& after) {
  std::vector<SampleDelta> out;
  out.reserve(std::max(before.size(), after.size()));
  std::size_t i = 0, j = 0;
  const auto from_before = [](const MetricSample& s) {
    SampleDelta d;
    d.name = s.name;
    d.kind = s.kind;
    d.before = s.value;
    d.count_before = s.count;
    d.in_before = true;
    return d;
  };
  while (i < before.size() || j < after.size()) {
    if (j == after.size() ||
        (i < before.size() && before[i].name < after[j].name)) {
      out.push_back(from_before(before[i++]));
    } else if (i == before.size() || after[j].name < before[i].name) {
      SampleDelta d;
      d.name = after[j].name;
      d.kind = after[j].kind;
      d.after = after[j].value;
      d.count_after = after[j].count;
      d.in_after = true;
      out.push_back(std::move(d));
      ++j;
    } else {
      SampleDelta d = from_before(before[i++]);
      d.after = after[j].value;
      d.count_after = after[j].count;
      d.in_after = true;
      ++j;
      out.push_back(std::move(d));
    }
  }
  return out;
}

std::vector<MetricSample> Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricSample s;
    s.name = name;
    s.kind = "counter";
    s.count = c->value();
    s.value = static_cast<double>(c->value());
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    MetricSample s;
    s.name = name;
    s.kind = "gauge";
    s.value = g->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    MetricSample s;
    s.name = name;
    s.kind = "histogram";
    s.count = h->count();
    s.sum = h->sum();
    s.min = h->min();
    s.max = h->max();
    s.value = s.count > 0 ? s.sum / static_cast<double>(s.count)
                          : std::numeric_limits<double>::quiet_NaN();
    s.p50 = h->quantile(0.5);
    s.p95 = h->quantile(0.95);
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

void Registry::write_jsonl(
    std::ostream& out,
    std::span<const std::pair<std::string, stats::Cell>> stamp) const {
  stats::JsonLinesWriter json(out);
  const auto record = [&](std::vector<std::pair<std::string, stats::Cell>> fields) {
    std::vector<std::pair<std::string, stats::Cell>> all(stamp.begin(), stamp.end());
    all.insert(all.end(), std::make_move_iterator(fields.begin()),
               std::make_move_iterator(fields.end()));
    json.record(all);
  };
  for (const MetricSample& s : snapshot()) {
    if (s.kind == "histogram") {
      record({{"metric", s.name},
              {"kind", s.kind},
              {"count", std::int64_t(s.count)},
              {"sum", s.sum},
              {"mean", s.value},
              {"min", s.min},
              {"max", s.max},
              {"p50", s.p50},
              {"p95", s.p95}});
    } else {
      record({{"metric", s.name}, {"kind", s.kind}, {"value", s.value}});
    }
  }
  // Histogram buckets, Prometheus-style cumulative counts (le = +inf last,
  // serialized as null by the writer's non-finite handling).
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, h] : histograms_) {
    const std::vector<std::uint64_t> cum = h->cumulative();
    for (std::size_t i = 0; i < cum.size(); ++i) {
      const double le = i < h->bounds().size()
                            ? h->bounds()[i]
                            : std::numeric_limits<double>::infinity();
      record({{"metric", name},
              {"kind", std::string("histogram_bucket")},
              {"le", le},
              {"count", std::int64_t(cum[i])}});
    }
  }
}

void Registry::write_csv(std::ostream& out) const {
  stats::CsvWriter csv(out, {"name", "kind", "value", "count", "sum", "min", "max"});
  for (const MetricSample& s : snapshot()) {
    csv.row({s.name, s.kind, s.value, std::int64_t(s.count), s.sum, s.min, s.max});
  }
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

}  // namespace hit::obs
