// obs::Context — the single handle the instrumented layers share.
//
// A Context bundles the three observability pillars (metrics Registry,
// TraceWriter, Profiler), any of which may be absent.  The default-built
// Context is the null object: `enabled()` is false and every helper below
// degenerates to a pointer test, so instrumentation stays in the hot paths
// unconditionally at near-zero disabled cost.
//
// Wiring pattern: owners (hitsim, bench harnesses, tests) build the pillars
// and a Context over them, hand `&ctx` to HitScheduler / NetworkController /
// the simulators, and those entry points install it as the *ambient*
// thread-local via obs::Bind so that deep phases (preference matrix, stable
// matching, route search) observe through HIT_PROF_SCOPE / obs::count
// without any parameter plumbing.
#pragma once

#include <cstdint>
#include <string_view>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace hit::obs {

class Context {
 public:
  /// Null object: nothing attached, everything disabled.
  constexpr Context() = default;
  Context(Registry* metrics, TraceWriter* trace, Profiler* profiler)
      : metrics_(metrics), trace_(trace), profiler_(profiler) {}

  [[nodiscard]] bool enabled() const noexcept {
    return metrics_ || trace_ || profiler_;
  }
  [[nodiscard]] Registry* metrics() const noexcept { return metrics_; }
  [[nodiscard]] TraceWriter* trace() const noexcept { return trace_; }
  [[nodiscard]] Profiler* profiler() const noexcept { return profiler_; }

 private:
  Registry* metrics_ = nullptr;
  TraceWriter* trace_ = nullptr;
  Profiler* profiler_ = nullptr;
};

/// The shared disabled context (null object).
inline const Context& null_context() {
  static const Context ctx;
  return ctx;
}

namespace detail {
inline const Context*& tls_slot() {
  thread_local const Context* slot = &null_context();
  return slot;
}
}  // namespace detail

/// The ambient context of this thread (never null; defaults to the null
/// context).
inline const Context& current() { return *detail::tls_slot(); }

/// RAII: install `ctx` as the ambient context for this thread; restore the
/// previous one on destruction.  A null pointer leaves the ambient context
/// untouched, so pass-through wiring costs nothing.
class Bind {
 public:
  explicit Bind(const Context* ctx) : prev_(detail::tls_slot()) {
    if (ctx) detail::tls_slot() = ctx;
  }
  explicit Bind(const Context& ctx) : Bind(&ctx) {}
  ~Bind() { detail::tls_slot() = prev_; }
  Bind(const Bind&) = delete;
  Bind& operator=(const Bind&) = delete;

 private:
  const Context* prev_;
};

// ---- ambient-context fast paths -----------------------------------------
// Each is a thread-local read + null check when observability is off.

inline void count(std::string_view name, std::uint64_t n = 1) {
  if (Registry* r = current().metrics()) r->counter(name).add(n);
}

inline void gauge_set(std::string_view name, double v) {
  if (Registry* r = current().metrics()) r->gauge(name).set(v);
}

inline void observe(std::string_view name, double v) {
  if (Registry* r = current().metrics()) r->histogram(name).observe(v);
}

/// Instant event on the simulated-time lane (`sim_seconds` scaled to us).
inline void sim_instant(std::string_view name, std::string_view cat,
                        double sim_seconds, const TraceWriter::Args& args = {},
                        int tid = 0) {
  if (TraceWriter* t = current().trace()) {
    t->instant(name, cat, sim_seconds * 1e6, args, TraceWriter::kSimPid, tid);
  }
}

/// Span on the simulated-time lane.
inline void sim_span(std::string_view name, std::string_view cat,
                     double start_seconds, double end_seconds,
                     const TraceWriter::Args& args = {}, int tid = 0) {
  if (TraceWriter* t = current().trace()) {
    t->complete(name, cat, start_seconds * 1e6,
                (end_seconds - start_seconds) * 1e6, args,
                TraceWriter::kSimPid, tid);
  }
}

/// Instant event on the host wall-clock lane (controller operations).
inline void host_instant(std::string_view name, std::string_view cat,
                         const TraceWriter::Args& args = {}, int tid = 0) {
  if (TraceWriter* t = current().trace()) {
    t->instant(name, cat, t->now_us(), args, TraceWriter::kHostPid, tid);
  }
}

}  // namespace hit::obs
