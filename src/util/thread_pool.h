// Fixed-size worker thread pool for embarrassingly parallel experiment sweeps.
//
// Benchmark harnesses fan out independent (seeded) simulation replicas over
// this pool.  Determinism is preserved because each submitted task carries its
// own forked Rng; only wall-clock interleaving varies between runs.
//
// Design follows CppCoreGuidelines CP.* : RAII join in the destructor, no
// detached threads, futures for result hand-off, exceptions propagate through
// the future.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace hit {

class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Submit a callable; returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Run `fn(i)` for i in [0, n), blocking until all complete.
  /// Exceptions from any invocation are rethrown (first one wins).
  template <typename F>
  void parallel_for(std::size_t n, F&& fn) {
    std::vector<std::future<void>> futures;
    futures.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      futures.push_back(submit([&fn, i] { fn(i); }));
    }
    for (auto& f : futures) f.get();
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace hit
