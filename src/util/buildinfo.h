// Provenance stamps for result files: which commit and which machine
// produced the numbers.  Committed BENCH_*.json snapshots carry these so a
// regression ledger can say exactly what it is comparing against.
#pragma once

#include <string>

namespace hit::util {

/// Short git revision the binaries were configured from ("unknown" outside a
/// git checkout).  Captured at CMake configure time — reconfigure to
/// refresh after committing.
[[nodiscard]] const char* git_sha();

/// CMAKE_BUILD_TYPE the library was compiled under ("unknown" when absent).
[[nodiscard]] const char* build_type();

/// Hostname of the running machine ("unknown" when the lookup fails).
[[nodiscard]] std::string hostname();

}  // namespace hit::util
