#include "util/buildinfo.h"

#include <unistd.h>

#include <climits>

#ifndef HITSCHED_GIT_SHA
#define HITSCHED_GIT_SHA "unknown"
#endif
#ifndef HITSCHED_BUILD_TYPE
#define HITSCHED_BUILD_TYPE "unknown"
#endif

namespace hit::util {

const char* git_sha() { return HITSCHED_GIT_SHA; }

const char* build_type() { return HITSCHED_BUILD_TYPE; }

std::string hostname() {
  char buf[HOST_NAME_MAX + 1] = {};
  if (::gethostname(buf, sizeof buf - 1) != 0 || buf[0] == '\0') {
    return "unknown";
  }
  return buf;
}

}  // namespace hit::util
