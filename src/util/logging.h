// Minimal leveled logging.
//
// HitSched libraries never print to stdout on their own; benchmark harnesses
// and examples own stdout for result tables.  Diagnostics go through this
// logger to stderr and are silenced by default below `Level::Warn`.
//
// The initial threshold honors the HIT_LOG_LEVEL environment variable
// (trace / debug / info / warn / error / off, case-insensitive), read once at
// first use; an unrecognized value warns on stderr and keeps the Warn
// default.  `set_level` still overrides at runtime.
#pragma once

#include <cstdlib>
#include <iostream>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace hit::log {

enum class Level : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Parse a level name (case-insensitive).  Accepts the enum names plus the
/// common aliases "warning" and "none"; anything else is nullopt.
inline std::optional<Level> parse_level(std::string_view text) {
  std::string lower(text);
  for (char& c : lower) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  if (lower == "trace") return Level::Trace;
  if (lower == "debug") return Level::Debug;
  if (lower == "info") return Level::Info;
  if (lower == "warn" || lower == "warning") return Level::Warn;
  if (lower == "error") return Level::Error;
  if (lower == "off" || lower == "none") return Level::Off;
  return std::nullopt;
}

namespace detail {
/// Threshold from HIT_LOG_LEVEL, or Warn.  A bad value warns once here —
/// deliberately not through Log (which would recurse into threshold()).
inline Level initial_level() {
  const char* env = std::getenv("HIT_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return Level::Warn;
  if (const auto parsed = parse_level(env)) return *parsed;
  std::cerr << "WARN  [log] HIT_LOG_LEVEL=\"" << env
            << "\" not recognized (want trace/debug/info/warn/error/off); "
               "keeping warn\n";
  return Level::Warn;
}
}  // namespace detail

/// Global log threshold; messages below it are dropped.  Initialized once
/// from HIT_LOG_LEVEL (see above).
inline Level& threshold() {
  static Level level = detail::initial_level();
  return level;
}

inline void set_level(Level level) { threshold() = level; }

inline std::string_view name(Level level) {
  switch (level) {
    case Level::Trace: return "TRACE";
    case Level::Debug: return "DEBUG";
    case Level::Info: return "INFO ";
    case Level::Warn: return "WARN ";
    case Level::Error: return "ERROR";
    default: return "OFF  ";
  }
}

namespace detail {
inline std::mutex& mutex() {
  static std::mutex m;
  return m;
}
}  // namespace detail

/// RAII line builder: `Log(Level::Info) << "x=" << x;` emits one line.
class Log {
 public:
  explicit Log(Level level, std::string_view tag = {}) : level_(level) {
    enabled_ = level >= threshold();
    if (enabled_ && !tag.empty()) stream_ << "[" << tag << "] ";
  }

  Log(const Log&) = delete;
  Log& operator=(const Log&) = delete;

  ~Log() {
    if (!enabled_) return;
    std::lock_guard<std::mutex> lock(detail::mutex());
    std::cerr << name(level_) << " " << stream_.str() << '\n';
  }

  template <typename T>
  Log& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  Level level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace hit::log

// Each macro accepts an optional tag: HIT_LOG_INFO() or
// HIT_LOG_INFO("controller").  The tag reaches log::Log's tag parameter and
// prefixes the line as "[tag] ", making subsystem output greppable.
#define HIT_LOG_TRACE(...) ::hit::log::Log(::hit::log::Level::Trace __VA_OPT__(, __VA_ARGS__))
#define HIT_LOG_DEBUG(...) ::hit::log::Log(::hit::log::Level::Debug __VA_OPT__(, __VA_ARGS__))
#define HIT_LOG_INFO(...) ::hit::log::Log(::hit::log::Level::Info __VA_OPT__(, __VA_ARGS__))
#define HIT_LOG_WARN(...) ::hit::log::Log(::hit::log::Level::Warn __VA_OPT__(, __VA_ARGS__))
#define HIT_LOG_ERROR(...) ::hit::log::Log(::hit::log::Level::Error __VA_OPT__(, __VA_ARGS__))
