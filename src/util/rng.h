// Deterministic random number generation.
//
// Every stochastic component in HitSched (workload sampling, probabilistic
// scheduling, failure injection, simulation jitter) draws from an explicitly
// seeded `Rng`.  Reproducibility is a hard requirement: the same seed must
// produce bit-identical experiment output across runs, which is what lets the
// benchmark harnesses regenerate the paper's figures deterministically.
#pragma once

#include <cmath>
#include <cstdint>
#include <random>
#include <stdexcept>
#include <vector>

namespace hit {

/// Thin wrapper over std::mt19937_64 with convenience draws.
/// Not thread-safe; use one Rng per thread (see Rng::fork).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Derive an independent child stream.  Uses SplitMix64 on (seed, salt) so
  /// forks are stable regardless of how much the parent has been consumed.
  [[nodiscard]] Rng fork(std::uint64_t salt) const {
    std::uint64_t z = seed_ + 0x9E3779B97F4A7C15ull * (salt + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return Rng(z ^ (z >> 31));
  }

  /// Uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument("uniform_int: lo > hi");
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform index in [0, n).
  [[nodiscard]] std::size_t uniform_index(std::size_t n) {
    if (n == 0) throw std::invalid_argument("uniform_index: empty range");
    return static_cast<std::size_t>(
        std::uniform_int_distribution<std::uint64_t>(0, n - 1)(engine_));
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  [[nodiscard]] bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  [[nodiscard]] double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Log-normal draw with the given *linear-space* median and sigma.
  [[nodiscard]] double lognormal_median(double median, double sigma) {
    return std::lognormal_distribution<double>(std::log(median), sigma)(engine_);
  }

  [[nodiscard]] double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Draw an index from an explicit (unnormalized) weight vector.
  [[nodiscard]] std::size_t weighted_index(const std::vector<double>& weights) {
    if (weights.empty()) throw std::invalid_argument("weighted_index: empty weights");
    return std::discrete_distribution<std::size_t>(weights.begin(), weights.end())(engine_);
  }

  /// Zipf-like draw over [0, n) with exponent s (s = 0 -> uniform).
  /// Used to model skewed shuffle partitions.
  [[nodiscard]] std::size_t zipf(std::size_t n, double s) {
    if (n == 0) throw std::invalid_argument("zipf: empty range");
    std::vector<double> w(n);
    for (std::size_t i = 0; i < n; ++i) w[i] = 1.0 / std::pow(static_cast<double>(i + 1), s);
    return weighted_index(w);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[uniform_index(i)]);
    }
  }

  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace hit
