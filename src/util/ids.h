// Strong, zero-cost identifier types shared across all HitSched modules.
//
// Every entity in the system (servers, switches, containers, tasks, jobs,
// flows, policies) is referred to by a small integer handle into the owning
// registry.  Using distinct wrapper types instead of bare integers prevents
// the classic bug class of passing a container id where a server id is
// expected (C++ Core Guidelines P.1 / I.4: express ideas directly in code,
// make interfaces precisely and strongly typed).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace hit {

/// CRTP-free strongly typed id.  `Tag` is a phantom type; two ids with
/// different tags do not compare or convert.
template <typename Tag>
class Id {
 public:
  using value_type = std::uint32_t;

  /// Sentinel: "no entity".  Default-constructed ids are invalid.
  static constexpr value_type kInvalid = std::numeric_limits<value_type>::max();

  constexpr Id() noexcept : value_(kInvalid) {}
  constexpr explicit Id(value_type v) noexcept : value_(v) {}

  [[nodiscard]] constexpr value_type value() const noexcept { return value_; }
  [[nodiscard]] constexpr bool valid() const noexcept { return value_ != kInvalid; }
  [[nodiscard]] constexpr std::size_t index() const noexcept {
    return static_cast<std::size_t>(value_);
  }

  friend constexpr bool operator==(Id a, Id b) noexcept { return a.value_ == b.value_; }
  friend constexpr bool operator!=(Id a, Id b) noexcept { return a.value_ != b.value_; }
  friend constexpr bool operator<(Id a, Id b) noexcept { return a.value_ < b.value_; }
  friend constexpr bool operator>(Id a, Id b) noexcept { return a.value_ > b.value_; }
  friend constexpr bool operator<=(Id a, Id b) noexcept { return a.value_ <= b.value_; }
  friend constexpr bool operator>=(Id a, Id b) noexcept { return a.value_ >= b.value_; }

  friend std::ostream& operator<<(std::ostream& os, Id id) {
    if (!id.valid()) return os << "<invalid>";
    return os << id.value_;
  }

 private:
  value_type value_;
};

// Tag types.  Declaration-only; never instantiated.
struct NodeTag;       ///< any vertex in a topology graph (server or switch)
struct ServerTag;     ///< physical server (compute host)
struct SwitchTag;     ///< network switch
struct ContainerTag;  ///< YARN-style resource container
struct TaskTag;       ///< Map or Reduce task
struct JobTag;        ///< MapReduce job
struct FlowTag;       ///< shuffle traffic flow
struct PolicyTag;     ///< network traffic policy
struct CoflowTag;     ///< group of shuffle flows sharing a job wave

using NodeId = Id<NodeTag>;
using ServerId = Id<ServerTag>;
using SwitchId = Id<SwitchTag>;
using ContainerId = Id<ContainerTag>;
using TaskId = Id<TaskTag>;
using JobId = Id<JobTag>;
using FlowId = Id<FlowTag>;
using PolicyId = Id<PolicyTag>;
using CoflowId = Id<CoflowTag>;

}  // namespace hit

namespace std {
template <typename Tag>
struct hash<hit::Id<Tag>> {
  size_t operator()(hit::Id<Tag> id) const noexcept {
    return std::hash<typename hit::Id<Tag>::value_type>{}(id.value());
  }
};
}  // namespace std
