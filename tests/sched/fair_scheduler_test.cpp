#include "sched/fair_scheduler.h"

#include <gtest/gtest.h>

#include <map>

#include "test_helpers.h"

namespace hit::sched {
namespace {

TEST(FairScheduler, ValidAssignment) {
  auto world = test::small_tree_world();
  test::ProblemFixture fixture(*world, 3, 3, 1, 4.0);
  FairScheduler scheduler;
  Rng rng(1);
  const Assignment a = scheduler.schedule(fixture.problem, rng);
  EXPECT_NO_THROW(validate_assignment(fixture.problem, a));
  EXPECT_EQ(scheduler.name(), "Fair");
}

TEST(FairScheduler, InterleavesJobs) {
  // Two jobs, slots for only the first few tasks on the "best" servers:
  // fair sharing places job B's first task before job A's third.
  auto world = test::tiny_tree_world();  // 8 slots
  test::ProblemFixture fixture(*world, 2, 3, 1, 4.0);  // 2 jobs x 4 tasks

  FairScheduler scheduler;
  Rng rng(2);
  const Assignment a = scheduler.schedule(fixture.problem, rng);

  // Count placed tasks per job: both jobs fully placed.
  std::map<JobId, int> per_job;
  for (const TaskRef& t : fixture.problem.tasks) {
    ASSERT_TRUE(a.placement.count(t.id));
    ++per_job[t.job];
  }
  EXPECT_EQ(per_job.size(), 2u);
  for (const auto& [job, n] : per_job) EXPECT_EQ(n, 4);
}

TEST(FairScheduler, ThrowsWhenFull) {
  auto world = test::tiny_tree_world();
  test::ProblemFixture fixture(*world, 3, 3, 1, 4.0);  // 12 tasks > 8 slots
  FairScheduler scheduler;
  Rng rng(3);
  EXPECT_THROW((void)scheduler.schedule(fixture.problem, rng), std::runtime_error);
}

TEST(FairScheduler, MapsPreferReplicas) {
  auto world = test::small_tree_world();
  test::ProblemFixture fixture(*world, 1, 4, 1, 4.0);
  Rng hdfs_rng(4);
  const mr::BlockPlacement blocks(world->cluster, fixture.jobs, hdfs_rng, 3);
  fixture.problem.blocks = &blocks;

  FairScheduler scheduler;
  Rng rng(5);
  const Assignment a = scheduler.schedule(fixture.problem, rng);
  for (const TaskRef& t : fixture.problem.tasks) {
    if (t.kind != cluster::TaskKind::Map) continue;
    EXPECT_TRUE(blocks.local(t.id, a.placement.at(t.id)));
  }
}

}  // namespace
}  // namespace hit::sched
