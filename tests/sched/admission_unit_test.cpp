// Unit tests for the adaptive-admission subsystem: TenantRegistry DRF
// accounting, Jain's index, the AIMD controller's overload state machine,
// and the per-tenant queue cap/floor helpers.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sched/admission/aimd.h"
#include "sched/admission/tenant.h"

namespace hit::sched::admission {
namespace {

ResourceVector rv(double m, double r, double b) {
  ResourceVector v;
  v.map_slots = m;
  v.reduce_slots = r;
  v.shuffle_bw = b;
  return v;
}

TEST(TenantRegistryTest, UniformSpecsAndEntitlements) {
  TenantRegistry reg(TenantRegistry::uniform(4), rv(16, 16, 8));
  EXPECT_EQ(reg.size(), 4u);
  EXPECT_EQ(reg.spec(0).name, "tenant-0");
  EXPECT_EQ(reg.spec(3).name, "tenant-3");
  for (TenantId t = 0; t < 4; ++t) {
    EXPECT_DOUBLE_EQ(reg.entitlement(t), 0.25);
  }
}

TEST(TenantRegistryTest, WeightedEntitlements) {
  TenantRegistry reg({{"gold", 2.0}, {"bronze", 1.0}, {"bronze2", 1.0}},
                     rv(16, 16, 8));
  EXPECT_DOUBLE_EQ(reg.entitlement(0), 0.5);
  EXPECT_DOUBLE_EQ(reg.entitlement(1), 0.25);
}

TEST(TenantRegistryTest, DominantShareTracksMostContendedResource) {
  TenantRegistry reg(TenantRegistry::uniform(2), rv(16, 8, 10));
  reg.acquire(0, rv(4, 1, 1));  // map share 0.25, reduce 0.125, bw 0.1
  DrfShare s = reg.share(0);
  EXPECT_DOUBLE_EQ(s.map, 0.25);
  EXPECT_EQ(s.resource, DominantResource::MapSlots);
  EXPECT_DOUBLE_EQ(s.dominant, 0.25);  // equal weights: no adjustment

  reg.acquire(0, rv(0, 0, 4));  // bw share now 0.5 and dominant
  s = reg.share(0);
  EXPECT_EQ(s.resource, DominantResource::ShuffleBw);
  EXPECT_DOUBLE_EQ(s.dominant, 0.5);
}

TEST(TenantRegistryTest, OveruseIsOneAtTheWeightedFairPoint) {
  // Two equal tenants on 16 map slots: 8 slots each is the fair split.
  TenantRegistry reg(TenantRegistry::uniform(2), rv(16, 16, 8));
  reg.acquire(0, rv(8, 0, 0));
  EXPECT_NEAR(reg.overuse(0), 1.0, 1e-12);
  reg.acquire(0, rv(8, 0, 0));  // all 16: twice the fair portion
  EXPECT_NEAR(reg.overuse(0), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(reg.overuse(1), 0.0);
}

TEST(TenantRegistryTest, WeightScalesTheFairPoint) {
  // gold is entitled to 2/3 of 12 reduce slots = 8.
  TenantRegistry reg({{"gold", 2.0}, {"bronze", 1.0}}, rv(12, 12, 8));
  reg.acquire(0, rv(0, 8, 0));
  EXPECT_NEAR(reg.overuse(0), 1.0, 1e-12);
  reg.acquire(1, rv(0, 4, 0));  // bronze's fair portion is 4
  EXPECT_NEAR(reg.overuse(1), 1.0, 1e-12);
}

TEST(TenantRegistryTest, ReleaseClampsRoundingDust) {
  TenantRegistry reg(TenantRegistry::uniform(1), rv(4, 4, 4));
  reg.acquire(0, rv(1, 1, 1));
  reg.release(0, rv(1.0000001, 1, 1));
  EXPECT_GE(reg.held(0).map_slots, 0.0);
  EXPECT_DOUBLE_EQ(reg.share(0).map, 0.0);
}

TEST(TenantRegistryTest, RejectsInvalidConstruction) {
  EXPECT_THROW((void)TenantRegistry({}, rv(1, 1, 1)), std::invalid_argument);
  EXPECT_THROW((void)TenantRegistry(TenantRegistry::uniform(1), rv(0, 1, 1)),
               std::invalid_argument);
  EXPECT_THROW((void)TenantRegistry({{"t", 0.0}}, rv(1, 1, 1)),
               std::invalid_argument);
  EXPECT_THROW((void)TenantRegistry({{"t", -2.0}}, rv(1, 1, 1)),
               std::invalid_argument);
}

TEST(JainIndexTest, EvenAllocationsScoreOne) {
  EXPECT_DOUBLE_EQ(jain_index({3.0, 3.0, 3.0}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index({0.0, 0.0}), 1.0);  // vacuously fair
}

TEST(JainIndexTest, StarvationScoresOneOverN) {
  EXPECT_NEAR(jain_index({1.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
  const double mid = jain_index({4.0, 2.0, 1.0});
  EXPECT_GT(mid, 1.0 / 3.0);
  EXPECT_LT(mid, 1.0);
}

TEST(QueueCapTest, CapIsWeightProportionalAndAtLeastOne) {
  EXPECT_EQ(tenant_queue_cap(8.0, 0.5), 4u);
  EXPECT_EQ(tenant_queue_cap(8.0, 0.25), 2u);
  EXPECT_EQ(tenant_queue_cap(1.0, 0.1), 1u);   // never wedges shut
  EXPECT_EQ(tenant_queue_cap(10.0, 0.25), 2u);  // floors, not rounds
}

TEST(QueueCapTest, FloorIsASliceOfTheCap) {
  EXPECT_EQ(tenant_queue_floor(8.0, 0.5, 0.25), 1u);
  EXPECT_EQ(tenant_queue_floor(16.0, 0.5, 0.5), 4u);
  EXPECT_EQ(tenant_queue_floor(8.0, 0.5, 0.0), 0u);  // floor disabled
  EXPECT_GE(tenant_queue_floor(1.0, 0.01, 0.9), 1u);
}

AimdConfig fast_config() {
  AimdConfig c;
  c.epoch_s = 1.0;
  c.start_limit = 8.0;
  c.min_limit = 1.0;
  c.max_limit = 32.0;
  c.up_step = 1.0;
  c.down_factor = 0.5;
  c.overload_on = 2;
  c.overload_off = 2;
  c.wait_threshold_s = 10.0;
  return c;
}

AimdSample healthy_busy(std::size_t depth) {
  AimdSample s;
  s.queue_depth = depth;
  return s;
}

AimdSample overloaded_sample() {
  AimdSample s;
  s.sheds = 3;
  s.queue_depth = 20;
  return s;
}

TEST(AimdControllerTest, StartsAtStartLimit) {
  AimdController c(fast_config());
  EXPECT_DOUBLE_EQ(c.limit(), 8.0);
  EXPECT_EQ(c.queue_limit(), 8u);
  EXPECT_FALSE(c.overloaded());
  EXPECT_DOUBLE_EQ(c.pressure(), 0.0);
}

TEST(AimdControllerTest, AdditiveIncreaseOnlyWhenTheQueueExercisesTheLimit) {
  AimdController c(fast_config());
  c.feed(healthy_busy(/*depth=*/8));  // at the limit: probe upward
  EXPECT_DOUBLE_EQ(c.limit(), 9.0);
  c.feed(healthy_busy(/*depth=*/0));  // idle: hold, do not inflate
  EXPECT_DOUBLE_EQ(c.limit(), 9.0);
  EXPECT_EQ(c.stats().raises, 1u);
}

TEST(AimdControllerTest, HysteresisBeforeTheFirstCut) {
  AimdController c(fast_config());
  c.feed(overloaded_sample());  // 1 bad epoch: not yet overloaded
  EXPECT_FALSE(c.overloaded());
  EXPECT_DOUBLE_EQ(c.limit(), 8.0);
  c.feed(overloaded_sample());  // 2nd consecutive: flip + cut
  EXPECT_TRUE(c.overloaded());
  EXPECT_DOUBLE_EQ(c.limit(), 4.0);
  EXPECT_EQ(c.stats().cuts, 1u);
  EXPECT_GT(c.pressure(), 0.0);
}

TEST(AimdControllerTest, MultiplicativeDecreaseBottomsAtMinLimit) {
  AimdController c(fast_config());
  for (int i = 0; i < 10; ++i) c.feed(overloaded_sample());
  EXPECT_DOUBLE_EQ(c.limit(), 1.0);
  EXPECT_EQ(c.queue_limit(), 1u);
  EXPECT_DOUBLE_EQ(c.pressure(), 1.0);
  EXPECT_DOUBLE_EQ(c.stats().min_limit_seen, 1.0);
}

TEST(AimdControllerTest, RecoversAfterOverloadOffHealthyEpochs) {
  AimdController c(fast_config());
  for (int i = 0; i < 4; ++i) c.feed(overloaded_sample());
  ASSERT_TRUE(c.overloaded());
  const double cut_limit = c.limit();
  c.feed(healthy_busy(5));  // cool-down epoch 1: still overloaded, no cut
  EXPECT_TRUE(c.overloaded());
  EXPECT_DOUBLE_EQ(c.limit(), cut_limit);
  c.feed(healthy_busy(5));  // cool-down epoch 2: back to healthy
  EXPECT_FALSE(c.overloaded());
  c.feed(healthy_busy(static_cast<std::size_t>(c.limit())));
  EXPECT_GT(c.limit(), cut_limit);  // additive probing resumed
}

TEST(AimdControllerTest, WaitThresholdAloneMarksOverload) {
  AimdController c(fast_config());
  AimdSample slow;
  slow.max_queue_wait_s = 11.0;  // past wait_threshold_s, zero sheds
  slow.queue_depth = 4;
  c.feed(slow);
  c.feed(slow);
  EXPECT_TRUE(c.overloaded());
  EXPECT_LT(c.limit(), 8.0);
}

TEST(AimdControllerTest, LimitNeverLeavesConfiguredBounds) {
  AimdConfig cfg = fast_config();
  cfg.max_limit = 10.0;
  AimdController c(cfg);
  for (int i = 0; i < 20; ++i) {
    c.feed(healthy_busy(static_cast<std::size_t>(c.limit())));
  }
  EXPECT_DOUBLE_EQ(c.limit(), 10.0);
  EXPECT_DOUBLE_EQ(c.stats().max_limit_seen, 10.0);
  for (int i = 0; i < 20; ++i) c.feed(overloaded_sample());
  EXPECT_DOUBLE_EQ(c.limit(), 1.0);
  EXPECT_EQ(c.stats().epochs, 40u);
  EXPECT_TRUE(c.stats().any());
}

TEST(AimdControllerTest, RejectsInvalidConfig) {
  AimdConfig bad = fast_config();
  bad.down_factor = 1.5;
  EXPECT_THROW((void)AimdController(bad), std::invalid_argument);
  bad = fast_config();
  bad.min_limit = 0.0;
  EXPECT_THROW((void)AimdController(bad), std::invalid_argument);
  bad = fast_config();
  bad.quota_floor = 2.0;
  EXPECT_THROW((void)AimdController(bad), std::invalid_argument);
}

TEST(DominantResourceNameTest, Names) {
  EXPECT_STREQ(dominant_resource_name(DominantResource::MapSlots), "map-slots");
  EXPECT_STREQ(dominant_resource_name(DominantResource::ReduceSlots),
               "reduce-slots");
  EXPECT_STREQ(dominant_resource_name(DominantResource::ShuffleBw),
               "shuffle-bw");
}

}  // namespace
}  // namespace hit::sched::admission
