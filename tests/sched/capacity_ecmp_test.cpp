#include <gtest/gtest.h>

#include <set>

#include "sched/capacity_scheduler.h"
#include "test_helpers.h"

namespace hit::sched {
namespace {

TEST(CapacityEcmp, PoliciesValidAndPlacementUnchanged) {
  auto world = test::small_tree_world();
  test::ProblemFixture fixture(*world, 2, 4, 2, 8.0);
  CapacityScheduler plain(false);
  CapacityScheduler ecmp(true);
  Rng rng1(1), rng2(1);
  const Assignment a = plain.schedule(fixture.problem, rng1);
  const Assignment b = ecmp.schedule(fixture.problem, rng2);
  EXPECT_EQ(a.placement, b.placement);  // routing knob only
  EXPECT_NO_THROW(validate_assignment(fixture.problem, b));
  EXPECT_EQ(ecmp.name(), "Capacity+ECMP");
}

TEST(CapacityEcmp, SpreadsRoutesAcrossRedundantSwitches) {
  // Redundancy-3 tree: ECMP should touch more distinct cores than the
  // single-shortest-path baseline.
  auto world = std::make_unique<test::World>(
      topo::make_tree(topo::TreeConfig{2, 4, 3, 2}), cluster::Resource{2.0, 8.0});
  test::ProblemFixture fixture(*world, 2, 5, 3, 12.0);
  CapacityScheduler plain(false);
  CapacityScheduler ecmp(true);
  Rng rng1(2), rng2(2);

  auto cores_used = [&](const Assignment& a) {
    std::set<NodeId> cores;
    for (const auto& [flow, policy] : a.policies) {
      for (NodeId w : policy.list) {
        if (world->topology.tier(w) == topo::Tier::Core) cores.insert(w);
      }
    }
    return cores.size();
  };

  const std::size_t plain_cores = cores_used(plain.schedule(fixture.problem, rng1));
  const std::size_t ecmp_cores = cores_used(ecmp.schedule(fixture.problem, rng2));
  EXPECT_GT(ecmp_cores, plain_cores);
  EXPECT_EQ(ecmp_cores, 3u);
}

TEST(CapacityEcmp, EcmpLengthsStayShortest) {
  auto world = test::small_tree_world();
  test::ProblemFixture fixture(*world, 1, 4, 2, 8.0);
  CapacityScheduler plain(false);
  CapacityScheduler ecmp(true);
  Rng rng1(3), rng2(3);
  const Assignment a = plain.schedule(fixture.problem, rng1);
  const Assignment b = ecmp.schedule(fixture.problem, rng2);
  for (const auto& [flow, policy] : b.policies) {
    EXPECT_EQ(policy.len(), a.policies.at(flow).len());
  }
}

}  // namespace
}  // namespace hit::sched
