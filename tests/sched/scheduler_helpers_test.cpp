// UsageLedger, validate_assignment, attach_shortest_policies, static_hops,
// HopMatrix.
#include <gtest/gtest.h>

#include "sched/scheduler.h"
#include "test_helpers.h"

namespace hit::sched {
namespace {

class HelpersTest : public ::testing::Test {
 protected:
  std::unique_ptr<test::World> world_ = test::tiny_tree_world();
  test::ProblemFixture fixture_{*world_, 1, 2, 2, 4.0};
};

TEST_F(HelpersTest, LedgerPlaceRemove) {
  UsageLedger ledger(fixture_.problem);
  const ServerId s(0);
  EXPECT_TRUE(ledger.can_host(s, cluster::kDefaultContainerDemand));
  ledger.place(s, cluster::kDefaultContainerDemand);
  ledger.place(s, cluster::kDefaultContainerDemand);
  EXPECT_FALSE(ledger.can_host(s, cluster::kDefaultContainerDemand));
  EXPECT_THROW(ledger.place(s, cluster::kDefaultContainerDemand), std::logic_error);
  ledger.remove(s, cluster::kDefaultContainerDemand);
  EXPECT_TRUE(ledger.can_host(s, cluster::kDefaultContainerDemand));
  EXPECT_THROW(ledger.remove(s, cluster::Resource{99.0, 99.0}), std::logic_error);
}

TEST_F(HelpersTest, LedgerHonorsBaseUsage) {
  fixture_.problem.base_usage.assign(4, cluster::Resource{2.0, 8.0});  // all full
  UsageLedger ledger(fixture_.problem);
  EXPECT_TRUE(ledger.candidates(cluster::kDefaultContainerDemand).empty());
}

TEST_F(HelpersTest, LedgerCandidatesInIdOrder) {
  UsageLedger ledger(fixture_.problem);
  const auto cands = ledger.candidates(cluster::kDefaultContainerDemand);
  ASSERT_EQ(cands.size(), 4u);
  EXPECT_TRUE(std::is_sorted(cands.begin(), cands.end()));
}

TEST_F(HelpersTest, ValidateCatchesUnplacedTask) {
  Assignment empty;
  EXPECT_THROW(validate_assignment(fixture_.problem, empty), std::logic_error);
}

TEST_F(HelpersTest, ValidateCatchesOverCapacity) {
  Assignment a;
  for (const TaskRef& t : fixture_.problem.tasks) {
    a.placement[t.id] = ServerId(0);  // 4 tasks on a 2-slot server
  }
  attach_shortest_policies(fixture_.problem, a);
  EXPECT_THROW(validate_assignment(fixture_.problem, a), std::logic_error);
}

TEST_F(HelpersTest, ValidateCatchesMissingPolicy) {
  Assignment a;
  std::size_t i = 0;
  for (const TaskRef& t : fixture_.problem.tasks) {
    a.placement[t.id] = ServerId(static_cast<ServerId::value_type>(i++ % 4));
  }
  EXPECT_THROW(validate_assignment(fixture_.problem, a), std::logic_error);
}

TEST_F(HelpersTest, AttachShortestCoversPlacedFlows) {
  Assignment a;
  std::size_t i = 0;
  for (const TaskRef& t : fixture_.problem.tasks) {
    a.placement[t.id] = ServerId(static_cast<ServerId::value_type>(i++ % 4));
  }
  attach_shortest_policies(fixture_.problem, a);
  EXPECT_EQ(a.policies.size(), fixture_.problem.flows.size());
  EXPECT_NO_THROW(validate_assignment(fixture_.problem, a));
}

TEST_F(HelpersTest, StaticHopsMatchesTopology) {
  EXPECT_EQ(static_hops(fixture_.problem, ServerId(0), ServerId(0)), 0u);
  EXPECT_EQ(static_hops(fixture_.problem, ServerId(0), ServerId(1)), 1u);
  EXPECT_EQ(static_hops(fixture_.problem, ServerId(0), ServerId(3)), 3u);
}

TEST_F(HelpersTest, HopMatrixAgreesWithStaticHops) {
  HopMatrix matrix(fixture_.problem);
  for (unsigned a = 0; a < 4; ++a) {
    for (unsigned b = 0; b < 4; ++b) {
      EXPECT_EQ(matrix.hops(ServerId(a), ServerId(b)),
                static_hops(fixture_.problem, ServerId(a), ServerId(b)));
    }
  }
}

TEST_F(HelpersTest, AssignmentHostFallsBackToFixed) {
  fixture_.problem.fixed[TaskId(999)] = ServerId(2);
  Assignment a;
  a.placement[TaskId(1)] = ServerId(1);
  EXPECT_EQ(a.host(fixture_.problem, TaskId(1)), ServerId(1));
  EXPECT_EQ(a.host(fixture_.problem, TaskId(999)), ServerId(2));
  EXPECT_FALSE(a.host(fixture_.problem, TaskId(12345)).valid());
}

}  // namespace
}  // namespace hit::sched
