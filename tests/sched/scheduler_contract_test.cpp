// Contract tests every Scheduler implementation must satisfy, parameterized
// over the full lineup (baselines + Hit).  These are the Eq. (3) feasibility
// guarantees: every task placed, capacity respected, every placed flow gets
// a satisfied policy — on multiple topology families, with fixed tasks and
// non-trivial base usage.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "core/hit_scheduler.h"
#include "sched/capacity_scheduler.h"
#include "sched/delay_scheduler.h"
#include "sched/fair_scheduler.h"
#include "sched/pna_scheduler.h"
#include "sched/random_scheduler.h"
#include "test_helpers.h"

namespace hit::sched {
namespace {

using SchedulerFactory = std::function<std::unique_ptr<Scheduler>()>;

struct ContractCase {
  std::string name;
  SchedulerFactory make;
};

class SchedulerContract : public ::testing::TestWithParam<ContractCase> {};

TEST_P(SchedulerContract, ProducesValidAssignmentOnTree) {
  auto world = test::small_tree_world();
  test::ProblemFixture fixture(*world, 2, 3, 2, 6.0);
  auto scheduler = GetParam().make();
  Rng rng(1);
  const Assignment a = scheduler->schedule(fixture.problem, rng);
  EXPECT_NO_THROW(validate_assignment(fixture.problem, a));
}

TEST_P(SchedulerContract, ProducesValidAssignmentOnBCube) {
  auto world = std::make_unique<test::World>(
      topo::make_bcube(topo::BCubeConfig{3, 1}), cluster::Resource{2.0, 8.0});
  test::ProblemFixture fixture(*world, 2, 3, 2, 6.0);
  auto scheduler = GetParam().make();
  Rng rng(2);
  const Assignment a = scheduler->schedule(fixture.problem, rng);
  EXPECT_NO_THROW(validate_assignment(fixture.problem, a));
}

TEST_P(SchedulerContract, ProducesValidAssignmentOnVl2) {
  auto world = std::make_unique<test::World>(
      topo::make_vl2(topo::Vl2Config{2, 4, 4, 2}), cluster::Resource{2.0, 8.0});
  test::ProblemFixture fixture(*world, 2, 2, 2, 4.0);
  auto scheduler = GetParam().make();
  Rng rng(3);
  const Assignment a = scheduler->schedule(fixture.problem, rng);
  EXPECT_NO_THROW(validate_assignment(fixture.problem, a));
}

TEST_P(SchedulerContract, RespectsBaseUsage) {
  auto world = test::small_tree_world();
  test::ProblemFixture fixture(*world, 1, 3, 2, 4.0);
  // Occupy one slot on every server: only one remains each.
  fixture.problem.base_usage.assign(world->cluster.size(),
                                    cluster::kDefaultContainerDemand);
  auto scheduler = GetParam().make();
  Rng rng(4);
  const Assignment a = scheduler->schedule(fixture.problem, rng);
  EXPECT_NO_THROW(validate_assignment(fixture.problem, a));
}

TEST_P(SchedulerContract, HandlesFixedPeers) {
  auto world = test::small_tree_world();
  test::ProblemFixture fixture(*world, 1, 2, 2, 4.0);
  // Fix the two map tasks on server 0 and only schedule the reduces.
  std::vector<TaskRef> open;
  fixture.problem.base_usage.assign(world->cluster.size(), cluster::Resource{});
  for (const TaskRef& t : fixture.problem.tasks) {
    if (t.kind == cluster::TaskKind::Map) {
      fixture.problem.fixed[t.id] = ServerId(0);
      fixture.problem.base_usage[0] += t.demand;
    } else {
      open.push_back(t);
    }
  }
  fixture.problem.tasks = open;
  auto scheduler = GetParam().make();
  Rng rng(5);
  const Assignment a = scheduler->schedule(fixture.problem, rng);
  EXPECT_NO_THROW(validate_assignment(fixture.problem, a));
  // Every flow touches a fixed map, so every flow must carry a policy.
  for (const net::Flow& f : fixture.problem.flows) {
    EXPECT_TRUE(a.policies.count(f.id)) << "flow " << f.id;
  }
}

TEST_P(SchedulerContract, ThrowsWhenClusterFull) {
  auto world = test::tiny_tree_world();  // 4 servers x 2 slots
  test::ProblemFixture fixture(*world, 2, 4, 2, 4.0);  // 12 tasks > 8 slots
  auto scheduler = GetParam().make();
  Rng rng(6);
  EXPECT_THROW((void)scheduler->schedule(fixture.problem, rng), std::runtime_error);
}

TEST_P(SchedulerContract, DeterministicForSameSeed) {
  auto world = test::small_tree_world();
  test::ProblemFixture fixture(*world, 2, 2, 2, 4.0);
  auto scheduler = GetParam().make();
  Rng rng1(7), rng2(7);
  const Assignment a = scheduler->schedule(fixture.problem, rng1);
  const Assignment b = scheduler->schedule(fixture.problem, rng2);
  EXPECT_EQ(a.placement, b.placement);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, SchedulerContract,
    ::testing::Values(
        ContractCase{"Capacity",
                     [] { return std::make_unique<CapacityScheduler>(); }},
        ContractCase{"Pna", [] { return std::make_unique<PnaScheduler>(); }},
        ContractCase{"Fair", [] { return std::make_unique<FairScheduler>(); }},
        ContractCase{"Random", [] { return std::make_unique<RandomScheduler>(); }},
        ContractCase{"Delay", [] { return std::make_unique<DelayScheduler>(); }},
        ContractCase{"Hit", [] { return std::make_unique<core::HitScheduler>(); }},
        ContractCase{"HitGreedy",
                     [] {
                       core::HitConfig config;
                       config.use_stable_matching = false;
                       return std::make_unique<core::HitScheduler>(config);
                     }},
        ContractCase{"HitNoPolicyOpt",
                     [] {
                       core::HitConfig config;
                       config.optimize_policies = false;
                       return std::make_unique<core::HitScheduler>(config);
                     }}),
    [](const ::testing::TestParamInfo<ContractCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace hit::sched
