// Behavioural tests for the individual baseline schedulers.
#include <gtest/gtest.h>

#include <map>

#include "mapreduce/hdfs.h"
#include "sched/capacity_scheduler.h"
#include "sched/delay_scheduler.h"
#include "sched/pna_scheduler.h"
#include "sched/random_scheduler.h"
#include "test_helpers.h"

namespace hit::sched {
namespace {

TEST(CapacityScheduler, SpreadsForConcurrency) {
  auto world = test::small_tree_world();  // 8 servers x 2 slots
  test::ProblemFixture fixture(*world, 1, 6, 2, 4.0);  // 8 tasks
  CapacityScheduler scheduler;
  Rng rng(1);
  const Assignment a = scheduler.schedule(fixture.problem, rng);
  std::map<ServerId, int> per_server;
  for (const auto& [task, server] : a.placement) ++per_server[server];
  // Most-available-first puts one task per server before doubling up.
  EXPECT_EQ(per_server.size(), 8u);
  for (const auto& [server, n] : per_server) EXPECT_EQ(n, 1);
}

TEST(CapacityScheduler, IgnoresTopology) {
  // Placement is a pure function of task order and capacities: shuffling the
  // flow sizes must not change it.
  auto world = test::small_tree_world();
  test::ProblemFixture f1(*world, 2, 2, 2, 1.0);
  test::ProblemFixture f2(*world, 2, 2, 2, 99.0);
  CapacityScheduler scheduler;
  Rng rng(2);
  EXPECT_EQ(scheduler.schedule(f1.problem, rng).placement,
            scheduler.schedule(f2.problem, rng).placement);
}

TEST(RandomScheduler, DifferentSeedsDifferentPlacements) {
  auto world = test::small_tree_world();
  test::ProblemFixture fixture(*world, 2, 3, 2, 4.0);
  RandomScheduler scheduler;
  Rng rng1(1), rng2(2);
  const auto a = scheduler.schedule(fixture.problem, rng1).placement;
  const auto b = scheduler.schedule(fixture.problem, rng2).placement;
  EXPECT_NE(a, b);
}

TEST(DelayScheduler, MapsLandOnReplicas) {
  auto world = test::small_tree_world();
  test::ProblemFixture fixture(*world, 1, 4, 2, 4.0);
  Rng hdfs_rng(3);
  const mr::BlockPlacement blocks(world->cluster, fixture.jobs, hdfs_rng, 3);
  fixture.problem.blocks = &blocks;

  DelayScheduler scheduler;
  Rng rng(4);
  const Assignment a = scheduler.schedule(fixture.problem, rng);
  for (const TaskRef& t : fixture.problem.tasks) {
    if (t.kind != cluster::TaskKind::Map) continue;
    EXPECT_TRUE(blocks.local(t.id, a.placement.at(t.id)))
        << "map not node-local on an idle cluster";
  }
}

TEST(DelayScheduler, FallsBackWithoutBlocks) {
  auto world = test::small_tree_world();
  test::ProblemFixture fixture(*world, 1, 4, 2, 4.0);
  DelayScheduler scheduler;
  Rng rng(5);
  EXPECT_NO_THROW(validate_assignment(fixture.problem,
                                      scheduler.schedule(fixture.problem, rng)));
}

TEST(PnaScheduler, ReducesGravitateTowardPlacedMaps) {
  // All maps fixed on one rack: reduces should land close.
  auto world = test::small_tree_world();
  test::ProblemFixture fixture(*world, 1, 2, 2, 16.0);
  std::vector<TaskRef> open;
  fixture.problem.base_usage.assign(world->cluster.size(), cluster::Resource{});
  for (const TaskRef& t : fixture.problem.tasks) {
    if (t.kind == cluster::TaskKind::Map) {
      const ServerId host(t.id.value() % 2 == 0 ? 0u : 1u);  // same access switch
      fixture.problem.fixed[t.id] = host;
      fixture.problem.base_usage[host.index()] += t.demand;
    } else {
      open.push_back(t);
    }
  }
  fixture.problem.tasks = open;

  PnaScheduler scheduler;
  HopMatrix hops(fixture.problem);
  int near = 0, total = 0;
  for (int seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    const Assignment a = scheduler.schedule(fixture.problem, rng);
    for (const auto& [task, server] : a.placement) {
      ++total;
      if (hops.hops(server, ServerId(0)) <= 1) ++near;
    }
  }
  // Sharply better than the uniform baseline (2 of 8 servers are near:
  // expect 25% under random placement).
  EXPECT_GT(static_cast<double>(near) / total, 0.6);
}

TEST(PnaScheduler, UsesStaticSingleShortestPath) {
  auto world = test::small_tree_world();
  test::ProblemFixture fixture(*world, 1, 2, 2, 4.0);
  PnaScheduler scheduler;
  Rng rng(6);
  const Assignment a = scheduler.schedule(fixture.problem, rng);
  for (const net::Flow& f : fixture.problem.flows) {
    const ServerId src = a.host(fixture.problem, f.src_task);
    const ServerId dst = a.host(fixture.problem, f.dst_task);
    if (src == dst) continue;
    const auto& policy = a.policies.at(f.id);
    const topo::Path shortest = world->topology.shortest_path(
        world->cluster.node_of(src), world->cluster.node_of(dst));
    EXPECT_EQ(policy.list, world->topology.switch_list(shortest));
  }
}

}  // namespace
}  // namespace hit::sched
