// Residual-capacity accounting under churn (property test): as flows start,
// finish and reroute in arbitrary interleavings, every allocator built on
// the ResidualLedger must keep the aggregate rate on every link and switch
// within its capacity, and the ledger itself must reject over-charges.
#include "network/bandwidth.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>
#include <vector>

#include "topology/builders.h"
#include "util/rng.h"

namespace hit::net {
namespace {

/// Independent feasibility check straight off the topology: no link or
/// switch on any path carries more than its (scaled) capacity.
void expect_within_capacity(const topo::Topology& topo,
                            const std::vector<FlowDemand>& demands,
                            const std::vector<double>& rates,
                            double scale = 1.0) {
  ASSERT_EQ(demands.size(), rates.size());
  std::map<std::pair<NodeId, NodeId>, double> link_load;
  std::map<NodeId, double> switch_load;
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const topo::Path& p = demands[i].path;
    for (std::size_t e = 0; e + 1 < p.size(); ++e) {
      link_load[std::minmax(p[e], p[e + 1])] += rates[i];
    }
    for (NodeId n : p) {
      if (topo.is_switch(n)) switch_load[n] += rates[i];
    }
  }
  for (const auto& [link, load] : link_load) {
    const auto cap = topo.graph().bandwidth(link.first, link.second);
    ASSERT_TRUE(cap.has_value());
    EXPECT_LE(load, *cap * scale + 1e-6);
  }
  for (const auto& [sw, load] : switch_load) {
    EXPECT_LE(load, topo.switch_capacity(sw) * scale + 1e-6);
  }
}

class LedgerChurnTest : public ::testing::Test {
 protected:
  topo::Topology topo_ = topo::make_case_study_tree();

  FlowDemand demand(std::size_t src, std::size_t dst, unsigned id) {
    const auto servers = topo_.servers();
    return FlowDemand{FlowId(id),
                      topo_.shortest_path(servers[src], servers[dst]), 0.0};
  }
};

TEST_F(LedgerChurnTest, AddPathIsIdempotentAndKeepsCharges) {
  ResidualLedger ledger(topo_);
  const FlowDemand d = demand(0, 3, 1);
  ledger.add_path(d.path);
  const std::size_t resources = ledger.resource_count();
  ledger.charge(d.path, 10.0);
  // Re-registering the same path must not reset the accumulated charge.
  ledger.add_path(d.path);
  EXPECT_EQ(ledger.resource_count(), resources);
  EXPECT_DOUBLE_EQ(ledger.bottleneck(d.path), 6.0);
}

TEST_F(LedgerChurnTest, ChargeBeyondResidualThrows) {
  ResidualLedger ledger(topo_);
  const FlowDemand d = demand(0, 3, 1);
  ledger.add_path(d.path);
  ledger.charge(d.path, 16.0);  // exactly the server-link capacity
  EXPECT_DOUBLE_EQ(ledger.bottleneck(d.path), 0.0);
  // Floating-point slack within tolerance clamps to zero ...
  EXPECT_NO_THROW(ledger.charge(d.path, 1e-12));
  EXPECT_DOUBLE_EQ(ledger.bottleneck(d.path), 0.0);
  // ... but a real over-charge is a hard error.
  EXPECT_THROW(ledger.charge(d.path, 0.001), std::logic_error);
}

TEST_F(LedgerChurnTest, RejectsDegeneratePaths) {
  ResidualLedger ledger(topo_);
  EXPECT_THROW(ledger.add_path({}), std::invalid_argument);
  EXPECT_THROW(ledger.add_path({topo_.servers()[0]}), std::invalid_argument);
  // Path over a missing link.
  EXPECT_THROW(ledger.add_path({topo_.servers()[0], topo_.servers()[1]}),
               std::invalid_argument);
  EXPECT_DOUBLE_EQ(ledger.residual(0), 0.0);  // unknown key reads as empty
}

TEST_F(LedgerChurnTest, SrptUnderChurnNeverOverCommits) {
  // Flows start, finish and reroute in a seeded random interleaving; after
  // every step the SRPT allocation must stay within all capacities.
  Rng rng(0xC0F10);
  std::vector<FlowDemand> active;
  std::vector<double> remaining;
  unsigned next_id = 0;
  const std::size_t servers = topo_.servers().size();

  for (int step = 0; step < 200; ++step) {
    const std::uint64_t action = rng.uniform_index(3);
    if (action == 0 || active.empty()) {  // start
      const auto src = static_cast<std::size_t>(rng.uniform_index(servers));
      auto dst = static_cast<std::size_t>(rng.uniform_index(servers));
      if (dst == src) dst = (dst + 1) % servers;
      active.push_back(demand(src, dst, next_id++));
      remaining.push_back(0.5 + static_cast<double>(rng.uniform_index(16)));
    } else if (action == 1) {  // finish
      const auto victim = static_cast<std::size_t>(rng.uniform_index(active.size()));
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(victim));
      remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(victim));
    } else {  // reroute: same flow id, new endpoints
      const auto victim = static_cast<std::size_t>(rng.uniform_index(active.size()));
      const auto src = static_cast<std::size_t>(rng.uniform_index(servers));
      auto dst = static_cast<std::size_t>(rng.uniform_index(servers));
      if (dst == src) dst = (dst + 1) % servers;
      active[victim].path =
          topo_.shortest_path(topo_.servers()[src], topo_.servers()[dst]);
    }
    const auto rates = srpt_allocate(topo_, active, remaining);
    expect_within_capacity(topo_, active, rates);
    if (HasFatalFailure()) return;
  }
}

TEST_F(LedgerChurnTest, SrptUnderChurnAtReducedScale) {
  Rng rng(0xC0F11);
  std::vector<FlowDemand> active;
  std::vector<double> remaining;
  const std::size_t servers = topo_.servers().size();
  for (unsigned id = 0; id < 12; ++id) {
    const auto src = static_cast<std::size_t>(rng.uniform_index(servers));
    auto dst = static_cast<std::size_t>(rng.uniform_index(servers));
    if (dst == src) dst = (dst + 1) % servers;
    active.push_back(demand(src, dst, id));
    remaining.push_back(1.0 + static_cast<double>(id % 5));
  }
  for (double scale : {0.05, 0.5, 2.0}) {
    const auto rates = srpt_allocate(topo_, active, remaining, scale);
    expect_within_capacity(topo_, active, rates, scale);
  }
}

TEST_F(LedgerChurnTest, SequentialChargesMatchBottleneckExactly) {
  // Greedy take-the-bottleneck loops (SRPT's shape) drive a resource to
  // exactly zero without tripping the over-charge guard.
  ResidualLedger ledger(topo_);
  std::vector<FlowDemand> demands;
  for (unsigned i = 0; i < 4; ++i) demands.push_back(demand(0, 1 + i % 3, i));
  for (const FlowDemand& d : demands) ledger.add_path(d.path);
  double total = 0.0;
  for (const FlowDemand& d : demands) {
    const double take = ledger.bottleneck(d.path);
    if (take <= 0.0) continue;
    ledger.charge(d.path, take);
    total += take;
  }
  EXPECT_DOUBLE_EQ(total, 16.0);  // server 0's uplink, fully drained
  EXPECT_DOUBLE_EQ(ledger.bottleneck(demands[0].path), 0.0);
}

}  // namespace
}  // namespace hit::net
