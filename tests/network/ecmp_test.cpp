#include <gtest/gtest.h>

#include <map>
#include <set>

#include "network/routing.h"
#include "topology/builders.h"

namespace hit::net {
namespace {

class EcmpTest : public ::testing::Test {
 protected:
  // 4 parallel cores: 4-way ECMP between cross-rack pairs.
  topo::TreeConfig config_{2, 2, 4, 2, 16.0, 32.0};
  topo::Topology topo_ = topo::make_tree(config_);
  NodeId a_ = topo_.servers()[0];
  NodeId b_ = topo_.servers()[2];
};

TEST_F(EcmpTest, AlwaysShortestLength) {
  for (unsigned f = 0; f < 64; ++f) {
    const Policy p = ecmp_policy(topo_, a_, b_, FlowId(f));
    EXPECT_EQ(p.len(), 3u);
    EXPECT_TRUE(p.satisfied(topo_, a_, b_));
  }
}

TEST_F(EcmpTest, HashSpreadsAcrossEqualPaths) {
  std::map<std::vector<NodeId>, int> counts;
  for (unsigned f = 0; f < 256; ++f) {
    ++counts[ecmp_policy(topo_, a_, b_, FlowId(f)).list];
  }
  EXPECT_EQ(counts.size(), 4u);  // all four cores used
  for (const auto& [route, n] : counts) {
    EXPECT_GT(n, 256 / 8);  // roughly balanced
  }
}

TEST_F(EcmpTest, DeterministicPerFlowId) {
  const Policy p1 = ecmp_policy(topo_, a_, b_, FlowId(9));
  const Policy p2 = ecmp_policy(topo_, a_, b_, FlowId(9));
  EXPECT_EQ(p1.list, p2.list);
}

TEST_F(EcmpTest, SinglePathTopologyDegenerates) {
  const topo::Topology single = topo::make_case_study_tree();
  const Policy p = ecmp_policy(single, single.servers()[0], single.servers()[3],
                               FlowId(5));
  EXPECT_EQ(p.len(), 3u);
}

TEST(TreeOversubscription, UplinksScaledDown) {
  topo::TreeConfig config{2, 2, 1, 2, 16.0, 32.0};
  config.uplink_bandwidth_factor = 0.25;
  const topo::Topology t = topo::make_tree(config);
  // Host link stays 16; access->core uplink is 4.
  const NodeId host = t.servers()[0];
  const NodeId access = t.graph().neighbors(host)[0].to;
  EXPECT_DOUBLE_EQ(*t.graph().bandwidth(host, access), 16.0);
  for (const topo::Edge& e : t.graph().neighbors(access)) {
    if (t.is_switch(e.to)) {
      EXPECT_DOUBLE_EQ(e.bandwidth, 4.0);
    }
  }
  config.uplink_bandwidth_factor = 0.0;
  EXPECT_THROW((void)topo::make_tree(config), std::invalid_argument);
}

}  // namespace
}  // namespace hit::net
