#include "network/traffic_gen.h"

#include <gtest/gtest.h>

#include "network/routing.h"
#include "topology/builders.h"

namespace hit::net {
namespace {

class TrafficGenTest : public ::testing::Test {
 protected:
  topo::Topology topo_ = topo::make_case_study_tree();
  LoadTracker load_{topo_};
  NodeId s1_ = topo_.servers()[0];
  NodeId s2_ = topo_.servers()[1];
  NodeId s4_ = topo_.servers()[3];

  Flow flow(double size = 1.0) {
    Flow f;
    f.id = FlowId(0);
    f.size_gb = size;
    f.rate = size;
    return f;
  }
};

TEST_F(TrafficGenTest, DelayScalesWithHops) {
  const TrafficGenerator gen(topo_);
  Rng rng(1);
  const Policy near = shortest_policy(topo_, s1_, s2_, FlowId(0));
  const Policy far = shortest_policy(topo_, s1_, s4_, FlowId(0));
  const auto m_near = gen.measure(flow(), near, s1_, s2_, load_, rng);
  const auto m_far = gen.measure(flow(), far, s1_, s4_, load_, rng);
  EXPECT_EQ(m_near.route_hops, 1u);
  EXPECT_EQ(m_far.route_hops, 3u);
  // Idle network: ~29 us per switch.
  EXPECT_NEAR(m_near.mean_delay_us, 29.0, 3.0);
  EXPECT_NEAR(m_far.mean_delay_us, 87.0, 8.0);
}

TEST_F(TrafficGenTest, CongestionInflatesDelay) {
  const TrafficGenerator gen(topo_);
  const Policy far = shortest_policy(topo_, s1_, s4_, FlowId(0));
  Rng rng1(2), rng2(2);
  const auto idle = gen.measure(flow(), far, s1_, s4_, load_, rng1);
  load_.assign(far, 48.0);  // 75% utilization on the access switches
  const auto busy = gen.measure(flow(), far, s1_, s4_, load_, rng2);
  EXPECT_GT(busy.mean_delay_us, idle.mean_delay_us * 1.3);
}

TEST_F(TrafficGenTest, P99AboveMean) {
  const TrafficGenerator gen(topo_);
  Rng rng(3);
  const Policy far = shortest_policy(topo_, s1_, s4_, FlowId(0));
  const auto m = gen.measure(flow(), far, s1_, s4_, load_, rng);
  EXPECT_GE(m.p99_delay_us, m.mean_delay_us);
}

TEST_F(TrafficGenTest, RejectsUnsatisfiedPolicy) {
  const TrafficGenerator gen(topo_);
  Rng rng(4);
  const Policy wrong = shortest_policy(topo_, s1_, s2_, FlowId(0));
  EXPECT_THROW((void)gen.measure(flow(), wrong, s1_, s4_, load_, rng),
               std::invalid_argument);
}

TEST_F(TrafficGenTest, ReportAverages) {
  const TrafficGenerator gen(topo_);
  Rng rng(5);
  const Policy near = shortest_policy(topo_, s1_, s2_, FlowId(0));
  const Policy far = shortest_policy(topo_, s1_, s4_, FlowId(1));
  FlowSet flows{flow(), flow()};
  flows[1].id = FlowId(1);
  const auto report = gen.measure_all(flows, {near, far}, {s1_, s1_}, {s2_, s4_},
                                      load_, rng);
  EXPECT_DOUBLE_EQ(report.average_route_length(), 2.0);  // (1 + 3) / 2
  EXPECT_GT(report.average_delay_us(), 29.0);
  EXPECT_LT(report.average_delay_us(), 87.0 + 10.0);
}

TEST_F(TrafficGenTest, MeasureAllValidatesSizes) {
  const TrafficGenerator gen(topo_);
  Rng rng(6);
  EXPECT_THROW((void)gen.measure_all({flow()}, {}, {}, {}, load_, rng),
               std::invalid_argument);
}

TEST_F(TrafficGenTest, EmptyReportAveragesAreZero) {
  TrafficReport report;
  EXPECT_EQ(report.average_route_length(), 0.0);
  EXPECT_EQ(report.average_delay_us(), 0.0);
}

TEST_F(TrafficGenTest, ConfigValidation) {
  TrafficGenConfig config;
  config.packets_per_flow = 0;
  EXPECT_THROW((void)TrafficGenerator(topo_, config), std::invalid_argument);
}

}  // namespace
}  // namespace hit::net
