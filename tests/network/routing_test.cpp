#include "network/routing.h"

#include <gtest/gtest.h>

#include <set>

#include "topology/builders.h"

namespace hit::net {
namespace {

class RoutingTest : public ::testing::Test {
 protected:
  topo::TreeConfig config_{2, 2, 3, 2, 16.0, 32.0};  // 3 core replicas
  topo::Topology topo_ = topo::make_tree(config_);
  NodeId a_ = topo_.servers()[0];
  NodeId b_ = topo_.servers()[2];  // other access switch
};

TEST_F(RoutingTest, ShortestPolicyIsMinimal) {
  const Policy p = shortest_policy(topo_, a_, b_, FlowId(1));
  EXPECT_EQ(p.len(), 3u);
  EXPECT_TRUE(p.satisfied(topo_, a_, b_));
}

TEST_F(RoutingTest, ShortestPolicyDeterministic) {
  const Policy p1 = shortest_policy(topo_, a_, b_, FlowId(1));
  const Policy p2 = shortest_policy(topo_, a_, b_, FlowId(1));
  EXPECT_EQ(p1.list, p2.list);
}

TEST_F(RoutingTest, RandomPolicyAlwaysSatisfied) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const Policy p = random_policy(topo_, a_, b_, FlowId(1), 4, rng);
    EXPECT_TRUE(p.satisfied(topo_, a_, b_));
  }
}

TEST_F(RoutingTest, RandomPolicyExploresAlternates) {
  Rng rng(2);
  std::set<std::vector<NodeId>> seen;
  for (int i = 0; i < 60; ++i) {
    seen.insert(random_policy(topo_, a_, b_, FlowId(1), 3, rng).list);
  }
  EXPECT_GE(seen.size(), 2u);  // three core replicas to choose from
}

TEST_F(RoutingTest, FeasiblePolicySkipsSaturatedRoutes) {
  LoadTracker load(topo_);
  const Policy shortest = shortest_policy(topo_, a_, b_, FlowId(1));
  // Saturate only the core of the shortest route (a single-switch charge;
  // charging the whole path would saturate the access switches that every
  // alternate route shares).
  Policy core_only;
  core_only.list = {shortest.list[1]};
  core_only.type = {topo::Tier::Core};
  load.assign(core_only, topo_.switch_capacity(shortest.list[1]));

  const auto alt = feasible_policy(topo_, load, a_, b_, FlowId(2), 1.0, 8);
  ASSERT_TRUE(alt.has_value());
  EXPECT_TRUE(alt->satisfied(topo_, a_, b_));
  EXPECT_NE(alt->list[1], shortest.list[1]);
}

TEST_F(RoutingTest, FeasiblePolicyNulloptWhenAllSaturated) {
  LoadTracker load(topo_);
  // Saturate every core replica: all a-b routes cross some core.
  for (NodeId w : topo_.switches()) {
    if (topo_.tier(w) == topo::Tier::Core) {
      Policy p;
      p.list = {w};
      p.type = {topo::Tier::Core};
      load.assign(p, topo_.switch_capacity(w));
    }
  }
  EXPECT_FALSE(feasible_policy(topo_, load, a_, b_, FlowId(2), 1.0, 8).has_value());
}

TEST_F(RoutingTest, SameEndpointYieldsEmptyPolicy) {
  // Co-located endpoints shuffle through local disk: no switches traversed.
  const Policy p = shortest_policy(topo_, a_, a_, FlowId(1));
  EXPECT_EQ(p.len(), 0u);
}

}  // namespace
}  // namespace hit::net
